file(REMOVE_RECURSE
  "CMakeFiles/test_compiled_network.dir/test_compiled_network.cpp.o"
  "CMakeFiles/test_compiled_network.dir/test_compiled_network.cpp.o.d"
  "test_compiled_network"
  "test_compiled_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiled_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
