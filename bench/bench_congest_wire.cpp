// Experiment E21 (CONGEST fast path): the slot-addressed wire and the
// partwise plan cache against the retained reference message path, on the
// E15 compiled-execution workload, plus the parallel per-tree exact-min-cut
// solve.
//
//   * wire/reference  — seed semantics: per-round message vector, O(n)
//     inbox clears, per-part BFS rebuilt for every aggregation.
//   * wire/slot       — slot-addressed double-buffered wire, caches off:
//     isolates the zero-allocation delivery win.
//   * wire/slot_cache — slot wire + PartwiseCache hanging off the cached
//     RoundPlan: the three aggregations of each MA round (and every replay
//     of an unchanged contraction) share one partition build.
//
// Every variant exports the same "ma_rounds", "real_congest_rounds", and
// "mst_cost" counters — the fast path changes wall time ONLY, never traffic
// or outputs. The mincut family sweeps the per-tree solver fan-out
// (threads=1 vs 4) with identical "cut_value"/"winning_tree"/"ma_rounds".
//
// Run:
//   ./bench_congest_wire --json

#include <vector>

#include "bench_common.hpp"
#include "congest/compiled_network.hpp"
#include "mincut/exact_mincut.hpp"

namespace umc {
namespace {

congest::WireConfig wire_config(int variant) {
  switch (variant) {
    case 0: return {congest::WireMode::kReference, /*partwise_cache=*/false};
    case 1: return {congest::WireMode::kSlot, /*partwise_cache=*/false};
    default: return {congest::WireMode::kSlot, /*partwise_cache=*/true};
  }
}

void run_wire_variant(benchmark::State& state, const WeightedGraph& g) {
  Rng rng(19);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);

  const congest::WireConfig wire = wire_config(static_cast<int>(state.range(0)));
  congest::CompiledBoruvkaResult res{};
  for (auto _ : state) {
    congest::CongestNetwork net(g, wire);
    res = congest::compiled_boruvka(net, cost);
    benchmark::DoNotOptimize(res);
  }
  std::int64_t mst_cost = 0;
  for (const EdgeId e : res.tree) mst_cost += cost[static_cast<std::size_t>(e)];
  state.counters["n"] = g.n();
  state.counters["ma_rounds"] = res.ma_rounds;
  state.counters["real_congest_rounds"] = static_cast<double>(res.congest_rounds);
  state.counters["mst_cost"] = static_cast<double>(mst_cost);
}

void BM_WireGrid(benchmark::State& state) {
  run_wire_variant(state, grid_graph(48, 48));
}
void BM_WireEr(benchmark::State& state) {
  run_wire_variant(state, benchutil::weighted_er(1024, 8.0, 43));
}

void BM_ExactMincutThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const WeightedGraph g = benchutil::weighted_er(96, 8.0, 7);
  mincut::ExactMinCutResult res{};
  minoragg::Ledger ledger;
  for (auto _ : state) {
    Rng rng(7);
    minoragg::Ledger fresh;
    res = mincut::exact_mincut(g, rng, fresh, {}, threads);
    benchmark::DoNotOptimize(res);
    ledger = std::move(fresh);
  }
  benchutil::export_ledger(state, ledger);
  state.counters["threads"] = threads;
  state.counters["cut_value"] = static_cast<double>(res.value);
  state.counters["winning_tree"] = res.winning_tree;
  state.counters["num_trees"] = res.num_trees;
}

// 0 = reference (seed), 1 = slot, 2 = slot + partwise cache. Round counters
// and mst_cost must be identical down the column.
BENCHMARK(BM_WireGrid)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WireEr)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)->Unit(benchmark::kMillisecond);
// Full width sweep: every column's gated counters must be identical; wall
// time scales with physical cores (CPU time per thread is the portable
// signal on single-core CI — see docs/BENCHMARKS.md).
BENCHMARK(BM_ExactMincutThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
