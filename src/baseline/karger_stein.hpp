#pragma once

// Karger-Stein recursive contraction (centralized, randomized).
//
// The stronger classical baseline: contract down to n/√2 + 1 supernodes,
// recurse twice, take the better branch — success probability Ω(1/log n)
// per run vs Ω(1/n²) for flat contraction. Used as a second randomized
// oracle and in the baseline benchmarks.

#include "baseline/stoer_wagner.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace umc::baseline {

/// Best cut over `repeats` recursive-contraction runs. Requires a connected
/// graph with n >= 2. Θ(log² n) repeats give whp correctness.
[[nodiscard]] Weight karger_stein_min_cut(const WeightedGraph& g, int repeats, Rng& rng);

/// Same draws, same value, plus one side of the best cut materialized from
/// the surviving supernode's merge history. The bipartition is the witness
/// a Monte Carlo answer can be checked against: re-summing the crossing
/// weights must reproduce `value` exactly (the SolveSupervisor's degraded
/// Karger–Stein tier certifies its answers this way).
[[nodiscard]] GlobalMinCut karger_stein_witness(const WeightedGraph& g, int repeats, Rng& rng);

}  // namespace umc::baseline
