#pragma once

// Structured round tracing for both simulators.
//
// A span is one timed, named region of execution (an MA round, a compiled
// CONGEST sub-phase, an ARQ attempt, a centroid-recursion level). Spans are
// RAII objects created through the UMC_OBS_SPAN* macros; each records TWO
// clocks:
//   * wall time (nanoseconds, steady clock — injectable for golden tests),
//   * a logical clock (the MA/CONGEST round number or recursion depth the
//     instrumentation site passes in), which is a pure function of the
//     executed algorithm and therefore deterministic and golden-testable
//     at any thread width.
//
// Recording is thread-safe and lock-free on the hot path: every thread owns
// a fixed-capacity ring of TraceEvents (registered once, under a mutex, on
// its first span); a span writes exactly one event into its own ring at
// scope exit with a release store of the event count. When a ring fills,
// further events on that thread are dropped and counted (drop-newest — the
// exported prefix is immutable, so a concurrent snapshot never tears).
// Ring capacity comes from the UMC_OBS_RING env knob (events per thread,
// default 16384, read once).
//
// Kill switches, in decreasing strength:
//   * compile time: building with -DUMC_OBS_DISABLED=1 (CMake -DUMC_OBS=OFF)
//     expands every UMC_OBS_SPAN* macro to an inert no-op object — zero
//     instructions, zero bytes, round counts unchanged by construction;
//   * runtime: Tracer::global().set_enabled(false) (the default) reduces a
//     span to one relaxed atomic load and a branch — no TLS touch, no
//     allocation, no clock read.
// Tracing never feeds back into the simulation: spans only observe, so
// charged ma_rounds / CONGEST round counts are bit-identical with tracing
// on, off, or compiled out.
//
// Span names are static string literals ("ma/round", "arq/attempt", ...);
// the event stores the pointer, not a copy. See DESIGN.md "Observability"
// for the naming scheme.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace umc::obs {

/// One completed span. `seq` is the per-thread span-begin order (monotonic
/// per tid); `depth` the span-nesting depth at begin on that thread. Golden
/// tests compare (name, logical, depth) in seq order — wall fields are the
/// only nondeterministic ones.
struct TraceEvent {
  struct Arg {
    const char* key = nullptr;  // nullptr: slot unused
    std::int64_t value = 0;
  };

  const char* name = nullptr;  // static string literal
  const char* cat = nullptr;   // static string literal
  std::int64_t t0_ns = 0;      // wall-clock begin
  std::int64_t dur_ns = 0;     // wall-clock duration
  std::int64_t logical = -1;   // logical clock at begin (-1: none)
  std::uint64_t seq = 0;
  std::int32_t depth = 0;
  std::int32_t tid = 0;  // stable small id, registration order
  Arg args[2];
};

class ScopedSpan;

class Tracer {
 public:
  /// The process tracer all UMC_OBS_SPAN macros record into. Never
  /// destroyed (worker threads may hold ring pointers at exit).
  static Tracer& global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime kill switch; off by default. Cheap to flip at any time —
  /// spans already open keep recording, new spans see the new value.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Wall-clock source; nullptr restores the steady clock. Tests inject a
  /// counter here so exported traces are byte-deterministic.
  using ClockFn = std::int64_t (*)();
  void set_clock_for_testing(ClockFn fn) { clock_fn_.store(fn, std::memory_order_relaxed); }

  /// All recorded events, in (tid, seq) order — per-thread streams are
  /// already in begin order; threads are concatenated by tid. Safe against
  /// concurrent recording (sees a prefix of each ring).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Events dropped because a per-thread ring was full.
  [[nodiscard]] std::int64_t dropped() const;

  /// Resets every ring (event counts and drop counters; per-thread seq
  /// survives so later events still sort after earlier ones). Call only
  /// while no span is being recorded concurrently.
  void clear();

  /// The calling thread's stable tid (registers the thread if needed).
  [[nodiscard]] std::int32_t current_tid();

  /// Ring capacity in events per thread (UMC_OBS_RING, read once).
  [[nodiscard]] static std::size_t ring_capacity();

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    std::vector<TraceEvent> ring;       // resized to capacity at registration
    std::atomic<std::size_t> count{0};  // committed events (release-stored)
    std::atomic<std::int64_t> dropped{0};
    std::uint64_t seq = 0;   // owned by the registered thread
    std::int32_t depth = 0;  // owned by the registered thread
    std::int32_t tid = 0;
  };

  Tracer() = default;

  [[nodiscard]] std::int64_t now() const;
  /// The calling thread's ring, registering it on first use.
  [[nodiscard]] ThreadBuffer& local_buffer();
  void begin(ScopedSpan& span);
  void end(ScopedSpan& span);

  std::atomic<bool> enabled_{false};
  std::atomic<ClockFn> clock_fn_{nullptr};
  mutable std::mutex registry_mu_;  // guards buffers_ growth only
  std::vector<ThreadBuffer*> buffers_;
};

/// RAII span. Construct through the UMC_OBS_SPAN* macros so the whole site
/// compiles away under UMC_OBS_DISABLED.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat, std::int64_t logical = -1) {
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;  // the entire disabled-mode cost
    name_ = name;
    cat_ = cat;
    logical_ = logical;
    t.begin(*this);
  }
  ~ScopedSpan() {
    if (t_ != nullptr) t_->end(*this);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach up to two (key, value) args; extras are silently ignored and
  /// inactive spans do nothing. Keys must be static string literals.
  void arg(const char* key, std::int64_t value) {
    if (t_ == nullptr) return;
    if (args_[0].key == nullptr)
      args_[0] = {key, value};
    else if (args_[1].key == nullptr)
      args_[1] = {key, value};
  }

  [[nodiscard]] bool active() const { return t_ != nullptr; }

 private:
  friend class Tracer;
  Tracer* t_ = nullptr;
  Tracer::ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t logical_ = -1;
  std::int64_t t0_ = 0;
  std::uint64_t seq_ = 0;
  std::int32_t depth_ = 0;
  TraceEvent::Arg args_[2];
};

/// No-op stand-in when tracing is compiled out.
class NullSpan {
 public:
  void arg(const char*, std::int64_t) {}
  [[nodiscard]] bool active() const { return false; }
};

#define UMC_OBS_CONCAT_IMPL(a, b) a##b
#define UMC_OBS_CONCAT(a, b) UMC_OBS_CONCAT_IMPL(a, b)

#if defined(UMC_OBS_DISABLED)
/// Named span object (for .arg() calls after creation).
#define UMC_OBS_SPAN_VAR(var, name, cat) [[maybe_unused]] ::umc::obs::NullSpan var
#define UMC_OBS_SPAN_VAR_L(var, name, cat, logical) [[maybe_unused]] ::umc::obs::NullSpan var
#else
#define UMC_OBS_SPAN_VAR(var, name, cat) ::umc::obs::ScopedSpan var { (name), (cat) }
#define UMC_OBS_SPAN_VAR_L(var, name, cat, logical) \
  ::umc::obs::ScopedSpan var { (name), (cat), (logical) }
#endif

/// Anonymous span covering the enclosing scope.
#define UMC_OBS_SPAN(name, cat) \
  UMC_OBS_SPAN_VAR(UMC_OBS_CONCAT(umc_obs_span_, __COUNTER__), name, cat)
/// Anonymous span with a logical-clock value (round number, depth, ...).
#define UMC_OBS_SPAN_L(name, cat, logical) \
  UMC_OBS_SPAN_VAR_L(UMC_OBS_CONCAT(umc_obs_span_, __COUNTER__), name, cat, logical)

}  // namespace umc::obs
