// Parameterized sweeps for the Appendix A primitives over (tree family x
// size x aggregator): subtree and ancestor sums must match the centralized
// reference, the HL construction must match the reference labels, and the
// supported-CONGEST SQ estimate (Theorem 1 bullet 2 proxy) must stay in
// [√n-ish, n].

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "congest/compile.hpp"
#include "graph/generators.hpp"
#include "minoragg/tree_primitives.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {
namespace {

enum class TreeFamily { kRandom, kPath, kStar, kBinary, kCaterpillar };

struct PrimParam {
  TreeFamily family;
  NodeId n;
  std::uint64_t seed;
};

std::string fam_name(TreeFamily f) {
  switch (f) {
    case TreeFamily::kRandom: return "random";
    case TreeFamily::kPath: return "path";
    case TreeFamily::kStar: return "star";
    case TreeFamily::kBinary: return "binary";
    case TreeFamily::kCaterpillar: return "caterpillar";
  }
  return "?";
}

WeightedGraph build_tree(const PrimParam& p) {
  Rng rng(p.seed);
  switch (p.family) {
    case TreeFamily::kRandom: return random_tree(p.n, rng);
    case TreeFamily::kPath: return path_graph(p.n);
    case TreeFamily::kStar: return star_graph(p.n);
    case TreeFamily::kBinary: return binary_tree(p.n);
    case TreeFamily::kCaterpillar: {
      // Spine of n/2 nodes, each with one pendant leaf.
      WeightedGraph g(p.n);
      const NodeId spine = p.n / 2;
      for (NodeId v = 0; v + 1 < spine; ++v) g.add_edge(v, v + 1);
      for (NodeId v = spine; v < p.n; ++v) g.add_edge(v - spine, v);
      return g;
    }
  }
  return path_graph(p.n);
}

class PrimitiveSweep : public ::testing::TestWithParam<PrimParam> {};

TEST_P(PrimitiveSweep, SubtreeAndAncestorSumsMatchReference) {
  const WeightedGraph g = build_tree(GetParam());
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  const RootedTree t(g, ids, 0);
  const HeavyLightDecomposition hld(t);
  Rng rng(GetParam().seed ^ 0xabcd);
  std::vector<std::int64_t> input(static_cast<std::size_t>(g.n()));
  for (auto& v : input) v = rng.next_in(-9, 9);

  Ledger ledger;
  const auto sub = hl_subtree_sums<SumAgg>(t, hld, input, ledger);
  const auto anc = hl_ancestor_sums<SumAgg>(t, hld, input, ledger);
  const auto sub_min = hl_subtree_sums<MinAgg>(t, hld, input, ledger);
  for (NodeId v = 0; v < g.n(); ++v) {
    std::int64_t aref = 0;
    for (NodeId x = v; x != kNoNode; x = t.parent(x)) aref += input[static_cast<std::size_t>(x)];
    EXPECT_EQ(anc[static_cast<std::size_t>(v)], aref);
  }
  // Reference subtree sums / mins by reverse preorder accumulation.
  std::vector<std::int64_t> sref(input.begin(), input.end());
  std::vector<std::int64_t> mref(input.begin(), input.end());
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId p = t.parent(*it);
    if (p == kNoNode) continue;
    sref[static_cast<std::size_t>(p)] += sref[static_cast<std::size_t>(*it)];
    mref[static_cast<std::size_t>(p)] =
        std::min(mref[static_cast<std::size_t>(p)], mref[static_cast<std::size_t>(*it)]);
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(sub[static_cast<std::size_t>(v)], sref[static_cast<std::size_t>(v)]);
    EXPECT_EQ(sub_min[static_cast<std::size_t>(v)], mref[static_cast<std::size_t>(v)]);
  }
}

TEST_P(PrimitiveSweep, HlConstructMatchesReference) {
  const WeightedGraph g = build_tree(GetParam());
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  const RootedTree t(g, ids, 0);
  Ledger ledger;
  const HeavyLightDecomposition built = hl_construct(t, ledger);
  const HeavyLightDecomposition ref(t);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(built.hl_depth(v), ref.hl_depth(v));
}

std::vector<PrimParam> prim_grid() {
  std::vector<PrimParam> out;
  for (const TreeFamily f : {TreeFamily::kRandom, TreeFamily::kPath, TreeFamily::kStar,
                             TreeFamily::kBinary, TreeFamily::kCaterpillar}) {
    for (const NodeId n : {2, 17, 128}) out.push_back({f, n, 5});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(TreeFamilies, PrimitiveSweep, ::testing::ValuesIn(prim_grid()),
                         [](const ::testing::TestParamInfo<PrimParam>& info) {
                           return fam_name(info.param.family) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(ShortcutQualityEstimate, BoundedBySqrtNishAndN) {
  Rng rng(9);
  for (const auto& g :
       {grid_graph(12, 12), path_graph(144), erdos_renyi_connected(144, 0.06, rng)}) {
    const std::int64_t sq = congest::estimate_shortcut_quality(g, 3, 11);
    EXPECT_GE(sq, static_cast<std::int64_t>(isqrt(144)) / 2);
    EXPECT_LE(sq, 8 * 144);
  }
  // A path's estimate is D-dominated (global part): far above the grid's.
  const std::int64_t path_sq = congest::estimate_shortcut_quality(path_graph(400), 2, 1);
  const std::int64_t grid_sq = congest::estimate_shortcut_quality(grid_graph(20, 20), 2, 1);
  EXPECT_GT(path_sq, 2 * grid_sq);
}

}  // namespace
}  // namespace umc::minoragg
