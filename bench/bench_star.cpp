// Experiment E5 (Figure 2 / Theorem 27 / Lemmas 30 & 32): star instances.
//
// Sweeps the number of paths k and the path length, reporting the measured
// interest-graph degree (Lemma 30 bounds it by O(log n)), the number of
// edge-coloring classes (O(Δ)), and Minor-Aggregation rounds.

#include "bench_common.hpp"
#include "mincut/star.hpp"

namespace umc {
namespace {

mincut::StarInstance spider_instance(const WeightedGraph& g, int k, NodeId len) {
  mincut::StarInstance inst;
  inst.graph = g;
  inst.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
  inst.origin.assign(static_cast<std::size_t>(g.m()), kNoEdge);
  inst.root = 0;
  for (int i = 0; i < k; ++i) {
    std::vector<NodeId> nodes;
    std::vector<EdgeId> edges;
    for (NodeId j = 0; j < len; ++j) {
      nodes.push_back(1 + static_cast<NodeId>(i) * len + j);
      const EdgeId e = static_cast<EdgeId>(i) * len + j;
      edges.push_back(e);
      inst.origin[static_cast<std::size_t>(e)] = e;
    }
    inst.path_nodes.push_back(std::move(nodes));
    inst.path_edges.push_back(std::move(edges));
  }
  return inst;
}

void run_star(benchmark::State& state, int k, NodeId len) {
  Rng rng(5 + static_cast<std::uint64_t>(k) * 131 + static_cast<std::uint64_t>(len));
  WeightedGraph g = spider(k, len, 6 * k * static_cast<EdgeId>(len), rng);
  randomize_weights(g, 1, 100, rng);
  const mincut::StarInstance inst = spider_instance(g, k, len);

  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(mincut::star_mincut(inst, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  state.counters["k"] = k;
  state.counters["path_len"] = len;
  state.counters["n"] = g.n();
  state.counters["log2_n"] = std::max(1, ceil_log2(static_cast<std::uint64_t>(g.n())));
}

void BM_StarSweepK(benchmark::State& state) {
  run_star(state, static_cast<int>(state.range(0)), 12);
}
void BM_StarSweepLen(benchmark::State& state) {
  run_star(state, 8, static_cast<NodeId>(state.range(0)));
}

BENCHMARK(BM_StarSweepK)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StarSweepLen)->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
