#pragma once

// Karger-Stein recursive contraction (centralized, randomized).
//
// The stronger classical baseline: contract down to n/√2 + 1 supernodes,
// recurse twice, take the better branch — success probability Ω(1/log n)
// per run vs Ω(1/n²) for flat contraction. Used as a second randomized
// oracle and in the baseline benchmarks.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace umc::baseline {

/// Best cut over `repeats` recursive-contraction runs. Requires a connected
/// graph with n >= 2. Θ(log² n) repeats give whp correctness.
[[nodiscard]] Weight karger_stein_min_cut(const WeightedGraph& g, int repeats, Rng& rng);

}  // namespace umc::baseline
