#pragma once

// Borůvka MST as a Minor-Aggregation algorithm — the instructive example of
// the paper's introduction, and the workhorse of the greedy tree packing
// (Theorem 12), which re-runs it O(log^2 n) times under changing edge costs.
//
// Each iteration is one literal Definition 9 round: contract the forest
// built so far, let every surviving minor edge propose (cost, id) to both
// endpoints, and min-aggregate per supernode. O(log n) iterations.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "minoragg/ledger.hpp"

namespace umc::minoragg {

/// Minimum spanning tree under external costs (ties by edge id, so costs
/// need not be distinct). Requires a connected graph. Returns tree edge ids.
[[nodiscard]] std::vector<EdgeId> boruvka_mst(const WeightedGraph& g,
                                              std::span<const std::int64_t> cost,
                                              Ledger& ledger);

}  // namespace umc::minoragg
