// mincutd — the persistent multi-tenant min-cut daemon.
//
//   $ mincutd [--width N] [--max-sessions N] [--queue N] [--tenant-queue N]
//             [--round-budget N] [--wall-budget-ms X] [--trees N] [--seed S]
//             [--no-verify] [--trace out.json] [--metrics-out out.prom]
//
// Speaks the length-prefixed frame protocol (src/server/protocol.hpp) on
// stdin/stdout: LOAD / MUTATE / SOLVE / STATS / EVICT / SHUTDOWN. Tenant
// sessions stay resident between requests (graph, packing cache, rng
// stream), requests are scheduled with per-tenant weighted-fair queuing and
// bounded admission, and every SOLVE runs under the fault supervisor's
// degradation ladder. Diagnostics go to stderr; the wire owns stdout.
//
// Shutdown: SIGINT/SIGTERM (or a SHUTDOWN frame) stops admission — further
// data-plane requests are answered with a structured SHUTTING_DOWN error —
// drains queued and in-flight solves, flushes the trace and metrics sinks,
// and exits 0. EOF on stdin is the normal client hang-up and drains the
// same way.
//
//   --width          request workers (cross-tenant concurrency; default 2)
//   --max-sessions   resident-session LRU ceiling (default 16)
//   --queue          global admission queue depth (default 256)
//   --tenant-queue   per-tenant admission queue depth (default 64)
//   --round-budget   per-solve charged-round budget, 0 = none (default 0)
//   --wall-budget-ms per-solve wall budget, 0 = none (default 0)
//   --trees          default packing tree cap for SOLVE (default 16)
//   --seed           base seed of the per-tenant rng streams (default 1)
//   --no-verify      skip the guard battery (answers served uncertified)
//   --trace          enable the span tracer; write Chrome JSON at exit
//   --metrics-out    write the Prometheus metrics dump at exit

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/engine.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  umc::server::EngineConfig engine;
  std::string trace_path;
  std::string metrics_path;
};

bool parse_flag_int(const char* tok, long long lo, long long hi, long long& out) {
  const char* last = tok + std::strlen(tok);
  const auto [ptr, ec] = std::from_chars(tok, last, out);
  return ec == std::errc{} && ptr == last && out >= lo && out <= hi;
}

bool parse_flag_double(const char* tok, double& out) {
  char* end = nullptr;
  out = std::strtod(tok, &end);
  return end != nullptr && *end == '\0' && out >= 0.0;
}

void usage() {
  std::fprintf(stderr,
               "usage: mincutd [--width N] [--max-sessions N] [--queue N] [--tenant-queue N]\n"
               "               [--round-budget N] [--wall-budget-ms X] [--trees N] [--seed S]\n"
               "               [--no-verify] [--trace out.json] [--metrics-out out.prom]\n");
}

/// Returns false (after printing the cause) on any malformed argv.
bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next_value = [&](const char*& v) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a);
        return false;
      }
      v = argv[++i];
      return true;
    };
    const auto int_value = [&](long long lo, long long hi, long long& n) {
      const char* v = nullptr;
      if (!next_value(v)) return false;
      if (!parse_flag_int(v, lo, hi, n)) {
        std::fprintf(stderr, "error: bad %s value '%s'\n", a, v);
        return false;
      }
      return true;
    };
    long long n = 0;
    if (std::strcmp(a, "--width") == 0) {
      if (!int_value(1, 64, n)) return false;
      opt.engine.scheduler_width = static_cast<int>(n);
    } else if (std::strcmp(a, "--max-sessions") == 0) {
      if (!int_value(1, 1 << 20, n)) return false;
      opt.engine.max_sessions = static_cast<std::size_t>(n);
    } else if (std::strcmp(a, "--queue") == 0) {
      if (!int_value(1, 1 << 20, n)) return false;
      opt.engine.max_queued_global = static_cast<int>(n);
    } else if (std::strcmp(a, "--tenant-queue") == 0) {
      if (!int_value(1, 1 << 20, n)) return false;
      opt.engine.max_queued_per_tenant = static_cast<int>(n);
    } else if (std::strcmp(a, "--round-budget") == 0) {
      if (!int_value(0, 1LL << 60, n)) return false;
      opt.engine.solve_round_budget = n;
    } else if (std::strcmp(a, "--wall-budget-ms") == 0) {
      const char* v = nullptr;
      double x = 0.0;
      if (!next_value(v)) return false;
      if (!parse_flag_double(v, x)) {
        std::fprintf(stderr, "error: bad %s value '%s'\n", a, v);
        return false;
      }
      opt.engine.solve_wall_budget_ms = x;
    } else if (std::strcmp(a, "--trees") == 0) {
      if (!int_value(1, 1 << 20, n)) return false;
      opt.engine.default_max_trees = static_cast<int>(n);
    } else if (std::strcmp(a, "--seed") == 0) {
      if (!int_value(0, 1LL << 62, n)) return false;
      opt.engine.rng_seed = static_cast<std::uint64_t>(n);
    } else if (std::strcmp(a, "--no-verify") == 0) {
      opt.engine.verify = false;
    } else if (std::strcmp(a, "--trace") == 0) {
      const char* v = nullptr;
      if (!next_value(v)) return false;
      opt.trace_path = v;
    } else if (std::strcmp(a, "--metrics-out") == 0) {
      const char* v = nullptr;
      if (!next_value(v)) return false;
      opt.metrics_path = v;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a);
      return false;
    }
  }
  return true;
}

/// The "flush trace/metrics buffers before exit" half of graceful shutdown.
void flush_observability(const Options& opt) {
  if (!opt.metrics_path.empty()) {
    std::ofstream os(opt.metrics_path);
    if (os) umc::obs::write_prometheus(os, umc::obs::MetricsRegistry::global());
  }
  if (!opt.trace_path.empty()) {
    std::ofstream os(opt.trace_path);
    if (os) {
      const auto events = umc::obs::Tracer::global().snapshot();
      umc::obs::write_chrome_trace(os, events, umc::obs::Tracer::global().dropped());
    }
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umc;
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  std::ios::sync_with_stdio(false);
  if (!opt.trace_path.empty()) obs::Tracer::global().set_enabled(true);

  server::Engine engine(opt.engine);

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read may stay blocked,
                    // so shutdown is driven from this thread, not the reader
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  // The serve loop blocks reading stdin, so it runs on its own thread and
  // main stays free to react to signals even when no frames arrive.
  std::atomic<bool> done{false};
  server::Engine::ServeStats stats;
  std::thread serve_thread([&] {
    stats = engine.serve(std::cin, std::cout);
    done.store(true, std::memory_order_release);
  });

  while (!done.load(std::memory_order_acquire) && g_stop == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  if (!done.load(std::memory_order_acquire)) {
    // Signal path: stop admission (the reader answers SHUTTING_DOWN until
    // the client hangs up), drain admitted work, flush, exit without
    // waiting for EOF — the reader thread dies with the process.
    engine.begin_shutdown();
    engine.wait_drained();
    flush_observability(opt);
    std::fprintf(stderr, "mincutd: signal received; backlog drained, exiting\n");
    std::_Exit(0);
  }

  serve_thread.join();
  flush_observability(opt);
  std::fprintf(stderr,
               "mincutd: connection closed (frames=%lld responses=%lld parse_errors=%lld "
               "frame_errors=%lld, %zu session(s) resident)\n",
               static_cast<long long>(stats.frames), static_cast<long long>(stats.responses),
               static_cast<long long>(stats.parse_errors),
               static_cast<long long>(stats.frame_errors), engine.session_count());
  return 0;
}
