#pragma once

// Literal Theorem 14 simulation: execute one Minor-Aggregation round of a
// VIRTUAL graph using only rounds on the underlying real graph, following
// the constructive proof step by step:
//
//   1. contract the real contracted edges F_real;
//   2. beta rounds: each real supernode learns which virtual nodes it is
//      directly connected to via contracted virtual edges (OR-consensus per
//      virtual node), after which everyone can derive their supernode id in
//      G_virt / F_virt locally (virtual-edge topology is globally known by
//      the distributed-storage rules of Section 4.1);
//   3. consensus: one round for supernodes containing no virtual node, then
//      one contract-everything round per virtual supernode;
//   4. aggregation: same two-phase schedule; a virtual edge is simulated by
//      its real endpoint (or by everyone, if both endpoints are virtual).
//
// The measured real-round cost is O(beta + 1) per simulated round — the
// charge `settle_virtual_execution` applies wholesale. Tests verify the
// outputs equal a direct execution on the virtual graph, and that the cost
// matches the bound.

#include <functional>
#include <map>

#include "graph/minors.hpp"
#include "minoragg/network.hpp"
#include "minoragg/round_engine.hpp"
#include "minoragg/virtual_graph.hpp"

namespace umc::minoragg {

/// Result indexed by nodes of the VIRTUAL graph.
template <typename Y, typename Z>
struct VirtualRoundResult {
  std::vector<Y> consensus;
  std::vector<Z> aggregate;
  std::vector<NodeId> supernode;  // min contained node id, virtual included
  std::int64_t real_rounds = 0;   // measured rounds on the real graph
};

template <Aggregator CAgg, Aggregator XAgg>
VirtualRoundResult<typename CAgg::value_type, typename XAgg::value_type>
simulate_virtual_round(
    const VirtualGraph& gv, const std::vector<bool>& contract,
    std::span<const typename CAgg::value_type> node_input,
    const std::function<std::pair<typename XAgg::value_type, typename XAgg::value_type>(
        EdgeId, const typename CAgg::value_type&, const typename CAgg::value_type&)>&
        edge_values,
    Ledger& ledger) {
  using Y = typename CAgg::value_type;
  using Z = typename XAgg::value_type;
  const WeightedGraph& vgraph = gv.graph;
  UMC_ASSERT(static_cast<EdgeId>(contract.size()) == vgraph.m());
  UMC_ASSERT(static_cast<NodeId>(node_input.size()) == vgraph.n());
  const std::int64_t start = ledger.rounds();
  // Logical clock: the real round this virtual round starts at; the nested
  // "ma/round" spans carry the per-round numbers.
  UMC_OBS_SPAN_VAR_L(obs_virt, "ma/virtual_round", "ma", start);
  obs_virt.arg("beta", static_cast<std::int64_t>(gv.beta()));
  obs_virt.arg("n_virt", vgraph.n());

  // The real communication graph (virtual nodes and their edges removed).
  std::vector<bool> keep(static_cast<std::size_t>(vgraph.n()));
  for (NodeId v = 0; v < vgraph.n(); ++v) keep[static_cast<std::size_t>(v)] = !gv.is_virtual[static_cast<std::size_t>(v)];
  const DerivedGraph real = induced_subgraph(vgraph, keep);
  UMC_ASSERT_MSG(real.graph.n() >= 1, "the real graph must be non-empty");
  Network net(real.graph, ledger);

  // Step 1: contract F_real (real contracted edges) — id bookkeeping for
  // the following rounds.
  std::vector<bool> contract_real(static_cast<std::size_t>(real.graph.m()), false);
  for (EdgeId e = 0; e < real.graph.m(); ++e)
    contract_real[static_cast<std::size_t>(e)] =
        contract[static_cast<std::size_t>(real.edge_origin[static_cast<std::size_t>(e)])];

  // Step 2: per virtual node, one OR-consensus round: is my real supernode
  // directly connected to it via a contracted virtual edge?
  std::vector<NodeId> virtuals;
  for (NodeId v = 0; v < vgraph.n(); ++v)
    if (gv.is_virtual[static_cast<std::size_t>(v)]) virtuals.push_back(v);
  // connected_virt[real node r][i]: r's supernode touches virtuals[i].
  std::vector<std::vector<std::uint8_t>> connected(
      static_cast<std::size_t>(real.graph.n()), std::vector<std::uint8_t>(virtuals.size(), 0));
  for (std::size_t i = 0; i < virtuals.size(); ++i) {
    std::vector<std::uint8_t> flag(static_cast<std::size_t>(real.graph.n()), 0);
    for (EdgeId e = 0; e < vgraph.m(); ++e) {
      if (!contract[static_cast<std::size_t>(e)]) continue;
      const Edge& ed = vgraph.edge(e);
      for (const auto& [a, b] : {std::pair{ed.u, ed.v}, std::pair{ed.v, ed.u}}) {
        if (a != virtuals[i]) continue;
        if (gv.is_virtual[static_cast<std::size_t>(b)]) continue;
        flag[static_cast<std::size_t>(real.node_map[static_cast<std::size_t>(b)])] = 1;
      }
    }
    const auto or_res = net.part_aggregate<OrAgg>(contract_real, flag);
    for (NodeId r = 0; r < real.graph.n(); ++r)
      connected[static_cast<std::size_t>(r)][i] = or_res[static_cast<std::size_t>(r)];
  }

  // Everyone now derives its G_virt/F_virt supernode id locally: the
  // virtual-edge topology is globally known, so the connected-component
  // structure over {real supernodes touching virtuals} + {virtuals under
  // contracted virtual-virtual edges} is local knowledge. (Ground truth via
  // the round-execution engine's cached plan — the same partition a direct
  // virtual-graph execution would use; the information flow above justifies
  // it.)
  RoundEngine vengine(vgraph);
  const RoundPlan& vplan = vengine.plan(contract);
  VirtualRoundResult<Y, Z> out;
  out.supernode = vplan.supernode;
  std::vector<std::uint8_t> group_has_virtual(static_cast<std::size_t>(vplan.num_groups), 0);
  for (const NodeId v : virtuals)
    group_has_virtual[static_cast<std::size_t>(
        vplan.group_of[static_cast<std::size_t>(v)])] = 1;
  const auto has_virtual = [&](NodeId node) {
    return group_has_virtual[static_cast<std::size_t>(
               vplan.group_of[static_cast<std::size_t>(node)])] != 0;
  };
  const auto same_supernode = [&](NodeId a, NodeId b) {
    return vplan.group_of[static_cast<std::size_t>(a)] ==
           vplan.group_of[static_cast<std::size_t>(b)];
  };

  // Step 3: consensus. Round A: supernodes without virtual nodes, on
  // G/F_real. Rounds B: one contract-everything round per virtual
  // supernode.
  std::map<NodeId, Y> y_of;  // per G_virt supernode representative
  {
    std::vector<Y> x_real(static_cast<std::size_t>(real.graph.n()));
    for (NodeId v = 0; v < vgraph.n(); ++v)
      if (!gv.is_virtual[static_cast<std::size_t>(v)])
        x_real[static_cast<std::size_t>(real.node_map[static_cast<std::size_t>(v)])] =
            node_input[static_cast<std::size_t>(v)];
    const auto plain = net.part_aggregate<CAgg>(contract_real, x_real);
    for (NodeId v = 0; v < vgraph.n(); ++v) {
      if (gv.is_virtual[static_cast<std::size_t>(v)]) continue;
      if (!has_virtual(v)) {
        const NodeId rep = out.supernode[static_cast<std::size_t>(v)];
        y_of[rep] = plain[static_cast<std::size_t>(real.node_map[static_cast<std::size_t>(v)])];
      }
    }
    // Per virtual supernode: contract everything, members output x, others
    // output the identity.
    for (const NodeId v_virt : virtuals) {
      // Only the smallest virtual node of each supernode drives its round;
      // the others still consume their round slot (the proof iterates over
      // all beta virtual nodes unconditionally).
      bool is_driver = true;
      for (const NodeId w : virtuals)
        if (w < v_virt && same_supernode(w, v_virt)) is_driver = false;
      if (!is_driver) {
        ledger.charge(1);  // the proof still spends the round slot
        continue;
      }
      std::vector<Y> x_masked(static_cast<std::size_t>(real.graph.n()), CAgg::identity());
      Y acc = CAgg::identity();
      for (NodeId v = 0; v < vgraph.n(); ++v) {
        if (!same_supernode(v, v_virt)) continue;
        if (gv.is_virtual[static_cast<std::size_t>(v)]) {
          acc = CAgg::merge(std::move(acc), node_input[static_cast<std::size_t>(v)]);
        } else {
          x_masked[static_cast<std::size_t>(real.node_map[static_cast<std::size_t>(v)])] =
              node_input[static_cast<std::size_t>(v)];
        }
      }
      const Y real_part = net.all_aggregate<CAgg>(x_masked);
      y_of[out.supernode[static_cast<std::size_t>(v_virt)]] =
          CAgg::merge(std::move(acc), real_part);
    }
  }
  out.consensus.resize(static_cast<std::size_t>(vgraph.n()));
  for (NodeId v = 0; v < vgraph.n(); ++v)
    out.consensus[static_cast<std::size_t>(v)] = y_of.at(out.supernode[static_cast<std::size_t>(v)]);

  // Step 4: aggregation, same schedule. Each surviving G_virt edge computes
  // its z-pair (simulated by a real endpoint, or by everyone if both ends
  // are virtual); fold per supernode, following the plan's precomputed
  // surviving-edge list (ascending edge id — the reference fold order).
  std::vector<Z> z_group(static_cast<std::size_t>(vplan.num_groups), XAgg::identity());
  for (const RoundPlan::MinorEdge& me : vplan.edges) {
    auto [zu, zv] = edge_values(me.e, out.consensus[static_cast<std::size_t>(me.u)],
                                out.consensus[static_cast<std::size_t>(me.v)]);
    auto& slot_u = z_group[static_cast<std::size_t>(me.gu)];
    slot_u = XAgg::merge(std::move(slot_u), std::move(zu));
    auto& slot_v = z_group[static_cast<std::size_t>(me.gv)];
    slot_v = XAgg::merge(std::move(slot_v), std::move(zv));
  }
  // Round accounting for the aggregation phase: one round for plain
  // supernodes + one contract-all round per virtual supernode (the fold
  // above is the value computation those rounds realize).
  ledger.charge(1 + static_cast<std::int64_t>(virtuals.size()));
  out.aggregate.resize(static_cast<std::size_t>(vgraph.n()));
  for (NodeId v = 0; v < vgraph.n(); ++v)
    out.aggregate[static_cast<std::size_t>(v)] =
        z_group[static_cast<std::size_t>(vplan.group_of[static_cast<std::size_t>(v)])];

  out.real_rounds = ledger.rounds() - start;
  return out;
}

}  // namespace umc::minoragg
