#include "tree/spanning.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/dsu.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace umc {

std::vector<EdgeId> bfs_spanning_tree(const WeightedGraph& g, NodeId root) {
  UMC_ASSERT(root >= 0 && root < g.n());
  std::vector<bool> seen(static_cast<std::size_t>(g.n()), false);
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.n()) - 1);
  std::queue<NodeId> q;
  seen[static_cast<std::size_t>(root)] = true;
  q.push(root);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const AdjEntry& a : g.adj(v)) {
      if (seen[static_cast<std::size_t>(a.to)]) continue;
      seen[static_cast<std::size_t>(a.to)] = true;
      tree.push_back(a.edge);
      q.push(a.to);
    }
  }
  UMC_ASSERT_MSG(static_cast<NodeId>(tree.size()) == g.n() - 1, "graph must be connected");
  return tree;
}

std::vector<EdgeId> kruskal_mst(const WeightedGraph& g, std::span<const double> cost) {
  UMC_ASSERT(static_cast<EdgeId>(cost.size()) == g.m());
  std::vector<EdgeId> order(static_cast<std::size_t>(g.m()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&cost](EdgeId a, EdgeId b) {
    const double ca = cost[static_cast<std::size_t>(a)];
    const double cb = cost[static_cast<std::size_t>(b)];
    return ca != cb ? ca < cb : a < b;
  });
  Dsu dsu(g.n());
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.n()) - 1);
  for (const EdgeId e : order) {
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  }
  UMC_ASSERT_MSG(static_cast<NodeId>(tree.size()) == g.n() - 1, "graph must be connected");
  return tree;
}

std::vector<EdgeId> kruskal_mst(const WeightedGraph& g) {
  std::vector<double> cost(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e)
    cost[static_cast<std::size_t>(e)] = static_cast<double>(g.edge(e).w);
  return kruskal_mst(g, cost);
}

namespace {

/// Per-chunk candidate fold scratch: the per-root running minimum for the
/// components a chunk's edges touch. Epoch tags replace O(n) clears, and the
/// object is checked out of the thread-local ScratchLease arena, so a fold
/// task allocates nothing once the pool is warm — whichever session thread
/// claims it.
struct MinEdgeScratch {
  std::vector<std::int64_t> best_cost;
  std::vector<EdgeId> best_edge;
  std::vector<std::uint32_t> tag;
  std::vector<NodeId> touched;
  std::uint32_t epoch = 0;

  void begin(NodeId n) {
    const auto need = static_cast<std::size_t>(n);
    if (tag.size() < need) {
      best_cost.resize(need);
      best_edge.resize(need);
      tag.resize(need, 0);
    }
    touched.clear();
    if (++epoch == 0) {  // tag wraparound: one eager clear per 2^32 phases
      std::fill(tag.begin(), tag.end(), 0u);
      epoch = 1;
    }
  }

  void offer(NodeId root, std::int64_t cost, EdgeId edge) {
    const auto r = static_cast<std::size_t>(root);
    if (tag[r] != epoch) {
      tag[r] = epoch;
      best_cost[r] = cost;
      best_edge[r] = edge;
      touched.push_back(root);
    } else if (cost < best_cost[r] || (cost == best_cost[r] && edge < best_edge[r])) {
      best_cost[r] = cost;
      best_edge[r] = edge;
    }
  }
};

/// Chunk-count ceiling: enough chunks to feed the session width, but never
/// so many that per-chunk merge overhead beats the scan itself. The chunk
/// layout is a pure function of (live-edge count, min_chunk_edges_), so the
/// chunking — and with it every scheduling-independent output — is
/// deterministic for a fixed configuration; and since per-component minima
/// merge identically under ANY chunking, even different granularities agree.
constexpr std::size_t kMaxChunks = 16;

}  // namespace

NodeId BoruvkaPacker::find(NodeId v) {
  while (parent_[static_cast<std::size_t>(v)] != v) {
    parent_[static_cast<std::size_t>(v)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
    v = parent_[static_cast<std::size_t>(v)];
  }
  return v;
}

void BoruvkaPacker::scan_chunk(const WeightedGraph& g, std::span<const std::int64_t> cost,
                               std::size_t chunk, std::size_t begin, std::size_t end) {
  ScratchLease<MinEdgeScratch> lease;
  MinEdgeScratch& s = *lease;
  s.begin(g.n());
  ChunkOut& out = chunks_[chunk];
  out.candidates.clear();
  out.survivors.clear();
  const std::span<const Edge> edges = g.edges();
  for (std::size_t i = begin; i < end; ++i) {
    const EdgeId e = live_[i];
    const Edge& ed = edges[static_cast<std::size_t>(e)];
    const NodeId cu = comp_[static_cast<std::size_t>(ed.u)];
    const NodeId cv = comp_[static_cast<std::size_t>(ed.v)];
    if (cu == cv) continue;  // became internal in an earlier phase
    out.survivors.push_back(e);
    const std::int64_t c = cost[static_cast<std::size_t>(e)];
    s.offer(cu, c, e);
    s.offer(cv, c, e);
  }
  for (const NodeId r : s.touched)
    out.candidates.emplace_back(
        r, Cand{s.best_cost[static_cast<std::size_t>(r)], s.best_edge[static_cast<std::size_t>(r)]});
}

BoruvkaPacker::Result BoruvkaPacker::run(const WeightedGraph& g,
                                         std::span<const std::int64_t> cost) {
  const NodeId n = g.n();
  UMC_ASSERT(n >= 1);
  UMC_ASSERT(static_cast<EdgeId>(cost.size()) == g.m());

  comp_.resize(static_cast<std::size_t>(n));
  parent_.resize(static_cast<std::size_t>(n));
  std::iota(comp_.begin(), comp_.end(), NodeId{0});
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
  size_.assign(static_cast<std::size_t>(n), 1);
  live_.resize(static_cast<std::size_t>(g.m()));
  std::iota(live_.begin(), live_.end(), EdgeId{0});
  tree_.clear();
  if (best_tag_.size() < static_cast<std::size_t>(n)) {
    best_.resize(static_cast<std::size_t>(n));
    best_tag_.resize(static_cast<std::size_t>(n), 0);
  }

  NodeId components = n;
  int phases = 0;
  while (components > 1) {
    // Chunk-parallel candidate fold: each chunk computes per-component
    // minima over a contiguous slice of the live-edge list, into its own
    // output slot. Component-wise minimum under the strict (cost, id) order
    // is associative, commutative, and idempotent, so any chunking and any
    // execution order merge to the same per-component winner.
    const std::size_t live = live_.size();
    const std::size_t nc = std::clamp<std::size_t>(live / min_chunk_edges_, 1, kMaxChunks);
    if (chunks_.size() < nc) chunks_.resize(nc);
    if (nc == 1) {
      scan_chunk(g, cost, 0, 0, live);
    } else {
      TaskGroup fold;
      for (std::size_t c = 0; c < nc; ++c) {
        const std::size_t begin = live * c / nc;
        const std::size_t end = live * (c + 1) / nc;
        fold.spawn([this, &g, cost, c, begin, end] { scan_chunk(g, cost, c, begin, end); });
      }
      fold.join();
    }

    // Merge per-chunk minima into the global per-component winner.
    if (++epoch_ == 0) {
      std::fill(best_tag_.begin(), best_tag_.end(), 0u);
      epoch_ = 1;
    }
    touched_.clear();
    for (std::size_t c = 0; c < nc; ++c) {
      for (const auto& [root, cand] : chunks_[c].candidates) {
        const auto r = static_cast<std::size_t>(root);
        if (best_tag_[r] != epoch_) {
          best_tag_[r] = epoch_;
          best_[r] = cand;
          touched_.push_back(root);
        } else if (cand.cost < best_[r].cost ||
                   (cand.cost == best_[r].cost && cand.edge < best_[r].edge)) {
          best_[r] = cand;
        }
      }
    }
    UMC_ASSERT_MSG(!touched_.empty(), "boruvka requires a connected graph");

    // Select: each component's winner joins the forest. An edge can win for
    // both of its endpoint components; the second unite sees one component
    // and skips it — the same dedup the MA producer gets from its chosen
    // set. With a strict total order the distinct winners are cycle-free,
    // so every other unite succeeds.
    for (const NodeId root : touched_) {
      const Cand cand = best_[static_cast<std::size_t>(root)];
      const Edge& ed = g.edge(cand.edge);
      NodeId a = find(ed.u);
      NodeId b = find(ed.v);
      if (a == b) continue;
      if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)])
        std::swap(a, b);
      parent_[static_cast<std::size_t>(b)] = a;
      size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
      tree_.push_back(cand.edge);
      --components;
    }
    ++phases;

    if (components > 1) {
      // Relabel components and compact the live list (chunk order keeps it
      // in original edge order) for the next phase.
      for (NodeId v = 0; v < n; ++v) comp_[static_cast<std::size_t>(v)] = find(v);
      std::size_t w = 0;
      for (std::size_t c = 0; c < nc; ++c)
        for (const EdgeId e : chunks_[c].survivors) live_[w++] = e;
      live_.resize(w);
    }
  }

  std::sort(tree_.begin(), tree_.end());
  UMC_ASSERT(static_cast<NodeId>(tree_.size()) == n - 1);
  return Result{std::span<const EdgeId>(tree_), phases};
}

std::vector<EdgeId> wilson_random_spanning_tree(const WeightedGraph& g, Rng& rng) {
  const NodeId n = g.n();
  UMC_ASSERT(n >= 1);
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  std::vector<EdgeId> next_edge(static_cast<std::size_t>(n), kNoEdge);
  in_tree[0] = true;
  std::vector<EdgeId> tree;
  for (NodeId start = 1; start < n; ++start) {
    if (in_tree[static_cast<std::size_t>(start)]) continue;
    // Random walk from `start` until hitting the tree, recording last exits.
    NodeId v = start;
    while (!in_tree[static_cast<std::size_t>(v)]) {
      const auto adj = g.adj(v);
      UMC_ASSERT_MSG(!adj.empty(), "graph must be connected");
      const AdjEntry& a = adj[static_cast<std::size_t>(rng.next_below(adj.size()))];
      next_edge[static_cast<std::size_t>(v)] = a.edge;
      v = a.to;
    }
    // Retrace the loop-erased walk and add it to the tree.
    v = start;
    while (!in_tree[static_cast<std::size_t>(v)]) {
      in_tree[static_cast<std::size_t>(v)] = true;
      const EdgeId e = next_edge[static_cast<std::size_t>(v)];
      tree.push_back(e);
      v = g.edge(e).other(v);
    }
  }
  return tree;
}

}  // namespace umc
