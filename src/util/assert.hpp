#pragma once

// Lightweight always-on assertion machinery.
//
// Simulation code validates model invariants (e.g. "a Minor-Aggregation
// message fits in its bit budget", "an instance tree is connected") even in
// release builds: a silent invariant violation would corrupt the measured
// round counts that the experiments report.

#include <sstream>
#include <stdexcept>
#include <string>

namespace umc {

/// Thrown when a model or algorithm invariant is violated.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace umc

#define UMC_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::umc::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define UMC_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) ::umc::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
