// Experiment E11 (Section 1 context): crossover against the naive CONGEST
// baseline that ships the whole graph to one node (Θ(D + m) rounds).
//
// On sparse graphs with moderate n the baseline can win (tiny m); as m
// grows, the shortcut-compiled Õ(D+√n) algorithm overtakes it — the
// "speedup" counter crosses 1.0 within the density sweep, reproducing why
// sublinear-in-m algorithms matter.

#include "bench_common.hpp"
#include "congest/compile.hpp"
#include "congest/gather_baseline.hpp"
#include "mincut/exact_mincut.hpp"

namespace umc {
namespace {

void run_crossover(benchmark::State& state, const WeightedGraph& g) {
  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = 12;
  congest::GatherBaselineResult baseline{};
  for (auto _ : state) {
    minoragg::Ledger run;
    Rng rng(7);
    benchmark::DoNotOptimize(mincut::exact_mincut(g, rng, run, config));
    baseline = congest::gather_exact_mincut(g, 0);
    ledger = run;
  }
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, 3);
  state.counters["n"] = g.n();
  state.counters["m"] = g.m();
  state.counters["D"] = cost.diameter;
  state.counters["baseline_rounds"] = static_cast<double>(baseline.rounds_used);
  state.counters["compiled_rounds"] = static_cast<double>(cost.congest_rounds_general());
  state.counters["speedup"] = static_cast<double>(baseline.rounds_used) /
                              static_cast<double>(cost.congest_rounds_general());
}

void BM_CrossoverDensity(benchmark::State& state) {
  // Fixed n, growing average degree: the baseline pays Θ(m).
  const double avg_degree = static_cast<double>(state.range(0));
  run_crossover(state, benchutil::weighted_er(256, avg_degree, 31));
}

void BM_CrossoverSize(benchmark::State& state) {
  run_crossover(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 32.0, 33));
}

BENCHMARK(BM_CrossoverDensity)->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CrossoverSize)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
