file(REMOVE_RECURSE
  "libumc_mincut_values.a"
)
