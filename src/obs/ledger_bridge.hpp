#pragma once

// Bridge from the Ledger's model-level round accounting into the typed
// metrics registry — the Ledger stays the source of truth for charged
// rounds (its composition rules ARE the paper's), while the registry is the
// public metrics surface with stable names, types, and labels.
//
// Translation of the Ledger key convention (documented in ledger.hpp):
//   rounds()            -> counter umc_ma_rounds_total{sim=...}
//   "max_"-prefix keys  -> gauge   umc_ledger_<key>{sim=...}   (running max)
//   all other keys      -> counter umc_ledger_<key>_total{sim=...}
//
// Call once per finished run (bridging is additive, like absorbing one
// ledger into another: counters sum, max-gauges max).

#include <string>
#include <string_view>

#include "minoragg/ledger.hpp"
#include "obs/metrics.hpp"

namespace umc::obs {

inline void bridge_ledger(MetricsRegistry& registry, const minoragg::Ledger& ledger,
                          std::string_view sim) {
  const Labels labels{{"sim", std::string(sim)}};
  registry
      .counter("umc_ma_rounds_total", labels,
               "Minor-Aggregation rounds charged to the ledger.")
      .inc(ledger.rounds());
  for (const auto& [key, value] : ledger.counters()) {
    if (std::string_view(key).substr(0, 4) == "max_") {
      registry
          .gauge("umc_ledger_" + key, labels,
                 "Ledger max-kind experiment counter (merged by max).")
          .set_max(value);
    } else {
      registry
          .counter("umc_ledger_" + key + "_total", labels,
                   "Ledger sum-kind experiment counter (merged by sum).")
          .inc(value);
    }
  }
}

}  // namespace umc::obs
