file(REMOVE_RECURSE
  "CMakeFiles/umc_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/umc_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/umc_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/umc_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/umc_graph.dir/graph/io.cpp.o"
  "CMakeFiles/umc_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/umc_graph.dir/graph/minors.cpp.o"
  "CMakeFiles/umc_graph.dir/graph/minors.cpp.o.d"
  "CMakeFiles/umc_graph.dir/graph/properties.cpp.o"
  "CMakeFiles/umc_graph.dir/graph/properties.cpp.o.d"
  "libumc_graph.a"
  "libumc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
