// Tests for the path-to-path 2-respecting min-cut (Section 6, Theorem 19):
// the Monge property (Fact 20), the separable decomposition (Lemma 22), and
// the full recursion, validated against the naive pair-enumeration oracle.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/naive_two_respect.hpp"
#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/path_to_path.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

/// A double_broom graph (root 0; P = 1..len; Q = len+1..2len) as a
/// PathInstance where every path edge is a candidate.
PathInstance broom_instance(const WeightedGraph& g, NodeId len) {
  PathInstance inst;
  inst.graph = g;
  inst.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
  inst.origin.assign(static_cast<std::size_t>(g.m()), kNoEdge);
  inst.root = 0;
  for (NodeId i = 0; i < len; ++i) {
    inst.nodesP.push_back(1 + i);
    inst.edgesP.push_back(i);  // generator order: P edges are 0..len-1
    inst.origin[static_cast<std::size_t>(i)] = i;
    inst.nodesQ.push_back(len + 1 + i);
    inst.edgesQ.push_back(len + i);
    inst.origin[static_cast<std::size_t>(len + i)] = len + i;
  }
  return inst;
}

/// Oracle: min over pairs (e in P) x (f in Q) and 1-respecting cuts.
CutResult oracle(const PathInstance& inst) {
  std::vector<EdgeId> tree(inst.edgesP.begin(), inst.edgesP.end());
  tree.insert(tree.end(), inst.edgesQ.begin(), inst.edgesQ.end());
  const RootedTree t(inst.graph, tree, inst.root);
  CutResult best;
  for (const EdgeId e : tree) {
    if (inst.origin[static_cast<std::size_t>(e)] == kNoEdge) continue;
    best.absorb(CutResult{reference_cut_pair(t, e, e),
                          inst.origin[static_cast<std::size_t>(e)], kNoEdge});
  }
  for (const EdgeId e : inst.edgesP) {
    if (inst.origin[static_cast<std::size_t>(e)] == kNoEdge) continue;
    for (const EdgeId f : inst.edgesQ) {
      if (inst.origin[static_cast<std::size_t>(f)] == kNoEdge) continue;
      best.absorb(CutResult{reference_cut_pair(t, e, f),
                            inst.origin[static_cast<std::size_t>(e)],
                            inst.origin[static_cast<std::size_t>(f)]});
    }
  }
  return best;
}

void check(const PathInstance& inst) {
  minoragg::Ledger ledger;
  const CutResult got = path_to_path_mincut(inst, ledger);
  const CutResult want = oracle(inst);
  ASSERT_EQ(got.value, want.value);
  // The reported pair must actually achieve the reported value.
  std::vector<EdgeId> tree(inst.edgesP.begin(), inst.edgesP.end());
  tree.insert(tree.end(), inst.edgesQ.begin(), inst.edgesQ.end());
  const RootedTree t(inst.graph, tree, inst.root);
  // Map origins back to instance edge ids (origins == instance ids here).
  if (got.f == kNoEdge) {
    EXPECT_EQ(reference_cut_pair(t, got.e, got.e), got.value);
  } else {
    EXPECT_EQ(reference_cut_pair(t, got.e, got.f), got.value);
  }
}

TEST(PathToPath, Fact20MongePropertyHolds) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    WeightedGraph g = double_broom(8, 20, rng);
    randomize_weights(g, 1, 9, rng);
    const PathInstance inst = broom_instance(g, 8);
    std::vector<EdgeId> tree(inst.edgesP.begin(), inst.edgesP.end());
    tree.insert(tree.end(), inst.edgesQ.begin(), inst.edgesQ.end());
    const RootedTree t(g, tree, 0);
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t i2 = i; i2 < 8; ++i2)
        for (std::size_t j = 0; j < 8; ++j)
          for (std::size_t j2 = j; j2 < 8; ++j2) {
            const Weight lhs = reference_cut_pair(t, inst.edgesP[i], inst.edgesQ[j]) +
                               reference_cut_pair(t, inst.edgesP[i2], inst.edgesQ[j2]);
            const Weight rhs = reference_cut_pair(t, inst.edgesP[i2], inst.edgesQ[j]) +
                               reference_cut_pair(t, inst.edgesP[i], inst.edgesQ[j2]);
            ASSERT_LE(lhs, rhs);
          }
  }
}

TEST(PathToPath, BaseCaseShortPaths) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId len = 2 + static_cast<NodeId>(rng.next_below(8));
    WeightedGraph g = double_broom(len, 3 * len, rng);
    randomize_weights(g, 1, 15, rng);
    check(broom_instance(g, len));
  }
}

TEST(PathToPath, RecursiveLongPaths) {
  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const NodeId len = 12 + static_cast<NodeId>(rng.next_below(40));
    WeightedGraph g = double_broom(len, 5 * len, rng);
    randomize_weights(g, 1, 25, rng);
    check(broom_instance(g, len));
  }
}

TEST(PathToPath, SeparableInstanceNoCrossInterior) {
  // Cross edges only at boundary nodes: exercises Lemma 22.
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId len = 15;
    WeightedGraph g = double_broom(len, 0, rng);
    randomize_weights(g, 1, 9, rng);
    // Add boundary-touching cross edges only: top/bottom of either path.
    const NodeId top_p = 1, bot_p = len, top_q = len + 1, bot_q = 2 * len;
    for (int c = 0; c < 8; ++c) {
      const NodeId q = len + 1 + static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(len)));
      const NodeId p = 1 + static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(len)));
      switch (c % 4) {
        case 0: g.add_edge(top_p, q, rng.next_in(1, 9)); break;
        case 1: g.add_edge(bot_p, q, rng.next_in(1, 9)); break;
        case 2: g.add_edge(p == top_q ? bot_p : top_q, p, rng.next_in(1, 9)); break;
        default: g.add_edge(bot_q == p ? top_p : bot_q, p, rng.next_in(1, 9)); break;
      }
    }
    check(broom_instance(g, len));
  }
}

TEST(PathToPath, SameWeightTies) {
  Rng rng(17);
  WeightedGraph g = double_broom(20, 60, rng);  // all unit weights
  check(broom_instance(g, 20));
}

TEST(PathToPath, NonCandidateConnectorsAreNeverReported) {
  Rng rng(19);
  WeightedGraph g = double_broom(14, 30, rng);
  randomize_weights(g, 1, 9, rng);
  PathInstance inst = broom_instance(g, 14);
  // Demote the topmost edges of both paths to connectors.
  inst.origin[static_cast<std::size_t>(inst.edgesP[0])] = kNoEdge;
  inst.origin[static_cast<std::size_t>(inst.edgesQ[0])] = kNoEdge;
  minoragg::Ledger ledger;
  const CutResult got = path_to_path_mincut(inst, ledger);
  EXPECT_NE(got.e, inst.edgesP[0]);
  EXPECT_NE(got.e, inst.edgesQ[0]);
  EXPECT_EQ(got.value, oracle(inst).value);
}

TEST(PathToPath, RecursionDepthAndRoundsArePolylog) {
  Rng rng(23);
  WeightedGraph g = double_broom(200, 1200, rng);
  randomize_weights(g, 1, 50, rng);
  const PathInstance inst = broom_instance(g, 200);
  minoragg::Ledger ledger;
  (void)path_to_path_mincut(inst, ledger);
  EXPECT_LE(ledger.counter("max_p2p_depth"),
            ceil_log2(200) + 2);  // |P| halves per level
  // Polylog rounds: generous explicit cap documents the scale.
  EXPECT_LT(ledger.rounds(), 1'000'000);
  EXPECT_GT(ledger.rounds(), 0);
}

TEST(PathToPath, DegenerateTinyPaths) {
  Rng rng(29);
  for (const NodeId len : {1, 2, 3}) {
    WeightedGraph g = double_broom(len, 2, rng);
    check(broom_instance(g, len));
  }
}

}  // namespace
}  // namespace umc::mincut
