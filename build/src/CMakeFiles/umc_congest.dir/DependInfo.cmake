
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congest/bfs_tree.cpp" "src/CMakeFiles/umc_congest.dir/congest/bfs_tree.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/bfs_tree.cpp.o.d"
  "/root/repo/src/congest/compile.cpp" "src/CMakeFiles/umc_congest.dir/congest/compile.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/compile.cpp.o.d"
  "/root/repo/src/congest/compiled_network.cpp" "src/CMakeFiles/umc_congest.dir/congest/compiled_network.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/compiled_network.cpp.o.d"
  "/root/repo/src/congest/congest_net.cpp" "src/CMakeFiles/umc_congest.dir/congest/congest_net.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/congest_net.cpp.o.d"
  "/root/repo/src/congest/edge_coloring.cpp" "src/CMakeFiles/umc_congest.dir/congest/edge_coloring.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/edge_coloring.cpp.o.d"
  "/root/repo/src/congest/gather_baseline.cpp" "src/CMakeFiles/umc_congest.dir/congest/gather_baseline.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/gather_baseline.cpp.o.d"
  "/root/repo/src/congest/partwise.cpp" "src/CMakeFiles/umc_congest.dir/congest/partwise.cpp.o" "gcc" "src/CMakeFiles/umc_congest.dir/congest/partwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_minoragg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_mincut_values.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
