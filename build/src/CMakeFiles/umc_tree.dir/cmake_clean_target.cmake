file(REMOVE_RECURSE
  "libumc_tree.a"
)
