// Tests for aggregation operators (Definition 7) and the Misra-Gries
// heavy-hitters sketch (Example 8 guarantees).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sketch/aggregators.hpp"
#include "sketch/misra_gries.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

TEST(Aggregators, BasicLaws) {
  EXPECT_EQ(SumAgg::merge(3, 4), 7);
  EXPECT_EQ(SumAgg::merge(SumAgg::identity(), 9), 9);
  EXPECT_EQ(MinAgg::merge(3, 4), 3);
  EXPECT_EQ(MinAgg::merge(MinAgg::identity(), 42), 42);
  EXPECT_EQ(MaxAgg::merge(MaxAgg::identity(), -7), -7);
  EXPECT_TRUE(OrAgg::merge(false, true));
  EXPECT_FALSE(OrAgg::merge(OrAgg::identity(), false));
  EXPECT_FALSE(AndAgg::merge(true, false));
  const auto p = MinPairAgg::merge({2, 9}, {2, 3});
  EXPECT_EQ(p.second, 3);
}

TEST(MisraGries, ExactWhenUnderCapacity) {
  MisraGries s(10);
  s.add(1, 5);
  s.add(2, 3);
  s.add(1, 2);
  EXPECT_EQ(s.estimate(1), 7);
  EXPECT_EQ(s.estimate(2), 3);
  EXPECT_EQ(s.estimate(99), 0);
  EXPECT_EQ(s.total_weight(), 10);
}

TEST(MisraGries, UnderestimatesByAtMostWOverHPlusOne) {
  Rng rng(5);
  const int h = 6;
  for (int trial = 0; trial < 20; ++trial) {
    MisraGries s(h);
    std::map<std::uint64_t, Weight> truth;
    Weight total = 0;
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t key = rng.next_below(40);
      const Weight w = rng.next_in(1, 20);
      s.add(key, w);
      truth[key] += w;
      total += w;
    }
    for (const auto& [key, f] : truth) {
      const Weight est = s.estimate(key);
      EXPECT_LE(est, f);
      EXPECT_LE(f - est, total / (h + 1));
    }
  }
}

TEST(MisraGries, Example8HeavyHitterGuarantees) {
  Rng rng(8);
  const int h = 5;
  for (int trial = 0; trial < 30; ++trial) {
    MisraGries s(h);
    std::map<std::uint64_t, Weight> truth;
    Weight total = 0;
    // A few dominant keys plus noise.
    for (int i = 0; i < 300; ++i) {
      const bool dominant = rng.next_bool(0.6);
      const std::uint64_t key = dominant ? rng.next_below(2) : 10 + rng.next_below(50);
      const Weight w = rng.next_in(1, 9);
      s.add(key, w);
      truth[key] += w;
      total += w;
    }
    const auto hh = s.heavy_hitters();
    for (const auto& [key, f] : truth) {
      const bool in_list = std::find(hh.begin(), hh.end(), key) != hh.end();
      if (f * h > 2 * total) {
        EXPECT_TRUE(in_list) << "key " << key;  // guarantee (1)
      }
      if (f * h <= total) {
        EXPECT_FALSE(in_list) << "key " << key;  // guarantee (2)
      }
    }
  }
}

TEST(MisraGries, MergePreservesGuarantees) {
  Rng rng(12);
  const int h = 4;
  for (int trial = 0; trial < 20; ++trial) {
    // Build 8 sketches, merge in a random binary order (Definition 7 allows
    // arbitrary merge sequences).
    std::vector<MisraGries> parts(8, MisraGries(h));
    std::map<std::uint64_t, Weight> truth;
    Weight total = 0;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t key = rng.next_below(30);
      const Weight w = rng.next_in(1, 5);
      parts[static_cast<std::size_t>(rng.next_below(8))].add(key, w);
      truth[key] += w;
      total += w;
    }
    while (parts.size() > 1) {
      const std::size_t i = static_cast<std::size_t>(rng.next_below(parts.size()));
      std::size_t j = static_cast<std::size_t>(rng.next_below(parts.size()));
      while (j == i) j = static_cast<std::size_t>(rng.next_below(parts.size()));
      MisraGries merged = MisraGries::merge(parts[i], parts[j]);
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(std::max(i, j)));
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(std::min(i, j)));
      parts.push_back(std::move(merged));
    }
    const MisraGries& s = parts.front();
    EXPECT_EQ(s.total_weight(), total);
    for (const auto& [key, f] : truth) {
      EXPECT_LE(s.estimate(key), f);
      EXPECT_LE(f - s.estimate(key), total / (h + 1));
    }
  }
}

TEST(MisraGries, CapacityRespected) {
  MisraGries s(3);
  for (std::uint64_t k = 0; k < 100; ++k) s.add(k, 1);
  EXPECT_LE(s.items().size(), 3u);
}

TEST(MisraGries, MergeRejectsMismatchedCapacity) {
  MisraGries a(3), b(4);
  EXPECT_THROW(MisraGries::merge(a, b), invariant_error);
}

}  // namespace
}  // namespace umc
