#pragma once

// Virtual-node extension of the Minor-Aggregation model (Section 4.1).
//
// A VirtualGraph extends a real communication graph with beta arbitrarily
// connected virtual nodes (Definition 13). Any tau-round algorithm on the
// virtual graph costs tau * O(beta + 1) rounds on the real graph
// (Theorem 14); `settle` applies exactly that charge, with the (beta + 1)
// constant — the multiplier the Theorem 14 proof realizes (beta rounds to
// process each virtual supernode plus one round for the rest).
//
// Lemma 15 ("replace a node by a virtual substitute") is `virtualize_node`.

#include <vector>

#include "graph/graph.hpp"
#include "minoragg/ledger.hpp"

namespace umc::minoragg {

struct VirtualGraph {
  WeightedGraph graph;
  std::vector<bool> is_virtual;  // per node of `graph`

  [[nodiscard]] int beta() const {
    int b = 0;
    for (const bool f : is_virtual) b += f ? 1 : 0;
    return b;
  }

  /// Adds a fresh virtual node and returns its id.
  NodeId add_virtual_node() {
    const NodeId v = graph.add_node();
    is_virtual.push_back(true);
    return v;
  }

  [[nodiscard]] static VirtualGraph wrap(WeightedGraph g) {
    VirtualGraph vg;
    vg.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
    vg.graph = std::move(g);
    return vg;
  }
};

/// Theorem 14 cost transfer: an algorithm that ran `inner` rounds on a
/// virtual graph with `beta` virtual nodes costs inner * (beta + 1) rounds
/// on the underlying network.
inline void settle_virtual_execution(Ledger& outer, const Ledger& inner, int beta) {
  UMC_ASSERT(beta >= 0);
  outer.charge(inner.rounds() * (beta + 1));
  for (const auto& [k, v] : inner.counters()) outer.absorb_counter(k, v);
  outer.set_max("max_beta", beta);
}

/// Lemma 15: replace node v by a virtual substitute with the same neighbor
/// set; parallel edges toward a common neighbor merge into one edge whose
/// weight is their sum. Charges O(1) rounds (2: one broadcast, one
/// aggregation round).
[[nodiscard]] VirtualGraph virtualize_node(const VirtualGraph& g, NodeId v, Ledger& ledger);

}  // namespace umc::minoragg
