// End-to-end tests for the between-subtree algorithm (Theorem 39) and the
// general 2-respecting min-cut (Theorem 40) against the naive oracle — the
// paper's central deterministic result.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/naive_two_respect.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/subtree_instance.hpp"
#include "mincut/two_respect.hpp"
#include "tree/spanning.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

void check_general(const WeightedGraph& g, std::span<const EdgeId> tree, NodeId root) {
  minoragg::Ledger ledger;
  const CutResult got = two_respecting_mincut(g, tree, root, ledger);
  const RootedTree t(g, tree, root);
  const CutResult want = baseline::naive_two_respecting(t);
  ASSERT_EQ(got.value, want.value);
  // Reported pair must achieve the value.
  const Weight check = got.f == kNoEdge ? reference_cut_pair(t, got.e, got.e)
                                        : reference_cut_pair(t, got.e, got.f);
  EXPECT_EQ(check, got.value);
}

TEST(BetweenSubtree, MatchesOracleAcrossBranches) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId n = 16 + static_cast<NodeId>(rng.next_below(30));
    WeightedGraph g = random_connected(n, 3 * n, rng);
    randomize_weights(g, 1, 15, rng);
    const auto tree = bfs_spanning_tree(g, 0);
    const RootedTree t(g, tree, 0);
    if (t.children(0).size() < 2) continue;  // needs >= 2 branches
    std::vector<EdgeId> origin(static_cast<std::size_t>(g.m()), kNoEdge);
    for (const EdgeId e : tree) origin[static_cast<std::size_t>(e)] = e;
    const std::vector<bool> is_virtual(static_cast<std::size_t>(g.n()), false);
    minoragg::Ledger ledger;
    const CutResult got = between_subtree_mincut(g, tree, 0, origin, is_virtual, ledger);

    // Oracle restricted to cross-branch pairs plus 1-respecting cuts.
    std::vector<int> branch(static_cast<std::size_t>(g.n()), -1);
    {
      int next = 0;
      for (const NodeId c : t.children(0)) branch[static_cast<std::size_t>(c)] = next++;
      for (const NodeId v : t.preorder()) {
        if (v == 0 || branch[static_cast<std::size_t>(v)] != -1) continue;
        branch[static_cast<std::size_t>(v)] = branch[static_cast<std::size_t>(t.parent(v))];
      }
    }
    CutResult want;
    for (const EdgeId e : tree) want.absorb({reference_cut_pair(t, e, e), e, kNoEdge});
    for (std::size_t i = 0; i < tree.size(); ++i) {
      for (std::size_t j = i + 1; j < tree.size(); ++j) {
        if (branch[static_cast<std::size_t>(t.bottom(tree[i]))] ==
            branch[static_cast<std::size_t>(t.bottom(tree[j]))])
          continue;
        want.absorb({reference_cut_pair(t, tree[i], tree[j]), tree[i], tree[j]});
      }
    }
    EXPECT_EQ(got.value, want.value) << "trial " << trial;
  }
}

TEST(TwoRespect, TinyGraphs) {
  Rng rng(5);
  for (const NodeId n : {2, 3, 4, 5}) {
    for (int trial = 0; trial < 5; ++trial) {
      WeightedGraph g = random_connected(n, std::min<EdgeId>(2 * n, n * (n - 1) / 2), rng);
      randomize_weights(g, 1, 9, rng);
      const auto tree = bfs_spanning_tree(g, 0);
      check_general(g, tree, 0);
    }
  }
}

TEST(TwoRespect, RandomGraphsBfsTrees) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = 10 + static_cast<NodeId>(rng.next_below(40));
    WeightedGraph g = random_connected(n, 2 * n + static_cast<EdgeId>(rng.next_below(60)), rng);
    randomize_weights(g, 1, 25, rng);
    check_general(g, bfs_spanning_tree(g, 0), 0);
  }
}

TEST(TwoRespect, RandomGraphsRandomSpanningTrees) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId n = 10 + static_cast<NodeId>(rng.next_below(30));
    WeightedGraph g = random_connected(n, 3 * n, rng);
    randomize_weights(g, 1, 40, rng);
    const auto tree = wilson_random_spanning_tree(g, rng);
    check_general(g, tree, static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
}

TEST(TwoRespect, GridsAndPlanar) {
  Rng rng(13);
  for (int trial = 0; trial < 4; ++trial) {
    WeightedGraph g = random_planar_grid(5, 6, 0.5, rng);
    randomize_weights(g, 1, 12, rng);
    check_general(g, bfs_spanning_tree(g, 0), 0);
  }
}

TEST(TwoRespect, PathHeavyTreesExerciseDeepChains) {
  Rng rng(17);
  // Caterpillar-ish: a long path plus random chords.
  WeightedGraph g = path_graph(40);
  for (int c = 0; c < 60; ++c) {
    const NodeId u = static_cast<NodeId>(rng.next_below(40));
    NodeId v = static_cast<NodeId>(rng.next_below(40));
    if (u == v) v = (v + 1) % 40;
    g.add_edge(std::min(u, v), std::max(u, v), rng.next_in(1, 9));
  }
  std::vector<EdgeId> tree(39);
  std::iota(tree.begin(), tree.end(), EdgeId{0});
  check_general(g, tree, 0);
}

TEST(TwoRespect, UnweightedMultigraph) {
  Rng rng(19);
  WeightedGraph g(8);
  // Deliberate parallel edges.
  for (int c = 0; c < 30; ++c) {
    const NodeId u = static_cast<NodeId>(rng.next_below(8));
    NodeId v = static_cast<NodeId>(rng.next_below(8));
    if (u == v) v = (v + 1) % 8;
    g.add_edge(u, v);
  }
  // Ensure connectivity with a path.
  std::vector<EdgeId> tree;
  Dsu dsu(8);
  for (EdgeId e = 0; e < g.m(); ++e)
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  for (NodeId v = 0; v + 1 < 8; ++v)
    if (!dsu.same(v, v + 1)) {
      tree.push_back(g.add_edge(v, v + 1));
      dsu.unite(v, v + 1);
    }
  check_general(g, tree, 0);
}

TEST(TwoRespect, RecursionDepthLogarithmic) {
  Rng rng(23);
  WeightedGraph g = random_connected(200, 600, rng);
  randomize_weights(g, 1, 30, rng);
  minoragg::Ledger ledger;
  (void)two_respecting_mincut(g, bfs_spanning_tree(g, 0), 0, ledger);
  EXPECT_LE(ledger.counter("max_general_depth"), ceil_log2(200) + 2);
  EXPECT_LE(ledger.counter("max_beta"), ceil_log2(200) + 2);  // |Virt| = O(log n)
}

}  // namespace
}  // namespace umc::mincut
