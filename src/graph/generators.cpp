#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "graph/dsu.hpp"

namespace umc {

WeightedGraph path_graph(NodeId n) {
  WeightedGraph g(n);
  g.reserve(n, n > 0 ? n - 1 : 0);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

WeightedGraph cycle_graph(NodeId n) {
  UMC_ASSERT(n >= 3);
  WeightedGraph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

WeightedGraph star_graph(NodeId n) {
  UMC_ASSERT(n >= 1);
  WeightedGraph g(n);
  g.reserve(n, n - 1);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

WeightedGraph complete_graph(NodeId n) {
  WeightedGraph g(n);
  g.reserve(n, static_cast<EdgeId>(static_cast<std::int64_t>(n) * (n - 1) / 2));
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

WeightedGraph grid_graph(NodeId rows, NodeId cols) {
  UMC_ASSERT(rows >= 1 && cols >= 1);
  WeightedGraph g(rows * cols);
  g.reserve(rows * cols, 2 * rows * cols - rows - cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

WeightedGraph random_planar_grid(NodeId rows, NodeId cols, double diag_prob, Rng& rng) {
  WeightedGraph g = grid_graph(rows, cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r + 1 < rows; ++r) {
    for (NodeId c = 0; c + 1 < cols; ++c) {
      if (!rng.next_bool(diag_prob)) continue;
      // One diagonal per face keeps the embedding planar.
      if (rng.next_bool(0.5)) {
        g.add_edge(id(r, c), id(r + 1, c + 1));
      } else {
        g.add_edge(id(r, c + 1), id(r + 1, c));
      }
    }
  }
  return g;
}

WeightedGraph erdos_renyi(NodeId n, double p, Rng& rng) {
  WeightedGraph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.next_bool(p)) g.add_edge(u, v);
  return g;
}

WeightedGraph erdos_renyi_connected(NodeId n, double p, Rng& rng) {
  UMC_ASSERT(n >= 1);
  WeightedGraph g = erdos_renyi(n, p, rng);
  // Overlay a uniform random spanning tree over components.
  Dsu dsu(n);
  for (const Edge& e : g.edges()) dsu.unite(e.u, e.v);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId u = order[i - 1];
    const NodeId v = order[i];
    if (!dsu.same(u, v)) {
      dsu.unite(u, v);
      g.add_edge(u, v);
    }
  }
  return g;
}

WeightedGraph random_tree(NodeId n, Rng& rng) {
  UMC_ASSERT(n >= 1);
  WeightedGraph g(n);
  g.reserve(n, n - 1);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    g.add_edge(parent, v);
  }
  return g;
}

WeightedGraph random_connected(NodeId n, EdgeId m, Rng& rng) {
  UMC_ASSERT(m >= n - 1);
  WeightedGraph g = random_tree(n, rng);
  g.reserve(n, m);
  std::set<std::pair<NodeId, NodeId>> present;
  for (const Edge& e : g.edges()) present.emplace(std::min(e.u, e.v), std::max(e.u, e.v));
  const std::int64_t simple_bound = static_cast<std::int64_t>(n) * (n - 1) / 2;
  EdgeId added = g.m();
  while (added < m) {
    NodeId u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (static_cast<std::int64_t>(present.size()) < simple_bound && present.count({u, v}) != 0)
      continue;  // avoid parallel edges while simple edges remain available
    present.emplace(u, v);
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

WeightedGraph dumbbell(NodeId clique, NodeId bridge) {
  UMC_ASSERT(clique >= 2 && bridge >= 1);
  // Nodes: [0, clique) left clique, [clique, clique+bridge) path,
  // [clique+bridge, 2*clique+bridge) right clique.
  const NodeId n = 2 * clique + bridge;
  WeightedGraph g(n);
  const auto add_clique = [&g](NodeId base, NodeId size) {
    for (NodeId i = 0; i < size; ++i)
      for (NodeId j = i + 1; j < size; ++j) g.add_edge(base + i, base + j);
  };
  add_clique(0, clique);
  add_clique(clique + bridge, clique);
  g.add_edge(clique - 1, clique);
  for (NodeId i = 0; i + 1 < bridge; ++i) g.add_edge(clique + i, clique + i + 1);
  g.add_edge(clique + bridge - 1, clique + bridge);
  return g;
}

WeightedGraph ktree(NodeId n, int k, Rng& rng) {
  UMC_ASSERT(k >= 1 && n >= k + 1);
  WeightedGraph g(n);
  // Start from a (k+1)-clique; store cliques as node lists.
  std::vector<std::vector<NodeId>> cliques;
  std::vector<NodeId> base;
  for (NodeId v = 0; v <= k; ++v) base.push_back(v);
  for (std::size_t i = 0; i < base.size(); ++i)
    for (std::size_t j = i + 1; j < base.size(); ++j) g.add_edge(base[i], base[j]);
  cliques.push_back(base);
  for (NodeId v = static_cast<NodeId>(k + 1); v < n; ++v) {
    const auto& clique =
        cliques[static_cast<std::size_t>(rng.next_below(cliques.size()))];
    // Pick k of the k+1 clique nodes to attach to.
    std::vector<NodeId> attach = clique;
    attach.erase(attach.begin() + static_cast<std::ptrdiff_t>(rng.next_below(attach.size())));
    for (const NodeId u : attach) g.add_edge(u, v);
    attach.push_back(v);
    cliques.push_back(std::move(attach));
  }
  return g;
}

WeightedGraph double_broom(NodeId len, EdgeId chords, Rng& rng) {
  UMC_ASSERT(len >= 1);
  // Node 0 is the root; P = [1, len], Q = [len+1, 2*len].
  WeightedGraph g(2 * len + 1);
  g.add_edge(0, 1);
  for (NodeId i = 1; i < len; ++i) g.add_edge(i, i + 1);
  g.add_edge(0, len + 1);
  for (NodeId i = len + 1; i < 2 * len; ++i) g.add_edge(i, i + 1);
  for (EdgeId c = 0; c < chords; ++c) {
    const NodeId u = 1 + static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(len)));
    const NodeId v =
        len + 1 + static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(len)));
    g.add_edge(u, v);
  }
  return g;
}

WeightedGraph spider(int k, NodeId len, EdgeId chords, Rng& rng) {
  UMC_ASSERT(k >= 2 && len >= 1);
  // Node 0 is the root; path i occupies [1 + i*len, 1 + (i+1)*len).
  WeightedGraph g(1 + static_cast<NodeId>(k) * len);
  for (int i = 0; i < k; ++i) {
    const NodeId base = 1 + static_cast<NodeId>(i) * len;
    g.add_edge(0, base);
    for (NodeId j = 0; j + 1 < len; ++j) g.add_edge(base + j, base + j + 1);
  }
  for (EdgeId c = 0; c < chords; ++c) {
    const int pi = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k)));
    const int pj = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k)));
    if (pi == pj) continue;
    const NodeId u = 1 + static_cast<NodeId>(pi) * len +
                     static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(len)));
    const NodeId v = 1 + static_cast<NodeId>(pj) * len +
                     static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(len)));
    g.add_edge(u, v);
  }
  return g;
}

WeightedGraph complete_bipartite(NodeId a, NodeId b) {
  UMC_ASSERT(a >= 1 && b >= 1);
  WeightedGraph g(a + b);
  g.reserve(a + b, static_cast<EdgeId>(static_cast<std::int64_t>(a) * b));
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

WeightedGraph binary_tree(NodeId n) {
  UMC_ASSERT(n >= 1);
  WeightedGraph g(n);
  g.reserve(n, n - 1);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / 2, v);
  return g;
}

WeightedGraph ring_expander(NodeId n, int matchings, Rng& rng) {
  UMC_ASSERT(n >= 4 && n % 2 == 0 && matchings >= 1);
  WeightedGraph g = cycle_graph(n);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  for (int m = 0; m < matchings; ++m) {
    rng.shuffle(perm);
    for (NodeId i = 0; i < n; i += 2) {
      const NodeId u = perm[static_cast<std::size_t>(i)];
      const NodeId v = perm[static_cast<std::size_t>(i) + 1];
      if (u != v) g.add_edge(u, v);
    }
  }
  return g;
}

void randomize_weights(WeightedGraph& g, Weight lo, Weight hi, Rng& rng) {
  UMC_ASSERT(1 <= lo && lo <= hi);
  for (EdgeId e = 0; e < g.m(); ++e) g.set_weight(e, rng.next_in(lo, hi));
}

}  // namespace umc
