file(REMOVE_RECURSE
  "libumc_util.a"
)
