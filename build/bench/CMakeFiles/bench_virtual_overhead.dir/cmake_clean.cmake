file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_overhead.dir/bench_virtual_overhead.cpp.o"
  "CMakeFiles/bench_virtual_overhead.dir/bench_virtual_overhead.cpp.o.d"
  "bench_virtual_overhead"
  "bench_virtual_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
