# Empty compiler generated dependencies file for test_literal_primitives.
# This may be replaced when dependencies are built.
