#pragma once

// Stoer-Wagner exact global min-cut (centralized, O(n^3)).
//
// The verification oracle of the whole repository: every distributed
// min-cut result is cross-checked against it in tests and experiments.

#include <vector>

#include "graph/graph.hpp"

namespace umc::baseline {

struct GlobalMinCut {
  Weight value = 0;
  /// One side of the optimal cut (node ids of the host graph).
  std::vector<NodeId> side;
};

/// Requires a connected graph with n >= 2.
[[nodiscard]] GlobalMinCut stoer_wagner(const WeightedGraph& g);

}  // namespace umc::baseline
