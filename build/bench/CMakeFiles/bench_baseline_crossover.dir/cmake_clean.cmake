file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_crossover.dir/bench_baseline_crossover.cpp.o"
  "CMakeFiles/bench_baseline_crossover.dir/bench_baseline_crossover.cpp.o.d"
  "bench_baseline_crossover"
  "bench_baseline_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
