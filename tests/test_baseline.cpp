// Tests for the baseline oracles: Stoer-Wagner, Karger contraction, the
// naive 2-respecting table, and the reference cut/cover machinery
// (Facts 5 & 6).

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/karger.hpp"
#include "baseline/naive_two_respect.hpp"
#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc::baseline {
namespace {

/// Brute-force min cut over all 2^(n-1) bipartitions (tiny n only).
Weight brute_force_min_cut(const WeightedGraph& g) {
  const NodeId n = g.n();
  Weight best = mincut::kInfWeight;
  for (std::uint64_t mask = 1; mask < (1ULL << (n - 1)); ++mask) {
    Weight cut = 0;
    for (const Edge& e : g.edges()) {
      const bool su = e.u == n - 1 ? false : ((mask >> e.u) & 1);
      const bool sv = e.v == n - 1 ? false : ((mask >> e.v) & 1);
      if (su != sv) cut += e.w;
    }
    best = std::min(best, cut);
  }
  return best;
}

TEST(StoerWagner, KnownSmallCases) {
  // Two triangles joined by one light edge.
  WeightedGraph g(6);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 10);
  g.add_edge(2, 0, 10);
  g.add_edge(3, 4, 10);
  g.add_edge(4, 5, 10);
  g.add_edge(5, 3, 10);
  g.add_edge(2, 3, 1);
  const GlobalMinCut cut = stoer_wagner(g);
  EXPECT_EQ(cut.value, 1);
  EXPECT_TRUE(cut.side == std::vector<NodeId>({0, 1, 2}) ||
              cut.side == std::vector<NodeId>({3, 4, 5}));
}

TEST(StoerWagner, TwoNodesParallelEdges) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 1, 4);
  EXPECT_EQ(stoer_wagner(g).value, 7);
}

TEST(StoerWagner, MatchesBruteForceOnRandomGraphs) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId n = 4 + static_cast<NodeId>(rng.next_below(7));
    WeightedGraph g = random_connected(n, n + static_cast<EdgeId>(rng.next_below(12)), rng);
    randomize_weights(g, 1, 20, rng);
    EXPECT_EQ(stoer_wagner(g).value, brute_force_min_cut(g)) << "trial " << trial;
  }
}

TEST(StoerWagner, SideIsActualCut) {
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    WeightedGraph g = erdos_renyi_connected(20, 0.2, rng);
    randomize_weights(g, 1, 9, rng);
    const GlobalMinCut cut = stoer_wagner(g);
    std::vector<bool> in_side(static_cast<std::size_t>(g.n()), false);
    for (const NodeId v : cut.side) in_side[static_cast<std::size_t>(v)] = true;
    Weight crossing = 0;
    for (const Edge& e : g.edges())
      if (in_side[static_cast<std::size_t>(e.u)] != in_side[static_cast<std::size_t>(e.v)])
        crossing += e.w;
    EXPECT_EQ(crossing, cut.value);
    EXPECT_GT(cut.side.size(), 0u);
    EXPECT_LT(cut.side.size(), static_cast<std::size_t>(g.n()));
  }
}

TEST(Karger, FindsMinCutWithEnoughTrials) {
  Rng rng(107);
  for (int trial = 0; trial < 8; ++trial) {
    WeightedGraph g = erdos_renyi_connected(12, 0.3, rng);
    randomize_weights(g, 1, 10, rng);
    const Weight sw = stoer_wagner(g).value;
    const Weight kg = karger_min_cut(g, 300, rng);
    EXPECT_GE(kg, sw);   // Karger can only overestimate
    EXPECT_EQ(kg, sw);   // ... but 300 trials on n=12 finds the optimum
  }
}

TEST(ReferenceCutValues, Fact5CutEqualsCovOnSingleEdges) {
  Rng rng(109);
  WeightedGraph g = erdos_renyi_connected(25, 0.15, rng);
  randomize_weights(g, 1, 7, rng);
  const auto tree = bfs_spanning_tree(g, 0);
  const RootedTree t(g, tree, 0);
  const auto cov1 = mincut::reference_cov1(t);
  for (const EdgeId e : tree) {
    EXPECT_EQ(cov1[static_cast<std::size_t>(e)], mincut::reference_cut_pair(t, e, e));
    EXPECT_EQ(cov1[static_cast<std::size_t>(e)], mincut::reference_cov_pair(t, e, e));
  }
}

TEST(ReferenceCutValues, Fact5PairIdentity) {
  Rng rng(113);
  WeightedGraph g = erdos_renyi_connected(18, 0.2, rng);
  randomize_weights(g, 1, 5, rng);
  const auto tree = bfs_spanning_tree(g, 0);
  const RootedTree t(g, tree, 0);
  const auto cov1 = mincut::reference_cov1(t);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (std::size_t j = i + 1; j < tree.size(); ++j) {
      const EdgeId e = tree[i], f = tree[j];
      EXPECT_EQ(mincut::reference_cut_pair(t, e, f),
                cov1[static_cast<std::size_t>(e)] + cov1[static_cast<std::size_t>(f)] -
                    2 * mincut::reference_cov_pair(t, e, f));
    }
  }
}

TEST(ReferenceCutValues, CutOfTreeEdgePartitionsBySubtree) {
  // On a path graph with a chord, cutting {i,i+1} plus the chord's crossing.
  WeightedGraph g = path_graph(6);
  g.add_edge(1, 4, 10);
  std::vector<EdgeId> tree = {0, 1, 2, 3, 4};
  const RootedTree t(g, tree, 0);
  // Tree edge {2,3}: crossing edges are itself (w=1) and the chord (w=10).
  EXPECT_EQ(mincut::reference_cut_pair(t, 2, 2), 11);
  // Pair ({1,2}, {4,5}): chord covers {1,2}..{3,4} so it crosses only e.
  EXPECT_EQ(mincut::reference_cut_pair(t, 1, 4), 1 + 10 + 1);
}

TEST(NaiveTwoRespect, MinCutWhenTreeTwoRespectsIt) {
  // Dumbbell: min cut = the bridge; any spanning tree 1-respects it.
  WeightedGraph g = dumbbell(4, 2);
  const auto tree = bfs_spanning_tree(g, 0);
  const RootedTree t(g, tree, 0);
  const auto best = naive_two_respecting(t);
  EXPECT_EQ(best.value, stoer_wagner(g).value);
}

TEST(NaiveTwoRespect, AgainstExhaustivePairEnumeration) {
  Rng rng(127);
  for (int trial = 0; trial < 10; ++trial) {
    WeightedGraph g = erdos_renyi_connected(14, 0.25, rng);
    randomize_weights(g, 1, 9, rng);
    const auto tree = bfs_spanning_tree(g, 0);
    const RootedTree t(g, tree, 0);
    const auto fast = naive_two_respecting(t);
    mincut::CutResult slow;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      slow.absorb({mincut::reference_cut_pair(t, tree[i], tree[i]), tree[i], kNoEdge});
      for (std::size_t j = i + 1; j < tree.size(); ++j)
        slow.absorb({mincut::reference_cut_pair(t, tree[i], tree[j]), tree[i], tree[j]});
    }
    EXPECT_EQ(fast.value, slow.value);
  }
}

TEST(NaiveTwoRespect, Fact6InterestNecessaryCondition) {
  // If Cut(e,f) beats every 1-respecting cut then Cov(e,f) > Cov(e)/2.
  Rng rng(131);
  for (int trial = 0; trial < 6; ++trial) {
    WeightedGraph g = erdos_renyi_connected(12, 0.3, rng);
    randomize_weights(g, 1, 8, rng);
    const auto tree = bfs_spanning_tree(g, 0);
    const RootedTree t(g, tree, 0);
    const Weight best1 = naive_one_respecting(t).value;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      for (std::size_t j = 0; j < tree.size(); ++j) {
        if (i == j) continue;
        const EdgeId e = tree[i], f = tree[j];
        if (mincut::reference_cut_pair(t, e, f) < best1) {
          EXPECT_GT(2 * mincut::reference_cov_pair(t, e, f),
                    mincut::reference_cov_pair(t, e, e));
        }
      }
    }
  }
}

}  // namespace
}  // namespace umc::baseline
