#pragma once

// Star instances and path-interest machinery (Section 7.1-7.2).
//
// A star instance (Definition 26, Figure 2) is a root plus k disjoint
// descending paths. The interest machinery locates, for each path, the
// O(log n) other paths that can share an optimal 2-respecting pair with it
// (Lemmas 28 & 30), using deterministic heavy-hitter sketches folded along
// each path (Lemma 32) — cross-edges only, so no sketch deletions are ever
// needed.

#include <vector>

#include "mincut/instance.hpp"
#include "minoragg/ledger.hpp"

namespace umc::mincut {

struct StarInstance {
  WeightedGraph graph;
  std::vector<bool> is_virtual;  // per node
  std::vector<EdgeId> origin;    // per edge; kNoEdge = not a candidate
  NodeId root = 0;
  /// path_nodes[i] lists path i top (child of root) → bottom;
  /// path_edges[i][j] connects (j == 0 ? root : path_nodes[i][j-1]) to
  /// path_nodes[i][j].
  std::vector<std::vector<NodeId>> path_nodes;
  std::vector<std::vector<EdgeId>> path_edges;

  [[nodiscard]] int k() const { return static_cast<int>(path_nodes.size()); }
  [[nodiscard]] int beta() const {
    int b = 0;
    for (const bool f : is_virtual) b += f ? 1 : 0;
    return b;
  }
};

/// Which path each node belongs to (-1 for the root); bookkeeping.
[[nodiscard]] std::vector<int> path_of_node(const StarInstance& inst);

/// Lemma 32: per path, the ids of paths it is interested in — contains
/// every strongly (1/2-) interested path, only weakly (1/5-) interested
/// ones. Built from Misra-Gries sketches (Example 8) suffix-folded along
/// each path (all paths in parallel), plus one union round.
[[nodiscard]] std::vector<std::vector<int>> interest_lists(const StarInstance& inst,
                                                           minoragg::Ledger& ledger);

/// Definition 33: the mutual-interest graph over path indices, as sorted
/// adjacency lists.
[[nodiscard]] std::vector<std::vector<int>> interest_graph(
    const std::vector<std::vector<int>>& lists);

}  // namespace umc::mincut
