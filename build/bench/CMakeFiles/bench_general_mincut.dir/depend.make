# Empty dependencies file for bench_general_mincut.
# This may be replaced when dependencies are built.
