// Tests for the deterministic Appendix A primitives: Cole-Vishkin
// 3-coloring, star merging (Lemma 44), numbered path sums (Lemma 45),
// HL subtree/ancestor sums (Lemma 46), deterministic HL construction
// (Lemma 47), centroid finding (Lemma 42), and Borůvka MST.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "minoragg/boruvka.hpp"
#include "minoragg/cole_vishkin.hpp"
#include "minoragg/path_sums.hpp"
#include "minoragg/star_merge.hpp"
#include "minoragg/tree_primitives.hpp"
#include "tree/centroid.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {
namespace {

RootedTree tree_of(const WeightedGraph& g, NodeId root = 0) {
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  return RootedTree(g, ids, root);
}

void expect_proper(std::span<const int> out, std::span<const int> color) {
  for (std::size_t v = 0; v < out.size(); ++v) {
    EXPECT_GE(color[v], 0);
    EXPECT_LE(color[v], 2);
    if (out[v] >= 0) {
      EXPECT_NE(color[v], color[static_cast<std::size_t>(out[v])]);
    }
  }
}

TEST(ColeVishkin, ProperOnChains) {
  // 0 -> 1 -> 2 -> ... -> n-1 (root).
  for (const int n : {1, 2, 3, 10, 1000}) {
    std::vector<int> out(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = v + 1 < n ? v + 1 : -1;
    Ledger ledger;
    const auto color = cole_vishkin_3color(out, ledger);
    expect_proper(out, color);
    // O(log* n) bit-reduction iterations: tiny even for n = 1000.
    EXPECT_LE(ledger.counter("cv_iterations"), 6);
  }
}

TEST(ColeVishkin, ProperOnRandomForestsAndTwoCycles) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 50 + static_cast<int>(rng.next_below(200));
    std::vector<int> out(static_cast<std::size_t>(n), -1);
    for (int v = 0; v < n; ++v) {
      if (rng.next_bool(0.9)) {
        int w = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (w == v) w = (v + 1) % n;
        out[static_cast<std::size_t>(v)] = w;  // arbitrary functional graph
      }
    }
    Ledger ledger;
    const auto color = cole_vishkin_3color(out, ledger);
    expect_proper(out, color);
  }
}

TEST(StarMerge, Lemma44Guarantees) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30 + static_cast<int>(rng.next_below(100));
    // Rooted forest: node v points to a random lower-numbered node.
    std::vector<int> out(static_cast<std::size_t>(n), -1);
    for (int v = 1; v < n; ++v)
      out[static_cast<std::size_t>(v)] = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(v)));
    Ledger ledger;
    const StarMergeResult res = star_merge(out, ledger);
    EXPECT_EQ(res.out_degree_one, n - 1);
    EXPECT_GE(3 * res.num_joiners, res.out_degree_one);     // (1)
    for (int v = 0; v < n; ++v) {
      if (!res.is_joiner[static_cast<std::size_t>(v)]) continue;
      ASSERT_GE(out[static_cast<std::size_t>(v)], 0);        // (2) J ⊆ O
      EXPECT_FALSE(res.is_joiner[static_cast<std::size_t>(out[static_cast<std::size_t>(v)])]);  // (3)
    }
  }
}

TEST(PathSums, PrefixAndSuffixMatchScan) {
  Rng rng(11);
  for (const int n : {1, 2, 3, 17, 64, 100}) {
    std::vector<std::int64_t> vals(static_cast<std::size_t>(n));
    for (auto& v : vals) v = rng.next_in(-50, 50);
    Ledger ledger;
    const auto pre = path_prefix_sums<SumAgg>(vals, ledger);
    const auto suf = path_suffix_sums<SumAgg>(vals, ledger);
    std::int64_t acc = 0;
    for (int i = 0; i < n; ++i) {
      acc += vals[static_cast<std::size_t>(i)];
      EXPECT_EQ(pre[static_cast<std::size_t>(i)], acc);
    }
    acc = 0;
    for (int i = n - 1; i >= 0; --i) {
      acc += vals[static_cast<std::size_t>(i)];
      EXPECT_EQ(suf[static_cast<std::size_t>(i)], acc);
    }
    // Lemma 45: O(log n) rounds.
    EXPECT_LE(ledger.rounds(), 2 * (ceil_log2(static_cast<std::uint64_t>(n) + 1) + 2));
  }
}

TEST(PathSums, WorksWithMinAggregator) {
  const std::vector<std::int64_t> vals = {5, 3, 9, 1, 7};
  Ledger ledger;
  const auto pre = path_prefix_sums<MinAgg>(vals, ledger);
  EXPECT_EQ(pre[0], 5);
  EXPECT_EQ(pre[2], 3);
  EXPECT_EQ(pre[4], 1);
}

TEST(TreePrimitives, SubtreeSumsMatchReference) {
  Rng rng(13);
  for (const NodeId n : {1, 2, 5, 40, 200}) {
    const WeightedGraph g = random_tree(n, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    std::vector<std::int64_t> input(static_cast<std::size_t>(n));
    for (auto& v : input) v = rng.next_in(-10, 10);
    Ledger ledger;
    const auto s = hl_subtree_sums<SumAgg>(t, hld, input, ledger);
    // Reference: accumulate up the tree.
    std::vector<std::int64_t> ref(input.begin(), input.end());
    const auto order = t.preorder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (t.parent(*it) != kNoNode)
        ref[static_cast<std::size_t>(t.parent(*it))] += ref[static_cast<std::size_t>(*it)];
    }
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(s[static_cast<std::size_t>(v)], ref[static_cast<std::size_t>(v)]);
  }
}

TEST(TreePrimitives, AncestorSumsMatchReference) {
  Rng rng(17);
  for (const NodeId n : {1, 3, 25, 150}) {
    const WeightedGraph g = random_tree(n, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    std::vector<std::int64_t> input(static_cast<std::size_t>(n));
    for (auto& v : input) v = rng.next_in(0, 9);
    Ledger ledger;
    const auto p = hl_ancestor_sums<SumAgg>(t, hld, input, ledger);
    for (NodeId v = 0; v < n; ++v) {
      std::int64_t ref = 0;
      for (NodeId x = v; x != kNoNode; x = t.parent(x)) ref += input[static_cast<std::size_t>(x)];
      EXPECT_EQ(p[static_cast<std::size_t>(v)], ref);
    }
  }
}

TEST(TreePrimitives, SumsArePolylogRounds) {
  Rng rng(19);
  // Rounds grow polylogarithmically: compare n=100 against n=10000.
  std::int64_t rounds_small = 0, rounds_large = 0;
  {
    const WeightedGraph g = random_tree(100, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    std::vector<std::int64_t> in(100, 1);
    Ledger l;
    hl_subtree_sums<SumAgg>(t, hld, in, l);
    rounds_small = l.rounds();
  }
  {
    const WeightedGraph g = random_tree(10000, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    std::vector<std::int64_t> in(10000, 1);
    Ledger l;
    hl_subtree_sums<SumAgg>(t, hld, in, l);
    rounds_large = l.rounds();
  }
  // 100x more nodes but far less than 10x more rounds.
  EXPECT_LT(rounds_large, 6 * rounds_small);
}

TEST(TreePrimitives, HlConstructMatchesReferenceLabels) {
  Rng rng(23);
  for (const NodeId n : {2, 10, 64, 300}) {
    const WeightedGraph g = random_tree(n, rng);
    const RootedTree t = tree_of(g);
    Ledger ledger;
    const HeavyLightDecomposition built = hl_construct(t, ledger);
    const HeavyLightDecomposition ref(t);
    for (EdgeId e = 0; e < g.m(); ++e) EXPECT_EQ(built.is_heavy(e), ref.is_heavy(e));
    EXPECT_GE(ledger.counter("hl_merge_iterations"), 1);
    // Star merging contracts >= 1/3 of parts per iteration.
    EXPECT_LE(ledger.counter("hl_merge_iterations"),
              3 * ceil_log2(static_cast<std::uint64_t>(n)) + 3);
  }
}

TEST(TreePrimitives, CentroidMatchesFact41) {
  Rng rng(29);
  for (const NodeId n : {1, 2, 7, 100, 321}) {
    const WeightedGraph g = random_tree(n, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    Ledger ledger;
    const NodeId c = find_centroid_ma(t, hld, ledger);
    EXPECT_LE(largest_component_after_removal(t, c), n / 2);
  }
}

TEST(Boruvka, MatchesKruskalOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId n = 5 + static_cast<NodeId>(rng.next_below(60));
    WeightedGraph g = random_connected(n, n + static_cast<EdgeId>(rng.next_below(80)), rng);
    std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
    for (auto& c : cost) c = rng.next_in(1, 40);
    std::vector<double> dcost(cost.begin(), cost.end());
    Ledger ledger;
    const auto b = boruvka_mst(g, cost, ledger);
    const auto k = kruskal_mst(g, dcost);
    std::int64_t bw = 0, kw = 0;
    for (const EdgeId e : b) bw += cost[static_cast<std::size_t>(e)];
    for (const EdgeId e : k) kw += cost[static_cast<std::size_t>(e)];
    EXPECT_EQ(bw, kw);
    // O(log n) Definition 9 rounds.
    EXPECT_LE(ledger.rounds(), ceil_log2(static_cast<std::uint64_t>(n)) + 2);
  }
}

TEST(Boruvka, SingleNodeAndSingleEdge) {
  Ledger l1;
  const WeightedGraph g1 = path_graph(1);
  EXPECT_TRUE(boruvka_mst(g1, std::vector<std::int64_t>{}, l1).empty());
  Ledger l2;
  WeightedGraph g2(2);
  g2.add_edge(0, 1, 5);
  const std::vector<std::int64_t> cost = {5};
  EXPECT_EQ(boruvka_mst(g2, cost, l2).size(), 1u);
}

}  // namespace
}  // namespace umc::minoragg

namespace umc::minoragg {
namespace {

TEST(OrientTree, Theorem48ProducesTheRequestedRootingOnFamilies) {
  Rng rng(43);
  for (const NodeId n : {2, 3, 17, 200, 1000}) {
    const WeightedGraph g = random_tree(n, rng);
    std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
    std::iota(ids.begin(), ids.end(), EdgeId{0});
    const NodeId root = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    Ledger ledger;
    const RootedTree t = orient_tree(g, ids, root, ledger);
    EXPECT_EQ(t.root(), root);
    EXPECT_EQ(t.subtree_size(root), n);
    // Theorem 48 merging: >= 1/3 of parts merge per iteration.
    EXPECT_LE(ledger.counter("orient_merge_iterations"),
              3 * ceil_log2(static_cast<std::uint64_t>(n) + 1) + 3);
    if (n > 1) {
      EXPECT_GE(ledger.counter("orient_merge_iterations"), 1);
    }
  }
}

TEST(OrientTree, ArbitraryMarksCreateTwoCyclesAndStillMerge) {
  // A path: the two end parts mark each other through the middle after a
  // few merges — the 2-cycle case of the Cole-Vishkin coloring.
  const WeightedGraph g = path_graph(64);
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  Ledger ledger;
  const RootedTree t = orient_tree(g, ids, 63, ledger);
  EXPECT_EQ(t.depth(0), 63);
}

}  // namespace
}  // namespace umc::minoragg
