#include "baseline/karger.hpp"

#include <algorithm>

#include "graph/dsu.hpp"
#include "util/assert.hpp"

namespace umc::baseline {

Weight karger_single_run(const WeightedGraph& g, Rng& rng) {
  UMC_ASSERT(g.n() >= 2);
  // Weighted contraction: pick edges with probability proportional to
  // weight, via a weight-proportional index draw per contraction.
  Dsu dsu(g.n());
  NodeId components = g.n();
  // Prefix sums over edge weights for proportional sampling.
  std::vector<Weight> prefix(static_cast<std::size_t>(g.m()) + 1, 0);
  for (EdgeId e = 0; e < g.m(); ++e)
    prefix[static_cast<std::size_t>(e) + 1] = prefix[static_cast<std::size_t>(e)] + g.edge(e).w;
  const Weight total = prefix.back();
  while (components > 2) {
    const Weight r = static_cast<Weight>(rng.next_below(static_cast<std::uint64_t>(total)));
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), r);
    const EdgeId e = static_cast<EdgeId>(it - prefix.begin() - 1);
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) --components;
  }
  Weight cut = 0;
  for (const Edge& e : g.edges())
    if (!dsu.same(e.u, e.v)) cut += e.w;
  return cut;
}

Weight karger_min_cut(const WeightedGraph& g, int trials, Rng& rng) {
  UMC_ASSERT(trials >= 1);
  Weight best = karger_single_run(g, rng);
  for (int t = 1; t < trials; ++t) best = std::min(best, karger_single_run(g, rng));
  return best;
}

}  // namespace umc::baseline
