#include "mincut/solve_checkpoint.hpp"

#include <string>

namespace umc::mincut {

const char* to_string(SolvePhase p) {
  switch (p) {
    case SolvePhase::kPackingSetup: return "packing-setup";
    case SolvePhase::kPackingIteration: return "packing-iteration";
    case SolvePhase::kTreeSolve: return "tree-solve";
  }
  return "?";
}

crash_error::crash_error(SolvePhase phase, std::int64_t index)
    : std::runtime_error(std::string("simulated crash at ") + to_string(phase) + " #" +
                         std::to_string(index)),
      phase_(phase),
      index_(index) {}

std::int64_t SolveCheckpoint::committed_solves() const {
  std::int64_t n = 0;
  for (const char c : solved_mask) n += c != 0 ? 1 : 0;
  return n;
}

void SolveCheckpoint::note_tree_count(std::size_t count) {
  if (solved.size() >= count) return;
  solved.resize(count);
  solved_mask.resize(count, 0);
  solve_charges.resize(count);
}

}  // namespace umc::mincut
