file(REMOVE_RECURSE
  "CMakeFiles/test_interest_deep.dir/test_interest_deep.cpp.o"
  "CMakeFiles/test_interest_deep.dir/test_interest_deep.cpp.o.d"
  "test_interest_deep"
  "test_interest_deep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interest_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
