#pragma once

// Centralized reference implementation of the cut/cover machinery of
// Section 3.2 (Facts 5 & 6). These are the correctness oracles that the
// distributed algorithms are tested against; they are also used by the
// naive baseline.

#include <vector>

#include "mincut/instance.hpp"
#include "tree/lca.hpp"
#include "tree/rooted_tree.hpp"

namespace umc::mincut {

/// Cov(e) = Cut(e) for every tree edge (Fact 5), indexed by host edge id
/// (non-tree slots hold 0). O(m + n).
[[nodiscard]] std::vector<Weight> reference_cov1(const RootedTree& t);

/// Cut_{T,G}(e, f) for one pair of tree edges, by direct path inspection.
/// O(m * depth). e == f gives the 1-respecting Cut(e).
[[nodiscard]] Weight reference_cut_pair(const RootedTree& t, EdgeId e, EdgeId f);

/// Cov_{T,G}(e, f) for one pair of tree edges. O(m * depth).
[[nodiscard]] Weight reference_cov_pair(const RootedTree& t, EdgeId e, EdgeId f);

/// True iff the graph edge ge covers the tree edge te (te lies on the tree
/// path between ge's endpoints).
[[nodiscard]] bool edge_covers(const RootedTree& t, EdgeId ge, EdgeId te);

}  // namespace umc::mincut
