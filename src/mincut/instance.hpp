#pragma once

// Shared vocabulary of the 2-respecting min-cut pipeline (Sections 5-9).
//
// Every sub-algorithm (path-to-path, star, between-subtree, general) works
// on an *instance*: a self-contained weighted graph with a spanning tree,
// possibly containing virtual nodes, whose tree edges carry provenance to
// the original spanning tree so results can be reported in original terms.
// Auxiliary edges introduced by the transformations (virtual-root
// connectors, split edges) carry origin == kNoEdge and are never candidates.

#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "tree/rooted_tree.hpp"

namespace umc::mincut {

inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::max() / 4;

/// Best cut seen: value plus the defining tree edge(s) as ORIGINAL tree edge
/// ids. f == kNoEdge means a 1-respecting cut; e == kNoEdge means "no cut
/// found" (value == kInfWeight).
struct CutResult {
  Weight value = kInfWeight;
  EdgeId e = kNoEdge;
  EdgeId f = kNoEdge;

  [[nodiscard]] static CutResult better(const CutResult& a, const CutResult& b) {
    return a.value <= b.value ? a : b;
  }
  void absorb(const CutResult& other) { *this = better(*this, other); }
  [[nodiscard]] bool found() const { return value < kInfWeight; }
};

/// An instance: graph + spanning-tree edge ids + root + provenance.
struct Instance {
  WeightedGraph graph;
  std::vector<bool> is_virtual;        // per node
  std::vector<EdgeId> tree_edges;      // spanning tree of `graph`
  NodeId root = 0;
  /// Per edge of `graph`: the originating ORIGINAL tree edge id for
  /// candidate tree edges, kNoEdge otherwise.
  std::vector<EdgeId> origin;

  [[nodiscard]] int beta() const {
    int b = 0;
    for (const bool f : is_virtual) b += f ? 1 : 0;
    return b;
  }
};

/// Builds the initial instance from a host graph and spanning tree: no
/// virtual nodes; every tree edge is its own origin.
[[nodiscard]] Instance make_root_instance(const WeightedGraph& g,
                                          std::span<const EdgeId> tree_edges, NodeId root);

/// Endpoint-remapped copy of a graph: node v of `src` becomes
/// node_map[v] in the result (node_map[v] must be in [0, new_n)); edges
/// whose endpoints collide become self-loops and are dropped. This is the
/// uniform "absorb a region into a boundary/virtual node" operation behind
/// the cut-equivalent constructions of Sections 6, 7, and 9.
struct RemappedGraph {
  WeightedGraph graph;
  std::vector<EdgeId> origin;    // per new edge (copied from src_origin)
  std::vector<EdgeId> edge_map;  // src edge id -> new edge id, or kNoEdge
};
[[nodiscard]] RemappedGraph remap_graph(const WeightedGraph& src,
                                        std::span<const EdgeId> src_origin,
                                        std::span<const NodeId> node_map, NodeId new_n);

}  // namespace umc::mincut
