#include "minoragg/boruvka.hpp"

#include <algorithm>
#include <set>

#include "minoragg/network.hpp"
#include "util/assert.hpp"

namespace umc::minoragg {

std::vector<EdgeId> boruvka_mst(const WeightedGraph& g, std::span<const std::int64_t> cost,
                                Ledger& ledger) {
  UMC_ASSERT(static_cast<EdgeId>(cost.size()) == g.m());
  UMC_ASSERT(g.n() >= 1);
  Network net(g, ledger);

  std::vector<bool> selected(static_cast<std::size_t>(g.m()), false);
  const std::vector<std::int64_t> zeros(static_cast<std::size_t>(g.n()), 0);
  for (;;) {
    // One Definition 9 round: contract the forest; every surviving minor
    // edge proposes (cost, id) to both sides; min-aggregate per supernode.
    const auto res = net.round<SumAgg, MinPairAgg>(
        selected, zeros,
        [&cost](EdgeId e, const std::int64_t&, const std::int64_t&) {
          const MinPairAgg::value_type z{cost[static_cast<std::size_t>(e)],
                                         static_cast<std::int64_t>(e)};
          return std::pair{z, z};
        });

    // Collect the chosen minimum outgoing edge of each supernode.
    std::set<EdgeId> chosen;
    bool contracted_everything = true;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (res.supernode[static_cast<std::size_t>(v)] != res.supernode[0])
        contracted_everything = false;
      const auto& [c, id] = res.aggregate[static_cast<std::size_t>(v)];
      if (id != MinPairAgg::identity().second) chosen.insert(static_cast<EdgeId>(id));
    }
    if (contracted_everything) break;
    UMC_ASSERT_MSG(!chosen.empty(), "boruvka requires a connected graph");
    for (const EdgeId e : chosen) selected[static_cast<std::size_t>(e)] = true;
    ledger.bump("boruvka_iterations");
  }

  std::vector<EdgeId> tree;
  for (EdgeId e = 0; e < g.m(); ++e)
    if (selected[static_cast<std::size_t>(e)]) tree.push_back(e);
  UMC_ASSERT(static_cast<NodeId>(tree.size()) == g.n() - 1);
  return tree;
}

}  // namespace umc::minoragg
