file(REMOVE_RECURSE
  "CMakeFiles/bench_compiled_execution.dir/bench_compiled_execution.cpp.o"
  "CMakeFiles/bench_compiled_execution.dir/bench_compiled_execution.cpp.o.d"
  "bench_compiled_execution"
  "bench_compiled_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiled_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
