// Experiment E17 (ablation on Theorem 12): how many packing trees are
// actually needed before some tree 2-respects the min-cut?
//
// Sweeps a hard cap on the number of greedy-packing iterations and reports
// the success rate over seeds. The theorem prescribes Θ(λ log m)
// iterations; the ablation shows the success curve saturating well before
// that in practice — and collapsing when the cap is tiny.

#include "baseline/stoer_wagner.hpp"
#include "bench_common.hpp"
#include "mincut/tree_packing.hpp"

namespace umc {
namespace {

void BM_PackingTreesVsSuccess(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  // High-connectivity workload (lambda >> log n): many near-minimum cuts
  // compete, so small packings genuinely miss.
  Rng grng(77);
  WeightedGraph g = complete_graph(28);
  randomize_weights(g, 40, 60, grng);
  const baseline::GlobalMinCut cut = baseline::stoer_wagner(g);
  std::vector<bool> in_side(static_cast<std::size_t>(g.n()), false);
  for (const NodeId v : cut.side) in_side[static_cast<std::size_t>(v)] = true;

  const int seeds = 16;
  int successes = 0;
  for (auto _ : state) {
    successes = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng rng(1000 + static_cast<std::uint64_t>(s));
      minoragg::Ledger ledger;
      mincut::PackingConfig config;
      config.max_trees = cap;
      const mincut::TreePacking packing = mincut::tree_packing(g, rng, ledger, config);
      int best = g.n();
      for (const auto& tree : packing.trees) {
        int crossing = 0;
        for (const EdgeId e : tree)
          crossing += in_side[static_cast<std::size_t>(g.edge(e).u)] !=
                              in_side[static_cast<std::size_t>(g.edge(e).v)]
                          ? 1
                          : 0;
        best = std::min(best, crossing);
      }
      if (best <= 2) ++successes;
    }
    benchmark::DoNotOptimize(successes);
  }
  state.counters["max_trees"] = cap;
  state.counters["success_rate"] = static_cast<double>(successes) / seeds;
}

BENCHMARK(BM_PackingTreesVsSuccess)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
