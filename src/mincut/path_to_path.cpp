#include "mincut/path_to_path.hpp"

#include <algorithm>
#include <optional>

#include "mincut/one_respect.hpp"
#include "minoragg/path_sums.hpp"
#include "minoragg/tree_primitives.hpp"
#include "minoragg/virtual_graph.hpp"
#include "obs/trace.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace umc::mincut {

namespace {

enum class Side : char { kRoot, kP, kQ };

/// Per-node location within the instance: which path, and the index on it.
struct Layout {
  std::vector<Side> side;
  std::vector<int> pos;  // index in nodesP / nodesQ; -1 for the root
};

void classify_into(const PathInstance& inst, Layout& lay) {
  lay.side.assign(static_cast<std::size_t>(inst.graph.n()), Side::kRoot);
  lay.pos.assign(static_cast<std::size_t>(inst.graph.n()), -1);
  UMC_ASSERT_MSG(static_cast<NodeId>(inst.nodesP.size() + inst.nodesQ.size()) + 1 ==
                     inst.graph.n(),
                 "a path instance contains only root + P + Q nodes");
  for (std::size_t i = 0; i < inst.nodesP.size(); ++i) {
    lay.side[static_cast<std::size_t>(inst.nodesP[i])] = Side::kP;
    lay.pos[static_cast<std::size_t>(inst.nodesP[i])] = static_cast<int>(i);
  }
  for (std::size_t j = 0; j < inst.nodesQ.size(); ++j) {
    lay.side[static_cast<std::size_t>(inst.nodesQ[j])] = Side::kQ;
    lay.pos[static_cast<std::size_t>(inst.nodesQ[j])] = static_cast<int>(j);
  }
}

/// Lemma 21: with e_fix = (fixed_on_p ? edgesP : edgesQ)[idx], returns
/// Cov(e_fix, f_j) for every edge index j of the OTHER path: one labeling
/// round (each cross edge below the fixed edge labels its other endpoint)
/// plus a suffix sum along the other path.
void cov_row_into(const PathInstance& inst, const Layout& lay, bool fixed_on_p,
                  std::size_t idx, minoragg::Ledger& ledger, std::vector<Weight>& cov) {
  const Side below_side = fixed_on_p ? Side::kP : Side::kQ;
  const Side other_side = fixed_on_p ? Side::kQ : Side::kP;
  const std::size_t other_len = fixed_on_p ? inst.nodesQ.size() : inst.nodesP.size();

  // One labeling row per fixed edge: leased so the inner Monge scans reuse
  // one label/reversal buffer per thread instead of allocating per row.
  ScratchLease<std::vector<std::int64_t>> label_s, rev_s;
  std::vector<std::int64_t>& label = *label_s;
  label.assign(other_len, 0);
  ledger.charge(1);
  for (const Edge& e : inst.graph.edges()) {
    for (const auto& [a, b] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
      // a below the fixed edge on its path, b on the other path.
      if (lay.side[static_cast<std::size_t>(a)] != below_side) continue;
      if (static_cast<std::size_t>(lay.pos[static_cast<std::size_t>(a)]) < idx) continue;
      if (lay.side[static_cast<std::size_t>(b)] != other_side) continue;
      label[static_cast<std::size_t>(lay.pos[static_cast<std::size_t>(b)])] += e.w;
    }
  }
  minoragg::path_suffix_sums_into<SumAgg>(label, ledger, *rev_s, cov);
}

struct RowScan {
  CutResult best;                       // best candidate pair in this row
  std::ptrdiff_t argmin_candidate = -1; // steering split: candidate argmin index
};

/// Fixes one edge and evaluates Cut(e_fix, f_j) over the other path.
RowScan scan_row(const PathInstance& inst, const Layout& lay, std::span<const Weight> cov1,
                 bool fixed_on_p, std::size_t idx, minoragg::Ledger& ledger) {
  const auto& fixed_edges = fixed_on_p ? inst.edgesP : inst.edgesQ;
  const auto& other_edges = fixed_on_p ? inst.edgesQ : inst.edgesP;
  const EdgeId e_fix = fixed_edges[idx];
  ScratchLease<std::vector<Weight>> cov_s;
  cov_row_into(inst, lay, fixed_on_p, idx, ledger, *cov_s);
  const std::vector<Weight>& cov = *cov_s;
  ledger.charge(1);  // min-aggregation broadcast of the row result

  RowScan out;
  Weight arg_best = kInfWeight;
  for (std::size_t j = 0; j < other_edges.size(); ++j) {
    const EdgeId f = other_edges[j];
    const Weight cut = cov1[static_cast<std::size_t>(e_fix)] +
                       cov1[static_cast<std::size_t>(f)] - 2 * cov[j];
    const bool f_cand = inst.origin[static_cast<std::size_t>(f)] != kNoEdge;
    if (f_cand && cut < arg_best) {
      arg_best = cut;
      out.argmin_candidate = static_cast<std::ptrdiff_t>(j);
    }
    if (f_cand && inst.origin[static_cast<std::size_t>(e_fix)] != kNoEdge) {
      out.best.absorb(CutResult{cut, inst.origin[static_cast<std::size_t>(e_fix)],
                                inst.origin[static_cast<std::size_t>(f)]});
    }
  }
  return out;
}

bool has_candidate(const PathInstance& inst, const std::vector<EdgeId>& edges) {
  return std::any_of(edges.begin(), edges.end(), [&inst](EdgeId e) {
    return inst.origin[static_cast<std::size_t>(e)] != kNoEdge;
  });
}

/// Definition in Section 6: separable iff every cross-path edge touches one
/// of {root, top(P), bottom(P), top(Q), bottom(Q)}.
bool is_separable(const PathInstance& inst, const Layout& lay) {
  const auto is_boundary = [&](NodeId v) {
    const int p = lay.pos[static_cast<std::size_t>(v)];
    const std::size_t len = lay.side[static_cast<std::size_t>(v)] == Side::kP
                                ? inst.nodesP.size()
                                : inst.nodesQ.size();
    return p == 0 || p == static_cast<int>(len) - 1;
  };
  for (const Edge& e : inst.graph.edges()) {
    const Side su = lay.side[static_cast<std::size_t>(e.u)];
    const Side sv = lay.side[static_cast<std::size_t>(e.v)];
    if (su == Side::kRoot || sv == Side::kRoot || su == sv) continue;  // not cross-path
    if (!is_boundary(e.u) && !is_boundary(e.v)) return false;
  }
  return true;
}

/// Lemma 22 (separable): interior pairs decompose as F_P(e) + F_Q(f); the
/// e_1 row and f_1 column (where top-incident cross edges break the
/// decomposition) are scanned directly.
CutResult solve_separable(const PathInstance& inst, const Layout& lay,
                          std::span<const Weight> cov1, minoragg::Ledger& ledger) {
  CutResult best;
  best.absorb(scan_row(inst, lay, cov1, true, 0, ledger).best);
  best.absorb(scan_row(inst, lay, cov1, false, 0, ledger).best);

  const NodeId bottom_p = inst.nodesP.back();
  const NodeId bottom_q = inst.nodesQ.back();
  // CQ[j] (suffix): cross edges {bottom(P), x ∈ Q} cover every e and cover
  // f_j iff j <= pos(x). CP symmetric, with the {bottom(P), bottom(Q)} edge
  // assigned to CQ only (it covers every pair exactly once).
  ScratchLease<std::vector<std::int64_t>> cq_s, cp_s, rev_s, cq_suffix_s, cp_suffix_s;
  std::vector<std::int64_t>& cq = *cq_s;
  std::vector<std::int64_t>& cp = *cp_s;
  cq.assign(inst.nodesQ.size(), 0);
  cp.assign(inst.nodesP.size(), 0);
  ledger.charge(1);
  for (const Edge& e : inst.graph.edges()) {
    for (const auto& [a, b] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
      if (a == bottom_p && lay.side[static_cast<std::size_t>(b)] == Side::kQ) {
        cq[static_cast<std::size_t>(lay.pos[static_cast<std::size_t>(b)])] += e.w;
        break;  // counted once
      }
      if (a == bottom_q && lay.side[static_cast<std::size_t>(b)] == Side::kP &&
          b != bottom_p) {
        cp[static_cast<std::size_t>(lay.pos[static_cast<std::size_t>(b)])] += e.w;
        break;
      }
    }
  }
  minoragg::path_suffix_sums_into<SumAgg>(cq, ledger, *rev_s, *cq_suffix_s);
  minoragg::path_suffix_sums_into<SumAgg>(cp, ledger, *rev_s, *cp_suffix_s);
  const std::vector<std::int64_t>& cq_suffix = *cq_suffix_s;
  const std::vector<std::int64_t>& cp_suffix = *cp_suffix_s;

  // Interior minimization: min F_P + min F_Q over candidates with index >= 1.
  const auto interior_min = [&](const std::vector<EdgeId>& edges,
                                const std::vector<std::int64_t>& csuffix) {
    std::pair<Weight, EdgeId> best_side{kInfWeight, kNoEdge};
    for (std::size_t i = 1; i < edges.size(); ++i) {
      const EdgeId e = edges[i];
      if (inst.origin[static_cast<std::size_t>(e)] == kNoEdge) continue;
      const Weight f = cov1[static_cast<std::size_t>(e)] - 2 * csuffix[i];
      if (f < best_side.first) best_side = {f, inst.origin[static_cast<std::size_t>(e)]};
    }
    return best_side;
  };
  ledger.charge(1);  // two parallel min-aggregations + broadcast
  const auto [fp, ep] = interior_min(inst.edgesP, cp_suffix);
  const auto [fq, eq] = interior_min(inst.edgesQ, cq_suffix);
  if (ep != kNoEdge && eq != kNoEdge) best.absorb(CutResult{fp + fq, ep, eq});
  return best;
}

struct SubInstances {
  std::optional<PathInstance> up, down;
};

/// Builds the cut-equivalent private graphs of Lemma 23, step 5/6, by
/// absorbing each discarded region into its boundary node: everything below
/// the midpoint/best-response edges collapses into the (virtualized) bottom
/// nodes of P_up/Q_up for G_up; everything above collapses into a fresh
/// virtual root for G_down.
SubInstances build_sub_instances(const PathInstance& inst, std::size_t a, std::size_t b,
                                 minoragg::Ledger& ledger) {
  SubInstances out;
  const std::size_t np = inst.edgesP.size(), nq = inst.edgesQ.size();
  ledger.charge(4);  // Lemma 15 virtualizations + distributed storage setup

  if (a >= 1 && b >= 1) {
    // G_up: new ids: root=0, P_up -> 1..a, Q_up -> a+1..a+b.
    std::vector<NodeId> map(static_cast<std::size_t>(inst.graph.n()), kNoNode);
    map[static_cast<std::size_t>(inst.root)] = 0;
    for (std::size_t i = 0; i < np; ++i)
      map[static_cast<std::size_t>(inst.nodesP[i])] =
          static_cast<NodeId>(1 + std::min(i, a - 1));
    for (std::size_t j = 0; j < nq; ++j)
      map[static_cast<std::size_t>(inst.nodesQ[j])] =
          static_cast<NodeId>(1 + a + std::min(j, b - 1));
    RemappedGraph rg = remap_graph(inst.graph, inst.origin, map,
                                   static_cast<NodeId>(1 + a + b));
    PathInstance up;
    up.graph = std::move(rg.graph);
    up.origin = std::move(rg.origin);
    up.root = 0;
    up.is_virtual.assign(static_cast<std::size_t>(up.graph.n()), false);
    for (NodeId v = 0; v < inst.graph.n(); ++v)
      if (inst.is_virtual[static_cast<std::size_t>(v)])
        up.is_virtual[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] = true;
    up.is_virtual[0] = true;                                  // boundary root
    up.is_virtual[static_cast<std::size_t>(a)] = true;        // p_{-1}
    up.is_virtual[static_cast<std::size_t>(a + b)] = true;    // q_{-1}
    for (std::size_t i = 0; i < a; ++i) {
      up.nodesP.push_back(static_cast<NodeId>(1 + i));
      up.edgesP.push_back(rg.edge_map[static_cast<std::size_t>(inst.edgesP[i])]);
    }
    for (std::size_t j = 0; j < b; ++j) {
      up.nodesQ.push_back(static_cast<NodeId>(1 + a + j));
      up.edgesQ.push_back(rg.edge_map[static_cast<std::size_t>(inst.edgesQ[j])]);
    }
    out.up = std::move(up);
  }

  if (a + 1 < np && b + 1 < nq) {
    // G_down: new ids: r_down=0, P nodes a.. -> 1.., Q nodes b.. -> after.
    const std::size_t lp = np - a;  // kept P nodes (nodesP[a..])
    const std::size_t lq = nq - b;
    std::vector<NodeId> map(static_cast<std::size_t>(inst.graph.n()), 0);  // external -> r_down
    for (std::size_t i = a; i < np; ++i)
      map[static_cast<std::size_t>(inst.nodesP[i])] = static_cast<NodeId>(1 + (i - a));
    for (std::size_t j = b; j < nq; ++j)
      map[static_cast<std::size_t>(inst.nodesQ[j])] = static_cast<NodeId>(1 + lp + (j - b));
    RemappedGraph rg = remap_graph(inst.graph, inst.origin, map,
                                   static_cast<NodeId>(1 + lp + lq));
    PathInstance down;
    down.graph = std::move(rg.graph);
    down.origin = std::move(rg.origin);
    down.root = 0;
    down.is_virtual.assign(static_cast<std::size_t>(down.graph.n()), false);
    for (NodeId v = 0; v < inst.graph.n(); ++v)
      if (inst.is_virtual[static_cast<std::size_t>(v)] &&
          map[static_cast<std::size_t>(v)] != 0)
        down.is_virtual[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] = true;
    down.is_virtual[0] = true;  // r_down
    // Synthetic connectors {r_down, top}: tree edges, never candidates.
    const EdgeId conn_p = down.graph.add_edge(0, 1, 1);
    down.origin.push_back(kNoEdge);
    const EdgeId conn_q = down.graph.add_edge(0, static_cast<NodeId>(1 + lp), 1);
    down.origin.push_back(kNoEdge);
    down.nodesP.push_back(1);
    down.edgesP.push_back(conn_p);
    for (std::size_t i = a + 1; i < np; ++i) {
      down.nodesP.push_back(static_cast<NodeId>(1 + (i - a)));
      down.edgesP.push_back(rg.edge_map[static_cast<std::size_t>(inst.edgesP[i])]);
    }
    down.nodesQ.push_back(static_cast<NodeId>(1 + lp));
    down.edgesQ.push_back(conn_q);
    for (std::size_t j = b + 1; j < nq; ++j) {
      down.nodesQ.push_back(static_cast<NodeId>(1 + lp + (j - b)));
      down.edgesQ.push_back(rg.edge_map[static_cast<std::size_t>(inst.edgesQ[j])]);
    }
    out.down = std::move(down);
  }
  return out;
}

CutResult solve(const PathInstance& inst, minoragg::Ledger& parent, int depth) {
  UMC_ASSERT(!inst.edgesP.empty() && !inst.edgesQ.empty());
  // Logical clock: the path-to-path halving depth.
  UMC_OBS_SPAN_VAR_L(obs_solve, "mincut/p2p_solve", "mincut", depth);
  obs_solve.arg("np", static_cast<std::int64_t>(inst.edgesP.size()));
  obs_solve.arg("nq", static_cast<std::int64_t>(inst.edgesQ.size()));
  minoragg::Ledger local;
  local.set_max("max_p2p_depth", depth);

  std::vector<EdgeId> tree_edges(inst.edgesP.begin(), inst.edgesP.end());
  tree_edges.insert(tree_edges.end(), inst.edgesQ.begin(), inst.edgesQ.end());
  const RootedTree t(inst.graph, tree_edges, inst.root);
  const HeavyLightDecomposition hld = minoragg::hl_construct(t, local);
  const OneRespectResult r1 = one_respecting_cuts(t, inst.origin, hld, local);
  CutResult best = r1.best;
  ScratchLease<Layout> lay_s;
  classify_into(inst, *lay_s);
  const Layout& lay = *lay_s;
  const std::size_t np = inst.edgesP.size(), nq = inst.edgesQ.size();

  if (!has_candidate(inst, inst.edgesP) || !has_candidate(inst, inst.edgesQ)) {
    // No candidate pair exists; only the 1-respecting minimum matters.
    minoragg::settle_virtual_execution(parent, local, inst.beta());
    return best;
  }

  if (std::min(np, nq) <= 10) {
    // Base case: exhaustively scan every edge of the shorter path.
    const bool scan_p = np <= nq;
    const std::size_t len = scan_p ? np : nq;
    for (std::size_t i = 0; i < len; ++i)
      best.absorb(scan_row(inst, lay, r1.cut, scan_p, i, local).best);
    minoragg::settle_virtual_execution(parent, local, inst.beta());
    return best;
  }

  if (is_separable(inst, lay)) {
    best.absorb(solve_separable(inst, lay, r1.cut, local));
    minoragg::settle_virtual_execution(parent, local, inst.beta());
    return best;
  }

  // Lemma 23: midpoint + best candidate response, then Monge recursion.
  const std::size_t a = np / 2;
  const RowScan row_a = scan_row(inst, lay, r1.cut, true, a, local);
  best.absorb(row_a.best);
  UMC_ASSERT(row_a.argmin_candidate >= 0);  // Q has a candidate
  const std::size_t b = static_cast<std::size_t>(row_a.argmin_candidate);
  best.absorb(scan_row(inst, lay, r1.cut, false, b, local).best);

  const SubInstances subs = build_sub_instances(inst, a, b, local);
  minoragg::settle_virtual_execution(parent, local, inst.beta());

  // The recursive calls are node-disjoint: run both as tasks, then merge
  // up-before-down — the same absorb and charge_parallel order as the
  // inline recursion, so counters stay bit-identical at any width.
  CutResult up_best, down_best;
  minoragg::Ledger up_ledger, down_ledger;
  {
    TaskGroup halves;
    if (subs.up) {
      const PathInstance& up = *subs.up;
      halves.spawn([&up, &up_best, &up_ledger, depth] {
        // Two args max per TraceEvent: kind + pool_thread (depth is the
        // logical clock; up vs down is visible from span nesting order).
        UMC_OBS_SPAN_VAR_L(obs_item, "mincut/ttr_item", "mincut", depth);
        obs_item.arg("kind", 3);  // 3 = path-to-path Monge half
        obs_item.arg("pool_thread", ThreadPool::current_index());
        up_best = solve(up, up_ledger, depth + 1);
      });
    }
    if (subs.down) {
      const PathInstance& down = *subs.down;
      halves.spawn([&down, &down_best, &down_ledger, depth] {
        UMC_OBS_SPAN_VAR_L(obs_item, "mincut/ttr_item", "mincut", depth);
        obs_item.arg("kind", 3);
        obs_item.arg("pool_thread", ThreadPool::current_index());
        down_best = solve(down, down_ledger, depth + 1);
      });
    }
    halves.join();
  }
  std::vector<minoragg::Ledger> kids;
  if (subs.up) {
    best.absorb(up_best);
    kids.push_back(std::move(up_ledger));
  }
  if (subs.down) {
    best.absorb(down_best);
    kids.push_back(std::move(down_ledger));
  }
  parent.charge_parallel(kids);
  return best;
}

}  // namespace

CutResult path_to_path_mincut(const PathInstance& inst, minoragg::Ledger& ledger) {
  return solve(inst, ledger, 1);
}

}  // namespace umc::mincut
