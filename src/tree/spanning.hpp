#pragma once

// Spanning-tree constructions over a host graph: BFS trees (round-efficient
// communication backbones), Kruskal minimum spanning trees with arbitrary
// per-edge costs (the greedy tree-packing of Theorem 12 re-costs edges by
// packing load each iteration), a reusable chunk-parallel Borůvka MST (the
// tree-packing fast path), and uniform random spanning trees (Wilson) for
// randomized tests.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace umc {

/// Edge ids of a BFS spanning tree rooted at `root`. Requires connectivity.
[[nodiscard]] std::vector<EdgeId> bfs_spanning_tree(const WeightedGraph& g, NodeId root);

/// Kruskal MST edge ids under external per-edge costs (ties by edge id, so
/// the result is deterministic). `cost.size() == g.m()`.
[[nodiscard]] std::vector<EdgeId> kruskal_mst(const WeightedGraph& g,
                                              std::span<const double> cost);

/// Kruskal MST under the graph's own weights.
[[nodiscard]] std::vector<EdgeId> kruskal_mst(const WeightedGraph& g);

/// Uniform random spanning tree via Wilson's algorithm (loop-erased random
/// walks). Ignores weights. Requires connectivity.
[[nodiscard]] std::vector<EdgeId> wilson_random_spanning_tree(const WeightedGraph& g, Rng& rng);

/// Reusable deterministic Borůvka MST under external integer costs, with
/// ties broken by (cost, edge id) — the same strict total order the
/// Minor-Aggregation `minoragg::boruvka_mst` folds through MinPairAgg, so
/// both producers select the bit-identical unique MST. Built for the greedy
/// tree-packing loop, which runs ~2·λ·log m MSTs back to back over slowly
/// drifting costs: every internal buffer (DSU parents, component labels,
/// live-edge worklist, per-chunk candidate slots) persists across run()
/// calls, so steady-state iterations allocate nothing.
///
/// Parallelism: the per-phase minimum-outgoing-edge selection is split into
/// contiguous edge chunks whose candidate folds run as TaskGroup tasks when
/// a TaskGraph session is active (inline otherwise — the sequential
/// reference). Per-component minimum under a strict total order is
/// order-independent, so the selected edge set — and therefore the tree,
/// the phase count, and every downstream ledger charge — is bit-identical
/// at any thread width, including width 1.
class BoruvkaPacker {
 public:
  BoruvkaPacker() = default;

  struct Result {
    /// Tree edge ids in increasing id order; a view into packer-owned
    /// storage, valid until the next run() on this packer.
    std::span<const EdgeId> tree;
    /// Supernode-selection phases executed (the Minor-Aggregation producer
    /// spends one Definition 9 round per phase plus one termination-check
    /// round; tree_packing replays those charges from this count).
    int phases = 0;
  };

  /// MST of `g` under `cost` (`cost.size() == g.m()`). Requires a connected
  /// graph with n >= 1.
  [[nodiscard]] Result run(const WeightedGraph& g, std::span<const std::int64_t> cost);

  /// Minimum live edges per fold chunk (default 2048). Pure wall-time
  /// granularity: chunk boundaries cannot change the selected tree (see the
  /// class comment), so this is safe to lower — tests do, to force
  /// multi-chunk folds on small graphs.
  void set_min_chunk_edges(std::size_t edges) { min_chunk_edges_ = std::max<std::size_t>(edges, 1); }

 private:
  struct Cand {
    std::int64_t cost = 0;
    EdgeId edge = kNoEdge;
  };
  struct ChunkOut {
    std::vector<std::pair<NodeId, Cand>> candidates;  // per-root minima, compacted
    std::vector<EdgeId> survivors;                    // still-cut edges, scan order
  };

  void scan_chunk(const WeightedGraph& g, std::span<const std::int64_t> cost, std::size_t chunk,
                  std::size_t begin, std::size_t end);
  [[nodiscard]] NodeId find(NodeId v);

  // Phase state, reused across runs (sized on first use, never shrunk).
  std::vector<NodeId> comp_;     // node -> component representative
  std::vector<NodeId> parent_;   // DSU
  std::vector<NodeId> size_;     // DSU
  std::vector<EdgeId> live_;     // edges possibly still crossing components
  std::vector<EdgeId> tree_;     // selected edges; sorted by id before return
  std::vector<ChunkOut> chunks_; // disjoint per-task output slots
  // Merge scratch: epoch-tagged per-root best so phases skip O(n) clears.
  std::vector<Cand> best_;
  std::vector<std::uint32_t> best_tag_;
  std::vector<NodeId> touched_;
  std::uint32_t epoch_ = 0;
  std::size_t min_chunk_edges_ = 2048;
};

}  // namespace umc
