#include "server/engine.hpp"

#include <sstream>
#include <thread>
#include <utility>

#include "baseline/stoer_wagner.hpp"
#include "fault/supervisor.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "obs/export.hpp"
#include "obs/ledger_bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/math.hpp"

namespace umc::server {

namespace {

// ---------------------------------------------------------------------------
// umc_server_* metric families. References are cached in function-local
// statics so the registry lookup happens once per process.

obs::Counter& requests_counter(Op op) {
  static const auto make = [](const char* op_label) {
    return &obs::MetricsRegistry::global().counter(
        "umc_server_requests_total", {{"op", op_label}},
        "Requests executed by the min-cut service, by op.");
  };
  static obs::Counter* counters[] = {make("load"),  make("mutate"), make("solve"),
                                     make("stats"), make("evict"),  make("shutdown")};
  return *counters[static_cast<int>(op)];
}

obs::Counter& errors_counter(ErrCode code) {
  // Error paths are cold; the per-call registry lookup is fine.
  return obs::MetricsRegistry::global().counter(
      "umc_server_errors_total", {{"code", to_string(code)}},
      "Structured error responses served, by protocol error code.");
}

obs::Gauge& sessions_gauge() {
  static obs::Gauge* g = &obs::MetricsRegistry::global().gauge(
      "umc_server_sessions", {}, "Resident tenant sessions.");
  return *g;
}

obs::Counter& evictions_counter() {
  static obs::Counter* c = &obs::MetricsRegistry::global().counter(
      "umc_server_evictions_total", {},
      "Sessions evicted (EVICT requests and LRU capacity evictions).");
  return *c;
}

obs::Counter& degraded_counter() {
  static obs::Counter* c = &obs::MetricsRegistry::global().counter(
      "umc_server_solve_degraded_total", {},
      "SOLVEs answered below the exact tiers of the degradation ladder.");
  return *c;
}

obs::Histogram& solve_wall_histogram() {
  static obs::Histogram* h = &obs::MetricsRegistry::global().histogram(
      "umc_server_solve_wall_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000}, {},
      "Wall-clock milliseconds per SOLVE (supervisor total).");
  return *h;
}

obs::Counter& frame_errors_counter() {
  static obs::Counter* c = &obs::MetricsRegistry::global().counter(
      "umc_server_frame_errors_total", {},
      "Connections ended on a framing violation (truncated or oversized frame).");
  return *c;
}

/// FNV-1a 64 of the tenant name: the per-tenant rng stream key must be a
/// pure function of the name (not of map iteration or arrival order).
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// err_response + the error counter, so every structured failure is visible
/// in the metrics surface.
Response counted_error(ErrCode code, std::int64_t id, std::string message) {
  errors_counter(code).inc();
  return err_response(code, id, std::move(message));
}

}  // namespace

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg),
      scheduler_(SchedulerConfig{cfg.scheduler_width, cfg.max_queued_global,
                                 cfg.max_queued_per_tenant, /*max_inflight_per_tenant=*/1,
                                 /*start_paused=*/false}) {
  UMC_ASSERT(cfg_.max_sessions >= 1);
  sessions_gauge().set(0);
}

Engine::~Engine() = default;

Session* Engine::touch_session_locked(const std::string& tenant) {
  const auto it = sessions_.find(tenant);
  if (it == sessions_.end() || !it->second->loaded) return nullptr;
  it->second->lru_tick = ++lru_clock_;
  return it->second.get();
}

void Engine::evict_lru_locked() {
  // Only an idle session may go: a tenant with queued or in-flight work
  // holds a raw Session* inside its jobs (per-tenant in-flight cap 1 plus
  // this guard is what makes that pointer safe). Nothing idle -> soft cap.
  auto victim = sessions_.end();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (scheduler_.pending(it->first) > 0) continue;
    if (victim == sessions_.end() || it->second->lru_tick < victim->second->lru_tick)
      victim = it;
  }
  if (victim == sessions_.end()) return;
  sessions_.erase(victim);
  evictions_counter().inc();
  sessions_gauge().set(static_cast<std::int64_t>(sessions_.size()));
}

Response Engine::execute(const Request& req) {
  UMC_OBS_SPAN_VAR_L(span, "server/request", "server", static_cast<std::int64_t>(req.op));
  span.arg("id", req.id);
  requests_counter(req.op).inc();
  switch (req.op) {
    case Op::kLoad: return do_load(req);
    case Op::kMutate: return do_mutate(req);
    case Op::kSolve: return do_solve(req);
    case Op::kStats: return do_stats(req);
    case Op::kEvict: return do_evict(req);
    case Op::kShutdown: {
      begin_shutdown();
      Response r = ok_response(Op::kShutdown, req.id);
      r.fields["draining"] = std::to_string(scheduler_.queued_total());
      return r;
    }
  }
  return counted_error(ErrCode::kInternal, req.id, "unhandled op");
}

Response Engine::do_load(const Request& req) {
  Expected<WeightedGraph> parsed = load_graph_text(req.body);
  if (!parsed) return counted_error(ErrCode::kBadGraph, req.id, parsed.error().to_string());
  WeightedGraph g = std::move(parsed.value());
  if (const char* why = validate_graph(g))
    return counted_error(ErrCode::kBadGraph, req.id, why);
  // Build the adjacency view before any solve touches the graph.
  (void)g.csr();

  scheduler_.set_weight(req.tenant, req.weight);
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(req.tenant);
  if (it == sessions_.end()) {
    if (sessions_.size() >= cfg_.max_sessions) evict_lru_locked();
    const std::uint64_t seed = mix64(cfg_.rng_seed ^ fnv1a64(req.tenant));
    it = sessions_.emplace(req.tenant, std::make_unique<Session>(req.tenant, seed)).first;
  }
  Session& s = *it->second;
  s.graph = std::move(g);
  s.loaded = true;
  s.weight = req.weight;
  ++s.loads;
  s.lru_tick = ++lru_clock_;
  sessions_gauge().set(static_cast<std::int64_t>(sessions_.size()));

  Response r = ok_response(Op::kLoad, req.id);
  r.fields["n"] = std::to_string(s.graph.n());
  r.fields["m"] = std::to_string(s.graph.m());
  r.fields["weight"] = std::to_string(s.weight);
  return r;
}

Response Engine::do_mutate(const Request& req) {
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  Session* s = touch_session_locked(req.tenant);
  if (s == nullptr)
    return counted_error(ErrCode::kNoSession, req.id,
                         "tenant '" + req.tenant + "' has no loaded graph");
  if (req.edge >= s->graph.m())
    return counted_error(ErrCode::kBadMutation, req.id,
                         "edge id " + std::to_string(req.edge) + " out of range (m=" +
                             std::to_string(s->graph.m()) + ")");
  s->graph.set_weight(req.edge, req.new_weight);
  ++s->mutates;

  Response r = ok_response(Op::kMutate, req.id);
  r.fields["edge"] = std::to_string(req.edge);
  r.fields["w"] = std::to_string(req.new_weight);
  return r;
}

Response Engine::do_solve(const Request& req) {
  Session* s = nullptr;
  std::uint64_t seed = 0;
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    s = touch_session_locked(req.tenant);
    if (s == nullptr)
      return counted_error(ErrCode::kNoSession, req.id,
                           "tenant '" + req.tenant + "' has no loaded graph");
    seed = req.has_seed ? req.seed : s->rng.next_u64();
  }

  // The solve runs without the session mutex: the scheduler's per-tenant
  // in-flight cap keeps this session exclusive, and the eviction guard
  // (pending > 0) keeps `s` alive.
  fault::SupervisorConfig scfg;
  scfg.seed = seed;
  scfg.num_threads = 1;  // the pool hosts the request workers; see scheduler.hpp
  scfg.round_budget = cfg_.solve_round_budget;
  scfg.wall_budget_ms = cfg_.solve_wall_budget_ms;
  scfg.verify = cfg_.verify;
  scfg.packing.max_trees = req.max_trees != 0 ? req.max_trees : cfg_.default_max_trees;
  scfg.packing.cache = &s->cache;
  const fault::SolveReport rep = fault::SolveSupervisor(scfg).solve(s->graph);

  solve_wall_histogram().observe(static_cast<std::int64_t>(rep.wall_ms));
  if (rep.degraded()) degraded_counter().inc();
  obs::bridge_ledger(obs::MetricsRegistry::global(), rep.ledger, "server");

  std::int64_t hits = 0;
  std::int64_t misses = 0;
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    ++s->solves;
    s->lru_tick = ++lru_clock_;
    hits = s->cache.hits();
    misses = s->cache.misses();
  }

  Response r = ok_response(Op::kSolve, req.id);
  r.fields["value"] = std::to_string(rep.value);
  r.fields["tier"] = std::string(fault::to_string(rep.tier));
  r.fields["certified"] = rep.certified ? "1" : "0";
  r.fields["rounds"] = std::to_string(rep.rounds);
  r.fields["retries"] = std::to_string(rep.retries);
  r.fields["seed"] = std::to_string(seed);
  r.fields["cache_hits"] = std::to_string(hits);
  r.fields["cache_misses"] = std::to_string(misses);
  if (rep.tier <= fault::SolveTier::kCheckpointReplay)
    r.fields["trees"] = std::to_string(rep.exact.num_trees);
  return r;
}

Response Engine::do_stats(const Request& req) {
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  const FairScheduler::Stats sched = scheduler_.stats();

  Response r = ok_response(Op::kStats, req.id);
  r.fields["sessions"] = std::to_string(sessions_.size());
  r.fields["queued"] = std::to_string(scheduler_.queued_total());
  r.fields["admitted"] = std::to_string(sched.admitted);
  r.fields["dispatched"] = std::to_string(sched.dispatched);
  r.fields["rejected"] =
      std::to_string(sched.rejected_queue_full + sched.rejected_tenant_overload +
                     sched.rejected_shutting_down);
  std::ostringstream os;
  if (req.stats_prometheus) {
    obs::write_prometheus(os, obs::MetricsRegistry::global());
  } else {
    for (const auto& [name, s] : sessions_)
      os << name << " n=" << s->graph.n() << " m=" << s->graph.m() << " weight=" << s->weight
         << " loads=" << s->loads << " mutates=" << s->mutates << " solves=" << s->solves
         << " cache_hits=" << s->cache.hits() << " cache_misses=" << s->cache.misses()
         << '\n';
  }
  r.body = os.str();
  return r;
}

Response Engine::do_evict(const Request& req) {
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto it = sessions_.find(req.tenant);
  if (it == sessions_.end())
    return counted_error(ErrCode::kNoSession, req.id,
                         "tenant '" + req.tenant + "' has no session");
  if (scheduler_.pending(req.tenant) > 0)
    return counted_error(ErrCode::kTenantBusy, req.id,
                         "tenant '" + req.tenant + "' has queued or in-flight requests");
  sessions_.erase(it);
  evictions_counter().inc();
  sessions_gauge().set(static_cast<std::int64_t>(sessions_.size()));

  Response r = ok_response(Op::kEvict, req.id);
  r.fields["sessions"] = std::to_string(sessions_.size());
  return r;
}

Engine::ServeStats Engine::serve(std::istream& in, std::ostream& out) {
  ServeStats st;
  std::mutex out_mu;
  // Workers and the reader interleave on one reply stream; the frame write
  // is the atomic unit.
  // std::cin arrives tied to std::cout: every read would flush `out` from
  // the reader thread OUTSIDE out_mu, racing the workers' locked writes on
  // the same streambuf (observed as duplicated reply frames). Untie for the
  // serve lifetime; all flushing happens under the lock below.
  std::ostream* const prev_tie = in.tie(nullptr);
  const auto respond = [&](const Response& resp) {
    const std::lock_guard<std::mutex> lock(out_mu);
    write_frame(out, resp.serialize());
    ++st.responses;
  };

  std::thread dispatcher([this] { scheduler_.run(); });
  std::string payload;
  Error frame_err{};
  for (;;) {
    const FrameStatus fs = read_frame(in, payload, frame_err);
    if (fs == FrameStatus::kEof) break;
    if (fs == FrameStatus::kError) {
      // Framing violations are not resynchronizable: answer once, end the
      // connection (the daemon itself stays up).
      ++st.frame_errors;
      frame_errors_counter().inc();
      respond(counted_error(ErrCode::kBadFrame, 0, frame_err.to_string()));
      break;
    }
    ++st.frames;

    Expected<Request> parsed = parse_request(payload);
    if (!parsed) {
      // Payload-level garbage is recoverable: the stream stays framed.
      ++st.parse_errors;
      respond(counted_error(ErrCode::kBadCommand, 0, parsed.error().to_string()));
      continue;
    }
    auto req = std::make_shared<Request>(std::move(parsed.value()));
    if (req->op == Op::kStats || req->op == Op::kEvict || req->op == Op::kShutdown) {
      // Control plane: answered inline, never queued behind solves.
      respond(execute(*req));
      continue;
    }
    const std::int64_t id = req->id;
    // Pull the key out before std::move(req): function-argument evaluation
    // order is unspecified, so `req->tenant` inline would race the capture.
    const std::string tenant = req->tenant;
    const Admit verdict = scheduler_.submit(tenant, [this, req = std::move(req), &respond] {
      respond(execute(*req));
    });
    switch (verdict) {
      case Admit::kAdmitted:
        break;
      case Admit::kQueueFull:
        respond(counted_error(ErrCode::kQueueFull, id, "global request queue is full"));
        break;
      case Admit::kTenantOverload:
        respond(counted_error(ErrCode::kTenantOverload, id,
                              "per-tenant request queue is full"));
        break;
      case Admit::kShuttingDown:
        respond(counted_error(ErrCode::kShuttingDown, id, "daemon is shutting down"));
        break;
    }
  }
  scheduler_.close();
  dispatcher.join();
  in.tie(prev_tie);
  return st;
}

void Engine::begin_shutdown() {
  shutting_down_.store(true, std::memory_order_relaxed);
  scheduler_.close();
}

bool Engine::shutting_down() const {
  return shutting_down_.load(std::memory_order_relaxed);
}

void Engine::wait_drained() { scheduler_.wait_idle(); }

std::size_t Engine::session_count() const {
  const std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// Local engine API.

Expected<WeightedGraph> load_graph_text(std::string_view body) {
  std::istringstream is{std::string(body)};
  return try_read_edge_list(is);
}

Expected<WeightedGraph> load_graph_file(const std::string& path) {
  return try_read_edge_list_file(path);
}

const char* validate_graph(const WeightedGraph& g) {
  if (g.n() < 2 || !is_connected(g)) return "the graph must be connected with >= 2 nodes";
  return nullptr;
}

LocalSolveOutcome run_local_solve(const WeightedGraph& g, const LocalSolveOptions& opt) {
  LocalSolveOutcome out;
  mincut::GuardConfig guard;
  guard.self_check = opt.self_check;
  guard.packing.max_trees = opt.max_trees;
  out.guarded = mincut::exact_mincut_guarded(g, opt.seed, out.ledger, guard);
  out.oracle = baseline::stoer_wagner(g).value;
  return out;
}

}  // namespace umc::server
