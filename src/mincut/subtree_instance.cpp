#include "mincut/subtree_instance.hpp"

#include <algorithm>

#include "graph/minors.hpp"
#include "mincut/one_respect.hpp"
#include "mincut/star.hpp"
#include "minoragg/tree_primitives.hpp"
#include "minoragg/virtual_graph.hpp"
#include "obs/trace.hpp"
#include "util/math.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace umc::mincut {

namespace {

/// One HL-chain of the instance tree, as a candidate star path.
struct Chain {
  int branch = -1;  // child-of-root branch index
  int hl_depth = 0;
  std::vector<NodeId> nodes;  // top → bottom (host node ids)
  std::vector<EdgeId> edges;  // parent edges of `nodes` (host edge ids)
};

}  // namespace

CutResult between_subtree_mincut(const WeightedGraph& g, std::span<const EdgeId> tree_edges,
                                 NodeId root, std::span<const EdgeId> origin,
                                 const std::vector<bool>& is_virtual,
                                 minoragg::Ledger& ledger) {
  minoragg::Ledger local;
  const RootedTree t(g, tree_edges, root);
  const HeavyLightDecomposition hld = minoragg::hl_construct(t, local);
  CutResult best = one_respecting_cuts(t, origin, hld, local).best;

  // Branch index per node: which child-of-root subtree it lives in.
  std::vector<int> branch(static_cast<std::size_t>(g.n()), -1);
  {
    int next = 0;
    for (const NodeId c : t.children(root)) {
      branch[static_cast<std::size_t>(c)] = next++;
    }
    for (const NodeId v : t.preorder()) {
      if (v == root || branch[static_cast<std::size_t>(v)] != -1) continue;
      branch[static_cast<std::size_t>(v)] = branch[static_cast<std::size_t>(t.parent(v))];
    }
  }
  const int k = static_cast<int>(t.children(root).size());
  int beta = 0;
  for (const bool f : is_virtual) beta += f ? 1 : 0;
  if (k < 2) {
    minoragg::settle_virtual_execution(ledger, local, beta);
    return best;  // no cross-branch pairs exist
  }

  // HL-chains of the instance tree (the prospective star paths).
  std::vector<Chain> chains;
  {
    const auto by_depth = minoragg::chains_by_hl_depth(t, hld);
    for (std::size_t d = 0; d < by_depth.size(); ++d) {
      for (const auto& node_chain : by_depth[d]) {
        Chain c;
        c.hl_depth = static_cast<int>(d);
        for (const NodeId v : node_chain) {
          if (t.parent_edge(v) == kNoEdge) continue;  // the root heads its chain
          c.nodes.push_back(v);
          c.edges.push_back(t.parent_edge(v));
        }
        if (c.edges.empty()) continue;
        c.branch = branch[static_cast<std::size_t>(c.nodes.front())];
        chains.push_back(std::move(c));
      }
    }
  }

  // Pairwise coloring (Lemma 38): color assignment b = the b-th bit of the
  // branch index; chi = ceil(log2 k) assignments distinguish every pair.
  const int chi = std::max(1, ceil_log2(static_cast<std::uint64_t>(k)));
  local.charge(chi);  // Lemma 38 construction
  const int maxd = hld.max_hl_depth();

  minoragg::settle_virtual_execution(ledger, local, beta);

  // Enumerate the (bit, d1, d2) configurations that pass the cheap
  // surviving-paths pre-check, in loop order. Each is an independent star
  // solve — a TaskGraph work item writing a private slot — and the merge
  // below replays `absorb / bump / charge_sequential` in exactly the
  // enumeration order, so ledger counters are bit-identical at any width.
  struct StarConfig {
    int bit, d1, d2;
  };
  std::vector<StarConfig> configs;
  for (int bit = 0; bit < chi; ++bit) {
    for (int d1 = 0; d1 <= maxd; ++d1) {
      for (int d2 = 0; d2 <= maxd; ++d2) {
        if (d1 == d2 && bit > 0) continue;  // color-independent, do it once
        // Cheap pre-check: at least two surviving paths needed.
        int surviving = 0;
        for (const Chain& c : chains) {
          const bool red = ((c.branch >> bit) & 1) != 0;
          if (c.hl_depth == (red ? d1 : d2)) ++surviving;
        }
        if (surviving >= 2) configs.push_back(StarConfig{bit, d1, d2});
      }
    }
  }

  struct StarSlot {
    minoragg::Ledger iter;
    CutResult best;
    bool ran_star = false;
  };
  std::vector<StarSlot> slots(configs.size());
  {
    TaskGroup stars;
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const StarConfig cfg = configs[ci];
      StarSlot& slot = slots[ci];
      stars.spawn([&, cfg, ci] {
        UMC_OBS_SPAN_VAR_L(obs_item, "mincut/ttr_item", "mincut",
                           static_cast<std::int64_t>(ci));
        obs_item.arg("kind", 1);  // 1 = between-subtree star config
        obs_item.arg("pool_thread", ThreadPool::current_index());
        const auto target = [&cfg](int br) {
          const bool red = ((br >> cfg.bit) & 1) != 0;
          return red ? cfg.d1 : cfg.d2;
        };
        minoragg::Ledger& iter = slot.iter;
        // Contract every tree edge of the wrong depth (Figure 4). Both
        // m-sized maps are leased per-thread scratch: every config task on a
        // worker reuses the same backing capacity.
        ScratchLease<std::vector<bool>> contract_s;
        std::vector<bool>& contract = *contract_s;
        contract.assign(static_cast<std::size_t>(g.m()), false);
        for (const EdgeId e : tree_edges) {
          const int br = branch[static_cast<std::size_t>(t.bottom(e))];
          if (hld.hl_depth_edge(e) != target(br)) contract[static_cast<std::size_t>(e)] = true;
        }
        iter.charge(1);
        const DerivedGraph minor = contract_edges(g, contract);

        // Skip configurations with no cross-path edge: by Lemma 28, no
        // below-1-respecting pair can live here.
        StarInstance star;
        star.graph = minor.graph;
        star.root = minor.node_map[static_cast<std::size_t>(root)];
        star.origin.assign(static_cast<std::size_t>(minor.graph.m()), kNoEdge);
        for (std::size_t e = 0; e < minor.edge_origin.size(); ++e)
          star.origin[e] = origin[static_cast<std::size_t>(minor.edge_origin[e])];
        star.is_virtual.assign(static_cast<std::size_t>(minor.graph.n()), false);
        for (NodeId v = 0; v < g.n(); ++v)
          if (is_virtual[static_cast<std::size_t>(v)])
            star.is_virtual[static_cast<std::size_t>(minor.node_map[static_cast<std::size_t>(v)])] = true;
        ScratchLease<std::vector<EdgeId>> to_minor_s;
        std::vector<EdgeId>& to_minor_edge = *to_minor_s;
        to_minor_edge.assign(static_cast<std::size_t>(g.m()), kNoEdge);
        for (std::size_t e = 0; e < minor.edge_origin.size(); ++e)
          to_minor_edge[static_cast<std::size_t>(minor.edge_origin[e])] = static_cast<EdgeId>(e);
        for (const Chain& c : chains) {
          if (c.hl_depth != target(c.branch)) continue;
          std::vector<NodeId> nodes;
          std::vector<EdgeId> edges;
          for (std::size_t x = 0; x < c.nodes.size(); ++x) {
            nodes.push_back(minor.node_map[static_cast<std::size_t>(c.nodes[x])]);
            const EdgeId me = to_minor_edge[static_cast<std::size_t>(c.edges[x])];
            UMC_ASSERT_MSG(me != kNoEdge, "kept tree edge survives the minor");
            edges.push_back(me);
          }
          UMC_ASSERT_MSG(
              minor.graph.edge(edges.front()).other(nodes.front()) == star.root,
              "star paths hang off the root supernode");
          star.path_nodes.push_back(std::move(nodes));
          star.path_edges.push_back(std::move(edges));
        }

        bool has_cross = false;
        {
          const std::vector<int> of = path_of_node(star);
          for (const Edge& e : star.graph.edges()) {
            const int pu = of[static_cast<std::size_t>(e.u)];
            const int pv = of[static_cast<std::size_t>(e.v)];
            if (pu >= 0 && pv >= 0 && pu != pv) {
              has_cross = true;
              break;
            }
          }
        }
        if (has_cross) {
          slot.best.absorb(star_mincut(star, iter));
          slot.ran_star = true;
        }
      });
    }
    stars.join();
  }
  for (const StarSlot& slot : slots) {
    if (slot.ran_star) {
      best.absorb(slot.best);
      ledger.bump("subtree_star_calls");
    }
    ledger.charge_sequential(slot.iter);
  }
  return best;
}

}  // namespace umc::mincut
