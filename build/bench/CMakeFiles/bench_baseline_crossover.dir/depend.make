# Empty dependencies file for bench_baseline_crossover.
# This may be replaced when dependencies are built.
