#include "graph/io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace umc {

namespace {

[[nodiscard]] bool is_blank(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Whitespace-splits a line into tokens (the '#' comment tail is already
/// stripped by the caller). Any run of blanks separates tokens, so leading
/// and trailing whitespace — including a CRLF's residual '\r' — is inert.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_blank(line[i])) ++i;
    std::size_t j = i;
    while (j < line.size() && !is_blank(line[j])) ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

/// Universal-newline getline: a line ends at '\n', "\r\n", or a lone '\r'
/// (classic-Mac files — std::getline would hand those back as one giant
/// line and the header parse would reject the whole file). Returns false at
/// end of input with nothing read.
bool getline_any(std::istream& in, std::string& line) {
  line.clear();
  int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  while (c != std::istream::traits_type::eof()) {
    if (c == '\n') break;
    if (c == '\r') {
      if (in.peek() == '\n') in.get();  // swallow the LF of a CRLF pair
      break;
    }
    line.push_back(static_cast<char>(c));
    c = in.get();
  }
  return true;
}

/// Strict integer parse: the whole token must be a decimal integer that
/// fits long long. Distinguishes "not a number" (kParse) from "number too
/// big for int64" (kOverflow) — the stream-based parser this replaces
/// silently read overflowing weights as the default 1.
Expected<long long> parse_int(std::string_view tok, const char* what, int line) {
  long long v = 0;
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range)
    return Error{ErrorCode::kOverflow,
                 std::string(what) + " '" + std::string(tok) + "' does not fit int64", line};
  if (ec != std::errc{} || ptr != last)
    return Error{ErrorCode::kParse,
                 std::string(what) + " '" + std::string(tok) + "' is not an integer", line};
  return v;
}

}  // namespace

Expected<WeightedGraph> try_read_edge_list(std::istream& in) {
  std::string line;
  bool have_n = false;
  WeightedGraph g;
  int lineno = 0;
  while (getline_any(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string_view> toks = tokenize(line);
    if (toks.empty()) continue;  // blank/comment line
    if (!have_n) {
      if (toks.size() != 1)
        return Error{ErrorCode::kParse, "node-count header must be a single integer", lineno};
      Expected<long long> n = parse_int(toks[0], "node count", lineno);
      if (!n) return n.error();
      if (n.value() < 0 || n.value() > kMaxNodeCount)
        return Error{ErrorCode::kRange,
                     "node count " + std::to_string(n.value()) + " out of range [0, 2^30]",
                     lineno};
      g = WeightedGraph(static_cast<NodeId>(n.value()));
      have_n = true;
      continue;
    }
    if (toks.size() < 2 || toks.size() > 3)
      return Error{ErrorCode::kParse, "edge line needs 'u v' or 'u v w', got " +
                                          std::to_string(toks.size()) + " token(s)",
                   lineno};
    Expected<long long> u = parse_int(toks[0], "endpoint", lineno);
    if (!u) return u.error();
    Expected<long long> v = parse_int(toks[1], "endpoint", lineno);
    if (!v) return v.error();
    long long w = 1;  // weight optional, defaults to 1
    if (toks.size() == 3) {
      Expected<long long> pw = parse_int(toks[2], "weight", lineno);
      if (!pw) return pw.error();
      w = pw.value();
    }
    if (u.value() < 0 || u.value() >= g.n() || v.value() < 0 || v.value() >= g.n())
      return Error{ErrorCode::kRange, "endpoint out of range [0, " + std::to_string(g.n()) + ")",
                   lineno};
    if (u.value() == v.value())
      return Error{ErrorCode::kRange, "self-loop " + std::string(toks[0]) + "-" +
                                          std::string(toks[1]) + " (never affects cuts)",
                   lineno};
    if (w < 1 || w > kMaxEdgeWeight)
      return Error{ErrorCode::kRange,
                   "weight " + std::to_string(w) + " outside [1, 2^32] (negative or zero "
                   "weights break cut arguments; larger ones risk int64 cut-sum overflow)",
                   lineno};
    if (g.m() >= kMaxEdgeCount)
      return Error{ErrorCode::kRange, "more than 2^30 edges", lineno};
    g.add_edge(static_cast<NodeId>(u.value()), static_cast<NodeId>(v.value()), w);
  }
  if (!have_n) return Error{ErrorCode::kParse, "missing node-count header", 0};
  return g;
}

Expected<WeightedGraph> try_read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Error{ErrorCode::kIo, "cannot open " + path, 0};
  return try_read_edge_list(in);
}

WeightedGraph read_edge_list(std::istream& in) {
  return try_read_edge_list(in).value_or_throw();
}

WeightedGraph read_edge_list_file(const std::string& path) {
  return try_read_edge_list_file(path).value_or_throw();
}

void write_edge_list(std::ostream& out, const WeightedGraph& g) {
  out << "# unimincut edge list: n, then one 'u v w' per edge\n";
  out << g.n() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

void write_edge_list_file(const std::string& path, const WeightedGraph& g) {
  std::ofstream out(path);
  UMC_ASSERT_MSG(out.good(), "cannot open " + path + " for writing");
  write_edge_list(out, g);
}

}  // namespace umc
