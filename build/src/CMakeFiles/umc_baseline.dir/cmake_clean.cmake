file(REMOVE_RECURSE
  "CMakeFiles/umc_baseline.dir/baseline/karger.cpp.o"
  "CMakeFiles/umc_baseline.dir/baseline/karger.cpp.o.d"
  "CMakeFiles/umc_baseline.dir/baseline/karger_stein.cpp.o"
  "CMakeFiles/umc_baseline.dir/baseline/karger_stein.cpp.o.d"
  "CMakeFiles/umc_baseline.dir/baseline/naive_two_respect.cpp.o"
  "CMakeFiles/umc_baseline.dir/baseline/naive_two_respect.cpp.o.d"
  "CMakeFiles/umc_baseline.dir/baseline/stoer_wagner.cpp.o"
  "CMakeFiles/umc_baseline.dir/baseline/stoer_wagner.cpp.o.d"
  "libumc_baseline.a"
  "libumc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
