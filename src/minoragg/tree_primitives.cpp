#include "minoragg/tree_primitives.hpp"

#include <algorithm>

#include "graph/dsu.hpp"
#include "minoragg/star_merge.hpp"
#include "tree/centroid.hpp"
#include "util/math.hpp"
#include "util/scratch.hpp"

namespace umc::minoragg {

std::vector<std::vector<std::vector<NodeId>>> chains_by_hl_depth(
    const RootedTree& t, const HeavyLightDecomposition& hld) {
  std::vector<std::vector<std::vector<NodeId>>> chains(
      static_cast<std::size_t>(hld.max_hl_depth()) + 1);
  for (const NodeId v : t.preorder()) {
    if (hld.chain_head(v) != v) continue;  // not a chain head
    std::vector<NodeId> chain;
    NodeId cur = v;
    while (cur != kNoNode) {
      chain.push_back(cur);
      // Descend to the heavy child, if any.
      NodeId next = kNoNode;
      for (const NodeId c : t.children(cur)) {
        if (hld.chain_head(c) != c) {
          next = c;
          break;
        }
      }
      cur = next;
    }
    chains[static_cast<std::size_t>(hld.hl_depth(v))].push_back(std::move(chain));
  }
  return chains;
}

HeavyLightDecomposition hl_construct(const RootedTree& t, Ledger& ledger) {
  const NodeId n = t.n();
  // Lemma 47 merging schedule over the part graph: parts start as
  // singletons; every non-root part marks its parent edge; deterministic
  // star-merging merges >= 1/3 of the parts per iteration.
  Dsu parts(n);
  const std::int64_t lemma46_cost =
      2 * (static_cast<std::int64_t>(ceil_log2(static_cast<std::uint64_t>(n) + 1)) + 2);
  // Merge-loop scratch: these tables are rebuilt every iteration (this loop
  // dominates the solve's allocation count), so lease them once per call
  // and let assign() recycle the capacity.
  ScratchLease<std::vector<NodeId>> rep_of_s, part_rep_s, top_s;
  ScratchLease<std::vector<int>> out_s;
  std::vector<NodeId>& rep_of = *rep_of_s;
  std::vector<NodeId>& part_rep = *part_rep_s;
  std::vector<NodeId>& top = *top_s;
  std::vector<int>& out = *out_s;
  while (parts.num_components() > 1) {
    // Build the parts graph: part -> parent part (via the part's top node).
    rep_of.assign(static_cast<std::size_t>(n), kNoNode);
    part_rep.clear();
    for (NodeId v = 0; v < n; ++v) {
      const NodeId r = parts.find(v);
      if (rep_of[static_cast<std::size_t>(r)] == kNoNode) {
        rep_of[static_cast<std::size_t>(r)] = static_cast<NodeId>(part_rep.size());
        part_rep.push_back(r);
      }
    }
    const std::size_t k = part_rep.size();
    out.assign(k, -1);
    // The part's top node is its minimum-depth node; its parent edge leaves
    // the part. Compute tops by scanning (model: one subtree-sum round,
    // charged inside lemma46_cost below).
    top.assign(k, kNoNode);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t p = static_cast<std::size_t>(rep_of[static_cast<std::size_t>(parts.find(v))]);
      if (top[p] == kNoNode || t.depth(v) < t.depth(top[p])) top[p] = v;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const NodeId parent = t.parent(top[p]);
      if (parent == kNoNode) continue;  // root part marks nothing
      out[p] = rep_of[static_cast<std::size_t>(parts.find(parent))];
    }
    const StarMergeResult sm = star_merge(out, ledger);
    for (std::size_t p = 0; p < k; ++p) {
      if (sm.is_joiner[p]) parts.unite(part_rep[p], top[static_cast<std::size_t>(out[p])]);
    }
    // Within-part relabeling: subtree sizes + HL-info via two Lemma 46
    // calls on the merged parts (node-disjoint, so the cost is the max —
    // bounded by the full-tree Lemma 46 cost charged here).
    ledger.charge(lemma46_cost);
    ledger.bump("hl_merge_iterations");
  }
  return HeavyLightDecomposition(t);
}

NodeId find_centroid_ma(const RootedTree& t, const HeavyLightDecomposition& hld,
                        Ledger& ledger) {
  // Lemma 42: subtree sizes via a subtree sum; each node then learns the
  // largest child subtree in one aggregation round, and a final
  // leader-election round picks the minimum-id centroid.
  const std::vector<std::int64_t> ones(static_cast<std::size_t>(t.n()), 1);
  const std::vector<std::int64_t> sizes =
      hl_subtree_sums<SumAgg>(t, hld, ones, ledger);
  ledger.charge(2);
  NodeId best = kNoNode;
  for (NodeId v = 0; v < t.n(); ++v) {
    std::int64_t largest = t.n() - sizes[static_cast<std::size_t>(v)];
    for (const NodeId c : t.children(v))
      largest = std::max(largest, sizes[static_cast<std::size_t>(c)]);
    if (2 * largest <= t.n()) {
      if (best == kNoNode || v < best) best = v;
    }
  }
  UMC_ASSERT_MSG(best != kNoNode, "every tree has a centroid (Fact 41)");
  UMC_ASSERT(largest_component_after_removal(t, best) <= t.n() / 2);
  return best;
}

RootedTree orient_tree(const WeightedGraph& g, std::span<const EdgeId> tree_edges, NodeId root,
                       Ledger& ledger) {
  const NodeId n = g.n();
  UMC_ASSERT(root >= 0 && root < n);
  // Adjacency restricted to tree edges, for the part graph's edge marking.
  // Leased: the outer vector only grows, inner vectors keep their capacity
  // across calls (only the first n entries are cleared and used).
  ScratchLease<std::vector<std::vector<std::pair<NodeId, EdgeId>>>> adj_s;
  std::vector<std::vector<std::pair<NodeId, EdgeId>>>& adj = *adj_s;
  if (adj.size() < static_cast<std::size_t>(n)) adj.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) adj[static_cast<std::size_t>(v)].clear();
  for (const EdgeId e : tree_edges) {
    adj[static_cast<std::size_t>(g.edge(e).u)].emplace_back(g.edge(e).v, e);
    adj[static_cast<std::size_t>(g.edge(e).v)].emplace_back(g.edge(e).u, e);
  }

  Dsu parts(n);
  const std::int64_t fix_cost =
      2 * (static_cast<std::int64_t>(ceil_log2(static_cast<std::uint64_t>(n) + 1)) + 2);
  // Same merge-loop scratch pattern as hl_construct above.
  ScratchLease<std::vector<NodeId>> rep_of_s, part_rep_s, via_s;
  ScratchLease<std::vector<int>> out_s;
  std::vector<NodeId>& rep_of = *rep_of_s;
  std::vector<NodeId>& part_rep = *part_rep_s;
  std::vector<NodeId>& via = *via_s;
  std::vector<int>& out = *out_s;
  while (parts.num_components() > 1) {
    // Dense part ids.
    rep_of.assign(static_cast<std::size_t>(n), kNoNode);
    part_rep.clear();
    for (NodeId v = 0; v < n; ++v) {
      const NodeId r = parts.find(v);
      if (rep_of[static_cast<std::size_t>(r)] == kNoNode) {
        rep_of[static_cast<std::size_t>(r)] = static_cast<NodeId>(part_rep.size());
        part_rep.push_back(r);
      }
    }
    const std::size_t k = part_rep.size();
    // Each non-root part marks an ARBITRARY adjacent outgoing tree edge
    // (the smallest-id one — deterministic); the root part marks none.
    // Mutual marks create 2-cycles in the parts graph, which is fine.
    out.assign(k, -1);
    via.assign(k, kNoNode);  // the neighbor node across the mark
    const NodeId root_part = rep_of[static_cast<std::size_t>(parts.find(root))];
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t p =
          static_cast<std::size_t>(rep_of[static_cast<std::size_t>(parts.find(v))]);
      if (static_cast<NodeId>(p) == root_part) continue;
      for (const auto& [to, e] : adj[static_cast<std::size_t>(v)]) {
        if (parts.same(v, to)) continue;
        const int target = rep_of[static_cast<std::size_t>(parts.find(to))];
        if (out[p] == -1 || via[p] > to) {
          out[p] = target;
          via[p] = to;
        }
      }
    }
    const StarMergeResult sm = star_merge(out, ledger);
    for (std::size_t p = 0; p < k; ++p)
      if (sm.is_joiner[p]) parts.unite(part_rep[p], via[p]);
    // Orientation fix within merged parts: reverse the root-to-attachment
    // path (one HL construction + ancestor-sum pass, proof of Theorem 48).
    ledger.charge(fix_cost);
    ledger.bump("orient_merge_iterations");
  }
  return RootedTree(g, tree_edges, root);
}

}  // namespace umc::minoragg
