
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/karger.cpp" "src/CMakeFiles/umc_baseline.dir/baseline/karger.cpp.o" "gcc" "src/CMakeFiles/umc_baseline.dir/baseline/karger.cpp.o.d"
  "/root/repo/src/baseline/karger_stein.cpp" "src/CMakeFiles/umc_baseline.dir/baseline/karger_stein.cpp.o" "gcc" "src/CMakeFiles/umc_baseline.dir/baseline/karger_stein.cpp.o.d"
  "/root/repo/src/baseline/naive_two_respect.cpp" "src/CMakeFiles/umc_baseline.dir/baseline/naive_two_respect.cpp.o" "gcc" "src/CMakeFiles/umc_baseline.dir/baseline/naive_two_respect.cpp.o.d"
  "/root/repo/src/baseline/stoer_wagner.cpp" "src/CMakeFiles/umc_baseline.dir/baseline/stoer_wagner.cpp.o" "gcc" "src/CMakeFiles/umc_baseline.dir/baseline/stoer_wagner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_mincut_values.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
