// Tests for the distributed 1-respecting min-cut (Theorem 18) against the
// centralized reference on many graph families — including the round
// complexity claim (Õ(1) Minor-Aggregation rounds).

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/naive_two_respect.hpp"
#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/instance.hpp"
#include "mincut/one_respect.hpp"
#include "minoragg/tree_primitives.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

void check_against_reference(const WeightedGraph& g, NodeId root) {
  const auto tree = bfs_spanning_tree(g, root);
  const RootedTree t(g, tree, root);
  const HeavyLightDecomposition hld(t);
  const Instance inst = make_root_instance(g, tree, root);
  minoragg::Ledger ledger;
  const OneRespectResult res = one_respecting_cuts(t, inst.origin, hld, ledger);
  const auto ref = reference_cov1(t);
  for (const EdgeId e : tree)
    EXPECT_EQ(res.cut[static_cast<std::size_t>(e)], ref[static_cast<std::size_t>(e)])
        << "edge " << e;
  const auto best_ref = baseline::naive_one_respecting(t);
  EXPECT_EQ(res.best.value, best_ref.value);
  EXPECT_GT(ledger.rounds(), 0);
}

TEST(OneRespect, PathGraphWithChord) {
  WeightedGraph g = path_graph(8);
  g.add_edge(1, 6, 5);
  check_against_reference(g, 0);
}

TEST(OneRespect, GridFamily) {
  Rng rng(1);
  for (const auto& dims : {std::pair{3, 3}, std::pair{5, 7}, std::pair{8, 8}}) {
    WeightedGraph g = grid_graph(dims.first, dims.second);
    randomize_weights(g, 1, 20, rng);
    check_against_reference(g, 0);
  }
}

TEST(OneRespect, RandomGraphsManySeeds) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 5 + static_cast<NodeId>(rng.next_below(80));
    WeightedGraph g = random_connected(n, n - 1 + static_cast<EdgeId>(rng.next_below(120)), rng);
    randomize_weights(g, 1, 30, rng);
    check_against_reference(g, static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
}

TEST(OneRespect, TreeOnlyGraph) {
  Rng rng(3);
  WeightedGraph g = random_tree(40, rng);
  randomize_weights(g, 1, 9, rng);
  // On a tree, Cut(e) = w(e).
  const auto tree_ids = bfs_spanning_tree(g, 0);
  const RootedTree t(g, tree_ids, 0);
  const HeavyLightDecomposition hld(t);
  const Instance inst = make_root_instance(g, tree_ids, 0);
  minoragg::Ledger ledger;
  const auto res = one_respecting_cuts(t, inst.origin, hld, ledger);
  for (const EdgeId e : tree_ids)
    EXPECT_EQ(res.cut[static_cast<std::size_t>(e)], g.edge(e).w);
}

TEST(OneRespect, CandidateFilteringRespectsOrigin) {
  // Mark only one tree edge as candidate: best must name it.
  WeightedGraph g = path_graph(5);
  g.add_edge(0, 4, 100);
  const std::vector<EdgeId> tree = {0, 1, 2, 3};  // the path itself
  const RootedTree t(g, tree, 0);
  const HeavyLightDecomposition hld(t);
  std::vector<EdgeId> origin(static_cast<std::size_t>(g.m()), kNoEdge);
  origin[2] = 2;  // only tree edge {2,3} is a candidate
  minoragg::Ledger ledger;
  const auto res = one_respecting_cuts(t, origin, hld, ledger);
  EXPECT_EQ(res.best.e, 2);
  EXPECT_EQ(res.best.f, kNoEdge);
  EXPECT_EQ(res.best.value, 101);
}

TEST(OneRespect, RoundsGrowPolylogarithmically) {
  Rng rng(4);
  std::int64_t small_rounds = 0, large_rounds = 0;
  for (const NodeId n : {128, 8192}) {
    WeightedGraph g = random_connected(n, 2 * n, rng);
    const auto tree = bfs_spanning_tree(g, 0);
    const RootedTree t(g, tree, 0);
    const HeavyLightDecomposition hld(t);
    const Instance inst = make_root_instance(g, tree, 0);
    minoragg::Ledger ledger;
    (void)one_respecting_cuts(t, inst.origin, hld, ledger);
    (n == 128 ? small_rounds : large_rounds) = ledger.rounds();
  }
  // 64x more nodes, well under 4x more rounds.
  EXPECT_LT(large_rounds, 4 * small_rounds);
}

}  // namespace
}  // namespace umc::mincut
