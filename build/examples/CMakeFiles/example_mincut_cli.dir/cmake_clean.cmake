file(REMOVE_RECURSE
  "CMakeFiles/example_mincut_cli.dir/mincut_cli.cpp.o"
  "CMakeFiles/example_mincut_cli.dir/mincut_cli.cpp.o.d"
  "example_mincut_cli"
  "example_mincut_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mincut_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
