// Experiment E19 (fault model): the round-count price of reliable delivery.
//
// Compiled Borůvka (the E15 workload) runs over a fault::ReliableChannel
// whose FaultModel drops each physical message with probability p. Reported
// per (family, p): real CONGEST rounds, the reliability multiplier
// rounds(p) / rounds(0), retransmissions, backoff idle rounds, and mst_ok
// (1 iff the tree matches the fault-free run — correctness under loss is
// the point, the multiplier is its price).
//
// p = 0 is the identity row: the trivial plan short-circuits to the plain
// simulator, so its rounds equal the fault-free baseline exactly and the
// multiplier column starts at 1.
//
// Stop-and-wait ARQ costs 3 physical rounds per attempt, so the multiplier
// floor is 3x; each retry round re-draws fresh seeded randomness, so the
// expected attempts per logical round grow like 1/(1-q) with q the
// probability some slot in the round fails — visible as the gentle climb
// from p = 0.01 to p = 0.3.
//
// The third Arg selects the ARQ mode (0 = stop-and-wait, 1 = go-back-N).
// Go-back-N compresses the triple to 2-round DATA/CTRL cycles with
// cumulative ACKs riding free reverse slots, so its multiplier floor is 2x
// plus the drain() flush; bench_fault_arq runs both modes side by side and
// reports the ratio directly.

#include "bench_common.hpp"
#include "congest/compiled_network.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/properties.hpp"

namespace umc {
namespace {

/// p encoded as an integer per-mille so it can ride in a benchmark Arg.
constexpr std::int64_t kPerMille[] = {0, 10, 100, 300};

void run_fault_overhead(benchmark::State& state, const WeightedGraph& g) {
  const double p = static_cast<double>(state.range(1)) / 1000.0;
  const auto mode =
      state.range(2) == 0 ? fault::ArqMode::kStopAndWait : fault::ArqMode::kGoBackN;
  Rng rng(19);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);

  const congest::CompiledBoruvkaResult base = congest::compiled_boruvka(g, cost);

  fault::FaultPlan plan;
  plan.seed = 77;
  plan.drop_p = p;
  congest::CompiledBoruvkaResult res{};
  std::int64_t rounds_total = 0;
  fault::ReliableStats stats{};
  fault::FaultStats faults{};
  for (auto _ : state) {
    fault::FaultModel model(g, plan);
    fault::ReliableConfig cfg;
    cfg.mode = mode;
    fault::ReliableChannel net(g, &model, cfg);
    res = congest::compiled_boruvka(net, cost);
    net.drain();  // GBN: flush the residual ACK journal; no-op otherwise
    rounds_total = net.rounds();
    stats = net.stats();
    faults = model.stats();
    benchmark::DoNotOptimize(res);
  }

  state.counters["n"] = g.n();
  state.counters["D"] = approx_diameter(g);
  state.counters["drop_p_permille"] = static_cast<double>(state.range(1));
  state.counters["arq_mode"] = static_cast<double>(state.range(2));
  state.counters["rounds_faultfree"] = static_cast<double>(base.congest_rounds);
  state.counters["rounds_reliable"] = static_cast<double>(rounds_total);
  state.counters["reliability_multiplier"] =
      static_cast<double>(rounds_total) / static_cast<double>(base.congest_rounds);
  state.counters["retransmissions"] = static_cast<double>(stats.retransmissions);
  state.counters["backoff_rounds"] = static_cast<double>(stats.backoff_rounds);
  state.counters["ack_flush_rounds"] = static_cast<double>(stats.ack_flush_rounds);
  state.counters["drops_injected"] = static_cast<double>(faults.drops);
  state.counters["mst_ok"] = res.tree == base.tree ? 1.0 : 0.0;
}

void BM_FaultOverheadGrid(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  run_fault_overhead(state, grid_graph(side, side));
}
void BM_FaultOverheadEr(benchmark::State& state) {
  run_fault_overhead(state,
                     benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 8.0, 43));
}
void BM_FaultOverheadPath(benchmark::State& state) {
  run_fault_overhead(state, path_graph(static_cast<NodeId>(state.range(0))));
}

void fault_args(benchmark::internal::Benchmark* b, std::initializer_list<std::int64_t> sizes) {
  for (const std::int64_t s : sizes)
    for (const std::int64_t pm : kPerMille)
      for (const std::int64_t mode : {0, 1}) b->Args({s, pm, mode});
}

BENCHMARK(BM_FaultOverheadGrid)
    ->Apply([](auto* b) { fault_args(b, {8, 16}); })
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultOverheadEr)
    ->Apply([](auto* b) { fault_args(b, {64, 256}); })
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultOverheadPath)
    ->Apply([](auto* b) { fault_args(b, {64, 256}); })
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
