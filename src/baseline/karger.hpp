#pragma once

// Karger's randomized contraction min-cut (Monte Carlo).
//
// A second, independent oracle used in randomized cross-checks; also the
// historical root of the tree-packing approach the paper builds on.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace umc::baseline {

/// One contraction run: returns the value of the resulting 2-supernode cut.
[[nodiscard]] Weight karger_single_run(const WeightedGraph& g, Rng& rng);

/// Best of `trials` runs. With trials = Θ(n^2 log n), correct whp; smaller
/// values give a fast upper bound. Requires a connected graph, n >= 2.
[[nodiscard]] Weight karger_min_cut(const WeightedGraph& g, int trials, Rng& rng);

}  // namespace umc::baseline
