#pragma once

// Reliable-delivery compilation for lossy CONGEST networks.
//
// ReliableChannel is a drop-in CongestNetwork whose `end_round` compiles
// one logical round of algorithm sends into a stop-and-wait ARQ exchange
// over the physical (faulty) wire:
//
//   attempt k:  DATA round   (payload, aux)          sender -> receiver
//               CTRL round   (checksum, seq)         sender -> receiver
//               ACK  round   (ack-mac, seq)          receiver -> sender
//               then bounded exponential backoff (idle rounds) and
//               retransmission of everything still unacknowledged.
//
// Receivers accept a message only when the CTRL checksum matches the DATA
// words (so bit-corruption looks like loss and is retried), deduplicate by
// per-slot sequence number (so duplicated wire traffic and re-sent
// already-accepted messages deliver once), and re-acknowledge duplicates
// (so a lost ACK cannot wedge the sender). All physical rounds and backoff
// idle rounds are charged to the inherited round counter — the E19
// experiment's "cost of reliability" is exactly this overhead.
//
// Recovery semantics: the per-slot ARQ state (unacked messages, sequence
// counters, accepted-seq watermarks, assembled logical inboxes) models each
// node's write-ahead journal on stable storage — a crash-stopped node stops
// sending and hearing (the FaultModel eats its wire traffic) but resumes
// retransmission and deduplication from the journal after restart, which is
// why delivery stays exactly-once across crash windows. Volatile per-round
// compute state is NOT covered; that is the checkpoint/rollback layer in
// congest/compiled_network.
//
// Sliding-window (go-back-N) mode compresses the triple to a 2-round
// DATA / CTRL cycle: a logical round terminates as soon as every receiver
// has VERIFIED and accepted its traffic, and the acknowledgements that
// retire the sender-side journal ride for free on reverse wire slots that
// later rounds leave idle (a pure-ACK frame is discriminable from DATA
// because it validates against the ack-mac of the sender's own journal
// head). The journal is the go-back-N window: entries stay in flight until
// a cumulative ACK retires them, and `drain()` charges dedicated ACK
// rounds at the end of the algorithm to flush whatever debt the free slots
// never absorbed. Backoff is adaptive — charged only after a cycle that
// accepted nothing — so clean rounds cost exactly 2 physical rounds where
// stop-and-wait pays 3, which is the E19 ARQ-mode comparison.
//
// A null model or an all-zero FaultPlan short-circuits to the base
// single-round delivery: compiling a fault-free network is the identity, so
// at p = 0 outputs and round counts are bit-identical to the plain
// simulator (the E19 baseline row) in either mode.

#include <cstdint>
#include <vector>

#include "congest/congest_net.hpp"
#include "fault/fault_model.hpp"

namespace umc::fault {

/// ARQ strategy compiled onto the physical wire.
enum class ArqMode {
  /// DATA / CTRL / ACK triple per attempt; the sender holds the logical
  /// round open until every message is acknowledged (PR 3 behavior).
  kStopAndWait,
  /// 2-round DATA / CTRL cycles terminated on receiver acceptance;
  /// cumulative ACKs ride free reverse slots of later rounds and `drain()`
  /// flushes the residual journal at the end of the algorithm.
  kGoBackN,
};

struct ReliableConfig {
  /// Delivery attempts per logical round before declaring the network
  /// unusable (throws invariant_error; p^64 is astronomically unlikely).
  int max_attempts = 64;
  /// Cap on the exponential backoff (idle rounds between attempts).
  std::int64_t max_backoff_rounds = 8;
  ArqMode mode = ArqMode::kStopAndWait;
};

struct ReliableStats {
  std::int64_t logical_rounds = 0;
  std::int64_t logical_messages = 0;
  std::int64_t physical_rounds = 0;   // DATA + CTRL (+ ACK / flush) rounds
  std::int64_t backoff_rounds = 0;    // idle rounds charged between attempts
  std::int64_t retransmissions = 0;   // per-message re-send count
  std::int64_t piggybacked_acks = 0;  // GBN: cumulative ACKs that rode free slots
  std::int64_t ack_flush_rounds = 0;  // GBN: dedicated ACK rounds charged by drain()
  std::int64_t stalled_cycles = 0;    // GBN: cycles with no new acceptance (backoff trigger)
  std::int64_t journal_peak = 0;      // GBN: max in-flight unretired journal entries
};

class ReliableChannel final : public congest::CongestNetwork {
 public:
  /// `model` may be nullptr (pure pass-through). Not owned; must outlive
  /// the channel. The model is attached to the physical layer as the
  /// network's fault injector. `wire` selects the physical data path
  /// (slot-addressed fast wire by default).
  ReliableChannel(const WeightedGraph& g, FaultModel* model, ReliableConfig cfg = {},
                  congest::WireConfig wire = {});

  void end_round() override;

  /// Go-back-N only: charges dedicated ACK rounds until every journal entry
  /// is retired (bounded retries with the same adaptive backoff). Call when
  /// the algorithm finishes so the final rounds' ACK debt — which has no
  /// later free slots to ride — is flushed and accounted. A no-op in
  /// stop-and-wait mode, at p = 0, and when the journal is already empty.
  void drain();

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }

  /// Sender-journal entries accepted by their receivers but not yet retired
  /// by a cumulative ACK (always 0 in stop-and-wait mode and after drain()).
  [[nodiscard]] std::int64_t in_flight() const { return inflight_; }

 private:
  void end_round_gbn();
  /// Consumes `m` as a journal-retiring cumulative ACK if it validates
  /// against node `v`'s own forward-slot journal head; false otherwise.
  bool try_retire(NodeId v, const congest::Message& m);

  FaultModel* model_;
  ReliableConfig cfg_;
  std::vector<std::int64_t> next_seq_;    // per wire slot, sender journal
  std::vector<std::int64_t> acked_seq_;   // per wire slot, receiver journal
  std::vector<std::int64_t> retired_seq_;  // per wire slot, GBN window base
  std::int64_t inflight_ = 0;             // GBN: accepted-but-unretired entries
  std::vector<congest::Message> staged_scratch_;  // journal assembly buffer
  ReliableStats stats_;
};

}  // namespace umc::fault
