file(REMOVE_RECURSE
  "CMakeFiles/test_theorem14.dir/test_theorem14.cpp.o"
  "CMakeFiles/test_theorem14.dir/test_theorem14.cpp.o.d"
  "test_theorem14"
  "test_theorem14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorem14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
