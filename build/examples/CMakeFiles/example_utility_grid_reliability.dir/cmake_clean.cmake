file(REMOVE_RECURSE
  "CMakeFiles/example_utility_grid_reliability.dir/utility_grid_reliability.cpp.o"
  "CMakeFiles/example_utility_grid_reliability.dir/utility_grid_reliability.cpp.o.d"
  "example_utility_grid_reliability"
  "example_utility_grid_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_utility_grid_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
