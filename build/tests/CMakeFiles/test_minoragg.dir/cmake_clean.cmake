file(REMOVE_RECURSE
  "CMakeFiles/test_minoragg.dir/test_minoragg.cpp.o"
  "CMakeFiles/test_minoragg.dir/test_minoragg.cpp.o.d"
  "test_minoragg"
  "test_minoragg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minoragg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
