// Experiment E14 (Theorem 17): the per-round cost of compiling
// Minor-Aggregation to CONGEST, i.e. the part-wise aggregation cost PA(G),
// measured by actually running the O(D+√n) routine per family:
//   * path:    PA ≈ D (global consensus dominates),
//   * grid:    PA ≈ D ≈ 2√n,
//   * ER:      PA ≈ √n (D = O(log n)),
//   * dumbbell: PA ≈ D.
// The "pa_over_D_plus_sqrtN" ratio stays bounded across all four.

#include <cmath>

#include "bench_common.hpp"
#include "congest/compile.hpp"

namespace umc {
namespace {

void run_compile(benchmark::State& state, const WeightedGraph& g) {
  minoragg::Ledger unit;
  unit.charge(1);
  congest::CompileCost cost{};
  for (auto _ : state) {
    cost = congest::measure_compile_cost(g, unit, 5);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["n"] = g.n();
  state.counters["D"] = cost.diameter;
  state.counters["sqrt_n"] = std::sqrt(static_cast<double>(g.n()));
  state.counters["pa_rounds"] = static_cast<double>(cost.pa_rounds_general);
  state.counters["pa_over_D_plus_sqrtN"] =
      static_cast<double>(cost.pa_rounds_general) /
      (static_cast<double>(cost.diameter) + std::sqrt(static_cast<double>(g.n())));
  state.counters["pa_model_excluded_minor"] =
      static_cast<double>(cost.pa_rounds_excluded_minor);
}

void BM_CompilePath(benchmark::State& state) {
  run_compile(state, path_graph(static_cast<NodeId>(state.range(0))));
}
void BM_CompileGrid(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  run_compile(state, grid_graph(side, side));
}
void BM_CompileEr(benchmark::State& state) {
  run_compile(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 8.0, 41));
}
void BM_CompileDumbbell(benchmark::State& state) {
  const NodeId clique = static_cast<NodeId>(state.range(0));
  run_compile(state, dumbbell(clique, 8 * clique));
}

BENCHMARK(BM_CompilePath)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileGrid)->Arg(16)->Arg(32)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileEr)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileDumbbell)->Arg(32)->Arg(128)->Arg(256)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
