// Experiment E9 (Theorem 14): the virtual-node simulation overhead is
// O(beta + 1).
//
// A fixed workload (deterministic HL construction + subtree sums) runs on a
// grid extended with beta arbitrarily-connected virtual nodes; the settled
// round count divided by the beta = 0 baseline tracks (beta + 1) exactly —
// the paper's multiplicative bound, realized by the Theorem 14 proof.

#include "bench_common.hpp"
#include "minoragg/tree_primitives.hpp"
#include "minoragg/virtual_graph.hpp"
#include "tree/rooted_tree.hpp"

namespace umc {
namespace {

std::int64_t workload_rounds(const WeightedGraph& g, int beta, minoragg::Ledger& outer) {
  minoragg::Ledger inner;
  const auto tree = bfs_spanning_tree(g, 0);
  const RootedTree t(g, tree, 0);
  const HeavyLightDecomposition hld = minoragg::hl_construct(t, inner);
  const std::vector<std::int64_t> ones(static_cast<std::size_t>(g.n()), 1);
  benchmark::DoNotOptimize(minoragg::hl_subtree_sums<SumAgg>(t, hld, ones, inner));
  minoragg::settle_virtual_execution(outer, inner, beta);
  return outer.rounds();
}

void BM_VirtualOverhead(benchmark::State& state) {
  const int beta = static_cast<int>(state.range(0));
  Rng rng(3);
  WeightedGraph g = grid_graph(12, 12);
  // Attach beta virtual nodes with arbitrary connections (Definition 13).
  minoragg::VirtualGraph vg = minoragg::VirtualGraph::wrap(g);
  for (int b = 0; b < beta; ++b) {
    const NodeId v = vg.add_virtual_node();
    for (int c = 0; c <= b; ++c)
      vg.graph.add_edge(static_cast<NodeId>(rng.next_below(144)), v, 1);
  }

  std::int64_t with_beta = 0;
  for (auto _ : state) {
    minoragg::Ledger outer;
    with_beta = workload_rounds(vg.graph, vg.beta(), outer);
    benchmark::DoNotOptimize(with_beta);
  }
  minoragg::Ledger base;
  const std::int64_t without = workload_rounds(g, 0, base);

  state.counters["beta"] = beta;
  state.counters["rounds"] = static_cast<double>(with_beta);
  state.counters["overhead_factor"] =
      static_cast<double>(with_beta) / static_cast<double>(without);
  state.counters["theorem14_bound"] = beta + 1;
}

BENCHMARK(BM_VirtualOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

}  // namespace
}  // namespace umc
