// Experiment E7 (Figure 5 / Section 9 analysis): the centroid recursion's
// depth and the virtual-node population.
//
// Claims verified: recursion depth <= log2 n (centroid halving) and
// |Virt| = O(log n) per instance (one virtual centroid per level; the
// de-cascading of Section 2 keeps the Theorem 14 multiplier at O(log n)
// instead of exploding multiplicatively). Also an ablation: the hypothetical
// cost WITHOUT de-cascading, i.e. if every level multiplied its children's
// rounds by (beta+1), reconstructed as (beta_max+1)^depth.

#include <cmath>

#include "bench_common.hpp"
#include "mincut/two_respect.hpp"

namespace umc {
namespace {

void BM_CentroidRecursion(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(13 + static_cast<std::uint64_t>(n));
  WeightedGraph g = random_connected(n, 2 * n, rng);
  randomize_weights(g, 1, 100, rng);
  const auto tree = bfs_spanning_tree(g, 0);

  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(mincut::two_respecting_mincut(g, tree, 0, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  const double depth = static_cast<double>(ledger.counter("max_general_depth"));
  const double beta = static_cast<double>(ledger.counter("max_beta"));
  state.counters["n"] = n;
  state.counters["log2_n"] = std::log2(static_cast<double>(n));
  state.counters["depth_over_log2n"] = depth / std::log2(static_cast<double>(n));
  // Ablation: simulation-cascade blowup factor a naive implementation would
  // pay on top (multiplicative (beta+1) per level instead of once).
  state.counters["cascade_blowup_if_naive"] = std::pow(beta + 1.0, depth - 1.0);
}

BENCHMARK(BM_CentroidRecursion)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
