# Empty dependencies file for example_mincut_cli.
# This may be replaced when dependencies are built.
