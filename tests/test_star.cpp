// Tests for the star 2-respecting machinery (Section 7): interest lists
// (Lemma 32), the interest-degree bound (Lemma 30), the mutual-interest
// graph, and the full star algorithm (Theorem 27) against the oracle.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/naive_two_respect.hpp"
#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/interest.hpp"
#include "mincut/star.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

/// spider(k, len, ...) graph (root 0, path i = nodes [1+i*len, 1+(i+1)*len))
/// as a StarInstance with every path edge a candidate.
StarInstance spider_instance(const WeightedGraph& g, int k, NodeId len) {
  StarInstance inst;
  inst.graph = g;
  inst.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
  inst.origin.assign(static_cast<std::size_t>(g.m()), kNoEdge);
  inst.root = 0;
  for (int i = 0; i < k; ++i) {
    std::vector<NodeId> nodes;
    std::vector<EdgeId> edges;
    for (NodeId j = 0; j < len; ++j) {
      nodes.push_back(1 + static_cast<NodeId>(i) * len + j);
      const EdgeId e = static_cast<EdgeId>(i) * len + j;  // generator order
      edges.push_back(e);
      inst.origin[static_cast<std::size_t>(e)] = e;
    }
    inst.path_nodes.push_back(std::move(nodes));
    inst.path_edges.push_back(std::move(edges));
  }
  return inst;
}

/// Oracle: 1-respecting min plus all pairs on DIFFERENT paths.
CutResult star_oracle(const StarInstance& inst) {
  std::vector<EdgeId> tree;
  for (const auto& pe : inst.path_edges) tree.insert(tree.end(), pe.begin(), pe.end());
  const RootedTree t(inst.graph, tree, inst.root);
  CutResult best;
  for (const EdgeId e : tree)
    best.absorb(CutResult{reference_cut_pair(t, e, e), e, kNoEdge});
  for (std::size_t i = 0; i < inst.path_edges.size(); ++i)
    for (std::size_t j = i + 1; j < inst.path_edges.size(); ++j)
      for (const EdgeId e : inst.path_edges[i])
        for (const EdgeId f : inst.path_edges[j])
          best.absorb(CutResult{reference_cut_pair(t, e, f), e, f});
  return best;
}

TEST(Interest, ListsContainStronglyInterestedPaths) {
  // Construct a spider where path 0 is overwhelmingly connected to path 1.
  Rng rng(3);
  WeightedGraph g = spider(4, 6, 0, rng);
  // Heavy cross edges between bottom of path 0 and path 1.
  const NodeId bottom0 = 6, mid1 = 1 + 6 + 3;
  g.add_edge(bottom0, mid1, 1000);
  g.add_edge(3, 1 + 6 + 1, 500);
  // Light noise to path 2.
  g.add_edge(bottom0, 1 + 2 * 6 + 2, 1);
  const StarInstance inst = spider_instance(g, 4, 6);
  minoragg::Ledger ledger;
  const auto lists = interest_lists(inst, ledger);
  // Path 0's cross weight is ~1501 toward path 1 vs 1 toward path 2.
  EXPECT_TRUE(std::find(lists[0].begin(), lists[0].end(), 1) != lists[0].end());
  EXPECT_TRUE(std::find(lists[1].begin(), lists[1].end(), 0) != lists[1].end());
  EXPECT_TRUE(std::find(lists[0].begin(), lists[0].end(), 2) == lists[0].end());
}

TEST(Interest, Lemma30DegreeBoundHolds) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int k = 8;
    const NodeId len = 5;
    WeightedGraph g = spider(k, len, 120, rng);
    randomize_weights(g, 1, 50, rng);
    const StarInstance inst = spider_instance(g, k, len);
    minoragg::Ledger ledger;
    const auto lists = interest_lists(inst, ledger);
    const std::size_t bound =
        static_cast<std::size_t>(10 * (ceil_log2(static_cast<std::uint64_t>(g.n())) + 1));
    for (const auto& l : lists) EXPECT_LE(l.size(), bound);
  }
}

TEST(Interest, MutualGraphIsSymmetric) {
  const std::vector<std::vector<int>> lists = {{1, 2}, {0}, {0, 1}, {}};
  const auto adj = interest_graph(lists);
  // 0-1 mutual; 0-2 only one-way (2 lists 0 but 0 lists 2 -> mutual!).
  EXPECT_EQ(adj[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<int>{0}));   // 1-2 not mutual (1 doesn't list 2)
  EXPECT_EQ(adj[2], (std::vector<int>{0}));
  EXPECT_TRUE(adj[3].empty());
}

TEST(Star, MatchesOracleOnRandomSpiders) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const int k = 2 + static_cast<int>(rng.next_below(5));
    const NodeId len = 2 + static_cast<NodeId>(rng.next_below(7));
    WeightedGraph g = spider(k, len, 4 * k * len, rng);
    randomize_weights(g, 1, 20, rng);
    const StarInstance inst = spider_instance(g, k, len);
    minoragg::Ledger ledger;
    const CutResult got = star_mincut(inst, ledger);
    const CutResult want = star_oracle(inst);
    EXPECT_EQ(got.value, want.value) << "trial " << trial;
  }
}

TEST(Star, LongPathsTriggerRecursiveP2P) {
  Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    const int k = 3;
    const NodeId len = 20;
    WeightedGraph g = spider(k, len, 300, rng);
    randomize_weights(g, 1, 9, rng);
    const StarInstance inst = spider_instance(g, k, len);
    minoragg::Ledger ledger;
    EXPECT_EQ(star_mincut(inst, ledger).value, star_oracle(inst).value);
  }
}

TEST(Star, SinglePathReturnsOneRespecting) {
  Rng rng(13);
  WeightedGraph g = spider(2, 4, 0, rng);
  // Treat it as one star with k = 1 by merging both paths' description into
  // a single-path instance is not representable; instead test k = 2 with no
  // cross edges: the best must be a 1-respecting cut.
  const StarInstance inst = spider_instance(g, 2, 4);
  minoragg::Ledger ledger;
  const CutResult got = star_mincut(inst, ledger);
  EXPECT_EQ(got.value, 1);  // unit weights: any leaf edge
  EXPECT_EQ(got.f, kNoEdge);
}

TEST(Star, InterestDegreeCounterRecorded) {
  Rng rng(17);
  WeightedGraph g = spider(6, 5, 150, rng);
  randomize_weights(g, 1, 9, rng);
  const StarInstance inst = spider_instance(g, 6, 5);
  minoragg::Ledger ledger;
  (void)star_mincut(inst, ledger);
  EXPECT_GE(ledger.counter("max_interest_degree"), 0);
  EXPECT_GT(ledger.rounds(), 0);
}

}  // namespace
}  // namespace umc::mincut
