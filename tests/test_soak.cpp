// Randomized soak: a wide net over graph shapes, weights, multi-edges,
// roots and spanning trees, always comparing the full deterministic
// 2-respecting solver against the quadratic oracle. This is the test that
// catches interaction bugs the targeted suites miss.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/naive_two_respect.hpp"
#include "baseline/stoer_wagner.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/two_respect.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

WeightedGraph random_multigraph(Rng& rng) {
  const NodeId n = 4 + static_cast<NodeId>(rng.next_below(50));
  WeightedGraph g(n);
  // A random connected backbone...
  for (NodeId v = 1; v < n; ++v)
    g.add_edge(static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v))), v,
               rng.next_in(1, 60));
  // ... plus chords, with deliberate parallel duplicates.
  const int extra = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(3 * n)));
  for (int c = 0; c < extra; ++c) {
    const NodeId u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    g.add_edge(u, v, rng.next_in(1, 60));
    if (rng.next_bool(0.15)) g.add_edge(u, v, rng.next_in(1, 10));  // parallel twin
  }
  return g;
}

std::vector<EdgeId> random_spanning_tree_of(const WeightedGraph& g, Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return bfs_spanning_tree(g, static_cast<NodeId>(rng.next_below(
                                            static_cast<std::uint64_t>(g.n()))));
    case 1: return wilson_random_spanning_tree(g, rng);
    default: {
      // Random-cost Kruskal: yet another tree shape distribution.
      std::vector<double> cost(static_cast<std::size_t>(g.m()));
      for (auto& c : cost) c = rng.next_real();
      return kruskal_mst(g, cost);
    }
  }
}

TEST(Soak, HundredRandomInstancesAgainstOracle) {
  Rng rng(0xdecaf);
  for (int trial = 0; trial < 100; ++trial) {
    const WeightedGraph g = random_multigraph(rng);
    const auto tree = random_spanning_tree_of(g, rng);
    const NodeId root = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(g.n())));
    minoragg::Ledger ledger;
    const CutResult got = two_respecting_mincut(g, tree, root, ledger);
    const RootedTree t(g, tree, root);
    const CutResult want = baseline::naive_two_respecting(t);
    ASSERT_EQ(got.value, want.value)
        << "trial " << trial << " n=" << g.n() << " m=" << g.m() << " root=" << root;
    // The reported pair must be genuine.
    const Weight check = got.f == kNoEdge ? reference_cut_pair(t, got.e, got.e)
                                          : reference_cut_pair(t, got.e, got.f);
    ASSERT_EQ(check, got.value) << "trial " << trial;
  }
}

TEST(Soak, ExactMinCutThirtyRandomInstancesAgainstStoerWagner) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 30; ++trial) {
    WeightedGraph g = random_multigraph(rng);
    if (!is_connected(g)) continue;
    minoragg::Ledger ledger;
    PackingConfig config;
    config.max_trees = 16;
    const ExactMinCutResult got = exact_mincut(g, rng, ledger, config);
    ASSERT_EQ(got.value, baseline::stoer_wagner(g).value)
        << "trial " << trial << " n=" << g.n() << " m=" << g.m();
  }
}

}  // namespace
}  // namespace umc::mincut
