#include "minoragg/network.hpp"

namespace umc::minoragg {

std::vector<NodeId> Network::supernodes(const std::vector<bool>& contract) const {
  return engine_.plan(contract).supernode;
}

}  // namespace umc::minoragg
