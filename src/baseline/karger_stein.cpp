#include "baseline/karger_stein.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace umc::baseline {

namespace {

/// Working representation: contracted multigraph as an edge list over
/// supernode labels, plus the live supernode count.
struct Contracted {
  struct E {
    NodeId u, v;
    Weight w;
  };
  std::vector<E> edges;
  NodeId live = 0;

  /// Contract weight-proportionally until `target` supernodes remain.
  void contract_to(NodeId target, Rng& rng) {
    while (live > target) {
      Weight total = 0;
      for (const E& e : edges) total += e.w;
      UMC_ASSERT_MSG(total > 0, "graph must stay connected during contraction");
      Weight r = static_cast<Weight>(rng.next_below(static_cast<std::uint64_t>(total)));
      std::size_t pick = 0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (r < edges[i].w) {
          pick = i;
          break;
        }
        r -= edges[i].w;
      }
      const NodeId keep = edges[pick].u;
      const NodeId gone = edges[pick].v;
      std::vector<E> next;
      next.reserve(edges.size());
      for (E e : edges) {
        if (e.u == gone) e.u = keep;
        if (e.v == gone) e.v = keep;
        if (e.u != e.v) next.push_back(e);
      }
      edges = std::move(next);
      --live;
    }
  }

  [[nodiscard]] Weight cut_value() const {
    Weight total = 0;
    for (const E& e : edges) total += e.w;
    return total;
  }
};

Weight recursive_contract(Contracted g, Rng& rng) {
  if (g.live <= 6) {
    g.contract_to(2, rng);
    return g.cut_value();
  }
  const NodeId target = static_cast<NodeId>(
      std::ceil(static_cast<double>(g.live) / 1.4142135623730951)) + 1;
  Contracted a = g;
  a.contract_to(target, rng);
  Contracted b = std::move(g);
  b.contract_to(target, rng);
  return std::min(recursive_contract(std::move(a), rng), recursive_contract(std::move(b), rng));
}

}  // namespace

Weight karger_stein_min_cut(const WeightedGraph& g, int repeats, Rng& rng) {
  UMC_ASSERT(g.n() >= 2);
  UMC_ASSERT(repeats >= 1);
  Contracted base;
  base.live = g.n();
  base.edges.reserve(static_cast<std::size_t>(g.m()));
  for (const Edge& e : g.edges()) base.edges.push_back({e.u, e.v, e.w});
  Weight best = recursive_contract(base, rng);
  for (int r = 1; r < repeats; ++r) best = std::min(best, recursive_contract(base, rng));
  return best;
}

}  // namespace umc::baseline
