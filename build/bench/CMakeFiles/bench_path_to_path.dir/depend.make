# Empty dependencies file for bench_path_to_path.
# This may be replaced when dependencies are built.
