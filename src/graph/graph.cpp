#include "graph/graph.hpp"

namespace umc {

void WeightedGraph::reserve(NodeId nodes, EdgeId edges) {
  UMC_ASSERT(nodes >= 0 && edges >= 0);
  adj_.reserve(static_cast<std::size_t>(nodes));
  edges_.reserve(static_cast<std::size_t>(edges));
}

NodeId WeightedGraph::add_node() {
  adj_.emplace_back();
  csr_valid_ = false;
  return static_cast<NodeId>(adj_.size() - 1);
}

EdgeId WeightedGraph::add_edge(NodeId u, NodeId v, Weight w) {
  UMC_ASSERT(u >= 0 && u < n());
  UMC_ASSERT(v >= 0 && v < n());
  UMC_ASSERT_MSG(u != v, "self-loops are not representable");
  UMC_ASSERT_MSG(w > 0, "edge weights must be positive");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  adj_[static_cast<std::size_t>(u)].push_back(AdjEntry{v, id});
  adj_[static_cast<std::size_t>(v)].push_back(AdjEntry{u, id});
  csr_valid_ = false;
  return id;
}

Weight WeightedGraph::weighted_degree(NodeId v) const {
  Weight total = 0;
  for (const AdjEntry& a : adj(v)) total += edge(a.edge).w;
  return total;
}

Weight WeightedGraph::total_weight() const {
  Weight total = 0;
  for (const Edge& e : edges_) total += e.w;
  return total;
}

void WeightedGraph::set_weight(EdgeId e, Weight w) {
  UMC_ASSERT(e >= 0 && e < m());
  UMC_ASSERT_MSG(w > 0, "edge weights must be positive");
  edges_[static_cast<std::size_t>(e)].w = w;
}

const CsrAdjacency& WeightedGraph::csr() const {
  if (!csr_valid_) {
    csr_.offsets.assign(adj_.size() + 1, 0);
    std::size_t total = 0;
    for (std::size_t v = 0; v < adj_.size(); ++v) {
      total += adj_[v].size();
      csr_.offsets[v + 1] = static_cast<std::int32_t>(total);
    }
    csr_.entries.clear();
    csr_.entries.reserve(total);
    for (const std::vector<AdjEntry>& row : adj_)
      csr_.entries.insert(csr_.entries.end(), row.begin(), row.end());
    csr_valid_ = true;
  }
  return csr_;
}

}  // namespace umc
