#include "mincut/tree_packing.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "baseline/stoer_wagner.hpp"
#include "graph/properties.hpp"
#include "mincut/packing_cache.hpp"
#include "minoragg/boruvka.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tree/spanning.hpp"
#include "util/math.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace umc::mincut {

namespace {

#if !defined(UMC_OBS_DISABLED)
struct PackingMetrics {
  obs::Counter& resort_edges = obs::MetricsRegistry::global().counter(
      "umc_packing_resort_edges_total", {},
      "Edges re-costed by the packing producer. The fast path repairs only "
      "the <= n-1 edges whose load changed since the previous iteration; "
      "the reference recomputes all m every iteration.");
  obs::Counter& cache_hits = obs::MetricsRegistry::global().counter(
      "umc_packing_cache_hits_total", {},
      "tree_packing calls served by replaying a PackingCache entry.");
  obs::Counter& cache_misses = obs::MetricsRegistry::global().counter(
      "umc_packing_cache_misses_total", {},
      "tree_packing calls that computed a packing (cache off counts too).");
};

PackingMetrics& packing_metrics() {
  static PackingMetrics m;
  return m;
}
#endif

/// Binomial(w, p) sample: exact Bernoulli loop for small w, normal
/// approximation (clamped) for large w.
Weight binomial_sample(Weight w, double p, Rng& rng) {
  if (p >= 1.0) return w;
  if (p <= 0.0) return 0;
  if (w <= 64) {
    Weight s = 0;
    for (Weight i = 0; i < w; ++i) s += rng.next_bool(p) ? 1 : 0;
    return s;
  }
  const double mean = static_cast<double>(w) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // Box-Muller from two uniform draws.
  const double u1 = std::max(1e-12, rng.next_real());
  const double u2 = rng.next_real();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + sd * z;
  return std::clamp<Weight>(static_cast<Weight>(std::llround(value)), 0, w);
}

/// Greedy Thorup packing: I iterations of minimum-cost spanning tree where
/// the cost of an edge is its packing load normalized by multiplicity. Each
/// finished tree is handed to `emit` — in streaming mode that pipelines it
/// straight into a solve task; in retaining mode the caller just collects.
///
/// Two producers, one contract. The reference (`fast == false`) drives a
/// full Minor-Aggregation simulation per Borůvka phase and recomputes all m
/// costs per iteration. The fast path selects the same (cost, edge id)-
/// minimal trees through the reusable BoruvkaPacker — per-phase candidate
/// folds run chunk-parallel on the ambient TaskGraph session — and between
/// iterations repairs only the <= n-1 costs whose load changed. Both paths
/// charge the ledger identically: one Definition 9 round per phase, one
/// termination-check round, one boruvka_iterations bump per phase (the fast
/// path replays those charges from its own — provably equal — phase count).
void greedy_pack(const WeightedGraph& g, std::span<const Weight> multiplicity, int iterations,
                 minoragg::Ledger& ledger, const PackingConfig& config, const TreeSink& emit) {
  const auto m = static_cast<std::size_t>(g.m());
  if (!config.use_fast_path) {
    std::vector<std::int64_t> load(m, 0);
    std::vector<std::int64_t> cost(m, 0);
    for (int it = 0; it < iterations; ++it) {
      // cost = load / multiplicity, in fixed point (2^20) so Borůvka can use
      // integer keys; ties broken by edge id inside Borůvka.
      for (EdgeId e = 0; e < g.m(); ++e) {
        cost[static_cast<std::size_t>(e)] =
            (load[static_cast<std::size_t>(e)] << 20) / multiplicity[static_cast<std::size_t>(e)];
      }
#if !defined(UMC_OBS_DISABLED)
      packing_metrics().resort_edges.inc(static_cast<std::int64_t>(m));
#endif
      std::vector<EdgeId> tree = minoragg::boruvka_mst(g, cost, ledger);
      for (const EdgeId e : tree) ++load[static_cast<std::size_t>(e)];
      ledger.bump("packing_iterations");
      emit(std::move(tree));
    }
    return;
  }

  // Fast path. All scratch lives on thread-local arenas: the packer's DSU,
  // worklists, and chunk slots, plus the load/cost rows here, are checked
  // out once per call and keep their capacity across packing sessions, so
  // steady-state iterations allocate only the emitted tree itself.
  ScratchLease<BoruvkaPacker> packer;
  packer->set_min_chunk_edges(static_cast<std::size_t>(std::max(config.chunk_min_edges, 1)));
  ScratchLease<std::vector<std::int64_t>> load_lease;
  ScratchLease<std::vector<std::int64_t>> cost_lease;
  std::vector<std::int64_t>& load = *load_lease;
  std::vector<std::int64_t>& cost = *cost_lease;
  load.assign(m, 0);
  cost.assign(m, 0);  // load 0 => cost 0 for every multiplicity: the full
                      // initial re-cost, done once instead of per iteration
#if !defined(UMC_OBS_DISABLED)
  packing_metrics().resort_edges.inc(static_cast<std::int64_t>(m));
#endif
  for (int it = 0; it < iterations; ++it) {
    UMC_OBS_SPAN_VAR_L(obs_iter, "mincut/packing_iter", "mincut", it);
    obs_iter.arg("pool_thread", ThreadPool::current_index());
    const BoruvkaPacker::Result r = packer->run(g, cost);
    // Replay the Minor-Aggregation producer's charges from the (identical)
    // phase structure: one round per selection phase, one final round that
    // observes the single supernode, one iteration bump per phase.
    ledger.charge(r.phases + 1);
    ledger.bump("boruvka_iterations", r.phases);
    std::vector<EdgeId> tree(r.tree.begin(), r.tree.end());
    // Incremental re-costing: only the tree's n-1 edges changed load.
    for (const EdgeId e : tree) {
      const auto i = static_cast<std::size_t>(e);
      ++load[i];
      cost[i] = (load[i] << 20) / multiplicity[i];
    }
#if !defined(UMC_OBS_DISABLED)
    packing_metrics().resort_edges.inc(static_cast<std::int64_t>(tree.size()));
#endif
    ledger.bump("packing_iterations");
    emit(std::move(tree));
  }
}

/// The cache a config resolves to: its session-scoped instance when set,
/// the process-wide one otherwise.
PackingCache& cache_for(const PackingConfig& config) {
  return config.cache != nullptr ? *config.cache : PackingCache::global();
}

/// Folds every config field the producer branches on into the cache key.
/// chunk_min_edges and the cache pointer are deliberately absent: chunk
/// granularity cannot change any output, and the pointer selects where
/// entries live, not what they contain — packings computed under either
/// are interchangeable (see PackingConfig).
std::uint64_t config_fingerprint(const PackingConfig& config) {
  std::uint64_t h = 0x7061636b636667ULL;  // "packcfg"
  h = mix64(h ^ std::bit_cast<std::uint64_t>(config.sample_c));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(config.direct_threshold_c));
  h = mix64(h ^ static_cast<std::uint64_t>(config.max_trees));
  h = mix64(h ^ (config.use_fast_path ? 1ULL : 0ULL));
  return h;
}

/// The producer proper: packs into `pack_ledger` (all packing charges are
/// additive, so a single sequential absorption by the caller is
/// bit-identical to direct charging) and emits through `sink`.
TreePacking pack_uncached(const WeightedGraph& g, Rng& rng, minoragg::Ledger& pack_ledger,
                          const PackingConfig& config, const TreeSink& sink) {
  TreePacking out;

  // Seed lambda (substitution for the [17] approx black box; see header).
  out.lambda_seed = baseline::stoer_wagner(g).value;
  const std::int64_t logn = ceil_log2(static_cast<std::uint64_t>(g.n()) + 1) + 1;
  const std::int64_t logm = ceil_log2(static_cast<std::uint64_t>(g.m()) + 2) + 1;
  pack_ledger.charge(logn * logn);  // the approx-min-cut's polylog round budget

  const auto cap = [&config](std::int64_t iters) {
    iters = std::max<std::int64_t>(iters, 1);
    if (config.max_trees > 0) iters = std::min<std::int64_t>(iters, config.max_trees);
    return static_cast<int>(iters);
  };

  if (static_cast<double>(out.lambda_seed) <=
      config.direct_threshold_c * static_cast<double>(logn)) {
    // Case (A): lambda = O(log n) — direct greedy packing.
    std::vector<Weight> multiplicity(static_cast<std::size_t>(g.m()));
    for (EdgeId e = 0; e < g.m(); ++e) multiplicity[static_cast<std::size_t>(e)] = g.edge(e).w;
    greedy_pack(g, multiplicity, cap(2 * out.lambda_seed * logm), pack_ledger, config, sink);
    return out;
  }

  // Case (B): Karger-sample with p = C log n / lambda, then pack the sample.
  out.sampled = true;
  const double base_p =
      config.sample_c * static_cast<double>(logn) / static_cast<double>(out.lambda_seed);
  for (double p = base_p;; p = std::min(1.0, 2 * p)) {
    std::vector<Weight> multiplicity(static_cast<std::size_t>(g.m()));
    WeightedGraph sample(g.n());
    for (EdgeId e = 0; e < g.m(); ++e) {
      const Weight s = binomial_sample(g.edge(e).w, p, rng);
      multiplicity[static_cast<std::size_t>(e)] = s;
      if (s > 0) sample.add_edge(g.edge(e).u, g.edge(e).v, s);
    }
    if (!is_connected(sample)) {
      UMC_ASSERT_MSG(p < 1.0, "sampling at p = 1 keeps the graph connected");
      continue;  // resample denser (whp never needed at the theorem's C)
    }
    // The sampled min-cut value = Theta(C log n) whp; seed the iteration
    // count from it exactly (same substitution as above).
    const Weight lambda_sample = baseline::stoer_wagner(sample).value;
    // Pack on the original graph topology restricted to sampled edges.
    std::vector<EdgeId> present;  // sample edge -> original edge id
    for (EdgeId e = 0; e < g.m(); ++e)
      if (multiplicity[static_cast<std::size_t>(e)] > 0) present.push_back(e);
    std::vector<Weight> sample_mult;
    sample_mult.reserve(present.size());
    for (const EdgeId e : present) sample_mult.push_back(multiplicity[static_cast<std::size_t>(e)]);
    // Map each tree back to original edge ids before it leaves the packer.
    greedy_pack(sample, sample_mult, cap(2 * lambda_sample * logm), pack_ledger, config,
                [&present, &sink](std::vector<EdgeId> tree) {
                  for (EdgeId& e : tree) e = present[static_cast<std::size_t>(e)];
                  sink(std::move(tree));
                });
    return out;
  }
}

/// Resumable core: mirrors pack_uncached, but commits each unit of work
/// into `ckpt` (firing `hook` just before the commit) and charges each
/// unit into its own ledger so a replayed prefix absorbs exactly what the
/// live run charged. Bit-equality with pack_uncached holds because the
/// setup and the greedy loop are deterministic given (graph, config, rng
/// entry state) and charge_sequential is associative over the unit split.
TreePacking pack_resumable(const WeightedGraph& g, Rng& rng, minoragg::Ledger& pack_ledger,
                           const PackingConfig& config, const TreeSink& sink,
                           PackingCheckpoint& ckpt, const CrashHook& hook) {
  TreePacking out;
  const std::int64_t logn = ceil_log2(static_cast<std::uint64_t>(g.n()) + 1) + 1;
  const std::int64_t logm = ceil_log2(static_cast<std::uint64_t>(g.m()) + 2) + 1;
  const auto cap = [&config](std::int64_t iters) {
    iters = std::max<std::int64_t>(iters, 1);
    if (config.max_trees > 0) iters = std::min<std::int64_t>(iters, config.max_trees);
    return static_cast<int>(iters);
  };

  if (!ckpt.setup_done) {
    minoragg::Ledger setup;
    out.lambda_seed = baseline::stoer_wagner(g).value;
    setup.charge(logn * logn);  // the approx-min-cut's polylog round budget
    std::vector<Weight> multiplicity;
    int iterations = 0;
    if (static_cast<double>(out.lambda_seed) <=
        config.direct_threshold_c * static_cast<double>(logn)) {
      // Case (A): direct greedy packing on the full multiplicities; nothing
      // worth journaling beyond the iteration target (rng untouched).
      iterations = cap(2 * out.lambda_seed * logm);
    } else {
      // Case (B): Karger-sample (the only randomness of the whole solve).
      out.sampled = true;
      const double base_p =
          config.sample_c * static_cast<double>(logn) / static_cast<double>(out.lambda_seed);
      for (double p = base_p;; p = std::min(1.0, 2 * p)) {
        multiplicity.assign(static_cast<std::size_t>(g.m()), 0);
        WeightedGraph sample(g.n());
        for (EdgeId e = 0; e < g.m(); ++e) {
          const Weight s = binomial_sample(g.edge(e).w, p, rng);
          multiplicity[static_cast<std::size_t>(e)] = s;
          if (s > 0) sample.add_edge(g.edge(e).u, g.edge(e).v, s);
        }
        if (!is_connected(sample)) {
          UMC_ASSERT_MSG(p < 1.0, "sampling at p = 1 keeps the graph connected");
          continue;  // resample denser (whp never needed at the theorem's C)
        }
        iterations = cap(2 * baseline::stoer_wagner(sample).value * logm);
        break;
      }
    }
    if (hook) hook(SolvePhase::kPackingSetup, 0);
    ckpt.setup_done = true;
    ckpt.lambda_seed = out.lambda_seed;
    ckpt.sampled = out.sampled;
    ckpt.multiplicity = std::move(multiplicity);
    ckpt.rng_after_setup = rng.state();
    ckpt.setup_charges = setup;
    ckpt.iterations = iterations;
  } else {
    // Resume: the setup is journaled; skip straight past its randomness.
    rng.set_state(ckpt.rng_after_setup);
  }
  out.lambda_seed = ckpt.lambda_seed;
  out.sampled = ckpt.sampled;
  pack_ledger.charge_sequential(ckpt.setup_charges);

  // Rebuild the packing substrate: the sample graph for case B (with the
  // sample-id -> original-id map), g itself for case A.
  WeightedGraph sample_storage(0);
  const WeightedGraph* pack_g = &g;
  std::vector<EdgeId> present;           // pack edge id -> original edge id
  std::vector<EdgeId> original_to_pack;  // inverse (case B only)
  std::vector<Weight> multiplicity(static_cast<std::size_t>(g.m()));
  if (ckpt.sampled) {
    sample_storage = WeightedGraph(g.n());
    original_to_pack.assign(static_cast<std::size_t>(g.m()), kNoEdge);
    std::vector<Weight> pack_mult;
    for (EdgeId e = 0; e < g.m(); ++e) {
      const Weight s = ckpt.multiplicity[static_cast<std::size_t>(e)];
      if (s == 0) continue;
      original_to_pack[static_cast<std::size_t>(e)] = static_cast<EdgeId>(present.size());
      present.push_back(e);
      pack_mult.push_back(s);
      sample_storage.add_edge(g.edge(e).u, g.edge(e).v, s);
    }
    pack_g = &sample_storage;
    multiplicity = std::move(pack_mult);
  } else {
    for (EdgeId e = 0; e < g.m(); ++e) multiplicity[static_cast<std::size_t>(e)] = g.edge(e).w;
  }
  const auto to_pack_id = [&](EdgeId original) {
    return ckpt.sampled ? original_to_pack[static_cast<std::size_t>(original)] : original;
  };
  const auto to_original_id = [&](EdgeId pack) {
    return ckpt.sampled ? present[static_cast<std::size_t>(pack)] : pack;
  };

  // Replay the committed prefix (loads rebuilt from the journaled trees),
  // then continue live from the first uncommitted iteration.
  const auto pack_m = static_cast<std::size_t>(pack_g->m());
  std::vector<std::int64_t> load(pack_m, 0);
  const int committed = ckpt.committed_iterations();
  for (int it = 0; it < committed; ++it) {
    pack_ledger.charge_sequential(ckpt.iteration_charges[static_cast<std::size_t>(it)]);
    for (const EdgeId e : ckpt.trees[static_cast<std::size_t>(it)])
      ++load[static_cast<std::size_t>(to_pack_id(e))];
    sink(std::vector<EdgeId>(ckpt.trees[static_cast<std::size_t>(it)]));
  }

  std::vector<std::int64_t> cost(pack_m, 0);
  for (std::size_t i = 0; i < pack_m; ++i) cost[i] = (load[i] << 20) / multiplicity[i];
#if !defined(UMC_OBS_DISABLED)
  if (config.use_fast_path && committed < ckpt.iterations)
    packing_metrics().resort_edges.inc(static_cast<std::int64_t>(pack_m));
#endif
  ScratchLease<BoruvkaPacker> packer;
  packer->set_min_chunk_edges(static_cast<std::size_t>(std::max(config.chunk_min_edges, 1)));
  for (int it = committed; it < ckpt.iterations; ++it) {
    UMC_OBS_SPAN_VAR_L(obs_iter, "mincut/packing_iter", "mincut", it);
    obs_iter.arg("pool_thread", ThreadPool::current_index());
    minoragg::Ledger iter_ledger;
    std::vector<EdgeId> tree;
    if (config.use_fast_path) {
      const BoruvkaPacker::Result r = packer->run(*pack_g, cost);
      iter_ledger.charge(r.phases + 1);
      iter_ledger.bump("boruvka_iterations", r.phases);
      tree.assign(r.tree.begin(), r.tree.end());
      for (const EdgeId e : tree) {
        const auto i = static_cast<std::size_t>(e);
        ++load[i];
        cost[i] = (load[i] << 20) / multiplicity[i];
      }
#if !defined(UMC_OBS_DISABLED)
      packing_metrics().resort_edges.inc(static_cast<std::int64_t>(tree.size()));
#endif
    } else {
      for (std::size_t i = 0; i < pack_m; ++i) cost[i] = (load[i] << 20) / multiplicity[i];
#if !defined(UMC_OBS_DISABLED)
      packing_metrics().resort_edges.inc(static_cast<std::int64_t>(pack_m));
#endif
      tree = minoragg::boruvka_mst(*pack_g, cost, iter_ledger);
      for (const EdgeId e : tree) ++load[static_cast<std::size_t>(e)];
    }
    iter_ledger.bump("packing_iterations");
    for (EdgeId& e : tree) e = to_original_id(e);
    if (hook) hook(SolvePhase::kPackingIteration, it);
    ckpt.trees.push_back(tree);
    ckpt.iteration_charges.push_back(iter_ledger);
    pack_ledger.charge_sequential(iter_ledger);
    sink(std::move(tree));
  }
  return out;
}

}  // namespace

TreePacking tree_packing(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                         const PackingConfig& config) {
  TreePacking out;
  TreePacking meta = tree_packing(g, rng, ledger, config,
                                  [&out](std::vector<EdgeId> tree) {
                                    out.trees.push_back(std::move(tree));
                                  });
  out.lambda_seed = meta.lambda_seed;
  out.sampled = meta.sampled;
  return out;
}

TreePacking tree_packing(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                         const PackingConfig& config, const TreeSink& sink) {
  UMC_ASSERT(g.n() >= 2);
  UMC_OBS_SPAN_VAR_L(obs_pack, "mincut/tree_packing", "mincut", ledger.rounds());
  obs_pack.arg("n", g.n());

  PackingKey key;
  if (config.use_cache) {
    key.graph_fp = graph_fingerprint(g);
    key.config_fp = config_fingerprint(config);
    key.rng_state = rng.state();
    if (const std::shared_ptr<const PackingEntry> hit = cache_for(config).lookup(key)) {
      // Replay: same trees in the same order, same charges, same generator
      // exit state — indistinguishable from a recompute, at output cost.
#if !defined(UMC_OBS_DISABLED)
      packing_metrics().cache_hits.inc();
#endif
      obs_pack.arg("cache_hit", 1);
      for (const std::vector<EdgeId>& tree : hit->trees) sink(std::vector<EdgeId>(tree));
      ledger.charge_sequential(hit->charges);
      rng.set_state(hit->rng_after);
      TreePacking out;
      out.lambda_seed = hit->lambda_seed;
      out.sampled = hit->sampled;
      return out;
    }
  }
#if !defined(UMC_OBS_DISABLED)
  packing_metrics().cache_misses.inc();
#endif

  minoragg::Ledger pack_ledger;
  TreePacking out;
  if (config.use_cache) {
    auto entry = std::make_shared<PackingEntry>();
    out = pack_uncached(g, rng, pack_ledger, config,
                        [&entry, &sink](std::vector<EdgeId> tree) {
                          entry->trees.push_back(tree);
                          sink(std::move(tree));
                        });
    entry->lambda_seed = out.lambda_seed;
    entry->sampled = out.sampled;
    entry->charges = pack_ledger;
    entry->rng_after = rng.state();
    cache_for(config).insert(key, std::move(entry));
  } else {
    out = pack_uncached(g, rng, pack_ledger, config, sink);
  }
  ledger.charge_sequential(pack_ledger);
  return out;
}

TreePacking tree_packing_resumable(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                                   const PackingConfig& config, const TreeSink& sink,
                                   PackingCheckpoint& ckpt, const CrashHook& hook) {
  UMC_ASSERT(g.n() >= 2);
  UMC_OBS_SPAN_VAR_L(obs_pack, "mincut/tree_packing_resumable", "mincut", ledger.rounds());
  obs_pack.arg("n", g.n());
  obs_pack.arg("committed", ckpt.committed_iterations());

  PackingKey key;
  key.graph_fp = graph_fingerprint(g);
  key.config_fp = config_fingerprint(config);
  key.rng_state = rng.state();
  if (ckpt.empty()) {
    ckpt.graph_fp = key.graph_fp;
    ckpt.config_fp = key.config_fp;
    ckpt.rng_entry = key.rng_state;
    if (config.use_cache) {
      if (const std::shared_ptr<const PackingEntry> hit = cache_for(config).lookup(key)) {
        // Full replay from the cache — strictly better than any journal.
#if !defined(UMC_OBS_DISABLED)
        packing_metrics().cache_hits.inc();
#endif
        obs_pack.arg("cache_hit", 1);
        for (const std::vector<EdgeId>& tree : hit->trees) sink(std::vector<EdgeId>(tree));
        ledger.charge_sequential(hit->charges);
        rng.set_state(hit->rng_after);
        TreePacking out;
        out.lambda_seed = hit->lambda_seed;
        out.sampled = hit->sampled;
        return out;
      }
    }
#if !defined(UMC_OBS_DISABLED)
    packing_metrics().cache_misses.inc();
#endif
  } else {
    // A journal binds to exactly one solve: resuming with a different
    // graph, config, or generator entry state is a caller bug, and replaying
    // across it would be a silent wrong answer.
    UMC_ASSERT_MSG(ckpt.graph_fp == key.graph_fp && ckpt.config_fp == key.config_fp &&
                       ckpt.rng_entry == key.rng_state,
                   "PackingCheckpoint resumed against a different (graph, config, seed)");
  }

  minoragg::Ledger pack_ledger;
  const TreePacking out = pack_resumable(g, rng, pack_ledger, config, sink, ckpt, hook);
  if (config.use_cache) {
    auto entry = std::make_shared<PackingEntry>();
    entry->trees = ckpt.trees;
    entry->lambda_seed = out.lambda_seed;
    entry->sampled = out.sampled;
    entry->charges = pack_ledger;
    entry->rng_after = rng.state();
    cache_for(config).insert(key, std::move(entry));
  }
  ledger.charge_sequential(pack_ledger);
  return out;
}

}  // namespace umc::mincut
