#pragma once

// Literal Theorem 17 execution: run Minor-Aggregation rounds ON a CONGEST
// network, with every step realized by real message traffic.
//
// One Definition 9 round compiles to:
//   1. supernode identification — a min-fold part-wise aggregation over the
//      contracted components (each node learns the smallest id in its
//      supernode, the leader-election step of the Theorem 17 proof);
//   2. consensus — one part-wise aggregation of x_v over the same parts;
//   3. y-exchange — one CONGEST round in which every node sends its y over
//      every incident edge, so each edge endpoint holds both y-values;
//   4. aggregation — each node folds the z-values of its incident
//      surviving edges locally, then one more part-wise aggregation.
//
// Values are one CONGEST word (int64); min-folds may carry packed
// (key, tag) pairs. This is enough to execute Borůvka end to end and
// measure the REAL CONGEST round count of a compiled Minor-Aggregation
// algorithm, complementing the multiplicative cost model in compile.hpp.

#include <functional>
#include <span>

#include "congest/partwise.hpp"
#include "minoragg/round_engine.hpp"

namespace umc::congest {

struct CompiledRoundResult {
  std::vector<std::int64_t> consensus;   // y of v's supernode, per node
  std::vector<std::int64_t> aggregate;   // z-fold of v's supernode, per node
  std::vector<NodeId> supernode;         // smallest node id in v's supernode
  std::int64_t congest_rounds = 0;       // real rounds this MA round cost
};

/// `edge_values(e, y_u_side, y_v_side)` returns the z-pair of a surviving
/// minor edge, exactly as in minoragg::Network::round.
///
/// The contraction partition (parts, supernode leaders, surviving-edge
/// list) comes from `engine`'s cached RoundPlan — drivers that execute many
/// rounds against recurring contraction patterns (Theorem 17 schedules)
/// skip the per-round DSU. The engine must wrap the same graph as `net`.
[[nodiscard]] CompiledRoundResult execute_ma_round(
    CongestNetwork& net, minoragg::RoundEngine& engine, const std::vector<bool>& contract,
    std::span<const std::int64_t> node_input, PartwiseOp consensus_op,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t,
                                                              std::int64_t)>& edge_values,
    PartwiseOp aggregate_op);

/// Convenience overload with a throwaway engine (single-shot rounds).
[[nodiscard]] CompiledRoundResult execute_ma_round(
    CongestNetwork& net, const std::vector<bool>& contract,
    std::span<const std::int64_t> node_input, PartwiseOp consensus_op,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t,
                                                              std::int64_t)>& edge_values,
    PartwiseOp aggregate_op);

struct CompiledBoruvkaResult {
  std::vector<EdgeId> tree;
  std::int64_t congest_rounds = 0;  // REAL total, message-level
  int ma_rounds = 0;                // Borůvka iterations executed
};

/// Borůvka MST executed entirely through compiled Minor-Aggregation rounds
/// on the CONGEST network (costs as external int64 values; ties by id).
[[nodiscard]] CompiledBoruvkaResult compiled_boruvka(const WeightedGraph& g,
                                                     std::span<const std::int64_t> cost);

}  // namespace umc::congest
