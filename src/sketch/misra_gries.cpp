#include "sketch/misra_gries.hpp"

#include <algorithm>

namespace umc {

void MisraGries::add(Key key, Weight w) {
  UMC_ASSERT(w >= 0);
  if (w == 0) return;
  total_ += w;
  auto it = std::lower_bound(items_.begin(), items_.end(), key,
                             [](const Item& a, Key k) { return a.key < k; });
  if (it != items_.end() && it->key == key) {
    it->count += w;
  } else {
    items_.insert(it, Item{key, w});
  }
  reduce();
}

void MisraGries::reduce() {
  while (static_cast<int>(items_.size()) > capacity_) {
    // Subtract the smallest counter from everyone; drop the zeros. Total
    // decrement across the sketch's lifetime is <= W/(capacity+1) per key.
    Weight delta = items_.front().count;
    for (const Item& it : items_) delta = std::min(delta, it.count);
    std::vector<Item> kept;
    kept.reserve(items_.size());
    for (Item it : items_) {
      it.count -= delta;
      if (it.count > 0) kept.push_back(it);
    }
    items_ = std::move(kept);
  }
}

MisraGries MisraGries::merge(MisraGries a, const MisraGries& b) {
  UMC_ASSERT_MSG(a.capacity_ == b.capacity_, "merging sketches of different capacity");
  std::vector<Item> merged;
  merged.reserve(a.items_.size() + b.items_.size());
  std::size_t i = 0, j = 0;
  while (i < a.items_.size() || j < b.items_.size()) {
    if (j == b.items_.size() || (i < a.items_.size() && a.items_[i].key < b.items_[j].key)) {
      merged.push_back(a.items_[i++]);
    } else if (i == a.items_.size() || b.items_[j].key < a.items_[i].key) {
      merged.push_back(b.items_[j++]);
    } else {
      merged.push_back(Item{a.items_[i].key, a.items_[i].count + b.items_[j].count});
      ++i;
      ++j;
    }
  }
  a.items_ = std::move(merged);
  a.total_ += b.total_;
  a.reduce();
  return a;
}

Weight MisraGries::estimate(Key key) const {
  const auto it = std::lower_bound(items_.begin(), items_.end(), key,
                                   [](const Item& a, Key k) { return a.key < k; });
  return (it != items_.end() && it->key == key) ? it->count : 0;
}

std::vector<MisraGries::Key> MisraGries::heavy_hitters() const {
  std::vector<Key> out;
  for (const Item& it : items_) {
    // est > W/h  <=>  est * h > W (exact in integers).
    if (it.count * capacity_ > total_) out.push_back(it.key);
  }
  return out;
}

}  // namespace umc
