#include "tree/centroid.hpp"

#include <algorithm>

namespace umc {

NodeId largest_component_after_removal(const RootedTree& t, NodeId v) {
  NodeId largest = t.n() - t.subtree_size(v);  // the "above" component
  for (const NodeId c : t.children(v)) largest = std::max(largest, t.subtree_size(c));
  return largest;
}

NodeId find_centroid(const RootedTree& t) {
  for (const NodeId v : t.preorder()) {
    if (largest_component_after_removal(t, v) <= t.n() / 2) return v;
  }
  UMC_ASSERT_MSG(false, "every tree has a centroid (Fact 41)");
  return kNoNode;
}

}  // namespace umc
