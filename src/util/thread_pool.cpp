#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "util/assert.hpp"

namespace umc {

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::configured_threads() {
  static const int value = [] {
    int t = 0;
    if (const char* env = std::getenv("UMC_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) t = static_cast<int>(parsed);
    }
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    if (t <= 0) t = 1;
    return t > 64 ? 64 : t;
  }();
  return value;
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int want) {
  // Caller holds mu_.
  while (static_cast<int>(threads_.size()) < want) {
    const int id = static_cast<int>(threads_.size());
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

namespace {
// Set while a thread executes a pool job body. Detects nested run() calls,
// which would deadlock on run_mu_ instead of tripping a state assert.
thread_local bool tls_in_pool_job = false;
// Depth of SequentialScope guards on this thread; > 0 forces run() inline.
thread_local int tls_sequential_depth = 0;
// 0 on non-worker threads, worker id + 1 on pool workers.
thread_local int tls_pool_index = 0;
}  // namespace

ThreadPool::SequentialScope::SequentialScope() { ++tls_sequential_depth; }

ThreadPool::SequentialScope::~SequentialScope() { --tls_sequential_depth; }

int ThreadPool::current_index() { return tls_pool_index; }

void ThreadPool::drain(std::uint64_t gen) {
  for (;;) {
    std::size_t i;
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A worker can stall between waking and arriving here; by then its
      // generation may have completed and a newer run() begun. Re-check the
      // generation at every pop (and re-read job_ under the same lock) so a
      // stale worker never executes a dead callable or steals the new
      // generation's indices.
      if (generation_ != gen || next_ >= total_) return;
      i = next_++;
      job = job_;
    }
    tls_in_pool_job = true;
    (*job)(i);
    tls_in_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Between the pop and this decrement, run(gen) is still blocked on
      // remaining_ > 0, so generation_ cannot have advanced: the decrement
      // always targets our own generation.
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(int id) {
  tls_pool_index = id + 1;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || (generation_ != seen && id < allowed_workers_); });
      if (stop_) return;
      seen = generation_;
    }
    drain(seen);
  }
}

void ThreadPool::run(std::size_t count, int width,
                     const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (width <= 1 || count == 1 || tls_sequential_depth > 0) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  UMC_ASSERT_MSG(!tls_in_pool_job, "ThreadPool::run must not be nested");
  // Serializes distinct submitting threads (e.g. two Networks driven from
  // different host threads sharing global()): one run owns the generation
  // state at a time; the next submitter blocks here until it is released.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    UMC_ASSERT_MSG(job_ == nullptr, "generation state leaked from a previous run");
    ensure_workers(width - 1);
    job_ = &job;
    next_ = 0;
    total_ = count;
    remaining_ = count;
    allowed_workers_ = width - 1;
    gen = ++generation_;
  }
  work_cv_.notify_all();
  drain(gen);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    allowed_workers_ = 0;
  }
}

}  // namespace umc
