# Empty dependencies file for test_minoragg.
# This may be replaced when dependencies are built.
