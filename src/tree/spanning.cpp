#include "tree/spanning.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/dsu.hpp"

namespace umc {

std::vector<EdgeId> bfs_spanning_tree(const WeightedGraph& g, NodeId root) {
  UMC_ASSERT(root >= 0 && root < g.n());
  std::vector<bool> seen(static_cast<std::size_t>(g.n()), false);
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.n()) - 1);
  std::queue<NodeId> q;
  seen[static_cast<std::size_t>(root)] = true;
  q.push(root);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const AdjEntry& a : g.adj(v)) {
      if (seen[static_cast<std::size_t>(a.to)]) continue;
      seen[static_cast<std::size_t>(a.to)] = true;
      tree.push_back(a.edge);
      q.push(a.to);
    }
  }
  UMC_ASSERT_MSG(static_cast<NodeId>(tree.size()) == g.n() - 1, "graph must be connected");
  return tree;
}

std::vector<EdgeId> kruskal_mst(const WeightedGraph& g, std::span<const double> cost) {
  UMC_ASSERT(static_cast<EdgeId>(cost.size()) == g.m());
  std::vector<EdgeId> order(static_cast<std::size_t>(g.m()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&cost](EdgeId a, EdgeId b) {
    const double ca = cost[static_cast<std::size_t>(a)];
    const double cb = cost[static_cast<std::size_t>(b)];
    return ca != cb ? ca < cb : a < b;
  });
  Dsu dsu(g.n());
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.n()) - 1);
  for (const EdgeId e : order) {
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  }
  UMC_ASSERT_MSG(static_cast<NodeId>(tree.size()) == g.n() - 1, "graph must be connected");
  return tree;
}

std::vector<EdgeId> kruskal_mst(const WeightedGraph& g) {
  std::vector<double> cost(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e)
    cost[static_cast<std::size_t>(e)] = static_cast<double>(g.edge(e).w);
  return kruskal_mst(g, cost);
}

std::vector<EdgeId> wilson_random_spanning_tree(const WeightedGraph& g, Rng& rng) {
  const NodeId n = g.n();
  UMC_ASSERT(n >= 1);
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  std::vector<EdgeId> next_edge(static_cast<std::size_t>(n), kNoEdge);
  in_tree[0] = true;
  std::vector<EdgeId> tree;
  for (NodeId start = 1; start < n; ++start) {
    if (in_tree[static_cast<std::size_t>(start)]) continue;
    // Random walk from `start` until hitting the tree, recording last exits.
    NodeId v = start;
    while (!in_tree[static_cast<std::size_t>(v)]) {
      const auto adj = g.adj(v);
      UMC_ASSERT_MSG(!adj.empty(), "graph must be connected");
      const AdjEntry& a = adj[static_cast<std::size_t>(rng.next_below(adj.size()))];
      next_edge[static_cast<std::size_t>(v)] = a.edge;
      v = a.to;
    }
    // Retrace the loop-erased walk and add it to the tree.
    v = start;
    while (!in_tree[static_cast<std::size_t>(v)]) {
      in_tree[static_cast<std::size_t>(v)] = true;
      const EdgeId e = next_edge[static_cast<std::size_t>(v)];
      tree.push_back(e);
      v = g.edge(e).other(v);
    }
  }
  return tree;
}

}  // namespace umc
