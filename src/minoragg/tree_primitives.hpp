#pragma once

// Deterministic tree primitives of Appendix A / Lemma 16:
//   * heavy-light subtree and ancestor sums (Lemma 46),
//   * deterministic heavy-light construction via star-merging (Lemma 47 /
//     Theorem 48),
//   * centroid finding (Lemma 42).
//
// Subtree/ancestor sums are implemented literally: HL-chains of equal
// HL-depth are processed deepest-first; within one depth all chains are
// node-disjoint and their Lemma 45 path sums run simultaneously
// (Corollary 11 — the ledger takes the max across chains).
//
// The HL construction runs the real Lemma 47 merging schedule (part graph,
// deterministic star-merging with real Cole-Vishkin rounds, joiner→receiver
// merges) and charges each iteration's within-part relabeling at the
// Lemma 46 cost; the labels themselves equal the reference construction's
// (the lemma's invariant pins them up to heavy-tie-breaking, which both
// sides break identically).

#include <span>
#include <vector>

#include "minoragg/ledger.hpp"
#include "minoragg/path_sums.hpp"
#include "sketch/aggregators.hpp"
#include "tree/hld.hpp"
#include "tree/rooted_tree.hpp"

namespace umc::minoragg {

/// The HL-chains (maximal heavy paths) of the decomposition, grouped by
/// HL-depth; each chain lists its nodes top-to-bottom. Bookkeeping only.
[[nodiscard]] std::vector<std::vector<std::vector<NodeId>>> chains_by_hl_depth(
    const RootedTree& t, const HeavyLightDecomposition& hld);

/// Lemma 46 (subtree sums): s_v = fold of input over desc(v).
template <Aggregator A>
std::vector<typename A::value_type> hl_subtree_sums(
    const RootedTree& t, const HeavyLightDecomposition& hld,
    std::span<const typename A::value_type> input, Ledger& ledger) {
  using V = typename A::value_type;
  UMC_ASSERT(static_cast<NodeId>(input.size()) == t.n());
  const auto chains = chains_by_hl_depth(t, hld);
  std::vector<V> s(input.begin(), input.end());  // filled deepest-first
  for (int d = static_cast<int>(chains.size()) - 1; d >= 0; --d) {
    Ledger level;  // chains at one depth run simultaneously (Cor. 11)
    std::vector<Ledger> chain_ledgers;
    for (const std::vector<NodeId>& chain : chains[static_cast<std::size_t>(d)]) {
      // x_v = input_v ⊕ (already-computed sums of non-heavy children).
      std::vector<V> x;
      x.reserve(chain.size());
      for (const NodeId v : chain) {
        V acc = input[static_cast<std::size_t>(v)];
        for (const NodeId c : t.children(v)) {
          if (hld.chain_head(c) == c)  // non-heavy child: starts its own chain
            acc = A::merge(std::move(acc), s[static_cast<std::size_t>(c)]);
        }
        x.push_back(std::move(acc));
      }
      Ledger cl;
      cl.charge(1);  // the x_v initialization round (edge-local pass)
      std::vector<V> suf = path_suffix_sums<A>(std::span<const V>(x), cl);
      for (std::size_t i = 0; i < chain.size(); ++i)
        s[static_cast<std::size_t>(chain[i])] = std::move(suf[i]);
      chain_ledgers.push_back(std::move(cl));
    }
    level.charge_parallel(chain_ledgers);
    ledger.charge_sequential(level);
  }
  return s;
}

/// Lemma 46 (ancestor sums): p_v = fold of input over anc(v) (v included).
template <Aggregator A>
std::vector<typename A::value_type> hl_ancestor_sums(
    const RootedTree& t, const HeavyLightDecomposition& hld,
    std::span<const typename A::value_type> input, Ledger& ledger) {
  using V = typename A::value_type;
  UMC_ASSERT(static_cast<NodeId>(input.size()) == t.n());
  const auto chains = chains_by_hl_depth(t, hld);
  std::vector<V> p(static_cast<std::size_t>(t.n()), A::identity());
  for (std::size_t d = 0; d < chains.size(); ++d) {
    Ledger level;
    std::vector<Ledger> chain_ledgers;
    for (const std::vector<NodeId>& chain : chains[d]) {
      // Carry = ancestor sum of the chain head's parent (shallower depth,
      // already computed).
      const NodeId head = chain.front();
      const NodeId above = t.parent(head);
      std::vector<V> x;
      x.reserve(chain.size());
      for (std::size_t i = 0; i < chain.size(); ++i) {
        V val = input[static_cast<std::size_t>(chain[i])];
        if (i == 0 && above != kNoNode)
          val = A::merge(p[static_cast<std::size_t>(above)], std::move(val));
        x.push_back(std::move(val));
      }
      Ledger cl;
      cl.charge(1);
      std::vector<V> pre = path_prefix_sums<A>(std::span<const V>(x), cl);
      for (std::size_t i = 0; i < chain.size(); ++i)
        p[static_cast<std::size_t>(chain[i])] = std::move(pre[i]);
      chain_ledgers.push_back(std::move(cl));
    }
    level.charge_parallel(chain_ledgers);
    ledger.charge_sequential(level);
  }
  return p;
}

/// Lemma 47 / Theorem 48: deterministic heavy-light construction. Runs the
/// real merging schedule (star merges over the part graph) for round
/// accounting and returns the decomposition. Counters:
/// "hl_merge_iterations", "cv_iterations".
[[nodiscard]] HeavyLightDecomposition hl_construct(const RootedTree& t, Ledger& ledger);

/// Lemma 42: centroid via one subtree-sum plus two constant rounds.
[[nodiscard]] NodeId find_centroid_ma(const RootedTree& t, const HeavyLightDecomposition& hld,
                                      Ledger& ledger);

/// Theorem 48: orient an UNROOTED tree toward `root` and build the rooted
/// structure. Runs the real merging schedule — each part marks an ARBITRARY
/// adjacent outgoing edge (2-cycles possible, which the Cole-Vishkin star
/// merging tolerates), joiners merge into receivers, and each iteration
/// pays the orientation-fix + relabel cost of the proof. Counter:
/// "orient_merge_iterations".
[[nodiscard]] RootedTree orient_tree(const WeightedGraph& g, std::span<const EdgeId> tree_edges,
                                     NodeId root, Ledger& ledger);

}  // namespace umc::minoragg
