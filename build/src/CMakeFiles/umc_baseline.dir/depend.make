# Empty dependencies file for umc_baseline.
# This may be replaced when dependencies are built.
