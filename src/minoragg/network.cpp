#include "minoragg/network.hpp"

namespace umc::minoragg {

std::vector<NodeId> Network::supernodes(const std::vector<bool>& contract) const {
  const WeightedGraph& g = *g_;
  UMC_ASSERT(static_cast<EdgeId>(contract.size()) == g.m());
  Dsu dsu(g.n());
  for (EdgeId e = 0; e < g.m(); ++e)
    if (contract[static_cast<std::size_t>(e)]) dsu.unite(g.edge(e).u, g.edge(e).v);
  // Supernode id := smallest node id it contains (stable, locally computable).
  std::vector<NodeId> smallest(static_cast<std::size_t>(g.n()), kNoNode);
  for (NodeId v = 0; v < g.n(); ++v) {
    NodeId& slot = smallest[static_cast<std::size_t>(dsu.find(v))];
    if (slot == kNoNode) slot = v;  // ids scanned in increasing order
  }
  std::vector<NodeId> out(static_cast<std::size_t>(g.n()));
  for (NodeId v = 0; v < g.n(); ++v)
    out[static_cast<std::size_t>(v)] = smallest[static_cast<std::size_t>(dsu.find(v))];
  return out;
}

}  // namespace umc::minoragg
