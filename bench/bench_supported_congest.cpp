// Experiment E18 (Theorem 1, bullet 2 proxy): the supported-CONGEST target
// Õ(SQ(G)) with known topology. SQ(G) is estimated empirically as the
// worst measured part-wise-aggregation cost over several partitions; the
// estimate separates families exactly as shortcut quality does:
// expanders ~ polylog-ish, grids ~ √n, paths/dumbbells ~ D.

#include "bench_common.hpp"
#include "congest/compile.hpp"
#include "graph/properties.hpp"

namespace umc {
namespace {

void run_sq(benchmark::State& state, const WeightedGraph& g) {
  std::int64_t sq = 0;
  for (auto _ : state) {
    sq = congest::estimate_shortcut_quality(g, 3, 7);
    benchmark::DoNotOptimize(sq);
  }
  state.counters["n"] = g.n();
  state.counters["D"] = approx_diameter(g);
  state.counters["sq_estimate"] = static_cast<double>(sq);
  state.counters["sq_over_sqrtN"] =
      static_cast<double>(sq) / __builtin_sqrt(static_cast<double>(g.n()));
}

void BM_SqExpander(benchmark::State& state) {
  Rng rng(3);
  run_sq(state, ring_expander(static_cast<NodeId>(state.range(0)), 3, rng));
}
void BM_SqGrid(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  run_sq(state, grid_graph(side, side));
}
void BM_SqPath(benchmark::State& state) {
  run_sq(state, path_graph(static_cast<NodeId>(state.range(0))));
}

BENCHMARK(BM_SqExpander)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqGrid)->Arg(16)->Arg(32)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqPath)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
