// Experiment E8 (Theorem 12): tree packing.
//
// Reports the number of trees (Θ(log^2 n) after sampling), whether the
// Karger-sampling route was taken, and — the theorem's whp guarantee — the
// fraction of seeds for which some tree 2-respects the true min-cut.

#include "baseline/stoer_wagner.hpp"
#include "bench_common.hpp"
#include "mincut/tree_packing.hpp"

namespace umc {
namespace {

void run_packing(benchmark::State& state, const WeightedGraph& g) {
  const baseline::GlobalMinCut cut = baseline::stoer_wagner(g);
  std::vector<bool> in_side(static_cast<std::size_t>(g.n()), false);
  for (const NodeId v : cut.side) in_side[static_cast<std::size_t>(v)] = true;

  int successes = 0;
  const int seeds = 8;
  std::int64_t trees = 0, sampled = 0, rounds = 0;
  for (auto _ : state) {
    successes = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng rng(100 + static_cast<std::uint64_t>(s));
      minoragg::Ledger ledger;
      const mincut::TreePacking packing = mincut::tree_packing(g, rng, ledger);
      trees = static_cast<std::int64_t>(packing.trees.size());
      sampled = packing.sampled ? 1 : 0;
      rounds = ledger.rounds();
      int best = g.n();
      for (const auto& tree : packing.trees) {
        int crossing = 0;
        for (const EdgeId e : tree)
          crossing += in_side[static_cast<std::size_t>(g.edge(e).u)] !=
                              in_side[static_cast<std::size_t>(g.edge(e).v)]
                          ? 1
                          : 0;
        best = std::min(best, crossing);
      }
      if (best <= 2) ++successes;
    }
    benchmark::DoNotOptimize(successes);
  }
  state.counters["n"] = g.n();
  state.counters["num_trees"] = static_cast<double>(trees);
  state.counters["sampled_route"] = static_cast<double>(sampled);
  state.counters["ma_rounds"] = static_cast<double>(rounds);
  state.counters["two_respect_success_rate"] =
      static_cast<double>(successes) / static_cast<double>(seeds);
}

void BM_PackingSparse(benchmark::State& state) {
  run_packing(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 6.0, 21));
}

void BM_PackingDense(benchmark::State& state) {
  // High min-cut value: exercises the Karger-sampling route (case B).
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(23);
  WeightedGraph g = complete_graph(n);
  randomize_weights(g, 50, 100, rng);
  run_packing(state, g);
}

BENCHMARK(BM_PackingSparse)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PackingDense)->Arg(16)->Arg(24)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
