// Deep validation of the Section 7.1 interest machinery: the Lemma 32
// lists are compared against a brute-force evaluation of Definition 29
// (CrossCov computed from scratch), and the structural Lemmas 28 and 30
// are checked on adversarially weighted instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/interest.hpp"
#include "tree/rooted_tree.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

StarInstance spider_instance(const WeightedGraph& g, int k, NodeId len) {
  StarInstance inst;
  inst.graph = g;
  inst.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
  inst.origin.assign(static_cast<std::size_t>(g.m()), kNoEdge);
  inst.root = 0;
  for (int i = 0; i < k; ++i) {
    std::vector<NodeId> nodes;
    std::vector<EdgeId> edges;
    for (NodeId j = 0; j < len; ++j) {
      nodes.push_back(1 + static_cast<NodeId>(i) * len + j);
      edges.push_back(static_cast<EdgeId>(i) * len + j);
      inst.origin[static_cast<std::size_t>(edges.back())] = edges.back();
    }
    inst.path_nodes.push_back(std::move(nodes));
    inst.path_edges.push_back(std::move(edges));
  }
  return inst;
}

/// Brute-force CrossCov(e, f): weight of cross-edges whose tree path covers
/// both (Definition in Section 7.1).
struct CrossOracle {
  const StarInstance* inst;
  RootedTree t;
  std::vector<int> of;

  explicit CrossOracle(const StarInstance& i)
      : inst(&i),
        t(i.graph, flatten(i), i.root),
        of(path_of_node(i)) {}

  static std::vector<EdgeId> flatten(const StarInstance& i) {
    std::vector<EdgeId> tree;
    for (const auto& pe : i.path_edges) tree.insert(tree.end(), pe.begin(), pe.end());
    return tree;
  }

  [[nodiscard]] bool is_cross(EdgeId ge) const {
    const Edge& ed = inst->graph.edge(ge);
    const int pu = of[static_cast<std::size_t>(ed.u)];
    const int pv = of[static_cast<std::size_t>(ed.v)];
    return pu >= 0 && pv >= 0 && pu != pv;
  }

  [[nodiscard]] Weight cross_cov(EdgeId e, EdgeId f) const {
    Weight total = 0;
    for (EdgeId ge = 0; ge < inst->graph.m(); ++ge) {
      if (!is_cross(ge)) continue;
      if (edge_covers(t, ge, e) && edge_covers(t, ge, f)) total += inst->graph.edge(ge).w;
    }
    return total;
  }

  /// Definition 29 with alpha as a fraction num/den.
  [[nodiscard]] bool path_interested(int i, int j, Weight num, Weight den) const {
    for (const EdgeId e : inst->path_edges[static_cast<std::size_t>(i)]) {
      const Weight ce = cross_cov(e, e);
      for (const EdgeId f : inst->path_edges[static_cast<std::size_t>(j)]) {
        if (den * cross_cov(e, f) > num * ce) return true;
      }
    }
    return false;
  }
};

TEST(InterestDeep, ListsContainAllStronglyInterestedAndOnlyWeakly) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const int k = 3 + static_cast<int>(rng.next_below(4));
    const NodeId len = 3 + static_cast<NodeId>(rng.next_below(4));
    WeightedGraph g = spider(k, len, 5 * k * static_cast<EdgeId>(len), rng);
    randomize_weights(g, 1, 30, rng);
    const StarInstance inst = spider_instance(g, k, len);
    const CrossOracle oracle(inst);

    minoragg::Ledger ledger;
    const auto lists = interest_lists(inst, ledger);
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        if (i == j) continue;
        const bool listed = std::binary_search(lists[static_cast<std::size_t>(i)].begin(),
                                               lists[static_cast<std::size_t>(i)].end(), j);
        // Requirement (1): strong (1/2) interest must be listed.
        if (oracle.path_interested(i, j, 1, 2)) {
          EXPECT_TRUE(listed) << "strong interest " << i << "->" << j << " missing";
        }
        // Requirement (2): anything listed is at least weakly (1/5)
        // interested.
        if (listed) {
          EXPECT_TRUE(oracle.path_interested(i, j, 1, 5))
              << "listed " << i << "->" << j << " below weak interest";
        }
      }
    }
  }
}

TEST(InterestDeep, Lemma28OptimalPairsAreMutuallyStronglyInterested) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const int k = 3;
    const NodeId len = 4;
    WeightedGraph g = spider(k, len, 40, rng);
    randomize_weights(g, 1, 20, rng);
    const StarInstance inst = spider_instance(g, k, len);
    const CrossOracle oracle(inst);

    // Best 1-respecting cut and best cross-path pair, brute force.
    Weight best1 = kInfWeight;
    for (const auto& pe : inst.path_edges)
      for (const EdgeId e : pe) best1 = std::min(best1, reference_cut_pair(oracle.t, e, e));
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        for (const EdgeId e : inst.path_edges[static_cast<std::size_t>(i)]) {
          for (const EdgeId f : inst.path_edges[static_cast<std::size_t>(j)]) {
            if (reference_cut_pair(oracle.t, e, f) >= best1) continue;
            // Lemma 28: CrossCov(e,f) > CrossCov(e)/2 and symmetrically.
            EXPECT_GT(2 * oracle.cross_cov(e, f), oracle.cross_cov(e, e));
            EXPECT_GT(2 * oracle.cross_cov(e, f), oracle.cross_cov(f, f));
          }
        }
      }
    }
  }
}

TEST(InterestDeep, Lemma30ListsStayLogarithmicUnderAdversarialWeights) {
  // Adversarial: path 0 showers geometrically decaying weight over many
  // paths, the worst case for the Subclaim-1 potential argument.
  Rng rng(7);
  const int k = 20;
  const NodeId len = 10;
  WeightedGraph g = spider(k, len, 0, rng);
  Weight w = 1 << 20;
  for (int j = 1; j < k; ++j) {
    // Edge from deeper and deeper nodes of path 0 to path j.
    const NodeId u = 1 + std::min<NodeId>(len - 1, static_cast<NodeId>(j % len));
    const NodeId v = 1 + static_cast<NodeId>(j) * len + 2;
    g.add_edge(u, v, std::max<Weight>(1, w));
    w /= 2;
  }
  const StarInstance inst = spider_instance(g, k, len);
  minoragg::Ledger ledger;
  const auto lists = interest_lists(inst, ledger);
  const std::size_t bound =
      static_cast<std::size_t>(10 * (ceil_log2(static_cast<std::uint64_t>(g.n())) + 1));
  for (const auto& l : lists) EXPECT_LE(l.size(), bound);
}

}  // namespace
}  // namespace umc::mincut
