file(REMOVE_RECURSE
  "CMakeFiles/umc_util.dir/util/rng.cpp.o"
  "CMakeFiles/umc_util.dir/util/rng.cpp.o.d"
  "libumc_util.a"
  "libumc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
