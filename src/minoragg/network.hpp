#pragma once

// The Minor-Aggregation model simulator (Definition 9).
//
// A Network wraps a communication graph and executes rounds consisting of
// the three model steps:
//   1. Contraction — each edge picks contract/keep; contracting defines the
//      minor G' whose supernodes are the contracted components.
//   2. Consensus — each node contributes x_v; every node of supernode s
//      learns y_s = ⊕_{v∈s} x_v.
//   3. Aggregation — each non-self-loop edge of G', knowing y of both its
//      supernode endpoints, chooses a value for each endpoint; every node of
//      supernode s learns ⊗ of its incident edges' values.
//
// Folds use a deterministic order (increasing node/edge id) so runs are
// reproducible; all shipped aggregators are either order-independent or
// mergeable sketches whose guarantees are order-independent (Def. 7).
//
// Algorithm code must communicate ONLY through rounds; per-node/per-edge
// closures may read node-local inputs and prior round outputs.

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/dsu.hpp"
#include "graph/graph.hpp"
#include "minoragg/ledger.hpp"
#include "sketch/aggregators.hpp"

namespace umc::minoragg {

/// Outcome of one round, indexed by node id of the host graph.
template <typename Y, typename Z>
struct RoundResult {
  /// y_{s(v)}: the consensus aggregate of v's supernode.
  std::vector<Y> consensus;
  /// ⊗-aggregate of incident E' edge values of v's supernode.
  std::vector<Z> aggregate;
  /// Supernode id of v (smallest node id contained in the supernode).
  std::vector<NodeId> supernode;
};

class Network {
 public:
  /// The caller keeps `g` alive for the Network's lifetime. Rounds charge
  /// to `ledger`.
  Network(const WeightedGraph& g, Ledger& ledger) : g_(&g), ledger_(&ledger) {}

  [[nodiscard]] const WeightedGraph& graph() const { return *g_; }
  [[nodiscard]] Ledger& ledger() { return *ledger_; }

  /// One full Definition 9 round.
  ///
  /// `contract[e]`  — the contraction choice c_e of edge e.
  /// `node_input`   — x_v per node (consensus step).
  /// `edge_values`  — z-choice of each surviving minor edge: given the host
  ///                  edge id and the consensus values (y_u_side, y_v_side)
  ///                  of the supernodes containing edge.u / edge.v, returns
  ///                  {z_for_u_side, z_for_v_side}.
  template <Aggregator CAgg, Aggregator XAgg>
  RoundResult<typename CAgg::value_type, typename XAgg::value_type> round(
      const std::vector<bool>& contract, std::span<const typename CAgg::value_type> node_input,
      const std::function<std::pair<typename XAgg::value_type, typename XAgg::value_type>(
          EdgeId, const typename CAgg::value_type&, const typename CAgg::value_type&)>&
          edge_values) const {
    using Y = typename CAgg::value_type;
    using Z = typename XAgg::value_type;
    const WeightedGraph& g = *g_;
    UMC_ASSERT(static_cast<EdgeId>(contract.size()) == g.m());
    UMC_ASSERT(static_cast<NodeId>(node_input.size()) == g.n());

    RoundResult<Y, Z> out;
    out.supernode = supernodes(contract);

    // Consensus step: fold x_v per supernode in node-id order.
    std::vector<Y> y(static_cast<std::size_t>(g.n()), CAgg::identity());
    for (NodeId v = 0; v < g.n(); ++v) {
      const std::size_t s = static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)]);
      y[s] = CAgg::merge(std::move(y[s]), node_input[static_cast<std::size_t>(v)]);
    }
    out.consensus.resize(static_cast<std::size_t>(g.n()));
    for (NodeId v = 0; v < g.n(); ++v)
      out.consensus[static_cast<std::size_t>(v)] =
          y[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];

    // Aggregation step over surviving minor edges.
    std::vector<Z> z(static_cast<std::size_t>(g.n()), XAgg::identity());
    for (EdgeId e = 0; e < g.m(); ++e) {
      const Edge& ed = g.edge(e);
      const NodeId su = out.supernode[static_cast<std::size_t>(ed.u)];
      const NodeId sv = out.supernode[static_cast<std::size_t>(ed.v)];
      if (su == sv) continue;  // self-loop in G', removed
      auto [zu, zv] = edge_values(e, out.consensus[static_cast<std::size_t>(ed.u)],
                                  out.consensus[static_cast<std::size_t>(ed.v)]);
      z[static_cast<std::size_t>(su)] = XAgg::merge(std::move(z[static_cast<std::size_t>(su)]), std::move(zu));
      z[static_cast<std::size_t>(sv)] = XAgg::merge(std::move(z[static_cast<std::size_t>(sv)]), std::move(zv));
    }
    out.aggregate.resize(static_cast<std::size_t>(g.n()));
    for (NodeId v = 0; v < g.n(); ++v)
      out.aggregate[static_cast<std::size_t>(v)] =
          z[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];

    ledger_->charge(1);
    return out;
  }

  // ---- Common one-round idioms -------------------------------------------

  /// Contract ALL edges and aggregate everyone's input: each node learns
  /// ⊕_v x_v. One round. Requires a connected graph.
  template <Aggregator CAgg>
  typename CAgg::value_type all_aggregate(
      std::span<const typename CAgg::value_type> node_input) const;

  /// Per-component aggregate, where components are induced by `in_part`
  /// edges: each node learns the aggregate over its part. One round.
  template <Aggregator CAgg>
  std::vector<typename CAgg::value_type> part_aggregate(
      const std::vector<bool>& in_part,
      std::span<const typename CAgg::value_type> node_input) const;

  /// One aggregation-only round: every node learns ⊗ over its incident
  /// edges of z-values computed edge-locally (no contraction).
  template <Aggregator XAgg>
  std::vector<typename XAgg::value_type> neighborhood_aggregate(
      const std::function<std::pair<typename XAgg::value_type, typename XAgg::value_type>(EdgeId)>&
          edge_values) const;

  /// Supernode ids (smallest contained node id) for a contraction choice;
  /// free of charge (bookkeeping shared by round()).
  [[nodiscard]] std::vector<NodeId> supernodes(const std::vector<bool>& contract) const;

 private:
  const WeightedGraph* g_;
  Ledger* ledger_;
};

// ---- template implementations ---------------------------------------------

template <Aggregator CAgg>
typename CAgg::value_type Network::all_aggregate(
    std::span<const typename CAgg::value_type> node_input) const {
  using Y = typename CAgg::value_type;
  const std::vector<bool> contract(static_cast<std::size_t>(g_->m()), true);
  const auto res = round<CAgg, OrAgg>(
      contract, node_input, [](EdgeId, const Y&, const Y&) {
        return std::pair<std::uint8_t, std::uint8_t>{0, 0};
      });
  // Connectivity check: a single supernode means everyone saw every input.
  for (const NodeId s : res.supernode)
    UMC_ASSERT_MSG(s == res.supernode[0], "all_aggregate requires a connected graph");
  return res.consensus.empty() ? CAgg::identity() : res.consensus[0];
}

template <Aggregator CAgg>
std::vector<typename CAgg::value_type> Network::part_aggregate(
    const std::vector<bool>& in_part,
    std::span<const typename CAgg::value_type> node_input) const {
  using Y = typename CAgg::value_type;
  const auto res = round<CAgg, OrAgg>(
      in_part, node_input, [](EdgeId, const Y&, const Y&) {
        return std::pair<std::uint8_t, std::uint8_t>{0, 0};
      });
  return res.consensus;
}

template <Aggregator XAgg>
std::vector<typename XAgg::value_type> Network::neighborhood_aggregate(
    const std::function<std::pair<typename XAgg::value_type, typename XAgg::value_type>(EdgeId)>&
        edge_values) const {
  const std::vector<bool> contract(static_cast<std::size_t>(g_->m()), false);
  const std::vector<std::uint8_t> node_input(static_cast<std::size_t>(g_->n()), 0);
  const auto res = round<OrAgg, XAgg>(contract, node_input,
                                      [&edge_values](EdgeId e, const std::uint8_t&,
                                                     const std::uint8_t&) { return edge_values(e); });
  return res.aggregate;
}

}  // namespace umc::minoragg
