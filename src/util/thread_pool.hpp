#pragma once

// A small shared worker pool for deterministic chunk-parallel folds.
//
// The pool executes index-space jobs: run(count, width, job) invokes
// job(0), ..., job(count-1) exactly once each, spread over up to `width`
// threads (the calling thread participates), and returns only when every
// invocation has finished. Chunk *scheduling* is nondeterministic, so
// callers must make their outputs independent of execution order — the
// round-execution engine does this by giving each chunk a disjoint output
// range and merging per-chunk results in chunk order (the Def. 7
// determinism contract: results are bit-identical at any thread count).
//
// Sizing: the process-wide pool (`ThreadPool::global()`) lazily grows to
// the widest request it has served. `configured_threads()` reads the
// UMC_THREADS environment knob (default: hardware concurrency) and is the
// width used by engines unless overridden per-engine. Jobs must not call
// back into run() (no nested parallelism).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace umc {

struct TaskSession;       // scheduler state of one TaskGraph session (in .cpp)
struct TaskSessionTask;   // one queued task

class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool. Thread-safe.
  static ThreadPool& global();

  /// The UMC_THREADS knob: a positive integer, defaulting to
  /// std::thread::hardware_concurrency() (at least 1), clamped to [1, 64].
  /// Read once at first use.
  static int configured_threads();

  /// Runs job(i) for every i in [0, count) across up to `width` threads
  /// (including the caller) and blocks until all invocations finished.
  /// width <= 1 or count <= 1 degrades to a plain sequential loop on the
  /// calling thread. Must not be called from inside a running job; calls
  /// from distinct threads are serialized (one run owns the pool at a time).
  void run(std::size_t count, int width, const std::function<void(std::size_t)>& job);

  /// Number of worker threads currently spawned (excludes callers).
  [[nodiscard]] int workers() const;

  /// While alive on a thread, run() calls from that thread degrade to the
  /// inline sequential loop regardless of the requested width. Outer
  /// parallel drivers (e.g. the per-tree fan-out in exact_mincut) install
  /// one inside each job so width-parallel library code they call nests
  /// safely — outputs are width-independent by the Def. 7 contract, so
  /// forcing the inner width to 1 changes nothing observable.
  class SequentialScope {
   public:
    SequentialScope();
    ~SequentialScope();
    SequentialScope(const SequentialScope&) = delete;
    SequentialScope& operator=(const SequentialScope&) = delete;
  };

  /// Stable index of the calling thread within the pool: 0 for any thread
  /// that is not a pool worker (submitters included), worker id + 1 for
  /// workers. Observability only — do not branch algorithm logic on it.
  [[nodiscard]] static int current_index();

  friend class TaskGraph;

 private:
  void ensure_workers(int want);
  void worker_loop(int id);
  /// Pops and executes indices of generation `gen`, returning as soon as the
  /// pool has moved past it (stale wake-ups execute nothing).
  void drain(std::uint64_t gen);

  std::mutex run_mu_;  // serializes external run() submitters
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a generation
  std::condition_variable done_cv_;   // run() waits here for completion
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // State of the current generation (guarded by mu_; indices handed out
  // under the lock — chunk bodies are coarse, so contention is negligible
  // and the simple locking scheme is trivially race-free).
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t next_ = 0;       // next index to hand out
  std::size_t total_ = 0;      // indices in this generation
  std::size_t remaining_ = 0;  // invocations not yet finished
  int allowed_workers_ = 0;    // workers with id < allowed participate
};

// ---------------------------------------------------------------------------
// Dynamic fork-join task sessions on the shared pool.
//
// run() executes a FIXED index space; the min-cut solve needs the opposite:
// work discovered while working (trees emitted by the packing producer,
// star/path-to-path items discovered inside each tree's solve). A TaskGraph
// session is a region in which tasks may be spawned into TaskGroups and are
// executed by up to `width` threads (the opening thread participates, via
// one pool generation of `width` session-worker jobs).
//
// Scheduling is a chunked-claim FIFO: spawned tasks enter one session-wide
// queue, and any session thread without work claims the oldest unclaimed
// task under the session lock (tasks are coarse — a star solve, a tree
// solve — so the lock is never hot). Joins are help-first: a thread waiting
// on a TaskGroup first executes that group's still-queued tasks (which
// keeps help stacks as shallow as plain recursion), then any other queued
// task, and only blocks when every remaining task of its group is already
// running on another thread.
//
// Determinism is the same contract as run(): which thread executes a task
// is nondeterministic, so tasks must write to disjoint result slots and the
// joiner must merge slots in a fixed (spawn-index) order. Under that
// discipline outputs — including every Ledger counter — are bit-identical
// at any width; docs/PARALLELISM.md states the argument for the min-cut
// task graph.
//
// Session workers run under a SequentialScope, so width-parallel library
// code called from a task (tree primitives, round-engine folds) degrades to
// its inline loop instead of deadlocking on the pool.
//
// Degradation to plain inline execution (spawn == direct call, join ==
// no-op) happens when width <= 1, when the caller is already inside a pool
// job or SequentialScope, or when a session is already active on this
// thread; TaskGroups constructed outside any session likewise run their
// spawns inline. Inline execution IS the sequential reference order, so
// the width-1 ledger is by construction the sequential one.
//
// A task that throws: the first exception is captured, the session drains
// (remaining tasks still run), and session() rethrows it on the opening
// thread — matching the sequential behavior seen by exact_mincut_guarded.

class TaskGroup;

class TaskGraph {
 public:
  struct Stats {
    std::int64_t spawned = 0;  // tasks queued through TaskGroup::spawn
    std::int64_t helped = 0;   // tasks claimed by a join from ANOTHER group's queue
    int width = 1;             // session width after degradation rules
  };

  /// Runs root() plus every task transitively spawned into TaskGroups
  /// created inside it, on up to `width` threads; returns when all tasks
  /// finished. See the degradation rules above.
  static Stats session(int width, const std::function<void()>& root);

  /// True while the calling thread executes inside a (non-degraded)
  /// session. Observability only.
  [[nodiscard]] static bool in_session();
};

/// A fork-join handle: spawn N tasks, join, then merge their slots in spawn
/// order. Owned by exactly one task (or the session root); spawn/join must
/// be called from the owning thread only, and the group must be joined
/// before destruction (asserted).
class TaskGroup {
 public:
  TaskGroup();
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Queues `fn` for execution by the session (runs it inline immediately
  /// when no session is active — the sequential reference order).
  void spawn(std::function<void()> fn);

  /// Executes/helps until every task spawned into this group has finished.
  /// Reusable: spawn/join cycles are allowed.
  void join();

 private:
  friend struct TaskSession;
  TaskSession* session_;                       // null => inline mode
  std::size_t outstanding_ = 0;                // spawned, not yet finished
  std::deque<TaskSessionTask*> local_queue_;   // this group's unclaimed tasks
};

}  // namespace umc
