#pragma once

// Heavy-light decomposition (Definition 2) with the HL-info labeling scheme
// and the Fact 4 LCA-from-labels function.
//
// This is the centralized reference implementation; the deterministic
// Minor-Aggregation construction (Appendix A, Lemma 47 / Theorem 48) lives
// in minoragg/tree_primitives and is tested against this one.

#include <vector>

#include "tree/rooted_tree.hpp"

namespace umc {

/// One light edge on a root-to-v path, as stored in HL-info: T-depth and id
/// of both endpoints (Section 3.1, "HL-info").
struct LightEdge {
  NodeId top = kNoNode;
  NodeId bottom = kNoNode;
  int top_depth = -1;
  int bottom_depth = -1;

  friend bool operator==(const LightEdge&, const LightEdge&) = default;
};

/// The HL-info of a node: its T-depth plus the ordered (by depth) list of
/// light edges on its root path. O(log n) entries by Fact 3.
struct HlInfo {
  int depth = -1;
  std::vector<LightEdge> light_edges;
};

class HeavyLightDecomposition {
 public:
  explicit HeavyLightDecomposition(const RootedTree& t);

  [[nodiscard]] const RootedTree& tree() const { return *t_; }

  /// Heavy/light label per tree edge (Definition 2).
  [[nodiscard]] bool is_heavy(EdgeId e) const;

  /// Number of light edges on the root-to-v path.
  [[nodiscard]] int hl_depth(NodeId v) const { return hl_depth_[static_cast<std::size_t>(v)]; }
  /// HL-depth of a tree edge = HL-depth(bottom(e)).
  [[nodiscard]] int hl_depth_edge(EdgeId e) const { return hl_depth(t_->bottom(e)); }
  [[nodiscard]] int max_hl_depth() const { return max_hl_depth_; }

  [[nodiscard]] const HlInfo& info(NodeId v) const { return info_[static_cast<std::size_t>(v)]; }

  /// Head (top-most node) of the heavy chain containing v.
  [[nodiscard]] NodeId chain_head(NodeId v) const { return head_[static_cast<std::size_t>(v)]; }

  /// Identifier of the HL-path containing tree edge e: the id of its
  /// top-most light edge, or kNoEdge for the root heavy chain.
  [[nodiscard]] EdgeId hl_path_id(EdgeId e) const;

  /// Fact 4: LCA of u and v computed ONLY from (id, HL-info) pairs. The
  /// implementation never touches the tree; tests verify it against the
  /// binary-lifting oracle.
  [[nodiscard]] static NodeId lca_from_info(NodeId u, const HlInfo& iu, NodeId v,
                                            const HlInfo& iv);

  /// Depth of lca_from_info's result, from labels only.
  [[nodiscard]] static int lca_depth_from_info(const HlInfo& iu, const HlInfo& iv);

 private:
  const RootedTree* t_;
  std::vector<NodeId> heavy_child_;  // kNoNode for leaves
  std::vector<int> hl_depth_;
  std::vector<NodeId> head_;
  std::vector<HlInfo> info_;
  int max_hl_depth_ = 0;
};

}  // namespace umc
