// Parameterized property sweeps: the paper's end-to-end guarantees checked
// across (graph family x size x seed) grids.
//
//   * exact_mincut == Stoer-Wagner (Theorem 1 correctness),
//   * two_respecting_mincut == the naive pair-enumeration oracle
//     (Theorem 40 correctness),
//   * determinism of the 2-respecting solver (identical transcript),
//   * packing trees are spanning trees and the winning pair is achievable.

#include <gtest/gtest.h>

#include <string>

#include "baseline/naive_two_respect.hpp"
#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/two_respect.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

enum class Family { kGrid, kPlanar, kErdosRenyi, kDumbbell, kKTree, kSparseTreePlus };

struct SweepParam {
  Family family;
  NodeId size;  // family-specific scale knob
  std::uint64_t seed;
};

std::string family_name(Family f) {
  switch (f) {
    case Family::kGrid: return "grid";
    case Family::kPlanar: return "planar";
    case Family::kErdosRenyi: return "er";
    case Family::kDumbbell: return "dumbbell";
    case Family::kKTree: return "ktree";
    case Family::kSparseTreePlus: return "treeplus";
  }
  return "?";
}

WeightedGraph build(const SweepParam& p) {
  Rng rng(p.seed);
  WeightedGraph g;
  switch (p.family) {
    case Family::kGrid:
      g = grid_graph(p.size, p.size);
      break;
    case Family::kPlanar:
      g = random_planar_grid(p.size, p.size, 0.5, rng);
      break;
    case Family::kErdosRenyi:
      g = erdos_renyi_connected(p.size * p.size, 6.0 / (p.size * p.size - 1.0), rng);
      break;
    case Family::kDumbbell:
      g = dumbbell(p.size, 2 * p.size);
      break;
    case Family::kKTree:
      g = ktree(p.size * p.size, 3, rng);
      break;
    case Family::kSparseTreePlus:
      g = random_connected(p.size * p.size, p.size * p.size + p.size, rng);
      break;
  }
  randomize_weights(g, 1, 30, rng);
  return g;
}

class MinCutSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MinCutSweep, ExactMatchesStoerWagner) {
  const WeightedGraph g = build(GetParam());
  Rng rng(GetParam().seed ^ 0x5555);
  minoragg::Ledger ledger;
  PackingConfig config;
  config.max_trees = 16;
  const ExactMinCutResult got = exact_mincut(g, rng, ledger, config);
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value)
      << family_name(GetParam().family) << " size " << GetParam().size << " seed "
      << GetParam().seed;
}

TEST_P(MinCutSweep, TwoRespectingMatchesOracleOnBfsTree) {
  const WeightedGraph g = build(GetParam());
  if (g.n() > 120) GTEST_SKIP() << "quadratic oracle too large";
  const auto tree = bfs_spanning_tree(g, 0);
  minoragg::Ledger ledger;
  const CutResult got = two_respecting_mincut(g, tree, 0, ledger);
  const RootedTree t(g, tree, 0);
  EXPECT_EQ(got.value, baseline::naive_two_respecting(t).value)
      << family_name(GetParam().family) << " size " << GetParam().size;
}

TEST_P(MinCutSweep, TwoRespectingIsDeterministic) {
  const WeightedGraph g = build(GetParam());
  const auto tree = bfs_spanning_tree(g, 0);
  minoragg::Ledger l1, l2;
  const CutResult a = two_respecting_mincut(g, tree, 0, l1);
  const CutResult b = two_respecting_mincut(g, tree, 0, l2);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.e, b.e);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(l1.rounds(), l2.rounds());
}

std::vector<SweepParam> sweep_grid() {
  std::vector<SweepParam> out;
  for (const Family f : {Family::kGrid, Family::kPlanar, Family::kErdosRenyi,
                         Family::kDumbbell, Family::kKTree, Family::kSparseTreePlus}) {
    for (const NodeId size : {4, 6, 8}) {
      for (const std::uint64_t seed : {1ULL, 2ULL}) out.push_back({f, size, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Families, MinCutSweep, ::testing::ValuesIn(sweep_grid()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return family_name(info.param.family) + "_s" +
                                  std::to_string(info.param.size) + "_r" +
                                  std::to_string(info.param.seed);
                         });

// Spanning-tree sweep: the 2-respecting solver must agree with the oracle
// for MANY different trees of the same graph, not just BFS trees.
class TreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeSweep, RandomSpanningTreesAgreeWithOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  WeightedGraph g = erdos_renyi_connected(24, 0.25, rng);
  randomize_weights(g, 1, 20, rng);
  const auto tree = wilson_random_spanning_tree(g, rng);
  const NodeId root = static_cast<NodeId>(rng.next_below(24));
  minoragg::Ledger ledger;
  const CutResult got = two_respecting_mincut(g, tree, root, ledger);
  const RootedTree t(g, tree, root);
  EXPECT_EQ(got.value, baseline::naive_two_respecting(t).value) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace umc::mincut
