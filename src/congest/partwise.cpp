#include "congest/partwise.hpp"

#include <algorithm>
#include <limits>

#include "graph/minors.hpp"
#include "graph/properties.hpp"
#include "obs/metrics.hpp"
#include "tree/rooted_tree.hpp"
#include "tree/spanning.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::congest {

namespace {

#if !defined(UMC_OBS_DISABLED)
struct PartwiseMetrics {
  obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "umc_partwise_cache_hits_total", {},
      "Part-wise aggregations served from a built PartwiseCache (per-part "
      "BFS skipped).");
  obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "umc_partwise_cache_misses_total", {},
      "Part-wise aggregations that had to build partition state (cold cache "
      "or none supplied).");
};

PartwiseMetrics& partwise_metrics() {
  static PartwiseMetrics m;
  return m;
}
#endif

/// Eccentricity of `root` inside the sub-network induced by one part.
/// `dist` is n-sized scratch that is -1 at every part member on entry and is
/// restored before returning (only visited entries are touched), so one
/// buffer serves every part of the partition — this BFS used to allocate an
/// O(n) vector per part per aggregation, the layer's hottest loop.
int internal_eccentricity(const CsrAdjacency& csr, std::span<const int> part, int pid,
                          NodeId root, std::vector<int>& dist, std::vector<NodeId>& bfs_q) {
  bfs_q.clear();
  dist[static_cast<std::size_t>(root)] = 0;
  bfs_q.push_back(root);
  int ecc = 0;
  for (std::size_t head = 0; head < bfs_q.size(); ++head) {
    const NodeId v = bfs_q[head];
    ecc = std::max(ecc, dist[static_cast<std::size_t>(v)]);
    for (const AdjEntry& a : csr.row(v)) {
      if (part[static_cast<std::size_t>(a.to)] != pid) continue;
      if (dist[static_cast<std::size_t>(a.to)] != -1) continue;
      dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(v)] + 1;
      bfs_q.push_back(a.to);
    }
  }
  for (const NodeId v : bfs_q) dist[static_cast<std::size_t>(v)] = -1;
  return ecc;
}

/// Build the input-independent partition state: member CSR, small/large
/// split, worst small-part eccentricity.
void build_partition_state(const WeightedGraph& g, std::span<const int> part, int k,
                           PartwiseCache& c) {
  const NodeId n = g.n();
  c.num_parts = k;
  c.member_begin.assign(static_cast<std::size_t>(k) + 1, 0);
  for (const int p : part) {
    if (p >= 0) ++c.member_begin[static_cast<std::size_t>(p) + 1];
  }
  for (int p = 0; p < k; ++p)
    c.member_begin[static_cast<std::size_t>(p) + 1] += c.member_begin[static_cast<std::size_t>(p)];
  c.members.resize(static_cast<std::size_t>(c.member_begin[static_cast<std::size_t>(k)]));
  {
    std::vector<std::int64_t> cur(c.member_begin.begin(), c.member_begin.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      const int p = part[static_cast<std::size_t>(v)];
      if (p >= 0) c.members[static_cast<std::size_t>(cur[static_cast<std::size_t>(p)]++)] = v;
    }
  }

  // Small/large threshold: 2(ceil(sqrt(n))+1), matching the carve partition's
  // size cap so canonical partitions ride the node-disjoint small-part route.
  const NodeId threshold = 2 * (static_cast<NodeId>(isqrt(static_cast<std::uint64_t>(n))) + 1);

  const CsrAdjacency& csr = g.csr();
  c.large_index.assign(static_cast<std::size_t>(k), -1);
  c.num_large = 0;
  c.small_rounds = 0;
  c.ecc_dist.assign(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> bfs_q;
  for (int p = 0; p < k; ++p) {
    const std::int64_t b = c.member_begin[static_cast<std::size_t>(p)];
    const std::int64_t e = c.member_begin[static_cast<std::size_t>(p) + 1];
    if (b == e) continue;
    if (e - b > threshold) {
      c.large_index[static_cast<std::size_t>(p)] = c.num_large++;
      continue;
    }
    const int ecc = internal_eccentricity(csr, part, p, c.members[static_cast<std::size_t>(b)],
                                          c.ecc_dist, bfs_q);
    c.small_rounds = std::max(c.small_rounds, static_cast<std::int64_t>(2 * ecc + 2));
  }
  c.large_built = false;
  c.built = true;
}

}  // namespace

PartwiseResult partwise_aggregate(CongestNetwork& net, std::span<const int> part,
                                  std::span<const std::int64_t> input, PartwiseOp op,
                                  PartwiseCache* cache) {
  const auto identity = [op]() {
    return op == PartwiseOp::kSum ? 0 : std::numeric_limits<std::int64_t>::max();
  };
  const auto fold = [op](std::int64_t a, std::int64_t b) {
    return op == PartwiseOp::kSum ? a + b : std::min(a, b);
  };
  const WeightedGraph& g = net.graph();
  const NodeId n = g.n();
  UMC_ASSERT(static_cast<NodeId>(part.size()) == n);
  UMC_ASSERT(static_cast<NodeId>(input.size()) == n);
  const std::int64_t start_rounds = net.rounds();

  PartwiseResult out;
  out.value.assign(static_cast<std::size_t>(n), identity());

  int k = 0;
  for (const int p : part) k = std::max(k, p + 1);
  out.num_parts = k;
  if (k == 0) return out;

  PartwiseCache local;
  PartwiseCache& c = cache != nullptr ? *cache : local;
#if !defined(UMC_OBS_DISABLED)
  (c.built ? partwise_metrics().hits : partwise_metrics().misses).inc();
#endif
  if (!c.built) {
    build_partition_state(g, part, k, c);
  } else {
    UMC_ASSERT_MSG(c.num_parts == k, "PartwiseCache reused across a different partition");
  }
  const auto part_members = [&c](int p) {
    return std::span<const NodeId>(
        c.members.data() + c.member_begin[static_cast<std::size_t>(p)],
        static_cast<std::size_t>(c.member_begin[static_cast<std::size_t>(p) + 1] -
                                 c.member_begin[static_cast<std::size_t>(p)]));
  };

  // Per-call totals (input- and op-dependent; scratch, no allocation warm).
  c.total.assign(static_cast<std::size_t>(k), identity());
  for (NodeId v = 0; v < n; ++v) {
    const int p = part[static_cast<std::size_t>(v)];
    if (p >= 0)
      c.total[static_cast<std::size_t>(p)] =
          fold(c.total[static_cast<std::size_t>(p)], input[static_cast<std::size_t>(v)]);
  }

  // ---- Small-part phase: node-disjoint internal convergecast+broadcast.
  // Each part aggregates over its own internal BFS tree; since parts are
  // node-disjoint the schedules coexist, so the cost is the worst part's
  // 2*eccentricity + 2 (cached — the schedule itself is simulated host-side).
  for (int p = 0; p < k; ++p) {
    if (c.large_index[static_cast<std::size_t>(p)] >= 0) continue;
    for (const NodeId v : part_members(p))
      out.value[static_cast<std::size_t>(v)] = c.total[static_cast<std::size_t>(p)];
  }
  net.charge_idle(c.small_rounds);
  out.small_phase_rounds = c.small_rounds;
  out.num_large_parts = c.num_large;

  // ---- Large-part phase: pipelined convergecast + broadcast on the global
  // BFS tree, one (part, value) message per edge per round, greedy schedule.
  if (c.num_large > 0) {
    const std::int64_t large_start = net.rounds();
    const std::size_t L = static_cast<std::size_t>(c.num_large);
    const std::size_t nL = static_cast<std::size_t>(n) * L;

    // Topology: the global BFS tree and the per-node demand table. On a
    // fault-free network the flood is deterministic, so a cached tree plus
    // charge_idle(bfs_rounds) is round-for-round identical to rebuilding;
    // with an injector attached the flood must really run (faults may
    // reshape the tree and must see the real traffic), so nothing is reused.
    if (!c.large_built || net.fault_injector() != nullptr) {
      const std::int64_t bfs_start = net.rounds();
      c.bfs = build_bfs_tree(net, 0);
      c.bfs_rounds = net.rounds() - bfs_start;
      // contains[v*L + l]: subtree(v) holds a member of large part l.
      c.contains.assign(nL, 0);
      for (int p = 0; p < k; ++p) {
        const int l = c.large_index[static_cast<std::size_t>(p)];
        if (l < 0) continue;
        for (const NodeId u : part_members(p)) {
          for (NodeId x = u; x != kNoNode; x = c.bfs.parent[static_cast<std::size_t>(x)]) {
            char& flag = c.contains[static_cast<std::size_t>(x) * L + static_cast<std::size_t>(l)];
            if (flag) break;
            flag = 1;
          }
        }
      }
      c.need.assign(nL, 0);
      for (NodeId v = 0; v < n; ++v) {
        for (const NodeId ch : c.bfs.children[static_cast<std::size_t>(v)]) {
          for (std::size_t l = 0; l < L; ++l)
            c.need[static_cast<std::size_t>(v) * L + l] +=
                c.contains[static_cast<std::size_t>(ch) * L + l] ? 1 : 0;
        }
      }
      c.large_built = net.fault_injector() == nullptr;
    } else {
      net.charge_idle(c.bfs_rounds);
    }
    const BfsTree& bfs = c.bfs;
    const auto at = [L](NodeId v, std::size_t l) { return static_cast<std::size_t>(v) * L + l; };

    // Upward convergecast.
    c.have.assign(nL, identity());
    c.got.assign(nL, 0);
    c.sent.assign(nL, 0);
    for (NodeId v = 0; v < n; ++v) {
      const int p = part[static_cast<std::size_t>(v)];
      if (p >= 0 && c.large_index[static_cast<std::size_t>(p)] >= 0) {
        auto& acc = c.have[at(v, static_cast<std::size_t>(c.large_index[static_cast<std::size_t>(p)]))];
        acc = fold(acc, input[static_cast<std::size_t>(v)]);
      }
    }
    int root_done = 0;
    for (std::size_t l = 0; l < L; ++l)
      if (c.got[at(bfs.root, l)] == c.need[at(bfs.root, l)]) ++root_done;
    // Event-driven schedule: pending[v] counts the parts v holds complete
    // and unsent; only those nodes are visited per round. A node sends its
    // lowest ready part — exactly what an all-node ascending sweep would
    // send — so the per-round message sets (and the round count) match the
    // sweep message for message.
    c.pending.assign(static_cast<std::size_t>(n), 0);
    c.in_active.assign(static_cast<std::size_t>(n), 0);
    c.active.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (v == bfs.root) continue;
      for (std::size_t l = 0; l < L; ++l)
        if (c.contains[at(v, l)] && c.need[at(v, l)] == 0) ++c.pending[static_cast<std::size_t>(v)];
      if (c.pending[static_cast<std::size_t>(v)] > 0) {
        c.in_active[static_cast<std::size_t>(v)] = 1;
        c.active.push_back(v);
      }
    }
    while (root_done < c.num_large) {
      c.round_senders.clear();
      std::size_t w = 0;
      for (const NodeId v : c.active) {
        for (std::size_t l = 0; l < L; ++l) {
          if (c.sent[at(v, l)]) continue;
          if (!c.contains[at(v, l)]) continue;
          if (c.got[at(v, l)] != c.need[at(v, l)]) continue;
          net.send(v, bfs.parent_edge[static_cast<std::size_t>(v)],
                   static_cast<std::int64_t>(l), c.have[at(v, l)]);
          c.sent[at(v, l)] = 1;
          --c.pending[static_cast<std::size_t>(v)];
          c.round_senders.push_back(v);
          break;  // one message up per round
        }
        if (c.pending[static_cast<std::size_t>(v)] > 0)
          c.active[w++] = v;
        else
          c.in_active[static_cast<std::size_t>(v)] = 0;
      }
      c.active.resize(w);
      net.end_round();
      // Receive: only this round's senders can have an occupied slot, and
      // each sender's parent reads it directly (fold is commutative, so
      // child order vs the old inbox order is immaterial). A newly
      // completed part makes the parent pending for a later round.
      for (const NodeId ch : c.round_senders) {
        const std::size_t s = net.slot_from(bfs.parent_edge[static_cast<std::size_t>(ch)], ch);
        if (!net.slot_has(s)) continue;
        const NodeId v = bfs.parent[static_cast<std::size_t>(ch)];
        const auto l = static_cast<std::size_t>(net.slot_payload(s));
        c.have[at(v, l)] = fold(c.have[at(v, l)], net.slot_aux(s));
        ++c.got[at(v, l)];
        if (c.got[at(v, l)] != c.need[at(v, l)]) continue;
        if (v == bfs.root) {
          ++root_done;
        } else if (c.contains[at(v, l)] && !c.sent[at(v, l)]) {
          ++c.pending[static_cast<std::size_t>(v)];
          if (!c.in_active[static_cast<std::size_t>(v)]) {
            c.in_active[static_cast<std::size_t>(v)] = 1;
            c.active.push_back(v);
          }
        }
      }
    }

    // Downward pipelined broadcast of the totals.
    c.large_total.assign(L, 0);
    for (std::size_t l = 0; l < L; ++l) c.large_total[l] = c.have[at(bfs.root, l)];
    c.know.assign(nL, 0);
    for (std::size_t l = 0; l < L; ++l) c.know[at(bfs.root, l)] = 1;
    // forwarded[c*L + l]: c's parent already forwarded part l down to c
    // (every node is a child of exactly one parent, so child-node indexing
    // replaces the seed's per-(parent, child-position) nesting).
    c.forwarded.assign(nL, 0);
    std::int64_t remaining = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v == bfs.root) continue;
      for (std::size_t l = 0; l < L; ++l)
        if (c.contains[at(v, l)]) ++remaining;
    }
    // Event-driven mirror of the convergecast: pending[ch] counts parts the
    // parent already knows and ch still needs; only root's children start
    // sendable, and a node's children activate when it learns a part.
    c.pending.assign(static_cast<std::size_t>(n), 0);
    c.in_active.assign(static_cast<std::size_t>(n), 0);
    c.active.clear();
    for (const NodeId ch : bfs.children[static_cast<std::size_t>(bfs.root)]) {
      for (std::size_t l = 0; l < L; ++l)
        if (c.contains[at(ch, l)]) ++c.pending[static_cast<std::size_t>(ch)];
      if (c.pending[static_cast<std::size_t>(ch)] > 0) {
        c.in_active[static_cast<std::size_t>(ch)] = 1;
        c.active.push_back(ch);
      }
    }
    while (remaining > 0) {
      c.round_senders.clear();  // holds the child endpoints (the receivers)
      std::size_t w = 0;
      for (const NodeId ch : c.active) {
        const NodeId v = bfs.parent[static_cast<std::size_t>(ch)];
        for (std::size_t l = 0; l < L; ++l) {
          if (!c.know[at(v, l)]) continue;
          if (c.forwarded[at(ch, l)]) continue;
          if (!c.contains[at(ch, l)]) continue;
          net.send(v, bfs.parent_edge[static_cast<std::size_t>(ch)],
                   static_cast<std::int64_t>(l), c.large_total[l]);
          c.forwarded[at(ch, l)] = 1;
          --c.pending[static_cast<std::size_t>(ch)];
          c.round_senders.push_back(ch);
          break;  // one message per child edge per round
        }
        if (c.pending[static_cast<std::size_t>(ch)] > 0)
          c.active[w++] = ch;
        else
          c.in_active[static_cast<std::size_t>(ch)] = 0;
      }
      c.active.resize(w);
      net.end_round();
      for (const NodeId v : c.round_senders) {
        const std::size_t s = net.slot_from(bfs.parent_edge[static_cast<std::size_t>(v)],
                                            bfs.parent[static_cast<std::size_t>(v)]);
        if (!net.slot_has(s)) continue;
        const auto l = static_cast<std::size_t>(net.slot_payload(s));
        if (c.know[at(v, l)]) continue;
        c.know[at(v, l)] = 1;
        --remaining;
        for (const NodeId ch : bfs.children[static_cast<std::size_t>(v)]) {
          if (!c.contains[at(ch, l)]) continue;
          ++c.pending[static_cast<std::size_t>(ch)];
          if (!c.in_active[static_cast<std::size_t>(ch)]) {
            c.in_active[static_cast<std::size_t>(ch)] = 1;
            c.active.push_back(ch);
          }
        }
      }
    }
    for (int p = 0; p < k; ++p) {
      const int l = c.large_index[static_cast<std::size_t>(p)];
      if (l < 0) continue;
      for (const NodeId v : part_members(p))
        out.value[static_cast<std::size_t>(v)] = c.large_total[static_cast<std::size_t>(l)];
    }
    out.large_phase_rounds = net.rounds() - large_start;
  }

  out.rounds_used = net.rounds() - start_rounds;
  return out;
}

PartwiseResult partwise_aggregate(CongestNetwork& net, std::span<const int> part,
                                  std::span<const std::int64_t> input, PartwiseOp op) {
  return partwise_aggregate(net, part, input, op, nullptr);
}

std::vector<int> sqrt_carve_partition(const WeightedGraph& g, std::uint64_t seed) {
  const NodeId n = g.n();
  Rng rng(seed);
  const auto tree_edges = wilson_random_spanning_tree(g, rng);
  const RootedTree t(g, tree_edges, 0);
  const NodeId target = static_cast<NodeId>(isqrt(static_cast<std::uint64_t>(n))) + 1;

  std::vector<int> part(static_cast<std::size_t>(n), -1);
  // Bottom-up carve: pending cluster per node = itself plus children's
  // still-open clusters. Closing when the accumulated size reaches the
  // target keeps every part connected; child clusters that would push the
  // accumulator past 2x the target are closed on their own, capping part
  // sizes at 2*target (so all parts stay on the small-part route).
  std::vector<std::vector<NodeId>> pending(static_cast<std::size_t>(n));
  int next_part = 0;
  const auto close = [&part, &next_part](std::vector<NodeId>& cluster) {
    for (const NodeId x : cluster) part[static_cast<std::size_t>(x)] = next_part;
    ++next_part;
    cluster.clear();
  };
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    auto& acc = pending[static_cast<std::size_t>(v)];
    acc.push_back(v);
    for (const NodeId c : t.children(v)) {
      auto& pc = pending[static_cast<std::size_t>(c)];
      if (static_cast<NodeId>(acc.size() + pc.size()) > 2 * target) {
        close(pc);  // connected on its own (contains c)
      } else {
        acc.insert(acc.end(), pc.begin(), pc.end());
        pc.clear();
      }
      pc.shrink_to_fit();
    }
    if (static_cast<NodeId>(acc.size()) >= target || v == t.root()) close(acc);
  }
  return part;
}

}  // namespace umc::congest
