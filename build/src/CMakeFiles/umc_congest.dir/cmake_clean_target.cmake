file(REMOVE_RECURSE
  "libumc_congest.a"
)
