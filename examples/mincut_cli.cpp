// Command-line front end: exact min-cut of a weighted edge-list file.
//
//   $ ./example_mincut_cli <graph.txt> [--seed S] [--trees T] [--witness]
//                          [--self-check] [--trace out.json] [--metrics]
//
// File format (see graph/io.hpp):
//   <n>
//   <u> <v> <w>     # one line per edge, weight optional (defaults to 1)
//
// Prints the cut value, the defining tree edges, the round accounting, and
// (with --witness) the full bipartition and crossing edge list. With no
// file argument, generates a demo network and prints its edge list first.
//
// Ingestion is the untrusted path: unknown flags, malformed flag values,
// and malformed graph files exit 2 with a message on stderr (no aborts, no
// exceptions). --self-check runs the guarded pipeline: independent spot
// checks on the answer, degrading to the gather baseline with a printed
// diagnosis if they fail. Exit codes: 0 ok, 1 oracle mismatch, 2 bad input.
//
// --trace enables the span tracer and writes a Chrome trace_event JSON
// (open in Perfetto: https://ui.perfetto.dev). The traced run additionally
// drives compiled Borůvka over a lossy ReliableChannel (small graphs only)
// so the trace shows the compiled CONGEST sub-phases and ARQ retries.
// --metrics prints the typed metrics registry (Prometheus text) on stdout,
// with the Ledger's round accounting bridged in.

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "congest/compile.hpp"
#include "congest/compiled_network.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mincut/witness.hpp"
#include "obs/export.hpp"
#include "obs/ledger_bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/engine.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [graph.txt] [--seed S] [--trees T] [--witness] [--self-check]"
               " [--trace out.json] [--metrics]\n",
               argv0);
}

/// Strict integer flag value: entire token must parse, range-checked.
bool parse_flag_int(const char* tok, long long lo, long long hi, long long& out) {
  const char* last = tok + std::strlen(tok);
  const auto [ptr, ec] = std::from_chars(tok, last, out);
  return ec == std::errc{} && ptr == last && out >= lo && out <= hi;
}

struct Options {
  std::string path;
  std::string trace_path;
  std::uint64_t seed = 1;
  int max_trees = 16;
  bool want_witness = false;
  bool self_check = false;
  bool metrics = false;
};

/// Returns false (after printing the cause) on any malformed argv.
bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--seed") == 0 || std::strcmp(a, "--trees") == 0) {
      const bool is_seed = std::strcmp(a, "--seed") == 0;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a);
        return false;
      }
      long long v = 0;
      if (!parse_flag_int(argv[++i], is_seed ? 0 : 1, 1LL << 32, v)) {
        std::fprintf(stderr, "error: bad %s value '%s'\n", a, argv[i]);
        return false;
      }
      if (is_seed)
        opt.seed = static_cast<std::uint64_t>(v);
      else
        opt.max_trees = static_cast<int>(v);
    } else if (std::strcmp(a, "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace needs an output path\n");
        return false;
      }
      opt.trace_path = argv[++i];
      if (opt.trace_path.empty()) {
        std::fprintf(stderr, "error: --trace path must be non-empty\n");
        return false;
      }
    } else if (std::strcmp(a, "--witness") == 0) {
      opt.want_witness = true;
    } else if (std::strcmp(a, "--self-check") == 0) {
      opt.self_check = true;
    } else if (std::strcmp(a, "--metrics") == 0) {
      opt.metrics = true;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a);
      return false;
    } else if (!opt.path.empty()) {
      std::fprintf(stderr, "error: more than one input file ('%s' and '%s')\n",
                   opt.path.c_str(), a);
      return false;
    } else {
      opt.path = a;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umc;
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }

  WeightedGraph g;
  if (opt.path.empty()) {
    Rng demo_rng(7);
    g = erdos_renyi_connected(24, 0.2, demo_rng);
    randomize_weights(g, 1, 30, demo_rng);
    std::ostringstream os;
    write_edge_list(os, g);
    std::printf("no input file; demo network:\n%s\n", os.str().c_str());
  } else {
    // Ingestion through the service engine's load dispatch — the same parse
    // the daemon's LOAD handler runs (src/server/engine.hpp).
    Expected<WeightedGraph> parsed = server::load_graph_file(opt.path);
    if (!parsed) {
      std::fprintf(stderr, "error reading %s: %s\n", opt.path.c_str(),
                   parsed.error().to_string().c_str());
      return 2;
    }
    g = std::move(parsed.value());
  }
  if (const char* why = server::validate_graph(g)) {
    std::fprintf(stderr, "error: %s\n", why);
    return 2;
  }

  if (!opt.trace_path.empty()) obs::Tracer::global().set_enabled(true);

  server::LocalSolveOptions solve_opt;
  solve_opt.seed = opt.seed;
  solve_opt.max_trees = opt.max_trees;
  solve_opt.self_check = opt.self_check;
  server::LocalSolveOutcome outcome = server::run_local_solve(g, solve_opt);
  const mincut::GuardedMinCutResult& cut = outcome.guarded;
  minoragg::Ledger& ledger = outcome.ledger;
  const Weight reference = outcome.oracle;

  if (opt.self_check || cut.diagnosis.used_fallback)
    std::printf("self-check: %s\n", cut.diagnosis.to_string().c_str());
  std::printf("min-cut value: %lld  (oracle: %lld, %s)\n", static_cast<long long>(cut.value),
              static_cast<long long>(reference),
              cut.value == reference ? "match" : "MISMATCH");
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, opt.seed);
  std::printf("minor-aggregation rounds: %lld  |  D=%d  |  congest(general)=%lld  "
              "congest(excl-minor)=%lld\n",
              static_cast<long long>(cost.ma_rounds), cost.diameter,
              static_cast<long long>(cost.congest_rounds_general()),
              static_cast<long long>(cost.congest_rounds_excluded_minor()));

  if (opt.want_witness && !cut.diagnosis.used_fallback && cut.primary.e != kNoEdge) {
    // Materialize the cut against the winning packing tree.
    Rng replay(opt.seed);
    minoragg::Ledger scratch;
    mincut::PackingConfig config;
    config.max_trees = opt.max_trees;
    const mincut::TreePacking packing = mincut::tree_packing(g, replay, scratch, config);
    const RootedTree t(g, packing.trees[static_cast<std::size_t>(cut.primary.winning_tree)],
                       0);
    const mincut::CutWitness w = mincut::cut_witness(
        t, mincut::CutResult{cut.primary.value, cut.primary.e, cut.primary.f});
    std::printf("witness: one side = {");
    for (NodeId v = 0; v < g.n(); ++v)
      if (w.side[static_cast<std::size_t>(v)]) std::printf(" %d", v);
    std::printf(" }\ncrossing edges:");
    for (const EdgeId e : w.crossing)
      std::printf(" {%d,%d}w%lld", g.edge(e).u, g.edge(e).v,
                  static_cast<long long>(g.edge(e).w));
    std::printf("\nwitness value: %lld (%s)\n", static_cast<long long>(w.value),
                w.value == cut.primary.value ? "consistent" : "INCONSISTENT");
  }

  if (!opt.trace_path.empty()) {
    // Drive compiled Borůvka over a lossy ReliableChannel so the trace
    // shows the compiled CONGEST sub-phases and ARQ retry spans. Bounded to
    // small graphs: the compiled path is O(m) work per CONGEST round.
    if (g.n() <= 2048) {
      fault::FaultPlan plan;
      plan.seed = opt.seed;
      plan.drop_p = 0.05;
      fault::FaultModel model(g, plan);
      fault::ReliableChannel channel(g, &model);
      std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
      for (EdgeId e = 0; e < g.m(); ++e) cost[static_cast<std::size_t>(e)] = g.edge(e).w;
      const congest::CompiledBoruvkaResult demo = congest::compiled_boruvka(channel, cost);
      std::printf("traced compiled demo: %lld MA rounds, %lld lossy CONGEST rounds, "
                  "%lld retransmissions\n",
                  static_cast<long long>(demo.ma_rounds),
                  static_cast<long long>(demo.congest_rounds),
                  static_cast<long long>(channel.stats().retransmissions));
    }
    obs::Tracer& tracer = obs::Tracer::global();
    std::ofstream out(opt.trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write trace file '%s'\n", opt.trace_path.c_str());
      return 2;
    }
    const auto events = tracer.snapshot();
    obs::write_chrome_trace(out, events, tracer.dropped());
    std::printf("trace: %zu spans -> %s (load in https://ui.perfetto.dev)\n", events.size(),
                opt.trace_path.c_str());
  }

  if (opt.metrics) {
    obs::bridge_ledger(obs::MetricsRegistry::global(), ledger, "ma");
    obs::write_prometheus(std::cout, obs::MetricsRegistry::global());
  }
  return cut.value == reference ? 0 : 1;
}
