file(REMOVE_RECURSE
  "CMakeFiles/bench_star.dir/bench_star.cpp.o"
  "CMakeFiles/bench_star.dir/bench_star.cpp.o.d"
  "bench_star"
  "bench_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
