# Empty compiler generated dependencies file for umc_mincut.
# This may be replaced when dependencies are built.
