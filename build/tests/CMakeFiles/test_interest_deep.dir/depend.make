# Empty dependencies file for test_interest_deep.
# This may be replaced when dependencies are built.
