#include "graph/graph.hpp"

namespace umc {

NodeId WeightedGraph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

EdgeId WeightedGraph::add_edge(NodeId u, NodeId v, Weight w) {
  UMC_ASSERT(u >= 0 && u < n());
  UMC_ASSERT(v >= 0 && v < n());
  UMC_ASSERT_MSG(u != v, "self-loops are not representable");
  UMC_ASSERT_MSG(w > 0, "edge weights must be positive");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  adj_[static_cast<std::size_t>(u)].push_back(AdjEntry{v, id});
  adj_[static_cast<std::size_t>(v)].push_back(AdjEntry{u, id});
  return id;
}

Weight WeightedGraph::weighted_degree(NodeId v) const {
  Weight total = 0;
  for (const AdjEntry& a : adj(v)) total += edge(a.edge).w;
  return total;
}

Weight WeightedGraph::total_weight() const {
  Weight total = 0;
  for (const Edge& e : edges_) total += e.w;
  return total;
}

void WeightedGraph::set_weight(EdgeId e, Weight w) {
  UMC_ASSERT(e >= 0 && e < m());
  UMC_ASSERT_MSG(w > 0, "edge weights must be positive");
  edges_[static_cast<std::size_t>(e)].w = w;
}

}  // namespace umc
