file(REMOVE_RECURSE
  "CMakeFiles/example_datacenter_bottleneck.dir/datacenter_bottleneck.cpp.o"
  "CMakeFiles/example_datacenter_bottleneck.dir/datacenter_bottleneck.cpp.o.d"
  "example_datacenter_bottleneck"
  "example_datacenter_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacenter_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
