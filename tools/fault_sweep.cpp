// fault_sweep — CLI driver for the differential fault sweep.
//
// Runs the SolveSupervisor over the generator × fault-plan × ladder-tier
// matrix (src/fault/sweep.hpp), audits every answer against the fault-free
// Stoer–Wagner oracle, and prints the per-plan tier-hit table plus a
// machine-readable JSON record. Exit status is the audit: 0 when the matrix
// produced zero silent wrong answers, 1 otherwise — which is what the CI
// nightly job gates on.
//
// Usage: fault_sweep [--extended] [--seed N] [--threads N] [--json]
//   --extended   nightly matrix: every fault kind at every p, larger graphs
//   --seed N     base seed for generators, plans, and packings (default 1)
//   --threads N  thread width of each supervised solve (default 1)
//   --json       print ONLY the JSON record (for artifact collection)

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "fault/sweep.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--extended] [--seed N] [--threads N] [--json]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  umc::fault::SweepConfig cfg;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--extended") {
      cfg.extended = true;
    } else if (arg == "--json") {
      json_only = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      cfg.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      cfg.num_threads = std::atoi(argv[++i]);
      if (cfg.num_threads < 1) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  const umc::fault::SweepSummary summary = umc::fault::run_fault_sweep(cfg);
  if (json_only) {
    std::cout << summary.to_json() << '\n';
  } else {
    std::cout << (cfg.extended ? "extended" : "standard") << " fault sweep, seed " << cfg.seed
              << ":\n"
              << summary.table()
              << "retries=" << summary.total_retries
              << " tier_falls=" << summary.total_tier_falls
              << " checkpoint_replays=" << summary.total_checkpoint_replays << '\n';
  }
  if (summary.silent_wrong != 0) {
    std::cerr << "FAIL: " << summary.silent_wrong << " silent wrong answer(s)\n";
    for (const umc::fault::SweepOutcome& o : summary.outcomes)
      if (o.silent_wrong)
        std::cerr << "  " << o.generator << " x " << o.plan << " x " << to_string(o.entry_tier)
                  << ": value " << o.value << " vs oracle " << o.oracle << '\n';
    return 1;
  }
  return 0;
}
