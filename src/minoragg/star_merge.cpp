#include "minoragg/star_merge.hpp"

#include <array>

#include "minoragg/cole_vishkin.hpp"
#include "util/assert.hpp"

namespace umc::minoragg {

StarMergeResult star_merge(std::span<const int> out, Ledger& ledger) {
  const std::vector<int> color = cole_vishkin_3color(out, ledger);

  // One counting round: N_k = #{v in O : color k}; pick the most frequent.
  std::array<int, 3> count{0, 0, 0};
  int out_degree_one = 0;
  for (std::size_t v = 0; v < out.size(); ++v) {
    if (out[v] < 0) continue;
    ++out_degree_one;
    ++count[static_cast<std::size_t>(color[v])];
  }
  ledger.charge(1);
  int best = 0;
  for (int k = 1; k < 3; ++k)
    if (count[static_cast<std::size_t>(k)] > count[static_cast<std::size_t>(best)]) best = k;

  StarMergeResult res;
  res.out_degree_one = out_degree_one;
  res.is_joiner.assign(out.size(), false);
  for (std::size_t v = 0; v < out.size(); ++v) {
    if (out[v] >= 0 && color[v] == best) {
      res.is_joiner[v] = true;
      ++res.num_joiners;
    }
  }
  UMC_ASSERT_MSG(3 * res.num_joiners >= out_degree_one, "Lemma 44: |J| >= |O|/3");
  // Joiners point to receivers: adjacent nodes have different colors, and
  // all joiners share one color, so no joiner points at a joiner.
  for (std::size_t v = 0; v < out.size(); ++v)
    if (res.is_joiner[v]) UMC_ASSERT(!res.is_joiner[static_cast<std::size_t>(out[v])]);
  return res;
}

StarMergeResult random_star_merge(std::span<const int> out, Rng& rng, Ledger& ledger) {
  // One round: every part announces its coin; joiners point at receivers.
  ledger.charge(1);
  std::vector<bool> heads(out.size());
  for (std::size_t v = 0; v < out.size(); ++v) heads[v] = rng.next_bool(0.5);
  StarMergeResult res;
  res.is_joiner.assign(out.size(), false);
  for (std::size_t v = 0; v < out.size(); ++v) {
    if (out[v] < 0) continue;
    ++res.out_degree_one;
    if (heads[v] && !heads[static_cast<std::size_t>(out[v])]) {
      res.is_joiner[v] = true;
      ++res.num_joiners;
    }
  }
  return res;
}

}  // namespace umc::minoragg
