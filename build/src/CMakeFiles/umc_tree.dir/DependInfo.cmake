
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/centroid.cpp" "src/CMakeFiles/umc_tree.dir/tree/centroid.cpp.o" "gcc" "src/CMakeFiles/umc_tree.dir/tree/centroid.cpp.o.d"
  "/root/repo/src/tree/hld.cpp" "src/CMakeFiles/umc_tree.dir/tree/hld.cpp.o" "gcc" "src/CMakeFiles/umc_tree.dir/tree/hld.cpp.o.d"
  "/root/repo/src/tree/lca.cpp" "src/CMakeFiles/umc_tree.dir/tree/lca.cpp.o" "gcc" "src/CMakeFiles/umc_tree.dir/tree/lca.cpp.o.d"
  "/root/repo/src/tree/rooted_tree.cpp" "src/CMakeFiles/umc_tree.dir/tree/rooted_tree.cpp.o" "gcc" "src/CMakeFiles/umc_tree.dir/tree/rooted_tree.cpp.o.d"
  "/root/repo/src/tree/spanning.cpp" "src/CMakeFiles/umc_tree.dir/tree/spanning.cpp.o" "gcc" "src/CMakeFiles/umc_tree.dir/tree/spanning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
