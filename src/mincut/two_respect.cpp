#include "mincut/two_respect.hpp"

#include <algorithm>

#include "mincut/cut_values.hpp"
#include "mincut/subtree_instance.hpp"
#include "minoragg/tree_primitives.hpp"
#include "minoragg/virtual_graph.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace umc::mincut {

namespace {

/// Constant-size instances are solved by direct evaluation (a constant
/// number of Definition 9 rounds in the model).
CutResult solve_base(const Instance& inst, minoragg::Ledger& ledger) {
  ledger.charge(1);
  const RootedTree t(inst.graph, inst.tree_edges, inst.root);
  CutResult best;
  for (std::size_t i = 0; i < inst.tree_edges.size(); ++i) {
    const EdgeId e = inst.tree_edges[i];
    const EdgeId oe = inst.origin[static_cast<std::size_t>(e)];
    if (oe == kNoEdge) continue;
    best.absorb(CutResult{reference_cut_pair(t, e, e), oe, kNoEdge});
    for (std::size_t j = i + 1; j < inst.tree_edges.size(); ++j) {
      const EdgeId f = inst.tree_edges[j];
      const EdgeId of = inst.origin[static_cast<std::size_t>(f)];
      if (of == kNoEdge) continue;
      best.absorb(CutResult{reference_cut_pair(t, e, f), oe, of});
    }
  }
  return best;
}

CutResult solve(const Instance& inst, minoragg::Ledger& parent, int depth) {
  parent.set_max("max_general_depth", depth);
  // Logical clock: the centroid-recursion depth.
  UMC_OBS_SPAN_VAR_L(obs_solve, "mincut/general_solve", "mincut", depth);
  obs_solve.arg("n", inst.graph.n());
  if (inst.graph.n() <= 3) return solve_base(inst, parent);

  minoragg::Ledger local;
  // Root anywhere, find the centroid (Lemma 42), then treat the tree as a
  // subtree instance rooted at the centroid.
  const RootedTree t0(inst.graph, inst.tree_edges, inst.root);
  const HeavyLightDecomposition hld0 = minoragg::hl_construct(t0, local);
  const NodeId c = minoragg::find_centroid_ma(t0, hld0, local);

  CutResult best = between_subtree_mincut(inst.graph, inst.tree_edges, c, inst.origin,
                                          inst.is_virtual, local);
  minoragg::settle_virtual_execution(parent, local, inst.beta());

  // Lemma 43: private cut-equivalent branch instances H_i, each with its
  // own virtual centroid (node 0); node-disjoint, so scheduled together.
  // Build every branch instance first (cheap remaps), then solve them as
  // TaskGraph tasks: each writes a private slot, and the merge below runs
  // in child order — the same absorb/charge_parallel sequence the inline
  // path produces, so counters stay bit-identical at any width.
  const RootedTree tc(inst.graph, inst.tree_edges, c);
  std::vector<Instance> subs;
  for (const NodeId child : tc.children(c)) {
    // Collect the branch below `child` (including child).
    std::vector<NodeId> map(static_cast<std::size_t>(inst.graph.n()), 0);  // outside -> c_i
    std::vector<NodeId> members;
    for (const NodeId v : tc.preorder()) {
      if (!tc.is_ancestor(child, v)) continue;
      map[static_cast<std::size_t>(v)] = static_cast<NodeId>(1 + members.size());
      members.push_back(v);
    }
    RemappedGraph rg =
        remap_graph(inst.graph, inst.origin, map, static_cast<NodeId>(1 + members.size()));
    Instance sub;
    sub.graph = std::move(rg.graph);
    sub.origin = std::move(rg.origin);
    sub.root = 0;  // the virtual centroid; re-rooted at the next centroid anyway
    sub.is_virtual.assign(static_cast<std::size_t>(sub.graph.n()), false);
    sub.is_virtual[0] = true;
    for (std::size_t i = 0; i < members.size(); ++i)
      sub.is_virtual[i + 1] = inst.is_virtual[static_cast<std::size_t>(members[i])];
    for (const EdgeId e : inst.tree_edges) {
      const EdgeId mapped = rg.edge_map[static_cast<std::size_t>(e)];
      if (mapped != kNoEdge) sub.tree_edges.push_back(mapped);
    }
    UMC_ASSERT(static_cast<NodeId>(sub.tree_edges.size()) == sub.graph.n() - 1);
    subs.push_back(std::move(sub));
  }

  std::vector<CutResult> branch_best(subs.size());
  std::vector<minoragg::Ledger> kids(subs.size());
  {
    TaskGroup branches;
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const Instance& sub = subs[i];
      CutResult& slot = branch_best[i];
      minoragg::Ledger& kid = kids[i];
      branches.spawn([&sub, &slot, &kid, depth] {
        // TraceEvent carries at most two args: kind + pool_thread, always,
        // so every ttr_item is attributable to a worker in Perfetto. Depth
        // rides on the logical clock.
        UMC_OBS_SPAN_VAR_L(obs_item, "mincut/ttr_item", "mincut", depth);
        obs_item.arg("kind", 0);  // 0 = centroid branch
        obs_item.arg("pool_thread", ThreadPool::current_index());
        slot = solve(sub, kid, depth + 1);
      });
    }
    branches.join();
  }
  for (const CutResult& r : branch_best) best.absorb(r);
  parent.charge_parallel(kids);
  return best;
}

}  // namespace

CutResult two_respecting_mincut(const Instance& inst, minoragg::Ledger& ledger) {
  return solve(inst, ledger, 1);
}

CutResult two_respecting_mincut(const WeightedGraph& g, std::span<const EdgeId> tree_edges,
                                NodeId root, minoragg::Ledger& ledger) {
  return two_respecting_mincut(make_root_instance(g, tree_edges, root), ledger);
}

}  // namespace umc::mincut
