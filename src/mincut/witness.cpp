#include "mincut/witness.hpp"

namespace umc::mincut {

CutWitness cut_witness(const RootedTree& t, EdgeId e, EdgeId f) {
  const WeightedGraph& g = t.host();
  UMC_ASSERT(t.is_tree_edge(e));
  const NodeId be = t.bottom(e);
  const NodeId bf = f == kNoEdge ? kNoNode : t.bottom(f);
  if (f != kNoEdge) UMC_ASSERT(t.is_tree_edge(f));

  CutWitness w;
  w.side.assign(static_cast<std::size_t>(g.n()), false);
  for (NodeId v = 0; v < g.n(); ++v) {
    const bool in_e = t.is_ancestor(be, v);
    const bool in_f = bf != kNoNode && t.is_ancestor(bf, v);
    // The unique cut cutting exactly {e, f}: nodes covered by an odd number
    // of the two subtrees (handles nested bottoms: subtree(f) inside
    // subtree(e) carves a ring).
    w.side[static_cast<std::size_t>(v)] = in_e != in_f;
  }
  for (EdgeId ge = 0; ge < g.m(); ++ge) {
    const Edge& ed = g.edge(ge);
    if (w.side[static_cast<std::size_t>(ed.u)] != w.side[static_cast<std::size_t>(ed.v)]) {
      w.crossing.push_back(ge);
      w.value += ed.w;
    }
  }
  return w;
}

CutWitness cut_witness(const RootedTree& t, const CutResult& r) {
  UMC_ASSERT_MSG(r.found(), "no cut to materialize");
  return cut_witness(t, r.e, r.f);
}

}  // namespace umc::mincut
