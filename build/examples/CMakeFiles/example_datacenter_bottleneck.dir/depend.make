# Empty dependencies file for example_datacenter_bottleneck.
# This may be replaced when dependencies are built.
