file(REMOVE_RECURSE
  "CMakeFiles/test_primitive_sweeps.dir/test_primitive_sweeps.cpp.o"
  "CMakeFiles/test_primitive_sweeps.dir/test_primitive_sweeps.cpp.o.d"
  "test_primitive_sweeps"
  "test_primitive_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primitive_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
