
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mincut/exact_mincut.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/exact_mincut.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/exact_mincut.cpp.o.d"
  "/root/repo/src/mincut/interest.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/interest.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/interest.cpp.o.d"
  "/root/repo/src/mincut/one_respect.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/one_respect.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/one_respect.cpp.o.d"
  "/root/repo/src/mincut/path_to_path.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/path_to_path.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/path_to_path.cpp.o.d"
  "/root/repo/src/mincut/star.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/star.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/star.cpp.o.d"
  "/root/repo/src/mincut/subtree_instance.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/subtree_instance.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/subtree_instance.cpp.o.d"
  "/root/repo/src/mincut/tree_packing.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/tree_packing.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/tree_packing.cpp.o.d"
  "/root/repo/src/mincut/two_respect.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/two_respect.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/two_respect.cpp.o.d"
  "/root/repo/src/mincut/witness.cpp" "src/CMakeFiles/umc_mincut.dir/mincut/witness.cpp.o" "gcc" "src/CMakeFiles/umc_mincut.dir/mincut/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umc_mincut_values.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_minoragg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
