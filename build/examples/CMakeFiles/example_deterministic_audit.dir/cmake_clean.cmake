file(REMOVE_RECURSE
  "CMakeFiles/example_deterministic_audit.dir/deterministic_audit.cpp.o"
  "CMakeFiles/example_deterministic_audit.dir/deterministic_audit.cpp.o.d"
  "example_deterministic_audit"
  "example_deterministic_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deterministic_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
