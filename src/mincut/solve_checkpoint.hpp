#pragma once

// Pipeline checkpointing for the resilient solve path (PR 3's
// checkpoint/rollback idea, extended past compiled Borůvka into the
// tree-packing producer and the 2-respecting phase).
//
// The Theorem 1 pipeline is deterministic given (graph, config, seed), and
// its expensive middle — ~2·λ·log m greedy Borůvka iterations, then one
// 2-respecting solve per tree — decomposes into commit-sized units whose
// outputs depend only on committed predecessors. A SolveCheckpoint is the
// write-ahead journal of those units: the packing setup (λ seed and, on the
// sampled route, the Karger sample and generator state), every packed tree
// with its ledger charges, and every solved tree's CutResult. A crash
// between commits loses at most the in-flight unit; the resumable entry
// points replay the journal — same trees, same order, same charges, same
// generator exit state as an uninterrupted run — and continue live from the
// first uncommitted unit. That is what turns the supervisor's "retry" tier
// into checkpoint replay instead of a from-scratch re-solve.
//
// Crashes are simulated through a CrashHook fired just BEFORE each commit:
// throwing crash_error loses exactly that unit. Hooks must decide from
// (phase, index) alone — tree solves run in parallel, so an order-sensitive
// hook would randomize which units survive; the RESULT is insensitive to
// that set (uncommitted units are recomputed deterministically), but
// termination is not, so a hook must also fire each (phase, index) at most
// once per plan or the resume loop re-crashes forever.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "mincut/instance.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"

namespace umc::mincut {

/// Commit points of the resumable solve (and crash-hook fire sites).
enum class SolvePhase {
  kPackingSetup,      // λ seed + (case B) Karger sample committed
  kPackingIteration,  // one greedy Borůvka iteration committed (index = iteration)
  kTreeSolve,         // one tree's 2-respecting result committed (index = tree)
};

[[nodiscard]] const char* to_string(SolvePhase p);

/// Thrown by a CrashHook to simulate a process crash at a commit point.
/// Deliberately NOT an invariant_error: a crash is environmental, not a
/// model violation, so the supervisor answers it with a checkpoint-replay
/// retry rather than a degradation to the baseline.
class crash_error : public std::runtime_error {
 public:
  crash_error(SolvePhase phase, std::int64_t index);

  [[nodiscard]] SolvePhase phase() const { return phase_; }
  [[nodiscard]] std::int64_t index() const { return index_; }

 private:
  SolvePhase phase_;
  std::int64_t index_;
};

/// Fired just before the commit of (phase, index); may throw crash_error.
/// Null/empty means no crash injection.
using CrashHook = std::function<void(SolvePhase, std::int64_t)>;

/// Journal of the tree-packing producer. `setup_done` gates the committed
/// setup fields; `trees` / `iteration_charges` grow one entry per committed
/// iteration. The binding triple (graph_fp, config_fp, rng_entry) pins the
/// journal to one solve — resuming with a different graph, config, or seed
/// is a model violation, not a silent wrong replay.
struct PackingCheckpoint {
  std::uint64_t graph_fp = 0;
  std::uint64_t config_fp = 0;
  Rng::State rng_entry{};

  bool setup_done = false;
  Weight lambda_seed = 0;
  bool sampled = false;
  /// Case B only: per-ORIGINAL-edge sampled multiplicity (0 = absent from
  /// the sample); the packing substrate is rebuilt from this on resume.
  std::vector<Weight> multiplicity;
  Rng::State rng_after_setup{};
  minoragg::Ledger setup_charges;
  int iterations = 0;  // target greedy iteration count

  std::vector<std::vector<EdgeId>> trees;  // original edge ids, emit order
  std::vector<minoragg::Ledger> iteration_charges;

  [[nodiscard]] bool empty() const { return !setup_done; }
  [[nodiscard]] bool complete() const {
    return setup_done && static_cast<int>(trees.size()) == iterations;
  }
  [[nodiscard]] int committed_iterations() const { return static_cast<int>(trees.size()); }
};

/// Journal of the full exact solve: the producer's checkpoint plus each
/// tree's committed 2-respecting result. Per-tree entries commit out of
/// order under parallel solves (solved_mask is what resume consults); the
/// merged result and ledger are nevertheless bit-identical to an
/// uninterrupted run, because uncommitted trees re-solve deterministically
/// and everything merges in tree-index order.
struct SolveCheckpoint {
  PackingCheckpoint packing;
  std::vector<CutResult> solved;
  std::vector<char> solved_mask;
  std::vector<minoragg::Ledger> solve_charges;
  /// Journal entries replayed (not recomputed) by resumable runs so far —
  /// observability for the supervisor's recovery accounting.
  std::int64_t replayed_units = 0;

  [[nodiscard]] bool empty() const { return packing.empty() && committed_solves() == 0; }
  [[nodiscard]] std::int64_t committed_solves() const;
  /// Grows the per-tree journals to `count` slots (no-op when large enough).
  void note_tree_count(std::size_t count);
};

}  // namespace umc::mincut
