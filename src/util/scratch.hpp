#pragma once

// Per-thread arena scratch: reusable heap buffers for hot solver loops.
//
// The two-respecting solve allocates the same shapes over and over — part
// tables in every HL/orientation merge iteration (hundreds of thousands per
// solve), label/suffix rows in every Cov computation, contraction bitmaps in
// every star configuration — and the tree-packing fast path does too: the
// BoruvkaPacker (DSU parents, live-edge worklists, per-chunk candidate
// slots), its per-fold MinEdgeScratch, and the packing's load/cost rows all
// check out of these arenas. A ScratchLease<T> checks a T out of a
// thread-local free list (constructing one only on a cold pool) and returns
// it on destruction, so the steady state does zero allocation and reuses
// whatever capacity earlier leases grew.
//
// Ownership rules (docs/PARALLELISM.md):
//   * A lease is owned by the scope that constructed it — never stored,
//     never shared across tasks. Nested leases of the same T are fine: each
//     checkout pops a distinct object (help-first joins, where a blocked
//     task runs another task on the same thread, therefore compose safely).
//   * Content is UNSPECIFIED at checkout: the previous user's data is still
//     there. Callers must assign()/clear() before reading — which is
//     exactly what lets vectors keep their capacity.
//   * TaskGraph tasks run start-to-finish on one thread, so a lease always
//     returns to the pool it came from; even a hypothetical cross-thread
//     destruction would only migrate capacity, never race (pools are
//     thread_local, and leases hold exclusive ownership while checked out).
//
// This is the call-scoped sibling of round_engine's per-engine ScratchArena
// (typed slots keyed by an engine instance); use ScratchLease where there is
// no long-lived engine object to hang an arena off.

#include <memory>
#include <utility>
#include <vector>

namespace umc {

namespace detail {
template <typename T>
std::vector<std::unique_ptr<T>>& scratch_pool() {
  thread_local std::vector<std::unique_ptr<T>> pool;
  return pool;
}
}  // namespace detail

template <typename T>
class ScratchLease {
 public:
  ScratchLease() {
    auto& pool = detail::scratch_pool<T>();
    if (pool.empty()) {
      obj_ = std::make_unique<T>();
    } else {
      obj_ = std::move(pool.back());
      pool.pop_back();
    }
  }

  ~ScratchLease() {
    if (obj_ != nullptr) detail::scratch_pool<T>().push_back(std::move(obj_));
  }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  T& operator*() { return *obj_; }
  T* operator->() { return obj_.get(); }

 private:
  std::unique_ptr<T> obj_;
};

}  // namespace umc
