#pragma once

// Minor operations: edge contraction and induced subgraphs, with mappings
// back to the source graph.
//
// The Minor-Aggregation model's contraction step (Definition 9) and the
// instance transformations of Sections 6–9 (e.g. contracting tree edges of
// the wrong HL-depth, Figure 4) are all built on these.

#include <vector>

#include "graph/graph.hpp"

namespace umc {

/// A graph derived from another, with provenance mappings.
struct DerivedGraph {
  WeightedGraph graph;
  /// node_map[v_orig] = node in `graph`, or kNoNode if v_orig was dropped.
  std::vector<NodeId> node_map;
  /// edge_origin[e_new] = source edge id in the original graph.
  std::vector<EdgeId> edge_origin;
};

/// Contracts every edge e with contract[e] == true. Self-loops are removed;
/// parallel edges are kept (cuts need their individual weights). Supernode
/// ids are assigned by smallest contained original node id order.
[[nodiscard]] DerivedGraph contract_edges(const WeightedGraph& g,
                                          const std::vector<bool>& contract);

/// Induced subgraph on {v : keep[v]}. Edges with a dropped endpoint vanish.
[[nodiscard]] DerivedGraph induced_subgraph(const WeightedGraph& g,
                                            const std::vector<bool>& keep);

}  // namespace umc
