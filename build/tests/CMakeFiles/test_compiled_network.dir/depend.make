# Empty dependencies file for test_compiled_network.
# This may be replaced when dependencies are built.
