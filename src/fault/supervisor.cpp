#include "fault/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "baseline/karger_stein.hpp"
#include "congest/compiled_network.hpp"
#include "congest/gather_baseline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace umc::fault {

namespace {

#if !defined(UMC_OBS_DISABLED)
struct SupervisorMetrics {
  obs::Counter& retries = obs::MetricsRegistry::global().counter(
      "umc_supervisor_retries_total", {},
      "Exact-tier retries the supervisor issued (crash replays plus "
      "reseeded-packing retries after a failed certification).");
  obs::Counter& tier_falls = obs::MetricsRegistry::global().counter(
      "umc_supervisor_tier_falls_total", {},
      "Degradation-ladder steps taken (exact -> checkpoint replay -> "
      "Karger-Stein -> gather baseline).");
  obs::Counter& checkpoint_replays = obs::MetricsRegistry::global().counter(
      "umc_supervisor_checkpoint_replays_total", {},
      "Journaled pipeline units (packed trees, solved trees) replayed from "
      "a SolveCheckpoint instead of recomputed after a crash.");
};

SupervisorMetrics& supervisor_metrics() {
  static SupervisorMetrics m;
  return m;
}
#endif

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int default_ks_repeats(NodeId n) {
  const int logn = static_cast<int>(std::ceil(std::log2(std::max<NodeId>(2, n))));
  return std::max(1, logn * logn);
}

}  // namespace

Weight resummed_cut_value(const WeightedGraph& g, const std::vector<NodeId>& side) {
  std::vector<char> in(static_cast<std::size_t>(g.n()), 0);
  for (const NodeId v : side) in[static_cast<std::size_t>(v)] = 1;
  Weight total = 0;
  for (const Edge& e : g.edges())
    if (in[static_cast<std::size_t>(e.u)] != in[static_cast<std::size_t>(e.v)]) total += e.w;
  return total;
}

const char* to_string(SolveTier t) {
  switch (t) {
    case SolveTier::kExact: return "exact";
    case SolveTier::kCheckpointReplay: return "checkpoint-replay";
    case SolveTier::kKargerStein: return "karger-stein";
    case SolveTier::kGatherBaseline: return "gather-baseline";
  }
  return "?";
}

std::string SolveReport::to_string() const {
  std::ostringstream os;
  os << "tier=" << fault::to_string(tier) << " value=" << value
     << (certified ? " certified" : " UNCERTIFIED") << " retries=" << retries
     << " tier_falls=" << tier_falls << " replays=" << checkpoint_replays
     << " rounds=" << rounds;
  if (!reason.empty()) os << " reason=\"" << reason << "\"";
  if (!certificate.empty()) os << " certificate=\"" << certificate << "\"";
  return os.str();
}

mincut::CrashHook crash_plan_hook(const FaultPlan& plan) {
  if (plan.crash_p <= 0.0) return nullptr;
  // The fired-set makes each site crash at most once per plan, so crash
  // retries converge; shared_ptr keeps it alive inside the returned closure
  // and the mutex covers parallel tree-solve commits.
  struct State {
    std::mutex mu;
    std::set<std::pair<int, std::int64_t>> fired;
  };
  auto state = std::make_shared<State>();
  const std::uint64_t seed = plan.seed;
  const double crash_p = plan.crash_p;
  return [state, seed, crash_p](mincut::SolvePhase phase, std::int64_t index) {
    const auto site = std::make_pair(static_cast<int>(phase), index);
    const std::uint64_t h =
        mix64(seed ^ mix64(0x53555056ULL ^ mix64(static_cast<std::uint64_t>(site.first) ^
                                                 mix64(static_cast<std::uint64_t>(index)))));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 >= crash_p) return;
    {
      const std::lock_guard<std::mutex> lock(state->mu);
      if (!state->fired.insert(site).second) return;  // already crashed here
    }
    throw mincut::crash_error(phase, index);
  };
}

SolveReport SolveSupervisor::solve(const WeightedGraph& g, const mincut::CrashHook& hook) const {
  UMC_ASSERT(g.n() >= 2);
  const Clock::time_point t0 = Clock::now();
  SolveReport report;
  UMC_OBS_SPAN_VAR_L(obs_solve, "supervisor/solve", "fault", g.n());
  obs_solve.arg("entry_tier", static_cast<std::int64_t>(cfg_.entry_tier));

  std::int64_t spent_rounds = 0;
  const auto over_budget = [&](std::string& why) {
    if (cfg_.round_budget > 0 && spent_rounds >= cfg_.round_budget) {
      why = "round budget exhausted (" + std::to_string(spent_rounds) + " >= " +
            std::to_string(cfg_.round_budget) + ")";
      return true;
    }
    if (cfg_.wall_budget_ms > 0.0 && ms_since(t0) >= cfg_.wall_budget_ms) {
      why = "wall deadline exceeded";
      return true;
    }
    return false;
  };
  const auto fall = [&](const std::string& why) {
    report.tier_falls += 1;
    if (report.reason.empty())
      report.reason = why;
    else
      report.reason += "; " + why;
#if !defined(UMC_OBS_DISABLED)
    supervisor_metrics().tier_falls.inc();
#endif
  };
  const auto record = [&](SolveTier tier, int attempt, std::string outcome, std::int64_t rounds,
                          double start_ms) {
    report.attempts.push_back(
        {tier, attempt, std::move(outcome), rounds, ms_since(t0) - start_ms});
  };

  bool try_exact = cfg_.entry_tier <= SolveTier::kCheckpointReplay;
  bool try_karger = cfg_.entry_tier <= SolveTier::kKargerStein;
  if (cfg_.entry_tier == SolveTier::kKargerStein) fall("entry tier forced to karger-stein");
  if (cfg_.entry_tier == SolveTier::kGatherBaseline) fall("entry tier forced to gather-baseline");

  // --- Transport preflight -------------------------------------------------
  if (try_exact && cfg_.preflight_plan != nullptr && !cfg_.preflight_plan->trivial()) {
    UMC_OBS_SPAN_L("supervisor/preflight", "fault", g.n());
    const double start_ms = ms_since(t0);
    FaultModel model(g, *cfg_.preflight_plan);
    ReliableConfig rc;
    rc.mode = cfg_.preflight_arq;
    ReliableChannel net(g, &model, rc);
    std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
    for (EdgeId e = 0; e < g.m(); ++e) cost[static_cast<std::size_t>(e)] = g.edge(e).w;
    try {
      const congest::CompiledBoruvkaResult pf = congest::compiled_boruvka(net, cost);
      net.drain();
      spent_rounds += pf.congest_rounds;
      record(SolveTier::kExact, 0, "preflight ok", pf.congest_rounds, start_ms);
    } catch (const invariant_error& e) {
      record(SolveTier::kExact, 0, std::string("preflight failed: ") + e.what(), 0, start_ms);
      fall(std::string("transport preflight failed: ") + e.what());
      try_exact = false;
    }
  }

  // --- Exact tier (with checkpoint-replay and reseeded retries) ------------
  if (try_exact) {
    mincut::SolveCheckpoint ckpt;
    std::uint64_t seed = cfg_.seed;
    int crashes = 0;
    int reseeds = 0;
    int attempt = 0;
    bool first_attempt = true;
    std::int64_t replays = 0;
    for (;;) {
      std::string why;
      if (over_budget(why)) {
        fall(why);
        break;
      }
      const double start_ms = ms_since(t0);
      Rng rng(seed);
      minoragg::Ledger ledger;
      mincut::ExactMinCutResult result;
      try {
        result = mincut::exact_mincut_resumable(g, rng, ledger, cfg_.packing, cfg_.num_threads,
                                                ckpt, hook);
      } catch (const mincut::crash_error& e) {
        spent_rounds += ledger.rounds();
        record(SolveTier::kExact, attempt++, std::string("crash: ") + e.what(), ledger.rounds(),
               start_ms);
        replays = ckpt.replayed_units;
        if (++crashes > cfg_.max_retries) {
          fall("crash retry budget exhausted after " + std::to_string(crashes) + " crashes");
          break;
        }
        report.retries += 1;
#if !defined(UMC_OBS_DISABLED)
        supervisor_metrics().retries.inc();
#endif
        continue;  // checkpoint replay: ckpt survives, rng reset by loop head
      } catch (const invariant_error& e) {
        spent_rounds += ledger.rounds();
        record(SolveTier::kExact, attempt++, std::string("invariant: ") + e.what(),
               ledger.rounds(), start_ms);
        fall(std::string("invariant violation in exact tier: ") + e.what());
        break;
      }
      spent_rounds += ledger.rounds();
      replays = ckpt.replayed_units;

      if (cfg_.inject_result_corruption && first_attempt) result.value += 1;
      first_attempt = false;

      if (cfg_.verify) {
        mincut::GuardConfig guard;
        guard.packing = cfg_.packing;
        const std::vector<std::string> failures =
            mincut::verify_mincut_result(g, seed, guard, result);
        if (!failures.empty()) {
          record(SolveTier::kExact, attempt++, "guard: " + failures.front(), ledger.rounds(),
                 start_ms);
          if (++reseeds > cfg_.max_reseeds) {
            fall("certification failed after " + std::to_string(reseeds) +
                 " seeds: " + failures.front());
            break;
          }
          report.retries += 1;
#if !defined(UMC_OBS_DISABLED)
          supervisor_metrics().retries.inc();
#endif
          // Reseed: a fresh packing seed means a fresh journal binding.
          seed = mix64(cfg_.seed ^ mix64(static_cast<std::uint64_t>(reseeds)));
          ckpt = mincut::SolveCheckpoint();
          continue;
        }
      }

      record(SolveTier::kExact, attempt, "ok", ledger.rounds(), start_ms);
      report.tier =
          (crashes > 0 || replays > 0) ? SolveTier::kCheckpointReplay : SolveTier::kExact;
      report.value = result.value;
      report.exact = result;
      report.ledger = std::move(ledger);
      report.rounds = report.ledger.rounds();
      report.certified = cfg_.verify;
      report.certificate =
          cfg_.verify ? "guard battery: packing replay + witness re-sum + deterministic re-run"
                      : "";
      report.checkpoint_replays = replays;
#if !defined(UMC_OBS_DISABLED)
      supervisor_metrics().checkpoint_replays.inc(replays);
#endif
      report.wall_ms = ms_since(t0);
      obs_solve.arg("tier", static_cast<std::int64_t>(report.tier));
      return report;
    }
    report.checkpoint_replays = replays;
#if !defined(UMC_OBS_DISABLED)
    supervisor_metrics().checkpoint_replays.inc(replays);
#endif
  }

  // --- Karger–Stein tier ---------------------------------------------------
  if (try_karger) {
    UMC_OBS_SPAN_L("supervisor/karger_stein", "fault", g.n());
    const double start_ms = ms_since(t0);
    const int repeats =
        cfg_.karger_stein_repeats > 0 ? cfg_.karger_stein_repeats : default_ks_repeats(g.n());
    Rng rng(mix64(cfg_.seed ^ 0x4b53ULL));
    const baseline::GlobalMinCut ks = baseline::karger_stein_witness(g, repeats, rng);
    const Weight resum = resummed_cut_value(g, ks.side);
    if (resum == ks.value && !ks.side.empty() &&
        static_cast<NodeId>(ks.side.size()) < g.n()) {
      record(SolveTier::kKargerStein, 0, "ok", 0, start_ms);
      report.tier = SolveTier::kKargerStein;
      report.value = ks.value;
      report.witness_side = ks.side;
      report.certified = true;
      report.certificate = "cut witness re-sum (" + std::to_string(repeats) +
                           "-repeat Monte Carlo; upper bound, exact whp)";
      report.rounds = 0;  // centralized: no charged CONGEST rounds
      report.wall_ms = ms_since(t0);
      obs_solve.arg("tier", static_cast<std::int64_t>(report.tier));
      return report;
    }
    record(SolveTier::kKargerStein, 0,
           "witness re-sum mismatch: " + std::to_string(ks.value) + " vs " +
               std::to_string(resum),
           0, start_ms);
    fall("karger-stein witness failed to re-sum");
  }

  // --- Gather baseline: the unconditional floor ----------------------------
  {
    UMC_OBS_SPAN_L("supervisor/gather_baseline", "fault", g.n());
    const double start_ms = ms_since(t0);
    const congest::GatherBaselineResult fb = congest::gather_exact_mincut(g, /*root=*/0);
    record(SolveTier::kGatherBaseline, 0, "ok", fb.rounds_used, start_ms);
    report.tier = SolveTier::kGatherBaseline;
    report.value = fb.min_cut_value;
    report.certified = true;
    report.certificate = "exhaustive gather at the root (exact by construction)";
    report.rounds = fb.rounds_used;
    report.ledger.charge(fb.rounds_used);
    report.wall_ms = ms_since(t0);
    obs_solve.arg("tier", static_cast<std::int64_t>(report.tier));
  }
  return report;
}

}  // namespace umc::fault
