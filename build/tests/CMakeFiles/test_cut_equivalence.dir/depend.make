# Empty dependencies file for test_cut_equivalence.
# This may be replaced when dependencies are built.
