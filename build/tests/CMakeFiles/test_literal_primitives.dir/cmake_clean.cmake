file(REMOVE_RECURSE
  "CMakeFiles/test_literal_primitives.dir/test_literal_primitives.cpp.o"
  "CMakeFiles/test_literal_primitives.dir/test_literal_primitives.cpp.o.d"
  "test_literal_primitives"
  "test_literal_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_literal_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
