#pragma once

// Session — the resident per-tenant state of the min-cut service.
//
// What the one-shot CLI rebuilt per process, a session keeps warm across
// requests: the loaded graph, a PRIVATE PackingCache (tree packings survive
// between solves of the same graph+seed — the "millions of users" reuse the
// ROADMAP's service item calls for, without cross-tenant eviction or
// observation), the tenant's deterministic rng stream (SOLVE without an
// explicit seed draws from it, so a replayed request script is
// reproducible), and the scheduling weight. Solve scratch (ScratchLease
// arenas, util/scratch.hpp) is deliberately NOT per-session: arenas are
// per-worker-thread and already survive across every request a worker
// executes, whichever tenant it belongs to.
//
// Sessions are owned by the Engine behind its session mutex; request
// execution on a session is serialized by the scheduler's per-tenant
// in-flight cap of 1, so the mutable members need no lock of their own.
// `lru_tick` orders sessions for capacity eviction (engine.cpp).

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "mincut/packing_cache.hpp"
#include "util/rng.hpp"

namespace umc::server {

struct Session {
  explicit Session(std::string tenant_name, std::uint64_t rng_seed)
      : tenant(std::move(tenant_name)), rng(rng_seed) {}

  std::string tenant;
  WeightedGraph graph;
  bool loaded = false;

  /// Session-scoped packing reuse: plumbed into every solve through
  /// PackingConfig::cache (src/mincut/tree_packing.hpp).
  mincut::PackingCache cache;

  /// Deterministic per-tenant seed stream for SOLVEs without explicit seed.
  Rng rng;

  /// Weighted-fair scheduling weight (LOAD weight=..., default 1).
  std::int64_t weight = 1;

  // Lifetime counters, reported by STATS and the SOLVE response.
  std::int64_t loads = 0;
  std::int64_t mutates = 0;
  std::int64_t solves = 0;

  /// Engine LRU clock value of the most recent request touching this
  /// session (eviction order).
  std::uint64_t lru_tick = 0;
};

}  // namespace umc::server
