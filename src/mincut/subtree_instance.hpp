#pragma once

// Between-subtree 2-respecting min-cut (Section 8, Theorem 39, Figures 3/4).
//
// The instance tree is rooted at a hub whose child branches are the
// subtrees T_1..T_k. Pairwise coloring (Lemma 38, chi = O(log k) bit
// assignments) breaks the symmetry between the two optimal subtrees; for
// every (color assignment, HL-depth d1, HL-depth d2) triple, contracting
// every tree edge of the wrong HL-depth turns the instance into a star
// (Figure 4), solved by Theorem 27. Contractions preserve the cut values of
// the surviving tree edges, so every value examined is a true cut.

#include <span>

#include "mincut/instance.hpp"
#include "minoragg/ledger.hpp"

namespace umc::mincut {

/// min of candidate 1-respecting cuts and candidate pairs (e, f) lying in
/// DIFFERENT child branches of `root` (branch edges {root, child} belong to
/// their branch). Counters: "subtree_star_calls".
[[nodiscard]] CutResult between_subtree_mincut(const WeightedGraph& g,
                                               std::span<const EdgeId> tree_edges, NodeId root,
                                               std::span<const EdgeId> origin,
                                               const std::vector<bool>& is_virtual,
                                               minoragg::Ledger& ledger);

}  // namespace umc::mincut
