# Empty dependencies file for test_one_respect.
# This may be replaced when dependencies are built.
