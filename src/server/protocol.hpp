#pragma once

// mincutd wire protocol: length-prefixed frames carrying line-oriented
// request/response payloads.
//
// A FRAME is a 4-byte little-endian unsigned payload length followed by
// exactly that many payload bytes (max kMaxFrameBytes). Length-prefixing —
// rather than sentinel lines — lets LOAD carry arbitrary edge-list bodies
// and makes truncation detectable: a short read is a framing error, never a
// silently clipped request. Framing errors are NOT resynchronizable (a
// corrupt length desynchronizes the byte stream), so the serve loop answers
// one structured BAD_FRAME response and ends the connection; payload-level
// errors (unknown op, malformed numbers) keep the stream intact and are
// answered per-request.
//
// A REQUEST payload is one header line plus an optional body:
//
//   LOAD <tenant> [id=<n>] [weight=<w>]     body: edge-list text (graph/io)
//   MUTATE <tenant> <edge> <new-weight> [id=<n>]
//   SOLVE <tenant> [id=<n>] [seed=<s>] [trees=<t>]
//   STATS [prom] [id=<n>]
//   EVICT <tenant> [id=<n>]
//   SHUTDOWN [id=<n>]
//
// `id` is an opaque client correlation token echoed in the response —
// responses to queued requests may complete out of order across tenants.
// Tenant names are [A-Za-z0-9_.-]{1,64}.
//
// A RESPONSE payload is one header line plus an optional body:
//
//   OK <OP> id=<n> [key=value ...]          body: op-dependent (STATS table)
//   ERR <CODE> id=<n> <message>
//
// Parsing is the untrusted path: every reader returns Expected<T> and never
// throws on malformed input (util/error.hpp). See DESIGN.md "Min-cut
// service" for the full specification.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "util/error.hpp"

namespace umc::server {

/// Frame payload ceiling (16 MiB): a LOAD of the largest supported edge
/// list fits; anything larger is a framing error, not an allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Outcome of one read_frame call. kError means the stream is
/// desynchronized (truncated or oversized frame) — the connection is done.
enum class FrameStatus { kFrame, kEof, kError };

/// Reads one length-prefixed frame into `payload`. kEof only at a clean
/// frame boundary (zero bytes of a next frame read); a partial length or
/// short payload is kError with the cause in `err`.
[[nodiscard]] FrameStatus read_frame(std::istream& in, std::string& payload, Error& err);

/// Writes one frame (length prefix + payload). The caller serializes
/// concurrent writers; the stream is flushed so a blocked peer sees it.
void write_frame(std::ostream& out, std::string_view payload);

// ---------------------------------------------------------------------------
// Requests.

enum class Op { kLoad, kMutate, kSolve, kStats, kEvict, kShutdown };

[[nodiscard]] const char* to_string(Op op);

struct Request {
  Op op = Op::kStats;
  std::string tenant;        // empty for STATS/SHUTDOWN
  std::int64_t id = 0;       // client correlation token, echoed back
  std::int64_t weight = 1;   // LOAD: scheduling weight, [1, 1000]
  std::string body;          // LOAD: edge-list text
  EdgeId edge = kNoEdge;     // MUTATE
  Weight new_weight = 0;     // MUTATE
  bool has_seed = false;     // SOLVE: explicit seed given
  std::uint64_t seed = 0;    // SOLVE
  int max_trees = 0;         // SOLVE: 0 = engine default
  bool stats_prometheus = false;  // STATS prom

  /// Serializes back to a payload (header line + body) that parse_request
  /// round-trips — what the load generator and script replay emit.
  [[nodiscard]] std::string serialize() const;
};

/// Parses one request payload. Never throws; malformed input (unknown op,
/// bad tenant name, malformed or out-of-range numbers, missing arguments,
/// unexpected body) yields a recoverable Error.
[[nodiscard]] Expected<Request> parse_request(std::string_view payload);

// ---------------------------------------------------------------------------
// Responses.

/// Structured rejection codes (the ERR header token).
enum class ErrCode {
  kBadFrame,      // framing violated: truncated or oversized frame
  kBadCommand,    // request payload failed to parse
  kNoSession,     // tenant has no loaded session
  kBadGraph,      // LOAD body rejected (parse error / not connected)
  kBadMutation,   // MUTATE edge id or weight out of range
  kQueueFull,     // global admission queue at capacity
  kTenantOverload,  // this tenant's queue at capacity
  kTenantBusy,    // EVICT refused: tenant has queued or running work
  kShuttingDown,  // daemon is draining; no new admissions
  kInternal,      // unexpected server-side failure
};

[[nodiscard]] const char* to_string(ErrCode code);

struct Response {
  bool ok = true;
  std::string op;          // OK: echoed op token
  std::string error_code;  // ERR: code token
  std::string message;     // ERR: human-readable cause
  std::int64_t id = 0;
  /// OK header key=value fields (SOLVE: value, tier, certified, ...).
  std::map<std::string, std::string> fields;
  std::string body;  // STATS: session table or Prometheus text

  [[nodiscard]] std::string serialize() const;
  /// Convenience: integer field lookup with a fallback.
  [[nodiscard]] std::int64_t field_int(const std::string& key, std::int64_t fallback = 0) const;
};

[[nodiscard]] Response ok_response(Op op, std::int64_t id);
[[nodiscard]] Response err_response(ErrCode code, std::int64_t id, std::string message);

/// Parses one response payload (the load generator's half of the wire).
[[nodiscard]] Expected<Response> parse_response(std::string_view payload);

}  // namespace umc::server
