#pragma once

// Deterministic star-merging (Lemma 44).
//
// Input: an oriented graph over "parts" where every part has out-degree at
// most 1 (O = parts with out-degree exactly 1). Output: a partition into
// receivers R and joiners J with (1) |J| >= |O|/3, (2) J ⊆ O, and (3) every
// joiner's out-edge points to a receiver — so merging joiners into their
// receivers contracts star-shaped groups only.
//
// This replaces the randomized coin-flip star merging used throughout the
// low-congestion shortcut framework and is what makes the Appendix A
// primitives deterministic.

#include <span>
#include <vector>

#include "minoragg/ledger.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {

struct StarMergeResult {
  std::vector<bool> is_joiner;  // per part; receivers are the complement
  int num_joiners = 0;
  int out_degree_one = 0;  // |O|
};

/// out[p] = out-neighbor part of p, or -1. Charges the Cole-Vishkin rounds
/// plus one counting round.
[[nodiscard]] StarMergeResult star_merge(std::span<const int> out, Ledger& ledger);

/// The classic RANDOMIZED star merging this module derandomizes (kept for
/// the E16 ablation): each part flips a fair coin; a part joins iff it came
/// up "joiner" and its out-target came up "receiver". One round; E[|J|] =
/// |O|/4, but any single round can merge nothing.
[[nodiscard]] StarMergeResult random_star_merge(std::span<const int> out, Rng& rng,
                                                Ledger& ledger);

}  // namespace umc::minoragg
