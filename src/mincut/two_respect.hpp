#pragma once

// General 2-respecting min-cut (Section 9, Theorem 40) — the paper's main
// deterministic building block.
//
// Recursion around the tree centroid (Fact 41 / Lemma 42): cross-branch
// pairs are handled by the between-subtree algorithm (Theorem 39);
// same-branch pairs recurse on the cut-equivalent private graphs H_i of
// Lemma 43 (Figure 5), where everything outside a branch is absorbed into a
// private virtual centroid. Recursive calls are node-disjoint and run
// simultaneously (Corollary 11); each call's local work is multiplied by
// its own (beta + 1) virtual-node factor (Theorem 14), with beta <=
// O(log n) because every recursion level adds exactly one virtual centroid.

#include "mincut/instance.hpp"
#include "minoragg/ledger.hpp"

namespace umc::mincut {

/// min over candidate tree-edge pairs (e, f) of Cut(e, f), including e == f
/// (the 1-respecting cuts). Results name ORIGINAL tree edges via
/// inst.origin. Counters: "max_general_depth", "max_beta",
/// "subtree_star_calls".
[[nodiscard]] CutResult two_respecting_mincut(const Instance& inst, minoragg::Ledger& ledger);

/// Convenience entry point: builds the root instance over (g, tree, root).
[[nodiscard]] CutResult two_respecting_mincut(const WeightedGraph& g,
                                              std::span<const EdgeId> tree_edges, NodeId root,
                                              minoragg::Ledger& ledger);

}  // namespace umc::mincut
