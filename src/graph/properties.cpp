#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace umc {

std::vector<int> bfs_distances(const WeightedGraph& g, NodeId src) {
  UMC_ASSERT(src >= 0 && src < g.n());
  std::vector<int> dist(static_cast<std::size_t>(g.n()), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const AdjEntry& a : g.adj(v)) {
      if (dist[static_cast<std::size_t>(a.to)] == kUnreachable) {
        dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(a.to);
      }
    }
  }
  return dist;
}

bool is_connected(const WeightedGraph& g) {
  if (g.n() <= 1) return true;
  const std::vector<int> dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d == kUnreachable; });
}

int num_components(const WeightedGraph& g) {
  const std::vector<int> ids = component_ids(g);
  return ids.empty() ? 0 : 1 + *std::max_element(ids.begin(), ids.end());
}

std::vector<int> component_ids(const WeightedGraph& g) {
  std::vector<int> id(static_cast<std::size_t>(g.n()), -1);
  int next = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    if (id[static_cast<std::size_t>(s)] != -1) continue;
    id[static_cast<std::size_t>(s)] = next;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const AdjEntry& a : g.adj(v)) {
        if (id[static_cast<std::size_t>(a.to)] == -1) {
          id[static_cast<std::size_t>(a.to)] = next;
          q.push(a.to);
        }
      }
    }
    ++next;
  }
  return id;
}

namespace {
/// Farthest node from src and its distance.
std::pair<NodeId, int> farthest(const WeightedGraph& g, NodeId src) {
  const std::vector<int> dist = bfs_distances(g, src);
  NodeId best = src;
  int best_d = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const int d = dist[static_cast<std::size_t>(v)];
    UMC_ASSERT_MSG(d != kUnreachable, "diameter requires a connected graph");
    if (d > best_d) {
      best_d = d;
      best = v;
    }
  }
  return {best, best_d};
}
}  // namespace

int exact_diameter(const WeightedGraph& g) {
  UMC_ASSERT(g.n() >= 1);
  int diam = 0;
  for (NodeId v = 0; v < g.n(); ++v) diam = std::max(diam, farthest(g, v).second);
  return diam;
}

int approx_diameter(const WeightedGraph& g) {
  UMC_ASSERT(g.n() >= 1);
  const auto [far, d1] = farthest(g, 0);
  (void)d1;
  return farthest(g, far).second;
}

}  // namespace umc
