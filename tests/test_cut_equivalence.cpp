// Property tests for the cut-equivalent constructions at the heart of
// Sections 6 and 9: absorbing a region of the graph into a boundary /
// virtual node (remap_graph) preserves Cut(e, f) for every pair of
// surviving tree edges — Facts 24/25 and Lemma 43, checked against the
// reference cut machinery on random instances.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/instance.hpp"
#include "tree/centroid.hpp"
#include "tree/rooted_tree.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

TEST(CutEquivalence, Lemma43BranchGraphsPreserveAllPairs) {
  Rng rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    const NodeId n = 12 + static_cast<NodeId>(rng.next_below(25));
    WeightedGraph g = random_connected(n, 3 * n, rng);
    randomize_weights(g, 1, 20, rng);
    const auto tree = bfs_spanning_tree(g, 0);
    // Root at the centroid, as the Section 9 recursion does.
    const RootedTree t0(g, tree, 0);
    const NodeId c = find_centroid(t0);
    const RootedTree tc(g, tree, c);
    if (tc.children(c).empty()) continue;

    std::vector<EdgeId> origin(static_cast<std::size_t>(g.m()));
    std::iota(origin.begin(), origin.end(), EdgeId{0});

    for (const NodeId child : tc.children(c)) {
      // Build H_i exactly as two_respect does: branch nodes keep their
      // identity, everything else maps to the virtual centroid (node 0).
      std::vector<NodeId> map(static_cast<std::size_t>(g.n()), 0);
      std::vector<NodeId> members;
      for (const NodeId v : tc.preorder()) {
        if (!tc.is_ancestor(child, v)) continue;
        map[static_cast<std::size_t>(v)] = static_cast<NodeId>(1 + members.size());
        members.push_back(v);
      }
      const RemappedGraph rg =
          remap_graph(g, origin, map, static_cast<NodeId>(1 + members.size()));
      std::vector<EdgeId> sub_tree;
      for (const EdgeId e : tree) {
        const EdgeId mapped = rg.edge_map[static_cast<std::size_t>(e)];
        if (mapped != kNoEdge) sub_tree.push_back(mapped);
      }
      const RootedTree ts(rg.graph, sub_tree, 0);

      // Lemma 43 (3): Cut_{T'_i, H_i}(e, f) == Cut_{T, G}(e, f) for every
      // pair of surviving tree edges (including e == f).
      for (std::size_t i = 0; i < sub_tree.size(); ++i) {
        for (std::size_t j = i; j < sub_tree.size(); ++j) {
          const EdgeId se = sub_tree[i], sf = sub_tree[j];
          const EdgeId oe = rg.origin[static_cast<std::size_t>(se)];
          const EdgeId of = rg.origin[static_cast<std::size_t>(sf)];
          ASSERT_EQ(reference_cut_pair(ts, se, sf), reference_cut_pair(tc, oe, of))
              << "trial " << trial << " pair (" << oe << "," << of << ")";
        }
      }
    }
  }
}

TEST(CutEquivalence, Fact25StyleDownRegionAbsorption) {
  // Double broom: absorb the upper halves of both paths (and the root) into
  // a fresh virtual root; the lower-pair cut values must be unchanged.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId len = 10;
    WeightedGraph g = double_broom(len, 40, rng);
    randomize_weights(g, 1, 15, rng);
    std::vector<EdgeId> tree(static_cast<std::size_t>(2 * len));
    std::iota(tree.begin(), tree.end(), EdgeId{0});
    const RootedTree t(g, tree, 0);

    const NodeId a = 4, b = 6;  // keep P nodes a.., Q nodes b.. (1-indexed)
    std::vector<NodeId> map(static_cast<std::size_t>(g.n()), 0);
    NodeId next = 1;
    std::vector<NodeId> kept;
    for (NodeId i = a; i < len; ++i) {  // nodesP = 1..len
      map[static_cast<std::size_t>(1 + i)] = next++;
      kept.push_back(1 + i);
    }
    for (NodeId j = b; j < len; ++j) {  // nodesQ = len+1..2len
      map[static_cast<std::size_t>(len + 1 + j)] = next++;
      kept.push_back(len + 1 + j);
    }
    std::vector<EdgeId> origin(static_cast<std::size_t>(g.m()));
    std::iota(origin.begin(), origin.end(), EdgeId{0});
    RemappedGraph rg = remap_graph(g, origin, map, next);
    // Synthetic connectors r_down -> tops (weight never counted for pairs).
    std::vector<EdgeId> sub_tree;
    sub_tree.push_back(rg.graph.add_edge(0, map[static_cast<std::size_t>(1 + a)], 1));
    rg.origin.push_back(kNoEdge);
    sub_tree.push_back(rg.graph.add_edge(0, map[static_cast<std::size_t>(len + 1 + b)], 1));
    rg.origin.push_back(kNoEdge);
    // Only INTERIOR tree edges stay tree edges; the boundary edges e_a/f_b
    // survive the remap as plain (non-tree) edges parallel to the
    // connectors, exactly as in the Lemma 23 construction.
    for (const EdgeId e : tree) {
      const EdgeId mapped = rg.edge_map[static_cast<std::size_t>(e)];
      if (mapped == kNoEdge) continue;
      const bool interior_p = e >= static_cast<EdgeId>(a + 1) && e < static_cast<EdgeId>(len);
      const bool interior_q = e >= static_cast<EdgeId>(len + b + 1);
      if (interior_p || interior_q) sub_tree.push_back(mapped);
    }
    const RootedTree ts(rg.graph, sub_tree, 0);

    // Every surviving REAL tree-edge pair with one edge per path keeps its
    // cut value (Fact 25).
    for (const EdgeId se : sub_tree) {
      const EdgeId oe = rg.origin[static_cast<std::size_t>(se)];
      if (oe == kNoEdge || oe >= static_cast<EdgeId>(len)) continue;  // P side only
      for (const EdgeId sf : sub_tree) {
        const EdgeId of = rg.origin[static_cast<std::size_t>(sf)];
        if (of == kNoEdge || of < static_cast<EdgeId>(len)) continue;  // Q side only
        ASSERT_EQ(reference_cut_pair(ts, se, sf), reference_cut_pair(t, oe, of))
            << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace umc::mincut
