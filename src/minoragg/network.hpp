#pragma once

// The Minor-Aggregation model simulator (Definition 9).
//
// A Network wraps a communication graph and executes rounds consisting of
// the three model steps:
//   1. Contraction — each edge picks contract/keep; contracting defines the
//      minor G' whose supernodes are the contracted components.
//   2. Consensus — each node contributes x_v; every node of supernode s
//      learns y_s = ⊕_{v∈s} x_v.
//   3. Aggregation — each non-self-loop edge of G', knowing y of both its
//      supernode endpoints, chooses a value for each endpoint; every node of
//      supernode s learns ⊗ of its incident edges' values.
//
// Folds use a deterministic order (increasing node/edge id) so runs are
// reproducible; all shipped aggregators are either order-independent or
// mergeable sketches whose guarantees are order-independent (Def. 7).
//
// Execution is delegated to a per-network RoundEngine (round_engine.hpp):
// repeated contraction patterns replay a cached plan, folds reuse scratch
// arenas, and large rounds fold chunk-parallel — bit-identically to the
// sequential reference at any thread count. Engine use changes wall time
// only; the Ledger round accounting is identical.
//
// Algorithm code must communicate ONLY through rounds; per-node/per-edge
// closures may read node-local inputs and prior round outputs. Edge-value
// callbacks must be pure functions of (edge id, y_u, y_v): they are invoked
// exactly once per surviving minor edge, possibly concurrently.

#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "minoragg/ledger.hpp"
#include "minoragg/round_engine.hpp"
#include "obs/trace.hpp"
#include "sketch/aggregators.hpp"

namespace umc::minoragg {

class Network {
 public:
  /// The caller keeps `g` alive for the Network's lifetime. Rounds charge
  /// to `ledger`.
  Network(const WeightedGraph& g, Ledger& ledger) : g_(&g), ledger_(&ledger), engine_(g) {}

  [[nodiscard]] const WeightedGraph& graph() const { return *g_; }
  [[nodiscard]] Ledger& ledger() { return *ledger_; }

  /// The round-execution engine (plan cache + scratch). Exposed for thread
  /// configuration and cache statistics; wall-time machinery only.
  [[nodiscard]] RoundEngine& engine() const { return engine_; }
  void set_threads(int t) const { engine_.set_threads(t); }

  /// One full Definition 9 round.
  ///
  /// `contract[e]`  — the contraction choice c_e of edge e.
  /// `node_input`   — x_v per node (consensus step).
  /// `edge_values`  — z-choice of each surviving minor edge: given the host
  ///                  edge id and the consensus values (y_u_side, y_v_side)
  ///                  of the supernodes containing edge.u / edge.v, returns
  ///                  {z_for_u_side, z_for_v_side}. Any callable; invoked
  ///                  without indirection in the hot loop.
  template <Aggregator CAgg, Aggregator XAgg, typename EdgeFn>
  RoundResult<typename CAgg::value_type, typename XAgg::value_type> round(
      const std::vector<bool>& contract, std::span<const typename CAgg::value_type> node_input,
      EdgeFn&& edge_values) const {
    const WeightedGraph& g = *g_;
    UMC_ASSERT(static_cast<EdgeId>(contract.size()) == g.m());
    UMC_ASSERT(static_cast<NodeId>(node_input.size()) == g.n());
    // Logical clock: the MA round number this round will be charged as.
    UMC_OBS_SPAN_VAR_L(obs_round, "ma/round", "ma", ledger_->rounds());
    obs_round.arg("n", g.n());
    const RoundPlan& plan = engine_.plan(contract);
    obs_round.arg("minor_edges", static_cast<std::int64_t>(plan.edges.size()));
    auto out = engine_.execute<CAgg, XAgg>(plan, node_input, std::forward<EdgeFn>(edge_values));
    ledger_->charge(1);
    return out;
  }

  // ---- Common one-round idioms -------------------------------------------

  /// Contract ALL edges and aggregate everyone's input: each node learns
  /// ⊕_v x_v. One round. Requires a connected graph.
  template <Aggregator CAgg>
  typename CAgg::value_type all_aggregate(
      std::span<const typename CAgg::value_type> node_input) const;

  /// Per-component aggregate, where components are induced by `in_part`
  /// edges: each node learns the aggregate over its part. One round.
  template <Aggregator CAgg>
  std::vector<typename CAgg::value_type> part_aggregate(
      const std::vector<bool>& in_part,
      std::span<const typename CAgg::value_type> node_input) const;

  /// One aggregation-only round: every node learns ⊗ over its incident
  /// edges of z-values computed edge-locally (no contraction).
  template <Aggregator XAgg, typename EdgeFn>
  std::vector<typename XAgg::value_type> neighborhood_aggregate(EdgeFn&& edge_values) const;

  /// Supernode ids (smallest contained node id) for a contraction choice;
  /// free of charge (bookkeeping shared by round()).
  [[nodiscard]] std::vector<NodeId> supernodes(const std::vector<bool>& contract) const;

 private:
  const WeightedGraph* g_;
  Ledger* ledger_;
  // The engine is a wall-time cache with no model-visible state, so const
  // rounds may mutate it.
  mutable RoundEngine engine_;
};

// ---- template implementations ---------------------------------------------

template <Aggregator CAgg>
typename CAgg::value_type Network::all_aggregate(
    std::span<const typename CAgg::value_type> node_input) const {
  using Y = typename CAgg::value_type;
  const std::vector<bool> contract(static_cast<std::size_t>(g_->m()), true);
  const auto res = round<CAgg, OrAgg>(
      contract, node_input, [](EdgeId, const Y&, const Y&) {
        return std::pair<std::uint8_t, std::uint8_t>{0, 0};
      });
  // Connectivity check: a single supernode means everyone saw every input.
  for (const NodeId s : res.supernode)
    UMC_ASSERT_MSG(s == res.supernode[0], "all_aggregate requires a connected graph");
  return res.consensus.empty() ? CAgg::identity() : res.consensus[0];
}

template <Aggregator CAgg>
std::vector<typename CAgg::value_type> Network::part_aggregate(
    const std::vector<bool>& in_part,
    std::span<const typename CAgg::value_type> node_input) const {
  using Y = typename CAgg::value_type;
  const auto res = round<CAgg, OrAgg>(
      in_part, node_input, [](EdgeId, const Y&, const Y&) {
        return std::pair<std::uint8_t, std::uint8_t>{0, 0};
      });
  return res.consensus;
}

template <Aggregator XAgg, typename EdgeFn>
std::vector<typename XAgg::value_type> Network::neighborhood_aggregate(
    EdgeFn&& edge_values) const {
  const std::vector<bool> contract(static_cast<std::size_t>(g_->m()), false);
  const std::vector<std::uint8_t> node_input(static_cast<std::size_t>(g_->n()), 0);
  const auto res = round<OrAgg, XAgg>(contract, node_input,
                                      [&edge_values](EdgeId e, const std::uint8_t&,
                                                     const std::uint8_t&) { return edge_values(e); });
  return res.aggregate;
}

}  // namespace umc::minoragg
