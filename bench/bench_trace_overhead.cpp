// Experiment E20: observability overhead.
//
// The tracing contract (DESIGN.md "Observability") is three-tiered:
//   * compiled out (UMC_OBS=OFF): spans cost literally nothing — the macros
//     expand to an unused NullSpan, so this bench cannot measure it (0 by
//     construction; the tier-1 matrix builds it to prove it compiles);
//   * runtime off (the default): one relaxed atomic load + branch per span
//     site — BM_SpanMicro/off measures that in isolation;
//   * spans on: timestamped ring-buffer writes — BM_SpanMicro/on is the
//     per-span cost, and the BM_CompiledMst pair measures the end-to-end
//     multiplier on the E15 workload (compiled Borůvka on a grid), the
//     acceptance gate for the < 5% overhead budget.
//
// Each traced variant clears the tracer first so ring saturation (drop-
// newest) cannot flatter later iterations.

#include "bench_common.hpp"
#include "congest/compiled_network.hpp"
#include "obs/trace.hpp"

namespace umc {
namespace {

// Per-span-site cost in isolation: a tight loop over one span with an arg.
void BM_SpanMicro(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(enabled);
  tracer.clear();
  std::int64_t i = 0;
  for (auto _ : state) {
    UMC_OBS_SPAN_VAR_L(span, "bench/micro", "bench", i);
    span.arg("i", i);
    ++i;
    benchmark::ClobberMemory();
    if ((i & 0x3fff) == 0) tracer.clear();  // keep the ring from saturating
  }
  tracer.set_enabled(false);
  state.counters["spans"] = static_cast<double>(i);
  tracer.clear();
}

// End-to-end E15 workload: compiled Borůvka MST on a weighted grid. The
// off/on pair is the overhead multiplier EXPERIMENTS.md reports.
void run_compiled(benchmark::State& state, bool enabled) {
  const WeightedGraph g = grid_graph(32, 32);
  Rng rng(19);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(enabled);
  congest::CompiledBoruvkaResult res{};
  for (auto _ : state) {
    tracer.clear();
    res = congest::compiled_boruvka(g, cost);
    benchmark::DoNotOptimize(res);
  }
  tracer.set_enabled(false);
  state.counters["ma_rounds"] = static_cast<double>(res.ma_rounds);
  state.counters["real_congest_rounds"] = static_cast<double>(res.congest_rounds);
  state.counters["spans"] = static_cast<double>(tracer.snapshot().size());
  tracer.clear();
}

void BM_CompiledMstTraceOff(benchmark::State& state) { run_compiled(state, false); }
void BM_CompiledMstTraceOn(benchmark::State& state) { run_compiled(state, true); }

BENCHMARK(BM_SpanMicro)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_CompiledMstTraceOff)->Iterations(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompiledMstTraceOn)->Iterations(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
