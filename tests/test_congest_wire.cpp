// Slot-wire differential suite: the slot-addressed CONGEST wire must be
// observably identical to the retained reference message path — inbox
// contents byte for byte, round counts, Borůvka trees — with and without
// fault plans riding the ARQ; the PartwiseCache must change no output and
// be invalidated when the contraction pattern changes; exact_mincut must be
// bit-identical across 1..8 solver threads.

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "congest/compiled_network.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "minoragg/ledger.hpp"
#include "minoragg/round_engine.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

using congest::CongestNetwork;
using congest::Message;
using congest::WireConfig;
using congest::WireMode;
using fault::FaultModel;
using fault::FaultPlan;
using fault::ReliableChannel;

constexpr WireConfig kSlotWire{WireMode::kSlot, /*partwise_cache=*/true};
constexpr WireConfig kSlotWireNoCache{WireMode::kSlot, /*partwise_cache=*/false};
constexpr WireConfig kReferenceWire{WireMode::kReference, /*partwise_cache=*/false};

/// Runs `rounds` logical rounds of all-edges flooding and returns every
/// round's inboxes verbatim — unsorted, so ordering differences between the
/// wire implementations would fail the comparison too.
std::vector<std::vector<Message>> flood_transcript(CongestNetwork& net, int rounds) {
  const WeightedGraph& g = net.graph();
  std::vector<std::vector<Message>> transcript;
  for (int r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < g.n(); ++v)
      for (const AdjEntry& a : g.adj(v)) net.send(v, a.edge, v * 1000 + r, a.edge);
    net.end_round();
    for (NodeId v = 0; v < g.n(); ++v) transcript.push_back(net.inbox(v));
  }
  return transcript;
}

std::vector<std::int64_t> random_costs(const WeightedGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);
  return cost;
}

TEST(CongestWire, FloodTranscriptMatchesReferencePath) {
  const WeightedGraph g = grid_graph(4, 4);
  CongestNetwork slot(g, kSlotWire);
  CongestNetwork ref(g, kReferenceWire);
  EXPECT_EQ(flood_transcript(slot, 5), flood_transcript(ref, 5));
  EXPECT_EQ(slot.rounds(), ref.rounds());

  // An empty round clears deliveries on both paths.
  slot.end_round();
  ref.end_round();
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_TRUE(slot.inbox(v).empty());
    EXPECT_TRUE(ref.inbox(v).empty());
  }
}

TEST(CongestWire, SlotViewAgreesWithInboxShim) {
  const WeightedGraph g = grid_graph(3, 3);
  CongestNetwork net(g, kSlotWire);
  // Partial traffic: only even nodes send, so some slots stay empty.
  for (NodeId v = 0; v < g.n(); v += 2)
    for (const AdjEntry& a : g.adj(v)) net.send(v, a.edge, 100 + v, 200 + a.edge);
  net.end_round();
  for (NodeId v = 0; v < g.n(); ++v) {
    for (const AdjEntry& a : g.adj(v)) {
      const std::size_t s = net.slot_from(a.edge, a.to);  // a.to -> v direction
      bool in_inbox = false;
      for (const Message& m : net.inbox(v)) {
        if (m.via != a.edge) continue;
        in_inbox = true;
        EXPECT_EQ(m.payload, net.slot_payload(s));
        EXPECT_EQ(m.aux, net.slot_aux(s));
        EXPECT_EQ(m.from, a.to);
      }
      EXPECT_EQ(net.slot_has(s), in_inbox);
    }
  }
}

TEST(CongestWire, ArqTranscriptsMatchReferenceAcrossFaultPlans) {
  const WeightedGraph g = grid_graph(4, 4);
  for (const double p : {0.0, 0.1, 0.3}) {
    FaultPlan plan;
    plan.seed = 7;
    plan.drop_p = p;
    plan.dup_p = p / 2;
    plan.corrupt_p = p / 2;
    FaultModel model_slot(g, plan);
    FaultModel model_ref(g, plan);
    ReliableChannel slot(g, &model_slot, {}, kSlotWire);
    ReliableChannel ref(g, &model_ref, {}, kReferenceWire);
    EXPECT_EQ(flood_transcript(slot, 5), flood_transcript(ref, 5)) << "p=" << p;
    EXPECT_EQ(slot.rounds(), ref.rounds()) << "p=" << p;
    EXPECT_EQ(model_slot.log_to_string(), model_ref.log_to_string()) << "p=" << p;
  }
}

TEST(CongestWire, FaultPathPreservesDuplicatesInInbox) {
  const WeightedGraph g = path_graph(3);
  FaultPlan plan;
  plan.dup_p = 1.0;
  FaultModel m(g, plan);
  CongestNetwork net(g, kSlotWire);
  net.attach_fault_injector(&m);
  net.send(0, 0, 7);
  net.end_round();
  // The compat inbox keeps both copies; the slot view holds the last one.
  ASSERT_EQ(net.inbox(1).size(), 2u);
  EXPECT_EQ(net.inbox(1)[0], net.inbox(1)[1]);
  EXPECT_TRUE(net.slot_has(net.slot_from(0, 0)));
  EXPECT_EQ(net.slot_payload(net.slot_from(0, 0)), 7);
}

TEST(CongestWire, BoruvkaIdenticalAcrossWireModesAndCache) {
  Rng rng(43);
  const WeightedGraph g = erdos_renyi_connected(48, 0.15, rng);
  const auto cost = random_costs(g, 17);

  CongestNetwork ref(g, kReferenceWire);
  const auto base = congest::compiled_boruvka(ref, cost);

  CongestNetwork slot_nocache(g, kSlotWireNoCache);
  const auto a = congest::compiled_boruvka(slot_nocache, cost);
  EXPECT_EQ(a.tree, base.tree);
  EXPECT_EQ(a.congest_rounds, base.congest_rounds);
  EXPECT_EQ(a.ma_rounds, base.ma_rounds);

  CongestNetwork slot_cached(g, kSlotWire);
  const auto b = congest::compiled_boruvka(slot_cached, cost);
  EXPECT_EQ(b.tree, base.tree);
  EXPECT_EQ(b.congest_rounds, base.congest_rounds);
  EXPECT_EQ(b.ma_rounds, base.ma_rounds);
}

TEST(CongestWire, BoruvkaUnderArqIdenticalAcrossWireModes) {
  const WeightedGraph g = grid_graph(4, 4);
  const auto cost = random_costs(g, 9);
  for (const double p : {0.1, 0.3}) {
    FaultPlan plan;
    plan.seed = 11;
    plan.drop_p = p;
    FaultModel model_ref(g, plan);
    ReliableChannel ref(g, &model_ref, {}, kReferenceWire);
    const auto base = congest::compiled_boruvka(ref, cost);

    FaultModel model_slot(g, plan);
    ReliableChannel slot(g, &model_slot, {}, kSlotWire);
    const auto got = congest::compiled_boruvka(slot, cost);
    EXPECT_EQ(got.tree, base.tree) << "p=" << p;
    EXPECT_EQ(got.congest_rounds, base.congest_rounds) << "p=" << p;
    EXPECT_EQ(got.ma_rounds, base.ma_rounds) << "p=" << p;
    EXPECT_EQ(model_slot.log_to_string(), model_ref.log_to_string()) << "p=" << p;
  }
}

TEST(CongestWire, LossWithoutArqStillDetectedOnSlotWire) {
  const WeightedGraph g = grid_graph(4, 4);
  const auto cost = random_costs(g, 9);
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_p = 0.3;
  FaultModel model(g, plan);
  CongestNetwork net(g, kSlotWire);  // plain network: no ack/retry layer
  net.attach_fault_injector(&model);
  EXPECT_THROW((void)congest::compiled_boruvka(net, cost), invariant_error);
}

/// Runs one MA round and returns the full result (asserts inside
/// execute_ma_round already cross-check leader election against the plan).
congest::CompiledRoundResult run_ma_round(CongestNetwork& net, minoragg::RoundEngine& engine,
                                          const std::vector<bool>& contract) {
  const WeightedGraph& g = net.graph();
  std::vector<std::int64_t> input(static_cast<std::size_t>(g.n()));
  for (NodeId v = 0; v < g.n(); ++v) input[static_cast<std::size_t>(v)] = v + 1;
  return congest::execute_ma_round(
      net, engine, contract, input, congest::PartwiseOp::kSum,
      [](EdgeId e, std::int64_t yu, std::int64_t yv) {
        return std::pair<std::int64_t, std::int64_t>{yu + e, yv + e};
      },
      congest::PartwiseOp::kMin);
}

TEST(CongestWire, PartwiseCacheInvalidatesWhenContractionChanges) {
  const WeightedGraph g = grid_graph(4, 4);
  std::vector<bool> identity(static_cast<std::size_t>(g.m()), false);
  std::vector<bool> contracted(static_cast<std::size_t>(g.m()), false);
  // Contract a handful of edges: parts of size > 1, different plan key.
  for (EdgeId e = 0; e < g.m(); e += 3) contracted[static_cast<std::size_t>(e)] = true;

  minoragg::RoundEngine engine_cached(g);
  minoragg::RoundEngine engine_plain(g);
  CongestNetwork cached(g, kSlotWire);
  CongestNetwork plain(g, kSlotWireNoCache);

  // A, A again (cache hit), B (new plan => fresh cache), A (LRU plan hit =>
  // cached partition state again). Any stale reuse across the A/B switch
  // would produce wrong supernodes (asserted inside) or wrong values here.
  for (const auto* contract : {&identity, &identity, &contracted, &identity}) {
    const auto want = run_ma_round(plain, engine_plain, *contract);
    const auto got = run_ma_round(cached, engine_cached, *contract);
    EXPECT_EQ(got.consensus, want.consensus);
    EXPECT_EQ(got.aggregate, want.aggregate);
    EXPECT_EQ(got.supernode, want.supernode);
    EXPECT_EQ(got.congest_rounds, want.congest_rounds);
  }
  EXPECT_EQ(cached.rounds(), plain.rounds());
}

TEST(CongestWire, ExactMincutBitIdenticalAcrossThreadWidths) {
  Rng grng(19);
  const WeightedGraph g = erdos_renyi_connected(64, 0.2, grng);

  const auto run = [&g](int threads) {
    Rng rng(7);
    minoragg::Ledger ledger;
    const auto r = mincut::exact_mincut(g, rng, ledger, {}, threads);
    return std::tuple{r.value, r.e, r.f, r.winning_tree, r.num_trees, ledger.rounds()};
  };
  const auto want = run(1);
  EXPECT_GE(std::get<4>(want), 2) << "sweep needs a multi-tree packing to mean anything";
  for (int t = 2; t <= 8; ++t) EXPECT_EQ(run(t), want) << "threads=" << t;
}

}  // namespace
}  // namespace umc
