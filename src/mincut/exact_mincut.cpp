#include "mincut/exact_mincut.hpp"

#include "mincut/two_respect.hpp"
#include "minoragg/tree_primitives.hpp"

namespace umc::mincut {

ExactMinCutResult exact_mincut(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                               const PackingConfig& config) {
  UMC_ASSERT(g.n() >= 2);
  ExactMinCutResult out;

  if (g.n() == 2) {
    // Single possible cut; one aggregation round reads it off.
    ledger.charge(1);
    out.value = g.total_weight();
    out.num_trees = 0;
    return out;
  }

  const TreePacking packing = tree_packing(g, rng, ledger, config);
  out.num_trees = static_cast<int>(packing.trees.size());

  // Every min-cut 2-respects some tree of the packing (whp); orient each
  // (unrooted) packing tree (Theorem 48), then solve the deterministic
  // 2-respecting problem and keep the best.
  for (std::size_t i = 0; i < packing.trees.size(); ++i) {
    (void)minoragg::orient_tree(g, packing.trees[i], /*root=*/0, ledger);
    const CutResult r = two_respecting_mincut(g, packing.trees[i], /*root=*/0, ledger);
    if (r.value < out.value) {
      out.value = r.value;
      out.e = r.e;
      out.f = r.f;
      out.winning_tree = static_cast<int>(i);
    }
  }
  UMC_ASSERT_MSG(out.value < kInfWeight, "a packing always yields at least one cut");
  return out;
}

}  // namespace umc::mincut
