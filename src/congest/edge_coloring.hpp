#pragma once

// Deterministic edge coloring with O(Δ) colors (the Lemma 35 ingredient —
// Panconesi–Rizzi [31]).
//
// The coloring itself is the sequential greedy by edge id, which uses at
// most 2Δ-1 colors and is deterministic; each color class is a matching.
// The round charge reported is the Panconesi–Rizzi bound O(Δ + log* n),
// which Lemma 34 then converts into Minor-Aggregation rounds on the host
// network with an O(1) factor.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace umc::congest {

struct EdgeColoring {
  std::vector<int> color;         // per edge, in [0, num_colors)
  int num_colors = 0;
  int max_degree = 0;
  std::int64_t congest_rounds = 0;  // Panconesi-Rizzi charge O(Δ + log* n)
};

[[nodiscard]] EdgeColoring deterministic_edge_coloring(const WeightedGraph& g);

}  // namespace umc::congest
