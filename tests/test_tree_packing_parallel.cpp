// Determinism gate for the tree-packing fast path: the BoruvkaPacker may
// fold its per-phase candidate scans on any number of session workers, but
// the packing output — every tree's edge list, the iteration count, the rng
// consumption, and every Ledger counter (full map, not a gated subset) —
// must be bit-identical at widths 1 through 8 AND identical to the
// pre-change Minor-Aggregation-simulated producer (use_fast_path = false).
// Plus unit tests for the PackingCache: hit replay transparency, the
// fingerprint invalidation rule, LRU eviction, and the guarded self-check's
// replay-as-hit contract.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/packing_cache.hpp"
#include "mincut/tree_packing.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace umc {
namespace {

struct PackSnapshot {
  std::vector<std::vector<EdgeId>> trees;
  Weight lambda_seed = 0;
  bool sampled = false;
  std::int64_t rounds = 0;
  std::map<std::string, std::int64_t, std::less<>> counters;
  Rng::State rng_after{};

  bool operator==(const PackSnapshot&) const = default;
};

/// Runs the streaming packing inside a TaskGraph session of the given
/// width — the shape exact_mincut opens — so the BoruvkaPacker's chunk
/// folds actually land on pool workers (width 1 = inline sequential
/// reference).
PackSnapshot run_pack(const WeightedGraph& g, int threads, mincut::PackingConfig config,
                      std::uint64_t seed = 7) {
  Rng rng(seed);
  minoragg::Ledger ledger;
  PackSnapshot s;
  TaskGraph::session(threads, [&] {
    const auto meta = mincut::tree_packing(g, rng, ledger, config,
                                           [&s](std::vector<EdgeId> tree) {
                                             s.trees.push_back(std::move(tree));
                                           });
    s.lambda_seed = meta.lambda_seed;
    s.sampled = meta.sampled;
  });
  s.rounds = ledger.rounds();
  s.counters = ledger.counters();
  s.rng_after = rng.state();
  return s;
}

/// Width sweep 1..8 against the width-1 reference, full counter maps. The
/// cache is disabled so every run actually packs, and the fold granularity
/// is forced down so even these small families split into multiple chunk
/// tasks per phase — otherwise the whole sweep would run single-chunk and
/// never exercise the parallel fold path it exists to pin.
void expect_pack_width_invariant(const WeightedGraph& g, mincut::PackingConfig config = {}) {
  config.use_cache = false;
  config.use_fast_path = true;
  config.chunk_min_edges = 16;
  const PackSnapshot want = run_pack(g, 1, config);
  ASSERT_FALSE(want.trees.empty());
  for (int t = 2; t <= 8; ++t) {
    const PackSnapshot got = run_pack(g, t, config);
    EXPECT_EQ(got.trees, want.trees) << "threads=" << t;
    EXPECT_EQ(got.lambda_seed, want.lambda_seed) << "threads=" << t;
    EXPECT_EQ(got.sampled, want.sampled) << "threads=" << t;
    EXPECT_EQ(got.rounds, want.rounds) << "threads=" << t;
    // Full counter-map equality: any scheduling leak into the accounting
    // (phase counts, boruvka_iterations, packing_iterations) names itself.
    EXPECT_EQ(got.counters, want.counters) << "threads=" << t;
    EXPECT_EQ(got.rng_after, want.rng_after) << "threads=" << t;
  }
}

TEST(TreePackingParallel, GridBitIdenticalAcrossWidths) {
  expect_pack_width_invariant(grid_graph(6, 6));
}

TEST(TreePackingParallel, ErdosRenyiBitIdenticalAcrossWidths) {
  Rng rng(23);
  expect_pack_width_invariant(erdos_renyi_connected(48, 0.18, rng));
}

TEST(TreePackingParallel, PlanarBitIdenticalAcrossWidths) {
  Rng rng(5);
  expect_pack_width_invariant(random_planar_grid(7, 7, 0.4, rng));
}

TEST(TreePackingParallel, DominantTreeBitIdenticalAcrossWidths) {
  // Two-tree cap: few, large Borůvka iterations, so the per-phase chunk
  // folds carry the entire width sweep (no across-iteration slack to hide
  // a nondeterministic fold behind).
  Rng rng(11);
  const WeightedGraph g = erdos_renyi_connected(56, 0.3, rng);
  mincut::PackingConfig config;
  config.max_trees = 2;
  expect_pack_width_invariant(g, config);
}

TEST(TreePackingParallel, WeightedSampledCaseBitIdenticalAcrossWidths) {
  // Heavy weights push lambda over the direct threshold into the Karger-
  // sampling route (case B), whose rng draws precede the packing proper —
  // the sweep pins that the fast path leaves the sampling stream untouched.
  Rng rng(13);
  WeightedGraph g = ring_expander(40, 3, rng);
  randomize_weights(g, 40, 90, rng);
  const PackSnapshot probe = run_pack(g, 1, {.use_fast_path = true, .use_cache = false});
  ASSERT_TRUE(probe.sampled) << "family must exercise the sampling route";
  expect_pack_width_invariant(g);
}

TEST(TreePackingParallel, ChunkGranularityCannotChangeOutput) {
  // The chunking-invariance half of the determinism argument, tested
  // directly: per-component minima under the strict (cost, edge id) order
  // merge identically under ANY split of the live-edge list, so every
  // granularity — including pathological 1-edge chunks — must produce the
  // same packing. This is also why chunk_min_edges stays out of the
  // PackingCache fingerprint.
  Rng grng(19);
  const WeightedGraph g = erdos_renyi_connected(48, 0.18, grng);
  mincut::PackingConfig config;
  config.use_cache = false;
  const PackSnapshot want = run_pack(g, 4, config);  // default granularity
  for (const int grain : {1, 7, 16, 100000}) {
    config.chunk_min_edges = grain;
    EXPECT_EQ(run_pack(g, 4, config), want) << "chunk_min_edges=" << grain;
  }
}

TEST(TreePackingParallel, FastPathMatchesSimulatedReference) {
  // The differential the whole tentpole rests on: the BoruvkaPacker fast
  // path must reproduce the Minor-Aggregation-simulated producer exactly —
  // same trees in the same order, same rounds, same counters, same rng exit
  // state — on every family, at width 1 and width 8.
  Rng grng(29);
  const std::vector<WeightedGraph> families = {
      grid_graph(6, 6),
      erdos_renyi_connected(48, 0.18, grng),
      random_planar_grid(6, 6, 0.5, grng),
      dumbbell(8, 4),
  };
  for (std::size_t i = 0; i < families.size(); ++i) {
    const WeightedGraph& g = families[i];
    const PackSnapshot legacy = run_pack(g, 1, {.use_fast_path = false, .use_cache = false});
    const PackSnapshot fast1 = run_pack(g, 1, {.use_fast_path = true, .use_cache = false});
    const PackSnapshot fast8 =
        run_pack(g, 8, {.use_fast_path = true, .use_cache = false, .chunk_min_edges = 16});
    EXPECT_EQ(fast1, legacy) << "family=" << i;
    EXPECT_EQ(fast8, legacy) << "family=" << i;
  }
}

TEST(TreePackingParallel, ExactMincutUnaffectedByFastPathToggle) {
  // End-to-end: the solver on top must not see the producer swap.
  Rng grng(37);
  const WeightedGraph g = erdos_renyi_connected(40, 0.2, grng);
  const auto solve = [&g](bool fast) {
    Rng rng(7);
    minoragg::Ledger ledger;
    mincut::PackingConfig config;
    config.use_fast_path = fast;
    config.use_cache = false;
    const auto r = mincut::exact_mincut(g, rng, ledger, config, 4);
    return std::make_pair(r, ledger);
  };
  const auto [fast, fast_led] = solve(true);
  const auto [slow, slow_led] = solve(false);
  EXPECT_EQ(fast.value, slow.value);
  EXPECT_EQ(fast.e, slow.e);
  EXPECT_EQ(fast.f, slow.f);
  EXPECT_EQ(fast.winning_tree, slow.winning_tree);
  EXPECT_EQ(fast.num_trees, slow.num_trees);
  EXPECT_EQ(fast_led.rounds(), slow_led.rounds());
  EXPECT_EQ(fast_led.counters(), slow_led.counters());
}

// ---------------------------------------------------------------------------
// PackingCache unit tests. The cache is process-global and the statistics
// are cumulative, so every test measures hit/miss DELTAS and clears the
// entries it planted.

TEST(PackingCache, HitReplaysBitIdentically) {
  Rng grng(41);
  const WeightedGraph g = erdos_renyi_connected(36, 0.2, grng);
  mincut::PackingConfig config;  // use_cache = true
  auto& cache = mincut::PackingCache::global();
  cache.clear();

  const std::int64_t hits0 = cache.hits();
  const std::int64_t misses0 = cache.misses();
  const PackSnapshot first = run_pack(g, 1, config);
  EXPECT_EQ(cache.hits(), hits0);
  EXPECT_EQ(cache.misses(), misses0 + 1);

  // Same graph, same seed, same config: a hit, and the replay must be
  // observationally identical — trees, order, charges, counters, and the
  // generator fast-forwarded to the same exit state.
  const PackSnapshot replay = run_pack(g, 1, config);
  EXPECT_EQ(cache.hits(), hits0 + 1);
  EXPECT_EQ(cache.misses(), misses0 + 1);
  EXPECT_EQ(replay, first);
  cache.clear();
}

TEST(PackingCache, DifferentSeedOrConfigMisses) {
  Rng grng(43);
  const WeightedGraph g = erdos_renyi_connected(36, 0.2, grng);
  auto& cache = mincut::PackingCache::global();
  cache.clear();
  (void)run_pack(g, 1, {}, /*seed=*/7);

  const std::int64_t hits0 = cache.hits();
  (void)run_pack(g, 1, {}, /*seed=*/8);  // different entry rng state
  mincut::PackingConfig capped;
  capped.max_trees = 3;
  (void)run_pack(g, 1, capped, /*seed=*/7);  // different config fingerprint
  EXPECT_EQ(cache.hits(), hits0);
  cache.clear();
}

TEST(PackingCache, WeightMutationInvalidates) {
  Rng grng(47);
  WeightedGraph g = erdos_renyi_connected(36, 0.2, grng);
  auto& cache = mincut::PackingCache::global();
  cache.clear();
  (void)run_pack(g, 1, {});

  // Any weight mutation changes the graph fingerprint — that IS the
  // invalidation rule; no explicit invalidate call exists or is needed.
  g.set_weight(0, g.edge(0).w + 1);
  const std::int64_t hits0 = cache.hits();
  const std::int64_t misses0 = cache.misses();
  (void)run_pack(g, 1, {});
  EXPECT_EQ(cache.hits(), hits0);
  EXPECT_EQ(cache.misses(), misses0 + 1);
  cache.clear();
}

TEST(PackingCache, LruEvictsBeyondCapacity) {
  Rng grng(53);
  const WeightedGraph a = erdos_renyi_connected(30, 0.2, grng);
  const WeightedGraph b = erdos_renyi_connected(30, 0.2, grng);
  auto& cache = mincut::PackingCache::global();
  cache.clear();
  cache.set_capacity(1);

  (void)run_pack(a, 1, {});
  EXPECT_EQ(cache.size(), 1u);
  (void)run_pack(b, 1, {});  // evicts a's entry
  EXPECT_EQ(cache.size(), 1u);
  const std::int64_t hits0 = cache.hits();
  (void)run_pack(a, 1, {});  // miss: evicted
  EXPECT_EQ(cache.hits(), hits0);
  (void)run_pack(a, 1, {});  // hit: re-inserted by the miss above
  EXPECT_EQ(cache.hits(), hits0 + 1);

  cache.set_capacity(4);  // restore the default for later tests
  cache.clear();
}

TEST(PackingCache, GuardedSelfCheckReplayHitsCache) {
  // The motivating consumer: exact_mincut_guarded's determinism guard
  // replays the packing from the same seed. The primary solve populates the
  // cache; the replay must be served from it.
  Rng grng(59);
  const WeightedGraph g = erdos_renyi_connected(36, 0.2, grng);
  auto& cache = mincut::PackingCache::global();
  cache.clear();
  const std::int64_t hits0 = cache.hits();

  minoragg::Ledger ledger;
  mincut::GuardConfig config;
  config.self_check = true;
  const auto r = mincut::exact_mincut_guarded(g, /*seed=*/7, ledger, config);
  EXPECT_FALSE(r.diagnosis.used_fallback) << r.diagnosis.to_string();
  EXPECT_GE(cache.hits(), hits0 + 1) << "the self-check replay must be a cache hit";
  cache.clear();
}

TEST(PackingCache, GraphFingerprintSeparatesGraphs) {
  WeightedGraph a(3);
  a.add_edge(0, 1, 1);
  a.add_edge(1, 2, 2);
  WeightedGraph b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 3);  // same topology, one weight differs
  WeightedGraph c(3);
  c.add_edge(0, 1, 1);
  c.add_edge(0, 2, 2);  // same weights, one endpoint differs
  const auto fa = mincut::graph_fingerprint(a);
  EXPECT_EQ(fa, mincut::graph_fingerprint(a));
  EXPECT_NE(fa, mincut::graph_fingerprint(b));
  EXPECT_NE(fa, mincut::graph_fingerprint(c));
}

}  // namespace
}  // namespace umc
