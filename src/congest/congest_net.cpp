#include "congest/congest_net.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace umc::congest {

#if !defined(UMC_OBS_DISABLED)
namespace {

// Cached registry references: one map walk at first use, atomic ops after.
struct CongestMetrics {
  obs::Counter& rounds = obs::MetricsRegistry::global().counter(
      "umc_congest_rounds_total", {}, "Physical CONGEST rounds executed.");
  obs::Counter& messages = obs::MetricsRegistry::global().counter(
      "umc_congest_messages_total", {}, "Messages staged onto the wire (pre-fault).");
  obs::Counter& bits = obs::MetricsRegistry::global().counter(
      "umc_congest_bits_total", {},
      "Model bits staged: messages x 2 words of ceil(log2 n) bits.");
  obs::Histogram& utilization = obs::MetricsRegistry::global().histogram(
      "umc_congest_slot_utilization_percent", {1, 5, 10, 25, 50, 75, 90, 100}, {},
      "Per-round percentage of the 2m edge-direction slots carrying a message.");
};

CongestMetrics& congest_metrics() {
  static CongestMetrics m;
  return m;
}

}  // namespace
#endif

CongestNetwork::CongestNetwork(const WeightedGraph& g)
    : g_(&g),
      slot_used_(static_cast<std::size_t>(g.m()) * 2, false),
      inbox_(static_cast<std::size_t>(g.n())) {}

void CongestNetwork::send(NodeId from, EdgeId via, std::int64_t payload, std::int64_t aux) {
  const Edge& e = g_->edge(via);
  UMC_ASSERT(from == e.u || from == e.v);
  const std::size_t slot = static_cast<std::size_t>(via) * 2 + (from == e.v ? 1 : 0);
  UMC_ASSERT_MSG(!slot_used_[slot], "one message per edge-direction per round (CONGEST)");
  slot_used_[slot] = true;
  staged_.push_back(Message{from, via, payload, aux});
}

void CongestNetwork::clear_staging() {
  staged_.clear();
  std::fill(slot_used_.begin(), slot_used_.end(), false);
}

void CongestNetwork::deliver_physical() {
  UMC_OBS_SPAN_VAR_L(obs_round, "congest/round", "congest", rounds_);
  obs_round.arg("messages", static_cast<std::int64_t>(staged_.size()));
#if !defined(UMC_OBS_DISABLED)
  {
    CongestMetrics& m = congest_metrics();
    m.rounds.inc();
    const auto staged_n = static_cast<std::int64_t>(staged_.size());
    m.messages.inc(staged_n);
    // A message carries two words, each O(log n) bits in the model.
    const std::int64_t word_bits =
        std::bit_width(static_cast<std::uint64_t>(g_->n()) | 1);
    m.bits.inc(staged_n * 2 * word_bits);
    if (g_->m() > 0) m.utilization.observe(staged_n * 100 / (2 * g_->m()));
  }
#endif
  // Inboxes hold only the latest round's traffic.
  for (auto& box : inbox_) box.clear();
  if (fault_ != nullptr) fault_->filter_wire(rounds_, staged_);
  for (const Message& m : staged_) {
    const NodeId to = g_->edge(m.via).other(m.from);
    inbox_[static_cast<std::size_t>(to)].push_back(m);
  }
  clear_staging();
  ++rounds_;
}

void CongestNetwork::end_round() { deliver_physical(); }

}  // namespace umc::congest
