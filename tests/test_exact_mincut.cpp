// End-to-end tests for tree packing (Theorem 12) and the exact min-cut
// (Theorem 1), cross-checked against Stoer-Wagner on every graph family the
// paper's bounds address.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/tree_packing.hpp"
#include "tree/rooted_tree.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

void expect_exact(const WeightedGraph& g, Rng& rng, const PackingConfig& config = {}) {
  minoragg::Ledger ledger;
  const ExactMinCutResult got = exact_mincut(g, rng, ledger, config);
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value);
  EXPECT_GT(ledger.rounds(), 0);
}

TEST(TreePacking, ProducesValidSpanningTrees) {
  Rng rng(3);
  WeightedGraph g = erdos_renyi_connected(30, 0.2, rng);
  randomize_weights(g, 1, 9, rng);
  minoragg::Ledger ledger;
  const TreePacking packing = tree_packing(g, rng, ledger);
  EXPECT_GE(packing.trees.size(), 1u);
  for (const auto& tree : packing.trees) {
    const RootedTree t(g, tree, 0);  // throws unless a spanning tree
    EXPECT_EQ(t.subtree_size(0), g.n());
  }
}

TEST(TreePacking, SomeTreeTwoRespectsTheMinCut) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    WeightedGraph g = erdos_renyi_connected(25, 0.25, rng);
    randomize_weights(g, 1, 12, rng);
    minoragg::Ledger ledger;
    const TreePacking packing = tree_packing(g, rng, ledger);
    const auto cut = baseline::stoer_wagner(g);
    std::vector<bool> in_side(static_cast<std::size_t>(g.n()), false);
    for (const NodeId v : cut.side) in_side[static_cast<std::size_t>(v)] = true;
    int best_crossing = g.n();
    for (const auto& tree : packing.trees) {
      int crossing = 0;
      for (const EdgeId e : tree)
        crossing += in_side[static_cast<std::size_t>(g.edge(e).u)] !=
                            in_side[static_cast<std::size_t>(g.edge(e).v)]
                        ? 1
                        : 0;
      best_crossing = std::min(best_crossing, crossing);
    }
    EXPECT_LE(best_crossing, 2) << "Theorem 12 whp guarantee, trial " << trial;
  }
}

TEST(TreePacking, SamplingRouteOnHighlyConnectedGraphs) {
  Rng rng(7);
  WeightedGraph g = complete_graph(24);
  randomize_weights(g, 40, 80, rng);  // lambda >> log n forces case (B)
  minoragg::Ledger ledger;
  PackingConfig config;
  config.max_trees = 40;
  const TreePacking packing = tree_packing(g, rng, ledger, config);
  EXPECT_TRUE(packing.sampled);
  EXPECT_GE(packing.trees.size(), 1u);
  for (const auto& tree : packing.trees) {
    const RootedTree t(g, tree, 0);
    EXPECT_EQ(t.subtree_size(0), g.n());
  }
}

TEST(ExactMinCut, TwoNodeGraph) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 1, 4);
  Rng rng(11);
  minoragg::Ledger ledger;
  EXPECT_EQ(exact_mincut(g, rng, ledger).value, 7);
}

TEST(ExactMinCut, DumbbellFindsTheBridge) {
  Rng rng(13);
  WeightedGraph g = dumbbell(6, 4);
  expect_exact(g, rng);
}

TEST(ExactMinCut, RandomWeightedGraphs) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    WeightedGraph g = erdos_renyi_connected(18 + 3 * trial, 0.25, rng);
    randomize_weights(g, 1, 20, rng);
    expect_exact(g, rng);
  }
}

TEST(ExactMinCut, PlanarGrids) {
  Rng rng(19);
  for (int trial = 0; trial < 3; ++trial) {
    WeightedGraph g = random_planar_grid(5, 5, 0.4, rng);
    randomize_weights(g, 1, 15, rng);
    expect_exact(g, rng);
  }
}

TEST(ExactMinCut, KTreeFamily) {
  Rng rng(23);
  WeightedGraph g = ktree(20, 3, rng);
  randomize_weights(g, 1, 10, rng);
  expect_exact(g, rng);
}

TEST(ExactMinCut, HighConnectivitySampledRoute) {
  Rng rng(29);
  WeightedGraph g = complete_graph(16);
  randomize_weights(g, 30, 60, rng);
  PackingConfig config;
  config.max_trees = 60;
  expect_exact(g, rng, config);
}

TEST(ExactMinCut, WellConnectedExpanderFamily) {
  // Theorem 1 bullet 3 family: small diameter, good expansion.
  Rng rng(41);
  WeightedGraph g = ring_expander(48, 3, rng);
  randomize_weights(g, 1, 12, rng);
  PackingConfig config;
  config.max_trees = 40;
  expect_exact(g, rng, config);
}

TEST(ExactMinCut, UnweightedCycleValueIsTwo) {
  Rng rng(31);
  WeightedGraph g = cycle_graph(20);
  minoragg::Ledger ledger;
  EXPECT_EQ(exact_mincut(g, rng, ledger).value, 2);
}

TEST(ExactMinCut, RoundsArePolylogInMinorAggregation) {
  Rng rng(37);
  std::int64_t rounds_small = 0, rounds_large = 0;
  for (const NodeId side : {6, 12}) {
    WeightedGraph g = grid_graph(side, side);
    randomize_weights(g, 1, 9, rng);
    minoragg::Ledger ledger;
    PackingConfig config;
    config.max_trees = 8;  // fixed packing budget isolates the solver's cost
    (void)exact_mincut(g, rng, ledger, config);
    (side == 6 ? rounds_small : rounds_large) = ledger.rounds();
  }
  // 4x more nodes: the round count is poly(log n) with a high exponent
  // (the loop nest of Theorems 39/40 is ~log^7), so at these small sizes
  // the ratio is noticeably above 1 but far below the ~4x a linear-round
  // algorithm with the same constants would show at scale; the wide-range
  // scaling evidence lives in bench_two_respecting / EXPERIMENTS.md.
  EXPECT_LT(rounds_large, 6 * rounds_small);
}

}  // namespace
}  // namespace umc::mincut
