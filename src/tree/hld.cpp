#include "tree/hld.hpp"

#include <algorithm>

namespace umc {

HeavyLightDecomposition::HeavyLightDecomposition(const RootedTree& t) : t_(&t) {
  const NodeId n = t.n();
  heavy_child_.assign(static_cast<std::size_t>(n), kNoNode);
  hl_depth_.assign(static_cast<std::size_t>(n), 0);
  head_.assign(static_cast<std::size_t>(n), kNoNode);
  info_.assign(static_cast<std::size_t>(n), HlInfo{});

  // Heavy child: the child with the largest subtree (ties by first in child
  // order, matching "breaking ties arbitrarily").
  for (NodeId v = 0; v < n; ++v) {
    NodeId best = kNoNode;
    NodeId best_size = 0;
    for (const NodeId c : t.children(v)) {
      if (t.subtree_size(c) > best_size) {
        best_size = t.subtree_size(c);
        best = c;
      }
    }
    heavy_child_[static_cast<std::size_t>(v)] = best;
  }

  // Propagate hl-depth / head / HL-info down the preorder.
  for (const NodeId v : t.preorder()) {
    const NodeId p = t.parent(v);
    if (p == kNoNode) {
      hl_depth_[static_cast<std::size_t>(v)] = 0;
      head_[static_cast<std::size_t>(v)] = v;
      info_[static_cast<std::size_t>(v)] = HlInfo{0, {}};
      continue;
    }
    const bool heavy = heavy_child_[static_cast<std::size_t>(p)] == v;
    HlInfo inf = info_[static_cast<std::size_t>(p)];
    inf.depth = t.depth(v);
    if (heavy) {
      hl_depth_[static_cast<std::size_t>(v)] = hl_depth_[static_cast<std::size_t>(p)];
      head_[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(p)];
    } else {
      hl_depth_[static_cast<std::size_t>(v)] = hl_depth_[static_cast<std::size_t>(p)] + 1;
      head_[static_cast<std::size_t>(v)] = v;
      inf.light_edges.push_back(LightEdge{p, v, t.depth(p), t.depth(v)});
    }
    info_[static_cast<std::size_t>(v)] = std::move(inf);
    max_hl_depth_ = std::max(max_hl_depth_, hl_depth_[static_cast<std::size_t>(v)]);
  }
}

bool HeavyLightDecomposition::is_heavy(EdgeId e) const {
  const NodeId b = t_->bottom(e);
  return heavy_child_[static_cast<std::size_t>(t_->parent(b))] == b;
}

EdgeId HeavyLightDecomposition::hl_path_id(EdgeId e) const {
  const NodeId h = chain_head(t_->bottom(e));
  return t_->parent_edge(h);  // kNoEdge for the root chain
}

namespace {
/// The node where x's root path leaves the common heavy chain: top of the
/// first non-common light edge, or x itself if none remains.
struct Divergence {
  NodeId node;
  int depth;
};

Divergence divergence(NodeId x, const HlInfo& ix, std::size_t common_prefix) {
  if (common_prefix < ix.light_edges.size()) {
    const LightEdge& l = ix.light_edges[common_prefix];
    return Divergence{l.top, l.top_depth};
  }
  return Divergence{x, ix.depth};
}
}  // namespace

NodeId HeavyLightDecomposition::lca_from_info(NodeId u, const HlInfo& iu, NodeId v,
                                              const HlInfo& iv) {
  std::size_t k = 0;
  const std::size_t limit = std::min(iu.light_edges.size(), iv.light_edges.size());
  while (k < limit && iu.light_edges[k] == iv.light_edges[k]) ++k;
  const Divergence du = divergence(u, iu, k);
  const Divergence dv = divergence(v, iv, k);
  // Both divergence points lie on the same descending heavy chain; the
  // shallower one is the LCA.
  return du.depth <= dv.depth ? du.node : dv.node;
}

int HeavyLightDecomposition::lca_depth_from_info(const HlInfo& iu, const HlInfo& iv) {
  std::size_t k = 0;
  const std::size_t limit = std::min(iu.light_edges.size(), iv.light_edges.size());
  while (k < limit && iu.light_edges[k] == iv.light_edges[k]) ++k;
  const int depth_u = k < iu.light_edges.size() ? iu.light_edges[k].top_depth : iu.depth;
  const int depth_v = k < iv.light_edges.size() ? iv.light_edges[k].top_depth : iv.depth;
  return std::min(depth_u, depth_v);
}

}  // namespace umc
