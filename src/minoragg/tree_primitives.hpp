#pragma once

// Deterministic tree primitives of Appendix A / Lemma 16:
//   * heavy-light subtree and ancestor sums (Lemma 46),
//   * deterministic heavy-light construction via star-merging (Lemma 47 /
//     Theorem 48),
//   * centroid finding (Lemma 42).
//
// Subtree/ancestor sums are implemented literally: HL-chains of equal
// HL-depth are processed deepest-first; within one depth all chains are
// node-disjoint and their Lemma 45 path sums run simultaneously
// (Corollary 11 — the ledger takes the max across chains).
//
// The HL construction runs the real Lemma 47 merging schedule (part graph,
// deterministic star-merging with real Cole-Vishkin rounds, joiner→receiver
// merges) and charges each iteration's within-part relabeling at the
// Lemma 46 cost; the labels themselves equal the reference construction's
// (the lemma's invariant pins them up to heavy-tie-breaking, which both
// sides break identically).
//
// Wall-clock: the model already says chains of one HL-depth are
// node-disjoint and run simultaneously, so the host executes them on the
// shared thread pool — each chain writes only its own nodes' slots and its
// own ledger, and per-chain ledgers merge in chain order, keeping both
// outputs and round accounting bit-identical to sequential execution.

#include <span>
#include <vector>

#include "minoragg/ledger.hpp"
#include "minoragg/path_sums.hpp"
#include "sketch/aggregators.hpp"
#include "tree/hld.hpp"
#include "tree/rooted_tree.hpp"
#include "util/thread_pool.hpp"

namespace umc::minoragg {

namespace detail {
/// Host-parallelism width for one level of node-disjoint chains: spread
/// chains over UMC_THREADS unless the level is too small to be worth the
/// fan-out.
inline int chain_level_width(std::size_t num_chains, std::size_t level_nodes) {
  if (num_chains < 2 || level_nodes < (1u << 13)) return 1;
  const std::size_t cap = static_cast<std::size_t>(ThreadPool::configured_threads());
  return static_cast<int>(num_chains < cap ? num_chains : cap);
}
}  // namespace detail

/// The HL-chains (maximal heavy paths) of the decomposition, grouped by
/// HL-depth; each chain lists its nodes top-to-bottom. Bookkeeping only.
[[nodiscard]] std::vector<std::vector<std::vector<NodeId>>> chains_by_hl_depth(
    const RootedTree& t, const HeavyLightDecomposition& hld);

/// Lemma 46 (subtree sums): s_v = fold of input over desc(v).
template <Aggregator A>
std::vector<typename A::value_type> hl_subtree_sums(
    const RootedTree& t, const HeavyLightDecomposition& hld,
    std::span<const typename A::value_type> input, Ledger& ledger) {
  using V = typename A::value_type;
  UMC_ASSERT(static_cast<NodeId>(input.size()) == t.n());
  const auto chains = chains_by_hl_depth(t, hld);
  std::vector<V> s(input.begin(), input.end());  // filled deepest-first
  for (int d = static_cast<int>(chains.size()) - 1; d >= 0; --d) {
    const auto& level_chains = chains[static_cast<std::size_t>(d)];
    std::size_t level_nodes = 0;
    for (const auto& chain : level_chains) level_nodes += chain.size();
    Ledger level;  // chains at one depth run simultaneously (Cor. 11)
    std::vector<Ledger> chain_ledgers(level_chains.size());
    // Chains are node-disjoint and only read results of deeper levels, so
    // each writes disjoint slots of `s` and its own ledger slot.
    ThreadPool::global().run(
        level_chains.size(), detail::chain_level_width(level_chains.size(), level_nodes),
        [&](std::size_t ci) {
          const std::vector<NodeId>& chain = level_chains[ci];
          // x_v = input_v ⊕ (already-computed sums of non-heavy children).
          std::vector<V> x;
          x.reserve(chain.size());
          for (const NodeId v : chain) {
            V acc = input[static_cast<std::size_t>(v)];
            for (const NodeId c : t.children(v)) {
              if (hld.chain_head(c) == c)  // non-heavy child: starts its own chain
                acc = A::merge(std::move(acc), s[static_cast<std::size_t>(c)]);
            }
            x.push_back(std::move(acc));
          }
          Ledger& cl = chain_ledgers[ci];
          cl.charge(1);  // the x_v initialization round (edge-local pass)
          std::vector<V> suf = path_suffix_sums<A>(std::span<const V>(x), cl);
          for (std::size_t i = 0; i < chain.size(); ++i)
            s[static_cast<std::size_t>(chain[i])] = std::move(suf[i]);
        });
    level.charge_parallel(chain_ledgers);
    ledger.charge_sequential(level);
  }
  return s;
}

/// Lemma 46 (ancestor sums): p_v = fold of input over anc(v) (v included).
template <Aggregator A>
std::vector<typename A::value_type> hl_ancestor_sums(
    const RootedTree& t, const HeavyLightDecomposition& hld,
    std::span<const typename A::value_type> input, Ledger& ledger) {
  using V = typename A::value_type;
  UMC_ASSERT(static_cast<NodeId>(input.size()) == t.n());
  const auto chains = chains_by_hl_depth(t, hld);
  std::vector<V> p(static_cast<std::size_t>(t.n()), A::identity());
  for (std::size_t d = 0; d < chains.size(); ++d) {
    const auto& level_chains = chains[d];
    std::size_t level_nodes = 0;
    for (const auto& chain : level_chains) level_nodes += chain.size();
    Ledger level;
    std::vector<Ledger> chain_ledgers(level_chains.size());
    // Node-disjoint chains; the carry reads only shallower (already
    // complete) levels, so parallel execution stays bit-identical.
    ThreadPool::global().run(
        level_chains.size(), detail::chain_level_width(level_chains.size(), level_nodes),
        [&](std::size_t ci) {
          const std::vector<NodeId>& chain = level_chains[ci];
          // Carry = ancestor sum of the chain head's parent (shallower
          // depth, already computed).
          const NodeId head = chain.front();
          const NodeId above = t.parent(head);
          std::vector<V> x;
          x.reserve(chain.size());
          for (std::size_t i = 0; i < chain.size(); ++i) {
            V val = input[static_cast<std::size_t>(chain[i])];
            if (i == 0 && above != kNoNode)
              val = A::merge(p[static_cast<std::size_t>(above)], std::move(val));
            x.push_back(std::move(val));
          }
          Ledger& cl = chain_ledgers[ci];
          cl.charge(1);
          std::vector<V> pre = path_prefix_sums<A>(std::span<const V>(x), cl);
          for (std::size_t i = 0; i < chain.size(); ++i)
            p[static_cast<std::size_t>(chain[i])] = std::move(pre[i]);
        });
    level.charge_parallel(chain_ledgers);
    ledger.charge_sequential(level);
  }
  return p;
}

/// Lemma 47 / Theorem 48: deterministic heavy-light construction. Runs the
/// real merging schedule (star merges over the part graph) for round
/// accounting and returns the decomposition. Counters:
/// "hl_merge_iterations", "cv_iterations".
[[nodiscard]] HeavyLightDecomposition hl_construct(const RootedTree& t, Ledger& ledger);

/// Lemma 42: centroid via one subtree-sum plus two constant rounds.
[[nodiscard]] NodeId find_centroid_ma(const RootedTree& t, const HeavyLightDecomposition& hld,
                                      Ledger& ledger);

/// Theorem 48: orient an UNROOTED tree toward `root` and build the rooted
/// structure. Runs the real merging schedule — each part marks an ARBITRARY
/// adjacent outgoing edge (2-cycles possible, which the Cole-Vishkin star
/// merging tolerates), joiners merge into receivers, and each iteration
/// pays the orientation-fix + relabel cost of the proof. Counter:
/// "orient_merge_iterations".
[[nodiscard]] RootedTree orient_tree(const WeightedGraph& g, std::span<const EdgeId> tree_edges,
                                     NodeId root, Ledger& ledger);

}  // namespace umc::minoragg
