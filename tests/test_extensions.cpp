// Tests for the extension modules: graph IO, cut witnesses, Karger-Stein,
// the new generators, and the Theorem 1 bullet-3/4 compile targets.

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/karger_stein.hpp"
#include "baseline/stoer_wagner.hpp"
#include "congest/compile.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "mincut/two_respect.hpp"
#include "mincut/witness.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  Rng rng(3);
  WeightedGraph g = erdos_renyi_connected(20, 0.2, rng);
  randomize_weights(g, 1, 99, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const WeightedGraph h = read_edge_list(ss);
  ASSERT_EQ(h.n(), g.n());
  ASSERT_EQ(h.m(), g.m());
  for (EdgeId e = 0; e < g.m(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_EQ(h.edge(e).w, g.edge(e).w);
  }
}

TEST(GraphIo, ParsesCommentsAndDefaultWeights) {
  std::stringstream ss("# header comment\n\n3\n0 1\n1 2 7  # inline comment\n");
  const WeightedGraph g = read_edge_list(ss);
  EXPECT_EQ(g.n(), 3);
  EXPECT_EQ(g.m(), 2);
  EXPECT_EQ(g.edge(0).w, 1);
  EXPECT_EQ(g.edge(1).w, 7);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("3\n0 5 2\n");  // endpoint out of range
    EXPECT_THROW((void)read_edge_list(ss), invariant_error);
  }
  {
    std::stringstream ss("3\n0 1 2 junk\n");
    EXPECT_THROW((void)read_edge_list(ss), invariant_error);
  }
  {
    std::stringstream ss("# only comments\n");
    EXPECT_THROW((void)read_edge_list(ss), invariant_error);
  }
  {
    std::stringstream ss("2\n0\n");  // missing second endpoint
    EXPECT_THROW((void)read_edge_list(ss), invariant_error);
  }
  EXPECT_THROW((void)read_edge_list_file("/nonexistent/path/graph.txt"), invariant_error);
}

TEST(Witness, MatchesReportedValueOnRandomGraphs) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    WeightedGraph g = random_connected(25, 70, rng);
    randomize_weights(g, 1, 20, rng);
    const auto tree = bfs_spanning_tree(g, 0);
    minoragg::Ledger ledger;
    const mincut::CutResult r = mincut::two_respecting_mincut(g, tree, 0, ledger);
    const RootedTree t(g, tree, 0);
    const mincut::CutWitness w = mincut::cut_witness(t, r);
    EXPECT_EQ(w.value, r.value);
    // The witness side is non-trivial.
    int inside = 0;
    for (const bool b : w.side) inside += b ? 1 : 0;
    EXPECT_GT(inside, 0);
    EXPECT_LT(inside, g.n());
    // Crossing weights sum to the value.
    Weight sum = 0;
    for (const EdgeId e : w.crossing) sum += g.edge(e).w;
    EXPECT_EQ(sum, r.value);
  }
}

TEST(Witness, NestedPairCarvesARing) {
  // Path 0-1-2-3-4: pair ({0,1}, {2,3}) carves the ring {1, 2}.
  const WeightedGraph g = path_graph(5);
  std::vector<EdgeId> tree = {0, 1, 2, 3};
  const RootedTree t(g, tree, 0);
  const mincut::CutWitness w = mincut::cut_witness(t, 0, 2);
  EXPECT_FALSE(w.side[0]);
  EXPECT_TRUE(w.side[1]);
  EXPECT_TRUE(w.side[2]);
  EXPECT_FALSE(w.side[3]);
  EXPECT_FALSE(w.side[4]);
  EXPECT_EQ(w.value, 2);  // the two tree edges themselves
}

TEST(KargerStein, MatchesStoerWagner) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    WeightedGraph g = erdos_renyi_connected(16, 0.3, rng);
    randomize_weights(g, 1, 15, rng);
    const Weight want = baseline::stoer_wagner(g).value;
    const Weight got = baseline::karger_stein_min_cut(g, 24, rng);
    EXPECT_GE(got, want);
    EXPECT_EQ(got, want) << "24 repeats on n=16 should find the optimum";
  }
}

TEST(Generators, CompleteBipartiteAndBinaryTree) {
  const WeightedGraph kb = complete_bipartite(3, 4);
  EXPECT_EQ(kb.n(), 7);
  EXPECT_EQ(kb.m(), 12);
  EXPECT_TRUE(is_connected(kb));
  const WeightedGraph bt = binary_tree(15);
  EXPECT_EQ(bt.m(), 14);
  EXPECT_EQ(exact_diameter(bt), 6);  // leaf-to-leaf through the root
}

TEST(Generators, RingExpanderHasSmallDiameter) {
  Rng rng(9);
  const WeightedGraph g = ring_expander(256, 3, rng);
  EXPECT_TRUE(is_connected(g));
  // Ring alone: D = 128; with 3 random matchings: D = O(log n).
  EXPECT_LE(exact_diameter(g), 16);
}

TEST(CompileTargets, WellConnectedModelIsSubSqrtN) {
  Rng rng(11);
  const WeightedGraph g = ring_expander(1024, 3, rng);
  minoragg::Ledger ledger;
  ledger.charge(1);
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, 1);
  // 2^(2*sqrt(log2 n)) << sqrt(n) for large n; at n=1024 they are close,
  // and the model value must at least be positive and sub-linear.
  EXPECT_GT(cost.pa_rounds_well_connected, 1);
  EXPECT_LT(cost.pa_rounds_well_connected, 1024);
  EXPECT_GT(cost.congest_rounds_well_connected(), 0);
}

}  // namespace
}  // namespace umc
