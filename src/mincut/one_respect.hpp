#pragma once

// 1-respecting min-cut (Section 5, Theorem 18).
//
// Given an instance (graph + rooted spanning tree), computes Cut(e) for
// EVERY tree edge in Õ(1) Minor-Aggregation rounds:
//   1. one aggregation round accumulates A(v) = weighted degree;
//   2. every graph edge locally derives its endpoints' LCA from HL-info
//      (Fact 4); ancestor-descendant edges deliver their -2w correction to
//      the LCA in one aggregation round, all others route it through a
//      subtree sum with a bounded associative-map aggregator;
//   3. one subtree sum over A yields Cut(parent_edge(x)) at every x.

#include <vector>

#include "mincut/instance.hpp"
#include "minoragg/ledger.hpp"
#include "tree/hld.hpp"
#include "tree/rooted_tree.hpp"

namespace umc::mincut {

struct OneRespectResult {
  /// Cut_{T,G}(e) per host edge id (0 for non-tree edges).
  std::vector<Weight> cut;
  /// Minimum over candidate tree edges (those with origin != kNoEdge),
  /// reported with the ORIGINAL tree edge id.
  CutResult best;
};

/// `origin[e]` (per host edge) marks candidates and names them in `best`;
/// the host graph is `t.host()`.
[[nodiscard]] OneRespectResult one_respecting_cuts(const RootedTree& t,
                                                   std::span<const EdgeId> origin,
                                                   const HeavyLightDecomposition& hld,
                                                   minoragg::Ledger& ledger);

}  // namespace umc::mincut
