// Tests for rooted trees, LCA, heavy-light decomposition (Definition 2,
// Facts 3 & 4), centroids (Fact 41), and spanning-tree constructions.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "tree/centroid.hpp"
#include "tree/hld.hpp"
#include "tree/lca.hpp"
#include "tree/rooted_tree.hpp"
#include "tree/spanning.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

RootedTree tree_of(const WeightedGraph& g, NodeId root = 0) {
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e) ids[static_cast<std::size_t>(e)] = e;
  return RootedTree(g, ids, root);
}

TEST(RootedTree, PathStructure) {
  const WeightedGraph g = path_graph(5);
  const RootedTree t = tree_of(g);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(0), kNoNode);
  EXPECT_EQ(t.parent(3), 2);
  EXPECT_EQ(t.depth(4), 4);
  EXPECT_EQ(t.subtree_size(0), 5);
  EXPECT_EQ(t.subtree_size(4), 1);
  EXPECT_TRUE(t.is_ancestor(1, 4));
  EXPECT_TRUE(t.is_ancestor(2, 2));
  EXPECT_FALSE(t.is_ancestor(4, 1));
}

TEST(RootedTree, TopBottomOfEdges) {
  const WeightedGraph g = star_graph(4);
  const RootedTree t = tree_of(g);
  for (EdgeId e = 0; e < g.m(); ++e) {
    EXPECT_EQ(t.top(e), 0);
    EXPECT_NE(t.bottom(e), 0);
  }
}

TEST(RootedTree, RejectsNonSpanningEdges) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<EdgeId> not_spanning = {0, 1};
  EXPECT_THROW(RootedTree(g, not_spanning, 0), invariant_error);
  const std::vector<EdgeId> cycle = {0, 1, 2, 3};
  EXPECT_THROW(RootedTree(g, cycle, 0), invariant_error);
}

TEST(Lca, AgainstBruteForceOnRandomTrees) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const WeightedGraph g = random_tree(60, rng);
    const RootedTree t = tree_of(g);
    const LcaOracle lca(t);
    for (int q = 0; q < 200; ++q) {
      const NodeId u = static_cast<NodeId>(rng.next_below(60));
      const NodeId v = static_cast<NodeId>(rng.next_below(60));
      // Brute force: climb both to the root, intersect.
      std::set<NodeId> anc;
      for (NodeId x = u; x != kNoNode; x = t.parent(x)) anc.insert(x);
      NodeId expected = v;
      while (anc.count(expected) == 0) expected = t.parent(expected);
      EXPECT_EQ(lca.lca(u, v), expected);
      EXPECT_EQ(lca.distance(u, v),
                t.depth(u) + t.depth(v) - 2 * t.depth(expected));
    }
  }
}

TEST(Hld, HeavyEdgesFollowLargestSubtree) {
  // Caterpillar: a path with pendant leaves; heavy edges are the spine.
  WeightedGraph g(7);
  g.add_edge(0, 1);  // spine
  g.add_edge(1, 2);  // spine
  g.add_edge(2, 3);  // spine
  g.add_edge(0, 4);  // leaf
  g.add_edge(1, 5);  // leaf
  g.add_edge(2, 6);  // leaf
  const RootedTree t = tree_of(g);
  const HeavyLightDecomposition hld(t);
  EXPECT_TRUE(hld.is_heavy(0));
  EXPECT_TRUE(hld.is_heavy(1));
  EXPECT_FALSE(hld.is_heavy(3));  // {0,4}
  EXPECT_EQ(hld.hl_depth(4), 1);
  EXPECT_EQ(hld.hl_depth(3), 0);
}

TEST(Hld, Fact3LightEdgesLogarithmicallyMany) {
  Rng rng(23);
  for (const NodeId n : {2, 10, 100, 500}) {
    const WeightedGraph g = random_tree(n, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    const int bound = floor_log2(static_cast<std::uint64_t>(n)) + 1;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_LE(hld.hl_depth(v), bound);
      EXPECT_EQ(static_cast<int>(hld.info(v).light_edges.size()), hld.hl_depth(v));
    }
  }
}

TEST(Hld, Fact4LcaFromInfoMatchesOracle) {
  Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    const WeightedGraph g = random_tree(80, rng);
    const RootedTree t = tree_of(g);
    const HeavyLightDecomposition hld(t);
    const LcaOracle lca(t);
    for (int q = 0; q < 300; ++q) {
      const NodeId u = static_cast<NodeId>(rng.next_below(80));
      const NodeId v = static_cast<NodeId>(rng.next_below(80));
      const NodeId expected = lca.lca(u, v);
      EXPECT_EQ(HeavyLightDecomposition::lca_from_info(u, hld.info(u), v, hld.info(v)),
                expected);
      EXPECT_EQ(HeavyLightDecomposition::lca_depth_from_info(hld.info(u), hld.info(v)),
                t.depth(expected));
    }
  }
}

TEST(Hld, HlPathsPartitionTreeEdges) {
  Rng rng(31);
  const WeightedGraph g = random_tree(120, rng);
  const RootedTree t = tree_of(g);
  const HeavyLightDecomposition hld(t);
  // Every edge belongs to exactly one HL-path; edges of one path share the
  // path's HL-depth and form a descending chain.
  std::set<std::pair<EdgeId, EdgeId>> seen;
  for (EdgeId e = 0; e < g.m(); ++e) {
    const EdgeId pid = hld.hl_path_id(e);
    seen.insert({pid, e});
    if (pid != kNoEdge) {
      EXPECT_EQ(hld.hl_depth_edge(pid), hld.hl_depth_edge(e));
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.m()));
}

TEST(Centroid, Fact41OnFamilies) {
  Rng rng(37);
  for (const NodeId n : {1, 2, 3, 10, 101, 256}) {
    const WeightedGraph g = random_tree(n, rng);
    const RootedTree t = tree_of(g);
    const NodeId c = find_centroid(t);
    EXPECT_LE(largest_component_after_removal(t, c), n / 2);
  }
  // A path's centroid is its middle.
  const WeightedGraph p = path_graph(9);
  EXPECT_EQ(find_centroid(tree_of(p)), 4);
}

TEST(Spanning, BfsTreeDepthEqualsEccentricity) {
  const WeightedGraph g = grid_graph(5, 5);
  const auto tree = bfs_spanning_tree(g, 0);
  EXPECT_EQ(tree.size(), 24u);
  const RootedTree t(g, tree, 0);
  int max_depth = 0;
  for (NodeId v = 0; v < g.n(); ++v) max_depth = std::max(max_depth, t.depth(v));
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(max_depth, *std::max_element(dist.begin(), dist.end()));
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(t.depth(v), dist[static_cast<std::size_t>(v)]);
}

TEST(Spanning, KruskalMatchesKnownMst) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 5);
  g.add_edge(3, 0, 4);
  g.add_edge(0, 2, 3);
  const auto mst = kruskal_mst(g);
  Weight total = 0;
  for (const EdgeId e : mst) total += g.edge(e).w;
  // {0,1}=1, {1,2}=2, then {0,2}=3 closes a cycle, so {3,0}=4 joins node 3.
  EXPECT_EQ(total, 1 + 2 + 4);
}

TEST(Spanning, KruskalEqualWeightsBreakTiesByEdgeId) {
  // The packing producer's determinism contract leans on a strict total
  // order (cost, edge id); kruskal_mst pins the same rule. On a cycle of
  // equal weights the MST must drop exactly the highest-id edge — any
  // unstable sort or different tie-break picks a different tree.
  WeightedGraph g(5);
  for (NodeId v = 0; v < 5; ++v) g.add_edge(v, static_cast<NodeId>((v + 1) % 5), 7);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst, (std::vector<EdgeId>{0, 1, 2, 3}));

  // Two parallel-shaped choices per join, all weight 1: ids {0,2,4} are the
  // unique (weight, id)-minimal spanning set.
  WeightedGraph h(4);
  h.add_edge(0, 1, 1);  // id 0: picked
  h.add_edge(1, 0, 1);  // id 1: tie, loses to 0
  h.add_edge(1, 2, 1);  // id 2: picked
  h.add_edge(2, 0, 1);  // id 3: tie, loses to 2
  h.add_edge(2, 3, 1);  // id 4: picked
  h.add_edge(3, 1, 1);  // id 5: tie, loses to 4
  EXPECT_EQ(kruskal_mst(h), (std::vector<EdgeId>{0, 2, 4}));
}

TEST(Spanning, WilsonProducesSpanningTrees) {
  Rng rng(41);
  const WeightedGraph g = grid_graph(6, 6);
  for (int i = 0; i < 5; ++i) {
    const auto tree = wilson_random_spanning_tree(g, rng);
    EXPECT_EQ(tree.size(), static_cast<std::size_t>(g.n() - 1));
    const RootedTree t(g, tree, 0);  // throws if not spanning
    EXPECT_EQ(t.subtree_size(0), g.n());
  }
}

TEST(MathUtil, LogHelpers) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(7), 2);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_LE(log_star(1u << 16), 5);
}

}  // namespace
}  // namespace umc
