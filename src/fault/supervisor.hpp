#pragma once

// SolveSupervisor — resilient exact-min-cut execution under budgets, crash
// faults, and corruption, with a graceful-degradation ladder.
//
// The guarded pipeline (mincut/exact_mincut.hpp) answers a detected fault
// by falling all the way to the gather baseline. The supervisor is the
// policy layer above it: it enforces per-solve round and wall budgets,
// answers crashes with CHECKPOINT REPLAY (mincut/solve_checkpoint.hpp)
// instead of a from-scratch re-solve, answers guard failures with a bounded
// number of reseeded-packing retries, and only then walks down the ladder
//
//   kExact            Theorem 1 pipeline, certified by the guard battery
//   kCheckpointReplay same answer, but at least one crash retry resumed
//                     from the journal (cost excludes the replayed prefix)
//   kKargerStein      centralized recursive contraction (Monte Carlo),
//                     certified by re-summing its own cut witness
//   kGatherBaseline   exhaustive Θ(D + m) gather — always exact, the
//                     unconditional floor of the ladder
//
// returning a structured SolveReport: which tier answered, why, what it
// cost, and what certificate backs the value. Every attempt — crashed,
// rejected, or over budget — is recorded, so a fault sweep can audit the
// full decision trail. Recovery accounting is exported through the
// umc_supervisor_{retries,tier_falls,checkpoint_replays}_total counters and
// traced as supervisor/* spans.
//
// An optional transport preflight runs compiled Borůvka over a
// ReliableChannel under the configured FaultPlan first: if the wire cannot
// sustain exactly-once delivery under the adversary (invariant_error from
// the ARQ layer), the distributed exact tier is skipped outright — the
// supervisor degrades to the local tiers rather than wedging.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/graph.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/solve_checkpoint.hpp"
#include "minoragg/ledger.hpp"

namespace umc::fault {

/// Ladder tiers, in degradation order.
enum class SolveTier {
  kExact = 0,
  kCheckpointReplay = 1,
  kKargerStein = 2,
  kGatherBaseline = 3,
};

[[nodiscard]] const char* to_string(SolveTier t);

struct SupervisorConfig {
  /// Seed for the packing (and, mixed per reseed retry, its replacements).
  std::uint64_t seed = 1;
  /// Thread width of the exact tier's solve session.
  int num_threads = 1;
  /// Charged-round ceiling summed across exact-tier attempts (0 = none):
  /// once exceeded, the supervisor stops retrying and degrades.
  std::int64_t round_budget = 0;
  /// Wall-clock deadline in milliseconds across the whole solve (0 = none);
  /// checked between attempts, never mid-attempt.
  double wall_budget_ms = 0.0;
  /// Crash retries (checkpoint replays) before degrading.
  int max_retries = 3;
  /// Reseeded-packing retries after a failed certification before degrading.
  int max_reseeds = 1;
  /// Certify exact-tier answers with the guard battery
  /// (verify_mincut_result); OFF serves them uncertified.
  bool verify = true;
  /// Drill knob: corrupt the first exact attempt's value before
  /// certification — with `verify` on, the guards must catch it and trigger
  /// a reseeded retry; with it off, the corruption sails through (which is
  /// what the fault sweep's silent-wrong audit exists to catch).
  bool inject_result_corruption = false;
  mincut::PackingConfig packing;
  /// Karger–Stein repeats (0 = ceil(log2 n)^2, the whp setting).
  int karger_stein_repeats = 0;
  /// Start the ladder at this tier (skip the ones above) — how the fault
  /// sweep exercises every tier's answer path directly.
  SolveTier entry_tier = SolveTier::kExact;
  /// When set, run the transport preflight under this plan before the exact
  /// tier. Not owned; must outlive the solve.
  const FaultPlan* preflight_plan = nullptr;
  ArqMode preflight_arq = ArqMode::kGoBackN;
};

struct TierAttempt {
  SolveTier tier = SolveTier::kExact;
  int attempt = 0;            // 0-based, per solve
  std::string outcome;        // "ok" | "crash: ..." | "guard: ..." | ...
  std::int64_t rounds = 0;    // charged rounds of this attempt
  double wall_ms = 0.0;
};

struct SolveReport {
  SolveTier tier = SolveTier::kExact;  // tier that answered
  Weight value = mincut::kInfWeight;
  /// True when a certificate backs the value: the guard battery for the
  /// exact tiers, a re-summed cut witness for Karger–Stein, exhaustive
  /// enumeration for the gather baseline.
  bool certified = false;
  std::string certificate;  // what backs the answer (human-readable)
  std::string reason;       // why this tier answered (empty: exact, first try)
  int retries = 0;          // crash + reseed retries consumed
  int tier_falls = 0;       // ladder steps taken
  std::int64_t checkpoint_replays = 0;  // journal units replayed across retries
  std::int64_t rounds = 0;  // charged rounds of the answering attempt
  double wall_ms = 0.0;     // total supervisor wall time
  minoragg::Ledger ledger;  // answering attempt's charges
  /// Valid iff tier is kExact or kCheckpointReplay.
  mincut::ExactMinCutResult exact;
  /// Valid iff tier is kKargerStein: one side of the certified witness cut.
  std::vector<NodeId> witness_side;
  std::vector<TierAttempt> attempts;  // full decision trail, in order

  [[nodiscard]] bool degraded() const { return tier >= SolveTier::kKargerStein; }
  [[nodiscard]] std::string to_string() const;
};

class SolveSupervisor {
 public:
  explicit SolveSupervisor(SupervisorConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Requires a connected graph with n >= 2. `hook` injects crashes at the
  /// pipeline's commit points (tests and fault drills); it must fire each
  /// (phase, index) site at most once per solve.
  [[nodiscard]] SolveReport solve(const WeightedGraph& g,
                                  const mincut::CrashHook& hook = nullptr) const;

  [[nodiscard]] const SupervisorConfig& config() const { return cfg_; }

 private:
  SupervisorConfig cfg_;
};

/// Crossing-weight re-sum of the bipartition `side` / V∖`side` — the
/// witness check behind the Karger–Stein tier's certificate and the fault
/// sweep's independent audit of every degraded answer.
[[nodiscard]] Weight resummed_cut_value(const WeightedGraph& g, const std::vector<NodeId>& side);

/// Derives a crash-injection hook from a FaultPlan's crash schedule: each
/// pipeline commit site (phase, index) crashes with probability crash_p,
/// decided by mix64(plan.seed, phase, index) — deterministic per plan, and
/// fired at most once per site (the returned hook carries the fired-set, so
/// retries resume past earlier crashes instead of re-hitting them forever).
/// Thread-safe; an all-zero crash_p yields a null hook.
[[nodiscard]] mincut::CrashHook crash_plan_hook(const FaultPlan& plan);

}  // namespace umc::fault
