file(REMOVE_RECURSE
  "libumc_baseline.a"
)
