#include "tree/lca.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace umc {

LcaOracle::LcaOracle(const RootedTree& t) : t_(&t) {
  const NodeId n = t.n();
  log_ = std::max(1, ceil_log2(static_cast<std::uint64_t>(n)) + 1);
  up_.assign(static_cast<std::size_t>(log_),
             std::vector<NodeId>(static_cast<std::size_t>(n), kNoNode));
  for (NodeId v = 0; v < n; ++v) up_[0][static_cast<std::size_t>(v)] = t.parent(v);
  for (int j = 1; j < log_; ++j) {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId mid = up_[static_cast<std::size_t>(j - 1)][static_cast<std::size_t>(v)];
      up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(v)] =
          mid == kNoNode ? kNoNode : up_[static_cast<std::size_t>(j - 1)][static_cast<std::size_t>(mid)];
    }
  }
}

NodeId LcaOracle::kth_ancestor(NodeId v, int k) const {
  for (int j = 0; j < log_ && v != kNoNode; ++j)
    if ((k >> j) & 1) v = up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(v)];
  return v;
}

NodeId LcaOracle::lca(NodeId u, NodeId v) const {
  const RootedTree& t = *t_;
  if (t.depth(u) < t.depth(v)) std::swap(u, v);
  u = kth_ancestor(u, t.depth(u) - t.depth(v));
  if (u == v) return u;
  for (int j = log_ - 1; j >= 0; --j) {
    const NodeId pu = up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(u)];
    const NodeId pv = up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(v)];
    if (pu != pv) {
      u = pu;
      v = pv;
    }
  }
  return t.parent(u);
}

int LcaOracle::distance(NodeId u, NodeId v) const {
  const NodeId l = lca(u, v);
  return t_->depth(u) + t_->depth(v) - 2 * t_->depth(l);
}

}  // namespace umc
