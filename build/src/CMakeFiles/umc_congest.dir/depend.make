# Empty dependencies file for umc_congest.
# This may be replaced when dependencies are built.
