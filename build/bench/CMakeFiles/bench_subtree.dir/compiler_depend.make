# Empty compiler generated dependencies file for bench_subtree.
# This may be replaced when dependencies are built.
