# Empty compiler generated dependencies file for umc_minoragg.
# This may be replaced when dependencies are built.
