#include "fault/fault_model.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace umc::fault {

namespace {

// Decision-stream salts: one independent hash stream per fault kind.
constexpr std::uint64_t kSaltDrop = 0x6472'6f70ULL;     // "drop"
constexpr std::uint64_t kSaltDup = 0x6475'70ULL;        // "dup"
constexpr std::uint64_t kSaltCorrupt = 0x636f'7272ULL;  // "corr"
constexpr std::uint64_t kSaltBit = 0x6269'74ULL;        // "bit"
constexpr std::uint64_t kSaltCrash = 0x6372'6173ULL;    // "cras"

[[nodiscard]] std::uint64_t wire_slot(const WeightedGraph& g, const congest::Message& m) {
  const Edge& e = g.edge(m.via);
  return static_cast<std::uint64_t>(m.via) * 2 + (m.from == e.v ? 1 : 0);
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCrashDrop: return "crash-drop";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kRecovery: return "recovery";
  }
  return "?";
}

FaultModel::FaultModel(const WeightedGraph& g, const FaultPlan& plan) : g_(&g), plan_(plan) {
  UMC_ASSERT_MSG(plan.drop_p >= 0.0 && plan.drop_p < 1.0, "drop_p must be in [0,1)");
  UMC_ASSERT_MSG(plan.dup_p >= 0.0 && plan.dup_p <= 1.0, "dup_p must be in [0,1]");
  UMC_ASSERT_MSG(plan.corrupt_p >= 0.0 && plan.corrupt_p <= 1.0, "corrupt_p must be in [0,1]");
  UMC_ASSERT_MSG(plan.crash_p >= 0.0 && plan.crash_p < 1.0, "crash_p must be in [0,1)");
  UMC_ASSERT(plan.crash_down_rounds >= 1);
}

double FaultModel::draw(std::uint64_t salt, std::int64_t round, std::uint64_t key) const {
  const std::uint64_t h =
      mix64(plan_.seed ^ mix64(salt ^ mix64(static_cast<std::uint64_t>(round) ^ mix64(key))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultModel::crash_started(std::int64_t round, NodeId v) const {
  if (plan_.crash_p <= 0.0 || !plan_.faulty_at(round)) return false;
  return draw(kSaltCrash, round, static_cast<std::uint64_t>(v)) < plan_.crash_p;
}

bool FaultModel::alive(std::int64_t round, NodeId v) const {
  if (plan_.crash_p <= 0.0) return true;
  const std::int64_t lo = std::max(plan_.first_faulty_round, round - plan_.crash_down_rounds + 1);
  for (std::int64_t r = lo; r <= round; ++r)
    if (crash_started(r, v)) return false;
  return true;
}

void FaultModel::crashed_between(std::int64_t r0, std::int64_t r1,
                                 std::vector<NodeId>& out) const {
  if (plan_.crash_p <= 0.0) return;
  for (NodeId v = 0; v < g_->n(); ++v) {
    for (std::int64_t r = r0; r < r1; ++r) {
      if (crash_started(r, v)) {
        out.push_back(v);
        break;
      }
    }
  }
}

void FaultModel::record(std::int64_t round, FaultKind kind, NodeId node, EdgeId edge,
                        int direction) {
  log_.push_back(FaultEvent{round, kind, node, edge, direction});
}

void FaultModel::observe_crashes(std::int64_t round) {
  if (plan_.crash_p <= 0.0) return;
  // Scan the pure crash schedule forward from the last observed round so
  // crash/restart events appear in the log exactly once, in round order,
  // regardless of how delivery rounds interleave with idle charges.
  for (std::int64_t r = crashes_observed_upto_ + 1; r <= round; ++r) {
    for (NodeId v = 0; v < g_->n(); ++v) {
      if (crash_started(r, v)) {
        record(r, FaultKind::kCrash, v, kNoEdge, 0);
        ++stats_.crashes;
      }
      // A restart at r means some crash window [r', r'+down) ends at r and
      // no newer crash keeps the node down.
      const std::int64_t started = r - plan_.crash_down_rounds;
      if (started >= plan_.first_faulty_round && crash_started(started, v) && alive(r, v))
        record(r, FaultKind::kRestart, v, kNoEdge, 0);
    }
  }
  crashes_observed_upto_ = std::max(crashes_observed_upto_, round);
}

void FaultModel::note_recovery(std::int64_t round, NodeId v) {
  record(round, FaultKind::kRecovery, v, kNoEdge, 0);
  ++stats_.recoveries;
}

void FaultModel::filter_wire(std::int64_t round, std::vector<congest::Message>& wire) {
  observe_crashes(round);
  stats_.messages_seen += static_cast<std::int64_t>(wire.size());
  if (plan_.trivial()) return;
#if !defined(UMC_OBS_DISABLED)
  // Bridge this call's stat deltas into the metrics registry at return.
  const FaultStats before = stats_;
  struct BridgeDeltas {
    const FaultStats& before;
    const FaultStats& after;
    ~BridgeDeltas() {
      static obs::Counter& drops = obs::MetricsRegistry::global().counter(
          "umc_fault_drops_total", {}, "Messages dropped by the injector.");
      static obs::Counter& dups = obs::MetricsRegistry::global().counter(
          "umc_fault_duplicates_total", {}, "Messages duplicated by the injector.");
      static obs::Counter& corruptions = obs::MetricsRegistry::global().counter(
          "umc_fault_corruptions_total", {}, "Messages bit-corrupted by the injector.");
      static obs::Counter& crash_drops = obs::MetricsRegistry::global().counter(
          "umc_fault_crash_drops_total", {}, "Messages lost to crash-stopped endpoints.");
      drops.inc(after.drops - before.drops);
      dups.inc(after.duplicates - before.duplicates);
      corruptions.inc(after.corruptions - before.corruptions);
      crash_drops.inc(after.crash_drops - before.crash_drops);
    }
  } bridge{before, stats_};
#endif
  // Outside the fault window only crash-stops (which may extend past
  // last_faulty_round by crash_down_rounds) still suppress traffic.
  const bool message_faults = plan_.faulty_at(round);

  std::vector<congest::Message> out;
  out.reserve(wire.size());
  for (const congest::Message& m : wire) {
    const Edge& e = g_->edge(m.via);
    const int dir = m.from == e.v ? 1 : 0;
    const std::uint64_t slot = wire_slot(*g_, m);
    const NodeId to = e.other(m.from);

    // Crash-stop: a down sender emits nothing, a down receiver hears
    // nothing. Both surface as a crash-drop naming the dead endpoint.
    if (!alive(round, m.from) || !alive(round, to)) {
      record(round, FaultKind::kCrashDrop, alive(round, m.from) ? to : m.from, m.via, dir);
      ++stats_.crash_drops;
      continue;
    }
    if (message_faults && draw(kSaltDrop, round, slot) < plan_.drop_p) {
      record(round, FaultKind::kDrop, kNoNode, m.via, dir);
      ++stats_.drops;
      continue;
    }
    congest::Message d = m;
    if (message_faults && draw(kSaltCorrupt, round, slot) < plan_.corrupt_p) {
      // Flip one deterministic bit of payload or aux.
      const std::uint64_t h = mix64(plan_.seed ^ mix64(kSaltBit ^ slot) ^
                                    mix64(static_cast<std::uint64_t>(round)));
      const std::uint64_t flip = 1ULL << ((h >> 1) & 63);
      if ((h & 1) == 0)
        d.payload = static_cast<std::int64_t>(static_cast<std::uint64_t>(d.payload) ^ flip);
      else
        d.aux = static_cast<std::int64_t>(static_cast<std::uint64_t>(d.aux) ^ flip);
      record(round, FaultKind::kCorrupt, kNoNode, m.via, dir);
      ++stats_.corruptions;
    }
    out.push_back(d);
    if (message_faults && draw(kSaltDup, round, slot) < plan_.dup_p) {
      out.push_back(d);
      record(round, FaultKind::kDuplicate, kNoNode, m.via, dir);
      ++stats_.duplicates;
    }
  }
  wire.swap(out);
}

std::string FaultModel::log_to_string() const {
  std::ostringstream os;
  for (const FaultEvent& ev : log_) {
    os << '@' << ev.round << ' ' << to_string(ev.kind);
    if (ev.node != kNoNode) os << " n" << ev.node;
    if (ev.edge != kNoEdge) os << " e" << ev.edge << (ev.direction == 0 ? " u->v" : " v->u");
    os << '\n';
  }
  return os.str();
}

}  // namespace umc::fault
