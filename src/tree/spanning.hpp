#pragma once

// Spanning-tree constructions over a host graph: BFS trees (round-efficient
// communication backbones), Kruskal minimum spanning trees with arbitrary
// per-edge costs (the greedy tree-packing of Theorem 12 re-costs edges by
// packing load each iteration), and uniform random spanning trees (Wilson)
// for randomized tests.

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace umc {

/// Edge ids of a BFS spanning tree rooted at `root`. Requires connectivity.
[[nodiscard]] std::vector<EdgeId> bfs_spanning_tree(const WeightedGraph& g, NodeId root);

/// Kruskal MST edge ids under external per-edge costs (ties by edge id, so
/// the result is deterministic). `cost.size() == g.m()`.
[[nodiscard]] std::vector<EdgeId> kruskal_mst(const WeightedGraph& g,
                                              std::span<const double> cost);

/// Kruskal MST under the graph's own weights.
[[nodiscard]] std::vector<EdgeId> kruskal_mst(const WeightedGraph& g);

/// Uniform random spanning tree via Wilson's algorithm (loop-erased random
/// walks). Ignores weights. Requires connectivity.
[[nodiscard]] std::vector<EdgeId> wilson_random_spanning_tree(const WeightedGraph& g, Rng& rng);

}  // namespace umc
