# Empty compiler generated dependencies file for umc_tree.
# This may be replaced when dependencies are built.
