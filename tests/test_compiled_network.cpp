// Tests for the literal Theorem 17 execution: Minor-Aggregation rounds run
// as real CONGEST message traffic (congest/compiled_network), and Borůvka
// executed end-to-end through the compilation.

#include <gtest/gtest.h>

#include <numeric>

#include "congest/compiled_network.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "minoragg/boruvka.hpp"
#include "minoragg/ledger.hpp"
#include "minoragg/network.hpp"
#include "tree/spanning.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::congest {
namespace {

TEST(CompiledRound, MatchesInProcessSimulatorOnRandomRounds) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId n = 8 + static_cast<NodeId>(rng.next_below(40));
    WeightedGraph g = erdos_renyi_connected(n, 0.15, rng);
    std::vector<bool> contract(static_cast<std::size_t>(g.m()), false);
    for (EdgeId e = 0; e < g.m(); ++e) contract[static_cast<std::size_t>(e)] = rng.next_bool(0.3);
    std::vector<std::int64_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.next_in(-20, 20);
    const auto edge_fn = [&g](EdgeId e, std::int64_t yu, std::int64_t yv) {
      return std::pair<std::int64_t, std::int64_t>{g.edge(e).w + yv, g.edge(e).w + yu};
    };

    // Reference: the in-process Minor-Aggregation simulator.
    minoragg::Ledger ledger;
    minoragg::Network ma(g, ledger);
    const auto want = ma.round<SumAgg, SumAgg>(
        contract, x,
        [&edge_fn](EdgeId e, const std::int64_t& yu, const std::int64_t& yv) {
          return edge_fn(e, yu, yv);
        });

    // Compiled: real CONGEST message traffic.
    CongestNetwork net(g);
    const CompiledRoundResult got =
        execute_ma_round(net, contract, x, PartwiseOp::kSum, edge_fn, PartwiseOp::kSum);

    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(got.supernode[static_cast<std::size_t>(v)],
                want.supernode[static_cast<std::size_t>(v)]);
      EXPECT_EQ(got.consensus[static_cast<std::size_t>(v)],
                want.consensus[static_cast<std::size_t>(v)]);
      EXPECT_EQ(got.aggregate[static_cast<std::size_t>(v)],
                want.aggregate[static_cast<std::size_t>(v)]);
    }
    EXPECT_GT(got.congest_rounds, 0);
  }
}

TEST(CompiledRound, ContractAllComputesGlobalSum) {
  const WeightedGraph g = grid_graph(5, 5);
  const std::vector<bool> contract(static_cast<std::size_t>(g.m()), true);
  std::vector<std::int64_t> x(25);
  std::iota(x.begin(), x.end(), 1);
  CongestNetwork net(g);
  const auto got = execute_ma_round(
      net, contract, x, PartwiseOp::kSum,
      [](EdgeId, std::int64_t, std::int64_t) {
        return std::pair<std::int64_t, std::int64_t>{0, 0};
      },
      PartwiseOp::kSum);
  for (NodeId v = 0; v < 25; ++v) {
    EXPECT_EQ(got.consensus[static_cast<std::size_t>(v)], 25 * 26 / 2);
    EXPECT_EQ(got.supernode[static_cast<std::size_t>(v)], 0);
  }
}

TEST(CompiledBoruvka, MatchesKruskalAndInProcessBoruvka) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = 10 + static_cast<NodeId>(rng.next_below(50));
    WeightedGraph g = random_connected(n, 2 * n + static_cast<EdgeId>(rng.next_below(40)), rng);
    std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
    for (auto& c : cost) c = rng.next_in(1, 1000);
    std::vector<double> dcost(cost.begin(), cost.end());

    const CompiledBoruvkaResult got = compiled_boruvka(g, cost);
    const auto kref = kruskal_mst(g, dcost);
    std::int64_t got_w = 0, ref_w = 0;
    for (const EdgeId e : got.tree) got_w += cost[static_cast<std::size_t>(e)];
    for (const EdgeId e : kref) ref_w += cost[static_cast<std::size_t>(e)];
    EXPECT_EQ(got_w, ref_w);
    EXPECT_EQ(got.tree.size(), static_cast<std::size_t>(n - 1));

    // Same iteration count as the in-process Minor-Aggregation Borůvka.
    minoragg::Ledger ledger;
    (void)minoragg::boruvka_mst(g, cost, ledger);
    EXPECT_EQ(got.ma_rounds, ledger.rounds());
    // Real CONGEST rounds: a handful of PA executions per MA round.
    EXPECT_GT(got.congest_rounds, got.ma_rounds);
  }
}

TEST(CompiledBoruvka, RealRoundsScaleWithDPlusSqrtN) {
  Rng rng(11);
  // Grid: D ~ 2 sqrt(n); rounds per MA round should track D.
  const WeightedGraph g = grid_graph(16, 16);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 100);
  const CompiledBoruvkaResult res = compiled_boruvka(g, cost);
  const double per_round = static_cast<double>(res.congest_rounds) /
                           static_cast<double>(res.ma_rounds);
  const double budget = (exact_diameter(g) + 16.0) * 12.0;  // (D+sqrt n)*const
  EXPECT_LT(per_round, budget);
  EXPECT_GT(per_round, 3.0);  // it is doing real work
}

}  // namespace
}  // namespace umc::congest
