file(REMOVE_RECURSE
  "CMakeFiles/bench_planar_mincut.dir/bench_planar_mincut.cpp.o"
  "CMakeFiles/bench_planar_mincut.dir/bench_planar_mincut.cpp.o.d"
  "bench_planar_mincut"
  "bench_planar_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planar_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
