#pragma once

// Distributed BFS-tree construction in CONGEST: the universal communication
// backbone for part-wise aggregation and the gather baseline. Runs in
// ecc(root) + 1 rounds, measured.

#include <vector>

#include "congest/congest_net.hpp"
#include "graph/graph.hpp"

namespace umc::congest {

struct BfsTree {
  NodeId root = kNoNode;
  std::vector<NodeId> parent;       // kNoNode for root
  std::vector<EdgeId> parent_edge;  // kNoEdge for root
  std::vector<int> depth;
  std::vector<std::vector<NodeId>> children;
  int height = 0;
  std::int64_t rounds_used = 0;
};

/// Flood-fill BFS through the CONGEST network (messages counted on `net`).
[[nodiscard]] BfsTree build_bfs_tree(CongestNetwork& net, NodeId root);

}  // namespace umc::congest
