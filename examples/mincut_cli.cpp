// Command-line front end: exact min-cut of a weighted edge-list file.
//
//   $ ./example_mincut_cli <graph.txt> [--seed S] [--trees T] [--witness]
//
// File format (see graph/io.hpp):
//   <n>
//   <u> <v> <w>     # one line per edge, weight optional (defaults to 1)
//
// Prints the cut value, the defining tree edges, the round accounting, and
// (with --witness) the full bipartition and crossing edge list. With no
// file argument, generates a demo network and prints its edge list first.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "baseline/stoer_wagner.hpp"
#include "congest/compile.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/witness.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [graph.txt] [--seed S] [--trees T] [--witness]\n", argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umc;
  std::string path;
  std::uint64_t seed = 1;
  int max_trees = 16;
  bool want_witness = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--trees") == 0 && i + 1 < argc) {
      max_trees = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--witness") == 0) {
      want_witness = true;
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }

  WeightedGraph g;
  if (path.empty()) {
    Rng demo_rng(7);
    g = erdos_renyi_connected(24, 0.2, demo_rng);
    randomize_weights(g, 1, 30, demo_rng);
    std::ostringstream os;
    write_edge_list(os, g);
    std::printf("no input file; demo network:\n%s\n", os.str().c_str());
  } else {
    try {
      g = read_edge_list_file(path);
    } catch (const invariant_error& e) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  if (g.n() < 2 || !is_connected(g)) {
    std::fprintf(stderr, "error: the graph must be connected with >= 2 nodes\n");
    return 2;
  }

  Rng rng(seed);
  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = max_trees;
  const mincut::ExactMinCutResult cut = mincut::exact_mincut(g, rng, ledger, config);
  const Weight reference = baseline::stoer_wagner(g).value;

  std::printf("min-cut value: %lld  (oracle: %lld, %s)\n", static_cast<long long>(cut.value),
              static_cast<long long>(reference),
              cut.value == reference ? "match" : "MISMATCH");
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, seed);
  std::printf("minor-aggregation rounds: %lld  |  D=%d  |  congest(general)=%lld  "
              "congest(excl-minor)=%lld\n",
              static_cast<long long>(cost.ma_rounds), cost.diameter,
              static_cast<long long>(cost.congest_rounds_general()),
              static_cast<long long>(cost.congest_rounds_excluded_minor()));

  if (want_witness && cut.e != kNoEdge) {
    // Materialize the cut against the winning packing tree.
    Rng replay(seed);
    minoragg::Ledger scratch;
    const mincut::TreePacking packing = mincut::tree_packing(g, replay, scratch, config);
    const RootedTree t(g, packing.trees[static_cast<std::size_t>(cut.winning_tree)], 0);
    const mincut::CutWitness w =
        mincut::cut_witness(t, mincut::CutResult{cut.value, cut.e, cut.f});
    std::printf("witness: one side = {");
    for (NodeId v = 0; v < g.n(); ++v)
      if (w.side[static_cast<std::size_t>(v)]) std::printf(" %d", v);
    std::printf(" }\ncrossing edges:");
    for (const EdgeId e : w.crossing)
      std::printf(" {%d,%d}w%lld", g.edge(e).u, g.edge(e).v,
                  static_cast<long long>(g.edge(e).w));
    std::printf("\nwitness value: %lld (%s)\n", static_cast<long long>(w.value),
                w.value == cut.value ? "consistent" : "INCONSISTENT");
  }
  return cut.value == reference ? 0 : 1;
}
