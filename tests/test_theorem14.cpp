// Tests for the literal Theorem 14 simulation: a Minor-Aggregation round on
// a virtual graph, executed via rounds on the real graph only, must produce
// exactly the outputs of direct execution — at O(beta+1) real rounds.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "minoragg/theorem14.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {
namespace {

VirtualGraph make_virtual(const WeightedGraph& base, int beta, Rng& rng) {
  VirtualGraph gv = VirtualGraph::wrap(base);
  std::vector<NodeId> virts;
  for (int b = 0; b < beta; ++b) virts.push_back(gv.add_virtual_node());
  // Arbitrary interconnection: virtual-real and virtual-virtual edges.
  for (const NodeId v : virts) {
    const int links = 1 + static_cast<int>(rng.next_below(3));
    for (int l = 0; l < links; ++l)
      gv.graph.add_edge(static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(base.n()))), v,
                        rng.next_in(1, 9));
  }
  for (std::size_t i = 0; i + 1 < virts.size(); ++i)
    if (rng.next_bool(0.5)) gv.graph.add_edge(virts[i], virts[i + 1], 1);
  return gv;
}

TEST(Theorem14Literal, MatchesDirectExecution) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 6 + static_cast<NodeId>(rng.next_below(20));
    const WeightedGraph base = erdos_renyi_connected(n, 0.25, rng);
    const int beta = 1 + static_cast<int>(rng.next_below(4));
    const VirtualGraph gv = make_virtual(base, beta, rng);

    std::vector<bool> contract(static_cast<std::size_t>(gv.graph.m()), false);
    for (std::size_t e = 0; e < contract.size(); ++e) contract[e] = rng.next_bool(0.35);
    std::vector<std::int64_t> x(static_cast<std::size_t>(gv.graph.n()));
    for (auto& v : x) v = rng.next_in(-9, 9);
    const auto edge_fn = [&gv](EdgeId e, const std::int64_t& yu, const std::int64_t& yv) {
      return std::pair<std::int64_t, std::int64_t>{gv.graph.edge(e).w * yv,
                                                   gv.graph.edge(e).w * yu};
    };

    // Direct execution on the virtual graph (what Theorem 14 simulates).
    Ledger direct_ledger;
    Network direct(gv.graph, direct_ledger);
    const auto want = direct.round<SumAgg, SumAgg>(contract, x, edge_fn);

    // Literal simulation on the real graph only.
    Ledger sim_ledger;
    const auto got = simulate_virtual_round<SumAgg, SumAgg>(gv, contract, x, edge_fn, sim_ledger);

    for (NodeId v = 0; v < gv.graph.n(); ++v) {
      EXPECT_EQ(got.supernode[static_cast<std::size_t>(v)],
                want.supernode[static_cast<std::size_t>(v)]) << "trial " << trial;
      EXPECT_EQ(got.consensus[static_cast<std::size_t>(v)],
                want.consensus[static_cast<std::size_t>(v)]) << "trial " << trial;
      EXPECT_EQ(got.aggregate[static_cast<std::size_t>(v)],
                want.aggregate[static_cast<std::size_t>(v)]) << "trial " << trial;
    }
    // O(beta + 1) real rounds: the proof's schedule is 3*beta + 2 exactly.
    EXPECT_LE(got.real_rounds, 3 * beta + 2);
    EXPECT_GE(got.real_rounds, beta + 1);
  }
}

TEST(Theorem14Literal, ZeroVirtualNodesIsAPlainRound) {
  Rng rng(7);
  const WeightedGraph base = grid_graph(4, 4);
  const VirtualGraph gv = VirtualGraph::wrap(base);
  std::vector<bool> contract(static_cast<std::size_t>(base.m()), false);
  contract[0] = contract[3] = true;
  std::vector<std::int64_t> x(16, 1);
  Ledger ledger;
  const auto got = simulate_virtual_round<SumAgg, SumAgg>(
      gv, contract, x,
      [](EdgeId, const std::int64_t&, const std::int64_t&) {
        return std::pair<std::int64_t, std::int64_t>{1, 1};
      },
      ledger);
  EXPECT_LE(got.real_rounds, 2);
  // Supernode of nodes joined by edge 0 agree.
  EXPECT_EQ(got.supernode[base.edge(0).u], got.supernode[base.edge(0).v]);
}

}  // namespace
}  // namespace umc::minoragg
