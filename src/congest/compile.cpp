#include "congest/compile.hpp"

#include "congest/partwise.hpp"
#include "graph/properties.hpp"
#include "util/math.hpp"

namespace umc::congest {

CompileCost measure_compile_cost(const WeightedGraph& g, const minoragg::Ledger& ledger,
                                 std::uint64_t seed) {
  CompileCost cost;
  cost.n = g.n();
  cost.ma_rounds = ledger.rounds();
  cost.diameter = approx_diameter(g);

  if (g.n() >= 2) {
    const std::vector<std::int64_t> ones(static_cast<std::size_t>(g.n()), 1);
    // A Minor-Aggregation round does two kinds of part-wise work: per-part
    // aggregation over the contracted parts (the sqrt-carve is the canonical
    // hard partition) and whole-graph consensus (a single global part).
    // Measure both and charge their sum per MA round.
    CongestNetwork net_parts(g);
    const std::vector<int> parts = sqrt_carve_partition(g, seed);
    const PartwiseResult pa_parts = partwise_aggregate(net_parts, parts, ones);
    CongestNetwork net_global(g);
    const std::vector<int> one_part(static_cast<std::size_t>(g.n()), 0);
    const PartwiseResult pa_global = partwise_aggregate(net_global, one_part, ones);
    cost.pa_rounds_general = pa_parts.rounds_used + pa_global.rounds_used;
  } else {
    cost.pa_rounds_general = 1;
  }
  cost.pa_rounds_excluded_minor =
      static_cast<std::int64_t>(cost.diameter + 1) *
      (ceil_log2(static_cast<std::uint64_t>(g.n()) + 1) + 1);
  // Bullet 3 model: 2^(2*sqrt(log2 n)).
  const double lg = static_cast<double>(ceil_log2(static_cast<std::uint64_t>(g.n()) + 1) + 1);
  cost.pa_rounds_well_connected =
      static_cast<std::int64_t>(__builtin_pow(2.0, 2.0 * __builtin_sqrt(lg)));
  return cost;
}

std::int64_t estimate_shortcut_quality(const WeightedGraph& g, int trials,
                                       std::uint64_t seed) {
  UMC_ASSERT(trials >= 1);
  if (g.n() < 2) return 1;
  const std::vector<std::int64_t> ones(static_cast<std::size_t>(g.n()), 1);
  std::int64_t worst = 0;
  for (int t = 0; t < trials; ++t) {
    CongestNetwork net(g);
    const std::vector<int> parts = sqrt_carve_partition(g, seed + static_cast<std::uint64_t>(t));
    worst = std::max(worst, partwise_aggregate(net, parts, ones).rounds_used);
  }
  CongestNetwork global_net(g);
  const std::vector<int> one_part(static_cast<std::size_t>(g.n()), 0);
  worst = std::max(worst, partwise_aggregate(global_net, one_part, ones).rounds_used);
  return worst;
}

}  // namespace umc::congest
