#include "congest/congest_net.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace umc::congest {

#if !defined(UMC_OBS_DISABLED)
namespace {

// Cached registry references: one map walk at first use, atomic ops after.
struct CongestMetrics {
  obs::Counter& rounds = obs::MetricsRegistry::global().counter(
      "umc_congest_rounds_total", {}, "Physical CONGEST rounds executed.");
  obs::Counter& messages = obs::MetricsRegistry::global().counter(
      "umc_congest_messages_total", {}, "Messages staged onto the wire (pre-fault).");
  obs::Counter& bits = obs::MetricsRegistry::global().counter(
      "umc_congest_bits_total", {},
      "Model bits staged: messages x 2 words of ceil(log2 n) bits.");
  obs::Counter& slot_reuse = obs::MetricsRegistry::global().counter(
      "umc_congest_slot_reuse_total", {},
      "Staged slots whose storage also carried a message last round "
      "(double-buffered wire reuse; no allocation either time).");
  obs::Histogram& utilization = obs::MetricsRegistry::global().histogram(
      "umc_congest_slot_utilization_percent", {1, 5, 10, 25, 50, 75, 90, 100}, {},
      "Per-round percentage of the 2m edge-direction slots carrying a message.");
};

CongestMetrics& congest_metrics() {
  static CongestMetrics m;
  return m;
}

}  // namespace
#endif

CongestNetwork::CongestNetwork(const WeightedGraph& g, WireConfig wire)
    : g_(&g),
      wire_(wire),
      write_occ_((static_cast<std::size_t>(g.m()) * 2 + 63) / 64, 0),
      write_payload_(static_cast<std::size_t>(g.m()) * 2, 0),
      write_aux_(static_cast<std::size_t>(g.m()) * 2, 0),
      read_occ_((static_cast<std::size_t>(g.m()) * 2 + 63) / 64, 0),
      read_payload_(static_cast<std::size_t>(g.m()) * 2, 0),
      read_aux_(static_cast<std::size_t>(g.m()) * 2, 0),
      inbox_(static_cast<std::size_t>(g.n())) {
  order_.reserve(write_payload_.size());
  read_order_.reserve(write_payload_.size());
}

void CongestNetwork::send(NodeId from, EdgeId via, std::int64_t payload, std::int64_t aux) {
  const Edge& e = g_->edge(via);
  UMC_ASSERT(from == e.u || from == e.v);
  const std::size_t slot = static_cast<std::size_t>(via) * 2 + (from == e.v ? 1 : 0);
  UMC_ASSERT_MSG(((write_occ_[slot >> 6] >> (slot & 63)) & 1u) == 0,
                 "one message per edge-direction per round (CONGEST)");
  write_occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  write_payload_[slot] = payload;
  write_aux_[slot] = aux;
  order_.push_back(static_cast<std::uint32_t>(slot));
}

void CongestNetwork::materialize_staged(std::vector<Message>& out) const {
  out.clear();
  out.reserve(order_.size());
  for (const std::uint32_t s : order_) {
    const auto e = static_cast<EdgeId>(s >> 1);
    const Edge& ed = g_->edge(e);
    out.push_back(Message{(s & 1) != 0 ? ed.v : ed.u, e, write_payload_[s], write_aux_[s]});
  }
}

void CongestNetwork::clear_staging() {
  for (const std::uint32_t s : order_) {
    write_occ_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
  order_.clear();
}

void CongestNetwork::reset_read_view() {
  for (const std::uint32_t s : read_order_) {
    read_occ_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
  read_order_.clear();
  for (const NodeId v : compat_nonempty_) inbox_[static_cast<std::size_t>(v)].clear();
  compat_nonempty_.clear();
}

void CongestNetwork::scatter_to_read_view(const Message& m) {
  const std::size_t slot =
      static_cast<std::size_t>(m.via) * 2 + (m.from == g_->edge(m.via).v ? 1 : 0);
  if (!slot_has(slot)) {
    read_occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    read_order_.push_back(static_cast<std::uint32_t>(slot));
  }
  read_payload_[slot] = m.payload;
  read_aux_[slot] = m.aux;
}

void CongestNetwork::materialize_compat() const {
  for (const NodeId v : compat_nonempty_) inbox_[static_cast<std::size_t>(v)].clear();
  compat_nonempty_.clear();
  for (const std::uint32_t s : read_order_) {
    const auto e = static_cast<EdgeId>(s >> 1);
    const Edge& ed = g_->edge(e);
    const NodeId to = (s & 1) != 0 ? ed.u : ed.v;
    auto& box = inbox_[static_cast<std::size_t>(to)];
    if (box.empty()) compat_nonempty_.push_back(to);
    box.push_back(Message{(s & 1) != 0 ? ed.v : ed.u, e, read_payload_[s], read_aux_[s]});
  }
  compat_dirty_ = false;
}

void CongestNetwork::round_metrics(std::size_t staged_n) {
#if !defined(UMC_OBS_DISABLED)
  CongestMetrics& m = congest_metrics();
  m.rounds.inc();
  const auto staged = static_cast<std::int64_t>(staged_n);
  m.messages.inc(staged);
  // A message carries two words, each O(log n) bits in the model.
  const std::int64_t word_bits = std::bit_width(static_cast<std::uint64_t>(g_->n()) | 1);
  m.bits.inc(staged * 2 * word_bits);
  if (g_->m() > 0) m.utilization.observe(staged * 100 / (2 * g_->m()));
  // The read view still holds LAST round's occupancy here: staged slots
  // whose bit is set are reusing storage that carried a message one round
  // ago — the quantity the double-buffered wire exists to make free.
  std::int64_t reuse = 0;
  for (const std::uint32_t s : order_) {
    if (slot_has(s)) ++reuse;
  }
  if (reuse > 0) m.slot_reuse.inc(reuse);
#else
  (void)staged_n;
#endif
}

void CongestNetwork::deliver_slot_fast() {
  // Flip the double buffer: the write view (this round's sends, already
  // slot-addressed) becomes the read view; the old read view — cleared via
  // its occupancy list, O(messages) not O(2m) — becomes the next write view.
  reset_read_view();
  write_occ_.swap(read_occ_);
  write_payload_.swap(read_payload_);
  write_aux_.swap(read_aux_);
  order_.swap(read_order_);
  compat_dirty_ = true;
  ++rounds_;
}

void CongestNetwork::deliver_with_messages() {
  // Fault plans (and the retained reference path) speak the message-vector
  // protocol: reconstruct the staged traffic in send order, filter it, then
  // deliver survivors into both the compat inboxes (duplicates preserved)
  // and the slot read view (last write per slot wins).
  materialize_staged(wire_scratch_);
  clear_staging();
  if (wire_.mode == WireMode::kReference) {
    // Seed-faithful O(n) inbox clear — the cost the slot wire removes.
    for (auto& box : inbox_) box.clear();
    compat_nonempty_.clear();
    for (const std::uint32_t s : read_order_) {
      read_occ_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
    }
    read_order_.clear();
  } else {
    reset_read_view();
  }
  if (fault_ != nullptr) fault_->filter_wire(rounds_, wire_scratch_);
  for (const Message& m : wire_scratch_) {
    const NodeId to = g_->edge(m.via).other(m.from);
    auto& box = inbox_[static_cast<std::size_t>(to)];
    if (box.empty()) compat_nonempty_.push_back(to);
    box.push_back(m);
    scatter_to_read_view(m);
  }
  compat_dirty_ = false;
  wire_scratch_.clear();
  ++rounds_;
}

void CongestNetwork::deliver_physical() {
  UMC_OBS_SPAN_VAR_L(obs_round, "congest/round", "congest", rounds_);
  obs_round.arg("messages", static_cast<std::int64_t>(order_.size()));
  round_metrics(order_.size());
  if (fault_ != nullptr || wire_.mode == WireMode::kReference) {
    deliver_with_messages();
  } else {
    deliver_slot_fast();
  }
}

void CongestNetwork::set_logical_delivery(std::vector<std::vector<Message>>&& logical) {
  UMC_ASSERT(logical.size() == inbox_.size());
  reset_read_view();
  inbox_ = std::move(logical);
  for (std::size_t v = 0; v < inbox_.size(); ++v) {
    if (inbox_[v].empty()) continue;
    compat_nonempty_.push_back(static_cast<NodeId>(v));
    for (const Message& m : inbox_[v]) scatter_to_read_view(m);
  }
  compat_dirty_ = false;
}

void CongestNetwork::end_round() { deliver_physical(); }

}  // namespace umc::congest
