// Fault subsystem: seeded fault schedules must be deterministic and
// replayable, the ReliableChannel must deliver exactly the fault-free
// transcript under drop/dup/corrupt faults (at a measured round cost), and
// compiled Borůvka must survive message loss and crash-restarts with the
// correct MST.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "congest/compiled_network.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

using congest::CongestNetwork;
using congest::Message;
using fault::FaultKind;
using fault::FaultModel;
using fault::FaultPlan;
using fault::ReliableChannel;

/// Runs `rounds` logical rounds of all-edges flooding (every node sends a
/// round-and-sender-tagged word over every incident edge) and returns the
/// full delivery transcript, each round's inboxes sorted per node.
std::vector<std::vector<Message>> flood_transcript(CongestNetwork& net, int rounds) {
  const WeightedGraph& g = net.graph();
  std::vector<std::vector<Message>> transcript;
  for (int r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < g.n(); ++v)
      for (const AdjEntry& a : g.adj(v)) net.send(v, a.edge, v * 1000 + r, a.edge);
    net.end_round();
    for (NodeId v = 0; v < g.n(); ++v) {
      std::vector<Message> box = net.inbox(v);
      std::sort(box.begin(), box.end(), [](const Message& x, const Message& y) {
        return std::tie(x.from, x.via, x.payload, x.aux) <
               std::tie(y.from, y.via, y.payload, y.aux);
      });
      transcript.push_back(std::move(box));
    }
  }
  return transcript;
}

std::vector<std::int64_t> random_costs(const WeightedGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);
  return cost;
}

bool log_has(const FaultModel& m, FaultKind k) {
  for (const fault::FaultEvent& ev : m.log())
    if (ev.kind == k) return true;
  return false;
}

TEST(FaultModel, SameSeedSameScheduleAndLog) {
  const WeightedGraph g = grid_graph(4, 4);
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_p = 0.2;
  plan.dup_p = 0.1;
  plan.corrupt_p = 0.1;
  FaultModel a(g, plan), b(g, plan);
  CongestNetwork na(g), nb(g);
  na.attach_fault_injector(&a);
  nb.attach_fault_injector(&b);
  const auto ta = flood_transcript(na, 6);
  const auto tb = flood_transcript(nb, 6);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a.log(), b.log());
  EXPECT_EQ(a.log_to_string(), b.log_to_string());
  EXPECT_GT(a.stats().drops, 0);
  EXPECT_GT(a.stats().duplicates, 0);
  EXPECT_GT(a.stats().corruptions, 0);
}

TEST(FaultModel, DifferentSeedsDifferentSchedule) {
  const WeightedGraph g = grid_graph(4, 4);
  FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.drop_p = p2.drop_p = 0.2;
  FaultModel a(g, p1), b(g, p2);
  CongestNetwork na(g), nb(g);
  na.attach_fault_injector(&a);
  nb.attach_fault_injector(&b);
  (void)flood_transcript(na, 6);
  (void)flood_transcript(nb, 6);
  EXPECT_NE(a.log(), b.log());
}

TEST(FaultModel, DuplicationDoublesAndCorruptionFlipsOneBit) {
  const WeightedGraph g = path_graph(3);  // 2 edges, 4 directed slots
  {
    FaultPlan plan;
    plan.dup_p = 1.0;
    FaultModel m(g, plan);
    CongestNetwork net(g);
    net.attach_fault_injector(&m);
    net.send(0, 0, 7);
    net.end_round();
    ASSERT_EQ(net.inbox(1).size(), 2u);  // delivered twice
    EXPECT_EQ(net.inbox(1)[0], net.inbox(1)[1]);
    EXPECT_EQ(m.stats().duplicates, 1);
  }
  {
    FaultPlan plan;
    plan.corrupt_p = 1.0;
    FaultModel m(g, plan);
    CongestNetwork net(g);
    net.attach_fault_injector(&m);
    net.send(0, 0, 7, 9);
    net.end_round();
    ASSERT_EQ(net.inbox(1).size(), 1u);
    const Message& d = net.inbox(1)[0];
    // Exactly one bit of (payload, aux) flipped.
    const std::uint64_t diff = (static_cast<std::uint64_t>(d.payload) ^ 7ULL) |
                               (static_cast<std::uint64_t>(d.aux) ^ 9ULL);
    EXPECT_EQ(__builtin_popcountll(diff), 1);
    EXPECT_EQ(m.stats().corruptions, 1);
  }
}

TEST(FaultModel, DropAccounting) {
  const WeightedGraph g = grid_graph(5, 5);
  FaultPlan plan;
  plan.drop_p = 0.5;
  FaultModel m(g, plan);
  CongestNetwork net(g);
  net.attach_fault_injector(&m);
  std::int64_t delivered = 0;
  const int rounds = 4;
  for (int r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < g.n(); ++v)
      for (const AdjEntry& a : g.adj(v)) net.send(v, a.edge, v);
    net.end_round();
    for (NodeId v = 0; v < g.n(); ++v)
      delivered += static_cast<std::int64_t>(net.inbox(v).size());
  }
  const std::int64_t sent = static_cast<std::int64_t>(g.m()) * 2 * rounds;
  EXPECT_EQ(m.stats().messages_seen, sent);
  EXPECT_GT(m.stats().drops, 0);
  EXPECT_EQ(delivered + m.stats().drops + m.stats().duplicates, sent);
}

TEST(FaultModel, CrashWindowAndRestart) {
  const WeightedGraph g = path_graph(6);
  FaultPlan plan;
  plan.crash_p = 0.8;
  plan.crash_down_rounds = 3;
  plan.first_faulty_round = 5;
  plan.last_faulty_round = 5;  // crashes can only start at round 5
  FaultModel m(g, plan);

  NodeId crashed = kNoNode;
  for (NodeId v = 0; v < g.n(); ++v)
    if (m.crash_started(5, v)) crashed = v;
  ASSERT_NE(crashed, kNoNode);  // p=0.8 over 6 nodes: deterministic hit

  EXPECT_TRUE(m.alive(4, crashed));
  EXPECT_FALSE(m.alive(5, crashed));
  EXPECT_FALSE(m.alive(6, crashed));
  EXPECT_FALSE(m.alive(7, crashed));
  EXPECT_TRUE(m.alive(8, crashed));  // restarted after down window

  std::vector<NodeId> hit;
  m.crashed_between(0, 20, hit);
  EXPECT_TRUE(std::find(hit.begin(), hit.end(), crashed) != hit.end());

  // A message from a down node is suppressed and logged as a crash-drop.
  CongestNetwork net(g);
  net.attach_fault_injector(&m);
  net.charge_idle(5);  // advance into the crash window
  for (const AdjEntry& a : g.adj(crashed)) net.send(crashed, a.edge, 1);
  net.end_round();
  EXPECT_GT(m.stats().crash_drops, 0);
  EXPECT_TRUE(log_has(m, FaultKind::kCrash));
  EXPECT_TRUE(log_has(m, FaultKind::kCrashDrop));
}

TEST(ReliableChannel, DeliversFaultFreeTranscriptUnderLoss) {
  const WeightedGraph g = grid_graph(4, 4);
  CongestNetwork clean(g);
  const auto reference = flood_transcript(clean, 5);

  for (const double p : {0.01, 0.1, 0.3}) {
    FaultPlan plan;
    plan.seed = 7;
    plan.drop_p = p;
    plan.dup_p = p / 2;
    plan.corrupt_p = p / 2;
    FaultModel model(g, plan);
    ReliableChannel net(g, &model);
    const auto got = flood_transcript(net, 5);
    EXPECT_EQ(got, reference) << "p=" << p;
    EXPECT_GT(net.rounds(), clean.rounds()) << "reliability is not free at p=" << p;
    if (p >= 0.1) {
      EXPECT_GT(net.stats().retransmissions, 0);
    }
  }
}

TEST(ReliableChannel, ZeroLossIsBitIdenticalToPlainSimulator) {
  const WeightedGraph g = grid_graph(4, 4);
  CongestNetwork plain(g);
  const auto reference = flood_transcript(plain, 5);

  FaultModel model(g, FaultPlan{});  // all-zero plan
  ReliableChannel net(g, &model);
  const auto got = flood_transcript(net, 5);
  EXPECT_EQ(got, reference);
  EXPECT_EQ(net.rounds(), plain.rounds());
  EXPECT_EQ(net.stats().physical_rounds, 0);
  EXPECT_EQ(net.stats().retransmissions, 0);

  // Same for a full compiled Borůvka run: identical tree AND round count.
  const auto cost = random_costs(g, 3);
  const auto base = congest::compiled_boruvka(g, cost);
  FaultModel model2(g, FaultPlan{});
  ReliableChannel net2(g, &model2);
  const auto rel = congest::compiled_boruvka(net2, cost);
  EXPECT_EQ(rel.tree, base.tree);
  EXPECT_EQ(rel.congest_rounds, base.congest_rounds);
  EXPECT_EQ(rel.ma_rounds, base.ma_rounds);
}

TEST(ReliableChannel, CompiledBoruvkaCorrectUnderSeededLoss) {
  // The E15 acceptance scenario: compiled Borůvka at p = 0.1 completes with
  // the correct MST and a fault log showing injected drops were retried.
  Rng rng(43);
  WeightedGraph g = erdos_renyi_connected(48, 0.15, rng);
  const auto cost = random_costs(g, 17);
  const auto base = congest::compiled_boruvka(g, cost);

  FaultPlan plan;
  plan.seed = 11;
  plan.drop_p = 0.1;
  FaultModel model(g, plan);
  ReliableChannel net(g, &model);
  const auto res = congest::compiled_boruvka(net, cost);

  EXPECT_EQ(res.tree, base.tree);
  EXPECT_EQ(res.ma_rounds, base.ma_rounds);
  EXPECT_GT(res.congest_rounds, base.congest_rounds);
  EXPECT_GT(model.stats().drops, 0);
  EXPECT_TRUE(log_has(model, FaultKind::kDrop));
  EXPECT_GT(net.stats().retransmissions, 0) << "drops must surface as retries";
}

TEST(ReliableChannel, SameSeedBitIdenticalAcrossRuns) {
  const WeightedGraph g = grid_graph(5, 5);
  const auto cost = random_costs(g, 5);
  FaultPlan plan;
  plan.seed = 23;
  plan.drop_p = 0.15;
  plan.dup_p = 0.05;
  plan.corrupt_p = 0.05;

  auto run = [&] {
    FaultModel model(g, plan);
    ReliableChannel net(g, &model);
    const auto res = congest::compiled_boruvka(net, cost);
    return std::tuple{res.tree, res.congest_rounds, model.log_to_string(),
                      net.stats().retransmissions};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(ReliableChannel, CrashRestartRecoversFromCheckpoint) {
  const WeightedGraph g = grid_graph(4, 4);
  const auto cost = random_costs(g, 9);
  const auto base = congest::compiled_boruvka(g, cost);

  FaultPlan plan;
  plan.seed = 5;
  plan.crash_p = 0.4;
  plan.crash_down_rounds = 2;
  plan.first_faulty_round = 30;
  plan.last_faulty_round = 34;  // a burst of crashes mid-run
  FaultModel model(g, plan);
  ReliableChannel net(g, &model);
  const auto res = congest::compiled_boruvka(net, cost);

  EXPECT_EQ(res.tree, base.tree) << "crash-restarted run must still produce the MST";
  EXPECT_GE(res.rollbacks, 1) << "the crash burst must have forced a rollback";
  EXPECT_GE(res.recoveries, 1);
  EXPECT_GT(res.congest_rounds, base.congest_rounds);
  EXPECT_TRUE(log_has(model, FaultKind::kCrash));
  EXPECT_TRUE(log_has(model, FaultKind::kRestart));
  EXPECT_TRUE(log_has(model, FaultKind::kRecovery));
}

fault::ReliableConfig gbn_config() {
  fault::ReliableConfig cfg;
  cfg.mode = fault::ArqMode::kGoBackN;
  return cfg;
}

/// Expected total backoff: one charge of min(2^{k-1}, cap) per stalled
/// attempt k = 1..stalls (both ARQ modes share the schedule).
std::int64_t expected_backoff(std::int64_t stalls, std::int64_t cap) {
  std::int64_t total = 0;
  for (std::int64_t k = 1; k <= stalls; ++k)
    total += std::min(std::int64_t{1} << std::min<std::int64_t>(k - 1, 30), cap);
  return total;
}

TEST(ReliableChannelGbn, DeliversFaultFreeTranscriptUnderLoss) {
  const WeightedGraph g = grid_graph(4, 4);
  CongestNetwork clean(g);
  const auto reference = flood_transcript(clean, 5);

  for (const double p : {0.01, 0.1, 0.3}) {
    FaultPlan plan;
    plan.seed = 7;
    plan.drop_p = p;
    plan.dup_p = p / 2;
    plan.corrupt_p = p / 2;
    FaultModel model(g, plan);
    ReliableChannel net(g, &model, gbn_config());
    const auto got = flood_transcript(net, 5);
    EXPECT_EQ(got, reference) << "p=" << p;
    net.drain();
    EXPECT_EQ(net.in_flight(), 0) << "drain must retire the whole journal at p=" << p;
  }
}

TEST(ReliableChannelGbn, ZeroLossIsBitIdenticalToPlainSimulator) {
  const WeightedGraph g = grid_graph(4, 4);
  CongestNetwork plain(g);
  const auto reference = flood_transcript(plain, 5);

  FaultModel model(g, FaultPlan{});  // all-zero plan
  ReliableChannel net(g, &model, gbn_config());
  const auto got = flood_transcript(net, 5);
  net.drain();
  EXPECT_EQ(got, reference);
  EXPECT_EQ(net.rounds(), plain.rounds());
  EXPECT_EQ(net.stats().physical_rounds, 0);
  EXPECT_EQ(net.stats().piggybacked_acks, 0);
  EXPECT_EQ(net.in_flight(), 0);
}

TEST(ReliableChannelGbn, CompiledBoruvkaCorrectUnderLossAndCrashes) {
  Rng rng(43);
  WeightedGraph g = erdos_renyi_connected(48, 0.15, rng);
  const auto cost = random_costs(g, 17);
  const auto base = congest::compiled_boruvka(g, cost);

  FaultPlan plan;
  plan.seed = 11;
  plan.drop_p = 0.1;
  plan.crash_p = 0.3;
  plan.crash_down_rounds = 2;
  plan.first_faulty_round = 30;
  plan.last_faulty_round = 44;  // a lossy burst with crashes mid-run
  FaultModel model(g, plan);
  ReliableChannel net(g, &model, gbn_config());
  const auto res = congest::compiled_boruvka(net, cost);
  net.drain();

  EXPECT_EQ(res.tree, base.tree);
  EXPECT_EQ(res.ma_rounds, base.ma_rounds);
  EXPECT_GT(net.stats().piggybacked_acks, 0) << "ACKs must ride free slots";
  EXPECT_EQ(net.in_flight(), 0);
}

TEST(ReliableChannelGbn, SameSeedBitIdenticalAcrossRuns) {
  const WeightedGraph g = grid_graph(5, 5);
  const auto cost = random_costs(g, 5);
  FaultPlan plan;
  plan.seed = 23;
  plan.drop_p = 0.15;
  plan.dup_p = 0.05;
  plan.corrupt_p = 0.05;

  auto run = [&] {
    FaultModel model(g, plan);
    ReliableChannel net(g, &model, gbn_config());
    const auto res = congest::compiled_boruvka(net, cost);
    net.drain();
    return std::tuple{res.tree, res.congest_rounds, model.log_to_string(),
                      net.stats().physical_rounds, net.stats().piggybacked_acks,
                      net.stats().ack_flush_rounds};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(ReliableChannelGbn, CheaperThanStopAndWaitAtLowLoss) {
  // The E19 headline claim in miniature: at p = .01 the 2-round acceptance
  // cycle (+ drain) must charge substantially fewer rounds than the
  // 3-round stop-and-wait triple. Deterministic seed, so a stable margin.
  const WeightedGraph g = grid_graph(4, 4);
  FaultPlan plan;
  plan.seed = 19;
  plan.drop_p = 0.01;

  FaultModel sw_model(g, plan);
  ReliableChannel sw(g, &sw_model);
  (void)flood_transcript(sw, 30);
  const std::int64_t sw_rounds = sw.stats().physical_rounds + sw.stats().backoff_rounds;

  FaultModel gbn_model(g, plan);
  ReliableChannel gbn(g, &gbn_model, gbn_config());
  (void)flood_transcript(gbn, 30);
  gbn.drain();
  const std::int64_t gbn_rounds = gbn.stats().physical_rounds + gbn.stats().backoff_rounds;

  EXPECT_LT(gbn_rounds, sw_rounds);
  EXPECT_GE(sw_rounds * 10, gbn_rounds * 14) << "expected >= 1.4x fewer charged rounds";
}

TEST(ReliableChannel, LostFinalAckOnLastLogicalRound) {
  // Drop exactly the ACK physical round of the only logical round
  // (DATA=0, CTRL=1, ACK=2). The receiver has accepted; the sender must
  // retry, the receiver must dedup the re-sent DATA and re-acknowledge,
  // and the message still delivers exactly once.
  const WeightedGraph g = path_graph(2);
  FaultPlan plan;
  plan.seed = 1;
  plan.drop_p = 0.999;
  plan.first_faulty_round = 2;
  plan.last_faulty_round = 2;
  FaultModel model(g, plan);
  ReliableChannel net(g, &model);
  net.send(0, 0, 42, 7);
  net.end_round();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].payload, 42);
  EXPECT_EQ(net.inbox(1)[0].aux, 7);
  // Attempt 1 (rounds 0-2, ACK lost), backoff 1 round, attempt 2 (rounds 4-6).
  EXPECT_EQ(net.stats().physical_rounds, 6);
  EXPECT_EQ(net.stats().retransmissions, 1);
  EXPECT_EQ(net.stats().backoff_rounds, 1);
  EXPECT_GT(model.stats().drops, 0);
}

TEST(ReliableChannelGbn, LostFinalAckIsFlushedByDrain) {
  // GBN accepts in 2 rounds (DATA=0, CTRL=1); the journal-retiring ACK has
  // no later logical round to ride, so it is drain()'s job — and the first
  // flush round (2) is exactly the one the plan eats.
  const WeightedGraph g = path_graph(2);
  FaultPlan plan;
  plan.seed = 1;
  plan.drop_p = 0.999;
  plan.first_faulty_round = 2;
  plan.last_faulty_round = 2;
  FaultModel model(g, plan);
  ReliableChannel net(g, &model, gbn_config());
  net.send(0, 0, 42, 7);
  net.end_round();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.stats().physical_rounds, 2);
  EXPECT_EQ(net.in_flight(), 1) << "accepted but unretired until drained";
  net.drain();
  EXPECT_EQ(net.in_flight(), 0);
  // Flush round 2 dropped, backoff 1 round, flush round 4 retires.
  EXPECT_EQ(net.stats().ack_flush_rounds, 2);
  EXPECT_EQ(net.stats().backoff_rounds, 1);
}

TEST(ReliableChannel, DuplicateOnlyPlanDeliversExactlyOnce) {
  // A wire that duplicates everything (but drops/corrupts nothing) must
  // cost the fault-free attempt count in both modes: duplicates are
  // deduplicated by sequence number, never retried.
  const WeightedGraph g = grid_graph(3, 3);
  CongestNetwork clean(g);
  const auto reference = flood_transcript(clean, 4);
  FaultPlan plan;
  plan.seed = 3;
  plan.dup_p = 1.0;
  {
    FaultModel model(g, plan);
    ReliableChannel net(g, &model);
    EXPECT_EQ(flood_transcript(net, 4), reference);
    EXPECT_EQ(net.stats().physical_rounds, 3 * 4);  // one triple per round
    EXPECT_EQ(net.stats().retransmissions, 0);
    EXPECT_GT(model.stats().duplicates, 0);
  }
  {
    FaultModel model(g, plan);
    ReliableChannel net(g, &model, gbn_config());
    EXPECT_EQ(flood_transcript(net, 4), reference);
    net.drain();
    EXPECT_EQ(net.stats().physical_rounds, 2 * 4 + net.stats().ack_flush_rounds);
    EXPECT_EQ(net.stats().retransmissions, 0);
    EXPECT_EQ(net.stats().stalled_cycles, 0);
    EXPECT_EQ(net.in_flight(), 0);
  }
}

TEST(ReliableChannel, BackoffSaturatesAtConfiguredCap) {
  // Total loss until round 40: every attempt stalls, and the exponential
  // backoff must clamp at max_backoff_rounds instead of doubling forever.
  const WeightedGraph g = path_graph(2);
  FaultPlan plan;
  plan.seed = 1;
  plan.drop_p = 0.999;
  plan.first_faulty_round = 0;
  plan.last_faulty_round = 40;
  fault::ReliableConfig cfg;
  cfg.max_backoff_rounds = 4;
  {
    FaultModel model(g, plan);
    ReliableChannel net(g, &model, cfg);
    net.send(0, 0, 42);
    net.end_round();
    ASSERT_EQ(net.inbox(1).size(), 1u);
    // One message: retransmission count == stalled attempts.
    const std::int64_t stalls = net.stats().retransmissions;
    EXPECT_GE(stalls, 4) << "plan must be lossy long enough to saturate";
    EXPECT_EQ(net.stats().backoff_rounds, expected_backoff(stalls, 4));
    EXPECT_LT(net.stats().backoff_rounds, (std::int64_t{1} << stalls) - 1)
        << "uncapped doubling would have charged more";
  }
  {
    fault::ReliableConfig gcfg = cfg;
    gcfg.mode = fault::ArqMode::kGoBackN;
    FaultModel model(g, plan);
    ReliableChannel net(g, &model, gcfg);
    net.send(0, 0, 42);
    net.end_round();
    ASSERT_EQ(net.inbox(1).size(), 1u);
    const std::int64_t stalls = net.stats().stalled_cycles;
    EXPECT_GE(stalls, 4);
    EXPECT_EQ(net.stats().backoff_rounds, expected_backoff(stalls, 4));
    net.drain();
    EXPECT_EQ(net.in_flight(), 0);
  }
}

TEST(ReliableChannel, UnreliableNetworkUnderLossIsDetected) {
  // Without the reliability compilation, seeded loss corrupts the compiled
  // execution and the simulator's invariant checks catch it loudly.
  const WeightedGraph g = grid_graph(4, 4);
  const auto cost = random_costs(g, 9);
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_p = 0.3;
  FaultModel model(g, plan);
  CongestNetwork net(g);  // plain network: no ack/retry layer
  net.attach_fault_injector(&model);
  EXPECT_THROW((void)congest::compiled_boruvka(net, cost), invariant_error);
}

}  // namespace
}  // namespace umc
