// Unit tests for the graph substrate: WeightedGraph, DSU, generators,
// structural properties, and minor operations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/minors.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

TEST(WeightedGraph, BasicConstruction) {
  WeightedGraph g(3);
  EXPECT_EQ(g.n(), 3);
  EXPECT_EQ(g.m(), 0);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_EQ(g.edge(e).w, 5);
  EXPECT_EQ(g.edge(e).other(0), 1);
  EXPECT_EQ(g.edge(e).other(1), 0);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(WeightedGraph, RejectsSelfLoopsAndBadWeights) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), invariant_error);
  EXPECT_THROW(g.add_edge(0, 1, 0), invariant_error);
  EXPECT_THROW(g.add_edge(0, 1, -3), invariant_error);
}

TEST(WeightedGraph, ParallelEdgesAllowed) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.m(), 2);
  EXPECT_EQ(g.weighted_degree(0), 5);
  EXPECT_EQ(g.total_weight(), 5);
}

TEST(WeightedGraph, AddNodeGrows) {
  WeightedGraph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1);
  g.add_edge(0, v, 7);
  EXPECT_EQ(g.weighted_degree(v), 7);
}

TEST(Dsu, UniteAndComponents) {
  Dsu d(5);
  EXPECT_EQ(d.num_components(), 5);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.unite(2, 3));
  EXPECT_EQ(d.num_components(), 3);
  EXPECT_TRUE(d.same(0, 1));
  EXPECT_FALSE(d.same(0, 2));
  EXPECT_EQ(d.component_size(1), 2);
}

TEST(Generators, PathCycleStarComplete) {
  EXPECT_EQ(path_graph(5).m(), 4);
  EXPECT_EQ(cycle_graph(5).m(), 5);
  EXPECT_EQ(star_graph(5).m(), 4);
  EXPECT_EQ(complete_graph(5).m(), 10);
  EXPECT_TRUE(is_connected(path_graph(5)));
  EXPECT_EQ(exact_diameter(path_graph(5)), 4);
  EXPECT_EQ(exact_diameter(cycle_graph(6)), 3);
  EXPECT_EQ(exact_diameter(star_graph(5)), 2);
  EXPECT_EQ(exact_diameter(complete_graph(5)), 1);
}

TEST(Generators, GridShape) {
  const WeightedGraph g = grid_graph(3, 4);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.m(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 2 + 3);
}

TEST(Generators, RandomPlanarGridStaysConnectedAndPlanarSized) {
  Rng rng(1);
  const WeightedGraph g = random_planar_grid(8, 8, 0.7, rng);
  EXPECT_TRUE(is_connected(g));
  // Planar bound: m <= 3n - 6.
  EXPECT_LE(g.m(), 3 * g.n() - 6);
}

TEST(Generators, ErdosRenyiConnectedIsConnected) {
  Rng rng(7);
  for (int seed = 0; seed < 5; ++seed) {
    const WeightedGraph g = erdos_renyi_connected(40, 0.05, rng);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(3);
  const WeightedGraph g = random_tree(30, rng);
  EXPECT_EQ(g.m(), 29);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomConnectedHasExactEdgeCount) {
  Rng rng(11);
  const WeightedGraph g = random_connected(25, 60, rng);
  EXPECT_EQ(g.m(), 60);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DumbbellHasBridgeCut) {
  const WeightedGraph g = dumbbell(5, 3);
  EXPECT_EQ(g.n(), 13);
  EXPECT_TRUE(is_connected(g));
  // Removing any single bridge edge disconnects.
  EXPECT_GE(exact_diameter(g), 4);
}

TEST(Generators, KTreeEdgeCount) {
  Rng rng(5);
  const WeightedGraph g = ktree(20, 3, rng);
  // k-tree on n nodes: C(k+1,2) + (n-k-1)*k edges.
  EXPECT_EQ(g.m(), 6 + 16 * 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DoubleBroomAndSpiderShapes) {
  Rng rng(2);
  const WeightedGraph db = double_broom(10, 15, rng);
  EXPECT_EQ(db.n(), 21);
  EXPECT_TRUE(is_connected(db));
  const WeightedGraph sp = spider(4, 6, 10, rng);
  EXPECT_EQ(sp.n(), 25);
  EXPECT_TRUE(is_connected(sp));
}

TEST(Generators, RandomizeWeightsInRange) {
  Rng rng(9);
  WeightedGraph g = grid_graph(4, 4);
  randomize_weights(g, 3, 17, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 3);
    EXPECT_LE(e.w, 17);
  }
}

TEST(Properties, ComponentsOfDisconnectedGraph) {
  WeightedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(num_components(g), 3);
  const auto ids = component_ids(g);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[2], ids[3]);
  EXPECT_NE(ids[0], ids[2]);
  EXPECT_NE(ids[4], ids[0]);
}

TEST(Properties, ApproxDiameterWithinFactorTwo) {
  Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    const WeightedGraph g = erdos_renyi_connected(30, 0.1, rng);
    const int exact = exact_diameter(g);
    const int approx = approx_diameter(g);
    EXPECT_LE(approx, exact);
    EXPECT_GE(2 * approx, exact);
  }
}

TEST(Properties, BfsDistancesOnPath) {
  const WeightedGraph g = path_graph(6);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[0], 2);
  EXPECT_EQ(d[5], 3);
}

TEST(Minors, ContractKeepsParallelEdgesDropsSelfLoops) {
  WeightedGraph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(2, 3, 4);
  std::vector<bool> contract(4, false);
  contract[static_cast<std::size_t>(e01)] = true;
  const DerivedGraph d = contract_edges(g, contract);
  EXPECT_EQ(d.graph.n(), 3);
  EXPECT_EQ(d.graph.m(), 3);  // two parallel {01}-2 edges + {2,3}
  EXPECT_EQ(d.node_map[0], d.node_map[1]);
  // Contracting everything yields a single node with no edges.
  const DerivedGraph all = contract_edges(g, std::vector<bool>(4, true));
  EXPECT_EQ(all.graph.n(), 1);
  EXPECT_EQ(all.graph.m(), 0);
}

TEST(Minors, ContractPreservesTotalWeightOfKeptEdges) {
  Rng rng(21);
  WeightedGraph g = erdos_renyi_connected(20, 0.2, rng);
  randomize_weights(g, 1, 50, rng);
  std::vector<bool> contract(static_cast<std::size_t>(g.m()), false);
  for (EdgeId e = 0; e < g.m(); ++e) contract[static_cast<std::size_t>(e)] = rng.next_bool(0.3);
  const DerivedGraph d = contract_edges(g, contract);
  Weight kept = 0;
  for (EdgeId e = 0; e < g.m(); ++e) {
    const Edge& ed = g.edge(e);
    if (!contract[static_cast<std::size_t>(e)] &&
        d.node_map[static_cast<std::size_t>(ed.u)] != d.node_map[static_cast<std::size_t>(ed.v)])
      kept += ed.w;
  }
  EXPECT_EQ(d.graph.total_weight(), kept);
  for (std::size_t i = 0; i < d.edge_origin.size(); ++i)
    EXPECT_EQ(d.graph.edge(static_cast<EdgeId>(i)).w, g.edge(d.edge_origin[i]).w);
}

TEST(Minors, InducedSubgraph) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 4, 4);
  std::vector<bool> keep = {true, true, true, false, false};
  const DerivedGraph d = induced_subgraph(g, keep);
  EXPECT_EQ(d.graph.n(), 3);
  EXPECT_EQ(d.graph.m(), 2);
  EXPECT_EQ(d.node_map[3], kNoNode);
  EXPECT_EQ(d.graph.total_weight(), 3);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = c.next_below(7);
    EXPECT_LT(v, 7u);
    const auto w = c.next_in(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace umc
