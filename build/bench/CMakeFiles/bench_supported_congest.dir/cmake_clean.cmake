file(REMOVE_RECURSE
  "CMakeFiles/bench_supported_congest.dir/bench_supported_congest.cpp.o"
  "CMakeFiles/bench_supported_congest.dir/bench_supported_congest.cpp.o.d"
  "bench_supported_congest"
  "bench_supported_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supported_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
