#pragma once

// Tree packing (Section 3.4, Theorem 12).
//
// Produces O(log^2 n) spanning trees such that, with high probability,
// every cut of value <= 1.05*lambda 2-respects at least one tree:
//   * if lambda is already O(log n): greedy MST packing (Thorup) — re-run
//     Borůvka I = 2*lambda*log(m) times under "packing load" costs;
//   * otherwise: Karger-sample edges with p = C*log(n)/lambda first (case B
//     of the Theorem 12 proof sketch), then greedy-pack the sample.
//
// Substitution (documented in DESIGN.md): the (1+eps)-approximation of
// lambda used to set the sampling rate is cited prior work [17] in the
// paper; this implementation seeds it with the exact Stoer-Wagner value and
// charges a polylog placeholder round cost for it.

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "mincut/solve_checkpoint.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"

namespace umc::mincut {

class PackingCache;

struct PackingConfig {
  /// Sampling constant C in p = C*log2(n)/lambda.
  double sample_c = 2.0;
  /// Direct greedy packing below this multiple of log2(n).
  double direct_threshold_c = 4.0;
  /// Hard cap on the number of trees (0 = the theorem's I); useful for
  /// quick experiments that trade the whp guarantee for speed.
  int max_trees = 0;
  /// Fast path: per-iteration MSTs via the reusable chunk-parallel
  /// BoruvkaPacker with incremental load re-costing, instead of driving a
  /// full Minor-Aggregation simulation per Borůvka phase. Trees, iteration
  /// counts, rng consumption, and every ledger charge are bit-identical to
  /// the simulated reference (the replayed charges are computed from the
  /// identical phase structure); only wall time changes. OFF pins the
  /// original producer for differential tests and the seed-vs-fastpath
  /// bench.
  bool use_fast_path = true;
  /// Consult/populate the global PackingCache, keyed by (graph fingerprint,
  /// rng state, config): a hit replays the recorded trees, charges, and rng
  /// fast-forward instead of recomputing — how exact_mincut_guarded's
  /// deterministic re-run self-check avoids paying for the packing twice,
  /// and how warm-started sessions will reuse packings.
  bool use_cache = true;
  /// Minimum live edges per Borůvka fold chunk on the fast path. Pure
  /// wall-time granularity: chunking cannot change any output (per-component
  /// minima under a strict total order merge identically under any split),
  /// so this field is deliberately EXCLUDED from the PackingCache
  /// fingerprint. Tests lower it to force multi-chunk folds on small
  /// graphs; the default keeps tiny folds inline.
  int chunk_min_edges = 2048;
  /// The PackingCache consulted when `use_cache` is on: nullptr (the
  /// default) means the process-wide PackingCache::global(). A multi-tenant
  /// server points this at the tenant Session's private cache so one
  /// tenant's packings can neither evict nor be observed by another's
  /// (src/server). Like chunk_min_edges, the pointer is EXCLUDED from the
  /// cache fingerprint: it selects WHERE entries live, not what they
  /// contain.
  PackingCache* cache = nullptr;
};

struct TreePacking {
  std::vector<std::vector<EdgeId>> trees;  // edge ids of the input graph
  Weight lambda_seed = 0;                  // min-cut estimate used
  bool sampled = false;                    // took the Karger-sampling route
};

/// Requires a connected graph with n >= 2.
[[nodiscard]] TreePacking tree_packing(const WeightedGraph& g, Rng& rng,
                                       minoragg::Ledger& ledger,
                                       const PackingConfig& config = {});

/// Receives each packed tree (edge ids of the input graph) as soon as its
/// Borůvka iteration finishes, in packing order.
using TreeSink = std::function<void(std::vector<EdgeId>)>;

/// Streaming variant for the pipelined solve: instead of retaining trees in
/// the result (`trees` stays empty), each tree is handed to `sink` the
/// moment it is packed, so consumers can start solving tree i while
/// iteration i+1 still runs. Identical randomness, identical trees in the
/// same order, and identical ledger charges as the retaining overload — the
/// sink is purely an output channel. The sink is invoked on the calling
/// thread; `rng` is touched only between sink calls, and `ledger` absorbs
/// the packing's (all-additive) charges once after the final sink call.
[[nodiscard]] TreePacking tree_packing(const WeightedGraph& g, Rng& rng,
                                       minoragg::Ledger& ledger, const PackingConfig& config,
                                       const TreeSink& sink);

/// Checkpoint-resumable producer. Journals every committed unit (setup,
/// then each greedy iteration) into `ckpt`; when `ckpt` already holds work
/// for this exact (graph, config, entry rng state) — asserted — the
/// committed prefix is REPLAYED through the sink and packing continues live
/// from the first uncommitted iteration. Trees, emit order, ledger charges,
/// and the generator exit state are bit-identical to an uninterrupted
/// tree_packing call regardless of how many crash/resume cycles happened.
///
/// `hook` fires before each commit (kPackingSetup once, kPackingIteration
/// per iteration) and may throw crash_error; the caller must then reset the
/// rng to the entry state before resuming (setup consumes randomness).
/// The PackingCache is consulted only when `ckpt` is empty — a hit is a
/// full replay, the cheapest resume of all — and populated on completion.
[[nodiscard]] TreePacking tree_packing_resumable(const WeightedGraph& g, Rng& rng,
                                                 minoragg::Ledger& ledger,
                                                 const PackingConfig& config,
                                                 const TreeSink& sink, PackingCheckpoint& ckpt,
                                                 const CrashHook& hook = nullptr);

}  // namespace umc::mincut
