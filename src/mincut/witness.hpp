#pragma once

// Cut-witness extraction: turn a (e, f) 2-respecting answer back into the
// actual bipartition and the crossing edge set — what a downstream user of
// the library actually consumes (which links to reinforce, which region
// gets isolated).

#include <vector>

#include "mincut/instance.hpp"
#include "tree/rooted_tree.hpp"

namespace umc::mincut {

struct CutWitness {
  /// side[v]: true iff v is inside the cut-off region, i.e. in
  /// subtree(bottom(e)) XOR subtree(bottom(f)) of the defining tree.
  std::vector<bool> side;
  /// Host-graph edge ids crossing the cut.
  std::vector<EdgeId> crossing;
  Weight value = 0;
};

/// Materializes the cut that cuts exactly {e} (f == kNoEdge) or {e, f}
/// among the tree edges of `t`. The returned value always equals the sum of
/// crossing weights — use it to double-check any CutResult.
[[nodiscard]] CutWitness cut_witness(const RootedTree& t, EdgeId e, EdgeId f = kNoEdge);

/// Convenience: witness for a CutResult reported against tree `t`.
[[nodiscard]] CutWitness cut_witness(const RootedTree& t, const CutResult& r);

}  // namespace umc::mincut
