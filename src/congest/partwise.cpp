#include "congest/partwise.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/minors.hpp"
#include "graph/properties.hpp"
#include "tree/rooted_tree.hpp"
#include "tree/spanning.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::congest {

namespace {

/// Eccentricity of `root` inside the sub-network induced by one part.
/// Scans the CSR adjacency view — one BFS per part per aggregation makes
/// this the layer's hottest loop.
int internal_eccentricity(const WeightedGraph& g, std::span<const int> part, int pid,
                          NodeId root) {
  const CsrAdjacency& csr = g.csr();
  std::vector<int> dist(static_cast<std::size_t>(g.n()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  int ecc = 0;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    ecc = std::max(ecc, dist[static_cast<std::size_t>(v)]);
    for (const AdjEntry& a : csr.row(v)) {
      if (part[static_cast<std::size_t>(a.to)] != pid) continue;
      if (dist[static_cast<std::size_t>(a.to)] != -1) continue;
      dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(v)] + 1;
      q.push(a.to);
    }
  }
  return ecc;
}

}  // namespace

PartwiseResult partwise_aggregate(CongestNetwork& net, std::span<const int> part,
                                  std::span<const std::int64_t> input, PartwiseOp op) {
  const auto identity = [op]() {
    return op == PartwiseOp::kSum ? 0 : std::numeric_limits<std::int64_t>::max();
  };
  const auto fold = [op](std::int64_t a, std::int64_t b) {
    return op == PartwiseOp::kSum ? a + b : std::min(a, b);
  };
  const WeightedGraph& g = net.graph();
  const NodeId n = g.n();
  UMC_ASSERT(static_cast<NodeId>(part.size()) == n);
  UMC_ASSERT(static_cast<NodeId>(input.size()) == n);
  const std::int64_t start_rounds = net.rounds();

  PartwiseResult out;
  out.value.assign(static_cast<std::size_t>(n), identity());

  int k = 0;
  for (const int p : part) k = std::max(k, p + 1);
  out.num_parts = k;
  if (k == 0) return out;

  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(k));
  std::vector<std::int64_t> total(static_cast<std::size_t>(k), identity());
  for (NodeId v = 0; v < n; ++v) {
    const int p = part[static_cast<std::size_t>(v)];
    if (p >= 0) {
      members[static_cast<std::size_t>(p)].push_back(v);
      total[static_cast<std::size_t>(p)] =
          fold(total[static_cast<std::size_t>(p)], input[static_cast<std::size_t>(v)]);
    }
  }

  // Small/large threshold: 2(ceil(sqrt(n))+1), matching the carve partition's
  // size cap so canonical partitions ride the node-disjoint small-part route.
  const NodeId threshold = 2 * (static_cast<NodeId>(isqrt(static_cast<std::uint64_t>(n))) + 1);

  // ---- Small-part phase: node-disjoint internal convergecast+broadcast.
  // Each part aggregates over its own internal BFS tree; since parts are
  // node-disjoint the schedules coexist, so the cost is the worst part's
  // 2*eccentricity + 2.
  std::int64_t small_rounds = 0;
  std::vector<int> large_index(static_cast<std::size_t>(k), -1);
  int num_large = 0;
  for (int p = 0; p < k; ++p) {
    const auto& mem = members[static_cast<std::size_t>(p)];
    if (mem.empty()) continue;
    if (static_cast<NodeId>(mem.size()) > threshold) {
      large_index[static_cast<std::size_t>(p)] = num_large++;
      continue;
    }
    const int ecc = internal_eccentricity(g, part, p, mem.front());
    small_rounds = std::max(small_rounds, static_cast<std::int64_t>(2 * ecc + 2));
    for (const NodeId v : mem) out.value[static_cast<std::size_t>(v)] = total[static_cast<std::size_t>(p)];
  }
  net.charge_idle(small_rounds);
  out.small_phase_rounds = small_rounds;
  out.num_large_parts = num_large;

  // ---- Large-part phase: pipelined convergecast + broadcast on the global
  // BFS tree, one (part, value) message per edge per round, greedy schedule.
  if (num_large > 0) {
    const std::int64_t large_start = net.rounds();
    const BfsTree bfs = build_bfs_tree(net, 0);
    const std::size_t L = static_cast<std::size_t>(num_large);

    // contains[v][l]: subtree(v) holds a member of large part l.
    std::vector<std::vector<char>> contains(static_cast<std::size_t>(n),
                                            std::vector<char>(L, 0));
    for (int p = 0; p < k; ++p) {
      const int l = large_index[static_cast<std::size_t>(p)];
      if (l < 0) continue;
      for (const NodeId u : members[static_cast<std::size_t>(p)]) {
        for (NodeId x = u; x != kNoNode; x = bfs.parent[static_cast<std::size_t>(x)]) {
          if (contains[static_cast<std::size_t>(x)][static_cast<std::size_t>(l)]) break;
          contains[static_cast<std::size_t>(x)][static_cast<std::size_t>(l)] = 1;
        }
      }
    }
    std::vector<std::vector<int>> need(static_cast<std::size_t>(n), std::vector<int>(L, 0));
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId c : bfs.children[static_cast<std::size_t>(v)]) {
        for (std::size_t l = 0; l < L; ++l)
          need[static_cast<std::size_t>(v)][l] +=
              contains[static_cast<std::size_t>(c)][l] ? 1 : 0;
      }
    }

    // Upward convergecast.
    std::vector<std::vector<std::int64_t>> have(static_cast<std::size_t>(n),
                                                std::vector<std::int64_t>(L, identity()));
    std::vector<std::vector<int>> got(static_cast<std::size_t>(n), std::vector<int>(L, 0));
    std::vector<std::vector<char>> sent(static_cast<std::size_t>(n), std::vector<char>(L, 0));
    for (NodeId v = 0; v < n; ++v) {
      const int p = part[static_cast<std::size_t>(v)];
      if (p >= 0 && large_index[static_cast<std::size_t>(p)] >= 0) {
        auto& slot = have[static_cast<std::size_t>(v)]
                         [static_cast<std::size_t>(large_index[static_cast<std::size_t>(p)])];
        slot = fold(slot, input[static_cast<std::size_t>(v)]);
      }
    }
    int root_done = 0;
    for (std::size_t l = 0; l < L; ++l)
      if (got[0][l] == need[0][l]) ++root_done;  // parts entirely at the root
    while (root_done < num_large) {
      for (NodeId v = 0; v < n; ++v) {
        if (v == bfs.root) continue;
        for (std::size_t l = 0; l < L; ++l) {
          if (sent[static_cast<std::size_t>(v)][l]) continue;
          if (!contains[static_cast<std::size_t>(v)][l]) continue;
          if (got[static_cast<std::size_t>(v)][l] != need[static_cast<std::size_t>(v)][l])
            continue;
          net.send(v, bfs.parent_edge[static_cast<std::size_t>(v)],
                   static_cast<std::int64_t>(l), have[static_cast<std::size_t>(v)][l]);
          sent[static_cast<std::size_t>(v)][l] = 1;
          break;  // one message up per round
        }
      }
      net.end_round();
      for (NodeId v = 0; v < n; ++v) {
        for (const Message& m : net.inbox(v)) {
          if (m.from == bfs.parent[static_cast<std::size_t>(v)]) continue;  // down traffic: none yet
          const std::size_t l = static_cast<std::size_t>(m.payload);
          have[static_cast<std::size_t>(v)][l] = fold(have[static_cast<std::size_t>(v)][l], m.aux);
          ++got[static_cast<std::size_t>(v)][l];
          if (v == bfs.root && got[0][l] == need[0][l]) ++root_done;
        }
      }
    }

    // Downward pipelined broadcast of the totals.
    std::vector<std::int64_t> large_total(L, 0);
    for (std::size_t l = 0; l < L; ++l) large_total[l] = have[0][l];
    std::vector<std::vector<char>> know(static_cast<std::size_t>(n), std::vector<char>(L, 0));
    for (std::size_t l = 0; l < L; ++l) know[0][l] = 1;
    // forwarded[v] indexed by (child position, part).
    std::vector<std::vector<std::vector<char>>> forwarded(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v)
      forwarded[static_cast<std::size_t>(v)].assign(
          bfs.children[static_cast<std::size_t>(v)].size(), std::vector<char>(L, 0));
    std::int64_t remaining = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v == bfs.root) continue;
      for (std::size_t l = 0; l < L; ++l)
        if (contains[static_cast<std::size_t>(v)][l]) ++remaining;
    }
    while (remaining > 0) {
      for (NodeId v = 0; v < n; ++v) {
        const auto& kids = bfs.children[static_cast<std::size_t>(v)];
        for (std::size_t ci = 0; ci < kids.size(); ++ci) {
          const NodeId c = kids[ci];
          for (std::size_t l = 0; l < L; ++l) {
            if (!know[static_cast<std::size_t>(v)][l]) continue;
            if (forwarded[static_cast<std::size_t>(v)][ci][l]) continue;
            if (!contains[static_cast<std::size_t>(c)][l]) continue;
            net.send(v, bfs.parent_edge[static_cast<std::size_t>(c)],
                     static_cast<std::int64_t>(l), large_total[l]);
            forwarded[static_cast<std::size_t>(v)][ci][l] = 1;
            break;  // one message per child edge per round
          }
        }
      }
      net.end_round();
      for (NodeId v = 0; v < n; ++v) {
        for (const Message& m : net.inbox(v)) {
          if (m.from != bfs.parent[static_cast<std::size_t>(v)]) continue;
          const std::size_t l = static_cast<std::size_t>(m.payload);
          if (!know[static_cast<std::size_t>(v)][l]) {
            know[static_cast<std::size_t>(v)][l] = 1;
            --remaining;
          }
        }
      }
    }
    for (int p = 0; p < k; ++p) {
      const int l = large_index[static_cast<std::size_t>(p)];
      if (l < 0) continue;
      for (const NodeId v : members[static_cast<std::size_t>(p)])
        out.value[static_cast<std::size_t>(v)] = large_total[static_cast<std::size_t>(l)];
    }
    out.large_phase_rounds = net.rounds() - large_start;
  }

  out.rounds_used = net.rounds() - start_rounds;
  return out;
}

std::vector<int> sqrt_carve_partition(const WeightedGraph& g, std::uint64_t seed) {
  const NodeId n = g.n();
  Rng rng(seed);
  const auto tree_edges = wilson_random_spanning_tree(g, rng);
  const RootedTree t(g, tree_edges, 0);
  const NodeId target = static_cast<NodeId>(isqrt(static_cast<std::uint64_t>(n))) + 1;

  std::vector<int> part(static_cast<std::size_t>(n), -1);
  // Bottom-up carve: pending cluster per node = itself plus children's
  // still-open clusters. Closing when the accumulated size reaches the
  // target keeps every part connected; child clusters that would push the
  // accumulator past 2x the target are closed on their own, capping part
  // sizes at 2*target (so all parts stay on the small-part route).
  std::vector<std::vector<NodeId>> pending(static_cast<std::size_t>(n));
  int next_part = 0;
  const auto close = [&part, &next_part](std::vector<NodeId>& cluster) {
    for (const NodeId x : cluster) part[static_cast<std::size_t>(x)] = next_part;
    ++next_part;
    cluster.clear();
  };
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    auto& acc = pending[static_cast<std::size_t>(v)];
    acc.push_back(v);
    for (const NodeId c : t.children(v)) {
      auto& pc = pending[static_cast<std::size_t>(c)];
      if (static_cast<NodeId>(acc.size() + pc.size()) > 2 * target) {
        close(pc);  // connected on its own (contains c)
      } else {
        acc.insert(acc.end(), pc.begin(), pc.end());
        pc.clear();
      }
      pc.shrink_to_fit();
    }
    if (static_cast<NodeId>(acc.size()) >= target || v == t.root()) close(acc);
  }
  return part;
}

}  // namespace umc::congest
