#pragma once

// Plain-text graph serialization: the ubiquitous weighted edge-list format
//
//   # comments and blank lines ignored
//   <n>
//   <u> <v> <w>
//   ...
//
// so real topologies can be fed to the examples/CLI and experiment outputs
// can be archived.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace umc {

/// Parses the edge-list format; throws invariant_error on malformed input
/// (bad node ids, non-positive weights, trailing junk).
[[nodiscard]] WeightedGraph read_edge_list(std::istream& in);
[[nodiscard]] WeightedGraph read_edge_list_file(const std::string& path);

void write_edge_list(std::ostream& out, const WeightedGraph& g);
void write_edge_list_file(const std::string& path, const WeightedGraph& g);

}  // namespace umc
