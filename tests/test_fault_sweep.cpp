// SolveSupervisor unit tests (degradation ladder, budgets, checkpoint
// replay, reseeded retries) and the differential fault-sweep gate: the
// standard generator × fault-plan × tier matrix must produce ZERO silent
// wrong answers — every value matches the fault-free oracle or the report
// flags a certified degraded tier whose witness independently re-sums.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "baseline/stoer_wagner.hpp"
#include "fault/supervisor.hpp"
#include "fault/sweep.hpp"
#include "graph/generators.hpp"
#include "mincut/packing_cache.hpp"
#include "util/rng.hpp"

namespace umc::fault {
namespace {

WeightedGraph test_graph(std::uint64_t seed, int n = 20, double p = 0.3) {
  Rng rng(seed);
  WeightedGraph g = erdos_renyi_connected(n, p, rng);
  randomize_weights(g, 1, 5, rng);
  return g;
}

TEST(Supervisor, ExactTierCleanRun) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(301);
  SupervisorConfig cfg;
  cfg.seed = 7;
  const SolveReport report = SolveSupervisor(cfg).solve(g);
  EXPECT_EQ(report.tier, SolveTier::kExact);
  EXPECT_EQ(report.value, baseline::stoer_wagner(g).value);
  EXPECT_TRUE(report.certified);
  EXPECT_FALSE(report.certificate.empty());
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.tier_falls, 0);
  EXPECT_EQ(report.checkpoint_replays, 0);
  EXPECT_GT(report.rounds, 0);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.attempts[0].outcome, "ok");
  EXPECT_TRUE(report.reason.empty());
}

TEST(Supervisor, CrashesRecoverViaCheckpointReplay) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(303);
  const Weight oracle = baseline::stoer_wagner(g).value;
  SupervisorConfig cfg;
  cfg.seed = 11;
  cfg.max_retries = 5;
  // Three crashes across the pipeline: setup, a mid-packing iteration, a
  // tree solve. Each fires once; the supervisor must replay, not restart.
  std::set<std::pair<mincut::SolvePhase, std::int64_t>> sites = {
      {mincut::SolvePhase::kPackingSetup, 0},
      {mincut::SolvePhase::kPackingIteration, 2},
      {mincut::SolvePhase::kTreeSolve, 1}};
  const SolveReport report = SolveSupervisor(cfg).solve(
      g, [&](mincut::SolvePhase phase, std::int64_t index) {
        const auto it = sites.find({phase, index});
        if (it == sites.end()) return;
        sites.erase(it);
        throw mincut::crash_error(phase, index);
      });
  EXPECT_EQ(report.tier, SolveTier::kCheckpointReplay);
  EXPECT_EQ(report.value, oracle);
  EXPECT_TRUE(report.certified);
  EXPECT_GE(report.retries, 1);
  EXPECT_GT(report.checkpoint_replays, 0);
  EXPECT_EQ(report.tier_falls, 0);
  EXPECT_GE(report.attempts.size(), 2u);  // at least one crash + the success
  EXPECT_NE(report.attempts.front().outcome.find("crash"), std::string::npos);
  EXPECT_EQ(report.attempts.back().outcome, "ok");
}

TEST(Supervisor, CorruptedResultTriggersReseededRetry) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(305);
  SupervisorConfig cfg;
  cfg.seed = 13;
  cfg.inject_result_corruption = true;  // first attempt's value is off by one
  const SolveReport report = SolveSupervisor(cfg).solve(g);
  EXPECT_EQ(report.tier, SolveTier::kExact);
  EXPECT_EQ(report.value, baseline::stoer_wagner(g).value);
  EXPECT_TRUE(report.certified);
  EXPECT_EQ(report.retries, 1);  // one reseeded retry
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_NE(report.attempts[0].outcome.find("guard"), std::string::npos);
  EXPECT_EQ(report.attempts[1].outcome, "ok");
}

TEST(Supervisor, UncertifiedCorruptionIsServedWithoutCertificate) {
  // With verification off the corruption sails through — but the report
  // says so (certified == false), which is what the sweep audit keys on.
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(307);
  SupervisorConfig cfg;
  cfg.seed = 17;
  cfg.verify = false;
  cfg.inject_result_corruption = true;
  const SolveReport report = SolveSupervisor(cfg).solve(g);
  EXPECT_EQ(report.tier, SolveTier::kExact);
  EXPECT_NE(report.value, baseline::stoer_wagner(g).value);
  EXPECT_FALSE(report.certified);
}

TEST(Supervisor, CrashRetryBudgetExhaustionDegradesToKargerStein) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(309);
  const Weight oracle = baseline::stoer_wagner(g).value;
  SupervisorConfig cfg;
  cfg.seed = 19;
  cfg.max_retries = 1;
  // Crash three distinct sites; the second crash exceeds max_retries = 1.
  std::set<std::int64_t> crashed;
  const SolveReport report = SolveSupervisor(cfg).solve(
      g, [&](mincut::SolvePhase phase, std::int64_t index) {
        if (phase != mincut::SolvePhase::kPackingIteration || index > 2) return;
        if (!crashed.insert(index).second) return;
        throw mincut::crash_error(phase, index);
      });
  EXPECT_EQ(report.tier, SolveTier::kKargerStein);
  EXPECT_GE(report.tier_falls, 1);
  EXPECT_TRUE(report.certified);
  EXPECT_FALSE(report.witness_side.empty());
  EXPECT_EQ(resummed_cut_value(g, report.witness_side), report.value);
  EXPECT_GE(report.value, oracle);  // a valid cut is never below the min
  EXPECT_NE(report.reason.find("crash retry budget"), std::string::npos);
}

TEST(Supervisor, RoundBudgetDegradesBeforeExactAttempt) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(311);
  // The preflight's charged transport rounds count against the budget, so a
  // 1-round budget is exhausted before the exact tier ever starts.
  FaultPlan plan;
  plan.seed = 23;
  plan.drop_p = 0.01;
  SupervisorConfig cfg;
  cfg.seed = 23;
  cfg.round_budget = 1;
  cfg.preflight_plan = &plan;
  const SolveReport report = SolveSupervisor(cfg).solve(g);
  EXPECT_EQ(report.tier, SolveTier::kKargerStein);
  EXPECT_NE(report.reason.find("round budget exhausted"), std::string::npos);
  EXPECT_GE(report.value, baseline::stoer_wagner(g).value);
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_EQ(report.attempts.front().outcome, "preflight ok");
  EXPECT_GT(report.attempts.front().rounds, 1);
}

TEST(Supervisor, EntryTierForcing) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = test_graph(313);
  const Weight oracle = baseline::stoer_wagner(g).value;
  {
    SupervisorConfig cfg;
    cfg.seed = 29;
    cfg.entry_tier = SolveTier::kKargerStein;
    const SolveReport report = SolveSupervisor(cfg).solve(g);
    EXPECT_EQ(report.tier, SolveTier::kKargerStein);
    EXPECT_TRUE(report.certified);
    EXPECT_EQ(resummed_cut_value(g, report.witness_side), report.value);
    EXPECT_GE(report.value, oracle);
  }
  {
    SupervisorConfig cfg;
    cfg.seed = 29;
    cfg.entry_tier = SolveTier::kGatherBaseline;
    const SolveReport report = SolveSupervisor(cfg).solve(g);
    EXPECT_EQ(report.tier, SolveTier::kGatherBaseline);
    EXPECT_TRUE(report.certified);
    EXPECT_EQ(report.value, oracle);  // exhaustive gather is exact
    EXPECT_GT(report.rounds, 0);
  }
}

TEST(Supervisor, PreflightFailureSkipsExactTier) {
  mincut::PackingCache::global().clear();
  const WeightedGraph g = path_graph(4);
  FaultPlan plan;
  plan.seed = 31;
  plan.drop_p = 0.999;  // the wire is unusable; the ARQ layer must give up
  SupervisorConfig cfg;
  cfg.seed = 31;
  cfg.preflight_plan = &plan;
  const SolveReport report = SolveSupervisor(cfg).solve(g);
  EXPECT_GE(report.tier, SolveTier::kKargerStein);
  EXPECT_NE(report.reason.find("preflight"), std::string::npos);
  EXPECT_GE(report.value, baseline::stoer_wagner(g).value);
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_NE(report.attempts.front().outcome.find("preflight failed"), std::string::npos);
}

TEST(Supervisor, CrashPlanHookIsDeterministicAndFiresOncePerSite) {
  FaultPlan plan;
  plan.seed = 37;
  plan.crash_p = 0.5;
  const mincut::CrashHook hook = crash_plan_hook(plan);
  ASSERT_TRUE(hook);
  // Find a crashing site; the same site must not crash twice.
  bool crashed_once = false;
  for (std::int64_t i = 0; i < 64 && !crashed_once; ++i) {
    try {
      hook(mincut::SolvePhase::kPackingIteration, i);
    } catch (const mincut::crash_error& e) {
      crashed_once = true;
      EXPECT_NO_THROW(hook(mincut::SolvePhase::kPackingIteration, e.index()));
    }
  }
  EXPECT_TRUE(crashed_once) << "crash_p=0.5 over 64 sites";
  EXPECT_FALSE(crash_plan_hook({}));  // crash-free plan: null hook
}

TEST(FaultSweep, StandardMatrixHasNoSilentWrongAnswers) {
  mincut::PackingCache::global().clear();
  SweepConfig cfg;
  cfg.seed = 1;
  const SweepSummary summary = run_fault_sweep(cfg);
  EXPECT_GE(summary.configs, 96);
  EXPECT_EQ(summary.silent_wrong, 0) << summary.table();
  EXPECT_EQ(static_cast<std::size_t>(summary.configs), summary.outcomes.size());
  EXPECT_EQ(summary.tier_hits[0] + summary.tier_hits[1] + summary.tier_hits[2] +
                summary.tier_hits[3],
            summary.configs);
  EXPECT_EQ(summary.oracle_matches + summary.degraded_flagged, summary.configs);

  int audited = 0;
  for (const SweepOutcome& o : summary.outcomes) {
    EXPECT_FALSE(o.silent_wrong) << o.generator << " × " << o.plan << " × "
                                 << to_string(o.entry_tier) << ": value " << o.value
                                 << " vs oracle " << o.oracle << " (" << o.detail << ")";
    EXPECT_TRUE(o.match || (o.certified && o.witness_valid));
    EXPECT_GE(o.value, o.oracle);  // no valid cut is below the min cut
    ++audited;
  }
  EXPECT_EQ(audited, summary.configs);

  // Crash plans must have recovered through checkpoint replay somewhere in
  // the matrix — the mid-packing-crash acceptance criterion.
  EXPECT_GT(summary.total_checkpoint_replays, 0);
  EXPECT_GT(summary.tier_hits[static_cast<std::size_t>(SolveTier::kCheckpointReplay)], 0);
  // Forced entry tiers guarantee these rows exist.
  EXPECT_GT(summary.tier_hits[static_cast<std::size_t>(SolveTier::kKargerStein)], 0);
  EXPECT_GT(summary.tier_hits[static_cast<std::size_t>(SolveTier::kGatherBaseline)], 0);
}

TEST(FaultSweep, SummaryRendersTableAndJson) {
  mincut::PackingCache::global().clear();
  SweepConfig cfg;
  cfg.seed = 2;
  const SweepSummary summary = run_fault_sweep(cfg);
  const std::string table = summary.table();
  EXPECT_NE(table.find("plan"), std::string::npos);
  EXPECT_NE(table.find("silent_wrong=0"), std::string::npos);
  const std::string json = summary.to_json();
  EXPECT_NE(json.find("\"schema\":\"fault_sweep/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"silent_wrong\":0"), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\":["), std::string::npos);
}

}  // namespace
}  // namespace umc::fault
