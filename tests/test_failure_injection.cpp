// Failure injection: malformed inputs must be rejected loudly (the
// simulators validate model invariants even in release builds) and
// degenerate-but-valid inputs must produce correct answers.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "baseline/naive_two_respect.hpp"
#include "baseline/stoer_wagner.hpp"
#include "congest/gather_baseline.hpp"
#include "congest/partwise.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/two_respect.hpp"
#include "minoragg/boruvka.hpp"
#include "minoragg/network.hpp"
#include "tree/rooted_tree.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

TEST(FailureInjection, DisconnectedGraphsAreRejected) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW((void)bfs_spanning_tree(g, 0), invariant_error);
  EXPECT_THROW((void)exact_diameter(g), invariant_error);
  minoragg::Ledger ledger;
  const std::vector<std::int64_t> cost = {1, 1};
  EXPECT_THROW((void)minoragg::boruvka_mst(g, cost, ledger), invariant_error);
}

TEST(FailureInjection, NonSpanningTreeEdgeSetsAreRejected) {
  WeightedGraph g = cycle_graph(5);
  const std::vector<EdgeId> too_few = {0, 1};
  EXPECT_THROW(RootedTree(g, too_few, 0), invariant_error);
  const std::vector<EdgeId> duplicate = {0, 0, 1, 2};
  EXPECT_THROW(RootedTree(g, duplicate, 0), invariant_error);
  const std::vector<EdgeId> with_cycle = {0, 1, 2, 4};  // {0,1,2} + closing edge
  // Either a cycle (not spanning) or fine depending on ids; assert it
  // throws when it genuinely fails to span.
  WeightedGraph h(4);
  h.add_edge(0, 1);
  h.add_edge(1, 2);
  h.add_edge(2, 0);
  h.add_edge(2, 3);
  const std::vector<EdgeId> cyc = {0, 1, 2};
  EXPECT_THROW(RootedTree(h, cyc, 0), invariant_error);
}

TEST(FailureInjection, MincutRequiresTwoNodes) {
  WeightedGraph g(1);
  Rng rng(1);
  minoragg::Ledger ledger;
  EXPECT_THROW((void)baseline::stoer_wagner(g), invariant_error);
  EXPECT_THROW((void)mincut::exact_mincut(g, rng, ledger), invariant_error);
}

TEST(FailureInjection, MismatchedVectorSizesAreRejected) {
  const WeightedGraph g = path_graph(4);
  minoragg::Ledger ledger;
  minoragg::Network net(g, ledger);
  const std::vector<bool> wrong_contract(2, false);  // m == 3
  const std::vector<std::int64_t> x(4, 0);
  EXPECT_THROW(
      (net.round<SumAgg, SumAgg>(wrong_contract, x,
                                 [](EdgeId, const std::int64_t&, const std::int64_t&) {
                                   return std::pair<std::int64_t, std::int64_t>{0, 0};
                                 })),
      invariant_error);
  const std::vector<std::int64_t> cost_too_short = {1, 1};
  EXPECT_THROW((void)minoragg::boruvka_mst(g, cost_too_short, ledger), invariant_error);
}

TEST(FailureInjection, PartwiseRejectsSizeMismatch) {
  const WeightedGraph g = path_graph(5);
  congest::CongestNetwork net(g);
  const std::vector<int> part(3, 0);  // wrong size
  const std::vector<std::int64_t> input(5, 1);
  EXPECT_THROW((void)congest::partwise_aggregate(net, part, input), invariant_error);
}

TEST(Degenerate, TwoAndThreeNodeMinCuts) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    WeightedGraph g2(2);
    g2.add_edge(0, 1, rng.next_in(1, 50));
    minoragg::Ledger l2;
    EXPECT_EQ(mincut::exact_mincut(g2, rng, l2).value, g2.total_weight());

    WeightedGraph g3 = complete_graph(3);
    randomize_weights(g3, 1, 30, rng);
    minoragg::Ledger l3;
    EXPECT_EQ(mincut::exact_mincut(g3, rng, l3).value, baseline::stoer_wagner(g3).value);
  }
}

TEST(Degenerate, PathAndStarAndCycleTopologies) {
  Rng rng(11);
  for (WeightedGraph g : {path_graph(12), star_graph(12), cycle_graph(12)}) {
    randomize_weights(g, 1, 40, rng);
    minoragg::Ledger ledger;
    EXPECT_EQ(mincut::exact_mincut(g, rng, ledger).value, baseline::stoer_wagner(g).value);
  }
}

TEST(Degenerate, HugeWeightsDoNotOverflow) {
  // Weights near 2^40 with n = 16: intermediate cut sums stay well inside
  // int64 (the library assumes w(e) in [poly(n)], comfortably satisfied).
  Rng rng(13);
  WeightedGraph g = erdos_renyi_connected(16, 0.4, rng);
  randomize_weights(g, (1LL << 38), (1LL << 40), rng);
  const auto tree = bfs_spanning_tree(g, 0);
  minoragg::Ledger ledger;
  const mincut::CutResult got = mincut::two_respecting_mincut(g, tree, 0, ledger);
  const RootedTree t(g, tree, 0);
  EXPECT_EQ(got.value, baseline::naive_two_respecting(t).value);
  EXPECT_GT(got.value, 0);
}

TEST(Degenerate, HeavilyParallelMultigraph) {
  // 4 nodes, 40 parallel edges: contraction/self-loop handling under stress.
  Rng rng(17);
  WeightedGraph g(4);
  for (int i = 0; i < 40; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(4));
    NodeId v = static_cast<NodeId>(rng.next_below(4));
    if (u == v) v = (v + 1) % 4;
    g.add_edge(u, v, rng.next_in(1, 5));
  }
  if (!is_connected(g)) GTEST_SKIP();
  minoragg::Ledger ledger;
  EXPECT_EQ(mincut::exact_mincut(g, rng, ledger).value, baseline::stoer_wagner(g).value);
}

TEST(Degenerate, SingleEdgeBridgeDominatedGraphs) {
  // Two stars joined by one bridge — the min cut is the bridge; BFS trees
  // have depth 2 and the centroid lands on a hub.
  WeightedGraph g(10);
  for (NodeId v = 1; v < 5; ++v) g.add_edge(0, v, 100);
  for (NodeId v = 6; v < 10; ++v) g.add_edge(5, v, 100);
  g.add_edge(0, 5, 3);
  Rng rng(19);
  minoragg::Ledger ledger;
  const auto got = mincut::exact_mincut(g, rng, ledger);
  EXPECT_EQ(got.value, 3);
}

// ---------------------------------------------------------------------------
// Untrusted ingestion: malformed edge lists are recoverable Errors with the
// right code and line number, never aborts or garbage graphs.

Expected<WeightedGraph> parse(const std::string& text) {
  std::istringstream in(text);
  return try_read_edge_list(in);
}

TEST(Ingestion, RejectsNegativeAndZeroWeights) {
  const Expected<WeightedGraph> neg = parse("3\n0 1 -3\n");
  ASSERT_FALSE(neg);
  EXPECT_EQ(neg.error().code, ErrorCode::kRange);
  EXPECT_EQ(neg.error().line, 2);
  const Expected<WeightedGraph> zero = parse("3\n0 1 0\n");
  ASSERT_FALSE(zero);
  EXPECT_EQ(zero.error().code, ErrorCode::kRange);
}

TEST(Ingestion, WeightBoundsPreventCutSumOverflow) {
  // 2^32 is the documented max (cut sums over <= 2^30 edges stay < 2^63);
  // exactly at the bound parses, one past it is a range error, and a token
  // that does not even fit int64 is an overflow error, not a parse error.
  const Expected<WeightedGraph> at = parse("2\n0 1 4294967296\n");
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(at.value().edge(0).w, Weight{1} << 32);
  const Expected<WeightedGraph> past = parse("2\n0 1 4294967297\n");
  ASSERT_FALSE(past);
  EXPECT_EQ(past.error().code, ErrorCode::kRange);
  const Expected<WeightedGraph> huge = parse("2\n0 1 99999999999999999999999\n");
  ASSERT_FALSE(huge);
  EXPECT_EQ(huge.error().code, ErrorCode::kOverflow);
}

TEST(Ingestion, RejectsStructurallyMalformedFiles) {
  EXPECT_EQ(parse("").error().code, ErrorCode::kParse);           // no header
  EXPECT_EQ(parse("abc\n").error().code, ErrorCode::kParse);      // bad header
  EXPECT_EQ(parse("4 7\n").error().code, ErrorCode::kParse);      // 2-token header
  EXPECT_EQ(parse("-1\n").error().code, ErrorCode::kRange);       // negative n
  EXPECT_EQ(parse("3\n0\n").error().code, ErrorCode::kParse);     // 1-token edge
  EXPECT_EQ(parse("3\n0 1 2 3\n").error().code, ErrorCode::kParse);
  EXPECT_EQ(parse("3\n0 x\n").error().code, ErrorCode::kParse);   // non-numeric
  EXPECT_EQ(parse("3\n0 5\n").error().code, ErrorCode::kRange);   // endpoint >= n
  EXPECT_EQ(parse("3\n1 1\n").error().code, ErrorCode::kRange);   // self-loop
  EXPECT_EQ(try_read_edge_list_file("/nonexistent/graph.txt").error().code,
            ErrorCode::kIo);
}

TEST(Ingestion, AcceptsCommentsBlanksAndDefaultWeights) {
  const Expected<WeightedGraph> g = parse("# header comment\n3\n\n0 1  # w defaults\n1 2 5\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g.value().n(), 3);
  EXPECT_EQ(g.value().m(), 2);
  EXPECT_EQ(g.value().edge(0).w, 1);
  EXPECT_EQ(g.value().edge(1).w, 5);
}

TEST(Ingestion, AcceptsCrlfLoneCrAndTrailingWhitespace) {
  // The same tiny graph in every line-ending convention (plus stray blanks)
  // must parse to identical topology — files written on any OS are valid.
  const std::string lf = "3\n0 1 4\n1 2 7\n";
  const std::string crlf = "3\r\n0 1 4\r\n1 2 7\r\n";
  const std::string lone_cr = "3\r0 1 4\r1 2 7\r";
  const std::string padded = "  3  \t\r\n\t0 1 4   \r\n 1 2 7\t\r\n";
  for (const std::string& text : {lf, crlf, lone_cr, padded}) {
    const Expected<WeightedGraph> g = parse(text);
    ASSERT_TRUE(g.has_value()) << g.error().to_string();
    EXPECT_EQ(g.value().n(), 3);
    ASSERT_EQ(g.value().m(), 2);
    EXPECT_EQ(g.value().edge(0).w, 4);
    EXPECT_EQ(g.value().edge(1).w, 7);
  }
  // CRLF line numbering must match the LF file's: error on (1-based) line 3.
  const Expected<WeightedGraph> bad = parse("3\r\n0 1 4\r\n0 9\r\n");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().code, ErrorCode::kRange);
  EXPECT_EQ(bad.error().line, 3);
}

TEST(Ingestion, MalformedCorpusCoversEveryErrorCode) {
  // One corpus entry per reachable Error code path — the structured codes
  // are API surface (the CLI and the fault-sweep tool branch on them), so a
  // refactor that merges or drops a path must fail here.
  struct Case {
    const char* text;
    ErrorCode code;
    int line;
  };
  const Case corpus[] = {
      // kParse paths
      {"", ErrorCode::kParse, 0},                        // missing header
      {"# only comments\n\n", ErrorCode::kParse, 0},     // still no header
      {"abc\n", ErrorCode::kParse, 1},                   // non-numeric header
      {"4 7\n", ErrorCode::kParse, 1},                   // multi-token header
      {"3\n0\n", ErrorCode::kParse, 2},                  // 1-token edge line
      {"3\n0 1 2 3\n", ErrorCode::kParse, 2},            // 4-token edge line
      {"3\n0 x\n", ErrorCode::kParse, 2},                // non-numeric endpoint
      {"3\n0 1 two\n", ErrorCode::kParse, 2},            // non-numeric weight
      {"3\n0 1 5z\n", ErrorCode::kParse, 2},             // trailing junk in token
      {"3\r\n0 1\r\n0 2 3 4 5\r\n", ErrorCode::kParse, 3},  // malformed under CRLF
      // kRange paths
      {"-1\n", ErrorCode::kRange, 1},                    // negative node count
      {"1073741825\n", ErrorCode::kRange, 1},            // node count > 2^30
      {"3\n0 5\n", ErrorCode::kRange, 2},                // endpoint >= n
      {"3\n-1 1\n", ErrorCode::kRange, 2},               // negative endpoint
      {"3\n1 1\n", ErrorCode::kRange, 2},                // self-loop
      {"3\n0 1 0\n", ErrorCode::kRange, 2},              // zero weight
      {"3\n0 1 -2\n", ErrorCode::kRange, 2},             // negative weight
      {"2\n0 1 4294967297\n", ErrorCode::kRange, 2},     // weight > 2^32
      // kOverflow paths
      {"99999999999999999999\n", ErrorCode::kOverflow, 1},    // header overflow
      {"3\n99999999999999999999 1\n", ErrorCode::kOverflow, 2},
      {"3\n0 1 99999999999999999999\n", ErrorCode::kOverflow, 2},
  };
  for (const Case& c : corpus) {
    const Expected<WeightedGraph> got = parse(c.text);
    ASSERT_FALSE(got.has_value()) << "corpus entry accepted: " << c.text;
    EXPECT_EQ(got.error().code, c.code) << c.text << " -> " << got.error().to_string();
    EXPECT_EQ(got.error().line, c.line) << c.text << " -> " << got.error().to_string();
  }
  // kIo: the only non-parse code, reached via the file entry point.
  EXPECT_EQ(try_read_edge_list_file("/nonexistent/graph.txt").error().code, ErrorCode::kIo);
}

TEST(Ingestion, LegacyThrowingReaderStillThrows) {
  std::istringstream in("3\n0 1 -3\n");
  EXPECT_THROW((void)read_edge_list(in), invariant_error);
}

// ---------------------------------------------------------------------------
// Graceful degradation: the guarded min-cut detects injected corruption and
// serves the gather baseline with a structured diagnosis.

TEST(GuardedMinCut, CleanRunTakesPrimaryPath) {
  Rng rng(31);
  WeightedGraph g = erdos_renyi_connected(20, 0.3, rng);
  randomize_weights(g, 1, 40, rng);
  minoragg::Ledger ledger;
  mincut::GuardConfig config;
  config.self_check = true;
  const mincut::GuardedMinCutResult got = mincut::exact_mincut_guarded(g, 5, ledger, config);
  EXPECT_FALSE(got.diagnosis.used_fallback);
  EXPECT_TRUE(got.diagnosis.failures.empty()) << got.diagnosis.to_string();
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value);
  EXPECT_EQ(ledger.counter("selfcheck_fallbacks"), 0);
}

TEST(GuardedMinCut, CorruptionDrillDegradesToGatherBaseline) {
  Rng rng(37);
  WeightedGraph g = erdos_renyi_connected(20, 0.3, rng);
  randomize_weights(g, 1, 40, rng);
  minoragg::Ledger ledger;
  mincut::GuardConfig config;
  config.self_check = true;
  config.inject_result_corruption = true;
  const mincut::GuardedMinCutResult got = mincut::exact_mincut_guarded(g, 5, ledger, config);
  EXPECT_TRUE(got.diagnosis.used_fallback);
  EXPECT_FALSE(got.diagnosis.failures.empty());
  // Despite the corrupted primary, the served answer is correct and paid for.
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value);
  EXPECT_GT(got.fallback_rounds, 0);
  EXPECT_EQ(ledger.counter("selfcheck_fallbacks"), 1);
}

TEST(GuardedMinCut, CorruptionWithoutSelfCheckGoesUndetected) {
  // The drill corrupts the value but guards are off: documents that the
  // self-check knob is what buys detection (and what the E19 row charges).
  Rng rng(37);
  WeightedGraph g = erdos_renyi_connected(20, 0.3, rng);
  randomize_weights(g, 1, 40, rng);
  if (mincut::self_check_enabled()) GTEST_SKIP() << "UMC_SELF_CHECK forces guards on";
  minoragg::Ledger ledger;
  mincut::GuardConfig config;
  config.inject_result_corruption = true;
  const mincut::GuardedMinCutResult got = mincut::exact_mincut_guarded(g, 5, ledger, config);
  EXPECT_FALSE(got.diagnosis.used_fallback);
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value + 1);  // wrong, silently
}

TEST(GuardedMinCut, TwoNodeGuardRecountsDirectly) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 17);
  minoragg::Ledger ledger;
  mincut::GuardConfig config;
  config.self_check = true;
  const auto got = mincut::exact_mincut_guarded(g, 1, ledger, config);
  EXPECT_FALSE(got.diagnosis.used_fallback);
  EXPECT_EQ(got.value, 17);
}

TEST(Degenerate, GatherBaselineOnStar) {
  // Star with root at the hub: every edge is one hop from the root.
  const WeightedGraph g = star_graph(30);
  const auto res = congest::gather_exact_mincut(g, 0);
  EXPECT_EQ(res.min_cut_value, 1);
  // 29 descriptors over 29 edges, injected at the hub or one hop away.
  EXPECT_LE(res.rounds_used, 32);
}

}  // namespace
}  // namespace umc
