// Tests for the round-execution engine (round_engine.hpp): the plan cache
// and the determinism contract — engine rounds must be BIT-identical to a
// straight-line sequential reference implementation of Definition 9, for
// every shipped aggregator and at every thread width.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "minoragg/ledger.hpp"
#include "minoragg/network.hpp"
#include "minoragg/tree_primitives.hpp"
#include "tree/hld.hpp"
#include "tree/rooted_tree.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {
namespace {

// Seed-style reference round: one DSU pass per call, folds in increasing
// node/edge id order. This is the sequential semantics the engine promises
// to reproduce exactly.
template <Aggregator CAgg, Aggregator XAgg, typename EdgeFn>
RoundResult<typename CAgg::value_type, typename XAgg::value_type> reference_round(
    const WeightedGraph& g, const std::vector<bool>& contract,
    std::span<const typename CAgg::value_type> node_input, EdgeFn&& edge_values) {
  using Y = typename CAgg::value_type;
  using Z = typename XAgg::value_type;
  const std::size_t n = static_cast<std::size_t>(g.n());
  Dsu dsu(g.n());
  for (EdgeId e = 0; e < g.m(); ++e)
    if (contract[static_cast<std::size_t>(e)]) dsu.unite(g.edge(e).u, g.edge(e).v);

  RoundResult<Y, Z> out;
  out.supernode.assign(n, 0);
  // Scanning v ascending and keeping the FIRST member seen per root gives
  // the smallest contained id.
  std::vector<NodeId> leader(n);
  std::vector<bool> seen(n, false);
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::size_t r = static_cast<std::size_t>(dsu.find(v));
    if (!seen[r]) {
      seen[r] = true;
      leader[r] = v;
    }
    out.supernode[static_cast<std::size_t>(v)] = leader[r];
  }

  std::vector<Y> y(n, CAgg::identity());
  for (NodeId v = 0; v < g.n(); ++v) {
    Y& acc = y[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];
    acc = CAgg::merge(std::move(acc), node_input[static_cast<std::size_t>(v)]);
  }
  out.consensus.resize(n);
  for (NodeId v = 0; v < g.n(); ++v)
    out.consensus[static_cast<std::size_t>(v)] =
        y[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];

  std::vector<Z> z(n, XAgg::identity());
  for (EdgeId e = 0; e < g.m(); ++e) {
    const Edge& ed = g.edge(e);
    const NodeId su = out.supernode[static_cast<std::size_t>(ed.u)];
    const NodeId sv = out.supernode[static_cast<std::size_t>(ed.v)];
    if (su == sv) continue;  // minor self-loop
    auto [zu, zv] = edge_values(e, out.consensus[static_cast<std::size_t>(ed.u)],
                                out.consensus[static_cast<std::size_t>(ed.v)]);
    z[static_cast<std::size_t>(su)] = XAgg::merge(std::move(z[static_cast<std::size_t>(su)]), zu);
    z[static_cast<std::size_t>(sv)] = XAgg::merge(std::move(z[static_cast<std::size_t>(sv)]), zv);
  }
  out.aggregate.resize(n);
  for (NodeId v = 0; v < g.n(); ++v)
    out.aggregate[v] = z[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];
  return out;
}

std::vector<bool> random_contract(const WeightedGraph& g, double p, Rng& rng) {
  std::vector<bool> c(static_cast<std::size_t>(g.m()));
  for (std::size_t e = 0; e < c.size(); ++e) c[e] = rng.next_bool(p);
  return c;
}

// One equivalence check: engine round vs reference, over every thread width.
template <Aggregator CAgg, Aggregator XAgg, typename MakeInput, typename EdgeFn>
void expect_equivalent(const WeightedGraph& g, const std::vector<bool>& contract,
                       MakeInput&& make_input, EdgeFn&& edge_values) {
  const auto input = make_input(g);
  const std::span<const typename CAgg::value_type> in(input);
  const auto ref = reference_round<CAgg, XAgg>(g, contract, in, edge_values);
  for (int threads = 1; threads <= 8; ++threads) {
    Ledger ledger;
    const Network net(g, ledger);
    net.set_threads(threads);
    const auto got = net.round<CAgg, XAgg>(contract, in, edge_values);
    EXPECT_EQ(got.supernode, ref.supernode) << "threads=" << threads;
    EXPECT_EQ(got.consensus, ref.consensus) << "threads=" << threads;
    EXPECT_EQ(got.aggregate, ref.aggregate) << "threads=" << threads;
    EXPECT_EQ(ledger.rounds(), 1) << "threads=" << threads;
  }
}

TEST(RoundEngine, EquivalenceSweepAllAggregators) {
  Rng rng(0xE9E5);
  std::vector<WeightedGraph> graphs;
  graphs.push_back(grid_graph(9, 7));
  graphs.push_back(erdos_renyi_connected(60, 0.12, rng));
  graphs.push_back(random_tree(50, rng));
  for (const WeightedGraph& g : graphs) {
    for (const double p : {0.0, 0.35, 1.0}) {
      const std::vector<bool> contract = random_contract(g, p, rng);

      const auto int_input = [&rng](const WeightedGraph& gr) {
        std::vector<std::int64_t> x(static_cast<std::size_t>(gr.n()));
        for (auto& v : x) v = rng.next_in(-1000, 1000);
        return x;
      };
      const auto bit_input = [&rng](const WeightedGraph& gr) {
        std::vector<std::uint8_t> x(static_cast<std::size_t>(gr.n()));
        for (auto& v : x) v = static_cast<std::uint8_t>(rng.next_bool() ? 1 : 0);
        return x;
      };

      // Sum consensus, min aggregation (Borůvka-style shapes).
      expect_equivalent<SumAgg, MinAgg>(
          g, contract, int_input, [](EdgeId e, std::int64_t yu, std::int64_t yv) {
            return std::pair<std::int64_t, std::int64_t>{yu + yv + e, yv - yu + 2 * e};
          });
      // Min consensus, sum aggregation.
      expect_equivalent<MinAgg, SumAgg>(
          g, contract, int_input, [](EdgeId e, std::int64_t yu, std::int64_t yv) {
            return std::pair<std::int64_t, std::int64_t>{yu * 3 + e, yv * 5 - e};
          });
      // Max consensus, max aggregation.
      expect_equivalent<MaxAgg, MaxAgg>(
          g, contract, int_input, [](EdgeId e, std::int64_t yu, std::int64_t yv) {
            return std::pair<std::int64_t, std::int64_t>{yu - e, yv + e};
          });
      // Boolean or/and.
      expect_equivalent<OrAgg, AndAgg>(
          g, contract, bit_input, [](EdgeId e, std::uint8_t yu, std::uint8_t yv) {
            return std::pair<std::uint8_t, std::uint8_t>{
                static_cast<std::uint8_t>((yu ^ (e & 1)) & 1),
                static_cast<std::uint8_t>((yv | (e & 1)) & 1)};
          });
      expect_equivalent<AndAgg, OrAgg>(
          g, contract, bit_input, [](EdgeId e, std::uint8_t yu, std::uint8_t yv) {
            return std::pair<std::uint8_t, std::uint8_t>{
                static_cast<std::uint8_t>(yu & yv), static_cast<std::uint8_t>((yu ^ yv ^ e) & 1)};
          });
      // (value, tag) pair minimum — the leader-election / MWOE shape.
      const auto pair_input = [&rng](const WeightedGraph& gr) {
        std::vector<std::pair<std::int64_t, std::int64_t>> x(static_cast<std::size_t>(gr.n()));
        for (std::size_t v = 0; v < x.size(); ++v)
          x[v] = {rng.next_in(0, 50), static_cast<std::int64_t>(v)};
        return x;
      };
      expect_equivalent<MinPairAgg, MinPairAgg>(
          g, contract, pair_input,
          [](EdgeId e, const std::pair<std::int64_t, std::int64_t>& yu,
             const std::pair<std::int64_t, std::int64_t>& yv) {
            return std::pair{std::pair<std::int64_t, std::int64_t>{yu.first + yv.first, e},
                             std::pair<std::int64_t, std::int64_t>{yv.first - yu.first, e}};
          });
    }
  }
}

TEST(RoundEngine, PlanCacheHitsSkipRebuildAndKeepAccounting) {
  Rng rng(0xCAFE);
  const WeightedGraph g = grid_graph(8, 8);
  Ledger ledger;
  const Network net(g, ledger);
  RoundEngine& engine = net.engine();

  const std::vector<bool> contract = random_contract(g, 0.4, rng);
  std::vector<std::int64_t> x(static_cast<std::size_t>(g.n()));
  for (auto& v : x) v = rng.next_in(0, 100);
  const std::span<const std::int64_t> in(x);
  const auto fn = [](EdgeId e, std::int64_t yu, std::int64_t yv) {
    return std::pair<std::int64_t, std::int64_t>{yu + e, yv - e};
  };

  const auto first = net.round<SumAgg, MinAgg>(contract, in, fn);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  EXPECT_EQ(engine.plan_cache_hits(), 0u);
  EXPECT_EQ(ledger.rounds(), 1);

  // Replays of the same pattern hit the cache (no DSU / plan rebuild) and
  // both the outputs and the model accounting stay identical per round.
  for (int i = 0; i < 5; ++i) {
    const auto again = net.round<SumAgg, MinAgg>(contract, in, fn);
    EXPECT_EQ(again.supernode, first.supernode);
    EXPECT_EQ(again.consensus, first.consensus);
    EXPECT_EQ(again.aggregate, first.aggregate);
  }
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  EXPECT_EQ(engine.plan_cache_hits(), 5u);
  EXPECT_EQ(ledger.rounds(), 6);  // 1 per round(), cache hit or not

  // A different pattern is a miss; replaying the first is still a hit.
  const std::vector<bool> other = random_contract(g, 0.4, rng);
  ASSERT_NE(other, contract);
  (void)net.round<SumAgg, MinAgg>(other, in, fn);
  EXPECT_EQ(engine.plan_cache_misses(), 2u);
  (void)net.round<SumAgg, MinAgg>(contract, in, fn);
  EXPECT_EQ(engine.plan_cache_hits(), 6u);
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

// A graph above the engine's parallel cutoff (1 << 13 units of work), so
// widths > 1 genuinely run chunked folds on the thread pool — this is the
// case the TSAN job (test_round_engine_threads8 under -DUMC_SANITIZE=thread)
// exists for. Smaller sweeps above collapse to the inline path.
TEST(RoundEngine, LargeGraphParallelFoldsBitIdentical) {
  Rng rng(0x51DE);
  const WeightedGraph g = grid_graph(128, 128);  // 16384 nodes, 32512 edges
  const std::vector<bool> contract = random_contract(g, 0.6, rng);
  std::vector<std::int64_t> x(static_cast<std::size_t>(g.n()));
  for (auto& v : x) v = rng.next_in(-5000, 5000);
  const std::span<const std::int64_t> in(x);
  const auto fn = [](EdgeId e, std::int64_t yu, std::int64_t yv) {
    return std::pair<std::int64_t, std::int64_t>{yu + 2 * yv + e, yv - yu + 7 * e};
  };
  const auto ref = reference_round<SumAgg, MinAgg>(g, contract, in, fn);
  for (const int threads : {1, 2, 3, 8}) {
    Ledger ledger;
    const Network net(g, ledger);
    net.set_threads(threads);
    const auto got = net.round<SumAgg, MinAgg>(contract, in, fn);
    EXPECT_EQ(got.supernode, ref.supernode) << "threads=" << threads;
    EXPECT_EQ(got.consensus, ref.consensus) << "threads=" << threads;
    EXPECT_EQ(got.aggregate, ref.aggregate) << "threads=" << threads;
    EXPECT_EQ(ledger.rounds(), 1) << "threads=" << threads;
  }
}

TEST(RoundEngine, PlanCacheEvictsLeastRecentlyUsed) {
  Rng rng(0xBEEF);
  const WeightedGraph g = cycle_graph(40);
  Ledger ledger;
  const Network net(g, ledger);
  RoundEngine& engine = net.engine();

  // 17 distinct patterns overflow the 16-entry cache; the first (least
  // recently used) pattern must rebuild when it comes back.
  std::vector<std::vector<bool>> patterns;
  for (int i = 0; i < 17; ++i) patterns.push_back(random_contract(g, 0.5, rng));
  for (const auto& pat : patterns) (void)engine.plan(pat);
  EXPECT_EQ(engine.plan_cache_misses(), 17u);
  EXPECT_EQ(engine.plan_cache_size(), 16u);
  (void)engine.plan(patterns[0]);
  EXPECT_EQ(engine.plan_cache_misses(), 18u);
  // The most recent patterns are still cached.
  (void)engine.plan(patterns[16]);
  EXPECT_EQ(engine.plan_cache_hits(), 1u);
}

// The other host-parallel surface: HL subtree/ancestor sums spread the
// node-disjoint chains of one HL-depth over the pool when a level is large
// enough. A big random tree reaches that threshold, so under the threads8 /
// TSAN job this genuinely runs chains concurrently; results must match a
// plain traversal exactly.
TEST(RoundEngine, LargeTreeChainParallelSumsMatchTraversal) {
  Rng rng(0x7EE5);
  const WeightedGraph g = random_tree(30000, rng);
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e) ids[static_cast<std::size_t>(e)] = e;
  const RootedTree t(g, ids, 0);
  const HeavyLightDecomposition hld(t);
  std::vector<std::int64_t> input(static_cast<std::size_t>(t.n()));
  for (auto& v : input) v = rng.next_in(-100, 100);

  // Plain traversal oracles: children before parents for subtree sums,
  // parents before children for ancestor sums (BFS order has that property).
  std::vector<NodeId> bfs;
  bfs.reserve(static_cast<std::size_t>(t.n()));
  bfs.push_back(0);
  for (std::size_t i = 0; i < bfs.size(); ++i)
    for (const NodeId c : t.children(bfs[i])) bfs.push_back(c);
  std::vector<std::int64_t> want_sub(input);
  for (std::size_t i = bfs.size(); i-- > 1;)
    want_sub[static_cast<std::size_t>(t.parent(bfs[i]))] +=
        want_sub[static_cast<std::size_t>(bfs[i])];
  std::vector<std::int64_t> want_anc(input);
  for (std::size_t i = 1; i < bfs.size(); ++i)
    want_anc[static_cast<std::size_t>(bfs[i])] +=
        want_anc[static_cast<std::size_t>(t.parent(bfs[i]))];

  Ledger ledger;
  const auto sub = hl_subtree_sums<SumAgg>(t, hld, input, ledger);
  const auto anc = hl_ancestor_sums<SumAgg>(t, hld, input, ledger);
  EXPECT_EQ(sub, want_sub);
  EXPECT_EQ(anc, want_anc);
  EXPECT_GT(ledger.rounds(), 0);
}

}  // namespace
}  // namespace umc::minoragg
