file(REMOVE_RECURSE
  "CMakeFiles/umc_tree.dir/tree/centroid.cpp.o"
  "CMakeFiles/umc_tree.dir/tree/centroid.cpp.o.d"
  "CMakeFiles/umc_tree.dir/tree/hld.cpp.o"
  "CMakeFiles/umc_tree.dir/tree/hld.cpp.o.d"
  "CMakeFiles/umc_tree.dir/tree/lca.cpp.o"
  "CMakeFiles/umc_tree.dir/tree/lca.cpp.o.d"
  "CMakeFiles/umc_tree.dir/tree/rooted_tree.cpp.o"
  "CMakeFiles/umc_tree.dir/tree/rooted_tree.cpp.o.d"
  "CMakeFiles/umc_tree.dir/tree/spanning.cpp.o"
  "CMakeFiles/umc_tree.dir/tree/spanning.cpp.o.d"
  "libumc_tree.a"
  "libumc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
