#pragma once

// Deterministic, seeded fault injection for the CONGEST simulator.
//
// A FaultPlan describes the adversary: per-message drop / duplication /
// bit-corruption probabilities and a per-(node, round) crash-stop
// probability with a fixed restart delay. A FaultModel turns the plan into
// concrete injected events, hooked into CongestNetwork::deliver_physical
// via the FaultInjector interface.
//
// Determinism contract: every decision is a pure function of
// (plan.seed, round, position) — position being the (edge, direction) wire
// slot for message faults and the node id for crashes — hashed through
// mix64. Schedules therefore never depend on message staging order, thread
// width, or how often `alive` is queried: the same seed replays the same
// fault history, event for event, and the log below is the replayable
// record the determinism tests diff.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "congest/congest_net.hpp"
#include "graph/graph.hpp"

namespace umc::fault {

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per physical message: probability the wire eats it.
  double drop_p = 0.0;
  /// Per physical message: probability the wire delivers it twice.
  double dup_p = 0.0;
  /// Per physical message: probability exactly one bit of payload or aux is
  /// flipped in transit.
  double corrupt_p = 0.0;
  /// Per (node, round): probability a crash-stop starts this round.
  double crash_p = 0.0;
  /// Rounds a crashed node stays down before restarting.
  std::int64_t crash_down_rounds = 3;
  /// Faults only inside [first_faulty_round, last_faulty_round] — lets
  /// setup phases run clean and lets tests confine crashes to a window.
  std::int64_t first_faulty_round = 0;
  std::int64_t last_faulty_round = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] bool faulty_at(std::int64_t round) const {
    return round >= first_faulty_round && round <= last_faulty_round;
  }

  /// An all-zero plan injects nothing; layers treat it as "no adversary"
  /// and stay on the fault-free fast path (bit-identical to no plan).
  [[nodiscard]] bool trivial() const {
    return drop_p <= 0.0 && dup_p <= 0.0 && corrupt_p <= 0.0 && crash_p <= 0.0;
  }
};

enum class FaultKind {
  kDrop,       // wire ate a message
  kDuplicate,  // wire delivered a message twice
  kCorrupt,    // one bit of a message flipped in transit
  kCrashDrop,  // message suppressed because an endpoint was down
  kCrash,      // node crash-stopped (start of a down window)
  kRestart,    // node came back up
  kRecovery,   // a driver restored the node from its checkpoint
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultEvent {
  std::int64_t round = 0;
  FaultKind kind = FaultKind::kDrop;
  NodeId node = kNoNode;  // crash / restart / recovery / crash-drop endpoint
  EdgeId edge = kNoEdge;  // message faults
  int direction = 0;      // 0: u->v, 1: v->u (the congest wire-slot bit)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultStats {
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t corruptions = 0;
  std::int64_t crash_drops = 0;
  std::int64_t crashes = 0;
  std::int64_t recoveries = 0;
  std::int64_t messages_seen = 0;
};

class FaultModel final : public congest::FaultInjector {
 public:
  FaultModel(const WeightedGraph& g, const FaultPlan& plan);

  void filter_wire(std::int64_t round, std::vector<congest::Message>& wire) override;
  [[nodiscard]] bool alive(std::int64_t round, NodeId v) const override;
  void crashed_between(std::int64_t r0, std::int64_t r1,
                       std::vector<NodeId>& out) const override;
  void note_recovery(std::int64_t round, NodeId v) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<FaultEvent>& log() const { return log_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// One line per event ("@12 drop e7 u->v", "@30 crash n4", ...) — the
  /// replayable record determinism tests compare across runs.
  [[nodiscard]] std::string log_to_string() const;

  /// Pure crash-schedule query: did a crash of v start exactly at round r?
  [[nodiscard]] bool crash_started(std::int64_t round, NodeId v) const;

 private:
  [[nodiscard]] double draw(std::uint64_t salt, std::int64_t round, std::uint64_t key) const;
  void record(std::int64_t round, FaultKind kind, NodeId node, EdgeId edge, int direction);
  /// Log crash/restart transitions up to and including `round` (idempotent).
  void observe_crashes(std::int64_t round);

  const WeightedGraph* g_;
  FaultPlan plan_;
  std::vector<FaultEvent> log_;
  FaultStats stats_;
  std::int64_t crashes_observed_upto_ = -1;  // rounds scanned by observe_crashes
};

}  // namespace umc::fault
