#pragma once

// Exporters for the observability subsystem: render recorded spans and the
// metrics registry into the three formats the ROADMAP's tooling consumes.
//
//   * Chrome trace_event JSON — loads directly in Perfetto
//     (https://ui.perfetto.dev) or chrome://tracing. One complete ("X")
//     event per span; the logical clock and span args land in `args`.
//   * Prometheus text exposition (version 0.0.4) — the scrape format, also
//     the stable machine surface tests golden-diff.
//   * Flat table — human-readable stdout dump for CLI/bench summaries.
//
// All exporters emit in deterministic order ((tid, seq) for spans,
// (name, labels) for metrics); with an injected test clock the Chrome JSON
// is byte-reproducible.

#include <ostream>
#include <span>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace umc::obs {

/// Chrome trace_event JSON for a span snapshot (Tracer::snapshot()).
/// `dropped` > 0 is recorded in the trace metadata so truncated rings are
/// visible in the viewer.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::int64_t dropped = 0);

/// Prometheus text exposition of every family in the registry.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);

/// Flat `name{labels} value` table (histograms as count/sum/avg rows).
void write_flat_table(std::ostream& os, const MetricsRegistry& registry);

}  // namespace umc::obs
