file(REMOVE_RECURSE
  "CMakeFiles/test_one_respect.dir/test_one_respect.cpp.o"
  "CMakeFiles/test_one_respect.dir/test_one_respect.cpp.o.d"
  "test_one_respect"
  "test_one_respect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_respect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
