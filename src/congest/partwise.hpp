#pragma once

// Part-wise aggregation in CONGEST — the engine behind the Theorem 17
// compilation of Minor-Aggregation rounds.
//
// Problem (Theorem 17 proof): given disjoint *connected* parts P_1..P_k and
// a private value per node, every node of P_i must learn the aggregate over
// P_i. The classic O(D + √n)-quality solution [11, 19] is implemented and
// *measured*:
//   * parts with <= √n nodes aggregate inside their own subtrees — all in
//     parallel (node-disjoint), cost = max internal eccentricity <= √n;
//   * larger parts (at most √n of them) pipeline over the global BFS tree —
//     a greedy convergecast + broadcast schedule moving one (part, value)
//     pair per edge per round, cost <= O(D + #large parts), measured.

#include <span>
#include <vector>

#include "congest/bfs_tree.hpp"
#include "congest/congest_net.hpp"

namespace umc::congest {

/// Fold operator for part-wise aggregation. Values are one CONGEST word;
/// min-folds can carry packed (key, tag) pairs.
enum class PartwiseOp { kSum, kMin };

struct PartwiseResult {
  /// Per node: the fold over its part (identity for nodes outside every
  /// part: 0 for sum, INT64_MAX for min).
  std::vector<std::int64_t> value;
  std::int64_t rounds_used = 0;
  std::int64_t small_phase_rounds = 0;
  std::int64_t large_phase_rounds = 0;
  int num_parts = 0;
  int num_large_parts = 0;
};

/// Input-independent state of one partition, reusable across aggregations
/// over the same `part` vector: member lists, the small/large split, the
/// worst small-part eccentricity (the per-part BFS this layer's hot loop
/// used to redo every call), and — fault-free only — the global BFS tree
/// plus the convergecast demand table of the large phase. Compiled drivers
/// hang one of these off the RoundEngine's cached RoundPlan, so it is
/// invalidated exactly when the contraction plan key changes; every other
/// holder must guarantee the `part` span is unchanged between calls.
///
/// Also owns the per-call value scratch (totals, convergecast accumulators,
/// broadcast bookkeeping), so a cache-hit aggregation allocates nothing.
struct PartwiseCache {
  bool built = false;
  int num_parts = 0;
  // Members of part p: members[member_begin[p] .. member_begin[p+1]).
  std::vector<std::int64_t> member_begin;
  std::vector<NodeId> members;
  std::vector<int> large_index;  // per part: index among large parts or -1
  int num_large = 0;
  std::int64_t small_rounds = 0;  // max over small parts of 2*ecc + 2

  // Large-phase topology. Built (and valid) only on fault-free networks:
  // with an injector attached the BFS flood must really run, because faults
  // may reshape the tree and the fault schedule must see the real traffic.
  bool large_built = false;
  BfsTree bfs;
  std::int64_t bfs_rounds = 0;
  std::vector<char> contains;  // [v*L + l]: subtree(v) holds part l
  std::vector<int> need;       // [v*L + l]: children of v holding part l

  // Per-call scratch (values, not topology).
  std::vector<std::int64_t> total;        // per part
  std::vector<std::int64_t> have;         // [v*L + l] convergecast folds
  std::vector<int> got;                   // [v*L + l] child messages seen
  std::vector<char> sent;                 // [v*L + l] upward send done
  std::vector<char> know;                 // [v*L + l] broadcast received
  std::vector<char> forwarded;            // [c*L + l] parent forwarded to c
  std::vector<std::int64_t> large_total;  // per large part
  std::vector<int> ecc_dist;              // BFS scratch, reset per part

  // Worklist scratch for the event-driven large-phase schedules: per node,
  // the number of parts it could emit next round; membership flag and the
  // list itself; and this round's actual senders (the only slots worth
  // probing after end_round). The schedules visit only nodes with pending
  // work instead of sweeping all n nodes every round — the per-round
  // message sets are unchanged, so rounds and traffic are identical.
  std::vector<int> pending;
  std::vector<char> in_active;
  std::vector<NodeId> active;
  std::vector<NodeId> round_senders;
};

/// part[v] = part id (>= 0) or -1 for "no part". Parts must induce
/// connected subgraphs.
///
/// `cache`, if non-null, is consulted and filled as described on
/// PartwiseCache; round counts and outputs are identical with or without
/// one. Null runs the build every call (seed behavior).
[[nodiscard]] PartwiseResult partwise_aggregate(CongestNetwork& net, std::span<const int> part,
                                                std::span<const std::int64_t> input,
                                                PartwiseOp op, PartwiseCache* cache);

[[nodiscard]] PartwiseResult partwise_aggregate(CongestNetwork& net, std::span<const int> part,
                                                std::span<const std::int64_t> input,
                                                PartwiseOp op = PartwiseOp::kSum);

/// Canonical "hard" partition used by the compile-cost experiments: carve a
/// random spanning tree into connected parts of ~⌈√n⌉ nodes. Returns part
/// ids per node.
[[nodiscard]] std::vector<int> sqrt_carve_partition(const WeightedGraph& g, std::uint64_t seed);

}  // namespace umc::congest
