#pragma once

// Structural graph queries: connectivity, BFS distances, diameter.
//
// Hop-diameter D is a first-class experiment parameter (the paper's bounds
// are stated in terms of D), so both an exact all-pairs routine (small n)
// and a 2-approximation via double-sweep BFS (large n) are provided.

#include <vector>

#include "graph/graph.hpp"

namespace umc {

/// Hop distances from `src` (ignores weights); kUnreachable for other
/// components.
inline constexpr int kUnreachable = -1;
[[nodiscard]] std::vector<int> bfs_distances(const WeightedGraph& g, NodeId src);

[[nodiscard]] bool is_connected(const WeightedGraph& g);

/// Number of connected components (n == 0 gives 0).
[[nodiscard]] int num_components(const WeightedGraph& g);

/// Exact hop-diameter via n BFS sweeps. Requires a connected graph.
[[nodiscard]] int exact_diameter(const WeightedGraph& g);

/// Lower bound on the hop-diameter via a double-sweep BFS (within 2x of the
/// true value; exact on trees). Requires a connected graph.
[[nodiscard]] int approx_diameter(const WeightedGraph& g);

/// Component id (0-based, by discovery order) per node.
[[nodiscard]] std::vector<int> component_ids(const WeightedGraph& g);

}  // namespace umc
