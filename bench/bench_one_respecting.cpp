// Experiment E12 (Theorem 18): 1-respecting cuts for ALL tree edges in
// Õ(1) Minor-Aggregation rounds (two subtree sums + two aggregation
// rounds). Rounds grow ~log^2 n while n grows 100x.

#include "bench_common.hpp"
#include "mincut/instance.hpp"
#include "mincut/one_respect.hpp"
#include "minoragg/tree_primitives.hpp"

namespace umc {
namespace {

void BM_OneRespecting(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(37);
  WeightedGraph g = random_connected(n, 4 * n, rng);
  randomize_weights(g, 1, 100, rng);
  const auto tree = bfs_spanning_tree(g, 0);
  const RootedTree t(g, tree, 0);
  const HeavyLightDecomposition hld(t);
  const mincut::Instance inst = mincut::make_root_instance(g, tree, 0);

  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(mincut::one_respecting_cuts(t, inst.origin, hld, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = n;
  state.counters["log2_n_sq"] = static_cast<double>(ceil_log2(static_cast<std::uint64_t>(n))) *
                                static_cast<double>(ceil_log2(static_cast<std::uint64_t>(n)));
}

BENCHMARK(BM_OneRespecting)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
