#pragma once

// Round accounting for the Minor-Aggregation model.
//
// Every model operation charges rounds to a Ledger. Composition rules match
// the paper:
//   * sequential steps add (default `charge`),
//   * node-disjoint simultaneous executions add the MAX of their children's
//     counts (Corollary 11) via `charge_parallel`,
//   * executing on a virtual graph with beta virtual nodes multiplies each
//     round by (beta + 1) (Theorem 14) — see VirtualNetwork.
//
// Ledgers also track auxiliary experiment counters (recursion depth,
// CV iterations, ...) surfaced by the benches.
//
// Counter key convention (normative): the key's "max_" prefix IS the
// counter's merge kind. Keys starting with "max_" hold running maxima
// (depths, degrees, widths) and merge by max across every composition —
// parallel or sequential; all other keys are additive work counts and merge
// by sum. `bump`/`set_max` assert the prefix matches the operation, so a
// key cannot silently change kind. The typed metrics registry (obs/) is the
// public metrics surface; obs/ledger_bridge.hpp translates this convention
// into Counter (sum-kind) and Gauge::set_max (max-kind) instances.

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <string_view>

#include "util/assert.hpp"

namespace umc::minoragg {

class Ledger {
 public:
  /// Sequential charge of `r` Minor-Aggregation rounds.
  void charge(std::int64_t r) {
    UMC_ASSERT(r >= 0);
    rounds_ += r;
  }

  /// Corollary 11: node-disjoint parallel composition — the cost of running
  /// child algorithms simultaneously is the maximum of their round counts.
  /// Counters merge by kind (see `absorb_counter`).
  void charge_parallel(std::span<const Ledger> children) {
    std::int64_t mx = 0;
    for (const Ledger& c : children) {
      mx = std::max(mx, c.rounds_);
      for (const auto& [k, v] : c.counters_) absorb_counter(k, v);
    }
    rounds_ += mx;
  }

  /// Sequential absorption of a child ledger.
  void charge_sequential(const Ledger& child) {
    rounds_ += child.rounds_;
    for (const auto& [k, v] : child.counters_) absorb_counter(k, v);
  }

  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

  /// Experiment counters. Two kinds, distinguished by name: keys starting
  /// with "max_" hold maxima (depths, degrees) and merge by max across any
  /// composition; all others are additive work counts and merge by sum.
  /// Keys are string_views looked up heterogeneously — hot-path bumps from
  /// string literals allocate only on a key's first appearance.
  void bump(std::string_view key, std::int64_t v = 1) {
    UMC_ASSERT(key.substr(0, 4) != "max_");
    slot(key) += v;
  }
  void set_max(std::string_view key, std::int64_t v) {
    UMC_ASSERT(key.substr(0, 4) == "max_");
    auto& s = slot(key);
    s = std::max(s, v);
  }
  [[nodiscard]] std::int64_t counter(std::string_view key) const {
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>& counters() const {
    return counters_;
  }

  /// JSON rendering of rounds + counters, for experiment pipelines:
  /// {"rounds": 123, "counters": {"cv_iterations": 4, ...}}.
  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "{\"rounds\": " << rounds_ << ", \"counters\": {";
    bool first = true;
    for (const auto& [k, v] : counters_) {
      if (!first) os << ", ";
      first = false;
      os << '\"' << k << "\": " << v;
    }
    os << "}}";
    return os.str();
  }

  /// Merge one counter by its kind ("max_" prefix = max, else sum). Used
  /// when transferring counters between ledgers.
  void absorb_counter(std::string_view key, std::int64_t v) {
    auto& s = slot(key);
    if (key.substr(0, 4) == "max_") {
      s = std::max(s, v);
    } else {
      s += v;
    }
  }

 private:
  /// Heterogeneous find-or-insert: materializes a std::string key only when
  /// the counter does not exist yet.
  std::int64_t& slot(std::string_view key) {
    const auto it = counters_.find(key);
    if (it != counters_.end()) return it->second;
    return counters_.emplace(std::string(key), 0).first->second;
  }

  std::int64_t rounds_ = 0;
  std::map<std::string, std::int64_t, std::less<>> counters_;
};

}  // namespace umc::minoragg
