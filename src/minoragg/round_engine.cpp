#include "minoragg/round_engine.hpp"

#include <climits>
#include <cstring>
#include <utility>

#include "graph/dsu.hpp"

namespace umc::minoragg {

namespace {

// Packing runs on every plan() call (hit or miss) — it must be word-speed,
// not bit-speed, or it dominates a cache hit. libstdc++ stores vector<bool>
// LSB-first in 64-bit words, exactly our layout, so there the pack is a
// memcpy of the storage words plus masking the tail; elsewhere a branchless
// 64-bit batch loop.
std::vector<std::uint64_t> pack_pattern(const std::vector<bool>& contract) {
  const std::size_t nwords = (contract.size() + 63) / 64;
  std::vector<std::uint64_t> words(nwords, 0);
  if (nwords == 0) return words;
#if defined(__GLIBCXX__) && ULONG_MAX == 0xffffffffffffffffULL
  // The memcpy leans on libstdc++ internals (_Bit_iterator's _M_p word
  // pointer); a renamed member fails to compile, and this guard catches a
  // changed word type before it can silently mis-pack.
  static_assert(sizeof(*std::declval<std::vector<bool>::const_iterator>()._M_p) ==
                    sizeof(std::uint64_t),
                "vector<bool> storage word must be 64-bit for the memcpy fast path");
  std::memcpy(words.data(), contract.begin()._M_p, nwords * sizeof(std::uint64_t));
#else
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::size_t base = w * 64;
    const std::size_t lim = std::min<std::size_t>(64, contract.size() - base);
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < lim; ++k)
      acc |= static_cast<std::uint64_t>(static_cast<bool>(contract[base + k])) << k;
    words[w] = acc;
  }
#endif
  // The storage tail past size() is unspecified — zero it so equal patterns
  // pack identically.
  if (const std::size_t rem = contract.size() % 64; rem != 0)
    words.back() &= (~std::uint64_t{0}) >> (64 - rem);
  return words;
}

std::uint64_t hash_pattern(const std::vector<std::uint64_t>& words, std::size_t bits) {
  // FNV-1a over the packed words plus the bit length.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t w) {
    h ^= w;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(bits));
  for (const std::uint64_t w : words) mix(w);
  return h;
}

#if !defined(UMC_OBS_DISABLED)
// Registry lookups are a map walk under a mutex; the hot path pays one
// cached-reference atomic inc instead.
obs::Counter& plan_cache_hit_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "umc_engine_plan_cache_hits_total", {}, "Contraction patterns replayed from the plan cache.");
  return c;
}
obs::Counter& plan_cache_miss_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "umc_engine_plan_cache_misses_total", {}, "Contraction patterns that required a plan build.");
  return c;
}
#endif

}  // namespace

const RoundPlan& RoundEngine::plan(const std::vector<bool>& contract) {
  const WeightedGraph& g = *g_;
  UMC_ASSERT(static_cast<EdgeId>(contract.size()) == g.m());
  std::vector<std::uint64_t> pattern = pack_pattern(contract);
  const std::uint64_t hash = hash_pattern(pattern, contract.size());

  ++clock_;
  for (CacheEntry& entry : cache_) {
    if (entry.hash == hash && entry.plan.pattern == pattern) {
      ++hits_;
#if !defined(UMC_OBS_DISABLED)
      plan_cache_hit_counter().inc();
#endif
      entry.stamp = clock_;
      return entry.plan;
    }
  }
  ++misses_;
#if !defined(UMC_OBS_DISABLED)
  plan_cache_miss_counter().inc();
#endif
  UMC_OBS_SPAN_VAR(obs_plan_build, "engine/plan_build", "engine");
  obs_plan_build.arg("m", g.m());

  RoundPlan plan;
  plan.pattern = std::move(pattern);
  plan.hash = hash;

  const std::size_t n = static_cast<std::size_t>(g.n());
  Dsu dsu(g.n());
  for (EdgeId e = 0; e < g.m(); ++e)
    if (contract[static_cast<std::size_t>(e)]) dsu.unite(g.edge(e).u, g.edge(e).v);

  // Supernode id := smallest contained node id; dense groups numbered in
  // first-seen (= ascending representative) order.
  plan.supernode.resize(n);
  plan.group_of.resize(n);
  std::vector<std::int32_t> group_of_root(n, -1);
  std::vector<NodeId> smallest(n, kNoNode);
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::size_t r = static_cast<std::size_t>(dsu.find(v));
    if (smallest[r] == kNoNode) {
      smallest[r] = v;
      group_of_root[r] = plan.num_groups++;
    }
    plan.supernode[static_cast<std::size_t>(v)] = smallest[r];
    plan.group_of[static_cast<std::size_t>(v)] = group_of_root[r];
  }

  // Members per group (counting sort by group; scan order keeps members
  // ascending — the reference consensus fold order).
  const std::size_t groups = static_cast<std::size_t>(plan.num_groups);
  plan.node_begin.assign(groups + 1, 0);
  for (NodeId v = 0; v < g.n(); ++v)
    ++plan.node_begin[static_cast<std::size_t>(plan.group_of[static_cast<std::size_t>(v)]) + 1];
  for (std::size_t gi = 0; gi < groups; ++gi) plan.node_begin[gi + 1] += plan.node_begin[gi];
  plan.node_members.resize(n);
  {
    std::vector<std::int32_t> cursor(plan.node_begin.begin(), plan.node_begin.end() - 1);
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto gi = static_cast<std::size_t>(plan.group_of[static_cast<std::size_t>(v)]);
      plan.node_members[static_cast<std::size_t>(cursor[gi]++)] = v;
    }
  }

  // Surviving minor edges (ascending id) with pre-resolved endpoints and
  // groups, plus the per-group incidence schedule in the same order.
  plan.edges.reserve(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e) {
    const Edge& ed = g.edge(e);
    const std::int32_t gu = plan.group_of[static_cast<std::size_t>(ed.u)];
    const std::int32_t gv = plan.group_of[static_cast<std::size_t>(ed.v)];
    if (gu == gv) continue;  // self-loop in G', removed
    plan.edges.push_back(RoundPlan::MinorEdge{e, ed.u, ed.v, gu, gv});
  }
  plan.edges.shrink_to_fit();
  plan.inc_begin.assign(groups + 1, 0);
  for (const RoundPlan::MinorEdge& me : plan.edges) {
    ++plan.inc_begin[static_cast<std::size_t>(me.gu) + 1];
    ++plan.inc_begin[static_cast<std::size_t>(me.gv) + 1];
  }
  for (std::size_t gi = 0; gi < groups; ++gi) plan.inc_begin[gi + 1] += plan.inc_begin[gi];
  plan.inc.resize(plan.edges.size() * 2);
  {
    std::vector<std::int32_t> cursor(plan.inc_begin.begin(), plan.inc_begin.end() - 1);
    for (std::size_t i = 0; i < plan.edges.size(); ++i) {
      const RoundPlan::MinorEdge& me = plan.edges[i];
      plan.inc[static_cast<std::size_t>(cursor[static_cast<std::size_t>(me.gu)]++)] =
          static_cast<std::uint32_t>(2 * i);
      plan.inc[static_cast<std::size_t>(cursor[static_cast<std::size_t>(me.gv)]++)] =
          static_cast<std::uint32_t>(2 * i + 1);
    }
  }

  // Insert, evicting the least-recently-used entry when full. The full
  // capacity is reserved before the first insertion so push_back never
  // reallocates — plan() hands out references into cache_, and they must
  // stay valid across later insertions (see plan()'s contract in the
  // header).
  if (cache_.size() < kPlanCacheCapacity) {
    cache_.reserve(kPlanCacheCapacity);
    cache_.push_back(CacheEntry{hash, std::move(plan), clock_});
    return cache_.back().plan;
  }
  std::size_t victim = 0;
  for (std::size_t i = 1; i < cache_.size(); ++i)
    if (cache_[i].stamp < cache_[victim].stamp) victim = i;
  cache_[victim] = CacheEntry{hash, std::move(plan), clock_};
  return cache_[victim].plan;
}

}  // namespace umc::minoragg
