#pragma once

// Plain-text graph serialization: the ubiquitous weighted edge-list format
//
//   # comments and blank lines ignored
//   <n>
//   <u> <v> <w>
//   ...
//
// so real topologies can be fed to the examples/CLI and experiment outputs
// can be archived.
//
// This is the UNTRUSTED ingestion path: the try_* parsers return
// Expected<WeightedGraph> and reject malformed input (bad tokens, ids out
// of range, weights outside [1, kMaxEdgeWeight], integer overflow, trailing
// junk) with a recoverable Error naming the offending line — they never
// throw. Line endings are universal (LF, CRLF, or lone CR) and leading or
// trailing whitespace on a line is inert, so files produced on any OS parse
// identically. The legacy read_* entry points keep the old contract and convert
// parse errors into invariant_error.
//
// Weight bounds: weights must lie in [1, kMaxEdgeWeight] with at most
// kMaxEdgeCount edges, so any cut-value sum is <= 2^32 * 2^30 = 2^62 and
// cannot overflow the int64 Weight arithmetic the solvers use. This is the
// paper's w(e) in [poly(n)] assumption made concrete (it also matches the
// < 2^32 packing requirement of the compiled Borůvka word format).

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "util/error.hpp"

namespace umc {

inline constexpr Weight kMaxEdgeWeight = Weight{1} << 32;
inline constexpr long long kMaxEdgeCount = 1LL << 30;
inline constexpr long long kMaxNodeCount = 1LL << 30;

/// Parses the edge-list format; malformed input yields a recoverable Error
/// (never throws, never aborts).
[[nodiscard]] Expected<WeightedGraph> try_read_edge_list(std::istream& in);
[[nodiscard]] Expected<WeightedGraph> try_read_edge_list_file(const std::string& path);

/// Legacy throwing entry points: as above but throws invariant_error on
/// malformed input (bad node ids, out-of-range weights, trailing junk).
[[nodiscard]] WeightedGraph read_edge_list(std::istream& in);
[[nodiscard]] WeightedGraph read_edge_list_file(const std::string& path);

void write_edge_list(std::ostream& out, const WeightedGraph& g);
void write_edge_list_file(const std::string& path, const WeightedGraph& g);

}  // namespace umc
