#include "mincut/star.hpp"

#include <algorithm>

#include "congest/edge_coloring.hpp"
#include "mincut/one_respect.hpp"
#include "mincut/path_to_path.hpp"
#include "minoragg/tree_primitives.hpp"
#include "minoragg/virtual_graph.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace umc::mincut {

namespace {

/// Cut-equivalent pair instance for paths (i, j): every node outside the
/// two paths (the root and all other paths, with whatever hangs off them)
/// is absorbed into a fresh virtual pair-root. Real top edges {root, top}
/// become the instance's root edges with their weights/origins intact.
PathInstance build_pair_instance(const StarInstance& inst, int i, int j) {
  const auto& pn_i = inst.path_nodes[static_cast<std::size_t>(i)];
  const auto& pn_j = inst.path_nodes[static_cast<std::size_t>(j)];
  const NodeId li = static_cast<NodeId>(pn_i.size());
  const NodeId lj = static_cast<NodeId>(pn_j.size());

  std::vector<NodeId> map(static_cast<std::size_t>(inst.graph.n()), 0);  // external -> 0
  for (NodeId x = 0; x < li; ++x)
    map[static_cast<std::size_t>(pn_i[static_cast<std::size_t>(x)])] = 1 + x;
  for (NodeId x = 0; x < lj; ++x)
    map[static_cast<std::size_t>(pn_j[static_cast<std::size_t>(x)])] = 1 + li + x;
  RemappedGraph rg = remap_graph(inst.graph, inst.origin, map, 1 + li + lj);

  PathInstance pair;
  pair.graph = std::move(rg.graph);
  pair.origin = std::move(rg.origin);
  pair.root = 0;
  pair.is_virtual.assign(static_cast<std::size_t>(pair.graph.n()), false);
  pair.is_virtual[0] = true;  // the pair-root absorbing the outside world
  for (NodeId v = 0; v < inst.graph.n(); ++v)
    if (inst.is_virtual[static_cast<std::size_t>(v)] && map[static_cast<std::size_t>(v)] != 0)
      pair.is_virtual[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] = true;
  for (NodeId x = 0; x < li; ++x) {
    pair.nodesP.push_back(1 + x);
    pair.edgesP.push_back(
        rg.edge_map[static_cast<std::size_t>(inst.path_edges[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)])]);
  }
  for (NodeId x = 0; x < lj; ++x) {
    pair.nodesQ.push_back(1 + li + x);
    pair.edgesQ.push_back(
        rg.edge_map[static_cast<std::size_t>(inst.path_edges[static_cast<std::size_t>(j)][static_cast<std::size_t>(x)])]);
  }
  return pair;
}

}  // namespace

CutResult star_mincut(const StarInstance& inst, minoragg::Ledger& ledger) {
  UMC_ASSERT(inst.k() >= 1);
  // Logical clock: the number of star paths k.
  UMC_OBS_SPAN_VAR_L(obs_star, "mincut/star", "mincut", inst.k());
  obs_star.arg("n", inst.graph.n());
  minoragg::Ledger local;

  // 1-respecting cuts over the whole star (Theorem 18).
  std::vector<EdgeId> tree_edges;
  for (const auto& pe : inst.path_edges)
    tree_edges.insert(tree_edges.end(), pe.begin(), pe.end());
  const RootedTree t(inst.graph, tree_edges, inst.root);
  const HeavyLightDecomposition hld = minoragg::hl_construct(t, local);
  CutResult best = one_respecting_cuts(t, inst.origin, hld, local).best;

  if (inst.k() >= 2) {
    // Interest lists (Lemma 32) and the mutual-interest graph (Def. 33).
    const auto lists = interest_lists(inst, local);
    const auto igraph = interest_graph(lists);
    int delta = 0;
    for (const auto& adj : igraph) delta = std::max(delta, static_cast<int>(adj.size()));
    local.set_max("max_interest_degree", delta);

    // Edge-color the interest graph (Lemma 35) via the CONGEST-on-interest-
    // graph simulation (Lemma 34: one MA round per CONGEST round).
    WeightedGraph ig(static_cast<NodeId>(inst.k()));
    std::vector<std::pair<int, int>> pairs;
    for (std::size_t i = 0; i < igraph.size(); ++i) {
      for (const int j : igraph[i]) {
        if (static_cast<int>(i) < j) {
          ig.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
          pairs.emplace_back(static_cast<int>(i), j);
        }
      }
    }
    const congest::EdgeColoring coloring = congest::deterministic_edge_coloring(ig);
    local.charge(coloring.congest_rounds);
    local.set_max("max_interest_colors", coloring.num_colors);

    minoragg::settle_virtual_execution(ledger, local, inst.beta());

    // The model processes color classes in series (within a class the
    // matched pairs are node-disjoint and run simultaneously), but that is
    // a round-accounting structure, not a scheduling constraint: every
    // (color, pair) item is an independent computation, so all of them are
    // spawned at once and only the LEDGER merge below walks the classes in
    // series — absorb in (color, edge-id) order, then charge_parallel per
    // class — reproducing the sequential charge sequence bit for bit.
    struct PairItem {
      int color, i, j;
    };
    std::vector<PairItem> items;
    for (int c = 0; c < coloring.num_colors; ++c) {
      for (EdgeId e = 0; e < ig.m(); ++e) {
        if (coloring.color[static_cast<std::size_t>(e)] != c) continue;
        const auto [i, j] = pairs[static_cast<std::size_t>(e)];
        items.push_back(PairItem{c, i, j});
      }
    }
    struct PairSlot {
      minoragg::Ledger kid;
      CutResult best;
    };
    std::vector<PairSlot> slots(items.size());
    {
      TaskGroup p2p;
      for (std::size_t x = 0; x < items.size(); ++x) {
        const PairItem item = items[x];
        PairSlot& slot = slots[x];
        p2p.spawn([&inst, item, &slot, x] {
          UMC_OBS_SPAN_VAR_L(obs_item, "mincut/ttr_item", "mincut",
                             static_cast<std::int64_t>(x));
          // TraceEvent holds two args max: kind + pool_thread win the slots
          // (the flattened item index x is the logical clock).
          obs_item.arg("kind", 2);  // 2 = star path-to-path pair
          obs_item.arg("pool_thread", ThreadPool::current_index());
          const PathInstance pair = build_pair_instance(inst, item.i, item.j);
          slot.best = path_to_path_mincut(pair, slot.kid);
        });
      }
      p2p.join();
    }
    std::size_t x = 0;
    for (int c = 0; c < coloring.num_colors; ++c) {
      std::vector<minoragg::Ledger> kids;
      while (x < items.size() && items[x].color == c) {
        best.absorb(slots[x].best);
        kids.push_back(std::move(slots[x].kid));
        ++x;
      }
      ledger.charge_parallel(kids);
    }
  } else {
    minoragg::settle_virtual_execution(ledger, local, inst.beta());
  }
  return best;
}

}  // namespace umc::mincut
