file(REMOVE_RECURSE
  "CMakeFiles/test_cut_equivalence.dir/test_cut_equivalence.cpp.o"
  "CMakeFiles/test_cut_equivalence.dir/test_cut_equivalence.cpp.o.d"
  "test_cut_equivalence"
  "test_cut_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
