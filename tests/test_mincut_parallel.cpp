// Determinism gate for the exact_mincut task graph: the scheduler may run
// tree solves, star configurations, path-to-path pairs, and Monge halves on
// any thread in any order, but the merged output — CutResult AND every
// Ledger counter, not just the gated subset — must be bit-identical at
// widths 1 through 8. Width 1 is the inline sequential reference (TaskGroup
// spawns degrade to direct calls), so these sweeps pin the parallel
// schedule to the sequential semantics. Plus unit tests for the TaskGraph
// scheduler itself and the streaming tree-packing overload it feeds on.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/tree_packing.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace umc {
namespace {

struct SolveSnapshot {
  Weight value = 0;
  EdgeId e = kNoEdge, f = kNoEdge;
  int winning_tree = -1, num_trees = -1;
  std::int64_t rounds = 0;
  std::map<std::string, std::int64_t, std::less<>> counters;

  bool operator==(const SolveSnapshot&) const = default;
};

SolveSnapshot run_exact(const WeightedGraph& g, int threads,
                        const mincut::PackingConfig& config = {}) {
  Rng rng(7);
  minoragg::Ledger ledger;
  const auto r = mincut::exact_mincut(g, rng, ledger, config, threads);
  SolveSnapshot s;
  s.value = r.value;
  s.e = r.e;
  s.f = r.f;
  s.winning_tree = r.winning_tree;
  s.num_trees = r.num_trees;
  s.rounds = ledger.rounds();
  s.counters = ledger.counters();
  return s;
}

void expect_width_invariant(const WeightedGraph& g, const mincut::PackingConfig& config = {}) {
  const SolveSnapshot want = run_exact(g, 1, config);
  for (int t = 2; t <= 8; ++t) {
    const SolveSnapshot got = run_exact(g, t, config);
    EXPECT_EQ(got.value, want.value) << "threads=" << t;
    EXPECT_EQ(got.e, want.e) << "threads=" << t;
    EXPECT_EQ(got.f, want.f) << "threads=" << t;
    EXPECT_EQ(got.winning_tree, want.winning_tree) << "threads=" << t;
    EXPECT_EQ(got.num_trees, want.num_trees) << "threads=" << t;
    EXPECT_EQ(got.rounds, want.rounds) << "threads=" << t;
    // Full counter-map equality: same keys, same values — any scheduling
    // leak into the accounting shows up here with the offending key.
    EXPECT_EQ(got.counters, want.counters) << "threads=" << t;
  }
}

TEST(MincutParallel, GridBitIdenticalAcrossWidths) {
  expect_width_invariant(grid_graph(6, 6));
}

TEST(MincutParallel, ErdosRenyiBitIdenticalAcrossWidths) {
  Rng rng(23);
  expect_width_invariant(erdos_renyi_connected(48, 0.18, rng));
}

TEST(MincutParallel, PlanarBitIdenticalAcrossWidths) {
  Rng rng(5);
  expect_width_invariant(random_planar_grid(7, 7, 0.4, rng));
}

TEST(MincutParallel, DominantTreeBitIdenticalAcrossWidths) {
  // Pathological pipeline shape: cap the packing at two trees so one tree's
  // solve dominates the whole session and the pipelined producer finishes
  // long before the solves — the exact case the per-tree fan-out of old
  // could not split. Intra-tree items must carry the width sweep alone.
  Rng rng(11);
  const WeightedGraph g = erdos_renyi_connected(56, 0.3, rng);
  mincut::PackingConfig config;
  config.max_trees = 2;
  expect_width_invariant(g, config);
}

TEST(MincutParallel, StreamingPackingMatchesRetainingOverload) {
  // The pipelined solve consumes trees through the sink overload; it must
  // produce exactly the retained list — same trees, same order, same
  // charges, same rng consumption.
  Rng grng(31);
  const WeightedGraph g = erdos_renyi_connected(40, 0.2, grng);

  Rng rng_a(9);
  minoragg::Ledger led_a;
  const auto retained = mincut::tree_packing(g, rng_a, led_a, {});

  Rng rng_b(9);
  minoragg::Ledger led_b;
  std::vector<std::vector<EdgeId>> streamed;
  const auto meta = mincut::tree_packing(g, rng_b, led_b, {},
                                         [&streamed](std::vector<EdgeId> tree) {
                                           streamed.push_back(std::move(tree));
                                         });
  EXPECT_TRUE(meta.trees.empty()) << "sink mode must not retain trees";
  EXPECT_EQ(meta.lambda_seed, retained.lambda_seed);
  EXPECT_EQ(meta.sampled, retained.sampled);
  EXPECT_EQ(streamed, retained.trees);
  EXPECT_EQ(led_b.rounds(), led_a.rounds());
  EXPECT_EQ(led_b.counters(), led_a.counters());
}

// ---------------------------------------------------------------------------
// TaskGraph scheduler unit tests.

TEST(TaskGraph, SessionRunsAllSpawnedTasks) {
  std::atomic<int> ran{0};
  const auto stats = TaskGraph::session(4, [&ran] {
    TaskGroup group;
    for (int i = 0; i < 64; ++i) group.spawn([&ran] { ran.fetch_add(1); });
    group.join();
  });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(stats.spawned, 64);
  EXPECT_EQ(stats.width, 4);
}

TEST(TaskGraph, NestedGroupsComplete) {
  // Tasks spawning tasks: the shape the centroid recursion produces. Joins
  // must help (not deadlock) even when every worker is inside a join.
  std::atomic<int> leaves{0};
  TaskGraph::session(4, [&leaves] {
    TaskGroup outer;
    for (int i = 0; i < 8; ++i) {
      outer.spawn([&leaves] {
        TaskGroup inner;
        for (int j = 0; j < 8; ++j) inner.spawn([&leaves] { leaves.fetch_add(1); });
        inner.join();
      });
    }
    outer.join();
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskGraph, WidthOneDegradesInline) {
  // width 1 => no session: spawns run immediately on the calling thread in
  // spawn order — the sequential reference the sweeps above compare against.
  std::vector<int> order;
  const auto stats = TaskGraph::session(1, [&order] {
    EXPECT_FALSE(TaskGraph::in_session());
    TaskGroup group;
    for (int i = 0; i < 4; ++i) group.spawn([&order, i] { order.push_back(i); });
    group.join();
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(stats.spawned, 0);
  EXPECT_EQ(stats.width, 1);
}

TEST(TaskGraph, NestedSessionDegradesInline) {
  // A session inside a session must not recurse into the pool.
  bool inner_ran = false;
  TaskGraph::session(2, [&inner_ran] {
    EXPECT_TRUE(TaskGraph::in_session());
    const auto inner = TaskGraph::session(4, [&inner_ran] { inner_ran = true; });
    EXPECT_EQ(inner.width, 1);
  });
  EXPECT_TRUE(inner_ran);
}

TEST(TaskGraph, TaskExceptionPropagatesToOpener) {
  std::atomic<int> survivors{0};
  const auto run = [&survivors] {
    TaskGraph::session(4, [&survivors] {
      TaskGroup group;
      group.spawn([] { throw std::runtime_error("task boom"); });
      for (int i = 0; i < 8; ++i) group.spawn([&survivors] { survivors.fetch_add(1); });
      group.join();
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The session drains: the sibling tasks still ran before the rethrow.
  EXPECT_EQ(survivors.load(), 8);
}

TEST(TaskGraph, ReusableGroupAcrossJoinCycles) {
  int total = 0;
  TaskGraph::session(2, [&total] {
    TaskGroup group;
    std::atomic<int> a{0}, b{0};
    group.spawn([&a] { a.fetch_add(1); });
    group.join();
    group.spawn([&b] { b.fetch_add(2); });
    group.join();
    total = a.load() + b.load();
  });
  EXPECT_EQ(total, 3);
}

}  // namespace
}  // namespace umc
