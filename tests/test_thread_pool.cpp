// Tests for the shared worker pool (thread_pool.hpp): each run executes
// every index exactly once and only with its own generation's job, even
// across thousands of back-to-back generations (the stale-wakeup hazard —
// a worker arriving late must never run a dead callable or steal a newer
// generation's indices), and distinct submitting threads serialize instead
// of corrupting each other's generation state. Under -DUMC_SANITIZE=thread
// these double as the pool's dedicated race checks.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace umc {
namespace {

TEST(ThreadPool, BackToBackGenerationsNeverLeakAcrossRuns) {
  ThreadPool& pool = ThreadPool::global();
  constexpr int kRuns = 4000;
  constexpr std::size_t kCount = 16;
  std::vector<std::atomic<int>> hits(kCount);
  std::vector<std::atomic<int>> tag(kCount);
  for (std::size_t i = 0; i < kCount; ++i) tag[i].store(-1, std::memory_order_relaxed);
  for (int r = 0; r < kRuns; ++r) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    // Large capture defeats std::function's small-buffer optimization, so a
    // stale worker touching a destroyed job is a heap use-after-free that
    // the sanitizer jobs can flag, not a silent read of recycled storage.
    std::array<int, 16> pad{};
    pad[0] = r;
    pool.run(kCount, 8, [&hits, &tag, pad](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      tag[i].store(pad[0], std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      // Exactly once, and by THIS generation's job — a stale job executing
      // on our indices would leave an older tag behind.
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "run=" << r << " i=" << i;
      ASSERT_EQ(tag[i].load(std::memory_order_relaxed), r) << "run=" << r << " i=" << i;
    }
  }
}

TEST(ThreadPool, ConcurrentSubmittersSerializeWithoutLosingWork) {
  ThreadPool& pool = ThreadPool::global();
  constexpr int kSubmitters = 4;
  constexpr int kRunsEach = 300;
  constexpr std::size_t kCount = 64;
  constexpr long long kWant = kCount * (kCount + 1) / 2;  // sum of i+1
  std::vector<std::thread> hosts;
  hosts.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    hosts.emplace_back([&pool] {
      for (int r = 0; r < kRunsEach; ++r) {
        std::atomic<long long> sum{0};
        pool.run(kCount, 4, [&sum](std::size_t i) {
          sum.fetch_add(static_cast<long long>(i) + 1, std::memory_order_relaxed);
        });
        // Lost or double-executed indices (two submitters clobbering
        // next_/total_/remaining_) would skew the per-run sum.
        EXPECT_EQ(sum.load(std::memory_order_relaxed), kWant) << "run=" << r;
      }
    });
  }
  for (std::thread& h : hosts) h.join();
}

}  // namespace
}  // namespace umc
