#pragma once

// Synchronous CONGEST simulator (the model of Peleg [33], Section 1).
//
// Communication happens in rounds; per round each node may send one
// O(log n)-bit message over each incident edge (one per direction). The
// simulator enforces that budget and counts rounds — the quantity every
// Theorem 1 experiment reports.
//
// Algorithms are written as explicit round loops: stage messages with
// `send`, call `end_round` to deliver, read `inbox`.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace umc::congest {

struct Message {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  std::int64_t payload = 0;
  /// Second word of the message (a CONGEST message is O(log n) bits; a
  /// (part-id, value) pair still fits).
  std::int64_t aux = 0;
};

class CongestNetwork {
 public:
  explicit CongestNetwork(const WeightedGraph& g);

  [[nodiscard]] const WeightedGraph& graph() const { return *g_; }

  /// Stage a message from `from` over edge `via` (delivered to the other
  /// endpoint at `end_round`). At most one message per (edge, direction)
  /// per round — a second send on the same slot violates the model.
  void send(NodeId from, EdgeId via, std::int64_t payload, std::int64_t aux = 0);

  /// Deliver staged messages and advance the round counter.
  void end_round();

  /// Messages delivered to v in the most recent round.
  [[nodiscard]] const std::vector<Message>& inbox(NodeId v) const {
    return inbox_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

  /// Charge rounds without message traffic (e.g. silent waiting rounds of a
  /// synchronized schedule).
  void charge_idle(std::int64_t r) { rounds_ += r; }

 private:
  const WeightedGraph* g_;
  std::int64_t rounds_ = 0;
  std::vector<Message> staged_;
  std::vector<bool> slot_used_;  // 2 slots per edge: 2*e + (from==edge.v)
  std::vector<std::vector<Message>> inbox_;
};

}  // namespace umc::congest
