#include "congest/congest_net.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace umc::congest {

CongestNetwork::CongestNetwork(const WeightedGraph& g)
    : g_(&g),
      slot_used_(static_cast<std::size_t>(g.m()) * 2, false),
      inbox_(static_cast<std::size_t>(g.n())) {}

void CongestNetwork::send(NodeId from, EdgeId via, std::int64_t payload, std::int64_t aux) {
  const Edge& e = g_->edge(via);
  UMC_ASSERT(from == e.u || from == e.v);
  const std::size_t slot = static_cast<std::size_t>(via) * 2 + (from == e.v ? 1 : 0);
  UMC_ASSERT_MSG(!slot_used_[slot], "one message per edge-direction per round (CONGEST)");
  slot_used_[slot] = true;
  staged_.push_back(Message{from, via, payload, aux});
}

void CongestNetwork::clear_staging() {
  staged_.clear();
  std::fill(slot_used_.begin(), slot_used_.end(), false);
}

void CongestNetwork::deliver_physical() {
  // Inboxes hold only the latest round's traffic.
  for (auto& box : inbox_) box.clear();
  if (fault_ != nullptr) fault_->filter_wire(rounds_, staged_);
  for (const Message& m : staged_) {
    const NodeId to = g_->edge(m.via).other(m.from);
    inbox_[static_cast<std::size_t>(to)].push_back(m);
  }
  clear_staging();
  ++rounds_;
}

void CongestNetwork::end_round() { deliver_physical(); }

}  // namespace umc::congest
