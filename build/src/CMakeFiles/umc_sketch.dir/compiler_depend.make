# Empty compiler generated dependencies file for umc_sketch.
# This may be replaced when dependencies are built.
