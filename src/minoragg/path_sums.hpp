#pragma once

// Numbered path prefix/suffix aggregates (Lemma 45).
//
// Nodes of a path know their index; prefix[i] = fold(values[0..i]) and
// suffix[i] = fold(values[i..n-1]) are computed by the halving recursion of
// the lemma: both halves run simultaneously (they are node-disjoint,
// Corollary 11) and one broadcast round folds the left half's total into the
// right half, so the round cost is one per recursion level = ceil(log2 n),
// plus one initial counting round.

#include <algorithm>
#include <span>
#include <vector>

#include "minoragg/ledger.hpp"
#include "minoragg/network.hpp"
#include "sketch/aggregators.hpp"
#include "util/math.hpp"

namespace umc::minoragg {

/// Scratch-friendly variant: writes the prefix sums into `prefix` (resized
/// and overwritten) so hot callers can recycle one buffer across rows.
/// Charges are identical to the allocating overload by construction — it is
/// the same computation on a caller-owned output.
template <Aggregator A>
void path_prefix_sums_into(std::span<const typename A::value_type> values, Ledger& ledger,
                           std::vector<typename A::value_type>& prefix) {
  using V = typename A::value_type;
  const std::size_t n = values.size();
  prefix.assign(values.begin(), values.end());
  ledger.charge(1);  // every node learns n (contract-all + sum consensus)
  // Bottom-up halving: blocks of size `len` merge pairwise; level cost is
  // one round (all merges are node-disjoint).
  for (std::size_t len = 1; len < n; len *= 2) {
    for (std::size_t lo = 0; lo + len < n; lo += 2 * len) {
      const V carry = prefix[lo + len - 1];
      const std::size_t hi = std::min(lo + 2 * len, n);
      for (std::size_t i = lo + len; i < hi; ++i) prefix[i] = A::merge(carry, prefix[i]);
    }
    ledger.charge(1);
  }
}

template <Aggregator A>
std::vector<typename A::value_type> path_prefix_sums(
    std::span<const typename A::value_type> values, Ledger& ledger) {
  std::vector<typename A::value_type> prefix;
  path_prefix_sums_into<A>(values, ledger, prefix);
  return prefix;
}

/// LITERAL Lemma 45: the same prefix sums executed as genuine Definition 9
/// rounds on a path-shaped Network (node i adjacent to i+1 via edge i).
/// One round per halving level: the interior edges of every right half
/// contract, and each block-boundary edge hands the left half's running
/// prefix to the right supernode, whose nodes all fold it in. Used by tests
/// to pin the charged version's round count to real model execution.
template <Aggregator A>
std::vector<typename A::value_type> literal_path_prefix_sums(
    const WeightedGraph& path, std::span<const typename A::value_type> values,
    Ledger& ledger) {
  using V = typename A::value_type;
  const std::size_t n = values.size();
  UMC_ASSERT(static_cast<NodeId>(n) == path.n());
  UMC_ASSERT_MSG(path.m() == path.n() - 1, "expected a path graph");
  for (EdgeId e = 0; e < path.m(); ++e) {
    UMC_ASSERT_MSG(std::min(path.edge(e).u, path.edge(e).v) == e &&
                       std::max(path.edge(e).u, path.edge(e).v) == e + 1,
                   "expected edge i to connect nodes (i, i+1)");
  }
  Network net(path, ledger);
  std::vector<V> prefix(values.begin(), values.end());
  ledger.charge(1);  // everyone learns n
  for (std::size_t len = 1; len < n; len *= 2) {
    // Contract the interior of every right half so its nodes form one
    // supernode; the boundary edge delivers the carry by aggregation.
    std::vector<bool> contract(static_cast<std::size_t>(path.m()), false);
    for (std::size_t lo = 0; lo + len < n; lo += 2 * len) {
      const std::size_t hi = std::min(lo + 2 * len, n);
      for (std::size_t i = lo + len; i + 1 < hi; ++i) contract[i] = true;
    }
    struct CarryAgg {
      using value_type = V;
      static value_type identity() { return A::identity(); }
      static value_type merge(value_type a, value_type b) { return A::merge(a, b); }
    };
    const std::vector<V> dummy(n, A::identity());
    const auto res = net.template round<CarryAgg, CarryAgg>(
        contract, dummy, [&prefix, len, n](EdgeId e, const V&, const V&) {
          // Edge e connects nodes e and e+1; it is a block boundary iff
          // e+1 == lo+len for its block.
          const std::size_t i = static_cast<std::size_t>(e);
          const bool boundary = ((i + 1) % (2 * len)) == len && i + 1 < n;
          return std::pair<V, V>{A::identity(),
                                 boundary ? prefix[i] : A::identity()};
        });
    for (std::size_t lo = 0; lo + len < n; lo += 2 * len) {
      const std::size_t hi = std::min(lo + 2 * len, n);
      for (std::size_t i = lo + len; i < hi; ++i)
        prefix[i] = A::merge(res.aggregate[i], prefix[i]);
    }
  }
  return prefix;
}

/// Scratch-friendly suffix sums: `rev` is caller-owned reversal scratch and
/// `suffix` receives the result. Same charges as the allocating overload.
template <Aggregator A>
void path_suffix_sums_into(std::span<const typename A::value_type> values, Ledger& ledger,
                           std::vector<typename A::value_type>& rev,
                           std::vector<typename A::value_type>& suffix) {
  using V = typename A::value_type;
  rev.assign(values.rbegin(), values.rend());
  path_prefix_sums_into<A>(std::span<const V>(rev), ledger, suffix);
  std::reverse(suffix.begin(), suffix.end());
}

template <Aggregator A>
std::vector<typename A::value_type> path_suffix_sums(
    std::span<const typename A::value_type> values, Ledger& ledger) {
  using V = typename A::value_type;
  std::vector<V> rev, suffix;
  path_suffix_sums_into<A>(values, ledger, rev, suffix);
  return suffix;
}

}  // namespace umc::minoragg
