# Empty compiler generated dependencies file for test_exact_mincut.
# This may be replaced when dependencies are built.
