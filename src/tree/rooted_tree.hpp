#pragma once

// Rooted spanning trees over a host graph.
//
// A RootedTree is always a spanning tree of its host WeightedGraph: the
// 2-respecting machinery (Sections 5–9) builds a fresh instance graph per
// recursive call, so "tree over a node subset" never arises.
//
// Terminology matches Section 3: parent/child, top(e)/bottom(e), depth,
// subtree, ancestors/descendants, descending paths.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace umc {

class RootedTree {
 public:
  /// Builds from `n-1` tree edge ids that form a spanning tree of `g`.
  RootedTree(const WeightedGraph& g, std::span<const EdgeId> tree_edges, NodeId root);

  [[nodiscard]] const WeightedGraph& host() const { return *g_; }
  [[nodiscard]] NodeId n() const { return static_cast<NodeId>(parent_.size()); }
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] std::span<const EdgeId> tree_edges() const { return tree_edges_; }

  /// kNoNode for the root.
  [[nodiscard]] NodeId parent(NodeId v) const { return parent_[idx(v)]; }
  /// Edge id (in the host graph) to the parent; kNoEdge for the root.
  [[nodiscard]] EdgeId parent_edge(NodeId v) const { return parent_edge_[idx(v)]; }
  [[nodiscard]] int depth(NodeId v) const { return depth_[idx(v)]; }
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const { return children_[idx(v)]; }
  [[nodiscard]] NodeId subtree_size(NodeId v) const { return subtree_size_[idx(v)]; }

  /// Nodes in preorder (root first); children in host-adjacency order.
  [[nodiscard]] std::span<const NodeId> preorder() const { return preorder_; }

  /// True iff a is an ancestor of b (a == b counts; Section 3 convention).
  [[nodiscard]] bool is_ancestor(NodeId a, NodeId b) const {
    return tin_[idx(a)] <= tin_[idx(b)] && tout_[idx(b)] <= tout_[idx(a)];
  }

  /// True iff `e` (a host edge id) is one of this tree's edges.
  [[nodiscard]] bool is_tree_edge(EdgeId e) const { return is_tree_edge_[static_cast<std::size_t>(e)]; }

  /// bottom(e): the endpoint farther from the root. Requires a tree edge.
  [[nodiscard]] NodeId bottom(EdgeId e) const;
  /// top(e): the endpoint closer to the root. Requires a tree edge.
  [[nodiscard]] NodeId top(EdgeId e) const { return host().edge(e).other(bottom(e)); }

 private:
  [[nodiscard]] std::size_t idx(NodeId v) const {
    UMC_ASSERT(v >= 0 && v < n());
    return static_cast<std::size_t>(v);
  }

  const WeightedGraph* g_;
  NodeId root_;
  std::vector<EdgeId> tree_edges_;
  std::vector<bool> is_tree_edge_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<int> depth_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> subtree_size_;
  std::vector<NodeId> preorder_;
  std::vector<int> tin_, tout_;
};

}  // namespace umc
