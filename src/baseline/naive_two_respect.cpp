#include "baseline/naive_two_respect.hpp"

#include "mincut/cut_values.hpp"

namespace umc::baseline {

namespace {

/// Cov(e, f) for all tree-edge pairs via per-graph-edge path marking:
/// O(m * depth^2). Returns a dense matrix indexed by tree-edge index.
std::vector<std::vector<Weight>> cov2_table(const RootedTree& t,
                                            std::span<const EdgeId> tree_edges) {
  const WeightedGraph& g = t.host();
  // tree edge id -> dense index.
  std::vector<int> index(static_cast<std::size_t>(g.m()), -1);
  for (std::size_t i = 0; i < tree_edges.size(); ++i)
    index[static_cast<std::size_t>(tree_edges[i])] = static_cast<int>(i);

  const std::size_t k = tree_edges.size();
  std::vector<std::vector<Weight>> cov(k, std::vector<Weight>(k, 0));
  for (const Edge& e : g.edges()) {
    // Tree edges on the u..v path: climb both endpoints to the LCA.
    std::vector<int> path;
    NodeId u = e.u, v = e.v;
    while (u != v) {
      NodeId& deeper = t.depth(u) >= t.depth(v) ? u : v;
      path.push_back(index[static_cast<std::size_t>(t.parent_edge(deeper))]);
      deeper = t.parent(deeper);
    }
    for (const int a : path)
      for (const int b : path)
        cov[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] += e.w;
  }
  return cov;
}

}  // namespace

mincut::CutResult naive_one_respecting(const RootedTree& t) {
  const std::vector<Weight> cov1 = mincut::reference_cov1(t);
  mincut::CutResult best;
  for (const EdgeId e : t.tree_edges())
    best.absorb(mincut::CutResult{cov1[static_cast<std::size_t>(e)], e, kNoEdge});
  return best;
}

mincut::CutResult naive_two_respecting(const RootedTree& t) {
  const auto tree_edges = t.tree_edges();
  const auto cov = cov2_table(t, tree_edges);
  mincut::CutResult best = naive_one_respecting(t);
  for (std::size_t i = 0; i < tree_edges.size(); ++i) {
    for (std::size_t j = i + 1; j < tree_edges.size(); ++j) {
      // Fact 5: Cut(e,f) = Cov(e) + Cov(f) - 2 Cov(e,f).
      const Weight cut = cov[i][i] + cov[j][j] - 2 * cov[i][j];
      best.absorb(mincut::CutResult{cut, tree_edges[i], tree_edges[j]});
    }
  }
  return best;
}

}  // namespace umc::baseline
