// Experiment E15 (Theorem 17, literal execution): Borůvka MST executed
// end to end through compiled Minor-Aggregation rounds — REAL CONGEST
// message traffic, not the multiplicative cost model.
//
// Reported per family: total real CONGEST rounds, MA rounds (Borůvka
// iterations), the measured per-MA-round cost, and its ratio against
// (D + √n) — flat across the sweep, the Theorem 17 shape, now measured at
// the message level.

#include <cmath>

#include "bench_common.hpp"
#include "congest/compiled_network.hpp"
#include "graph/properties.hpp"

namespace umc {
namespace {

void run_compiled(benchmark::State& state, const WeightedGraph& g) {
  Rng rng(19);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);

  congest::CompiledBoruvkaResult res{};
  for (auto _ : state) {
    res = congest::compiled_boruvka(g, cost);
    benchmark::DoNotOptimize(res);
  }
  const int d = approx_diameter(g);
  state.counters["n"] = g.n();
  state.counters["D"] = d;
  state.counters["ma_rounds"] = res.ma_rounds;
  state.counters["real_congest_rounds"] = static_cast<double>(res.congest_rounds);
  const double per_round =
      static_cast<double>(res.congest_rounds) / static_cast<double>(res.ma_rounds);
  state.counters["congest_per_ma_round"] = per_round;
  state.counters["per_round_over_D_plus_sqrtN"] =
      per_round / (static_cast<double>(d) + std::sqrt(static_cast<double>(g.n())));
}

void BM_CompiledMstGrid(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  run_compiled(state, grid_graph(side, side));
}
void BM_CompiledMstEr(benchmark::State& state) {
  run_compiled(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 8.0, 43));
}
void BM_CompiledMstPath(benchmark::State& state) {
  run_compiled(state, path_graph(static_cast<NodeId>(state.range(0))));
}

BENCHMARK(BM_CompiledMstGrid)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompiledMstEr)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompiledMstPath)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
