// Scenario: deterministic dual-failure audit of a spanning-tree overlay.
//
// Many networks run traffic over a fixed spanning tree (STP in Ethernet,
// an ISP's distribution tree). The question "which pair of tree links,
// failing together, isolates the cheapest-to-cut region?" is exactly the
// 2-respecting min-cut for that tree — and the paper's Theorem 40 solves it
// DETERMINISTICALLY: same network, same answer, same number of rounds,
// every run. This example runs the audit twice and diffs the transcripts,
// then validates the reported pair by recomputing its cut value from
// scratch.
//
//   $ ./example_deterministic_audit [n=64]

#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "util/math.hpp"
#include "mincut/cut_values.hpp"
#include "mincut/two_respect.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace umc;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 64;

  Rng rng(5);
  WeightedGraph g = random_connected(n, 3 * n, rng);
  randomize_weights(g, 1, 99, rng);
  const auto overlay = bfs_spanning_tree(g, 0);  // the operator's fixed tree
  std::printf("network: %d nodes, %d links; overlay tree rooted at node 0\n", g.n(), g.m());

  // Run the deterministic 2-respecting audit twice.
  minoragg::Ledger run1, run2;
  const mincut::CutResult a = mincut::two_respecting_mincut(g, overlay, 0, run1);
  const mincut::CutResult b = mincut::two_respecting_mincut(g, overlay, 0, run2);

  std::printf("\naudit result: cheapest tree-respecting failure costs %lld\n",
              static_cast<long long>(a.value));
  if (a.f == kNoEdge) {
    std::printf("  a SINGLE overlay link does it: {%d,%d}\n", g.edge(a.e).u, g.edge(a.e).v);
  } else {
    std::printf("  overlay link pair: {%d,%d} + {%d,%d}\n", g.edge(a.e).u, g.edge(a.e).v,
                g.edge(a.f).u, g.edge(a.f).v);
  }

  const bool deterministic = a.value == b.value && a.e == b.e && a.f == b.f &&
                             run1.rounds() == run2.rounds();
  std::printf("\ndeterminism check (two runs): %s\n", deterministic ? "identical" : "DIFFER");
  std::printf("  rounds: %lld vs %lld\n", static_cast<long long>(run1.rounds()),
              static_cast<long long>(run2.rounds()));
  std::printf("  centroid recursion depth: %lld (log2 n ~ %d), virtual nodes <= %lld\n",
              static_cast<long long>(run1.counter("max_general_depth")),
              ceil_log2(static_cast<std::uint64_t>(n)),
              static_cast<long long>(run1.counter("max_beta")));

  // Independent validation of the reported pair.
  const RootedTree t(g, overlay, 0);
  const Weight check = a.f == kNoEdge ? mincut::reference_cut_pair(t, a.e, a.e)
                                      : mincut::reference_cut_pair(t, a.e, a.f);
  std::printf("recomputed cut value of the reported pair: %lld (%s)\n",
              static_cast<long long>(check), check == a.value ? "match" : "MISMATCH");
  return (deterministic && check == a.value) ? 0 : 1;
}
