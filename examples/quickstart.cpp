// Quickstart: build a small weighted network, compute its exact min-cut
// with the universally-optimal pipeline (tree packing + deterministic
// 2-respecting min-cut), and inspect the round accounting.
//
//   $ ./example_quickstart

#include <cstdio>

#include "baseline/stoer_wagner.hpp"
#include "congest/compile.hpp"
#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "util/rng.hpp"

int main() {
  using namespace umc;

  // A 6x6 grid network with random link capacities — a planar topology,
  // the family where the paper's Õ(D) bound applies.
  Rng rng(2022);
  WeightedGraph g = grid_graph(6, 6);
  randomize_weights(g, 1, 50, rng);
  std::printf("network: %d nodes, %d weighted links (planar grid)\n", g.n(), g.m());

  // Run the full Theorem 1 pipeline. The ledger records every
  // Minor-Aggregation round the algorithm charges.
  minoragg::Ledger ledger;
  const mincut::ExactMinCutResult cut = mincut::exact_mincut(g, rng, ledger);

  std::printf("exact min-cut value: %lld\n", static_cast<long long>(cut.value));
  if (cut.f == kNoEdge) {
    std::printf("the cut 1-respects packing tree #%d at tree edge {%d,%d}\n", cut.winning_tree,
                g.edge(cut.e).u, g.edge(cut.e).v);
  } else {
    std::printf("the cut 2-respects packing tree #%d at tree edges {%d,%d} and {%d,%d}\n",
                cut.winning_tree, g.edge(cut.e).u, g.edge(cut.e).v, g.edge(cut.f).u,
                g.edge(cut.f).v);
  }

  // Cross-check against the centralized oracle.
  const Weight reference = baseline::stoer_wagner(g).value;
  std::printf("stoer-wagner cross-check: %lld (%s)\n", static_cast<long long>(reference),
              reference == cut.value ? "match" : "MISMATCH");

  // Round accounting: Minor-Aggregation rounds and the Theorem 17 compile
  // targets.
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger);
  std::printf("minor-aggregation rounds: %lld\n", static_cast<long long>(cost.ma_rounds));
  std::printf("hop diameter D = %d\n", cost.diameter);
  std::printf("compiled CONGEST rounds (general, measured PA): %lld\n",
              static_cast<long long>(cost.congest_rounds_general()));
  std::printf("compiled CONGEST rounds (excluded-minor, Õ(D) model): %lld\n",
              static_cast<long long>(cost.congest_rounds_excluded_minor()));
  std::printf("packing trees used: %d\n", cut.num_trees);
  return cut.value == reference ? 0 : 1;
}
