#pragma once

// Deterministic weighted heavy-hitters sketch (Misra-Gries), mergeable per
// Agarwal et al. — the aggregation operator of Example 8.
//
// With capacity h the sketch underestimates any key's frequency by at most
// W/(h+1) (W = total inserted weight). The Example 8 interface
// `heavy_hitters()` therefore returns a list that (1) contains every key x
// with f(x) > 2W/h and (2) contains no key with f(x) <= W/h.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/assert.hpp"

namespace umc {

class MisraGries {
 public:
  using Key = std::uint64_t;

  struct Item {
    Key key = 0;
    Weight count = 0;  // lower bound on true frequency
  };

  /// Sketch with at most `capacity` counters. Bit size is Õ(capacity).
  explicit MisraGries(int capacity = 8) : capacity_(capacity) {
    UMC_ASSERT(capacity >= 1);
  }

  void add(Key key, Weight w);

  /// Mergeable-summary union: counters added pointwise, then reduced back to
  /// capacity by subtracting the (capacity+1)-st largest counter.
  [[nodiscard]] static MisraGries merge(MisraGries a, const MisraGries& b);

  /// Lower-bound frequency estimate (0 if the key is not tracked).
  [[nodiscard]] Weight estimate(Key key) const;

  /// Total weight ever inserted (exact; needed for the Example 8 filter).
  [[nodiscard]] Weight total_weight() const { return total_; }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] const std::vector<Item>& items() const { return items_; }

  /// Example 8 output: keys whose true frequency exceeds 2W/h are all
  /// present; keys with frequency <= W/h are all absent.
  [[nodiscard]] std::vector<Key> heavy_hitters() const;

 private:
  void reduce();

  int capacity_;
  Weight total_ = 0;
  std::vector<Item> items_;  // kept sorted by key for deterministic merging
};

}  // namespace umc
