
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minoragg/boruvka.cpp" "src/CMakeFiles/umc_minoragg.dir/minoragg/boruvka.cpp.o" "gcc" "src/CMakeFiles/umc_minoragg.dir/minoragg/boruvka.cpp.o.d"
  "/root/repo/src/minoragg/cole_vishkin.cpp" "src/CMakeFiles/umc_minoragg.dir/minoragg/cole_vishkin.cpp.o" "gcc" "src/CMakeFiles/umc_minoragg.dir/minoragg/cole_vishkin.cpp.o.d"
  "/root/repo/src/minoragg/network.cpp" "src/CMakeFiles/umc_minoragg.dir/minoragg/network.cpp.o" "gcc" "src/CMakeFiles/umc_minoragg.dir/minoragg/network.cpp.o.d"
  "/root/repo/src/minoragg/star_merge.cpp" "src/CMakeFiles/umc_minoragg.dir/minoragg/star_merge.cpp.o" "gcc" "src/CMakeFiles/umc_minoragg.dir/minoragg/star_merge.cpp.o.d"
  "/root/repo/src/minoragg/tree_primitives.cpp" "src/CMakeFiles/umc_minoragg.dir/minoragg/tree_primitives.cpp.o" "gcc" "src/CMakeFiles/umc_minoragg.dir/minoragg/tree_primitives.cpp.o.d"
  "/root/repo/src/minoragg/virtual_graph.cpp" "src/CMakeFiles/umc_minoragg.dir/minoragg/virtual_graph.cpp.o" "gcc" "src/CMakeFiles/umc_minoragg.dir/minoragg/virtual_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
