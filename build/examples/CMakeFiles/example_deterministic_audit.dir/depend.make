# Empty dependencies file for example_deterministic_audit.
# This may be replaced when dependencies are built.
