// Pipeline checkpointing (solve_checkpoint.hpp): crashes injected at every
// commit point of the resumable solve must lose only in-flight work, and the
// resumed run must be bit-identical — result, ledger charges, generator exit
// state — to an uninterrupted exact_mincut. Also the PackingCache
// fingerprint regression suite (node count and endpoints, not just weights).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/packing_cache.hpp"
#include "mincut/solve_checkpoint.hpp"
#include "util/rng.hpp"

namespace umc::mincut {
namespace {

struct Baseline {
  ExactMinCutResult result;
  minoragg::Ledger ledger;
  Rng::State rng_exit{};
};

Baseline uninterrupted(const WeightedGraph& g, std::uint64_t seed, const PackingConfig& config,
                       int threads) {
  Baseline b;
  Rng rng(seed);
  b.result = exact_mincut(g, rng, b.ledger, config, threads);
  b.rng_exit = rng.state();
  return b;
}

void expect_same(const Baseline& want, const ExactMinCutResult& got,
                 const minoragg::Ledger& ledger, const Rng& rng, const std::string& what) {
  EXPECT_EQ(got.value, want.result.value) << what;
  EXPECT_EQ(got.e, want.result.e) << what;
  EXPECT_EQ(got.f, want.result.f) << what;
  EXPECT_EQ(got.winning_tree, want.result.winning_tree) << what;
  EXPECT_EQ(got.num_trees, want.result.num_trees) << what;
  EXPECT_EQ(ledger.rounds(), want.ledger.rounds()) << what;
  EXPECT_EQ(ledger.counters(), want.ledger.counters()) << what;
  EXPECT_EQ(rng.state(), want.rng_exit) << what;
}

using Site = std::pair<SolvePhase, std::int64_t>;

/// Outcome of a crash/retry protocol: the final attempt's (result, ledger,
/// rng) plus the surviving checkpoint.
struct Recovered {
  ExactMinCutResult result;
  minoragg::Ledger ledger;
  Rng rng{0};
  SolveCheckpoint ckpt;
  int attempts = 0;
};

/// Runs the resumable solve to completion, crashing once at each site in
/// `crashes` (each fired at most once), with a FRESH ledger per attempt —
/// a crashed attempt's partial charges are discarded, like a dead process's.
void solve_with_crashes(const WeightedGraph& g, std::uint64_t seed, const PackingConfig& config,
                        int threads, std::set<Site> crashes, Recovered& r) {
  const CrashHook hook = [&](SolvePhase phase, std::int64_t index) {
    const auto it = crashes.find({phase, index});
    if (it == crashes.end()) return;
    crashes.erase(it);  // at most once per plan
    throw crash_error(phase, index);
  };
  for (;;) {
    ++r.attempts;
    ASSERT_LE(r.attempts, 64) << "crash protocol failed to converge";
    r.rng = Rng(seed);  // crash contract: reset the generator to entry state
    r.ledger = minoragg::Ledger();
    try {
      r.result = exact_mincut_resumable(g, r.rng, r.ledger, config, threads, r.ckpt, hook);
      return;
    } catch (const crash_error&) {
      continue;
    }
  }
}

WeightedGraph test_graph(std::uint64_t seed, int n = 24, double p = 0.3) {
  Rng rng(seed);
  WeightedGraph g = erdos_renyi_connected(n, p, rng);
  randomize_weights(g, 1, 9, rng);
  return g;
}

TEST(SolveCheckpoint, UninterruptedResumableMatchesExactMincut) {
  PackingCache::global().clear();
  const WeightedGraph g = test_graph(101);
  const PackingConfig config;
  const Baseline want = uninterrupted(g, 7, config, 2);

  PackingCache::global().clear();  // exercise the live path, not a replay
  Rng rng(7);
  minoragg::Ledger ledger;
  SolveCheckpoint ckpt;
  const ExactMinCutResult got = exact_mincut_resumable(g, rng, ledger, config, 2, ckpt);
  expect_same(want, got, ledger, rng, "no crashes");
  EXPECT_EQ(ckpt.replayed_units, 0);
  EXPECT_TRUE(ckpt.packing.complete());
  EXPECT_EQ(ckpt.committed_solves(), want.result.num_trees);
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value);
}

TEST(SolveCheckpoint, ResumableHitsPackingCacheWhenCheckpointEmpty) {
  PackingCache::global().clear();
  const WeightedGraph g = test_graph(103);
  const PackingConfig config;
  const Baseline want = uninterrupted(g, 9, config, 1);  // populates the cache

  const std::int64_t hits_before = PackingCache::global().hits();
  Rng rng(9);
  minoragg::Ledger ledger;
  SolveCheckpoint ckpt;
  const ExactMinCutResult got = exact_mincut_resumable(g, rng, ledger, config, 1, ckpt);
  expect_same(want, got, ledger, rng, "cache replay");
  EXPECT_GT(PackingCache::global().hits(), hits_before);
}

TEST(SolveCheckpoint, CrashAtEveryCommitPointResumesBitIdentical) {
  PackingCache::global().clear();
  const WeightedGraph g = test_graph(107, 20, 0.3);
  PackingConfig config;
  config.use_cache = false;  // force the live resume path on every attempt
  const Baseline want = uninterrupted(g, 11, config, 2);

  // Enumerate the commit sites one crash-free run fires.
  std::vector<Site> sites;
  {
    SolveCheckpoint probe;
    Rng rng(11);
    minoragg::Ledger ledger;
    (void)exact_mincut_resumable(g, rng, ledger, config, 2, probe,
                                 [&](SolvePhase phase, std::int64_t index) {
                                   sites.emplace_back(phase, index);
                                 });
  }
  ASSERT_GE(sites.size(), 3u);

  for (const Site& site : sites) {
    SCOPED_TRACE(std::string(to_string(site.first)) + " #" + std::to_string(site.second));
    Recovered r;
    solve_with_crashes(g, 11, config, 2, {site}, r);
    EXPECT_EQ(r.attempts, 2);  // one crash, one clean resume
    expect_same(want, r.result, r.ledger, r.rng, "crash site");
  }
}

TEST(SolveCheckpoint, MidPackingCrashResumesFromLastCommittedIteration) {
  PackingCache::global().clear();
  const WeightedGraph g = test_graph(109, 22, 0.3);
  PackingConfig config;
  config.use_cache = false;
  const Baseline want = uninterrupted(g, 13, config, 2);
  const int iterations = want.result.num_trees;
  ASSERT_GE(iterations, 6);

  const std::int64_t crash_at = iterations / 2;
  SolveCheckpoint ckpt;
  std::int64_t resumed_live = 0;
  bool crashed = false;
  {
    Rng rng(13);
    minoragg::Ledger ledger;
    try {
      (void)exact_mincut_resumable(g, rng, ledger, config, 2, ckpt,
                                   [&](SolvePhase phase, std::int64_t index) {
                                     if (phase == SolvePhase::kPackingIteration &&
                                         index == crash_at && !crashed) {
                                       crashed = true;
                                       throw crash_error(phase, index);
                                     }
                                   });
      FAIL() << "crash hook did not fire";
    } catch (const crash_error& e) {
      EXPECT_EQ(e.phase(), SolvePhase::kPackingIteration);
      EXPECT_EQ(e.index(), crash_at);
    }
  }
  // The crash lost exactly the in-flight iteration: 0..crash_at-1 committed.
  EXPECT_EQ(ckpt.packing.committed_iterations(), crash_at);
  EXPECT_TRUE(ckpt.packing.setup_done);
  EXPECT_FALSE(ckpt.packing.complete());

  // Resume: only iterations >= crash_at run live (the journal replays the
  // prefix), and the merged outcome is bit-identical to never crashing.
  Rng rng(13);
  minoragg::Ledger ledger;
  const ExactMinCutResult got = exact_mincut_resumable(
      g, rng, ledger, config, 2, ckpt, [&](SolvePhase phase, std::int64_t) {
        if (phase == SolvePhase::kPackingIteration) ++resumed_live;
      });
  EXPECT_EQ(resumed_live, iterations - crash_at);
  EXPECT_GT(ckpt.replayed_units, 0);
  expect_same(want, got, ledger, rng, "mid-packing resume");
}

TEST(SolveCheckpoint, MultiCrashProtocolAcrossAllPhasesConverges) {
  PackingCache::global().clear();
  const WeightedGraph g = test_graph(113, 20, 0.35);
  PackingConfig config;
  config.use_cache = false;
  const Baseline want = uninterrupted(g, 17, config, 3);
  ASSERT_GE(want.result.num_trees, 4);

  // Five crashes spanning every phase: setup, two packing iterations, two
  // tree solves. Each retry must pick up strictly past the previous crash.
  Recovered r;
  solve_with_crashes(g, 17, config, 3,
                     {{SolvePhase::kPackingSetup, 0},
                      {SolvePhase::kPackingIteration, 1},
                      {SolvePhase::kPackingIteration, want.result.num_trees - 1},
                      {SolvePhase::kTreeSolve, 0},
                      {SolvePhase::kTreeSolve, 2}},
                     r);
  // One clean completion after the crashes; a single attempt can consume
  // SEVERAL sites (a producer crash drains already-spawned solves, whose
  // hooks still fire), so the attempt count is 2..6, not exactly 6.
  EXPECT_GE(r.attempts, 2);
  EXPECT_LE(r.attempts, 6);
  EXPECT_GT(r.ckpt.replayed_units, 0);
  expect_same(want, r.result, r.ledger, r.rng, "multi-crash protocol");
  EXPECT_EQ(r.result.value, baseline::stoer_wagner(g).value);
}

TEST(SolveCheckpoint, SampledRouteCrashResumesBitIdentical) {
  PackingCache::global().clear();
  const WeightedGraph g = test_graph(127, 26, 0.5);
  PackingConfig config;
  config.use_cache = false;
  config.direct_threshold_c = 0.0;  // force the Karger-sampling route (case B)
  const Baseline want = uninterrupted(g, 19, config, 2);

  // Crash after setup committed (so the sample + rng snapshot must carry the
  // resume) and again mid-iterations.
  SolveCheckpoint ckpt;
  std::set<Site> crashes{{SolvePhase::kPackingIteration, 0},
                         {SolvePhase::kPackingIteration, 2}};
  ExactMinCutResult got;
  Rng rng(19);
  minoragg::Ledger ledger;
  int attempts = 0;
  for (;;) {
    ++attempts;
    ASSERT_LE(attempts, 8);
    rng = Rng(19);
    ledger = minoragg::Ledger();
    try {
      got = exact_mincut_resumable(g, rng, ledger, config, 2, ckpt,
                                   [&](SolvePhase phase, std::int64_t index) {
                                     const auto it = crashes.find({phase, index});
                                     if (it == crashes.end()) return;
                                     crashes.erase(it);
                                     throw crash_error(phase, index);
                                   });
      break;
    } catch (const crash_error&) {
      EXPECT_TRUE(ckpt.packing.sampled);
      continue;
    }
  }
  EXPECT_EQ(attempts, 3);
  EXPECT_TRUE(ckpt.packing.sampled);
  EXPECT_FALSE(ckpt.packing.multiplicity.empty());
  expect_same(want, got, ledger, rng, "sampled-route resume");
  EXPECT_EQ(got.value, baseline::stoer_wagner(g).value);
}

TEST(SolveCheckpoint, ResumingAgainstDifferentSolveIsRejected) {
  PackingCache::global().clear();
  const WeightedGraph g1 = test_graph(131);
  const WeightedGraph g2 = test_graph(137);
  PackingConfig config;
  config.use_cache = false;

  SolveCheckpoint ckpt;
  {
    Rng rng(23);
    minoragg::Ledger ledger;
    bool crashed = false;
    EXPECT_THROW((void)exact_mincut_resumable(g1, rng, ledger, config, 1, ckpt,
                                              [&](SolvePhase phase, std::int64_t index) {
                                                if (phase == SolvePhase::kPackingIteration &&
                                                    !crashed) {
                                                  crashed = true;
                                                  throw crash_error(phase, index);
                                                }
                                              }),
                 crash_error);
  }
  ASSERT_FALSE(ckpt.empty());

  // Same checkpoint, different graph: the binding assertion must fire.
  Rng rng(23);
  minoragg::Ledger ledger;
  EXPECT_THROW((void)exact_mincut_resumable(g2, rng, ledger, config, 1, ckpt),
               invariant_error);
}

// ---------------------------------------------------------------------------
// Satellite: PackingCache fingerprints must cover the node count and edge
// endpoints — not just the weight multiset — so cached packings can never be
// replayed against a structurally different graph.

WeightedGraph build(NodeId n, const std::vector<std::array<std::int64_t, 3>>& edges) {
  WeightedGraph g(n);
  for (const auto& [u, v, w] : edges)
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), static_cast<Weight>(w));
  return g;
}

TEST(PackingCacheFingerprint, CoversNodeCount) {
  // Identical edge lists, different node counts (node 3 isolated in g4): a
  // fingerprint that only folded edges would collide.
  const std::vector<std::array<std::int64_t, 3>> edges = {{0, 1, 5}, {1, 2, 7}, {0, 2, 3}};
  EXPECT_NE(graph_fingerprint(build(3, edges)), graph_fingerprint(build(4, edges)));
}

TEST(PackingCacheFingerprint, CoversEdgeEndpointsNotJustWeights) {
  // Two triangles-with-tail sharing the exact weight multiset {2,3,5,7} but
  // wired differently: a weight-only fingerprint would collide.
  const WeightedGraph a = build(4, {{0, 1, 2}, {1, 2, 3}, {2, 0, 5}, {2, 3, 7}});
  const WeightedGraph b = build(4, {{0, 1, 2}, {1, 2, 3}, {2, 0, 5}, {1, 3, 7}});
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));

  // Same endpoints, same weights, swapped across edges: order-sensitive
  // pairing of (endpoints, weight) must distinguish them too.
  const WeightedGraph c = build(4, {{0, 1, 3}, {1, 2, 2}, {2, 0, 5}, {2, 3, 7}});
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(c));
}

TEST(PackingCacheFingerprint, CoversWeightMutation) {
  WeightedGraph g = build(3, {{0, 1, 5}, {1, 2, 7}, {0, 2, 3}});
  const std::uint64_t before = graph_fingerprint(g);
  g.set_weight(1, 8);
  EXPECT_NE(graph_fingerprint(g), before);
}

TEST(PackingCacheFingerprint, StructurallyDifferentGraphMissesCache) {
  PackingCache::global().clear();
  // Same weight multiset, different wiring: a solve on `a` must not be able
  // to serve a lookup for `b` even at the same seed and config.
  Rng wa(31);
  WeightedGraph a = erdos_renyi_connected(12, 0.4, wa);
  randomize_weights(a, 1, 1, wa);  // all weights 1: maximally collision-prone
  Rng wb(32);
  WeightedGraph b = erdos_renyi_connected(12, 0.4, wb);
  randomize_weights(b, 1, 1, wb);
  ASSERT_NE(graph_fingerprint(a), graph_fingerprint(b));

  minoragg::Ledger ledger;
  Rng rng(41);
  (void)tree_packing(a, rng, ledger, {});
  const std::int64_t hits_before = PackingCache::global().hits();
  Rng rng2(41);
  minoragg::Ledger ledger2;
  (void)tree_packing(b, rng2, ledger2, {});
  EXPECT_EQ(PackingCache::global().hits(), hits_before);
}

}  // namespace
}  // namespace umc::mincut
