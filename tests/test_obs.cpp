// Tests for the observability subsystem (src/obs): span tracer semantics,
// logical-clock determinism at every thread width, the zero-cost contract
// of the kill switches, the typed metrics registry, and byte-exact exporter
// goldens. Registered twice in CTest: plain, and as test_obs_threads8 with
// the pool forced to 8 workers (the TSAN job for concurrent recording).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "minoragg/ledger.hpp"
#include "minoragg/network.hpp"
#include "obs/export.hpp"
#include "obs/ledger_bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

// ---- allocation counting ---------------------------------------------------
// Replacing the global allocator counts every heap allocation the binary
// makes; the disabled-tracing test asserts the count stays flat across a
// burst of span sites.

static std::atomic<std::size_t> g_alloc_count{0};

// GCC pairs the replaced operator new with the free() it inlines out of the
// replaced delete and mis-flags the pair; the overrides below ARE matched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace umc {
namespace {

using obs::TraceEvent;
using obs::Tracer;

/// The (name, logical, depth) skeleton of this thread's events — the
/// deterministic part of a trace (wall fields vary run to run).
struct Skeleton {
  std::string name;
  std::int64_t logical;
  std::int32_t depth;

  friend bool operator==(const Skeleton&, const Skeleton&) = default;
};

std::vector<Skeleton> skeleton_of(const std::vector<TraceEvent>& events, std::int32_t tid) {
  std::vector<Skeleton> out;
  for (const TraceEvent& e : events)
    if (e.tid == tid) out.push_back(Skeleton{e.name, e.logical, e.depth});
  return out;
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().set_clock_for_testing(nullptr);
    Tracer::global().clear();
  }
};

#if !defined(UMC_OBS_DISABLED)

TEST_F(TracerTest, SpansNestAndOrderBySeq) {
  {
    UMC_OBS_SPAN_VAR_L(outer, "test/outer", "test", 1);
    outer.arg("k", 42);
    {
      UMC_OBS_SPAN_L("test/inner", "test", 2);
      UMC_OBS_SPAN_L("test/innermost", "test", 3);
    }
    UMC_OBS_SPAN_L("test/sibling", "test", 4);
  }
  const auto events = Tracer::global().snapshot();
  const auto skel = skeleton_of(events, Tracer::global().current_tid());
  // Events commit at span END, so children precede parents; seq (the BEGIN
  // order) is what snapshot() sorts by, restoring begin order.
  const std::vector<Skeleton> expected = {
      {"test/outer", 1, 0},
      {"test/inner", 2, 1},
      {"test/innermost", 3, 2},
      {"test/sibling", 4, 1},
  };
  EXPECT_EQ(skel, expected);
  // The outer span carried its arg through.
  bool found = false;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "test/outer") continue;
    found = true;
    ASSERT_NE(e.args[0].key, nullptr);
    EXPECT_STREQ(e.args[0].key, "k");
    EXPECT_EQ(e.args[0].value, 42);
  }
  EXPECT_TRUE(found);
}

TEST_F(TracerTest, LogicalSkeletonIsIdenticalAtEveryThreadWidth) {
  // The same MA workload at widths 1..8 must produce byte-identical
  // main-thread logical traces AND identical charged rounds — the tracing
  // analogue of the round engine's bit-identical-fold contract. The graph
  // is big enough (64x64 grid) to cross the engine's parallel cutoff.
  const WeightedGraph g = grid_graph(64, 64);
  Rng pattern_rng(0xBEEF);
  std::vector<std::vector<bool>> patterns;
  for (int p = 0; p < 3; ++p) {
    std::vector<bool> c(static_cast<std::size_t>(g.m()));
    for (std::size_t e = 0; e < c.size(); ++e) c[e] = pattern_rng.next_bool(0.8);
    patterns.push_back(std::move(c));
  }
  std::vector<std::int64_t> x(static_cast<std::size_t>(g.n()));
  for (std::size_t v = 0; v < x.size(); ++v) x[v] = static_cast<std::int64_t>(v % 97);

  const auto run_traced = [&](int width) {
    Tracer::global().clear();
    minoragg::Ledger ledger;
    minoragg::Network net(g, ledger);
    net.set_threads(width);
    std::int64_t checksum = 0;
    for (int r = 0; r < 6; ++r) {
      const auto res = net.round<SumAgg, SumAgg>(
          patterns[static_cast<std::size_t>(r) % patterns.size()], x,
          [](EdgeId, const std::int64_t& yu, const std::int64_t& yv) {
            return std::pair<std::int64_t, std::int64_t>{yv % 1009, yu % 1009};
          });
      checksum += res.consensus[0] + res.aggregate[res.aggregate.size() - 1];
    }
    const auto skel =
        skeleton_of(Tracer::global().snapshot(), Tracer::global().current_tid());
    return std::tuple(skel, ledger.rounds(), checksum);
  };

  const auto [ref_skel, ref_rounds, ref_checksum] = run_traced(1);
  EXPECT_EQ(ref_rounds, 6);
  ASSERT_FALSE(ref_skel.empty());
  for (int width = 2; width <= 8; ++width) {
    const auto [skel, rounds, checksum] = run_traced(width);
    EXPECT_EQ(skel, ref_skel) << "width " << width;
    EXPECT_EQ(rounds, ref_rounds) << "width " << width;
    EXPECT_EQ(checksum, ref_checksum) << "width " << width;
  }
}

TEST_F(TracerTest, ChargedRoundsIdenticalWithTracingOnAndOff) {
  const WeightedGraph g = grid_graph(16, 16);
  const std::vector<bool> contract(static_cast<std::size_t>(g.m()), true);
  const std::vector<std::int64_t> x(static_cast<std::size_t>(g.n()), 1);

  const auto run = [&](bool traced) {
    Tracer::global().set_enabled(traced);
    Tracer::global().clear();
    minoragg::Ledger ledger;
    minoragg::Network net(g, ledger);
    for (int r = 0; r < 5; ++r)
      (void)net.round<SumAgg, SumAgg>(
          contract, x, [](EdgeId, const std::int64_t&, const std::int64_t&) {
            return std::pair<std::int64_t, std::int64_t>{1, 1};
          });
    return ledger.rounds();
  };

  const std::int64_t traced = run(true);
  const std::int64_t untraced = run(false);
  EXPECT_EQ(traced, untraced);
  EXPECT_EQ(traced, 5);
}

TEST_F(TracerTest, ConcurrentRecordingKeepsPerThreadStreamsOrdered) {
  // Four free threads record concurrently; every thread's stream must come
  // back complete and seq-ordered. (The threads8 CTest job runs this under
  // TSAN as well.)
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        UMC_OBS_SPAN_L("test/worker", "test", t * kSpansPerThread + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const auto events = Tracer::global().snapshot();
  std::map<std::int32_t, std::vector<std::int64_t>> logical_by_tid;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "test/worker") continue;
    logical_by_tid[e.tid].push_back(e.logical);
  }
  std::size_t total = 0;
  for (const auto& [tid, logicals] : logical_by_tid) {
    total += logicals.size();
    // Within a thread spans began in logical order, so the snapshot's
    // seq-sorted stream must be strictly increasing.
    for (std::size_t i = 1; i < logicals.size(); ++i)
      EXPECT_LT(logicals[i - 1], logicals[i]);
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::global().dropped(), 0);
}

TEST_F(TracerTest, RingDropsNewestAndCounts) {
  const std::size_t cap = Tracer::global().ring_capacity();
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < cap + extra; ++i) {
    UMC_OBS_SPAN("test/flood", "test");
  }
  const auto events = Tracer::global().snapshot();
  std::size_t mine = 0;
  const std::int32_t tid = Tracer::global().current_tid();
  for (const TraceEvent& e : events)
    if (e.tid == tid) ++mine;
  EXPECT_EQ(mine, cap);
  EXPECT_EQ(Tracer::global().dropped(), static_cast<std::int64_t>(extra));
}

#endif  // !UMC_OBS_DISABLED

TEST(TracerDisabled, DisabledSpanSitesAllocateNothing) {
  // The runtime kill switch must make a span site allocation-free (one
  // relaxed load + branch). Compiled-out builds trivially pass: the macro
  // IS nothing.
  Tracer::global().set_enabled(false);
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    UMC_OBS_SPAN_VAR_L(span, "test/disabled", "test", i);
    span.arg("i", i);
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, RegistryReturnsStableInstancesByNameAndLabels) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("umc_test_events_total", {{"sim", "ma"}}, "help");
  obs::Counter& b = reg.counter("umc_test_events_total", {{"sim", "ma"}});
  EXPECT_EQ(&a, &b);  // find-or-register
  // Label order canonicalizes: {x,y} and {y,x} are the same instance.
  obs::Counter& c = reg.counter("umc_test_multi_total", {{"x", "1"}, {"y", "2"}});
  obs::Counter& d = reg.counter("umc_test_multi_total", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&c, &d);
  // Different labels = different instance.
  obs::Counter& e = reg.counter("umc_test_events_total", {{"sim", "congest"}});
  EXPECT_NE(&a, &e);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);
  EXPECT_EQ(e.value(), 0);
}

TEST(Metrics, GaugeSetMaxIsRunningMaximum) {
  obs::MetricsRegistry reg;
  obs::Gauge& gauge = reg.gauge("umc_test_depth");
  gauge.set_max(5);
  gauge.set_max(3);
  EXPECT_EQ(gauge.value(), 5);
  gauge.set_max(9);
  EXPECT_EQ(gauge.value(), 9);
  gauge.set(2);  // plain set overrides
  EXPECT_EQ(gauge.value(), 2);
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("umc_test_sizes", {1, 10, 100});
  h.observe(0);    // le 1
  h.observe(1);    // le 1 (inclusive)
  h.observe(7);    // le 10
  h.observe(100);  // le 100
  h.observe(101);  // +Inf
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 209);
}

TEST(Metrics, LedgerBridgeTranslatesTheKeyConvention) {
  minoragg::Ledger ledger;
  ledger.charge(7);
  ledger.bump("cv_iterations", 4);
  ledger.set_max("max_general_depth", 3);

  obs::MetricsRegistry reg;
  obs::bridge_ledger(reg, ledger, "ma");
  EXPECT_EQ(reg.counter("umc_ma_rounds_total", {{"sim", "ma"}}).value(), 7);
  EXPECT_EQ(reg.counter("umc_ledger_cv_iterations_total", {{"sim", "ma"}}).value(), 4);
  EXPECT_EQ(reg.gauge("umc_ledger_max_general_depth", {{"sim", "ma"}}).value(), 3);

  // Bridging a second ledger composes like ledger absorption: counters sum,
  // max-gauges max.
  minoragg::Ledger other;
  other.charge(5);
  other.set_max("max_general_depth", 2);
  obs::bridge_ledger(reg, other, "ma");
  EXPECT_EQ(reg.counter("umc_ma_rounds_total", {{"sim", "ma"}}).value(), 12);
  EXPECT_EQ(reg.gauge("umc_ledger_max_general_depth", {{"sim", "ma"}}).value(), 3);
}

// ---- exporter goldens ------------------------------------------------------

TEST(Export, ChromeTraceGolden) {
  // Hand-built events with pinned clocks and tids: the rendered document
  // must match byte for byte (Perfetto-loadable complete events).
  TraceEvent a;
  a.name = "ma/round";
  a.cat = "ma";
  a.t0_ns = 1500;
  a.dur_ns = 2750;
  a.logical = 7;
  a.seq = 0;
  a.depth = 0;
  a.tid = 0;
  a.args[0] = {"n", 24};
  TraceEvent b;
  b.name = "engine/execute";
  b.cat = "engine";
  b.t0_ns = 2000;
  b.dur_ns = 1000;
  b.logical = -1;  // none: omitted from args
  b.seq = 1;
  b.depth = 1;
  b.tid = 1;
  const std::vector<TraceEvent> events = {a, b};

  std::ostringstream os;
  obs::write_chrome_trace(os, events, /*dropped=*/3);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":["
            "{\"name\":\"ma/round\",\"cat\":\"ma\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
            "\"ts\":1.500,\"dur\":2.750,\"args\":{\"logical\":7,\"n\":24}},\n"
            "{\"name\":\"engine/execute\",\"cat\":\"engine\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":1,\"ts\":2.000,\"dur\":1.000,\"args\":{}}"
            "],\"otherData\":{\"dropped_events\":3}}\n");
}

TEST(Export, PrometheusGolden) {
  obs::MetricsRegistry reg;
  reg.counter("umc_test_events_total", {{"sim", "ma"}}, "Events processed.").inc(3);
  reg.gauge("umc_test_depth", {}, "Recursion depth.").set(5);
  obs::Histogram& h = reg.histogram("umc_test_sizes", {1, 10}, {}, "Batch sizes.");
  h.observe(0);
  h.observe(5);
  h.observe(100);

  std::ostringstream os;
  obs::write_prometheus(os, reg);
  EXPECT_EQ(os.str(),
            "# HELP umc_test_depth Recursion depth.\n"
            "# TYPE umc_test_depth gauge\n"
            "umc_test_depth 5\n"
            "# HELP umc_test_events_total Events processed.\n"
            "# TYPE umc_test_events_total counter\n"
            "umc_test_events_total{sim=\"ma\"} 3\n"
            "# HELP umc_test_sizes Batch sizes.\n"
            "# TYPE umc_test_sizes histogram\n"
            "umc_test_sizes_bucket{le=\"1\"} 1\n"
            "umc_test_sizes_bucket{le=\"10\"} 2\n"
            "umc_test_sizes_bucket{le=\"+Inf\"} 3\n"
            "umc_test_sizes_sum 105\n"
            "umc_test_sizes_count 3\n");
}

TEST(Export, FlatTableAlignsAndSummarizesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("umc_test_events_total", {{"sim", "ma"}}).inc(3);
  obs::Histogram& h = reg.histogram("umc_test_sizes", {10});
  h.observe(4);
  h.observe(8);

  std::ostringstream os;
  obs::write_flat_table(os, reg);
  // The name column is the longest id ("umc_test_events_total{sim=\"ma\"}",
  // 31 chars) plus two spaces of gutter.
  const std::string expected = "umc_test_events_total{sim=\"ma\"}  3\n" +
                               ("umc_test_sizes" + std::string(19, ' ')) +
                               "count=2 sum=12 avg=6.00\n";
  EXPECT_EQ(os.str(), expected);
}

}  // namespace
}  // namespace umc
