file(REMOVE_RECURSE
  "CMakeFiles/bench_one_respecting.dir/bench_one_respecting.cpp.o"
  "CMakeFiles/bench_one_respecting.dir/bench_one_respecting.cpp.o.d"
  "bench_one_respecting"
  "bench_one_respecting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_one_respecting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
