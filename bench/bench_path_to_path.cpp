// Experiment E4 (Figure 1 / Theorem 19): path-to-path 2-respecting min-cut.
//
// Sweeping the path length |P| = |Q| shows the Monge recursion's
// O(log |P|) depth and Õ(1)-per-level round cost; rounds grow ~log^2 while
// the instance grows 64x.

#include "bench_common.hpp"
#include "mincut/path_to_path.hpp"

namespace umc {
namespace {

mincut::PathInstance broom_instance(const WeightedGraph& g, NodeId len) {
  mincut::PathInstance inst;
  inst.graph = g;
  inst.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
  inst.origin.assign(static_cast<std::size_t>(g.m()), kNoEdge);
  inst.root = 0;
  for (NodeId i = 0; i < len; ++i) {
    inst.nodesP.push_back(1 + i);
    inst.edgesP.push_back(i);
    inst.origin[static_cast<std::size_t>(i)] = i;
    inst.nodesQ.push_back(len + 1 + i);
    inst.edgesQ.push_back(len + i);
    inst.origin[static_cast<std::size_t>(len + i)] = len + i;
  }
  return inst;
}

void BM_PathToPath(benchmark::State& state) {
  const NodeId len = static_cast<NodeId>(state.range(0));
  Rng rng(3 + static_cast<std::uint64_t>(len));
  WeightedGraph g = double_broom(len, 6 * len, rng);
  randomize_weights(g, 1, 100, rng);
  const mincut::PathInstance inst = broom_instance(g, len);

  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(mincut::path_to_path_mincut(inst, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  state.counters["path_len"] = len;
  state.counters["depth_bound_log2"] = ceil_log2(static_cast<std::uint64_t>(len));
}

BENCHMARK(BM_PathToPath)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
