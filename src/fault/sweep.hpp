#pragma once

// Differential fault sweep — the cross-tier audit harness.
//
// Runs the SolveSupervisor over a matrix of
//
//   generators  ×  fault plans (drop / dup / corrupt / crash,
//                  p ∈ {0, .01, .1, .3})  ×  ladder entry tiers
//
// and cross-checks EVERY answer against the fault-free oracle (Stoer–
// Wagner on the pristine graph). The acceptance contract is "zero silent
// wrong answers": a returned cut value either matches the oracle exactly,
// or the SolveReport flags a degraded tier whose witness independently
// re-sums to the reported value (a valid — possibly non-minimum — cut).
// Anything else is a silent wrong answer and fails the sweep.
//
// Message-fault plans exercise the transport preflight (compiled Borůvka
// over a ReliableChannel under the plan); crash plans are additionally
// turned into pipeline crash schedules via crash_plan_hook, so mid-packing
// crash windows recover through checkpoint replay. The audit generalizes
// the exact_mincut_guarded self-check machinery: the guard battery
// certifies exact-tier answers, the witness re-sum certifies Monte Carlo
// answers, and the sweep re-verifies both independently of the supervisor.
//
// tests/test_fault_sweep.cpp runs the standard matrix (≥ 96 configurations)
// as a tier-1 gate; tools/fault_sweep is the CLI driver with --extended for
// the nightly job's larger matrix.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/supervisor.hpp"
#include "graph/graph.hpp"

namespace umc::fault {

struct SweepConfig {
  /// Larger plan matrix and bigger graphs (the nightly CI job).
  bool extended = false;
  std::uint64_t seed = 1;
  /// Thread width of each supervised solve.
  int num_threads = 1;
};

/// One (generator × plan × entry tier) configuration's audited outcome.
struct SweepOutcome {
  std::string generator;
  std::string plan;
  SolveTier entry_tier = SolveTier::kExact;
  SolveTier tier = SolveTier::kExact;  // tier that answered
  Weight oracle = 0;                   // fault-free Stoer–Wagner value
  Weight value = 0;
  bool certified = false;
  bool match = false;         // value == oracle
  bool witness_valid = false;  // sweep-side independent witness re-sum
  /// The failure mode the sweep exists to catch: a mismatching value NOT
  /// flagged as a certified degraded answer (or a value below the oracle,
  /// which no valid cut can produce).
  bool silent_wrong = false;
  int retries = 0;
  int tier_falls = 0;
  std::int64_t checkpoint_replays = 0;
  std::int64_t rounds = 0;
  std::string detail;  // SolveReport.reason
};

struct SweepSummary {
  std::vector<SweepOutcome> outcomes;
  int configs = 0;
  int oracle_matches = 0;
  int degraded_flagged = 0;  // mismatches properly flagged (certified degraded)
  int silent_wrong = 0;      // MUST be 0
  std::array<int, 4> tier_hits{};  // answers by tier (SolveTier index)
  std::int64_t total_retries = 0;
  std::int64_t total_tier_falls = 0;
  std::int64_t total_checkpoint_replays = 0;

  /// Human-readable per-plan tier-hit table (the E24 experiment table).
  [[nodiscard]] std::string table() const;
  /// Machine-readable record (schema: fault_sweep/v1).
  [[nodiscard]] std::string to_json() const;
};

/// Runs the matrix; deterministic for a fixed config (modulo wall times).
[[nodiscard]] SweepSummary run_fault_sweep(const SweepConfig& cfg = {});

}  // namespace umc::fault
