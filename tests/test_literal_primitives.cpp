// Pins the charged Appendix A primitives to literal Definition 9
// executions: the Lemma 45 prefix sums run as real Minor-Aggregation
// rounds must produce the same values at the same asymptotic round count
// as the charged implementation.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "minoragg/path_sums.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {
namespace {

TEST(LiteralLemma45, MatchesChargedImplementationOnSums) {
  Rng rng(3);
  for (const NodeId n : {1, 2, 3, 5, 16, 33, 100, 257}) {
    const WeightedGraph path = path_graph(n);
    std::vector<std::int64_t> vals(static_cast<std::size_t>(n));
    for (auto& v : vals) v = rng.next_in(-50, 50);
    Ledger charged, literal;
    const auto want = path_prefix_sums<SumAgg>(vals, charged);
    const auto got = literal_path_prefix_sums<SumAgg>(path, vals, literal);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]) << "n=" << n;
    // Identical round structure: one round per halving level (+1 setup).
    EXPECT_EQ(literal.rounds(), charged.rounds());
  }
}

TEST(LiteralLemma45, WorksWithMinAggregator) {
  const WeightedGraph path = path_graph(9);
  const std::vector<std::int64_t> vals = {9, 7, 8, 3, 5, 4, 1, 2, 6};
  Ledger ledger;
  const auto got = literal_path_prefix_sums<MinAgg>(path, vals, ledger);
  std::int64_t run = MinAgg::identity();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    run = std::min(run, vals[i]);
    EXPECT_EQ(got[i], run);
  }
}

TEST(LiteralLemma45, RejectsNonPathGraphs) {
  const WeightedGraph not_path = star_graph(5);
  const std::vector<std::int64_t> vals(5, 1);
  Ledger ledger;
  EXPECT_THROW((void)literal_path_prefix_sums<SumAgg>(not_path, vals, ledger),
               invariant_error);
}

}  // namespace
}  // namespace umc::minoragg
