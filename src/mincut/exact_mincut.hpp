#pragma once

// Exact weighted min-cut (Theorem 1): tree packing (Theorem 12) x the
// deterministic 2-respecting min-cut (Theorem 40). A poly(log n)-round
// Minor-Aggregation algorithm, compiled to CONGEST via Theorem 17:
// Õ(D+√n) rounds on general graphs (recovering Dory et al. [7]) and Õ(D)
// on excluded-minor graphs — universally optimal modulo shortcut
// construction.

#include <cstdint>
#include <string>
#include <vector>

#include "mincut/instance.hpp"
#include "mincut/solve_checkpoint.hpp"
#include "mincut/tree_packing.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"

namespace umc::mincut {

struct ExactMinCutResult {
  Weight value = kInfWeight;
  /// Defining tree edge(s) of the winning 2-respecting cut, as edge ids of
  /// the input graph (f == kNoEdge for a 1-respecting winner).
  EdgeId e = kNoEdge;
  EdgeId f = kNoEdge;
  /// Index of the packing tree the winner 2-respects.
  int winning_tree = -1;
  int num_trees = 0;
};

/// Requires a connected graph with n >= 2. Randomness is used only by the
/// tree packing; the 2-respecting solver is deterministic.
///
/// The per-tree 2-respecting solves run as parallel jobs on the shared
/// util::ThreadPool (width = the UMC_THREADS knob), each into its own
/// Ledger; results and ledgers are merged in tree-index order, so the cut
/// value, winning tree, and every charged round count are bit-identical at
/// any thread width.
[[nodiscard]] ExactMinCutResult exact_mincut(const WeightedGraph& g, Rng& rng,
                                             minoragg::Ledger& ledger,
                                             const PackingConfig& config = {});

/// Same, with an explicit thread width for the per-tree solves instead of
/// the UMC_THREADS knob (which is read once per process — this overload is
/// what width-sweep tests and benches use).
[[nodiscard]] ExactMinCutResult exact_mincut(const WeightedGraph& g, Rng& rng,
                                             minoragg::Ledger& ledger,
                                             const PackingConfig& config, int num_threads);

/// Checkpoint-resumable solve: the same pipelined packing + per-tree
/// 2-respecting fan-out, journaling every committed unit into `ckpt` so a
/// crash_error thrown by `hook` (or escaping the producer) loses only
/// in-flight work. Re-entering with the same (graph, config, seed) and the
/// surviving `ckpt` replays the journal and recomputes the rest; the final
/// result, `ledger` charges, and `rng` exit state are bit-identical to an
/// uninterrupted exact_mincut run no matter where (or whether) crashes
/// struck. A crash propagates out of this function after every already-
/// spawned tree solve finished committing — the pipelined units are not
/// thrown away with the exception.
[[nodiscard]] ExactMinCutResult exact_mincut_resumable(const WeightedGraph& g, Rng& rng,
                                                       minoragg::Ledger& ledger,
                                                       const PackingConfig& config,
                                                       int num_threads, SolveCheckpoint& ckpt,
                                                       const CrashHook& hook = nullptr);

// ---------------------------------------------------------------------------
// Graceful degradation: guarded execution with runtime self-checks.
//
// A production deployment cannot afford to abort on a corrupted intermediate
// result (bit-flipped memory, a miscompiled kernel, a bug tripped by a rare
// topology). exact_mincut_guarded runs the Theorem 1 pipeline, optionally
// validates the answer with independent spot checks, and on ANY failure —
// a guard mismatch or an invariant_error escaping the fast path — falls
// back to the Θ(D + m) gather baseline (congest/gather_baseline.hpp) and
// returns a structured diagnosis instead of throwing.
//
// Guards (enabled by the UMC_SELF_CHECK env knob — "1"/"on" —, the
// config.self_check flag, or the CLI's --self-check):
//   * cut=cov spot check — materialize the winning (e, f) cut as a witness
//     bipartition and re-sum the crossing weights (Theorem 40's Cut/Cov
//     identity), which must reproduce the reported value;
//   * packing respect check — the winning tree index is in range and its
//     edge set is a spanning tree of g (RootedTree validation);
//   * determinism self-check — re-running the deterministic 2-respecting
//     solver on the winning tree reproduces the value, and the replayed
//     packing (same seed) yields the same tree count.

struct GuardConfig {
  /// Force self-checks on regardless of UMC_SELF_CHECK.
  bool self_check = false;
  /// Fault injection for tests and drills: silently corrupt the primary
  /// result before the guards run. With self-checks on, the guards must
  /// detect it and degrade; with them off, the corruption sails through —
  /// which is precisely what the knob buys.
  bool inject_result_corruption = false;
  PackingConfig packing;
};

struct MinCutDiagnosis {
  bool used_fallback = false;
  /// One structured line per failed guard ("cut-cov mismatch: ...").
  std::vector<std::string> failures;
  [[nodiscard]] std::string to_string() const;
};

struct GuardedMinCutResult {
  /// The answer served: the primary result's value, or the gather
  /// baseline's when the guards rejected the primary path.
  Weight value = kInfWeight;
  ExactMinCutResult primary;  // meaningful iff !diagnosis.used_fallback
  MinCutDiagnosis diagnosis;
  std::int64_t fallback_rounds = 0;  // gather baseline cost, if taken
};

/// True when the UMC_SELF_CHECK environment knob enables guard checks
/// (values "1" or "on"; read once per process).
[[nodiscard]] bool self_check_enabled();

/// The guard battery as a standalone oracle: validates `primary` against a
/// same-seed packing replay (PackingCache hit in the common case), the
/// witness re-sum, and the deterministic 2-respecting re-run. Returns one
/// structured line per failed guard — empty means certified. This is the
/// cross-tier verifier the SolveSupervisor and the differential fault sweep
/// use to certify whichever tier produced an exact answer.
[[nodiscard]] std::vector<std::string> verify_mincut_result(const WeightedGraph& g,
                                                            std::uint64_t seed,
                                                            const GuardConfig& config,
                                                            const ExactMinCutResult& primary);

/// Guarded entry point. Takes a seed (not an Rng&) so the packing can be
/// replayed deterministically for the guards. Never throws on corruption of
/// its own results; model violations degrade to the baseline.
[[nodiscard]] GuardedMinCutResult exact_mincut_guarded(const WeightedGraph& g,
                                                       std::uint64_t seed,
                                                       minoragg::Ledger& ledger,
                                                       const GuardConfig& config = {});

}  // namespace umc::mincut
