# Empty dependencies file for test_theorem14.
# This may be replaced when dependencies are built.
