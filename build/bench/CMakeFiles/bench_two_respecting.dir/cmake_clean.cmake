file(REMOVE_RECURSE
  "CMakeFiles/bench_two_respecting.dir/bench_two_respecting.cpp.o"
  "CMakeFiles/bench_two_respecting.dir/bench_two_respecting.cpp.o.d"
  "bench_two_respecting"
  "bench_two_respecting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_respecting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
