file(REMOVE_RECURSE
  "CMakeFiles/umc_congest.dir/congest/bfs_tree.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/bfs_tree.cpp.o.d"
  "CMakeFiles/umc_congest.dir/congest/compile.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/compile.cpp.o.d"
  "CMakeFiles/umc_congest.dir/congest/compiled_network.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/compiled_network.cpp.o.d"
  "CMakeFiles/umc_congest.dir/congest/congest_net.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/congest_net.cpp.o.d"
  "CMakeFiles/umc_congest.dir/congest/edge_coloring.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/edge_coloring.cpp.o.d"
  "CMakeFiles/umc_congest.dir/congest/gather_baseline.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/gather_baseline.cpp.o.d"
  "CMakeFiles/umc_congest.dir/congest/partwise.cpp.o"
  "CMakeFiles/umc_congest.dir/congest/partwise.cpp.o.d"
  "libumc_congest.a"
  "libumc_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
