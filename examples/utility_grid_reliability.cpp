// Scenario: reliability audit of a planar utility network.
//
// A power distribution grid is (close to) planar: substations on a lattice
// with a few diagonal feeders. The operator wants the network's weakest
// point — the set of lines whose combined capacity is smallest among all
// ways of splitting the grid in two (the weighted min-cut), and how long a
// decentralized audit would take if every substation only talks to its
// neighbors (the CONGEST round count).
//
// This is the paper's headline setting: on excluded-minor (planar)
// topologies the audit compiles to Õ(D) rounds, so the time is governed by
// the grid's physical diameter, not its size.
//
//   $ ./example_utility_grid_reliability [side=12]

#include <cstdio>
#include <cstdlib>

#include "baseline/stoer_wagner.hpp"
#include "congest/compile.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mincut/exact_mincut.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace umc;
  const NodeId side = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 12;

  Rng rng(7);
  // Planar lattice with ~40% of faces carrying a diagonal feeder; line
  // capacities 5..120 MW.
  WeightedGraph g = random_planar_grid(side, side, 0.4, rng);
  randomize_weights(g, 5, 120, rng);
  std::printf("utility grid: %d substations, %d lines, diameter %d\n", g.n(), g.m(),
              approx_diameter(g));

  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = 16;
  const mincut::ExactMinCutResult cut = mincut::exact_mincut(g, rng, ledger, config);
  const baseline::GlobalMinCut oracle = baseline::stoer_wagner(g);

  std::printf("\nweakest split: %lld MW of line capacity\n", static_cast<long long>(cut.value));
  std::printf("  (centralized cross-check: %lld MW, %s)\n",
              static_cast<long long>(oracle.value),
              oracle.value == cut.value ? "match" : "MISMATCH");
  std::printf("  one side of the split has %zu of %d substations\n", oracle.side.size(),
              g.n());

  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger);
  std::printf("\ndecentralized audit cost:\n");
  std::printf("  minor-aggregation rounds: %lld\n", static_cast<long long>(cost.ma_rounds));
  std::printf("  per-MA-round compile cost on this planar grid (Õ(D) shortcuts): %lld\n",
              static_cast<long long>(cost.pa_rounds_excluded_minor));
  std::printf("  total compiled CONGEST rounds: %lld, scaling with D = %d — not with n\n",
              static_cast<long long>(cost.congest_rounds_excluded_minor()), cost.diameter);
  std::printf(
      "  (note: a square grid has D ~ 2*sqrt(n), so here the planar Õ(D) target\n"
      "   coincides with the general Õ(D+sqrt(n)) one; the planar advantage is\n"
      "   decisive on small-diameter planar topologies — see EXPERIMENTS.md E1/E14)\n");
  return oracle.value == cut.value ? 0 : 1;
}
