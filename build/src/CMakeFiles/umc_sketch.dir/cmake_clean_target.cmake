file(REMOVE_RECURSE
  "libumc_sketch.a"
)
