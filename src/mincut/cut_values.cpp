#include "mincut/cut_values.hpp"

#include "util/scratch.hpp"

namespace umc::mincut {

std::vector<Weight> reference_cov1(const RootedTree& t) {
  const WeightedGraph& g = t.host();
  const LcaOracle lca(t);
  // Difference trick: +w at both endpoints, -2w at the LCA; subtree-sum.
  // The accumulator is leased scratch (called per base-case instance); the
  // returned cov vector is the result, so it stays an allocation.
  ScratchLease<std::vector<Weight>> acc_s;
  std::vector<Weight>& acc = *acc_s;
  acc.assign(static_cast<std::size_t>(g.n()), 0);
  for (const Edge& e : g.edges()) {
    acc[static_cast<std::size_t>(e.u)] += e.w;
    acc[static_cast<std::size_t>(e.v)] += e.w;
    acc[static_cast<std::size_t>(lca.lca(e.u, e.v))] -= 2 * e.w;
  }
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (t.parent(*it) != kNoNode)
      acc[static_cast<std::size_t>(t.parent(*it))] += acc[static_cast<std::size_t>(*it)];
  }
  std::vector<Weight> cov(static_cast<std::size_t>(g.m()), 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const EdgeId pe = t.parent_edge(v);
    if (pe != kNoEdge) cov[static_cast<std::size_t>(pe)] = acc[static_cast<std::size_t>(v)];
  }
  return cov;
}

bool edge_covers(const RootedTree& t, EdgeId ge, EdgeId te) {
  // te = {parent(x), x} lies on the u..v tree path iff exactly one of u, v
  // is a descendant of x.
  const NodeId x = t.bottom(te);
  const Edge& e = t.host().edge(ge);
  return t.is_ancestor(x, e.u) != t.is_ancestor(x, e.v);
}

Weight reference_cov_pair(const RootedTree& t, EdgeId e, EdgeId f) {
  Weight total = 0;
  for (EdgeId ge = 0; ge < t.host().m(); ++ge) {
    if (edge_covers(t, ge, e) && edge_covers(t, ge, f)) total += t.host().edge(ge).w;
  }
  return total;
}

Weight reference_cut_pair(const RootedTree& t, EdgeId e, EdgeId f) {
  Weight total = 0;
  for (EdgeId ge = 0; ge < t.host().m(); ++ge) {
    if (edge_covers(t, ge, e) != edge_covers(t, ge, f)) total += t.host().edge(ge).w;
  }
  if (e == f) return reference_cov_pair(t, e, e);  // Cut(e) = Cov(e), Fact 5
  return total;
}

}  // namespace umc::mincut
