#pragma once

// Tree centroid (Fact 41): a node whose removal leaves components of size
// <= |V(T)|/2. Centralized reference; the Minor-Aggregation version
// (Lemma 42) lives in minoragg/tree_primitives.

#include "tree/rooted_tree.hpp"

namespace umc {

/// Returns a centroid of the tree. For trees with two centroids (even paths)
/// the one with the smaller preorder index is returned, deterministically.
[[nodiscard]] NodeId find_centroid(const RootedTree& t);

/// Size of the largest component of T - v.
[[nodiscard]] NodeId largest_component_after_removal(const RootedTree& t, NodeId v);

}  // namespace umc
