#pragma once

// Path-to-path 2-respecting min-cut (Section 6, Theorem 19).
//
// The instance is a root plus two descending paths P and Q (Figure 1). The
// algorithm finds min Cut(e, f) over candidate pairs e ∈ E(P), f ∈ E(Q):
//   * base case (one path has <= 10 edges): scan each edge of the shorter
//     path with the fixed-edge cover routine (Lemma 21);
//   * separable instances (no cross-path edge avoids the five boundary
//     nodes): Cut(e,f) = F_P(e) + F_Q(f) on interior pairs (Lemma 22) plus
//     two boundary-row scans;
//   * otherwise: midpoint e_a of P, best CANDIDATE response f_b, Monge
//     recursion on cut-equivalent private graphs G_up / G_down built with
//     virtual boundary nodes (Lemma 23; Facts 24/25). The two recursive
//     calls are node-disjoint and run simultaneously (Corollary 11), and
//     virtual nodes are eliminated before returning, so no simulation
//     cascade arises (the ledger multiplies only each call's LOCAL rounds
//     by its own O(1) virtual-node count, Theorem 14).

#include <vector>

#include "mincut/instance.hpp"
#include "minoragg/ledger.hpp"

namespace umc::mincut {

/// A Figure 1 instance. Tree edges are edgesP ∪ edgesQ, where edgesX[i]
/// connects (i == 0 ? root : nodesX[i-1]) to nodesX[i]; candidates carry an
/// origin. The graph must contain no nodes besides root ∪ P ∪ Q — callers
/// map external regions into boundary/virtual nodes first.
struct PathInstance {
  WeightedGraph graph;
  std::vector<bool> is_virtual;   // per node
  std::vector<EdgeId> origin;     // per edge; kNoEdge = not a candidate
  NodeId root = 0;
  std::vector<NodeId> nodesP, nodesQ;  // top (child of root) → bottom
  std::vector<EdgeId> edgesP, edgesQ;

  [[nodiscard]] int beta() const {
    int b = 0;
    for (const bool f : is_virtual) b += f ? 1 : 0;
    return b;
  }
};

/// min over candidate pairs (e ∈ P) × (f ∈ Q) of Cut(e, f), together with
/// the 1-respecting minimum over candidate tree edges of the instance.
[[nodiscard]] CutResult path_to_path_mincut(const PathInstance& inst, minoragg::Ledger& ledger);

}  // namespace umc::mincut
