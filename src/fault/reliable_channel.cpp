#include "fault/reliable_channel.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace umc::fault {

namespace {

#if !defined(UMC_OBS_DISABLED)
struct ArqMetrics {
  obs::Counter& logical_rounds = obs::MetricsRegistry::global().counter(
      "umc_arq_logical_rounds_total", {}, "Logical rounds compiled through the ARQ.");
  obs::Counter& attempts = obs::MetricsRegistry::global().counter(
      "umc_arq_attempts_total", {}, "DATA/CTRL/ACK attempt triples executed.");
  obs::Counter& retransmissions = obs::MetricsRegistry::global().counter(
      "umc_arq_retransmissions_total", {}, "Messages retransmitted after a failed attempt.");
  obs::Counter& backoff = obs::MetricsRegistry::global().counter(
      "umc_arq_backoff_rounds_total", {}, "Idle rounds charged to exponential backoff.");
};

ArqMetrics& arq_metrics() {
  static ArqMetrics m;
  return m;
}
#endif

constexpr std::uint64_t kChecksumSalt = 0x600dC0DEULL;
constexpr std::uint64_t kAckSalt = 0xAC4BACC4ULL;

/// Wire slot of a message as sent by m.from (matches CongestNetwork's
/// slot convention: 2*e + (from == edge.v)).
[[nodiscard]] std::size_t slot_of(const WeightedGraph& g, const congest::Message& m) {
  return static_cast<std::size_t>(m.via) * 2 + (m.from == g.edge(m.via).v ? 1 : 0);
}

/// Forward slot of traffic sent by `sender` over `via`.
[[nodiscard]] std::size_t slot_for(const WeightedGraph& g, NodeId sender, EdgeId via) {
  return static_cast<std::size_t>(via) * 2 + (sender == g.edge(via).v ? 1 : 0);
}

[[nodiscard]] std::int64_t checksum(std::int64_t payload, std::int64_t aux, std::int64_t seq,
                                    std::size_t slot) {
  std::uint64_t h = mix64(kChecksumSalt ^ static_cast<std::uint64_t>(payload));
  h = mix64(h ^ static_cast<std::uint64_t>(aux));
  h = mix64(h ^ static_cast<std::uint64_t>(seq));
  h = mix64(h ^ static_cast<std::uint64_t>(slot));
  return static_cast<std::int64_t>(h);
}

[[nodiscard]] std::int64_t ack_mac(std::int64_t seq, std::size_t slot) {
  return static_cast<std::int64_t>(
      mix64(kAckSalt ^ mix64(static_cast<std::uint64_t>(seq)) ^ static_cast<std::uint64_t>(slot)));
}

}  // namespace

ReliableChannel::ReliableChannel(const WeightedGraph& g, FaultModel* model, ReliableConfig cfg,
                                 congest::WireConfig wire)
    : CongestNetwork(g, wire),
      model_(model),
      cfg_(cfg),
      next_seq_(static_cast<std::size_t>(g.m()) * 2, 1),
      acked_seq_(static_cast<std::size_t>(g.m()) * 2, 0) {
  UMC_ASSERT(cfg_.max_attempts >= 1);
  UMC_ASSERT(cfg_.max_backoff_rounds >= 1);
  if (model_ != nullptr) attach_fault_injector(model_);
}

void ReliableChannel::end_round() {
  ++stats_.logical_rounds;
#if !defined(UMC_OBS_DISABLED)
  arq_metrics().logical_rounds.inc();
#endif
  // Fault-free compilation is the identity: exactly the base one-round
  // delivery, so p = 0 runs are bit-identical to the plain simulator.
  if (model_ == nullptr || model_->plan().trivial() || staged_count() == 0) {
    CongestNetwork::end_round();
    return;
  }
  UMC_OBS_SPAN_VAR_L(obs_logical, "arq/logical_round", "arq", stats_.logical_rounds);
  obs_logical.arg("staged", static_cast<std::int64_t>(staged_count()));

  const WeightedGraph& g = graph();
  const std::size_t num_slots = static_cast<std::size_t>(g.m()) * 2;

  // Journal this logical round's sends (sender-side stable storage): each
  // occupies its wire slot exclusively, so slot -> pending is one-to-one.
  struct Pending {
    congest::Message msg;
    std::int64_t seq = 0;
    bool acked = false;
  };
  std::vector<Pending> pending;
  std::vector<int> pending_at(num_slots, -1);
  materialize_staged(staged_scratch_);
  pending.reserve(staged_scratch_.size());
  for (const congest::Message& m : staged_scratch_) {
    const std::size_t slot = slot_of(g, m);
    pending_at[slot] = static_cast<int>(pending.size());
    pending.push_back(Pending{m, next_seq_[slot]++, false});
  }
  clear_staging();
  stats_.logical_messages += static_cast<std::int64_t>(pending.size());

  // Receiver-side assembly of the logical round (write-ahead journaled:
  // survives crash windows, which is why an acked message is never lost).
  std::vector<std::vector<congest::Message>> logical(static_cast<std::size_t>(g.n()));

  std::vector<char> data_seen(num_slots, 0);
  std::vector<std::int64_t> data_payload(num_slots, 0);
  std::vector<std::int64_t> data_aux(num_slots, 0);
  std::vector<char> ack_staged(num_slots, 0);

  std::size_t unacked = pending.size();
  for (int attempt = 0; unacked > 0; ++attempt) {
    UMC_ASSERT_MSG(attempt < cfg_.max_attempts,
                   "reliable delivery failed: max attempts exhausted");
    UMC_OBS_SPAN_VAR_L(obs_attempt, "arq/attempt", "arq", attempt);
    obs_attempt.arg("unacked", static_cast<std::int64_t>(unacked));
#if !defined(UMC_OBS_DISABLED)
    arq_metrics().attempts.inc();
#endif
    if (attempt > 0) {
      const std::int64_t backoff =
          std::min(std::int64_t{1} << std::min(attempt - 1, 30), cfg_.max_backoff_rounds);
      charge_idle(backoff);
      stats_.backoff_rounds += backoff;
      stats_.retransmissions += static_cast<std::int64_t>(unacked);
#if !defined(UMC_OBS_DISABLED)
      arq_metrics().backoff.inc(backoff);
      arq_metrics().retransmissions.inc(static_cast<std::int64_t>(unacked));
#endif
    }

    // --- DATA: retransmit every unacknowledged message.
    for (const Pending& p : pending)
      if (!p.acked) send(p.msg.from, p.msg.via, p.msg.payload, p.msg.aux);
    deliver_physical();
    ++stats_.physical_rounds;
    std::fill(data_seen.begin(), data_seen.end(), 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        const std::size_t slot = slot_of(g, m);
        data_seen[slot] = 1;
        data_payload[slot] = m.payload;
        data_aux[slot] = m.aux;
      }
    }

    // --- CTRL: checksum over (payload, aux, seq, slot).
    for (const Pending& p : pending) {
      if (p.acked) continue;
      const std::size_t slot = slot_of(g, p.msg);
      send(p.msg.from, p.msg.via, checksum(p.msg.payload, p.msg.aux, p.seq, slot), p.seq);
    }
    deliver_physical();
    ++stats_.physical_rounds;

    // Receivers: verify, accept-once by sequence number, stage ACKs
    // (duplicates re-acknowledged so a lost ACK cannot wedge the sender).
    struct Ack {
      NodeId from = kNoNode;
      EdgeId via = kNoEdge;
      std::int64_t mac = 0;
      std::int64_t seq = 0;
    };
    std::vector<Ack> acks;
    std::fill(ack_staged.begin(), ack_staged.end(), 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        const std::size_t slot = slot_of(g, m);
        if (!data_seen[slot]) continue;  // checksum with no data: ignore
        const std::int64_t seq = m.aux;
        if (m.payload != checksum(data_payload[slot], data_aux[slot], seq, slot))
          continue;  // corrupted DATA or CTRL: silence forces a retry
        if (seq > acked_seq_[slot]) {
          acked_seq_[slot] = seq;
          logical[static_cast<std::size_t>(v)].push_back(
              congest::Message{m.from, m.via, data_payload[slot], data_aux[slot]});
        }
        // One ACK per reverse slot per round, even if the wire duplicated
        // the CTRL message.
        const std::size_t rev = slot_for(g, v, m.via);
        if (!ack_staged[rev]) {
          ack_staged[rev] = 1;
          acks.push_back(Ack{v, m.via, ack_mac(seq, slot), seq});
        }
      }
    }

    // --- ACK: receiver -> sender over the reverse slot.
    for (const Ack& a : acks) send(a.from, a.via, a.mac, a.seq);
    deliver_physical();
    ++stats_.physical_rounds;
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        // An ACK reaches the original sender v; it acknowledges v's forward
        // slot on that edge.
        const std::size_t fwd = slot_for(g, v, m.via);
        const int idx = pending_at[fwd];
        if (idx < 0) continue;
        Pending& p = pending[static_cast<std::size_t>(idx)];
        if (p.acked || m.aux != p.seq) continue;
        if (m.payload != ack_mac(p.seq, fwd)) continue;  // corrupted ACK
        p.acked = true;
        --unacked;
      }
    }
  }

  // The logical round is fully delivered; expose the assembled inboxes
  // (and the matching slot read view — dedup guarantees one per slot).
  set_logical_delivery(std::move(logical));
}

}  // namespace umc::fault
