
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_exact_mincut.cpp" "tests/CMakeFiles/test_exact_mincut.dir/test_exact_mincut.cpp.o" "gcc" "tests/CMakeFiles/test_exact_mincut.dir/test_exact_mincut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umc_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_minoragg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_mincut_values.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
