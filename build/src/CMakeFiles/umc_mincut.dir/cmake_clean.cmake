file(REMOVE_RECURSE
  "CMakeFiles/umc_mincut.dir/mincut/exact_mincut.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/exact_mincut.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/interest.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/interest.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/one_respect.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/one_respect.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/path_to_path.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/path_to_path.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/star.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/star.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/subtree_instance.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/subtree_instance.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/tree_packing.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/tree_packing.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/two_respect.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/two_respect.cpp.o.d"
  "CMakeFiles/umc_mincut.dir/mincut/witness.cpp.o"
  "CMakeFiles/umc_mincut.dir/mincut/witness.cpp.o.d"
  "libumc_mincut.a"
  "libumc_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
