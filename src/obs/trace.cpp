#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace umc::obs {

namespace {

std::size_t read_ring_capacity() {
  constexpr std::size_t kDefault = std::size_t{1} << 14;
  constexpr std::size_t kMin = std::size_t{1} << 8;
  constexpr std::size_t kMax = std::size_t{1} << 22;
  const char* env = std::getenv("UMC_OBS_RING");
  if (env == nullptr || *env == '\0') return kDefault;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return kDefault;
  const auto cap = static_cast<std::size_t>(v);
  return cap < kMin ? kMin : (cap > kMax ? kMax : cap);
}

}  // namespace

Tracer& Tracer::global() {
  // Deliberately leaked: worker threads may touch their rings during
  // process teardown, after static destructors would have run.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::size_t Tracer::ring_capacity() {
  static const std::size_t cap = read_ring_capacity();
  return cap;
}

std::int64_t Tracer::now() const {
  const ClockFn fn = clock_fn_.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Only the (singleton) global tracer records, so one TLS slot suffices.
  // Buffers are owned by the tracer and outlive their threads; events of
  // exited threads stay exportable.
  static thread_local ThreadBuffer* tls = nullptr;
  if (tls == nullptr) {
    auto* buf = new ThreadBuffer();
    buf->ring.resize(ring_capacity());
    std::lock_guard<std::mutex> lock(registry_mu_);
    buf->tid = static_cast<std::int32_t>(buffers_.size());
    buffers_.push_back(buf);
    tls = buf;
  }
  return *tls;
}

std::int32_t Tracer::current_tid() { return local_buffer().tid; }

void Tracer::begin(ScopedSpan& span) {
  ThreadBuffer& buf = local_buffer();
  span.t_ = this;
  span.buf_ = &buf;
  span.seq_ = buf.seq++;
  span.depth_ = buf.depth++;
  span.t0_ = now();
}

void Tracer::end(ScopedSpan& span) {
  const std::int64_t t1 = now();
  ThreadBuffer& buf = *span.buf_;
  --buf.depth;
  const std::size_t at = buf.count.load(std::memory_order_relaxed);
  if (at >= buf.ring.size()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& ev = buf.ring[at];
  ev.name = span.name_;
  ev.cat = span.cat_;
  ev.t0_ns = span.t0_;
  ev.dur_ns = t1 - span.t0_;
  ev.logical = span.logical_;
  ev.seq = span.seq_;
  ev.depth = span.depth_;
  ev.tid = buf.tid;
  ev.args[0] = span.args_[0];
  ev.args[1] = span.args_[1];
  // Commit: a snapshot that acquires `count` sees a fully-written event.
  buf.count.store(at + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const ThreadBuffer* buf : buffers_) {
    const std::size_t n = buf->count.load(std::memory_order_acquire);
    // Events are committed in end order; sort each thread's stream back
    // into begin (seq) order so nesting reads parent-before-child.
    const std::size_t first = out.size();
    out.insert(out.end(), buf->ring.begin(),
               buf->ring.begin() + static_cast<std::ptrdiff_t>(n));
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  }
  return out;
}

std::int64_t Tracer::dropped() const {
  std::int64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const ThreadBuffer* buf : buffers_)
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (ThreadBuffer* buf : buffers_) {
    buf->count.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
}

}  // namespace umc::obs
