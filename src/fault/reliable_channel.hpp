#pragma once

// Reliable-delivery compilation for lossy CONGEST networks.
//
// ReliableChannel is a drop-in CongestNetwork whose `end_round` compiles
// one logical round of algorithm sends into a stop-and-wait ARQ exchange
// over the physical (faulty) wire:
//
//   attempt k:  DATA round   (payload, aux)          sender -> receiver
//               CTRL round   (checksum, seq)         sender -> receiver
//               ACK  round   (ack-mac, seq)          receiver -> sender
//               then bounded exponential backoff (idle rounds) and
//               retransmission of everything still unacknowledged.
//
// Receivers accept a message only when the CTRL checksum matches the DATA
// words (so bit-corruption looks like loss and is retried), deduplicate by
// per-slot sequence number (so duplicated wire traffic and re-sent
// already-accepted messages deliver once), and re-acknowledge duplicates
// (so a lost ACK cannot wedge the sender). All physical rounds and backoff
// idle rounds are charged to the inherited round counter — the E19
// experiment's "cost of reliability" is exactly this overhead.
//
// Recovery semantics: the per-slot ARQ state (unacked messages, sequence
// counters, accepted-seq watermarks, assembled logical inboxes) models each
// node's write-ahead journal on stable storage — a crash-stopped node stops
// sending and hearing (the FaultModel eats its wire traffic) but resumes
// retransmission and deduplication from the journal after restart, which is
// why delivery stays exactly-once across crash windows. Volatile per-round
// compute state is NOT covered; that is the checkpoint/rollback layer in
// congest/compiled_network.
//
// A null model or an all-zero FaultPlan short-circuits to the base
// single-round delivery: compiling a fault-free network is the identity, so
// at p = 0 outputs and round counts are bit-identical to the plain
// simulator (the E19 baseline row).

#include <cstdint>
#include <vector>

#include "congest/congest_net.hpp"
#include "fault/fault_model.hpp"

namespace umc::fault {

struct ReliableConfig {
  /// Delivery attempts per logical round before declaring the network
  /// unusable (throws invariant_error; p^64 is astronomically unlikely).
  int max_attempts = 64;
  /// Cap on the exponential backoff (idle rounds between attempts).
  std::int64_t max_backoff_rounds = 8;
};

struct ReliableStats {
  std::int64_t logical_rounds = 0;
  std::int64_t logical_messages = 0;
  std::int64_t physical_rounds = 0;   // DATA + CTRL + ACK rounds
  std::int64_t backoff_rounds = 0;    // idle rounds charged between attempts
  std::int64_t retransmissions = 0;   // per-message re-send count
};

class ReliableChannel final : public congest::CongestNetwork {
 public:
  /// `model` may be nullptr (pure pass-through). Not owned; must outlive
  /// the channel. The model is attached to the physical layer as the
  /// network's fault injector. `wire` selects the physical data path
  /// (slot-addressed fast wire by default).
  ReliableChannel(const WeightedGraph& g, FaultModel* model, ReliableConfig cfg = {},
                  congest::WireConfig wire = {});

  void end_round() override;

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }

 private:
  FaultModel* model_;
  ReliableConfig cfg_;
  std::vector<std::int64_t> next_seq_;   // per wire slot, sender journal
  std::vector<std::int64_t> acked_seq_;  // per wire slot, receiver journal
  std::vector<congest::Message> staged_scratch_;  // journal assembly buffer
  ReliableStats stats_;
};

}  // namespace umc::fault
