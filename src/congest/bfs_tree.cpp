#include "congest/bfs_tree.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace umc::congest {

BfsTree build_bfs_tree(CongestNetwork& net, NodeId root) {
  const WeightedGraph& g = net.graph();
  UMC_ASSERT(root >= 0 && root < g.n());
  const std::int64_t start = net.rounds();

  BfsTree t;
  t.root = root;
  t.parent.assign(static_cast<std::size_t>(g.n()), kNoNode);
  t.parent_edge.assign(static_cast<std::size_t>(g.n()), kNoEdge);
  t.depth.assign(static_cast<std::size_t>(g.n()), -1);
  t.children.assign(static_cast<std::size_t>(g.n()), {});
  t.depth[static_cast<std::size_t>(root)] = 0;

  std::vector<NodeId> frontier = {root};
  std::vector<char> cand_seen(static_cast<std::size_t>(g.n()), 0);
  std::vector<NodeId> cand;
  while (!frontier.empty()) {
    // Each frontier node announces itself over all incident edges.
    for (const NodeId v : frontier) {
      for (const AdjEntry& a : g.adj(v)) net.send(v, a.edge, t.depth[static_cast<std::size_t>(v)]);
    }
    // Only the frontier's undiscovered neighbors can join this round (no
    // other node has an occupied slot), so scan just those — sorted, to
    // reproduce the ascending-id discovery order of a full node sweep.
    cand.clear();
    for (const NodeId v : frontier) {
      for (const AdjEntry& a : g.adj(v)) {
        if (t.depth[static_cast<std::size_t>(a.to)] != -1) continue;
        if (cand_seen[static_cast<std::size_t>(a.to)]) continue;
        cand_seen[static_cast<std::size_t>(a.to)] = 1;
        cand.push_back(a.to);
      }
    }
    std::sort(cand.begin(), cand.end());
    net.end_round();
    std::vector<NodeId> next;
    for (const NodeId v : cand) {
      cand_seen[static_cast<std::size_t>(v)] = 0;
      // Join via the smallest-id announcing edge (deterministic). Slot
      // read: v's CSR row is scanned in ascending edge order elsewhere, but
      // adj order is not guaranteed sorted, so track the minimum explicitly.
      EdgeId best = kNoEdge;
      for (const AdjEntry& a : g.adj(v)) {
        if (!net.slot_has(net.slot_from(a.edge, a.to))) continue;
        if (best == kNoEdge || a.edge < best) best = a.edge;
      }
      if (best == kNoEdge) continue;
      const NodeId p = g.edge(best).other(v);
      t.parent[static_cast<std::size_t>(v)] = p;
      t.parent_edge[static_cast<std::size_t>(v)] = best;
      t.depth[static_cast<std::size_t>(v)] = t.depth[static_cast<std::size_t>(p)] + 1;
      next.push_back(v);
    }
    frontier = std::move(next);
  }

  for (NodeId v = 0; v < g.n(); ++v) {
    UMC_ASSERT_MSG(t.depth[static_cast<std::size_t>(v)] >= 0, "graph must be connected");
    t.height = std::max(t.height, t.depth[static_cast<std::size_t>(v)]);
    if (t.parent[static_cast<std::size_t>(v)] != kNoNode)
      t.children[static_cast<std::size_t>(t.parent[static_cast<std::size_t>(v)])].push_back(v);
  }
  t.rounds_used = net.rounds() - start;
  return t;
}

}  // namespace umc::congest
