#include "mincut/packing_cache.hpp"

#include <utility>

#include "util/math.hpp"

namespace umc::mincut {

PackingCache& PackingCache::global() {
  static PackingCache cache;
  return cache;
}

std::shared_ptr<const PackingEntry> PackingCache::lookup(const PackingKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PackingCache::insert(const PackingKey& key, std::shared_ptr<const PackingEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  evict_locked();
}

void PackingCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

void PackingCache::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
  evict_locked();
}

std::size_t PackingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t PackingCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t PackingCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void PackingCache::evict_locked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::uint64_t graph_fingerprint(const WeightedGraph& g) {
  // Sequentially chained mix64 over (n, m, u, v, w) — order-sensitive, so
  // edge-id renumbering (which changes packing output) changes the key too.
  std::uint64_t h = 0x756d635f7061636bULL;  // "umc_pack"
  h = mix64(h ^ static_cast<std::uint64_t>(g.n()));
  h = mix64(h ^ static_cast<std::uint64_t>(g.m()));
  for (const Edge& e : g.edges()) {
    h = mix64(h ^ static_cast<std::uint64_t>(e.u));
    h = mix64(h ^ static_cast<std::uint64_t>(e.v));
    h = mix64(h ^ static_cast<std::uint64_t>(e.w));
  }
  return h;
}

}  // namespace umc::mincut
