#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "util/assert.hpp"

namespace umc {

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::configured_threads() {
  static const int value = [] {
    int t = 0;
    if (const char* env = std::getenv("UMC_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) t = static_cast<int>(parsed);
    }
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    if (t <= 0) t = 1;
    return t > 64 ? 64 : t;
  }();
  return value;
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int want) {
  // Caller holds mu_.
  while (static_cast<int>(threads_.size()) < want) {
    const int id = static_cast<int>(threads_.size());
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

void ThreadPool::drain(const std::function<void(std::size_t)>& job) {
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= total_) return;
      i = next_++;
    }
    job(i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || (generation_ != seen && id < allowed_workers_); });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    drain(*job);
  }
}

void ThreadPool::run(std::size_t count, int width,
                     const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (width <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    UMC_ASSERT_MSG(job_ == nullptr, "ThreadPool::run must not be nested");
    ensure_workers(width - 1);
    job_ = &job;
    next_ = 0;
    total_ = count;
    remaining_ = count;
    allowed_workers_ = width - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    allowed_workers_ = 0;
  }
}

}  // namespace umc
