# Empty compiler generated dependencies file for umc_mincut_values.
# This may be replaced when dependencies are built.
