#pragma once

// Exact weighted min-cut (Theorem 1): tree packing (Theorem 12) x the
// deterministic 2-respecting min-cut (Theorem 40). A poly(log n)-round
// Minor-Aggregation algorithm, compiled to CONGEST via Theorem 17:
// Õ(D+√n) rounds on general graphs (recovering Dory et al. [7]) and Õ(D)
// on excluded-minor graphs — universally optimal modulo shortcut
// construction.

#include "mincut/instance.hpp"
#include "mincut/tree_packing.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"

namespace umc::mincut {

struct ExactMinCutResult {
  Weight value = kInfWeight;
  /// Defining tree edge(s) of the winning 2-respecting cut, as edge ids of
  /// the input graph (f == kNoEdge for a 1-respecting winner).
  EdgeId e = kNoEdge;
  EdgeId f = kNoEdge;
  /// Index of the packing tree the winner 2-respects.
  int winning_tree = -1;
  int num_trees = 0;
};

/// Requires a connected graph with n >= 2. Randomness is used only by the
/// tree packing; the 2-respecting solver is deterministic.
[[nodiscard]] ExactMinCutResult exact_mincut(const WeightedGraph& g, Rng& rng,
                                             minoragg::Ledger& ledger,
                                             const PackingConfig& config = {});

}  // namespace umc::mincut
