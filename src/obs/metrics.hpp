#pragma once

// Typed metrics registry: named counters, gauges, and histograms with
// label sets — the structured successor of the Ledger's stringly counter
// map as the repo's PUBLIC metrics surface (the Ledger keeps doing the
// model-level round accounting; obs/ledger_bridge.hpp copies a finished
// ledger into this registry, translating the "max_"-prefix convention into
// gauge/counter kinds).
//
// Semantics:
//   * Counter   — monotonically increasing int64 (events, rounds, bytes);
//   * Gauge     — last-set or running-max int64 (depths, widths, sizes);
//   * Histogram — fixed upper-bound buckets + sum + count (distributions:
//     per-round message counts, slot utilization, chunk sizes).
//
// Naming scheme (enforced by assertion): `umc_<subsystem>_<what>[_total]`,
// lowercase [a-z0-9_], Prometheus-compatible as-is. Labels distinguish
// instances of one family ({"sim","congest"}, {"phase","consensus"}).
//
// Thread safety: registration takes a mutex and returns a stable reference
// (instances are never moved or freed); updates are relaxed atomics, safe
// from any thread and cheap enough for per-round call sites. Hot paths
// cache the returned reference in a function-local static so the name
// lookup happens once per process.
//
// Exporters (obs/export.hpp) render a registry as Prometheus text
// exposition or a flat stdout table, in deterministic (name, labels) order.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace umc::obs {

/// Label set: (key, value) pairs. Order-insensitive (canonicalized by the
/// registry); keep them few and low-cardinality.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::int64_t v = 1) {
    UMC_ASSERT(v >= 0);
    v_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raise to at least `v` (running maximum; the "max_" ledger kind).
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; an implicit
  /// +Inf bucket is always appended.
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf slot.
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;
  [[nodiscard]] std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> count_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  /// The process registry the instrumentation records into. Tests build
  /// private instances for golden-file isolation.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register. The returned reference is stable for the registry's
  /// lifetime; re-registration with the same (name, labels) returns the
  /// same instance. A name registered as one type asserts on use as
  /// another. `help` is kept from the first registration that supplies it.
  Counter& counter(std::string_view name, const Labels& labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {}, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds,
                       const Labels& labels = {}, std::string_view help = {});

  /// One labeled instance of a family, for exporters.
  struct Instance {
    Labels labels;  // canonical (sorted by key)
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Instance> instances;  // sorted by rendered label string
  };

  /// Deterministic snapshot of the registry shape (metric pointers remain
  /// live; values are read through them at render time).
  [[nodiscard]] std::vector<Family> families() const;

 private:
  struct Entry {
    MetricType type;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_insert(std::string_view name, const Labels& labels, std::string_view help,
                        MetricType type);

  mutable std::mutex mu_;
  // name -> label-key -> entry; both maps ordered for deterministic export.
  std::map<std::string, std::map<std::string, Entry>, std::less<>> entries_;
};

}  // namespace umc::obs
