#include "fault/sweep.hpp"

#include <iomanip>
#include <map>
#include <sstream>
#include <utility>

#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "mincut/witness.hpp"
#include "obs/trace.hpp"
#include "tree/rooted_tree.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::fault {

namespace {

struct NamedGraph {
  std::string name;
  WeightedGraph g;
  Weight oracle = 0;
};

/// Small families with small λ (few packing iterations), one per topology
/// class the paper's bounds distinguish: path (high diameter), planar grid,
/// dense random, and a bridged pair of cliques (unique sparse cut).
std::vector<NamedGraph> make_generators(const SweepConfig& cfg) {
  std::vector<NamedGraph> out;
  const auto add = [&](std::string name, WeightedGraph g) {
    NamedGraph ng{std::move(name), std::move(g), 0};
    ng.oracle = baseline::stoer_wagner(ng.g).value;
    out.push_back(std::move(ng));
  };
  Rng rng(mix64(cfg.seed ^ 0x67656eULL));
  {
    WeightedGraph g = path_graph(cfg.extended ? 48 : 24);
    randomize_weights(g, 1, 4, rng);
    add("path", std::move(g));
  }
  add("grid", grid_graph(cfg.extended ? 8 : 5, cfg.extended ? 6 : 5));
  {
    WeightedGraph g = erdos_renyi_connected(cfg.extended ? 28 : 18, 0.25, rng);
    randomize_weights(g, 1, 3, rng);
    add("erdos-renyi", std::move(g));
  }
  add("dumbbell", dumbbell(cfg.extended ? 8 : 6, 3));
  if (cfg.extended) {
    WeightedGraph g = ring_expander(32, 2, rng);
    add("ring-expander", std::move(g));
  }
  return out;
}

struct NamedPlan {
  std::string name;
  FaultPlan plan;
};

/// drop / dup / corrupt / crash at the ISSUE's p grid. The standard matrix
/// keeps one p per non-drop kind plus the full drop ladder (8 plans); the
/// extended matrix runs every kind at every p (14 plans).
std::vector<NamedPlan> make_plans(const SweepConfig& cfg) {
  std::vector<NamedPlan> out;
  const auto add = [&](std::string name, FaultPlan p) {
    p.seed = mix64(cfg.seed ^ mix64(out.size() + 1));
    out.push_back({std::move(name), p});
  };
  add("clean", {});
  const std::vector<double> grid = {0.01, 0.1, 0.3};
  for (const double p : grid) {
    FaultPlan f;
    f.drop_p = p;
    add("drop=" + std::to_string(p).substr(0, 4), f);
  }
  const std::vector<double> rest = cfg.extended ? grid : std::vector<double>{0.1};
  for (const double p : rest) {
    FaultPlan f;
    f.dup_p = p;
    add("dup=" + std::to_string(p).substr(0, 4), f);
    f = {};
    f.corrupt_p = p;
    add("corrupt=" + std::to_string(p).substr(0, 4), f);
  }
  for (const double p : cfg.extended ? grid : std::vector<double>{0.1}) {
    FaultPlan f;
    f.crash_p = p;
    f.crash_down_rounds = 2;
    add("crash=" + std::to_string(p).substr(0, 4), f);
  }
  {
    FaultPlan f;
    f.drop_p = 0.1;
    f.dup_p = 0.05;
    f.corrupt_p = 0.05;
    f.crash_p = 0.05;
    f.crash_down_rounds = 2;
    add("mixed", f);
  }
  return out;
}

/// Sweep-side audit, independent of the supervisor's own certification:
/// exact tiers must carry a winning tree whose witness re-sums (checked via
/// the guard machinery inside the supervisor — here we re-sum the reported
/// Karger–Stein side ourselves); degraded answers must be valid cuts.
void audit(const WeightedGraph& g, const SolveReport& report, SweepOutcome& out) {
  out.match = report.value == out.oracle;
  out.witness_valid = false;
  if (report.tier == SolveTier::kKargerStein) {
    out.witness_valid = !report.witness_side.empty() &&
                        static_cast<NodeId>(report.witness_side.size()) < g.n() &&
                        resummed_cut_value(g, report.witness_side) == report.value;
  } else {
    // Exact tiers and the gather baseline answer with exact algorithms; the
    // value itself is the witness and must equal the oracle.
    out.witness_valid = out.match;
  }
  // A valid cut is never below the min cut; below-oracle values are
  // corruption no matter what the report claims.
  const bool below = report.value < out.oracle;
  const bool flagged = report.degraded() && report.certified && out.witness_valid;
  out.silent_wrong = below || (!out.match && !flagged);
}

}  // namespace

std::string SweepSummary::table() const {
  // plan -> tier -> hits, plus a mismatch-flagged column.
  std::map<std::string, std::array<int, 4>> by_plan;
  std::map<std::string, int> flagged;
  for (const SweepOutcome& o : outcomes) {
    by_plan[o.plan][static_cast<std::size_t>(o.tier)] += 1;
    if (!o.match) flagged[o.plan] += 1;
  }
  std::ostringstream os;
  os << std::left << std::setw(14) << "plan" << std::right << std::setw(7) << "exact"
     << std::setw(8) << "replay" << std::setw(8) << "karger" << std::setw(8) << "gather"
     << std::setw(10) << "degraded" << '\n';
  for (const auto& [plan, hits] : by_plan) {
    os << std::left << std::setw(14) << plan << std::right << std::setw(7) << hits[0]
       << std::setw(8) << hits[1] << std::setw(8) << hits[2] << std::setw(8) << hits[3]
       << std::setw(10) << flagged[plan] << '\n';
  }
  os << "configs=" << configs << " matches=" << oracle_matches
     << " degraded_flagged=" << degraded_flagged << " silent_wrong=" << silent_wrong << '\n';
  return os.str();
}

std::string SweepSummary::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"fault_sweep/v1\",\"configs\":" << configs
     << ",\"oracle_matches\":" << oracle_matches << ",\"degraded_flagged\":" << degraded_flagged
     << ",\"silent_wrong\":" << silent_wrong << ",\"tier_hits\":[" << tier_hits[0] << ','
     << tier_hits[1] << ',' << tier_hits[2] << ',' << tier_hits[3]
     << "],\"total_retries\":" << total_retries << ",\"total_tier_falls\":" << total_tier_falls
     << ",\"total_checkpoint_replays\":" << total_checkpoint_replays << ",\"outcomes\":[";
  bool first = true;
  for (const SweepOutcome& o : outcomes) {
    if (!first) os << ',';
    first = false;
    os << "{\"generator\":\"" << o.generator << "\",\"plan\":\"" << o.plan
       << "\",\"entry_tier\":\"" << to_string(o.entry_tier) << "\",\"tier\":\""
       << to_string(o.tier) << "\",\"oracle\":" << o.oracle << ",\"value\":" << o.value
       << ",\"certified\":" << (o.certified ? "true" : "false")
       << ",\"match\":" << (o.match ? "true" : "false")
       << ",\"witness_valid\":" << (o.witness_valid ? "true" : "false")
       << ",\"silent_wrong\":" << (o.silent_wrong ? "true" : "false")
       << ",\"retries\":" << o.retries << ",\"tier_falls\":" << o.tier_falls
       << ",\"checkpoint_replays\":" << o.checkpoint_replays << ",\"rounds\":" << o.rounds
       << "}";
  }
  os << "]}";
  return os.str();
}

SweepSummary run_fault_sweep(const SweepConfig& cfg) {
  UMC_OBS_SPAN_L("fault/sweep", "fault", cfg.extended ? 1 : 0);
  SweepSummary summary;
  const std::vector<NamedGraph> graphs = make_generators(cfg);
  const std::vector<NamedPlan> plans = make_plans(cfg);
  const std::array<SolveTier, 3> tiers = {SolveTier::kExact, SolveTier::kKargerStein,
                                          SolveTier::kGatherBaseline};

  for (const NamedGraph& ng : graphs) {
    for (const NamedPlan& np : plans) {
      for (const SolveTier entry : tiers) {
        SupervisorConfig sc;
        sc.seed = mix64(cfg.seed ^ mix64(np.plan.seed));
        sc.num_threads = cfg.num_threads;
        sc.entry_tier = entry;
        // Crash plans fire several pipeline crashes per solve; give the
        // replay loop room so mid-packing windows recover via checkpoint
        // replay instead of degrading (heavy plans still exhaust it).
        sc.max_retries = 12;
        // The preflight proves MESSAGE transport viability (drop / dup /
        // corrupt); crash faults are the checkpoint layer's to absorb, and
        // are injected into the pipeline through crash_plan_hook below — an
        // unbounded crash schedule would wedge the preflight and mask the
        // replay path the sweep exists to exercise.
        FaultPlan preflight = np.plan;
        preflight.crash_p = 0.0;
        sc.preflight_plan = preflight.trivial() ? nullptr : &preflight;
        const SolveSupervisor sup(sc);
        const SolveReport report = sup.solve(ng.g, crash_plan_hook(np.plan));

        SweepOutcome out;
        out.generator = ng.name;
        out.plan = np.name;
        out.entry_tier = entry;
        out.tier = report.tier;
        out.oracle = ng.oracle;
        out.value = report.value;
        out.certified = report.certified;
        out.retries = report.retries;
        out.tier_falls = report.tier_falls;
        out.checkpoint_replays = report.checkpoint_replays;
        out.rounds = report.rounds;
        out.detail = report.reason;
        audit(ng.g, report, out);

        summary.configs += 1;
        summary.oracle_matches += out.match ? 1 : 0;
        summary.silent_wrong += out.silent_wrong ? 1 : 0;
        summary.degraded_flagged += (!out.match && !out.silent_wrong) ? 1 : 0;
        summary.tier_hits[static_cast<std::size_t>(report.tier)] += 1;
        summary.total_retries += report.retries;
        summary.total_tier_falls += report.tier_falls;
        summary.total_checkpoint_replays += report.checkpoint_replays;
        summary.outcomes.push_back(std::move(out));
      }
    }
  }
  return summary;
}

}  // namespace umc::fault
