# Empty compiler generated dependencies file for test_path_to_path.
# This may be replaced when dependencies are built.
