#pragma once

// Recoverable errors for the untrusted ingestion path.
//
// UMC_ASSERT (util/assert.hpp) guards MODEL invariants — violations are
// library bugs and throw. User input (graph files, CLI flags) is not an
// invariant: malformed input is an expected runtime condition and must
// surface as a value the caller can inspect, report, and recover from.
// Expected<T> is the minimal expected-style result type the ingestion
// layers (graph/io, examples/mincut_cli) return instead of aborting.

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace umc {

enum class ErrorCode {
  kParse,     // token is not a number / line is structurally malformed
  kRange,     // value parsed but violates a documented bound
  kOverflow,  // value does not fit the target integer type
  kIo,        // file cannot be opened / read
  kUsage,     // bad command-line invocation
};

[[nodiscard]] inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kRange: return "range";
    case ErrorCode::kOverflow: return "overflow";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kUsage: return "usage";
  }
  return "?";
}

struct Error {
  ErrorCode code = ErrorCode::kParse;
  std::string message;
  /// 1-based input line for parse/range errors; 0 when not applicable.
  int line = 0;

  [[nodiscard]] std::string to_string() const {
    std::string s = ::umc::to_string(code);
    s += " error";
    if (line > 0) {
      s += " at line ";
      s += std::to_string(line);
    }
    s += ": ";
    s += message;
    return s;
  }
};

/// Minimal expected-style result: holds either a T or an Error. Accessing
/// the wrong alternative is a programming error (UMC_ASSERT).
template <typename T>
class Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : v_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(v_); }
  [[nodiscard]] explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() {
    UMC_ASSERT_MSG(has_value(), "Expected accessed without a value");
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const {
    UMC_ASSERT_MSG(has_value(), "Expected accessed without a value");
    return std::get<T>(v_);
  }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] const Error& error() const {
    UMC_ASSERT_MSG(!has_value(), "Expected::error() on a value");
    return std::get<Error>(v_);
  }

  /// Converts the recoverable error into the throwing convention of the
  /// trusted layers (used by the legacy read_edge_list entry points).
  T&& value_or_throw() && {
    if (!has_value()) throw invariant_error(error().to_string());
    return std::move(std::get<T>(v_));
  }

 private:
  std::variant<T, Error> v_;
};

}  // namespace umc
