file(REMOVE_RECURSE
  "CMakeFiles/umc_sketch.dir/sketch/misra_gries.cpp.o"
  "CMakeFiles/umc_sketch.dir/sketch/misra_gries.cpp.o.d"
  "libumc_sketch.a"
  "libumc_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
