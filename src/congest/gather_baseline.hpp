#pragma once

// Naive CONGEST baseline: ship the entire graph to a root over a BFS tree
// (one edge descriptor per tree-edge per round, greedy pipelining) and solve
// min-cut centrally there. Θ(D + m) rounds — the strawman every sublinear
// algorithm in the paper's Section 1 is compared against; experiment E11
// measures the crossover against the shortcut-compiled algorithm.

#include <cstdint>

#include "graph/graph.hpp"

namespace umc::congest {

struct GatherBaselineResult {
  std::int64_t rounds_used = 0;   // BFS construction + pipelined gather
  Weight min_cut_value = 0;       // computed locally at the root
};

/// Requires a connected graph with n >= 2.
[[nodiscard]] GatherBaselineResult gather_exact_mincut(const WeightedGraph& g, NodeId root);

}  // namespace umc::congest
