file(REMOVE_RECURSE
  "CMakeFiles/bench_general_mincut.dir/bench_general_mincut.cpp.o"
  "CMakeFiles/bench_general_mincut.dir/bench_general_mincut.cpp.o.d"
  "bench_general_mincut"
  "bench_general_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
