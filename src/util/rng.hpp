#pragma once

// Deterministic, seedable pseudo-random generator (xoshiro256**).
//
// Experiments must be bit-reproducible across runs and platforms, so the
// library never uses std::random_device or unspecified std:: distribution
// implementations; integer draws below are fully specified.

#include <array>
#include <cstdint>
#include <vector>

namespace umc {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Snapshot of the full generator state. Two Rngs with equal states
  /// produce identical draw sequences — the PackingCache keys cached
  /// packings on the entry state and fast-forwards a replaying generator to
  /// the stored exit state, so a cache hit is indistinguishable from a
  /// recompute to any downstream consumer of the generator.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const State& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<std::size_t>(i)];
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). bound must be > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double next_real();

  /// Bernoulli(p) draw.
  bool next_bool(double p = 0.5);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Independent child generator (for parallel deterministic streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace umc
