// Experiment E13 (Example 8): the deterministic Misra-Gries heavy-hitter
// aggregation operator — merge throughput and the (1)/(2) guarantee rates
// measured over adversarial streams.

#include <benchmark/benchmark.h>

#include <map>

#include "sketch/misra_gries.hpp"
#include "util/rng.hpp"

namespace umc {
namespace {

void BM_SketchAddThroughput(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<std::pair<std::uint64_t, Weight>> stream;
  for (int i = 0; i < 100000; ++i)
    stream.emplace_back(rng.next_below(1000), rng.next_in(1, 50));
  for (auto _ : state) {
    MisraGries s(capacity);
    for (const auto& [k, w] : stream) s.add(k, w);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(stream.size()));
  state.counters["capacity"] = capacity;
}

void BM_SketchMergeTreeAndGuarantees(benchmark::State& state) {
  // Merge 256 leaf sketches in a binary tree (the shape a subtree-sum fold
  // produces) and verify the Example 8 guarantees at the root.
  const int capacity = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<MisraGries> leaves(256, MisraGries(capacity));
  std::map<std::uint64_t, Weight> truth;
  Weight total = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.next_bool(0.5) ? rng.next_below(3) : 10 + rng.next_below(500);
    const Weight w = rng.next_in(1, 9);
    leaves[static_cast<std::size_t>(rng.next_below(256))].add(key, w);
    truth[key] += w;
    total += w;
  }
  double include_ok = 1.0, exclude_ok = 1.0;
  for (auto _ : state) {
    std::vector<MisraGries> level = leaves;
    while (level.size() > 1) {
      std::vector<MisraGries> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2)
        next.push_back(MisraGries::merge(level[i], level[i + 1]));
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    const auto hh = level.front().heavy_hitters();
    for (const auto& [key, f] : truth) {
      const bool in = std::find(hh.begin(), hh.end(), key) != hh.end();
      if (f * capacity > 2 * total && !in) include_ok = 0.0;  // guarantee (1)
      if (f * capacity <= total && in) exclude_ok = 0.0;      // guarantee (2)
    }
    benchmark::DoNotOptimize(hh);
  }
  state.counters["capacity"] = capacity;
  state.counters["guarantee1_holds"] = include_ok;
  state.counters["guarantee2_holds"] = exclude_ok;
}

BENCHMARK(BM_SketchAddThroughput)->Arg(4)->Arg(8)->Arg(32);
BENCHMARK(BM_SketchMergeTreeAndGuarantees)->Arg(4)->Arg(5)->Arg(8)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
