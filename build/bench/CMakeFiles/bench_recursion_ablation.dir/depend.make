# Empty dependencies file for bench_recursion_ablation.
# This may be replaced when dependencies are built.
