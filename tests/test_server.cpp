// Tests for the min-cut service (src/server): protocol framing and parsing
// as the untrusted path (truncated / oversized / corrupt frames surface
// Expected errors and never kill the engine), the weighted-fair scheduler's
// starvation bound and admission control, session lifecycle (LRU eviction
// keeps counters consistent), graceful-shutdown rejections, and the serve
// loop end to end over in-memory streams. Registered twice in CTest: plain,
// and as test_server_threads8 with the pool forced to 8 workers (the TSAN /
// ASAN job for the concurrent request plane).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "server/engine.hpp"
#include "server/protocol.hpp"
#include "server/scheduler.hpp"
#include "util/rng.hpp"

namespace umc::server {
namespace {

// ---- wire helpers ----------------------------------------------------------

/// Length-prefixes one payload the way write_frame does.
std::string frame(std::string_view payload) {
  std::ostringstream os;
  write_frame(os, payload);
  return os.str();
}

/// Splits a serve() output stream back into response payloads.
std::vector<Response> read_responses(const std::string& wire) {
  std::istringstream is(wire);
  std::vector<Response> out;
  std::string payload;
  Error err{};
  while (read_frame(is, payload, err) == FrameStatus::kFrame) {
    Expected<Response> parsed = parse_response(payload);
    EXPECT_TRUE(parsed.has_value()) << payload;
    if (parsed) out.push_back(std::move(parsed.value()));
  }
  return out;
}

/// Responses keyed by correlation id (cross-tenant completion order is
/// unspecified).
std::map<std::int64_t, Response> by_id(const std::string& wire) {
  std::map<std::int64_t, Response> out;
  for (Response& r : read_responses(wire)) out.emplace(r.id, std::move(r));
  return out;
}

/// A small connected weighted graph as LOAD body text.
std::string small_graph_body() {
  return "4\n0 1 3\n1 2 1\n2 3 5\n0 3 2\n1 3 4\n";
}

Weight oracle_of_body(const std::string& body) {
  std::istringstream is(body);
  Expected<WeightedGraph> g = try_read_edge_list(is);
  EXPECT_TRUE(g.has_value());
  return baseline::stoer_wagner(g.value()).value;
}

// ---- protocol: parsing is the untrusted path -------------------------------

TEST(ServerProtocol, RequestRoundTripsThroughSerialize) {
  Request req;
  req.op = Op::kSolve;
  req.tenant = "alice";
  req.id = 42;
  req.has_seed = true;
  req.seed = 777;
  req.max_trees = 9;
  const Expected<Request> back = parse_request(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().op, Op::kSolve);
  EXPECT_EQ(back.value().tenant, "alice");
  EXPECT_EQ(back.value().id, 42);
  EXPECT_TRUE(back.value().has_seed);
  EXPECT_EQ(back.value().seed, 777u);
  EXPECT_EQ(back.value().max_trees, 9);
}

TEST(ServerProtocol, MalformedRequestsAreErrorsNotCrashes) {
  const char* bad[] = {
      "",                          // empty payload
      "FROBNICATE t0\n",           // unknown op
      "LOAD\n",                    // missing tenant
      "LOAD bad tenant!\n",        // invalid tenant charset
      "MUTATE t0\n",               // missing edge and weight
      "MUTATE t0 x y\n",           // non-numeric edge
      "SOLVE t0 seed=\n",          // empty value
      "SOLVE t0 trees=-3\n",       // out of range
      "EVICT\n",                   // missing tenant
      "STATS prom extra junk\n",   // trailing garbage
  };
  for (const char* payload : bad) {
    const Expected<Request> parsed = parse_request(payload);
    EXPECT_FALSE(parsed.has_value()) << "accepted: " << payload;
  }
}

TEST(ServerProtocol, FrameRoundTripAndCleanEof) {
  std::stringstream wire;
  write_frame(wire, "SOLVE t0 id=1\n");
  write_frame(wire, "");
  std::string payload;
  Error err{};
  EXPECT_EQ(read_frame(wire, payload, err), FrameStatus::kFrame);
  EXPECT_EQ(payload, "SOLVE t0 id=1\n");
  EXPECT_EQ(read_frame(wire, payload, err), FrameStatus::kFrame);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(read_frame(wire, payload, err), FrameStatus::kEof);
}

TEST(ServerProtocol, TruncatedLengthIsFramingError) {
  std::istringstream wire(std::string("\x05\x00", 2));  // half a length prefix
  std::string payload;
  Error err{};
  EXPECT_EQ(read_frame(wire, payload, err), FrameStatus::kError);
}

TEST(ServerProtocol, TruncatedPayloadIsFramingError) {
  std::string bytes = frame("SOLVE t0\n");
  bytes.resize(bytes.size() - 3);  // short read inside the payload
  std::istringstream wire(bytes);
  std::string payload;
  Error err{};
  EXPECT_EQ(read_frame(wire, payload, err), FrameStatus::kError);
}

TEST(ServerProtocol, OversizedFrameIsFramingErrorNotAllocation) {
  // 0xFFFFFFFF length prefix: must be rejected on the prefix alone.
  std::istringstream wire(std::string("\xff\xff\xff\xff", 4));
  std::string payload;
  Error err{};
  EXPECT_EQ(read_frame(wire, payload, err), FrameStatus::kError);
}

// ---- scheduler: fairness and admission -------------------------------------

TEST(FairScheduler, FloodingTenantCannotStarveAnother) {
  SchedulerConfig cfg;
  cfg.width = 1;  // deterministic dispatch order
  cfg.max_queued_global = 1024;
  cfg.max_queued_per_tenant = 512;
  cfg.start_paused = true;
  FairScheduler sched(cfg);

  std::vector<std::string> order;
  const auto job = [&order](const char* who) {
    return [&order, who] { order.emplace_back(who); };
  };
  // The flood lands first, the victim's handful afterwards.
  for (int i = 0; i < 40; ++i) ASSERT_EQ(sched.submit("flood", job("flood")), Admit::kAdmitted);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(sched.submit("victim", job("victim")), Admit::kAdmitted);

  sched.close();  // paused backlog still drains
  sched.run();

  ASSERT_EQ(order.size(), 45u);
  // Stride scheduling with equal weights alternates, so the victim's k-th
  // job is dispatched by position 2k+2 — a bounded latency ratio, not
  // FIFO-behind-the-flood.
  int seen_victim = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (order[pos] != "victim") continue;
    ++seen_victim;
    EXPECT_LE(pos, static_cast<std::size_t>(2 * seen_victim))
        << "victim job " << seen_victim << " starved until dispatch " << pos;
  }
  EXPECT_EQ(seen_victim, 5);
}

TEST(FairScheduler, WeightsScaleServiceRate) {
  SchedulerConfig cfg;
  cfg.width = 1;
  cfg.start_paused = true;
  FairScheduler sched(cfg);
  sched.set_weight("heavy", 2);
  sched.set_weight("light", 1);

  // 2:1 backlog so the weight-2 tenant never runs dry mid-drain (which
  // would hand the tail to the light tenant and void the ratio).
  std::vector<std::string> order;
  for (int i = 0; i < 24; ++i)
    ASSERT_EQ(sched.submit("heavy", [&order] { order.emplace_back("heavy"); }),
              Admit::kAdmitted);
  for (int i = 0; i < 12; ++i)
    ASSERT_EQ(sched.submit("light", [&order] { order.emplace_back("light"); }),
              Admit::kAdmitted);
  sched.close();
  sched.run();

  // In any dispatch prefix the weight-2 tenant has ~2x the weight-1
  // tenant's completions (within one stride quantum of slack).
  int heavy = 0;
  int light = 0;
  for (const std::string& who : order) {
    ++(who == "heavy" ? heavy : light);
    EXPECT_LE(light, heavy / 2 + 2) << "after " << (heavy + light) << " dispatches";
  }
}

TEST(FairScheduler, AdmissionControlRejectsStructurally) {
  SchedulerConfig cfg;
  cfg.width = 1;
  cfg.max_queued_global = 4;
  cfg.max_queued_per_tenant = 2;
  cfg.start_paused = true;
  FairScheduler sched(cfg);

  EXPECT_EQ(sched.submit("a", [] {}), Admit::kAdmitted);
  EXPECT_EQ(sched.submit("a", [] {}), Admit::kAdmitted);
  EXPECT_EQ(sched.submit("a", [] {}), Admit::kTenantOverload);  // per-tenant cap
  EXPECT_EQ(sched.submit("b", [] {}), Admit::kAdmitted);
  EXPECT_EQ(sched.submit("c", [] {}), Admit::kAdmitted);
  EXPECT_EQ(sched.submit("d", [] {}), Admit::kQueueFull);  // global cap

  sched.close();
  EXPECT_EQ(sched.submit("a", [] {}), Admit::kShuttingDown);
  sched.run();

  const FairScheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.dispatched, 4);
  EXPECT_EQ(stats.rejected_tenant_overload, 1);
  EXPECT_EQ(stats.rejected_queue_full, 1);
  EXPECT_EQ(stats.rejected_shutting_down, 1);
}

// ---- engine: session lifecycle ---------------------------------------------

TEST(Engine, LoadMutateSolveLifecycle) {
  Engine engine;
  Request load;
  load.op = Op::kLoad;
  load.tenant = "t0";
  load.id = 1;
  load.body = small_graph_body();
  const Response r1 = engine.execute(load);
  ASSERT_TRUE(r1.ok) << r1.serialize();
  EXPECT_EQ(r1.field_int("n"), 4);
  EXPECT_EQ(r1.field_int("m"), 5);

  Request solve;
  solve.op = Op::kSolve;
  solve.tenant = "t0";
  solve.id = 2;
  solve.has_seed = true;
  solve.seed = 7;
  const Response r2 = engine.execute(solve);
  ASSERT_TRUE(r2.ok) << r2.serialize();
  EXPECT_EQ(r2.field_int("value"), oracle_of_body(small_graph_body()));
  EXPECT_EQ(r2.fields.at("tier"), "exact");
  EXPECT_EQ(r2.field_int("certified"), 1);

  // Same seed, same graph: the session packing cache answers the repack.
  const Response r3 = engine.execute(solve);
  ASSERT_TRUE(r3.ok);
  EXPECT_EQ(r3.field_int("value"), r2.field_int("value"));
  EXPECT_GT(r3.field_int("cache_hits"), 0);

  // Raising one crossing edge's weight changes the instance; the solve must
  // track it (fingerprint invalidation, not stale cache).
  Request mutate;
  mutate.op = Op::kMutate;
  mutate.tenant = "t0";
  mutate.id = 4;
  mutate.edge = 1;  // {1,2} w=1, the cheapest cut's only crossing edge
  mutate.new_weight = 100;
  ASSERT_TRUE(engine.execute(mutate).ok);
  const Response r4 = engine.execute(solve);
  ASSERT_TRUE(r4.ok);
  std::istringstream is(small_graph_body());
  WeightedGraph mutated = try_read_edge_list(is).value();
  mutated.set_weight(1, 100);
  EXPECT_EQ(r4.field_int("value"), baseline::stoer_wagner(mutated).value);
}

TEST(Engine, StructuredErrorsForBadRequests) {
  Engine engine;
  Request solve;
  solve.op = Op::kSolve;
  solve.tenant = "ghost";
  solve.id = 1;
  const Response r1 = engine.execute(solve);
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.error_code, to_string(ErrCode::kNoSession));

  Request load;
  load.op = Op::kLoad;
  load.tenant = "t0";
  load.id = 2;
  load.body = "2\n0 1 5\n";
  ASSERT_TRUE(engine.execute(load).ok);

  Request mutate;
  mutate.op = Op::kMutate;
  mutate.tenant = "t0";
  mutate.id = 3;
  mutate.edge = 99;  // out of range
  mutate.new_weight = 1;
  const Response r2 = engine.execute(mutate);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.error_code, to_string(ErrCode::kBadMutation));

  Request bad_load;
  bad_load.op = Op::kLoad;
  bad_load.tenant = "t1";
  bad_load.id = 4;
  bad_load.body = "3\n0 1 1\n";  // disconnected (node 2 isolated)
  const Response r3 = engine.execute(bad_load);
  EXPECT_FALSE(r3.ok);
  EXPECT_EQ(r3.error_code, to_string(ErrCode::kBadGraph));
}

TEST(Engine, LruEvictionKeepsCountersConsistent) {
  EngineConfig cfg;
  cfg.max_sessions = 2;
  Engine engine(cfg);

  const auto load = [&](const char* tenant, std::int64_t id) {
    Request req;
    req.op = Op::kLoad;
    req.tenant = tenant;
    req.id = id;
    req.body = small_graph_body();
    return engine.execute(req);
  };
  ASSERT_TRUE(load("t0", 1).ok);
  ASSERT_TRUE(load("t1", 2).ok);
  EXPECT_EQ(engine.session_count(), 2u);

  // Touch t0 so t1 is the LRU victim when t2 arrives.
  Request solve;
  solve.op = Op::kSolve;
  solve.tenant = "t0";
  solve.id = 3;
  solve.has_seed = true;
  solve.seed = 1;
  ASSERT_TRUE(engine.execute(solve).ok);
  ASSERT_TRUE(load("t2", 4).ok);
  EXPECT_EQ(engine.session_count(), 2u);

  Request stats;
  stats.op = Op::kStats;
  stats.id = 5;
  const Response st = engine.execute(stats);
  ASSERT_TRUE(st.ok);
  // The header count and the session table must agree, and the victim must
  // be gone while the touched session survived.
  EXPECT_EQ(st.field_int("sessions"), 2);
  int rows = 0;
  std::istringstream body(st.body);
  std::string line;
  bool saw_t0 = false;
  bool saw_t1 = false;
  while (std::getline(body, line)) {
    if (line.empty()) continue;
    ++rows;
    saw_t0 = saw_t0 || line.rfind("t0 ", 0) == 0;
    saw_t1 = saw_t1 || line.rfind("t1 ", 0) == 0;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_TRUE(saw_t0);
  EXPECT_FALSE(saw_t1);

  // A solve against the evicted tenant is a structured NO_SESSION, and an
  // explicit EVICT of a live one updates the count.
  Request ghost;
  ghost.op = Op::kSolve;
  ghost.tenant = "t1";
  ghost.id = 6;
  EXPECT_EQ(engine.execute(ghost).error_code, to_string(ErrCode::kNoSession));
  Request evict;
  evict.op = Op::kEvict;
  evict.tenant = "t2";
  evict.id = 7;
  const Response ev = engine.execute(evict);
  ASSERT_TRUE(ev.ok);
  EXPECT_EQ(ev.field_int("sessions"), 1);
  EXPECT_EQ(engine.session_count(), 1u);
}

// ---- serve loop: resilience over the wire ----------------------------------

TEST(Serve, CorruptPayloadsAreRecoveredFramingErrorsEndTheConnection) {
  Engine engine;
  std::istringstream in(frame("NONSENSE ???\n") +       // parse error: recovered
                        frame("LOAD t0 id=1\n" + small_graph_body()) +
                        frame("SOLVE t0 id=2 seed=5\n") +
                        std::string("\x07\x00", 2));    // truncated frame: fatal
  std::ostringstream out;
  const Engine::ServeStats st = engine.serve(in, out);

  EXPECT_EQ(st.frames, 3);
  EXPECT_EQ(st.parse_errors, 1);
  EXPECT_EQ(st.frame_errors, 1);

  // BAD_COMMAND and BAD_FRAME both carry id=0 and collapse in the map;
  // count raw responses for the full tally.
  EXPECT_EQ(read_responses(out.str()).size(), 4u);
  const std::map<std::int64_t, Response> resp = by_id(out.str());
  ASSERT_EQ(resp.size(), 3u);
  EXPECT_FALSE(resp.at(0).ok);
  EXPECT_TRUE(resp.at(1).ok);
  EXPECT_TRUE(resp.at(2).ok);
  EXPECT_EQ(resp.at(2).field_int("value"), oracle_of_body(small_graph_body()));

  // The connection died; the daemon did not. A fresh serve works.
  std::istringstream in2(frame("STATS id=9\n"));
  std::ostringstream out2;
  const Engine::ServeStats st2 = engine.serve(in2, out2);
  EXPECT_EQ(st2.frames, 1);
  const std::map<std::int64_t, Response> resp2 = by_id(out2.str());
  ASSERT_TRUE(resp2.count(9));
  EXPECT_TRUE(resp2.at(9).ok);
  EXPECT_EQ(resp2.at(9).field_int("sessions"), 1);  // t0 survived the bad frame
}

TEST(Serve, ShutdownRejectsLaterAdmissionsStructurally) {
  Engine engine;
  std::istringstream in(frame("LOAD t0 id=1\n" + small_graph_body()) +
                        frame("SHUTDOWN id=2\n") +
                        frame("SOLVE t0 id=3 seed=1\n") +  // after shutdown
                        frame("STATS id=4\n"));            // control plane still answers
  std::ostringstream out;
  (void)engine.serve(in, out);

  const std::map<std::int64_t, Response> resp = by_id(out.str());
  ASSERT_EQ(resp.size(), 4u);
  EXPECT_TRUE(resp.at(1).ok);
  EXPECT_TRUE(resp.at(2).ok);
  EXPECT_FALSE(resp.at(3).ok);
  EXPECT_EQ(resp.at(3).error_code, to_string(ErrCode::kShuttingDown));
  EXPECT_TRUE(resp.at(4).ok);
  EXPECT_TRUE(engine.shutting_down());
}

TEST(Serve, MultiTenantConcurrentSolvesAuditCleanly) {
  // The threads8 job: several tenants' solves in flight across a wide
  // scheduler, every answer audited against the sequential oracle.
  EngineConfig cfg;
  cfg.scheduler_width = 4;
  Engine engine(cfg);

  constexpr int kTenants = 4;
  constexpr int kSolvesPerTenant = 3;
  std::ostringstream in_bytes;
  std::vector<Weight> oracle(kTenants);
  std::int64_t id = 0;
  Rng rng(123);
  for (int t = 0; t < kTenants; ++t) {
    WeightedGraph g = erdos_renyi_connected(10 + t, 0.3, rng);
    randomize_weights(g, 1, 20, rng);
    oracle[static_cast<std::size_t>(t)] = baseline::stoer_wagner(g).value;
    std::ostringstream body;
    write_edge_list(body, g);
    const std::string tenant = std::string("t") + std::to_string(t);
    write_frame(in_bytes, "LOAD " + tenant + " id=" + std::to_string(++id) + "\n" + body.str());
  }
  std::vector<std::pair<std::int64_t, int>> solve_ids;  // id -> tenant
  for (int round = 0; round < kSolvesPerTenant; ++round) {
    for (int t = 0; t < kTenants; ++t) {
      const std::string tenant = std::string("t") + std::to_string(t);
      write_frame(in_bytes,
                  "SOLVE " + tenant + " id=" + std::to_string(++id) + " seed=" +
                      std::to_string(100 + round) + "\n");
      solve_ids.emplace_back(id, t);
    }
  }

  std::istringstream in(in_bytes.str());
  std::ostringstream out;
  const Engine::ServeStats st = engine.serve(in, out);
  EXPECT_EQ(st.frames, id);
  EXPECT_EQ(st.responses, id);

  const std::map<std::int64_t, Response> resp = by_id(out.str());
  ASSERT_EQ(resp.size(), static_cast<std::size_t>(id));
  for (const auto& [solve_id, tenant] : solve_ids) {
    ASSERT_TRUE(resp.count(solve_id));
    const Response& r = resp.at(solve_id);
    ASSERT_TRUE(r.ok) << r.serialize();
    EXPECT_EQ(r.field_int("value"), oracle[static_cast<std::size_t>(tenant)])
        << "tenant t" << tenant << " id " << solve_id;
    EXPECT_EQ(r.fields.at("tier"), "exact");
    EXPECT_EQ(r.field_int("certified"), 1);
  }
}

}  // namespace
}  // namespace umc::server
