#pragma once

// The round-execution engine behind minoragg::Network.
//
// Executing one Definition 9 round decomposes into a *pattern* part that
// depends only on the contraction bitvector (supernode partition, surviving
// minor-edge list, fold schedule) and a *value* part (consensus and
// aggregation folds). Algorithms in this repo replay the same contraction
// pattern for thousands of consecutive rounds (fixed spanning tree, HLD
// chains, Theorem 14 schedules), so the engine:
//
//   * caches the pattern part as a RoundPlan, keyed by a hash of the packed
//     contract bits and verified by exact comparison, in a small LRU cache —
//     repeated rounds skip the per-round DSU and minor-edge scan entirely;
//   * reuses engine-owned scratch arenas for all intermediate fold buffers,
//     so a warm round performs no allocation beyond its returned result;
//   * folds chunk-parallel yet bit-identically to the sequential reference:
//     the plan groups nodes and edge incidences per supernode, each
//     supernode's fold runs sequentially in id order, and supernodes are
//     chunked across threads — outputs are disjoint per supernode, so the
//     result is independent of thread count (Def. 7 determinism contract).
//
// Thread width comes from the UMC_THREADS knob (ThreadPool) and can be
// overridden per engine; small rounds run inline. Edge callbacks are
// evaluated exactly once per surviving minor edge but possibly concurrently
// and out of id order — they must be pure functions of their arguments.
//
// Ledger accounting lives in Network; the engine never charges rounds.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <typeindex>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sketch/aggregators.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace umc::minoragg {

/// Outcome of one round, indexed by node id of the host graph.
template <typename Y, typename Z>
struct RoundResult {
  /// y_{s(v)}: the consensus aggregate of v's supernode.
  std::vector<Y> consensus;
  /// ⊗-aggregate of incident E' edge values of v's supernode.
  std::vector<Z> aggregate;
  /// Supernode id of v (smallest node id contained in the supernode).
  std::vector<NodeId> supernode;
};

/// Everything about a round that depends only on the contraction pattern.
/// Built once per pattern (one DSU pass) and replayed from cache.
struct RoundPlan {
  /// Packed contract bits — the exact cache key.
  std::vector<std::uint64_t> pattern;
  std::uint64_t hash = 0;

  /// Supernode id per node (smallest contained node id).
  std::vector<NodeId> supernode;
  /// Dense group index per node; groups are numbered by ascending
  /// representative id (== first-seen order scanning nodes 0..n-1).
  std::vector<std::int32_t> group_of;
  std::int32_t num_groups = 0;

  /// Nodes grouped by supernode (CSR): group g's members are
  /// node_members[node_begin[g] .. node_begin[g+1]) in ascending id order.
  std::vector<std::int32_t> node_begin;
  std::vector<NodeId> node_members;

  /// A surviving minor edge with everything the hot loop needs pre-resolved.
  struct MinorEdge {
    EdgeId e;
    NodeId u, v;
    std::int32_t gu, gv;  // dense groups of u / v
  };
  /// Surviving (non-self-loop) minor edges in ascending edge-id order.
  std::vector<MinorEdge> edges;

  /// Aggregation schedule (CSR per group): entry k in
  /// [inc_begin[g], inc_begin[g+1]) is (minor-edge index << 1 | side), side
  /// 0 = u, 1 = v, listed in ascending edge order — exactly the merge order
  /// of the sequential reference fold.
  std::vector<std::int32_t> inc_begin;
  std::vector<std::uint32_t> inc;

  /// Slot for downstream layers to hang plan-derived state on (the CONGEST
  /// compiler stores a congest::PartwiseCache keyed by group_of here).
  /// Type-erased so this layer carries no dependency on those layers; it
  /// dies with the plan — rebuild or LRU eviction — which is precisely the
  /// invalidation rule such state needs (the cache key IS the plan key).
  /// Mutable: filling it is caching, not a logical mutation of the plan.
  mutable std::shared_ptr<void> congest_cache;
};

/// Typed scratch buffers keyed by (element type, slot). Copying an engine
/// copies configuration, not scratch — the buffers are transient.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) {}
  ScratchArena& operator=(const ScratchArena&) { return *this; }
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  template <typename T>
  std::vector<T>& get(int slot) {
    const Key key{std::type_index(typeid(T)), slot};
    auto it = slots_.find(key);
    if (it == slots_.end()) it = slots_.emplace(key, std::make_unique<Typed<T>>()).first;
    return static_cast<Typed<T>*>(it->second.get())->v;
  }

 private:
  struct Erased {
    virtual ~Erased() = default;
  };
  template <typename T>
  struct Typed final : Erased {
    std::vector<T> v;
  };
  using Key = std::pair<std::type_index, int>;
  std::map<Key, std::unique_ptr<Erased>> slots_;
};

class RoundEngine {
 public:
  /// The caller keeps `g` alive for the engine's lifetime.
  explicit RoundEngine(const WeightedGraph& g, int threads = ThreadPool::configured_threads())
      : g_(&g), threads_(threads < 1 ? 1 : threads) {}

  /// Copies share the graph and thread width but start with a cold cache.
  RoundEngine(const RoundEngine& o) : g_(o.g_), threads_(o.threads_) {}
  RoundEngine& operator=(const RoundEngine& o) {
    g_ = o.g_;
    threads_ = o.threads_;
    cache_.clear();
    hits_ = misses_ = 0;
    return *this;
  }
  RoundEngine(RoundEngine&&) = default;
  RoundEngine& operator=(RoundEngine&&) = default;

  [[nodiscard]] const WeightedGraph& graph() const { return *g_; }

  /// Fold-parallelism width (threads used for large rounds). 1 = inline.
  void set_threads(int t) { threads_ = t < 1 ? 1 : t; }
  [[nodiscard]] int threads() const { return threads_; }

  /// The cached plan for a contraction pattern; builds (and caches) it on
  /// miss. The reference stays valid until a later plan() call inserts a
  /// new pattern into a full cache, which evicts (and invalidates) only the
  /// least-recently-used entry; cache storage itself never reallocates.
  const RoundPlan& plan(const std::vector<bool>& contract);

  [[nodiscard]] std::size_t plan_cache_hits() const { return hits_; }
  [[nodiscard]] std::size_t plan_cache_misses() const { return misses_; }
  [[nodiscard]] std::size_t plan_cache_size() const { return cache_.size(); }

  /// Executes the value part of one round against a plan. Bit-identical to
  /// the sequential reference fold at any thread width. `edge_values` is
  /// invoked exactly once per surviving minor edge, possibly concurrently.
  template <Aggregator CAgg, Aggregator XAgg, typename EdgeFn>
  RoundResult<typename CAgg::value_type, typename XAgg::value_type> execute(
      const RoundPlan& plan, std::span<const typename CAgg::value_type> node_input,
      EdgeFn&& edge_values);

 private:
  struct CacheEntry {
    std::uint64_t hash = 0;
    RoundPlan plan;
    std::uint64_t stamp = 0;  // LRU clock
  };

  static constexpr std::size_t kPlanCacheCapacity = 16;
  /// Below this much per-round work (nodes + minor edges) rounds run inline
  /// even when threads() > 1 — fan-out costs more than it saves.
  static constexpr std::size_t kParallelCutoff = 1 << 13;

  [[nodiscard]] int effective_width(std::size_t work) const {
    return (threads_ > 1 && work >= kParallelCutoff) ? threads_ : 1;
  }

  /// Splits groups into ~width chunks of balanced total CSR size and runs
  /// body(group_lo, group_hi) for each, in parallel when width > 1.
  template <typename Body>
  void for_group_chunks(std::span<const std::int32_t> csr_begin, std::int32_t num_groups,
                        int width, Body&& body) {
    if (width <= 1 || num_groups <= 1) {
      body(0, num_groups);
      return;
    }
    const std::int32_t total = csr_begin[static_cast<std::size_t>(num_groups)];
    std::vector<std::int32_t> cuts;
    cuts.push_back(0);
    for (int c = 1; c < width; ++c) {
      const std::int32_t target =
          static_cast<std::int32_t>(static_cast<std::int64_t>(total) * c / width);
      const auto it = std::lower_bound(csr_begin.begin() + cuts.back(),
                                       csr_begin.begin() + num_groups, target);
      cuts.push_back(static_cast<std::int32_t>(it - csr_begin.begin()));
    }
    cuts.push_back(num_groups);
    ThreadPool::global().run(
        static_cast<std::size_t>(width), width, [&](std::size_t c) {
          // Per-chunk worker-thread span: where the fold wall time goes.
          UMC_OBS_SPAN_VAR_L(obs_chunk, "engine/chunk", "engine",
                             static_cast<std::int64_t>(c));
          obs_chunk.arg("groups", cuts[c + 1] - cuts[c]);
          body(cuts[c], cuts[c + 1]);
        });
  }

  /// Splits [0, count) into ~width equal ranges and runs body(lo, hi).
  template <typename Body>
  void for_ranges(std::size_t count, int width, Body&& body) {
    if (width <= 1 || count <= 1) {
      body(std::size_t{0}, count);
      return;
    }
    const std::size_t w = static_cast<std::size_t>(width);
    ThreadPool::global().run(w, width, [&](std::size_t c) {
      body(count * c / w, count * (c + 1) / w);
    });
  }

  const WeightedGraph* g_;
  int threads_;
  std::vector<CacheEntry> cache_;
  std::uint64_t clock_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  ScratchArena scratch_;
};

// ---- template implementation ----------------------------------------------

template <Aggregator CAgg, Aggregator XAgg, typename EdgeFn>
RoundResult<typename CAgg::value_type, typename XAgg::value_type> RoundEngine::execute(
    const RoundPlan& plan, std::span<const typename CAgg::value_type> node_input,
    EdgeFn&& edge_values) {
  using Y = typename CAgg::value_type;
  using Z = typename XAgg::value_type;
  const std::size_t n = plan.supernode.size();
  UMC_ASSERT(node_input.size() == n);
  const std::size_t groups = static_cast<std::size_t>(plan.num_groups);
  const int width = effective_width(n + plan.edges.size());
  UMC_OBS_SPAN_VAR(obs_exec, "engine/execute", "engine");
  obs_exec.arg("work", static_cast<std::int64_t>(n + plan.edges.size()));
  obs_exec.arg("width", width);
#if !defined(UMC_OBS_DISABLED)
  if (width > 1) {
    // The pool executes `width` chunk jobs for this round; `width - 1`
    // of them queue behind the workers — the pool's queue depth.
    static obs::Gauge& queue_depth = obs::MetricsRegistry::global().gauge(
        "umc_pool_queue_depth", {}, "Chunk jobs queued per parallel fold (width - 1).");
    queue_depth.set(width - 1);
    static obs::Counter& parallel_folds = obs::MetricsRegistry::global().counter(
        "umc_engine_parallel_folds_total", {}, "Rounds folded chunk-parallel.");
    parallel_folds.inc();
  }
#endif
  // Edge callbacks may consult g.csr(), whose lazy build is not thread-safe
  // (graph.hpp): force it on this thread before fanning out.
  if (width > 1) (void)g_->csr();

  RoundResult<Y, Z> out;
  out.supernode = plan.supernode;

  // Consensus: fold x_v per supernode in member (= node-id) order, then
  // scatter y back to members. Each group writes only its own y slot, so
  // chunking over groups cannot race and cannot reorder any fold.
  std::vector<Y>& y = scratch_.get<Y>(0);
  y.resize(groups);
  if (width <= 1) {
    // Sequential fast path: a single ascending-id sweep visits each group's
    // members in exactly the CSR order with perfectly streaming access.
    std::fill(y.begin(), y.end(), CAgg::identity());
    for (std::size_t v = 0; v < n; ++v) {
      Y& acc = y[static_cast<std::size_t>(plan.group_of[v])];
      acc = CAgg::merge(std::move(acc), node_input[v]);
    }
  } else {
    for_group_chunks(plan.node_begin, plan.num_groups, width,
                     [&](std::int32_t g_lo, std::int32_t g_hi) {
                       for (std::int32_t g = g_lo; g < g_hi; ++g) {
                         Y acc = CAgg::identity();
                         for (std::int32_t k = plan.node_begin[static_cast<std::size_t>(g)];
                              k < plan.node_begin[static_cast<std::size_t>(g) + 1]; ++k)
                           acc = CAgg::merge(
                               std::move(acc),
                               node_input[static_cast<std::size_t>(
                                   plan.node_members[static_cast<std::size_t>(k)])]);
                         y[static_cast<std::size_t>(g)] = std::move(acc);
                       }
                     });
  }
  // Aggregation in the reference order: per group, incident z-values merge
  // in ascending edge order (u side before v side of one edge). The edge
  // callback receives the supernode consensus values straight from the
  // compact per-group table — y[gu] is by definition the consensus value at
  // every node of u's supernode.
  std::vector<Z>& z = scratch_.get<Z>(1);
  z.resize(groups);
  if (width <= 1) {
    // Sequential fast path: one ascending sweep of the surviving edges IS
    // the per-group reference order, so fold straight into the group
    // accumulators — no intermediate flat table.
    std::fill(z.begin(), z.end(), XAgg::identity());
    for (const RoundPlan::MinorEdge& me : plan.edges) {
      auto [zu, zv] = edge_values(me.e, y[static_cast<std::size_t>(me.gu)],
                                  y[static_cast<std::size_t>(me.gv)]);
      Z& au = z[static_cast<std::size_t>(me.gu)];
      au = XAgg::merge(std::move(au), std::move(zu));
      Z& av = z[static_cast<std::size_t>(me.gv)];
      av = XAgg::merge(std::move(av), std::move(zv));
    }
  } else {
    // Parallel path: evaluate every surviving minor edge once into a flat
    // (z_u, z_v) table, then fold per supernode following the plan's
    // incidence schedule — the same ascending edge order per group.
    // Slot 2: must not alias y's slot 0 — y stays live through the final
    // scatter and Y may equal Z.
    std::vector<Z>& zp = scratch_.get<Z>(2);
    zp.resize(plan.edges.size() * 2);
    for_ranges(plan.edges.size(), width, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const RoundPlan::MinorEdge& me = plan.edges[i];
        auto [zu, zv] = edge_values(me.e, y[static_cast<std::size_t>(me.gu)],
                                    y[static_cast<std::size_t>(me.gv)]);
        zp[2 * i] = std::move(zu);
        zp[2 * i + 1] = std::move(zv);
      }
    });
    for_group_chunks(plan.inc_begin, plan.num_groups, width,
                     [&](std::int32_t g_lo, std::int32_t g_hi) {
                       for (std::int32_t g = g_lo; g < g_hi; ++g) {
                         Z acc = XAgg::identity();
                         for (std::int32_t k = plan.inc_begin[static_cast<std::size_t>(g)];
                              k < plan.inc_begin[static_cast<std::size_t>(g) + 1]; ++k)
                           acc = XAgg::merge(std::move(acc),
                                             zp[plan.inc[static_cast<std::size_t>(k)]]);
                         z[static_cast<std::size_t>(g)] = std::move(acc);
                       }
                     });
  }
  // One fused scatter: every node copies its group's consensus and
  // aggregation results.
  out.consensus.resize(n);
  out.aggregate.resize(n);
  for_ranges(n, width, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      const std::size_t g = static_cast<std::size_t>(plan.group_of[v]);
      out.consensus[v] = y[g];
      out.aggregate[v] = z[g];
    }
  });
  return out;
}

}  // namespace umc::minoragg
