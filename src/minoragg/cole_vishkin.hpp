#pragma once

// Deterministic Cole-Vishkin 3-coloring of out-degree-(<=1) graphs.
//
// This is the engine behind deterministic star-merging (Lemma 44): colors
// start as unique ids and shrink by the bit-index trick in O(log* n)
// iterations, then a shift-down + recolor pass reduces {0..5} to {0..2}.
// Each iteration is one Minor-Aggregation round in the communication model
// of the Lemma 44 proof (a node broadcasts O(log n) bits read by the nodes
// pointing at it); the ledger is charged accordingly, and the iteration
// count is recorded in the "cv_iterations" counter.

#include <span>
#include <vector>

#include "minoragg/ledger.hpp"

namespace umc::minoragg {

/// out[v] = the out-neighbor of v, or -1 if v has out-degree 0. Self-loops
/// are forbidden; 2-cycles are allowed (they arise in Theorem 48, where
/// parts mark arbitrary adjacent edges). Returns a proper coloring with
/// colors in {0, 1, 2} ("proper" w.r.t. the underlying undirected edges).
[[nodiscard]] std::vector<int> cole_vishkin_3color(std::span<const int> out, Ledger& ledger);

}  // namespace umc::minoragg
