// Experiment E1 (Theorem 1, first bullet): exact weighted min-cut on
// excluded-minor (planar) networks completes in Õ(D) CONGEST rounds.
//
// For each planar family and size we run the full pipeline (tree packing +
// deterministic 2-respecting per tree), verify the value against
// Stoer-Wagner, and report: Minor-Aggregation rounds, the Õ(D)-compiled
// CONGEST rounds for the excluded-minor target, D itself, and the ratio
// congest_rounds / (D * polylog) whose flatness across the sweep is the
// claim's experimental signature.

#include <cmath>

#include "baseline/stoer_wagner.hpp"
#include "bench_common.hpp"
#include "congest/compile.hpp"
#include "mincut/exact_mincut.hpp"

namespace umc {
namespace {

void run_planar(benchmark::State& state, bool random_diagonals) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  Rng rng(42 + static_cast<std::uint64_t>(side));
  WeightedGraph g = random_diagonals ? random_planar_grid(side, side, 0.4, rng)
                                     : grid_graph(side, side);
  randomize_weights(g, 1, 100, rng);

  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = 12;  // fixed packing budget: isolates the solver's cost
  mincut::ExactMinCutResult result{};
  for (auto _ : state) {
    minoragg::Ledger run;
    Rng run_rng(7);
    result = mincut::exact_mincut(g, run_rng, run, config);
    ledger = run;
    benchmark::DoNotOptimize(result);
  }
  const Weight reference = baseline::stoer_wagner(g).value;

  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, 3);
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = g.n();
  state.counters["D"] = cost.diameter;
  state.counters["congest_excluded_minor"] =
      static_cast<double>(cost.congest_rounds_excluded_minor());
  state.counters["rounds_per_D_polylog"] =
      static_cast<double>(cost.congest_rounds_excluded_minor()) /
      (static_cast<double>(cost.diameter + 1) *
       std::pow(std::log2(static_cast<double>(g.n())), 6.0));
  state.counters["value"] = static_cast<double>(result.value);
  state.counters["matches_stoer_wagner"] = result.value == reference ? 1.0 : 0.0;
}

void BM_Grid(benchmark::State& state) { run_planar(state, false); }
void BM_RandomPlanar(benchmark::State& state) { run_planar(state, true); }

// k-trees: excluded-minor (K_{k+2}-minor-free) with SMALL diameter — the
// family where the Õ(D) target genuinely beats the general Õ(D+√n) one.
void BM_KTree(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(17 + static_cast<std::uint64_t>(n));
  WeightedGraph g = ktree(n, 3, rng);
  randomize_weights(g, 1, 100, rng);

  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = 12;
  mincut::ExactMinCutResult result{};
  for (auto _ : state) {
    minoragg::Ledger run;
    Rng run_rng(7);
    result = mincut::exact_mincut(g, run_rng, run, config);
    ledger = run;
    benchmark::DoNotOptimize(result);
  }
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, 3);
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = g.n();
  state.counters["D"] = cost.diameter;
  state.counters["congest_excluded_minor"] =
      static_cast<double>(cost.congest_rounds_excluded_minor());
  state.counters["congest_general"] = static_cast<double>(cost.congest_rounds_general());
  // On dense excluded-minor families the MEASURED per-round PA cost is
  // already D-level (carve parts have tiny internal eccentricity): the
  // family's shortcut quality is Õ(D), exactly what [12] predicts. The
  // flatness of this ratio across the sweep is the claim's signature.
  state.counters["measured_pa_over_D"] =
      static_cast<double>(cost.pa_rounds_general) / static_cast<double>(cost.diameter + 1);
  state.counters["matches_stoer_wagner"] =
      result.value == baseline::stoer_wagner(g).value ? 1.0 : 0.0;
}

BENCHMARK(BM_Grid)->Arg(8)->Arg(12)->Arg(16)->Arg(24)->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomPlanar)->Arg(8)->Arg(16)->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KTree)->Arg(128)->Arg(256)->Arg(512)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
