#include "tree/rooted_tree.hpp"

#include <algorithm>

namespace umc {

RootedTree::RootedTree(const WeightedGraph& g, std::span<const EdgeId> tree_edges, NodeId root)
    : g_(&g), root_(root), tree_edges_(tree_edges.begin(), tree_edges.end()) {
  const NodeId n = g.n();
  UMC_ASSERT(root >= 0 && root < n);
  UMC_ASSERT_MSG(static_cast<NodeId>(tree_edges_.size()) == n - 1,
                 "a spanning tree has exactly n-1 edges");
  is_tree_edge_.assign(static_cast<std::size_t>(g.m()), false);
  for (const EdgeId e : tree_edges_) {
    UMC_ASSERT(e >= 0 && e < g.m());
    UMC_ASSERT_MSG(!is_tree_edge_[static_cast<std::size_t>(e)], "duplicate tree edge");
    is_tree_edge_[static_cast<std::size_t>(e)] = true;
  }

  parent_.assign(static_cast<std::size_t>(n), kNoNode);
  parent_edge_.assign(static_cast<std::size_t>(n), kNoEdge);
  depth_.assign(static_cast<std::size_t>(n), -1);
  children_.assign(static_cast<std::size_t>(n), {});
  subtree_size_.assign(static_cast<std::size_t>(n), 1);
  tin_.assign(static_cast<std::size_t>(n), -1);
  tout_.assign(static_cast<std::size_t>(n), -1);
  preorder_.clear();
  preorder_.reserve(static_cast<std::size_t>(n));

  // Iterative DFS over tree edges only.
  depth_[idx(root)] = 0;
  std::vector<NodeId> stack = {root};
  int time = 0;
  std::vector<std::size_t> adj_pos(static_cast<std::size_t>(n), 0);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    if (adj_pos[idx(v)] == 0) {
      tin_[idx(v)] = time++;
      preorder_.push_back(v);
    }
    bool descended = false;
    auto adj = g.adj(v);
    for (std::size_t& i = adj_pos[idx(v)]; i < adj.size(); ++i) {
      const AdjEntry& a = adj[i];
      if (!is_tree_edge_[static_cast<std::size_t>(a.edge)]) continue;
      if (depth_[idx(a.to)] != -1) continue;  // parent or already visited
      depth_[idx(a.to)] = depth_[idx(v)] + 1;
      parent_[idx(a.to)] = v;
      parent_edge_[idx(a.to)] = a.edge;
      children_[idx(v)].push_back(a.to);
      stack.push_back(a.to);
      ++i;
      descended = true;
      break;
    }
    if (!descended) {
      tout_[idx(v)] = time++;
      stack.pop_back();
      if (parent_[idx(v)] != kNoNode) subtree_size_[idx(parent_[idx(v)])] += subtree_size_[idx(v)];
    }
  }
  UMC_ASSERT_MSG(static_cast<NodeId>(preorder_.size()) == n,
                 "tree edges do not span the graph");
}

NodeId RootedTree::bottom(EdgeId e) const {
  UMC_ASSERT_MSG(is_tree_edge(e), "bottom() requires a tree edge");
  const Edge& ed = host().edge(e);
  return depth(ed.u) > depth(ed.v) ? ed.u : ed.v;
}

}  // namespace umc
