#pragma once

// Engine — the resident core of the min-cut service.
//
// Owns the named tenant Sessions (LRU-bounded), dispatches parsed protocol
// Requests to them, and runs the serve loop that ties the framing layer
// (protocol.hpp), the weighted-fair scheduler (scheduler.hpp), and the
// solve pipeline together:
//
//   reader thread:   read_frame -> parse_request -> admission
//                      STATS/EVICT/SHUTDOWN execute inline;
//                      LOAD/MUTATE/SOLVE are queued per tenant
//   worker threads:  FairScheduler dispatch -> Engine::execute -> respond
//
// Every SOLVE runs under a fault::SolveSupervisor with the engine's round/
// wall budgets, so a pathological instance degrades through the ladder
// (answering tier reported in the response) instead of wedging a worker.
// The session's private PackingCache is plumbed into the solve AND the
// supervisor's certification replay through PackingConfig::cache, which is
// why a repeated (graph, seed) request is a cache hit instead of a repack.
//
// Observability is part of the dispatch path, not bolted on: every request
// is counted in umc_server_* metrics and traced as a server/request span;
// STATS serves the session table or a full Prometheus dump of the process
// registry.
//
// Shutdown: begin_shutdown() (SHUTDOWN frame, SIGINT/SIGTERM in mincutd)
// stops admission — later data-plane requests get a structured
// SHUTTING_DOWN rejection — while queued and in-flight work drains;
// wait_drained() blocks until the backlog is empty so the daemon can flush
// trace/metrics buffers and exit without dropping admitted work.
//
// The bottom of this header is the LOCAL engine API (load / solve / verify
// dispatch) shared with examples/mincut_cli.cpp, so the one-shot CLI and
// the daemon cannot drift apart.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "mincut/exact_mincut.hpp"
#include "minoragg/ledger.hpp"
#include "server/protocol.hpp"
#include "server/scheduler.hpp"
#include "server/session.hpp"
#include "util/error.hpp"

namespace umc::server {

struct EngineConfig {
  /// Worker width of the request scheduler (parallelism across tenants;
  /// inside a worker the solve's task graph degrades to inline — see
  /// docs/PARALLELISM.md).
  int scheduler_width = 1;
  /// Resident-session ceiling: LOAD of a new tenant beyond it evicts the
  /// least recently used idle session (soft cap: nothing idle, no evict).
  std::size_t max_sessions = 16;
  int max_queued_global = 256;
  int max_queued_per_tenant = 64;
  /// Per-solve supervisor budgets (0 = unbudgeted).
  std::int64_t solve_round_budget = 0;
  double solve_wall_budget_ms = 0.0;
  /// Packing tree cap for SOLVEs that do not pass trees=...
  int default_max_trees = 16;
  /// Certify every answer with the guard battery (tier in the response is
  /// then backed by a certificate).
  bool verify = true;
  /// Base seed of the per-tenant rng streams (SOLVE without seed=...).
  std::uint64_t rng_seed = 1;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Synchronously executes one parsed request against the session store —
  /// the worker body, and the in-process test surface. Thread-safe;
  /// concurrent calls for ONE tenant must be externally serialized (the
  /// scheduler's in-flight cap does this on the serve path).
  [[nodiscard]] Response execute(const Request& req);

  struct ServeStats {
    std::int64_t frames = 0;        // well-framed payloads read
    std::int64_t frame_errors = 0;  // stream ended on a framing violation
    std::int64_t parse_errors = 0;  // malformed request payloads (recovered)
    std::int64_t responses = 0;     // frames written
  };

  /// Blocking serve loop over a framed byte stream (the daemon's stdin/
  /// stdout, or test stringstreams). Returns after EOF — or a framing
  /// violation — once every admitted request has been answered. Reentrant
  /// serving is not supported (one connection at a time).
  ServeStats serve(std::istream& in, std::ostream& out);

  /// Stops admission (structured SHUTTING_DOWN rejections from now on) and
  /// lets the backlog drain. Thread-safe, idempotent, callable while
  /// serve() runs — the signal path of mincutd.
  void begin_shutdown();
  [[nodiscard]] bool shutting_down() const;

  /// Blocks until no request is queued or in flight (shutdown flushing).
  void wait_drained();

  [[nodiscard]] std::size_t session_count() const;
  /// Test access to the scheduler (pause/resume, stats).
  [[nodiscard]] FairScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

 private:
  Response do_load(const Request& req);
  Response do_mutate(const Request& req);
  Response do_solve(const Request& req);
  Response do_stats(const Request& req);
  Response do_evict(const Request& req);

  /// Looks up a loaded session; updates its LRU tick. Returns nullptr when
  /// the tenant has none.
  Session* touch_session_locked(const std::string& tenant);
  void evict_lru_locked();

  EngineConfig cfg_;
  FairScheduler scheduler_;
  mutable std::mutex sessions_mu_;  // map + session metadata (see session.hpp)
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::uint64_t lru_clock_ = 0;
  std::atomic<bool> shutting_down_{false};
};

// ---------------------------------------------------------------------------
// Local engine API: the load / solve / verify dispatch shared by the
// daemon's LOAD handler and the one-shot CLI.

/// Parses an edge-list body (graph/io format). Purely the parse: see
/// validate_graph for the solvability check.
[[nodiscard]] Expected<WeightedGraph> load_graph_text(std::string_view body);
[[nodiscard]] Expected<WeightedGraph> load_graph_file(const std::string& path);

/// nullptr when `g` is solvable (connected, n >= 2); otherwise the
/// human-readable requirement it violates.
[[nodiscard]] const char* validate_graph(const WeightedGraph& g);

struct LocalSolveOptions {
  std::uint64_t seed = 1;
  int max_trees = 16;
  bool self_check = false;
};

struct LocalSolveOutcome {
  mincut::GuardedMinCutResult guarded;
  Weight oracle = 0;  // independent Stoer–Wagner reference
  minoragg::Ledger ledger;
  [[nodiscard]] bool matches_oracle() const { return guarded.value == oracle; }
};

/// One-shot guarded solve + independent oracle verification — the CLI's
/// solve path, kept next to the daemon's so they share ingestion and
/// configuration defaults.
[[nodiscard]] LocalSolveOutcome run_local_solve(const WeightedGraph& g,
                                                const LocalSolveOptions& opt);

}  // namespace umc::server
