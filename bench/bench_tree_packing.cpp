// Experiment E8 (Theorem 12): tree packing.
//
// Reports the number of trees (Θ(log^2 n) after sampling), whether the
// Karger-sampling route was taken, and — the theorem's whp guarantee — the
// fraction of seeds for which some tree 2-respects the true min-cut.
//
// Experiment E23 (perf): the packing-producer fast path. BM_TreePackingSeed
// pins the pre-change Minor-Aggregation-simulated producer (use_fast_path
// off); BM_TreePackingThreads runs the BoruvkaPacker fast path at widths
// 1/2/4/8. All variants export the same gated counters — num_trees,
// ma_rounds, and a checksum over every tree's edge list — which CI diffs
// against the committed baseline: the fast path and every width must
// reproduce the seed producer's numbers exactly, only wall/cpu time may
// move.

#include "baseline/stoer_wagner.hpp"
#include "bench_common.hpp"
#include "mincut/tree_packing.hpp"
#include "util/thread_pool.hpp"

namespace umc {
namespace {

void run_packing(benchmark::State& state, const WeightedGraph& g) {
  const baseline::GlobalMinCut cut = baseline::stoer_wagner(g);
  std::vector<bool> in_side(static_cast<std::size_t>(g.n()), false);
  for (const NodeId v : cut.side) in_side[static_cast<std::size_t>(v)] = true;

  int successes = 0;
  const int seeds = 8;
  std::int64_t trees = 0, sampled = 0, rounds = 0;
  for (auto _ : state) {
    successes = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng rng(100 + static_cast<std::uint64_t>(s));
      minoragg::Ledger ledger;
      const mincut::TreePacking packing = mincut::tree_packing(g, rng, ledger);
      trees = static_cast<std::int64_t>(packing.trees.size());
      sampled = packing.sampled ? 1 : 0;
      rounds = ledger.rounds();
      int best = g.n();
      for (const auto& tree : packing.trees) {
        int crossing = 0;
        for (const EdgeId e : tree)
          crossing += in_side[static_cast<std::size_t>(g.edge(e).u)] !=
                              in_side[static_cast<std::size_t>(g.edge(e).v)]
                          ? 1
                          : 0;
        best = std::min(best, crossing);
      }
      if (best <= 2) ++successes;
    }
    benchmark::DoNotOptimize(successes);
  }
  state.counters["n"] = g.n();
  state.counters["num_trees"] = static_cast<double>(trees);
  state.counters["sampled_route"] = static_cast<double>(sampled);
  state.counters["ma_rounds"] = static_cast<double>(rounds);
  state.counters["two_respect_success_rate"] =
      static_cast<double>(successes) / static_cast<double>(seeds);
}

void BM_PackingSparse(benchmark::State& state) {
  run_packing(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 6.0, 21));
}

void BM_PackingDense(benchmark::State& state) {
  // High min-cut value: exercises the Karger-sampling route (case B).
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(23);
  WeightedGraph g = complete_graph(n);
  randomize_weights(g, 50, 100, rng);
  run_packing(state, g);
}

BENCHMARK(BM_PackingSparse)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PackingDense)->Arg(16)->Arg(24)->Iterations(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// E23: producer fast path vs the simulated seed producer, and width scaling.

/// One full packing of the E23 workload; the cache is disabled so every run
/// measures the producer, and the session width is explicit so the sweep is
/// reproducible regardless of the UMC_THREADS knob. The config forces the
/// direct greedy route (case A) on a lambda=136 graph, capped at 512 MST
/// iterations: the measurement is the packing phase itself, not the
/// lambda-seed/sampling setup both producers share.
void run_packing_producer(benchmark::State& state, bool fast_path, int threads) {
  const WeightedGraph g = benchutil::weighted_er(96, 8.0, 21);
  std::uint64_t h = 0;
  std::int64_t trees = 0, rounds = 0;
  for (auto _ : state) {
    Rng rng(7);
    minoragg::Ledger ledger;
    mincut::PackingConfig config;
    config.use_fast_path = fast_path;
    config.use_cache = false;
    config.direct_threshold_c = 1e9;  // force case A: pure greedy packing
    config.max_trees = 512;
    // chunk_min_edges stays at its production default: at m=386 the fold is
    // a single inline chunk (spawning ~100-edge tasks costs more than the
    // scan). The width column therefore gates counter equality, not wall
    // scaling; the chunk-parallel fold path is pinned by
    // test_tree_packing_threads8 at a forced small grain.
    h = 0x756d635f45323362ULL;  // "umc_E23b"
    trees = 0;
    TaskGraph::session(threads, [&] {
      (void)mincut::tree_packing(g, rng, ledger, config,
                                 [&h, &trees](std::vector<EdgeId> tree) {
                                   for (const EdgeId e : tree)
                                     h = mix64(h ^ static_cast<std::uint64_t>(e));
                                   ++trees;
                                 });
    });
    rounds = ledger.rounds();
    benchmark::DoNotOptimize(h);
  }
  state.counters["n"] = g.n();
  state.counters["num_trees"] = static_cast<double>(trees);
  state.counters["ma_rounds"] = static_cast<double>(rounds);
  // Gated: the fast path at every width must reproduce the seed producer's
  // trees bit-for-bit (folded to stay exactly representable in a double).
  state.counters["checksum"] = static_cast<double>(h % (1u << 30));
}

/// The pre-change reference: full Minor-Aggregation simulation per Borůvka
/// phase, all m edges re-costed per iteration. The ≥2x fast-path claim in
/// EXPERIMENTS.md E23 is this run vs BM_TreePackingThreads/1.
void BM_TreePackingSeed(benchmark::State& state) {
  run_packing_producer(state, /*fast_path=*/false, /*threads=*/1);
}

/// The BoruvkaPacker fast path at an explicit session width: chunk-parallel
/// candidate folds + incremental re-costing. Counters must match /1 exactly
/// at every width — only wall/cpu time may change.
void BM_TreePackingThreads(benchmark::State& state) {
  run_packing_producer(state, /*fast_path=*/true, static_cast<int>(state.range(0)));
}

BENCHMARK(BM_TreePackingSeed)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreePackingThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
