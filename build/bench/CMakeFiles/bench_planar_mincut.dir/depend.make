# Empty dependencies file for bench_planar_mincut.
# This may be replaced when dependencies are built.
