// Experiment E2 (Theorem 1 / Dory et al. recovery): exact min-cut on
// general graphs in Õ(D + √n) CONGEST rounds.
//
// Sweep over Erdős–Rényi graphs (small D, √n-dominated) and dumbbells
// (D-dominated): the compiled CONGEST round count divided by
// (D + √n)·polylog stays flat while n grows 16x, and the exact value always
// matches Stoer-Wagner.

#include <cmath>

#include "baseline/stoer_wagner.hpp"
#include "bench_common.hpp"
#include "congest/compile.hpp"
#include "mincut/exact_mincut.hpp"

namespace umc {
namespace {

void run_general(benchmark::State& state, WeightedGraph g) {
  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = 12;
  mincut::ExactMinCutResult result{};
  for (auto _ : state) {
    minoragg::Ledger run;
    Rng rng(7);
    result = mincut::exact_mincut(g, rng, run, config);
    ledger = run;
    benchmark::DoNotOptimize(result);
  }
  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger, 3);
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = g.n();
  state.counters["m"] = g.m();
  state.counters["D"] = cost.diameter;
  state.counters["pa_rounds"] = static_cast<double>(cost.pa_rounds_general);
  state.counters["congest_general"] = static_cast<double>(cost.congest_rounds_general());
  const double budget = (static_cast<double>(cost.diameter) +
                         std::sqrt(static_cast<double>(g.n()))) *
                        std::pow(std::log2(static_cast<double>(g.n())), 6.0);
  state.counters["rounds_per_DsqrtN_polylog"] =
      static_cast<double>(cost.congest_rounds_general()) / budget;
  state.counters["value"] = static_cast<double>(result.value);
  state.counters["matches_stoer_wagner"] =
      result.value == baseline::stoer_wagner(g).value ? 1.0 : 0.0;
}

void BM_ErdosRenyi(benchmark::State& state) {
  run_general(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 6.0,
                                            11 + static_cast<std::uint64_t>(state.range(0))));
}

void BM_Dumbbell(benchmark::State& state) {
  const NodeId clique = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  WeightedGraph g = dumbbell(clique, 4 * clique);  // long bridge: D-dominated
  randomize_weights(g, 1, 100, rng);
  run_general(state, std::move(g));
}

BENCHMARK(BM_ErdosRenyi)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dumbbell)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
