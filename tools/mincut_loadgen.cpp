// mincut_loadgen — deterministic mixed-tenant replay harness for mincutd.
//
// Two modes:
//
//   --gen --script out.script [--tenants T] [--requests R] [--seed S]
//       Generates a deterministic interleaved LOAD/MUTATE/SOLVE/STATS
//       workload across T tenants (explicit seeds everywhere, so the script
//       is a pure function of its parameters) and writes it as a text
//       script. Re-running with the same parameters reproduces the file
//       byte-for-byte.
//
//   --script in.script --daemon path/to/mincutd [--daemon-arg A ...]
//           [--window W] [--json out.json]
//       Spawns mincutd on a stdin/stdout pipe pair and replays the script
//       with up to W requests in flight. Every SOLVE answer is
//       DIFFERENTIALLY AUDITED: the harness maintains its own mirror of
//       each tenant's graph (applying the script's LOADs and MUTATEs) and
//       checks the daemon's value against an independent Stoer–Wagner
//       oracle computed at send time — the per-tenant FIFO admission
//       contract is what makes the send-time oracle the right expectation.
//       Exit code 1 on any audit mismatch, uncertified or degraded answer,
//       or error response.
//
// Script format: a preamble of '#' comment lines, then one record per
// request — a line containing exactly "%%" followed by the request payload
// (header line + optional LOAD body) verbatim.
//
// --json writes BENCH_mincutd.json (bench schema v2, like bench_main.cpp):
// one run whose counters carry the deterministic audit quantities CI gates
// (requests, solves, audit_mismatches, value_checksum, per-tenant
// cache-hit totals proving session reuse) and the wall-clock measurements
// (p50/p99 latency, throughput) that are reported but never gated.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/stoer_wagner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "server/protocol.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

using namespace umc;
using server::Op;
using server::Request;
using server::Response;

// ---------------------------------------------------------------------------
// Options.

struct Options {
  bool gen = false;
  std::string script_path;
  std::string daemon_path;
  std::vector<std::string> daemon_args;
  std::string json_path;
  int tenants = 4;
  int requests = 1000;
  std::uint64_t seed = 42;
  int window = 16;
};

bool parse_flag_int(const char* tok, long long lo, long long hi, long long& out) {
  const char* last = tok + std::strlen(tok);
  const auto [ptr, ec] = std::from_chars(tok, last, out);
  return ec == std::errc{} && ptr == last && out >= lo && out <= hi;
}

void usage() {
  std::fprintf(stderr,
               "usage: mincut_loadgen --gen --script out.script [--tenants T] [--requests R]"
               " [--seed S]\n"
               "       mincut_loadgen --script in.script --daemon mincutd [--daemon-arg A ...]\n"
               "                      [--window W] [--json out.json]\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next_value = [&](std::string& v) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a);
        return false;
      }
      v = argv[++i];
      return true;
    };
    const auto int_value = [&](long long lo, long long hi, long long& n) {
      std::string v;
      if (!next_value(v)) return false;
      if (!parse_flag_int(v.c_str(), lo, hi, n)) {
        std::fprintf(stderr, "error: bad %s value '%s'\n", a, v.c_str());
        return false;
      }
      return true;
    };
    long long n = 0;
    if (std::strcmp(a, "--gen") == 0) {
      opt.gen = true;
    } else if (std::strcmp(a, "--script") == 0) {
      if (!next_value(opt.script_path)) return false;
    } else if (std::strcmp(a, "--daemon") == 0) {
      if (!next_value(opt.daemon_path)) return false;
    } else if (std::strcmp(a, "--daemon-arg") == 0) {
      std::string v;
      if (!next_value(v)) return false;
      opt.daemon_args.push_back(std::move(v));
    } else if (std::strcmp(a, "--json") == 0) {
      if (!next_value(opt.json_path)) return false;
    } else if (std::strcmp(a, "--tenants") == 0) {
      if (!int_value(1, 64, n)) return false;
      opt.tenants = static_cast<int>(n);
    } else if (std::strcmp(a, "--requests") == 0) {
      if (!int_value(1, 1 << 20, n)) return false;
      opt.requests = static_cast<int>(n);
    } else if (std::strcmp(a, "--seed") == 0) {
      if (!int_value(0, 1LL << 62, n)) return false;
      opt.seed = static_cast<std::uint64_t>(n);
    } else if (std::strcmp(a, "--window") == 0) {
      if (!int_value(1, 256, n)) return false;
      opt.window = static_cast<int>(n);
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a);
      return false;
    }
  }
  if (opt.script_path.empty()) {
    std::fprintf(stderr, "error: --script is required\n");
    return false;
  }
  if (!opt.gen && opt.daemon_path.empty()) {
    std::fprintf(stderr, "error: replay needs --daemon (or pass --gen)\n");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Script generation.

std::string graph_body(const WeightedGraph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

std::string tenant_name(std::size_t t) {
  std::string name("t");
  name += std::to_string(t);
  return name;
}

WeightedGraph gen_graph(Rng& rng) {
  const auto n = static_cast<NodeId>(12 + rng.next_below(17));  // 12..28 nodes
  WeightedGraph g = erdos_renyi_connected(n, 0.25, rng);
  randomize_weights(g, 1, 50, rng);
  return g;
}

/// The generated workload: T initial LOADs, then an rng-interleaved mix of
/// SOLVE (explicit seeds drawn from a small per-tenant pool, so repeats hit
/// the session PackingCache), seedless SOLVE (session rng stream), MUTATE
/// (re-weights invalidate cached packings), occasional re-LOADs (half
/// byte-identical — fingerprint unchanged, cache survives — half fresh),
/// and a sprinkle of STATS probes.
std::vector<std::string> generate_requests(const Options& opt) {
  Rng rng(opt.seed);
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(opt.requests));
  std::vector<WeightedGraph> current(static_cast<std::size_t>(opt.tenants));
  std::vector<std::vector<std::uint64_t>> seed_pool(static_cast<std::size_t>(opt.tenants));
  std::int64_t id = 0;

  for (int t = 0; t < opt.tenants; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    current[ti] = gen_graph(rng);
    for (int k = 0; k < 4; ++k) seed_pool[ti].push_back(1 + rng.next_below(1u << 20));
    Request req;
    req.op = Op::kLoad;
    req.tenant = tenant_name(ti);
    req.id = ++id;
    req.weight = (t % 4) + 1;
    req.body = graph_body(current[ti]);
    payloads.push_back(req.serialize());
    if (id >= opt.requests) break;
  }

  while (id < opt.requests) {
    const auto t = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(opt.tenants)));
    const std::uint64_t d = rng.next_below(100);
    Request req;
    req.tenant = tenant_name(t);
    req.id = id + 1;
    if (d < 55) {
      req.op = Op::kSolve;
      req.has_seed = true;
      req.seed = seed_pool[t][rng.next_below(4)];
    } else if (d < 70) {
      req.op = Op::kSolve;  // session rng stream picks the seed
    } else if (d < 90) {
      req.op = Op::kMutate;
      req.edge = static_cast<EdgeId>(rng.next_below(static_cast<std::uint64_t>(current[t].m())));
      req.new_weight = rng.next_in(1, 50);
    } else if (d < 97) {
      req.op = Op::kLoad;
      req.weight = (static_cast<int>(t) % 4) + 1;
      if (rng.next_bool(0.5)) current[t] = gen_graph(rng);  // else identical body
      req.body = graph_body(current[t]);
    } else {
      req.op = Op::kStats;
      req.tenant.clear();
    }
    ++id;
    payloads.push_back(req.serialize());
  }
  return payloads;
}

int run_gen(const Options& opt) {
  const std::vector<std::string> payloads = generate_requests(opt);
  std::ofstream os(opt.script_path);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.script_path.c_str());
    return 2;
  }
  os << "# mincut_loadgen script: tenants=" << opt.tenants << " requests=" << opt.requests
     << " seed=" << opt.seed << "\n"
     << "# regenerate: mincut_loadgen --gen --tenants " << opt.tenants << " --requests "
     << opt.requests << " --seed " << opt.seed << " --script <path>\n";
  for (const std::string& p : payloads) {
    os << "%%\n" << p;
    if (p.empty() || p.back() != '\n') os << '\n';
  }
  std::fprintf(stderr, "mincut_loadgen: wrote %zu request(s) to %s\n", payloads.size(),
               opt.script_path.c_str());
  return 0;
}

/// Splits a script file back into request payloads (see the format note in
/// the header comment). The payload is everything between '%%' separator
/// lines, minus one trailing newline.
bool read_script(const std::string& path, std::vector<std::string>& payloads) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  std::string record;
  bool in_record = false;
  const auto flush = [&] {
    if (!in_record) return;
    if (!record.empty() && record.back() == '\n') record.pop_back();
    payloads.push_back(record);
    record.clear();
  };
  while (std::getline(is, line)) {
    if (line == "%%") {
      flush();
      in_record = true;
      continue;
    }
    if (in_record) {
      record.append(line);
      record.push_back('\n');
    }
  }
  flush();
  return true;
}

// ---------------------------------------------------------------------------
// Daemon subprocess + raw-fd framing (the client half of the wire; the
// daemon side lives in src/server/protocol.cpp behind iostreams).

struct Daemon {
  pid_t pid = -1;
  int wr = -1;  // our writes -> daemon stdin
  int rd = -1;  // daemon stdout -> our reads
};

bool spawn_daemon(const Options& opt, Daemon& d) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
  d.pid = fork();
  if (d.pid < 0) return false;
  if (d.pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(opt.daemon_path.c_str()));
    for (const std::string& a : opt.daemon_args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(opt.daemon_path.c_str(), argv.data());
    std::perror("mincut_loadgen: execv");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  d.wr = to_child[1];
  d.rd = from_child[0];
  return true;
}

bool write_all(int fd, const char* buf, std::size_t len) {
  while (len > 0) {
    const ssize_t w = write(fd, buf, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buf += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

/// 1 = ok, 0 = clean EOF, -1 = error/truncation.
int read_all(int fd, char* buf, std::size_t len, bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = read(fd, buf + got, len - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return got == 0 && eof_ok ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

bool write_frame_fd(int fd, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char len_bytes[4] = {
      static_cast<char>(len & 0xff),
      static_cast<char>((len >> 8) & 0xff),
      static_cast<char>((len >> 16) & 0xff),
      static_cast<char>((len >> 24) & 0xff),
  };
  return write_all(fd, len_bytes, 4) && write_all(fd, payload.data(), payload.size());
}

int read_frame_fd(int fd, std::string& payload) {
  char len_bytes[4];
  const int rc = read_all(fd, len_bytes, 4, /*eof_ok=*/true);
  if (rc <= 0) return rc;
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | static_cast<std::uint8_t>(len_bytes[i]);
  if (len > server::kMaxFrameBytes) return -1;
  payload.resize(len);
  if (len > 0 && read_all(fd, payload.data(), len, /*eof_ok=*/false) != 1) return -1;
  return 1;
}

// ---------------------------------------------------------------------------
// Replay with differential audit.

using Clock = std::chrono::steady_clock;

struct PendingRequest {
  Op op = Op::kStats;
  Weight expected = 0;  // SOLVE: send-time Stoer–Wagner oracle value
  Clock::time_point sent;
};

struct Tally {
  std::int64_t responses_ok = 0;
  std::int64_t responses_err = 0;
  std::int64_t audit_mismatches = 0;
  std::int64_t uncertified = 0;
  std::int64_t degraded = 0;
  std::int64_t unmatched = 0;  // response id we never sent
  std::uint64_t value_checksum = 0;
  std::vector<double> latencies_ms;
  std::string last_stats_body;  // session table of the final STATS
};

int run_replay(const Options& opt) {
  std::vector<std::string> payloads;
  if (!read_script(opt.script_path, payloads)) {
    std::fprintf(stderr, "error: cannot read %s\n", opt.script_path.c_str());
    return 2;
  }
  if (payloads.empty()) {
    std::fprintf(stderr, "error: %s holds no requests\n", opt.script_path.c_str());
    return 2;
  }

  // Parse every record up front: a malformed script is a usage error, not
  // an audit result.
  std::vector<Request> requests;
  requests.reserve(payloads.size());
  std::int64_t max_id = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    Expected<Request> parsed = server::parse_request(payloads[i]);
    if (!parsed) {
      std::fprintf(stderr, "error: script record %zu: %s\n", i + 1,
                   parsed.error().to_string().c_str());
      return 2;
    }
    max_id = std::max(max_id, parsed.value().id);
    requests.push_back(std::move(parsed.value()));
  }

  signal(SIGPIPE, SIG_IGN);  // a dead daemon surfaces as a write error
  Daemon daemon;
  if (!spawn_daemon(opt, daemon)) {
    std::fprintf(stderr, "error: cannot spawn %s\n", opt.daemon_path.c_str());
    return 2;
  }

  std::mutex mu;
  std::condition_variable cv;
  std::map<std::int64_t, PendingRequest> pending;
  Tally tally;
  const std::int64_t stats_probe_id = max_id + 1;

  std::thread reader([&] {
    std::string payload;
    for (;;) {
      const int rc = read_frame_fd(daemon.rd, payload);
      if (rc <= 0) break;
      const Clock::time_point now = Clock::now();
      Expected<Response> parsed = server::parse_response(payload);
      const std::lock_guard<std::mutex> lock(mu);
      if (!parsed) {
        ++tally.unmatched;
        cv.notify_all();
        continue;
      }
      Response resp = std::move(parsed.value());
      const auto it = pending.find(resp.id);
      if (it == pending.end()) {
        ++tally.unmatched;
        cv.notify_all();
        continue;
      }
      const PendingRequest sent = it->second;
      pending.erase(it);
      tally.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - sent.sent).count());
      if (!resp.ok) {
        ++tally.responses_err;
        std::fprintf(stderr, "mincut_loadgen: id=%lld ERR %s %s\n",
                     static_cast<long long>(resp.id), resp.error_code.c_str(),
                     resp.message.c_str());
      } else {
        ++tally.responses_ok;
        if (sent.op == Op::kSolve) {
          const Weight value = resp.field_int("value", -1);
          if (value != sent.expected) {
            ++tally.audit_mismatches;
            std::fprintf(stderr,
                         "mincut_loadgen: AUDIT MISMATCH id=%lld daemon=%lld oracle=%lld\n",
                         static_cast<long long>(resp.id), static_cast<long long>(value),
                         static_cast<long long>(sent.expected));
          }
          if (resp.field_int("certified", 0) != 1) ++tally.uncertified;
          const auto tier = resp.fields.find("tier");
          if (tier == resp.fields.end() || tier->second != "exact") ++tally.degraded;
          tally.value_checksum =
              (tally.value_checksum +
               mix64(static_cast<std::uint64_t>(resp.id) * 0x9e3779b9ULL ^
                     static_cast<std::uint64_t>(value))) &
              0xffffffffULL;
        }
        if (sent.op == Op::kStats && resp.id == stats_probe_id)
          tally.last_stats_body = resp.body;
      }
      cv.notify_all();
    }
    const std::lock_guard<std::mutex> lock(mu);
    // Anything still pending at EOF was swallowed by the daemon.
    tally.unmatched += static_cast<std::int64_t>(pending.size());
    pending.clear();
    cv.notify_all();
  });

  // Mirror state: the harness's independent copy of every tenant's graph.
  std::map<std::string, WeightedGraph> mirror;
  const Clock::time_point t0 = Clock::now();
  const std::clock_t cpu0 = std::clock();
  bool wire_broken = false;

  const auto send = [&](const Request& req, Weight expected) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return static_cast<int>(pending.size()) < opt.window; });
      pending.emplace(req.id, PendingRequest{req.op, expected, Clock::now()});
    }
    if (!write_frame_fd(daemon.wr, req.serialize())) {
      wire_broken = true;
      const std::lock_guard<std::mutex> lock(mu);
      pending.erase(req.id);
    }
  };

  for (const Request& req : requests) {
    if (wire_broken) break;
    Weight expected = 0;
    switch (req.op) {
      case Op::kLoad: {
        std::istringstream is(req.body);
        Expected<WeightedGraph> g = try_read_edge_list(is);
        if (!g) {
          std::fprintf(stderr, "error: script LOAD id=%lld body: %s\n",
                       static_cast<long long>(req.id), g.error().to_string().c_str());
          break;
        }
        mirror[req.tenant] = std::move(g.value());
        break;
      }
      case Op::kMutate:
        // Out-of-range mutations are left to the daemon's BAD_MUTATION
        // reply (counted as an error response) instead of tripping the
        // mirror's assertions.
        if (req.edge >= 0 && req.edge < mirror[req.tenant].m())
          mirror[req.tenant].set_weight(req.edge, req.new_weight);
        break;
      case Op::kSolve:
        expected = baseline::stoer_wagner(mirror[req.tenant]).value;
        break;
      default:
        break;
    }
    send(req, expected);
  }

  // Drain the data plane first: STATS is control-plane and answered inline
  // on the daemon's reader thread, so probing early would snapshot sessions
  // that are still sitting in the scheduler queue.
  if (!wire_broken) {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(120), [&] { return pending.empty(); })) {
      wire_broken = true;
      std::fprintf(stderr, "mincut_loadgen: timed out waiting for %zu response(s)\n",
                   pending.size());
      kill(daemon.pid, SIGKILL);
    }
  }

  // Final probes: a STATS to harvest the per-tenant cache counters, then a
  // SHUTDOWN; closing our write end is the daemon's EOF.
  if (!wire_broken) {
    Request stats;
    stats.op = Op::kStats;
    stats.id = stats_probe_id;
    send(stats, 0);
    Request shutdown;
    shutdown.op = Op::kShutdown;
    shutdown.id = stats_probe_id + 1;
    send(shutdown, 0);
  }
  {
    // Everything answered before we hang up, so EOF is a clean boundary.
    // The reader clears `pending` on EOF, so a dead daemon cannot wedge
    // this wait; a silently hung one is cut off by the deadline.
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(120), [&] { return pending.empty(); })) {
      wire_broken = true;
      std::fprintf(stderr, "mincut_loadgen: timed out waiting for %zu response(s)\n",
                   pending.size());
      kill(daemon.pid, SIGKILL);
    }
  }
  close(daemon.wr);
  reader.join();
  close(daemon.rd);
  int status = 0;
  waitpid(daemon.pid, &status, 0);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const double cpu_ms =
      1e3 * static_cast<double>(std::clock() - cpu0) / CLOCKS_PER_SEC;

  // Per-tenant cache counters out of the final STATS session table: the
  // proof that sessions (and their packings) were reused, not rebuilt.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  int tenants_resident = 0;
  {
    std::istringstream is(tally.last_stats_body);
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      ++tenants_resident;
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos) continue;
        long long v = 0;
        if (!parse_flag_int(tok.c_str() + eq + 1, 0, 1LL << 60, v)) continue;
        if (tok.compare(0, eq, "cache_hits") == 0) cache_hits += v;
        if (tok.compare(0, eq, "cache_misses") == 0) cache_misses += v;
      }
    }
  }

  std::int64_t loads = 0;
  std::int64_t mutates = 0;
  std::int64_t solves = 0;
  for (const Request& r : requests) {
    loads += r.op == Op::kLoad ? 1 : 0;
    mutates += r.op == Op::kMutate ? 1 : 0;
    solves += r.op == Op::kSolve ? 1 : 0;
  }

  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  const auto percentile = [&](double p) {
    if (tally.latencies_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(tally.latencies_ms.size() - 1));
    return tally.latencies_ms[idx];
  };
  const double p50 = percentile(0.50);
  const double p99 = percentile(0.99);
  const double rps = wall_ms > 0.0 ? 1e3 * static_cast<double>(requests.size()) / wall_ms : 0.0;

  const bool daemon_clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  const bool failed = wire_broken || !daemon_clean || tally.audit_mismatches > 0 ||
                      tally.uncertified > 0 || tally.degraded > 0 ||
                      tally.responses_err > 0 || tally.unmatched > 0;

  std::fprintf(stderr,
               "mincut_loadgen: %zu request(s) (%lld load / %lld mutate / %lld solve), "
               "%lld ok / %lld err, audit_mismatches=%lld uncertified=%lld degraded=%lld\n"
               "mincut_loadgen: wall %.1f ms (%.0f req/s), latency p50 %.2f ms p99 %.2f ms, "
               "cache %lld hit / %lld miss across %d session(s), checksum %llu\n",
               requests.size(), static_cast<long long>(loads),
               static_cast<long long>(mutates), static_cast<long long>(solves),
               static_cast<long long>(tally.responses_ok),
               static_cast<long long>(tally.responses_err),
               static_cast<long long>(tally.audit_mismatches),
               static_cast<long long>(tally.uncertified),
               static_cast<long long>(tally.degraded), wall_ms, rps, p50, p99,
               static_cast<long long>(cache_hits), static_cast<long long>(cache_misses),
               tenants_resident, static_cast<unsigned long long>(tally.value_checksum));
  if (!daemon_clean) std::fprintf(stderr, "mincut_loadgen: daemon exit status %d\n", status);
  if (tally.unmatched > 0)
    std::fprintf(stderr, "mincut_loadgen: %lld unmatched/unparsed response(s)\n",
                 static_cast<long long>(tally.unmatched));

  if (!opt.json_path.empty()) {
    std::ofstream os(opt.json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
#ifdef UMC_BUILD_PRESET
    const char* preset = UMC_BUILD_PRESET;
#else
    const char* preset = "unknown";
#endif
#ifdef UMC_GIT_SHA
    const char* git_sha = UMC_GIT_SHA;
#else
    const char* git_sha = "unknown";
#endif
    const char* threads_env = std::getenv("UMC_THREADS");
    const std::string params = "tenants:" + std::to_string(tenants_resident) +
                               "/requests:" + std::to_string(requests.size());
    os << "{\n  \"bench\": \"mincutd\",\n  \"schema_version\": 2,\n"
       << "  \"build_preset\": \"" << preset << "\",\n"
       << "  \"git_sha\": \"" << git_sha << "\",\n"
       << "  \"umc_threads\": \"" << (threads_env == nullptr ? "" : threads_env) << "\",\n"
       << "  \"runs\": [\n    {\"id\": \"Loadgen/" << params << "\", \"name\": \"Loadgen\", "
       << "\"params\": \"" << params << "\", \"iterations\": 1, \"wall_ms\": " << wall_ms
       << ", \"cpu_ms\": " << cpu_ms << ", \"counters\": {"
       << "\"requests\": " << requests.size() << ", \"loads\": " << loads
       << ", \"mutates\": " << mutates << ", \"solves\": " << solves
       << ", \"responses_ok\": " << tally.responses_ok
       << ", \"responses_err\": " << tally.responses_err
       << ", \"audit_mismatches\": " << tally.audit_mismatches
       << ", \"uncertified\": " << tally.uncertified << ", \"degraded\": " << tally.degraded
       << ", \"value_checksum\": " << tally.value_checksum
       << ", \"cache_hits_total\": " << cache_hits
       << ", \"cache_misses_total\": " << cache_misses
       << ", \"tenants\": " << tenants_resident << ", \"latency_p50_ms\": " << p50
       << ", \"latency_p99_ms\": " << p99 << ", \"throughput_rps\": " << rps << "}}\n  ]\n}\n";
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  return opt.gen ? run_gen(opt) : run_replay(opt);
}
