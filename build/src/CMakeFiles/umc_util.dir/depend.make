# Empty dependencies file for umc_util.
# This may be replaced when dependencies are built.
