#include "mincut/one_respect.hpp"

#include <algorithm>

#include "minoragg/network.hpp"
#include "minoragg/tree_primitives.hpp"

namespace umc::mincut {

namespace {

/// Aggregation operator for the Theorem 18 delta routing: a key-sorted list
/// of (target ancestor, weight delta) pairs, merged key-wise. In the model
/// the support stays Õ(1) (targets are light-edge endpoints on the root
/// path, Fact 3); the simulation keeps all keys, which only affects memory.
struct DeltaMapAgg {
  using value_type = std::vector<std::pair<NodeId, Weight>>;
  static value_type identity() { return {}; }
  static value_type merge(value_type a, value_type b) {
    value_type out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
        out.push_back(a[i++]);
      } else if (i == a.size() || b[j].first < a[i].first) {
        out.push_back(b[j++]);
      } else {
        out.emplace_back(a[i].first, a[i].second + b[j].second);
        ++i;
        ++j;
      }
    }
    return out;
  }
};

/// True iff `l` appears as the TOP endpoint of a light edge in `info` —
/// i.e. the node can address l as a delta target (Theorem 18's
/// "responsible" choice).
bool info_contains_top(const HlInfo& info, NodeId l) {
  for (const LightEdge& le : info.light_edges)
    if (le.top == l) return true;
  return false;
}

}  // namespace

OneRespectResult one_respecting_cuts(const RootedTree& t, std::span<const EdgeId> origin,
                                     const HeavyLightDecomposition& hld,
                                     minoragg::Ledger& ledger) {
  const WeightedGraph& g = t.host();
  UMC_ASSERT(static_cast<EdgeId>(origin.size()) == g.m());
  minoragg::Network net(g, ledger);

  // Step 1: A(v) = weighted degree — one aggregation round.
  std::vector<Weight> a(static_cast<std::size_t>(g.n()), 0);
  {
    const auto wd = net.neighborhood_aggregate<SumAgg>([&g](EdgeId e) {
      const Weight w = g.edge(e).w;
      return std::pair<std::int64_t, std::int64_t>{w, w};
    });
    for (NodeId v = 0; v < g.n(); ++v) a[static_cast<std::size_t>(v)] = wd[static_cast<std::size_t>(v)];
  }

  // Step 2a: ancestor-descendant edges deliver -2w to their LCA (= upper
  // endpoint) in one aggregation round.
  {
    const auto corr = net.neighborhood_aggregate<SumAgg>([&](EdgeId e) {
      const Edge& ed = g.edge(e);
      const NodeId l = HeavyLightDecomposition::lca_from_info(ed.u, hld.info(ed.u), ed.v,
                                                              hld.info(ed.v));
      std::int64_t to_u = 0, to_v = 0;
      if (l == ed.u) to_u = -2 * ed.w;
      if (l == ed.v) to_v = -2 * ed.w;
      return std::pair{to_u, to_v};
    });
    for (NodeId v = 0; v < g.n(); ++v) a[static_cast<std::size_t>(v)] += corr[static_cast<std::size_t>(v)];
  }

  // Step 2b: non-ancestor-descendant edges route -2w to the LCA through a
  // subtree sum keyed by target. The responsible endpoint is one whose
  // HL-info lists the LCA as a light-edge top (Fact 4 guarantees >= one).
  {
    std::vector<DeltaMapAgg::value_type> deltas(static_cast<std::size_t>(g.n()));
    ledger.charge(1);  // edges hand their (target, delta) to the responsible endpoint
    for (EdgeId e = 0; e < g.m(); ++e) {
      const Edge& ed = g.edge(e);
      const NodeId l = HeavyLightDecomposition::lca_from_info(ed.u, hld.info(ed.u), ed.v,
                                                              hld.info(ed.v));
      if (l == ed.u || l == ed.v) continue;  // handled in step 2a
      const NodeId responsible = info_contains_top(hld.info(ed.u), l) ? ed.u : ed.v;
      UMC_ASSERT_MSG(info_contains_top(hld.info(responsible), l),
                     "Fact 4: the LCA is a light-edge top of one endpoint");
      deltas[static_cast<std::size_t>(responsible)].emplace_back(l, -2 * ed.w);
    }
    for (auto& d : deltas) {
      // Canonicalize: sorted, one entry per key.
      std::sort(d.begin(), d.end());
      DeltaMapAgg::value_type canon;
      for (const auto& [key, w] : d) {
        if (!canon.empty() && canon.back().first == key) {
          canon.back().second += w;
        } else {
          canon.emplace_back(key, w);
        }
      }
      d = std::move(canon);
    }
    const auto routed = minoragg::hl_subtree_sums<DeltaMapAgg>(t, hld, deltas, ledger);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [target, delta] : routed[static_cast<std::size_t>(v)]) {
        if (target == v) a[static_cast<std::size_t>(v)] += delta;
      }
    }
  }

  // Step 3: Cut(parent_edge(x)) = subtree sum of A at x.
  const auto sums = minoragg::hl_subtree_sums<SumAgg>(
      t, hld, std::span<const std::int64_t>(a.data(), a.size()), ledger);

  OneRespectResult out;
  out.cut.assign(static_cast<std::size_t>(g.m()), 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const EdgeId pe = t.parent_edge(v);
    if (pe == kNoEdge) continue;
    out.cut[static_cast<std::size_t>(pe)] = sums[static_cast<std::size_t>(v)];
    const EdgeId orig = origin[static_cast<std::size_t>(pe)];
    if (orig != kNoEdge)
      out.best.absorb(CutResult{sums[static_cast<std::size_t>(v)], orig, kNoEdge});
  }
  return out;
}

}  // namespace umc::mincut
