#include "mincut/interest.hpp"

#include <algorithm>
#include <set>

#include "minoragg/path_sums.hpp"
#include "sketch/misra_gries.hpp"

namespace umc::mincut {

namespace {

/// Sketch capacity h for the Lemma 32 heavy hitters: with h = 5 every key
/// of frequency > W/2 (strong interest) is reported and every reported key
/// has frequency > W/5 (weak interest).
constexpr int kInterestCapacity = 5;

struct MgAgg {
  using value_type = MisraGries;
  static value_type identity() { return MisraGries(kInterestCapacity); }
  static value_type merge(value_type a, const value_type& b) {
    return MisraGries::merge(std::move(a), b);
  }
};

}  // namespace

std::vector<int> path_of_node(const StarInstance& inst) {
  std::vector<int> of(static_cast<std::size_t>(inst.graph.n()), -1);
  for (int i = 0; i < inst.k(); ++i)
    for (const NodeId v : inst.path_nodes[static_cast<std::size_t>(i)])
      of[static_cast<std::size_t>(v)] = i;
  return of;
}

std::vector<std::vector<int>> interest_lists(const StarInstance& inst,
                                             minoragg::Ledger& ledger) {
  const std::vector<int> of = path_of_node(inst);
  // One round: each cross-edge labels both endpoints with the opposite
  // path id, weighted by the edge weight (Lemma 32's label assignment).
  ledger.charge(1);
  std::vector<MisraGries> node_sketch(static_cast<std::size_t>(inst.graph.n()),
                                      MgAgg::identity());
  for (const Edge& e : inst.graph.edges()) {
    const int pu = of[static_cast<std::size_t>(e.u)];
    const int pv = of[static_cast<std::size_t>(e.v)];
    if (pu < 0 || pv < 0 || pu == pv) continue;  // not a cross-edge
    node_sketch[static_cast<std::size_t>(e.u)].add(static_cast<MisraGries::Key>(pv), e.w);
    node_sketch[static_cast<std::size_t>(e.v)].add(static_cast<MisraGries::Key>(pu), e.w);
  }

  // Per path: suffix-fold the sketches bottom-up (the suffix at node v is
  // the sketch of cross-edges covering v's parent edge); all paths are
  // node-disjoint, so they run simultaneously (Corollary 11).
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(inst.k()));
  std::vector<minoragg::Ledger> path_ledgers;
  for (int i = 0; i < inst.k(); ++i) {
    const auto& nodes = inst.path_nodes[static_cast<std::size_t>(i)];
    std::vector<MisraGries> input;
    input.reserve(nodes.size());
    for (const NodeId v : nodes) input.push_back(node_sketch[static_cast<std::size_t>(v)]);
    minoragg::Ledger pl;
    const auto suffix = minoragg::path_suffix_sums<MgAgg>(input, pl);
    std::set<int> found;
    for (const MisraGries& s : suffix)
      for (const MisraGries::Key key : s.heavy_hitters()) found.insert(static_cast<int>(key));
    lists[static_cast<std::size_t>(i)].assign(found.begin(), found.end());
    path_ledgers.push_back(std::move(pl));
  }
  ledger.charge_parallel(path_ledgers);
  ledger.charge(1);  // union of the per-node heavy-hitter lists per path
  return lists;
}

std::vector<std::vector<int>> interest_graph(const std::vector<std::vector<int>>& lists) {
  const auto interested = [&lists](int i, int j) {
    const auto& li = lists[static_cast<std::size_t>(i)];
    return std::binary_search(li.begin(), li.end(), j);
  };
  std::vector<std::vector<int>> adj(lists.size());
  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (const int j : lists[i]) {
      if (j == static_cast<int>(i)) continue;
      if (static_cast<std::size_t>(j) < i) continue;  // handle each pair once
      if (interested(j, static_cast<int>(i))) {
        adj[i].push_back(j);
        adj[static_cast<std::size_t>(j)].push_back(static_cast<int>(i));
      }
    }
  }
  for (auto& a : adj) std::sort(a.begin(), a.end());
  return adj;
}

}  // namespace umc::mincut
