file(REMOVE_RECURSE
  "CMakeFiles/bench_star_merge_ablation.dir/bench_star_merge_ablation.cpp.o"
  "CMakeFiles/bench_star_merge_ablation.dir/bench_star_merge_ablation.cpp.o.d"
  "bench_star_merge_ablation"
  "bench_star_merge_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_merge_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
