file(REMOVE_RECURSE
  "libumc_graph.a"
)
