// Experiment E24 companion (ARQ modes): stop-and-wait vs sliding-window
// go-back-N on the E19 workload.
//
// Each configuration runs compiled Borůvka over a ReliableChannel twice on
// the identical (graph, cost, FaultPlan) triple — once per ArqMode — and
// reports, per (family, p): the fault-free round baseline, each mode's total
// charged rounds (physical + backoff + GBN drain flush, i.e. net.rounds()
// after drain()), the per-mode reliability multipliers, and their ratio
// `arq_saving` = rounds_saw / rounds_gbn. The ISSUE's acceptance number is
// arq_saving >= 1.5 at p = 0.01, which CI bench-smoke gates explicitly.
//
// All round counters are deterministic (seeded fault draws, seeded costs),
// so they are diffable against the committed BENCH_fault_arq.json baseline.
// p = 0 is the identity row in BOTH modes: the trivial plan short-circuits
// to the plain simulator, so rounds_saw == rounds_gbn == rounds_faultfree
// and `p0_identical` asserts the bit-identity the GBN upgrade promised.

#include "bench_common.hpp"
#include "congest/compiled_network.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/properties.hpp"

namespace umc {
namespace {

/// p encoded as an integer per-mille so it can ride in a benchmark Arg.
constexpr std::int64_t kPerMille[] = {0, 10, 100, 300};

struct ModeOutcome {
  std::int64_t rounds = 0;  // net.rounds() after drain(): the full charge
  fault::ReliableStats stats{};
  bool mst_ok = false;
};

ModeOutcome run_mode(const WeightedGraph& g, const std::vector<std::int64_t>& cost,
                     const fault::FaultPlan& plan, const congest::CompiledBoruvkaResult& base,
                     fault::ArqMode mode) {
  fault::FaultModel model(g, plan);
  fault::ReliableConfig cfg;
  cfg.mode = mode;
  fault::ReliableChannel net(g, &model, cfg);
  const congest::CompiledBoruvkaResult res = congest::compiled_boruvka(net, cost);
  net.drain();
  ModeOutcome out;
  out.rounds = net.rounds();
  out.stats = net.stats();
  out.mst_ok = res.tree == base.tree;
  return out;
}

void run_fault_arq(benchmark::State& state, const WeightedGraph& g) {
  const double p = static_cast<double>(state.range(1)) / 1000.0;
  Rng rng(19);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()));
  for (auto& c : cost) c = rng.next_in(1, 1000);

  const congest::CompiledBoruvkaResult base = congest::compiled_boruvka(g, cost);

  fault::FaultPlan plan;
  plan.seed = 77;
  plan.drop_p = p;
  ModeOutcome saw{};
  ModeOutcome gbn{};
  for (auto _ : state) {
    saw = run_mode(g, cost, plan, base, fault::ArqMode::kStopAndWait);
    gbn = run_mode(g, cost, plan, base, fault::ArqMode::kGoBackN);
    benchmark::DoNotOptimize(saw);
    benchmark::DoNotOptimize(gbn);
  }

  const auto rounds0 = static_cast<double>(base.congest_rounds);
  state.counters["n"] = g.n();
  state.counters["D"] = approx_diameter(g);
  state.counters["drop_p_permille"] = static_cast<double>(state.range(1));
  state.counters["rounds_faultfree"] = rounds0;
  state.counters["rounds_saw"] = static_cast<double>(saw.rounds);
  state.counters["rounds_gbn"] = static_cast<double>(gbn.rounds);
  state.counters["saw_multiplier"] = static_cast<double>(saw.rounds) / rounds0;
  state.counters["gbn_multiplier"] = static_cast<double>(gbn.rounds) / rounds0;
  state.counters["arq_saving"] =
      static_cast<double>(saw.rounds) / static_cast<double>(gbn.rounds);
  state.counters["retransmissions_saw"] = static_cast<double>(saw.stats.retransmissions);
  state.counters["retransmissions_gbn"] = static_cast<double>(gbn.stats.retransmissions);
  state.counters["piggybacked_acks"] = static_cast<double>(gbn.stats.piggybacked_acks);
  state.counters["ack_flush_rounds"] = static_cast<double>(gbn.stats.ack_flush_rounds);
  state.counters["backoff_saw"] = static_cast<double>(saw.stats.backoff_rounds);
  state.counters["backoff_gbn"] = static_cast<double>(gbn.stats.backoff_rounds);
  state.counters["mst_ok"] = saw.mst_ok && gbn.mst_ok ? 1.0 : 0.0;
  // Identity check: at p = 0 both modes must charge exactly the fault-free
  // rounds (trivial-plan short-circuit). Reported 1 at p > 0 so the counter
  // is uniformly gateable.
  state.counters["p0_identical"] =
      (p > 0.0 || (saw.rounds == base.congest_rounds && gbn.rounds == base.congest_rounds &&
                   saw.mst_ok && gbn.mst_ok))
          ? 1.0
          : 0.0;
}

void BM_FaultArqGrid(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  run_fault_arq(state, grid_graph(side, side));
}
void BM_FaultArqEr(benchmark::State& state) {
  run_fault_arq(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 8.0, 43));
}
void BM_FaultArqPath(benchmark::State& state) {
  run_fault_arq(state, path_graph(static_cast<NodeId>(state.range(0))));
}

void arq_args(benchmark::internal::Benchmark* b, std::initializer_list<std::int64_t> sizes) {
  for (const std::int64_t s : sizes)
    for (const std::int64_t pm : kPerMille) b->Args({s, pm});
}

BENCHMARK(BM_FaultArqGrid)
    ->Apply([](auto* b) { arq_args(b, {8, 16}); })
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultArqEr)
    ->Apply([](auto* b) { arq_args(b, {64, 256}); })
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultArqPath)
    ->Apply([](auto* b) { arq_args(b, {64, 256}); })
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
