# Empty compiler generated dependencies file for bench_compiled_execution.
# This may be replaced when dependencies are built.
