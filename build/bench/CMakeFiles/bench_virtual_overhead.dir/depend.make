# Empty dependencies file for bench_virtual_overhead.
# This may be replaced when dependencies are built.
