#include "congest/gather_baseline.hpp"

#include <deque>

#include "baseline/stoer_wagner.hpp"
#include "congest/bfs_tree.hpp"
#include "congest/congest_net.hpp"
#include "util/assert.hpp"

namespace umc::congest {

GatherBaselineResult gather_exact_mincut(const WeightedGraph& g, NodeId root) {
  CongestNetwork net(g);
  const BfsTree bfs = build_bfs_tree(net, root);

  // Every edge descriptor (u, v, w — one O(log n)-bit message) is injected
  // at its smaller endpoint and pipelined up the BFS tree greedily.
  std::vector<std::deque<EdgeId>> queue(static_cast<std::size_t>(g.n()));
  for (EdgeId e = 0; e < g.m(); ++e)
    queue[static_cast<std::size_t>(std::min(g.edge(e).u, g.edge(e).v))].push_back(e);

  std::size_t at_root = queue[static_cast<std::size_t>(root)].size();
  while (at_root < static_cast<std::size_t>(g.m())) {
    for (NodeId v = 0; v < g.n(); ++v) {
      if (v == root || queue[static_cast<std::size_t>(v)].empty()) continue;
      const EdgeId desc = queue[static_cast<std::size_t>(v)].front();
      queue[static_cast<std::size_t>(v)].pop_front();
      net.send(v, bfs.parent_edge[static_cast<std::size_t>(v)], desc);
    }
    net.end_round();
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const Message& m : net.inbox(v)) {
        if (v == root) {
          ++at_root;
        } else {
          queue[static_cast<std::size_t>(v)].push_back(static_cast<EdgeId>(m.payload));
        }
      }
    }
  }

  GatherBaselineResult out;
  out.rounds_used = net.rounds();
  out.min_cut_value = baseline::stoer_wagner(g).value;  // local computation at root
  return out;
}

}  // namespace umc::congest
