// Experiment E3 (Theorem 40): the DETERMINISTIC 2-respecting min-cut runs
// in poly(log n) Minor-Aggregation rounds — the result resolving the open
// question of Dory et al. [7].
//
// We sweep n across three families, report MA rounds and the fitted
// exponent p in rounds ≈ c·(log2 n)^p between consecutive sizes (a constant
// p across the sweep = polylog growth; a linear-round algorithm would show
// p growing without bound), and demonstrate determinism by running twice
// and comparing transcripts.

#include <cmath>

#include "bench_common.hpp"
#include "mincut/two_respect.hpp"

namespace umc {
namespace {

struct Measured {
  std::int64_t rounds = 0;
  Weight value = 0;
};

Measured run_once(const WeightedGraph& g) {
  minoragg::Ledger ledger;
  const auto tree = bfs_spanning_tree(g, 0);
  const mincut::CutResult r = mincut::two_respecting_mincut(g, tree, 0, ledger);
  return {ledger.rounds(), r.value};
}

void run_family(benchmark::State& state, const WeightedGraph& g) {
  Measured first{}, second{};
  for (auto _ : state) {
    first = run_once(g);
    benchmark::DoNotOptimize(first);
  }
  second = run_once(g);
  state.counters["n"] = g.n();
  state.counters["ma_rounds"] = static_cast<double>(first.rounds);
  state.counters["rounds_per_log6"] =
      static_cast<double>(first.rounds) /
      std::pow(std::log2(static_cast<double>(g.n())), 6.0);
  state.counters["value"] = static_cast<double>(first.value);
  state.counters["deterministic"] =
      (first.rounds == second.rounds && first.value == second.value) ? 1.0 : 0.0;
}

void BM_Grid2Respect(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  run_family(state, benchutil::weighted_grid(side, 3));
}

void BM_Er2Respect(benchmark::State& state) {
  run_family(state, benchutil::weighted_er(static_cast<NodeId>(state.range(0)), 6.0, 9));
}

void BM_Tree2Respect(benchmark::State& state) {
  // Sparse worst case: a random tree plus n/4 chords.
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(17);
  WeightedGraph g = random_connected(n, n - 1 + n / 4, rng);
  randomize_weights(g, 1, 100, rng);
  run_family(state, g);
}

BENCHMARK(BM_Grid2Respect)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Er2Respect)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tree2Respect)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
