#include "baseline/karger_stein.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace umc::baseline {

namespace {

/// Working representation: contracted multigraph as an edge list over
/// supernode labels, plus the live supernode count and the original-node →
/// supernode map (the merge history the witness is read off of; it consumes
/// no randomness, so tracking it leaves the draw sequence untouched).
struct Contracted {
  struct E {
    NodeId u, v;
    Weight w;
  };
  std::vector<E> edges;
  std::vector<NodeId> label;  // original node -> current supernode
  NodeId live = 0;

  /// Contract weight-proportionally until `target` supernodes remain.
  void contract_to(NodeId target, Rng& rng) {
    while (live > target) {
      Weight total = 0;
      for (const E& e : edges) total += e.w;
      UMC_ASSERT_MSG(total > 0, "graph must stay connected during contraction");
      Weight r = static_cast<Weight>(rng.next_below(static_cast<std::uint64_t>(total)));
      std::size_t pick = 0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (r < edges[i].w) {
          pick = i;
          break;
        }
        r -= edges[i].w;
      }
      const NodeId keep = edges[pick].u;
      const NodeId gone = edges[pick].v;
      std::vector<E> next;
      next.reserve(edges.size());
      for (E e : edges) {
        if (e.u == gone) e.u = keep;
        if (e.v == gone) e.v = keep;
        if (e.u != e.v) next.push_back(e);
      }
      edges = std::move(next);
      for (NodeId& l : label)
        if (l == gone) l = keep;
      --live;
    }
  }

  [[nodiscard]] Weight cut_value() const {
    Weight total = 0;
    for (const E& e : edges) total += e.w;
    return total;
  }
};

struct Best {
  Weight value = 0;
  std::vector<NodeId> side;  // original nodes of one side of the cut
};

Best recursive_contract(Contracted g, Rng& rng) {
  if (g.live <= 6) {
    g.contract_to(2, rng);
    Best out;
    out.value = g.cut_value();
    UMC_ASSERT_MSG(!g.edges.empty(), "2 supernodes of a connected graph share an edge");
    const NodeId rep = g.edges.front().u;
    for (NodeId v = 0; v < static_cast<NodeId>(g.label.size()); ++v)
      if (g.label[static_cast<std::size_t>(v)] == rep) out.side.push_back(v);
    return out;
  }
  const NodeId target = static_cast<NodeId>(
      std::ceil(static_cast<double>(g.live) / 1.4142135623730951)) + 1;
  Contracted a = g;
  a.contract_to(target, rng);
  Contracted b = std::move(g);
  b.contract_to(target, rng);
  Best ra = recursive_contract(std::move(a), rng);
  Best rb = recursive_contract(std::move(b), rng);
  return ra.value <= rb.value ? std::move(ra) : std::move(rb);
}

Best best_of(const WeightedGraph& g, int repeats, Rng& rng) {
  UMC_ASSERT(g.n() >= 2);
  UMC_ASSERT(repeats >= 1);
  Contracted base;
  base.live = g.n();
  base.edges.reserve(static_cast<std::size_t>(g.m()));
  for (const Edge& e : g.edges()) base.edges.push_back({e.u, e.v, e.w});
  base.label.resize(static_cast<std::size_t>(g.n()));
  for (NodeId v = 0; v < g.n(); ++v) base.label[static_cast<std::size_t>(v)] = v;
  Best best = recursive_contract(base, rng);
  for (int r = 1; r < repeats; ++r) {
    Best next = recursive_contract(base, rng);
    if (next.value < best.value) best = std::move(next);
  }
  return best;
}

}  // namespace

Weight karger_stein_min_cut(const WeightedGraph& g, int repeats, Rng& rng) {
  return best_of(g, repeats, rng).value;
}

GlobalMinCut karger_stein_witness(const WeightedGraph& g, int repeats, Rng& rng) {
  Best best = best_of(g, repeats, rng);
  GlobalMinCut out;
  out.value = best.value;
  out.side = std::move(best.side);
  return out;
}

}  // namespace umc::baseline
