#pragma once

// Literal Theorem 17 execution: run Minor-Aggregation rounds ON a CONGEST
// network, with every step realized by real message traffic.
//
// One Definition 9 round compiles to:
//   1. supernode identification — a min-fold part-wise aggregation over the
//      contracted components (each node learns the smallest id in its
//      supernode, the leader-election step of the Theorem 17 proof);
//   2. consensus — one part-wise aggregation of x_v over the same parts;
//   3. y-exchange — one CONGEST round in which every node sends its y over
//      every incident edge, so each edge endpoint holds both y-values;
//   4. aggregation — each node folds the z-values of its incident
//      surviving edges locally, then one more part-wise aggregation.
//
// Values are one CONGEST word (int64); min-folds may carry packed
// (key, tag) pairs. This is enough to execute Borůvka end to end and
// measure the REAL CONGEST round count of a compiled Minor-Aggregation
// algorithm, complementing the multiplicative cost model in compile.hpp.

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "congest/partwise.hpp"
#include "minoragg/round_engine.hpp"
#include "util/assert.hpp"

namespace umc::congest {

struct CompiledRoundResult {
  std::vector<std::int64_t> consensus;   // y of v's supernode, per node
  std::vector<std::int64_t> aggregate;   // z-fold of v's supernode, per node
  std::vector<NodeId> supernode;         // smallest node id in v's supernode
  std::int64_t congest_rounds = 0;       // real rounds this MA round cost
};

/// `edge_values(e, y_u_side, y_v_side)` returns the z-pair of a surviving
/// minor edge, exactly as in minoragg::Network::round.
///
/// The contraction partition (parts, supernode leaders, surviving-edge
/// list) comes from `engine`'s cached RoundPlan — drivers that execute many
/// rounds against recurring contraction patterns (Theorem 17 schedules)
/// skip the per-round DSU. The engine must wrap the same graph as `net`.
[[nodiscard]] CompiledRoundResult execute_ma_round(
    CongestNetwork& net, minoragg::RoundEngine& engine, const std::vector<bool>& contract,
    std::span<const std::int64_t> node_input, PartwiseOp consensus_op,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t,
                                                              std::int64_t)>& edge_values,
    PartwiseOp aggregate_op);

/// Convenience overload with a throwaway engine (single-shot rounds).
[[nodiscard]] CompiledRoundResult execute_ma_round(
    CongestNetwork& net, const std::vector<bool>& contract,
    std::span<const std::int64_t> node_input, PartwiseOp consensus_op,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t,
                                                              std::int64_t)>& edge_values,
    PartwiseOp aggregate_op);

/// Models each node's stable storage: the algorithm state a node journals
/// after every committed Minor-Aggregation round, and restores from after a
/// crash-restart. For Borůvka the per-node words are the ids of the node's
/// incident selected edges; the global selected set is reconstructible as
/// the union of all journals (every selected edge is incident to two
/// nodes, so it survives even a one-endpoint loss).
///
/// The journal is append-only: a committed round appends only the words NEW
/// since the previous commit (for Borůvka that is exact — an edge chosen by
/// the min-fold was never selected before, since already-selected edges are
/// minor self-loops and excluded from the surviving-edge list), so the
/// cumulative journal equals the full snapshot and a commit costs O(delta)
/// instead of the seed's O(n + m) re-scan of every node's incident edges.
class NodeCheckpointStore {
 public:
  explicit NodeCheckpointStore(NodeId n) : words_(static_cast<std::size_t>(n)) {}

  /// Append one stable-storage word to v's journal. Only call between a
  /// round's successful execution and its commit().
  void append(NodeId v, std::int64_t word) {
    words_[static_cast<std::size_t>(v)].push_back(word);
  }

  /// Commit: every journal now reflects state as of `ma_round`.
  void commit(std::int64_t ma_round) {
    UMC_ASSERT_MSG(ma_round > committed_, "checkpoints advance monotonically");
    committed_ = ma_round;
  }

  /// v's cumulative journal (== its full snapshot, see class comment).
  [[nodiscard]] std::span<const std::int64_t> words(NodeId v) const {
    return words_[static_cast<std::size_t>(v)];
  }

  /// The newest round every node has journaled — the last consistent round
  /// a crash-restarted node can be rolled back to (-1: nothing committed).
  [[nodiscard]] std::int64_t consistent_round() const { return committed_; }

 private:
  std::vector<std::vector<std::int64_t>> words_;
  std::int64_t committed_ = -1;
};

struct CompiledBoruvkaResult {
  std::vector<EdgeId> tree;
  std::int64_t congest_rounds = 0;  // REAL total, message-level
  int ma_rounds = 0;                // Borůvka iterations committed
  /// Crash recovery accounting (0 on fault-free networks): MA rounds
  /// discarded because a node crash-stopped mid-round, and node restores
  /// performed from the checkpoint store.
  int rollbacks = 0;
  int recoveries = 0;
};

/// Borůvka MST executed entirely through compiled Minor-Aggregation rounds
/// on the CONGEST network (costs as external int64 values; ties by id).
[[nodiscard]] CompiledBoruvkaResult compiled_boruvka(const WeightedGraph& g,
                                                     std::span<const std::int64_t> cost);

/// Same, on a caller-supplied network — pass a fault::ReliableChannel to
/// execute under seeded faults. If the network carries a FaultInjector,
/// every committed MA round journals per-node state into a
/// NodeCheckpointStore; an MA round during which any node crash-stopped is
/// rolled back (per-node state rebuilt from the journals of the last
/// consistent round) and re-executed, so restarted nodes rejoin from their
/// checkpoint instead of poisoning the run. The wasted traffic stays on the
/// round counter.
[[nodiscard]] CompiledBoruvkaResult compiled_boruvka(CongestNetwork& net,
                                                     std::span<const std::int64_t> cost);

}  // namespace umc::congest
