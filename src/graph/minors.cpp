#include "graph/minors.hpp"

#include "graph/dsu.hpp"

namespace umc {

DerivedGraph contract_edges(const WeightedGraph& g, const std::vector<bool>& contract) {
  UMC_ASSERT(static_cast<EdgeId>(contract.size()) == g.m());
  Dsu dsu(g.n());
  for (EdgeId e = 0; e < g.m(); ++e)
    if (contract[static_cast<std::size_t>(e)]) dsu.unite(g.edge(e).u, g.edge(e).v);

  DerivedGraph out;
  out.node_map.assign(static_cast<std::size_t>(g.n()), kNoNode);
  // Supernode ids in increasing order of their DSU representative's id.
  std::vector<NodeId> rep_to_id(static_cast<std::size_t>(g.n()), kNoNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const NodeId r = dsu.find(v);
    if (rep_to_id[static_cast<std::size_t>(r)] == kNoNode)
      rep_to_id[static_cast<std::size_t>(r)] = next++;
    out.node_map[static_cast<std::size_t>(v)] = rep_to_id[static_cast<std::size_t>(r)];
  }
  out.graph = WeightedGraph(next);
  for (EdgeId e = 0; e < g.m(); ++e) {
    if (contract[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    const NodeId u = out.node_map[static_cast<std::size_t>(ed.u)];
    const NodeId v = out.node_map[static_cast<std::size_t>(ed.v)];
    if (u == v) continue;  // became a self-loop
    out.graph.add_edge(u, v, ed.w);
    out.edge_origin.push_back(e);
  }
  return out;
}

DerivedGraph induced_subgraph(const WeightedGraph& g, const std::vector<bool>& keep) {
  UMC_ASSERT(static_cast<NodeId>(keep.size()) == g.n());
  DerivedGraph out;
  out.node_map.assign(static_cast<std::size_t>(g.n()), kNoNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.n(); ++v)
    if (keep[static_cast<std::size_t>(v)]) out.node_map[static_cast<std::size_t>(v)] = next++;
  out.graph = WeightedGraph(next);
  for (EdgeId e = 0; e < g.m(); ++e) {
    const Edge& ed = g.edge(e);
    const NodeId u = out.node_map[static_cast<std::size_t>(ed.u)];
    const NodeId v = out.node_map[static_cast<std::size_t>(ed.v)];
    if (u == kNoNode || v == kNoNode) continue;
    out.graph.add_edge(u, v, ed.w);
    out.edge_origin.push_back(e);
  }
  return out;
}

}  // namespace umc
