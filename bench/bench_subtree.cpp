// Experiment E6 (Figures 3/4 / Theorem 39): between-subtree instances.
//
// The algorithm examines chi * (maxHL+1)^2 = O(log^3 n) star
// configurations; the "subtree_star_calls" counter (after the
// no-cross-edge pruning) and the MA round count are reported against the
// log^3 budget.

#include <cmath>

#include "bench_common.hpp"
#include "mincut/subtree_instance.hpp"

namespace umc {
namespace {

void BM_BetweenSubtree(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(7 + static_cast<std::uint64_t>(n));
  WeightedGraph g = random_connected(n, 3 * n, rng);
  randomize_weights(g, 1, 100, rng);
  const auto tree = bfs_spanning_tree(g, 0);
  std::vector<EdgeId> origin(static_cast<std::size_t>(g.m()), kNoEdge);
  for (const EdgeId e : tree) origin[static_cast<std::size_t>(e)] = e;
  const std::vector<bool> is_virtual(static_cast<std::size_t>(g.n()), false);

  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(
        mincut::between_subtree_mincut(g, tree, 0, origin, is_virtual, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = n;
  state.counters["star_calls_per_log3"] =
      static_cast<double>(ledger.counter("subtree_star_calls")) /
      std::pow(std::log2(static_cast<double>(n)), 3.0);
}

BENCHMARK(BM_BetweenSubtree)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
