#pragma once

// FairScheduler — per-tenant weighted-fair queuing with admission control
// for the mincutd request plane.
//
// Each tenant owns a FIFO queue of jobs (closures built by the engine:
// execute request, write response). Dispatch is STRIDE SCHEDULING: every
// tenant carries a virtual "pass"; a free worker claims the head job of the
// eligible tenant with the minimum pass (ties broken by tenant name, so
// dispatch order is deterministic at width 1), then advances that tenant's
// pass by kStrideScale / weight. A tenant with weight 2 therefore gets
// twice the service rate of a weight-1 tenant, and a flooding tenant
// cannot starve anyone: after at most (backlog of all OTHER tenants,
// weight-scaled) dispatches, every queued request has been served. A
// tenant idle long enough to fall behind the global virtual time is
// brought up to it on its next submit (no banked credit), which is what
// bounds the latency ratio the fairness test asserts.
//
// Eligibility = nonempty queue AND in-flight < per_tenant_inflight. The
// default in-flight cap of 1 makes each tenant's requests execute in
// arrival order — LOAD, MUTATE, SOLVE sequences keep their meaning without
// per-session locking — while distinct tenants run concurrently.
//
// Admission control is two bounded queues deep: a global ceiling and a
// per-tenant ceiling, checked at submit. Rejections are structured Admit
// codes the engine translates into QUEUE_FULL / TENANT_OVERLOAD /
// SHUTTING_DOWN protocol errors — an overloaded daemon degrades by
// rejecting crisply, never by crashing or stalling the wire.
//
// Workers run as ONE generation of long-lived jobs on the shared
// util::ThreadPool (run() blocks until shutdown drains). Inside a pool job
// the TaskGraph degrades to inline execution, so each admitted solve runs
// sequentially on its worker; the daemon's parallelism is across tenants
// (see docs/PARALLELISM.md).

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace umc::server {

struct SchedulerConfig {
  /// Worker width of the dispatch loop (>= 1; the run() caller counts).
  int width = 1;
  /// Global admission ceiling across every tenant queue.
  int max_queued_global = 256;
  /// Per-tenant admission ceiling.
  int max_queued_per_tenant = 64;
  /// Concurrent in-flight jobs per tenant (1 = per-tenant FIFO order).
  int max_inflight_per_tenant = 1;
  /// Start with dispatch paused (tests enqueue a deterministic backlog,
  /// then resume).
  bool start_paused = false;
};

/// Admission verdicts. Everything except kAdmitted is a structured
/// rejection; the job was NOT queued.
enum class Admit { kAdmitted, kQueueFull, kTenantOverload, kShuttingDown };

[[nodiscard]] const char* to_string(Admit a);

class FairScheduler {
 public:
  using Job = std::function<void()>;

  explicit FairScheduler(SchedulerConfig cfg = {});
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Sets (or updates) a tenant's scheduling weight in [1, 1000]; takes
  /// effect from its next dispatch.
  void set_weight(const std::string& tenant, std::int64_t weight);

  /// Queues `job` on `tenant`'s FIFO, subject to admission control.
  [[nodiscard]] Admit submit(const std::string& tenant, Job job);

  /// Runs the dispatch loop across `cfg.width` threads of the shared
  /// ThreadPool (the calling thread participates). Returns after close()
  /// once every queued and in-flight job has finished.
  void run();

  /// Stops admitting (further submits return kShuttingDown) and lets run()
  /// return once the backlog drains. Idempotent, callable from any thread.
  void close();

  /// Test hook: freeze/unfreeze dispatch (admission unaffected).
  void pause();
  void resume();

  /// Blocks until nothing is queued or in flight (daemon shutdown drain;
  /// returns immediately when already idle).
  void wait_idle();

  /// Queued + in-flight jobs for one tenant (engine eviction guard).
  [[nodiscard]] int pending(const std::string& tenant) const;
  /// Queued jobs across all tenants.
  [[nodiscard]] int queued_total() const;
  [[nodiscard]] bool closed() const;

  struct Stats {
    std::int64_t admitted = 0;
    std::int64_t rejected_queue_full = 0;
    std::int64_t rejected_tenant_overload = 0;
    std::int64_t rejected_shutting_down = 0;
    std::int64_t dispatched = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// Stride quantum: pass += kStrideScale / weight per dispatch.
  static constexpr std::int64_t kStrideScale = 1'000'000;

  struct Tenant {
    std::deque<Job> queue;
    std::int64_t weight = 1;
    std::int64_t pass = 0;
    int inflight = 0;
  };

  void worker_loop();
  /// Picks the eligible tenant with minimum (pass, name), or nullptr.
  [[nodiscard]] Tenant* pick_locked(std::string* name);

  SchedulerConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: backlog or close
  std::condition_variable idle_cv_;   // run(): drained
  std::map<std::string, Tenant> tenants_;
  std::int64_t virtual_time_ = 0;  // pass of the most recent dispatch
  int queued_ = 0;
  int inflight_ = 0;
  bool paused_ = false;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace umc::server
