#pragma once

// Synchronous CONGEST simulator (the model of Peleg [33], Section 1).
//
// Communication happens in rounds; per round each node may send one
// O(log n)-bit message over each incident edge (one per direction). The
// simulator enforces that budget and counts rounds — the quantity every
// Theorem 1 experiment reports.
//
// Algorithms are written as explicit round loops: stage messages with
// `send`, call `end_round` to deliver, read the wire.
//
// Wire storage (the fast path): the 2m edge-direction slots that the model
// already tracks for the one-message-per-direction rule ARE the storage — a
// preallocated structure-of-arrays (payload word, aux word, occupancy
// bitmap), double-buffered as a write view (sends of the current round) and
// a read view (deliveries of the last round) that `end_round` flips. A
// physical round therefore allocates nothing, and receivers address their
// CSR row's slots directly (`slot_has`/`slot_payload`/`slot_aux`) instead of
// scanning inbox vectors. The legacy `inbox()` interface is kept as a
// compatibility shim, materialized lazily from the read view (and eagerly on
// the fault path, which must preserve duplicated messages).
//
// Fault injection: a FaultInjector attached via `attach_fault_injector` is
// consulted on every physical delivery and may drop, duplicate, or corrupt
// wire traffic and suppress messages of crash-stopped nodes. The injector
// API is message-vector based; when one is attached, the wire materializes
// the staged slots into a send-ordered vector, filters it, and scatters the
// survivors back into the slot view (last write wins per slot) — fault plans
// see and mutate exactly the traffic they saw on the seed path. `end_round`
// is virtual so a reliability layer (fault::ReliableChannel) can compile one
// logical round into several physical ack/retry rounds while algorithm code
// stays unchanged.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace umc::congest {

struct Message {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  std::int64_t payload = 0;
  /// Second word of the message (a CONGEST message is O(log n) bits; a
  /// (part-id, value) pair still fits).
  std::int64_t aux = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Hook consulted by CongestNetwork on every physical round delivery.
/// Implemented by fault::FaultModel; declared here so the congest layer
/// carries no dependency on the fault subsystem.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Mutate round `round`'s wire traffic in place: drop, duplicate, or
  /// bit-corrupt messages, and erase traffic from/to crash-stopped nodes.
  virtual void filter_wire(std::int64_t round, std::vector<Message>& wire) = 0;

  /// False while v is crash-stopped at `round` (its volatile state is gone
  /// and its sends/receives vanish until restart).
  [[nodiscard]] virtual bool alive(std::int64_t round, NodeId v) const = 0;

  /// Append (deduplicated, ascending) nodes whose crash STARTED in
  /// [r0, r1). Compiled drivers use this to decide when to roll back to the
  /// last checkpoint.
  virtual void crashed_between(std::int64_t r0, std::int64_t r1,
                               std::vector<NodeId>& out) const = 0;

  /// Recovery notification: a driver restored node v from its checkpoint at
  /// round `round`. Default is a no-op; FaultModel records it in the log.
  virtual void note_recovery(std::int64_t round, NodeId v) { (void)round; (void)v; }
};

/// Which data path `end_round` runs.
enum class WireMode {
  /// Slot-addressed double-buffered wire; zero allocation per round.
  kSlot,
  /// Seed-era message path (per-round inbox vector churn), retained as the
  /// differential-testing and benchmarking reference. Slot reads still work
  /// (the read view is populated after delivery).
  kReference,
};

struct WireConfig {
  WireMode mode = WireMode::kSlot;
  /// Let compiled drivers reuse part-wise aggregation state cached on the
  /// contraction plan (see congest/partwise.hpp). Off = seed behavior.
  bool partwise_cache = true;
};

class CongestNetwork {
 public:
  explicit CongestNetwork(const WeightedGraph& g, WireConfig wire = {});
  virtual ~CongestNetwork() = default;
  CongestNetwork(const CongestNetwork&) = delete;
  CongestNetwork& operator=(const CongestNetwork&) = delete;

  [[nodiscard]] const WeightedGraph& graph() const { return *g_; }
  [[nodiscard]] const WireConfig& wire_config() const { return wire_; }

  /// Stage a message from `from` over edge `via` (delivered to the other
  /// endpoint at `end_round`). At most one message per (edge, direction)
  /// per round — a second send on the same slot violates the model.
  void send(NodeId from, EdgeId via, std::int64_t payload, std::int64_t aux = 0);

  /// Deliver staged messages and advance the round counter. The base class
  /// performs exactly one physical round (through the fault injector, if
  /// any); fault::ReliableChannel overrides this with an ack/retry
  /// compilation of the same logical round.
  virtual void end_round();

  // --- Slot read view (the fast path) ------------------------------------
  //
  // Valid after `end_round` until the next `end_round`. The slot of the
  // message `sender` put on edge e is 2e + (sender == edge(e).v). On the
  // fault path a duplicated slot holds its last surviving copy; algorithms
  // that must observe duplicates (none in-tree) read `inbox()` instead.

  /// Slot index of the direction `sender -> other` of edge `e`.
  [[nodiscard]] std::size_t slot_from(EdgeId e, NodeId sender) const {
    return static_cast<std::size_t>(e) * 2 + (sender == g_->edge(e).v ? 1 : 0);
  }
  [[nodiscard]] bool slot_has(std::size_t slot) const {
    return ((read_occ_[slot >> 6] >> (slot & 63)) & 1u) != 0;
  }
  [[nodiscard]] std::int64_t slot_payload(std::size_t slot) const {
    return read_payload_[slot];
  }
  [[nodiscard]] std::int64_t slot_aux(std::size_t slot) const {
    return read_aux_[slot];
  }

  /// Messages delivered to v in the most recent round (compatibility shim;
  /// materialized lazily from the slot read view in original send order).
  [[nodiscard]] const std::vector<Message>& inbox(NodeId v) const {
    if (compat_dirty_) materialize_compat();
    return inbox_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

  /// Charge rounds without message traffic (e.g. silent waiting rounds of a
  /// synchronized schedule).
  void charge_idle(std::int64_t r) { rounds_ += r; }

  /// Attach (or detach, with nullptr) the fault hook. The injector is not
  /// owned and must outlive the network.
  void attach_fault_injector(FaultInjector* f) { fault_ = f; }
  [[nodiscard]] FaultInjector* fault_injector() const { return fault_; }

 protected:
  /// One physical round: run the staged traffic through the fault injector,
  /// deliver survivors, clear staging, advance the round counter.
  void deliver_physical();

  /// Number of messages staged (sends since the last delivery).
  [[nodiscard]] std::size_t staged_count() const { return order_.size(); }

  /// Reconstruct the staged traffic as Message structs in send order
  /// (without consuming the staging). The ARQ layer journals these.
  void materialize_staged(std::vector<Message>& out) const;

  /// Drop all staged traffic (write view back to empty).
  void clear_staging();

  /// Install an externally assembled logical delivery (one message per slot
  /// at most, any order): becomes both the `inbox()` contents verbatim and
  /// the slot read view. Used by the ARQ layer after dedup/reassembly.
  void set_logical_delivery(std::vector<std::vector<Message>>&& logical);

 private:
  void deliver_slot_fast();
  void deliver_with_messages();  // fault path and kReference mode
  void materialize_compat() const;
  /// Clear the read view's occupancy (via read_order_) and the compat
  /// inboxes (via compat_nonempty_).
  void reset_read_view();
  void scatter_to_read_view(const Message& m);
  void round_metrics(std::size_t staged_n);

  const WeightedGraph* g_;
  WireConfig wire_;
  FaultInjector* fault_ = nullptr;
  std::int64_t rounds_ = 0;

  // Write view: slots staged by send() since the last end_round.
  std::vector<std::uint64_t> write_occ_;
  std::vector<std::int64_t> write_payload_;
  std::vector<std::int64_t> write_aux_;
  std::vector<std::uint32_t> order_;  // staged slots in send order

  // Read view: slots delivered by the most recent end_round.
  std::vector<std::uint64_t> read_occ_;
  std::vector<std::int64_t> read_payload_;
  std::vector<std::int64_t> read_aux_;
  std::vector<std::uint32_t> read_order_;  // occupied slots, delivery order

  // inbox() compatibility shim. Mutable: materialization is logically const
  // (a cache of the read view). compat_nonempty_ bounds clearing to the
  // nodes actually touched last round instead of O(n) every round.
  mutable std::vector<std::vector<Message>> inbox_;
  mutable std::vector<NodeId> compat_nonempty_;
  mutable bool compat_dirty_ = false;

  std::vector<Message> wire_scratch_;  // fault/reference path staging
};

}  // namespace umc::congest
