# Empty compiler generated dependencies file for umc_graph.
# This may be replaced when dependencies are built.
