#include "obs/metrics.hpp"

#include <algorithm>

namespace umc::obs {

namespace {

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name)
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) return false;
  return !(name[0] >= '0' && name[0] <= '9');
}

/// Canonical label order plus the map key ("k1=v1,k2=v2", '\x1f'-escaped
/// never needed — label values in this repo are short identifiers).
Labels canonical(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

std::string label_key(const Labels& canon) {
  std::string key;
  for (const auto& [k, v] : canon) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  UMC_ASSERT(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) UMC_ASSERT(bounds_[i - 1] < bounds_[i]);
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked for the same reason as Tracer::global(): hot paths hold cached
  // references past static-destruction order.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_insert(std::string_view name,
                                                        const Labels& labels,
                                                        std::string_view help,
                                                        MetricType type) {
  UMC_ASSERT_MSG(valid_name(name), "metric names are lowercase [a-z0-9_]");
  const Labels canon = canonical(labels);
  const std::string key = label_key(canon);
  std::lock_guard<std::mutex> lock(mu_);
  auto family = entries_.find(name);
  if (family == entries_.end())
    family = entries_.emplace(std::string(name), std::map<std::string, Entry>{}).first;
  auto it = family->second.find(key);
  if (it == family->second.end()) {
    Entry entry;
    entry.type = type;
    entry.labels = canon;
    entry.help = std::string(help);
    it = family->second.emplace(key, std::move(entry)).first;
  } else {
    UMC_ASSERT_MSG(it->second.type == type, "metric re-registered as a different type");
    if (it->second.help.empty() && !help.empty()) it->second.help = std::string(help);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels,
                                  std::string_view help) {
  Entry& e = find_or_insert(name, labels, help, MetricType::kCounter);
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels,
                              std::string_view help) {
  Entry& e = find_or_insert(name, labels, help, MetricType::kGauge);
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<std::int64_t> bounds,
                                      const Labels& labels, std::string_view help) {
  Entry& e = find_or_insert(name, labels, help, MetricType::kHistogram);
  if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

std::vector<MetricsRegistry::Family> MetricsRegistry::families() const {
  std::vector<Family> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [name, instances] : entries_) {
    Family fam;
    fam.name = name;
    for (const auto& [key, entry] : instances) {
      (void)key;
      if (fam.help.empty()) fam.help = entry.help;
      fam.type = entry.type;
      Instance inst;
      inst.labels = entry.labels;
      inst.counter = entry.counter.get();
      inst.gauge = entry.gauge.get();
      inst.histogram = entry.histogram.get();
      fam.instances.push_back(std::move(inst));
    }
    out.push_back(std::move(fam));
  }
  return out;
}

}  // namespace umc::obs
