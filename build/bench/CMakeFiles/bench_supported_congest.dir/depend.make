# Empty dependencies file for bench_supported_congest.
# This may be replaced when dependencies are built.
