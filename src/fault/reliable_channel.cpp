#include "fault/reliable_channel.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace umc::fault {

namespace {

#if !defined(UMC_OBS_DISABLED)
struct ArqMetrics {
  obs::Counter& logical_rounds = obs::MetricsRegistry::global().counter(
      "umc_arq_logical_rounds_total", {}, "Logical rounds compiled through the ARQ.");
  obs::Counter& attempts = obs::MetricsRegistry::global().counter(
      "umc_arq_attempts_total", {}, "DATA/CTRL/ACK attempt triples executed.");
  obs::Counter& retransmissions = obs::MetricsRegistry::global().counter(
      "umc_arq_retransmissions_total", {}, "Messages retransmitted after a failed attempt.");
  obs::Counter& backoff = obs::MetricsRegistry::global().counter(
      "umc_arq_backoff_rounds_total", {}, "Idle rounds charged to exponential backoff.");
  obs::Counter& piggybacked = obs::MetricsRegistry::global().counter(
      "umc_arq_piggybacked_acks_total", {}, "Cumulative ACKs that rode free wire slots (GBN).");
  obs::Counter& ack_flush = obs::MetricsRegistry::global().counter(
      "umc_arq_ack_flush_rounds_total", {}, "Dedicated ACK rounds charged by drain() (GBN).");
};

ArqMetrics& arq_metrics() {
  static ArqMetrics m;
  return m;
}
#endif

constexpr std::uint64_t kChecksumSalt = 0x600dC0DEULL;
constexpr std::uint64_t kAckSalt = 0xAC4BACC4ULL;

/// Wire slot of a message as sent by m.from (matches CongestNetwork's
/// slot convention: 2*e + (from == edge.v)).
[[nodiscard]] std::size_t slot_of(const WeightedGraph& g, const congest::Message& m) {
  return static_cast<std::size_t>(m.via) * 2 + (m.from == g.edge(m.via).v ? 1 : 0);
}

/// Forward slot of traffic sent by `sender` over `via`.
[[nodiscard]] std::size_t slot_for(const WeightedGraph& g, NodeId sender, EdgeId via) {
  return static_cast<std::size_t>(via) * 2 + (sender == g.edge(via).v ? 1 : 0);
}

[[nodiscard]] std::int64_t checksum(std::int64_t payload, std::int64_t aux, std::int64_t seq,
                                    std::size_t slot) {
  std::uint64_t h = mix64(kChecksumSalt ^ static_cast<std::uint64_t>(payload));
  h = mix64(h ^ static_cast<std::uint64_t>(aux));
  h = mix64(h ^ static_cast<std::uint64_t>(seq));
  h = mix64(h ^ static_cast<std::uint64_t>(slot));
  return static_cast<std::int64_t>(h);
}

[[nodiscard]] std::int64_t ack_mac(std::int64_t seq, std::size_t slot) {
  return static_cast<std::int64_t>(
      mix64(kAckSalt ^ mix64(static_cast<std::uint64_t>(seq)) ^ static_cast<std::uint64_t>(slot)));
}

}  // namespace

ReliableChannel::ReliableChannel(const WeightedGraph& g, FaultModel* model, ReliableConfig cfg,
                                 congest::WireConfig wire)
    : CongestNetwork(g, wire),
      model_(model),
      cfg_(cfg),
      next_seq_(static_cast<std::size_t>(g.m()) * 2, 1),
      acked_seq_(static_cast<std::size_t>(g.m()) * 2, 0),
      retired_seq_(static_cast<std::size_t>(g.m()) * 2, 0) {
  UMC_ASSERT(cfg_.max_attempts >= 1);
  UMC_ASSERT(cfg_.max_backoff_rounds >= 1);
  if (model_ != nullptr) attach_fault_injector(model_);
}

void ReliableChannel::end_round() {
  ++stats_.logical_rounds;
#if !defined(UMC_OBS_DISABLED)
  arq_metrics().logical_rounds.inc();
#endif
  // Fault-free compilation is the identity: exactly the base one-round
  // delivery, so p = 0 runs are bit-identical to the plain simulator.
  if (model_ == nullptr || model_->plan().trivial() || staged_count() == 0) {
    CongestNetwork::end_round();
    return;
  }
  if (cfg_.mode == ArqMode::kGoBackN) {
    end_round_gbn();
    return;
  }
  UMC_OBS_SPAN_VAR_L(obs_logical, "arq/logical_round", "arq", stats_.logical_rounds);
  obs_logical.arg("staged", static_cast<std::int64_t>(staged_count()));

  const WeightedGraph& g = graph();
  const std::size_t num_slots = static_cast<std::size_t>(g.m()) * 2;

  // Journal this logical round's sends (sender-side stable storage): each
  // occupies its wire slot exclusively, so slot -> pending is one-to-one.
  struct Pending {
    congest::Message msg;
    std::int64_t seq = 0;
    bool acked = false;
  };
  std::vector<Pending> pending;
  std::vector<int> pending_at(num_slots, -1);
  materialize_staged(staged_scratch_);
  pending.reserve(staged_scratch_.size());
  for (const congest::Message& m : staged_scratch_) {
    const std::size_t slot = slot_of(g, m);
    pending_at[slot] = static_cast<int>(pending.size());
    pending.push_back(Pending{m, next_seq_[slot]++, false});
  }
  clear_staging();
  stats_.logical_messages += static_cast<std::int64_t>(pending.size());

  // Receiver-side assembly of the logical round (write-ahead journaled:
  // survives crash windows, which is why an acked message is never lost).
  std::vector<std::vector<congest::Message>> logical(static_cast<std::size_t>(g.n()));

  std::vector<char> data_seen(num_slots, 0);
  std::vector<std::int64_t> data_payload(num_slots, 0);
  std::vector<std::int64_t> data_aux(num_slots, 0);
  std::vector<char> ack_staged(num_slots, 0);

  std::size_t unacked = pending.size();
  for (int attempt = 0; unacked > 0; ++attempt) {
    UMC_ASSERT_MSG(attempt < cfg_.max_attempts,
                   "reliable delivery failed: max attempts exhausted");
    UMC_OBS_SPAN_VAR_L(obs_attempt, "arq/attempt", "arq", attempt);
    obs_attempt.arg("unacked", static_cast<std::int64_t>(unacked));
#if !defined(UMC_OBS_DISABLED)
    arq_metrics().attempts.inc();
#endif
    if (attempt > 0) {
      const std::int64_t backoff =
          std::min(std::int64_t{1} << std::min(attempt - 1, 30), cfg_.max_backoff_rounds);
      charge_idle(backoff);
      stats_.backoff_rounds += backoff;
      stats_.retransmissions += static_cast<std::int64_t>(unacked);
#if !defined(UMC_OBS_DISABLED)
      arq_metrics().backoff.inc(backoff);
      arq_metrics().retransmissions.inc(static_cast<std::int64_t>(unacked));
#endif
    }

    // --- DATA: retransmit every unacknowledged message.
    for (const Pending& p : pending)
      if (!p.acked) send(p.msg.from, p.msg.via, p.msg.payload, p.msg.aux);
    deliver_physical();
    ++stats_.physical_rounds;
    std::fill(data_seen.begin(), data_seen.end(), 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        const std::size_t slot = slot_of(g, m);
        data_seen[slot] = 1;
        data_payload[slot] = m.payload;
        data_aux[slot] = m.aux;
      }
    }

    // --- CTRL: checksum over (payload, aux, seq, slot).
    for (const Pending& p : pending) {
      if (p.acked) continue;
      const std::size_t slot = slot_of(g, p.msg);
      send(p.msg.from, p.msg.via, checksum(p.msg.payload, p.msg.aux, p.seq, slot), p.seq);
    }
    deliver_physical();
    ++stats_.physical_rounds;

    // Receivers: verify, accept-once by sequence number, stage ACKs
    // (duplicates re-acknowledged so a lost ACK cannot wedge the sender).
    struct Ack {
      NodeId from = kNoNode;
      EdgeId via = kNoEdge;
      std::int64_t mac = 0;
      std::int64_t seq = 0;
    };
    std::vector<Ack> acks;
    std::fill(ack_staged.begin(), ack_staged.end(), 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        const std::size_t slot = slot_of(g, m);
        if (!data_seen[slot]) continue;  // checksum with no data: ignore
        const std::int64_t seq = m.aux;
        if (m.payload != checksum(data_payload[slot], data_aux[slot], seq, slot))
          continue;  // corrupted DATA or CTRL: silence forces a retry
        if (seq > acked_seq_[slot]) {
          acked_seq_[slot] = seq;
          logical[static_cast<std::size_t>(v)].push_back(
              congest::Message{m.from, m.via, data_payload[slot], data_aux[slot]});
        }
        // One ACK per reverse slot per round, even if the wire duplicated
        // the CTRL message.
        const std::size_t rev = slot_for(g, v, m.via);
        if (!ack_staged[rev]) {
          ack_staged[rev] = 1;
          acks.push_back(Ack{v, m.via, ack_mac(seq, slot), seq});
        }
      }
    }

    // --- ACK: receiver -> sender over the reverse slot.
    for (const Ack& a : acks) send(a.from, a.via, a.mac, a.seq);
    deliver_physical();
    ++stats_.physical_rounds;
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        // An ACK reaches the original sender v; it acknowledges v's forward
        // slot on that edge.
        const std::size_t fwd = slot_for(g, v, m.via);
        const int idx = pending_at[fwd];
        if (idx < 0) continue;
        Pending& p = pending[static_cast<std::size_t>(idx)];
        if (p.acked || m.aux != p.seq) continue;
        if (m.payload != ack_mac(p.seq, fwd)) continue;  // corrupted ACK
        p.acked = true;
        --unacked;
      }
    }
  }

  // The logical round is fully delivered; expose the assembled inboxes
  // (and the matching slot read view — dedup guarantees one per slot).
  set_logical_delivery(std::move(logical));
}

bool ReliableChannel::try_retire(NodeId v, const congest::Message& m) {
  // A cumulative ACK for v's journal on (m.via, v->neighbor) arrives on the
  // reverse slot, so it lands in v's inbox like any frame; it is recognized
  // by validating against the ack-mac of v's OWN forward slot. Issued seqs
  // are 1..next_seq-1, already-retired ones are <= retired_seq.
  const std::size_t fwd = slot_for(graph(), v, m.via);
  if (m.aux <= retired_seq_[fwd] || m.aux >= next_seq_[fwd]) return false;
  if (m.payload != ack_mac(m.aux, fwd)) return false;
  inflight_ -= m.aux - retired_seq_[fwd];
  retired_seq_[fwd] = m.aux;
  return true;
}

void ReliableChannel::end_round_gbn() {
  UMC_OBS_SPAN_VAR_L(obs_logical, "arq/gbn_round", "arq", stats_.logical_rounds);
  obs_logical.arg("staged", static_cast<std::int64_t>(staged_count()));

  const WeightedGraph& g = graph();
  const std::size_t num_slots = static_cast<std::size_t>(g.m()) * 2;

  // Journal this round's sends. Unlike stop-and-wait, an entry outlives the
  // logical round: it stays in the go-back-N window until a cumulative ACK
  // retires it (inflight_ counts the window population).
  struct Pending {
    congest::Message msg;
    std::int64_t seq = 0;
    bool accepted = false;
  };
  std::vector<Pending> pending;
  std::vector<int> pending_at(num_slots, -1);
  materialize_staged(staged_scratch_);
  pending.reserve(staged_scratch_.size());
  for (const congest::Message& m : staged_scratch_) {
    const std::size_t slot = slot_of(g, m);
    pending_at[slot] = static_cast<int>(pending.size());
    pending.push_back(Pending{m, next_seq_[slot]++, false});
  }
  clear_staging();
  stats_.logical_messages += static_cast<std::int64_t>(pending.size());
  inflight_ += static_cast<std::int64_t>(pending.size());
  stats_.journal_peak = std::max(stats_.journal_peak, inflight_);

  std::vector<std::vector<congest::Message>> logical(static_cast<std::size_t>(g.n()));
  std::vector<char> data_seen(num_slots, 0);
  std::vector<std::int64_t> data_payload(num_slots, 0);
  std::vector<std::int64_t> data_aux(num_slots, 0);

  // Cumulative ACKs for unretired accepted traffic ride any reverse slot
  // that is not carrying live DATA/CTRL this physical round.
  const auto stage_acks = [&] {
    for (std::size_t fwd = 0; fwd < num_slots; ++fwd) {
      if (acked_seq_[fwd] <= retired_seq_[fwd]) continue;  // no debt on this slot
      const std::size_t rev = fwd ^ 1;
      const int idx = pending_at[rev];
      if (idx >= 0 && !pending[static_cast<std::size_t>(idx)].accepted) continue;  // slot busy
      const Edge& e = g.edge(static_cast<EdgeId>(fwd / 2));
      const NodeId receiver = (fwd & 1) != 0 ? e.u : e.v;
      send(receiver, static_cast<EdgeId>(fwd / 2), ack_mac(acked_seq_[fwd], fwd),
           acked_seq_[fwd]);
      ++stats_.piggybacked_acks;
#if !defined(UMC_OBS_DISABLED)
      arq_metrics().piggybacked.inc();
#endif
    }
  };

  std::size_t unaccepted = pending.size();
  int stalls = 0;  // consecutive cycles with no new acceptance
  for (int cycle = 0; unaccepted > 0; ++cycle) {
    UMC_ASSERT_MSG(cycle < cfg_.max_attempts,
                   "reliable delivery failed: max attempts exhausted");
    UMC_OBS_SPAN_VAR_L(obs_cycle, "arq/gbn_cycle", "arq", cycle);
    obs_cycle.arg("unaccepted", static_cast<std::int64_t>(unaccepted));
#if !defined(UMC_OBS_DISABLED)
    arq_metrics().attempts.inc();
#endif
    // Adaptive backoff: only after a cycle that made no progress (a lossy
    // wire that still accepts something each cycle never idles).
    if (stalls > 0) {
      const std::int64_t backoff =
          std::min(std::int64_t{1} << std::min(stalls - 1, 30), cfg_.max_backoff_rounds);
      charge_idle(backoff);
      stats_.backoff_rounds += backoff;
#if !defined(UMC_OBS_DISABLED)
      arq_metrics().backoff.inc(backoff);
#endif
    }
    if (cycle > 0) {
      stats_.retransmissions += static_cast<std::int64_t>(unaccepted);
#if !defined(UMC_OBS_DISABLED)
      arq_metrics().retransmissions.inc(static_cast<std::int64_t>(unaccepted));
#endif
    }
    const std::size_t before = unaccepted;

    // --- DATA round (+ piggybacked ACKs on free slots).
    for (const Pending& p : pending)
      if (!p.accepted) send(p.msg.from, p.msg.via, p.msg.payload, p.msg.aux);
    stage_acks();
    deliver_physical();
    ++stats_.physical_rounds;
    std::fill(data_seen.begin(), data_seen.end(), 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        if (try_retire(v, m)) continue;
        const std::size_t slot = slot_of(g, m);
        const int idx = pending_at[slot];
        if (idx < 0 || pending[static_cast<std::size_t>(idx)].accepted) continue;
        data_seen[slot] = 1;
        data_payload[slot] = m.payload;
        data_aux[slot] = m.aux;
      }
    }

    // --- CTRL round (+ piggybacked ACKs on still-free slots). Acceptance
    // here — not a third ACK round — is what ends the logical round; the
    // sender's journal retires lazily via the piggybacked ACKs above.
    for (const Pending& p : pending) {
      if (p.accepted) continue;
      const std::size_t slot = slot_of(g, p.msg);
      send(p.msg.from, p.msg.via, checksum(p.msg.payload, p.msg.aux, p.seq, slot), p.seq);
    }
    stage_acks();
    deliver_physical();
    ++stats_.physical_rounds;
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const congest::Message& m : inbox(v)) {
        if (try_retire(v, m)) continue;
        const std::size_t slot = slot_of(g, m);
        const int idx = pending_at[slot];
        if (idx < 0 || !data_seen[slot]) continue;
        Pending& p = pending[static_cast<std::size_t>(idx)];
        const std::int64_t seq = m.aux;
        if (m.payload != checksum(data_payload[slot], data_aux[slot], seq, slot))
          continue;  // corrupted DATA or CTRL: silence forces a retry cycle
        if (seq > acked_seq_[slot]) {
          acked_seq_[slot] = seq;
          logical[static_cast<std::size_t>(v)].push_back(
              congest::Message{m.from, m.via, data_payload[slot], data_aux[slot]});
          if (!p.accepted && seq == p.seq) {
            p.accepted = true;
            --unaccepted;
          }
        }
      }
    }

    if (unaccepted > 0 && unaccepted == before) {
      ++stalls;
      ++stats_.stalled_cycles;
    } else {
      stalls = 0;
    }
  }

  set_logical_delivery(std::move(logical));
}

void ReliableChannel::drain() {
  if (inflight_ == 0) return;  // SW mode and p = 0 never journal across rounds
  UMC_OBS_SPAN_VAR_L(obs_drain, "arq/drain", "arq", inflight_);
  const WeightedGraph& g = graph();
  const std::size_t num_slots = static_cast<std::size_t>(g.m()) * 2;
  int stalls = 0;
  for (int attempt = 0; inflight_ > 0; ++attempt) {
    UMC_ASSERT_MSG(attempt < cfg_.max_attempts, "arq drain failed: max attempts exhausted");
    if (stalls > 0) {
      const std::int64_t backoff =
          std::min(std::int64_t{1} << std::min(stalls - 1, 30), cfg_.max_backoff_rounds);
      charge_idle(backoff);
      stats_.backoff_rounds += backoff;
#if !defined(UMC_OBS_DISABLED)
      arq_metrics().backoff.inc(backoff);
#endif
    }
    for (std::size_t fwd = 0; fwd < num_slots; ++fwd) {
      if (acked_seq_[fwd] <= retired_seq_[fwd]) continue;
      const Edge& e = g.edge(static_cast<EdgeId>(fwd / 2));
      const NodeId receiver = (fwd & 1) != 0 ? e.u : e.v;
      send(receiver, static_cast<EdgeId>(fwd / 2), ack_mac(acked_seq_[fwd], fwd),
           acked_seq_[fwd]);
    }
    deliver_physical();
    ++stats_.physical_rounds;
    ++stats_.ack_flush_rounds;
#if !defined(UMC_OBS_DISABLED)
    arq_metrics().ack_flush.inc();
#endif
    const std::int64_t before = inflight_;
    for (NodeId v = 0; v < g.n(); ++v)
      for (const congest::Message& m : inbox(v)) (void)try_retire(v, m);
    stalls = inflight_ < before ? 0 : stalls + 1;
  }
}

}  // namespace umc::fault
