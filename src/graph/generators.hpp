#pragma once

// Graph-family generators for tests, examples, and experiments.
//
// Families mirror the paper's claims: excluded-minor graphs (grids, random
// planar, k-trees) exercise the Õ(D) compile target; Erdős–Rényi and
// dumbbells exercise the general Õ(D+√n) target and worst cases; brooms and
// spiders generate the instance shapes of Figures 1–3 directly.
//
// All generators produce unit weights; use `randomize_weights` to draw
// weights in [lo, hi] (the paper assumes w(e) ∈ [poly(n)]).

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace umc {

[[nodiscard]] WeightedGraph path_graph(NodeId n);
[[nodiscard]] WeightedGraph cycle_graph(NodeId n);
[[nodiscard]] WeightedGraph star_graph(NodeId n);  // node 0 is the hub
[[nodiscard]] WeightedGraph complete_graph(NodeId n);

/// rows x cols planar grid; node (r, c) has id r*cols + c.
[[nodiscard]] WeightedGraph grid_graph(NodeId rows, NodeId cols);

/// Grid plus one random diagonal per unit face (still planar).
[[nodiscard]] WeightedGraph random_planar_grid(NodeId rows, NodeId cols, double diag_prob, Rng& rng);

/// G(n, p); NOT guaranteed connected — see erdos_renyi_connected.
[[nodiscard]] WeightedGraph erdos_renyi(NodeId n, double p, Rng& rng);

/// G(n, p) conditioned on connectivity by overlaying a uniform random
/// spanning tree (preserves the family's diameter/expansion behaviour above
/// the connectivity threshold while guaranteeing a valid CONGEST network).
[[nodiscard]] WeightedGraph erdos_renyi_connected(NodeId n, double p, Rng& rng);

/// Uniform random labeled tree (Prüfer-like random attachment).
[[nodiscard]] WeightedGraph random_tree(NodeId n, Rng& rng);

/// Random connected graph with exactly m >= n-1 edges (tree + random chords,
/// no parallel edges for m below the simple-graph bound).
[[nodiscard]] WeightedGraph random_connected(NodeId n, EdgeId m, Rng& rng);

/// Two k-cliques joined by a length-`bridge` path: small cut, large n.
[[nodiscard]] WeightedGraph dumbbell(NodeId clique, NodeId bridge);

/// k-tree on n nodes (treewidth exactly k for n > k): excluded-minor family.
[[nodiscard]] WeightedGraph ktree(NodeId n, int k, Rng& rng);

/// Two descending paths of length `len` joined at a root (Figure 1 shape),
/// with `chords` random cross-path chords.
[[nodiscard]] WeightedGraph double_broom(NodeId len, EdgeId chords, Rng& rng);

/// k descending paths of length `len` joined at a root (Figure 2 shape),
/// with `chords` random cross-path chords.
[[nodiscard]] WeightedGraph spider(int k, NodeId len, EdgeId chords, Rng& rng);

/// Complete bipartite graph K_{a,b}: left nodes [0,a), right [a, a+b).
[[nodiscard]] WeightedGraph complete_bipartite(NodeId a, NodeId b);

/// Complete binary tree with n nodes (node v's parent is (v-1)/2).
[[nodiscard]] WeightedGraph binary_tree(NodeId n);

/// Expander-ish: a ring plus `matchings` random perfect matchings — small
/// diameter and good expansion whp, the well-connected family of Theorem 1
/// bullet 3 (mixing time polylog).
[[nodiscard]] WeightedGraph ring_expander(NodeId n, int matchings, Rng& rng);

/// Assign independent uniform weights in [lo, hi] to every edge.
void randomize_weights(WeightedGraph& g, Weight lo, Weight hi, Rng& rng);

}  // namespace umc
