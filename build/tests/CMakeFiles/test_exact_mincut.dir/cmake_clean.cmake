file(REMOVE_RECURSE
  "CMakeFiles/test_exact_mincut.dir/test_exact_mincut.cpp.o"
  "CMakeFiles/test_exact_mincut.dir/test_exact_mincut.cpp.o.d"
  "test_exact_mincut"
  "test_exact_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
