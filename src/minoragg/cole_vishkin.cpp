#include "minoragg/cole_vishkin.hpp"

#include <algorithm>
#include <cstdint>

#include "util/assert.hpp"

namespace umc::minoragg {

namespace {

/// Smallest bit index at which a and b differ. Requires a != b.
int first_diff_bit(std::uint64_t a, std::uint64_t b) {
  return __builtin_ctzll(a ^ b);
}

int pick_not_in(int banned1, int banned2) {
  for (int c = 0; c < 3; ++c)
    if (c != banned1 && c != banned2) return c;
  UMC_ASSERT_MSG(false, "three colors always leave one free of two bans");
  return 0;
}

}  // namespace

std::vector<int> cole_vishkin_3color(std::span<const int> out, Ledger& ledger) {
  const std::size_t n = out.size();
  std::vector<std::uint64_t> color(n);
  for (std::size_t v = 0; v < n; ++v) {
    UMC_ASSERT_MSG(out[v] != static_cast<int>(v), "self-loops are not allowed");
    color[v] = static_cast<std::uint64_t>(v);  // unique initial colors
  }

  // Bit-index reduction: colors drop to {0..5} in O(log* n) iterations.
  bool big = n > 0;
  while (big) {
    std::vector<std::uint64_t> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint64_t mine = color[v];
      // Roots compare against a fake neighbor differing at bit 0.
      const std::uint64_t theirs = out[v] >= 0 ? color[static_cast<std::size_t>(out[v])] : mine ^ 1;
      UMC_ASSERT_MSG(mine != theirs, "coloring must stay proper");
      const int i = first_diff_bit(mine, theirs);
      next[v] = 2 * static_cast<std::uint64_t>(i) + ((mine >> i) & 1);
    }
    color = std::move(next);
    ledger.charge(1);
    ledger.bump("cv_iterations");
    big = std::any_of(color.begin(), color.end(), [](std::uint64_t c) { return c >= 6; });
  }

  // Reduce {0..5} -> {0..2}: for each class c in {5,4,3}: shift-down (every
  // node adopts its out-neighbor's color, making in-neighborhoods
  // monochromatic), then class-c nodes pick a free color in {0,1,2}.
  for (int c = 5; c >= 3; --c) {
    std::vector<std::uint64_t> shifted(n);
    for (std::size_t v = 0; v < n; ++v) {
      shifted[v] = out[v] >= 0 ? color[static_cast<std::size_t>(out[v])]
                               : static_cast<std::uint64_t>(pick_not_in(
                                     static_cast<int>(color[v]), -1));
    }
    std::vector<std::uint64_t> next = shifted;
    for (std::size_t v = 0; v < n; ++v) {
      if (shifted[v] != static_cast<std::uint64_t>(c)) continue;
      // In-neighbors now all carry v's pre-shift color; out-neighbor has its
      // shifted color. Avoid both.
      const int out_color =
          out[v] >= 0 ? static_cast<int>(shifted[static_cast<std::size_t>(out[v])]) : -1;
      next[v] = static_cast<std::uint64_t>(pick_not_in(static_cast<int>(color[v]), out_color));
    }
    color = std::move(next);
    ledger.charge(2);  // one round to shift, one to recolor the class
  }

  std::vector<int> result(n);
  for (std::size_t v = 0; v < n; ++v) {
    UMC_ASSERT(color[v] <= 2);
    result[v] = static_cast<int>(color[v]);
  }
  return result;
}

}  // namespace umc::minoragg
