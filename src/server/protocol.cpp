#include "server/protocol.hpp"

#include <charconv>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "graph/io.hpp"

namespace umc::server {

namespace {

/// Strict full-token integer parse (no sign unless the range allows it, no
/// trailing junk) into [lo, hi].
template <typename T>
bool parse_int(std::string_view tok, long long lo, long long hi, T& out) {
  long long v = 0;
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || v < lo || v > hi) return false;
  out = static_cast<T>(v);
  return true;
}

bool parse_u64(std::string_view tok, std::uint64_t& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool valid_tenant(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

Error protocol_error(std::string message) {
  return Error{ErrorCode::kParse, std::move(message), 0};
}

/// Splits `key=value`; false when there is no '='.
bool split_kv(std::string_view tok, std::string_view& key, std::string_view& value) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string_view::npos) return false;
  key = tok.substr(0, eq);
  value = tok.substr(eq + 1);
  return true;
}

}  // namespace

FrameStatus read_frame(std::istream& in, std::string& payload, Error& err) {
  char len_bytes[4];
  in.read(len_bytes, 4);
  const std::streamsize got = in.gcount();
  if (got == 0) return FrameStatus::kEof;  // clean boundary
  if (got < 4) {
    err = protocol_error("truncated frame: " + std::to_string(got) +
                         " byte(s) of the 4-byte length prefix");
    return FrameStatus::kError;
  }
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i)
    len = (len << 8) | static_cast<std::uint8_t>(len_bytes[i]);
  if (len > kMaxFrameBytes) {
    err = Error{ErrorCode::kRange,
                "oversized frame: " + std::to_string(len) + " bytes (max " +
                    std::to_string(kMaxFrameBytes) + ")",
                0};
    return FrameStatus::kError;
  }
  payload.resize(len);
  if (len > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (in.gcount() != static_cast<std::streamsize>(len)) {
      err = protocol_error("truncated frame: " + std::to_string(in.gcount()) + " of " +
                           std::to_string(len) + " payload byte(s)");
      return FrameStatus::kError;
    }
  }
  return FrameStatus::kFrame;
}

void write_frame(std::ostream& out, std::string_view payload) {
  UMC_ASSERT(payload.size() <= kMaxFrameBytes);
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char len_bytes[4] = {
      static_cast<char>(len & 0xff),
      static_cast<char>((len >> 8) & 0xff),
      static_cast<char>((len >> 16) & 0xff),
      static_cast<char>((len >> 24) & 0xff),
  };
  out.write(len_bytes, 4);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kLoad: return "LOAD";
    case Op::kMutate: return "MUTATE";
    case Op::kSolve: return "SOLVE";
    case Op::kStats: return "STATS";
    case Op::kEvict: return "EVICT";
    case Op::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

const char* to_string(ErrCode code) {
  switch (code) {
    case ErrCode::kBadFrame: return "BAD_FRAME";
    case ErrCode::kBadCommand: return "BAD_COMMAND";
    case ErrCode::kNoSession: return "NO_SESSION";
    case ErrCode::kBadGraph: return "BAD_GRAPH";
    case ErrCode::kBadMutation: return "BAD_MUTATION";
    case ErrCode::kQueueFull: return "QUEUE_FULL";
    case ErrCode::kTenantOverload: return "TENANT_OVERLOAD";
    case ErrCode::kTenantBusy: return "TENANT_BUSY";
    case ErrCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrCode::kInternal: return "INTERNAL";
  }
  return "?";
}

std::string Request::serialize() const {
  std::ostringstream os;
  os << to_string(op);
  if (!tenant.empty()) os << ' ' << tenant;
  if (op == Op::kMutate) os << ' ' << edge << ' ' << new_weight;
  if (id != 0) os << " id=" << id;
  if (op == Op::kLoad && weight != 1) os << " weight=" << weight;
  if (op == Op::kSolve) {
    if (has_seed) os << " seed=" << seed;
    if (max_trees != 0) os << " trees=" << max_trees;
  }
  if (op == Op::kStats && stats_prometheus) os << " prom";
  if (!body.empty()) os << '\n' << body;
  return os.str();
}

Expected<Request> parse_request(std::string_view payload) {
  const std::size_t nl = payload.find('\n');
  const std::string_view header = payload.substr(0, nl);
  const std::string_view body =
      nl == std::string_view::npos ? std::string_view{} : payload.substr(nl + 1);

  const std::vector<std::string_view> toks = split_tokens(header);
  if (toks.empty()) return protocol_error("empty request header");

  Request req;
  std::size_t next = 1;
  const std::string_view op = toks[0];
  if (op == "LOAD") {
    req.op = Op::kLoad;
  } else if (op == "MUTATE") {
    req.op = Op::kMutate;
  } else if (op == "SOLVE") {
    req.op = Op::kSolve;
  } else if (op == "STATS") {
    req.op = Op::kStats;
  } else if (op == "EVICT") {
    req.op = Op::kEvict;
  } else if (op == "SHUTDOWN") {
    req.op = Op::kShutdown;
  } else {
    return protocol_error("unknown op '" + std::string(op) + "'");
  }

  const bool wants_tenant = req.op == Op::kLoad || req.op == Op::kMutate ||
                            req.op == Op::kSolve || req.op == Op::kEvict;
  if (wants_tenant) {
    if (toks.size() < 2) return protocol_error(std::string(op) + " needs a tenant");
    if (!valid_tenant(toks[1]))
      return protocol_error("bad tenant name '" + std::string(toks[1]) + "'");
    req.tenant = std::string(toks[1]);
    next = 2;
  }
  if (req.op == Op::kMutate) {
    if (toks.size() < 4) return protocol_error("MUTATE needs <edge> <new-weight>");
    if (!parse_int(toks[2], 0, (1LL << 31) - 1, req.edge))
      return protocol_error("bad MUTATE edge id '" + std::string(toks[2]) + "'");
    if (!parse_int(toks[3], 1, kMaxEdgeWeight, req.new_weight))
      return Error{ErrorCode::kRange,
                   "bad MUTATE weight '" + std::string(toks[3]) + "' (must be in [1, 2^32])", 0};
    next = 4;
  }

  for (std::size_t i = next; i < toks.size(); ++i) {
    std::string_view key, value;
    if (req.op == Op::kStats && toks[i] == "prom") {
      req.stats_prometheus = true;
      continue;
    }
    if (!split_kv(toks[i], key, value))
      return protocol_error("bad request option '" + std::string(toks[i]) + "'");
    if (key == "id") {
      if (!parse_int(value, 0, (1LL << 62), req.id))
        return protocol_error("bad id '" + std::string(value) + "'");
    } else if (key == "weight" && req.op == Op::kLoad) {
      if (!parse_int(value, 1, 1000, req.weight))
        return Error{ErrorCode::kRange,
                     "bad weight '" + std::string(value) + "' (must be in [1, 1000])", 0};
    } else if (key == "seed" && req.op == Op::kSolve) {
      if (!parse_u64(value, req.seed))
        return protocol_error("bad seed '" + std::string(value) + "'");
      req.has_seed = true;
    } else if (key == "trees" && req.op == Op::kSolve) {
      if (!parse_int(value, 1, 1 << 20, req.max_trees))
        return Error{ErrorCode::kRange,
                     "bad trees '" + std::string(value) + "' (must be in [1, 2^20])", 0};
    } else {
      return protocol_error("unknown option '" + std::string(key) + "' for " +
                            std::string(op));
    }
  }

  if (req.op == Op::kLoad) {
    if (body.empty()) return protocol_error("LOAD needs an edge-list body");
    req.body = std::string(body);
  } else if (!body.empty()) {
    return protocol_error(std::string(op) + " does not take a body");
  }
  return req;
}

std::string Response::serialize() const {
  std::ostringstream os;
  if (ok) {
    os << "OK " << op << " id=" << id;
    for (const auto& [key, value] : fields) os << ' ' << key << '=' << value;
  } else {
    os << "ERR " << error_code << " id=" << id << ' ' << message;
  }
  if (!body.empty()) os << '\n' << body;
  return os.str();
}

std::int64_t Response::field_int(const std::string& key, std::int64_t fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  std::int64_t v = fallback;
  if (!parse_int(it->second, std::numeric_limits<std::int64_t>::min() / 2,
                 std::numeric_limits<std::int64_t>::max() / 2, v))
    return fallback;
  return v;
}

Response ok_response(Op op, std::int64_t id) {
  Response r;
  r.ok = true;
  r.op = to_string(op);
  r.id = id;
  return r;
}

Response err_response(ErrCode code, std::int64_t id, std::string message) {
  Response r;
  r.ok = false;
  r.error_code = to_string(code);
  r.id = id;
  r.message = std::move(message);
  return r;
}

Expected<Response> parse_response(std::string_view payload) {
  const std::size_t nl = payload.find('\n');
  const std::string_view header = payload.substr(0, nl);
  Response resp;
  resp.body = nl == std::string_view::npos ? std::string{} : std::string(payload.substr(nl + 1));

  const std::vector<std::string_view> toks = split_tokens(header);
  if (toks.size() < 2) return protocol_error("short response header");
  if (toks[0] == "OK") {
    resp.ok = true;
    resp.op = std::string(toks[1]);
    for (std::size_t i = 2; i < toks.size(); ++i) {
      std::string_view key, value;
      if (!split_kv(toks[i], key, value))
        return protocol_error("bad response field '" + std::string(toks[i]) + "'");
      if (key == "id") {
        if (!parse_int(value, 0, (1LL << 62), resp.id))
          return protocol_error("bad response id '" + std::string(value) + "'");
      } else {
        resp.fields.emplace(std::string(key), std::string(value));
      }
    }
    return resp;
  }
  if (toks[0] == "ERR") {
    resp.ok = false;
    resp.error_code = std::string(toks[1]);
    std::size_t i = 2;
    if (i < toks.size()) {
      std::string_view key, value;
      if (split_kv(toks[i], key, value) && key == "id") {
        if (!parse_int(value, 0, (1LL << 62), resp.id))
          return protocol_error("bad response id '" + std::string(value) + "'");
        ++i;
      }
    }
    // The message is the rest of the header verbatim (it may contain '=').
    std::string message;
    for (; i < toks.size(); ++i) {
      if (!message.empty()) message += ' ';
      message += std::string(toks[i]);
    }
    resp.message = std::move(message);
    return resp;
  }
  return protocol_error("response header must start with OK or ERR");
}

}  // namespace umc::server
