file(REMOVE_RECURSE
  "CMakeFiles/umc_mincut_values.dir/mincut/cut_values.cpp.o"
  "CMakeFiles/umc_mincut_values.dir/mincut/cut_values.cpp.o.d"
  "CMakeFiles/umc_mincut_values.dir/mincut/instance.cpp.o"
  "CMakeFiles/umc_mincut_values.dir/mincut/instance.cpp.o.d"
  "libumc_mincut_values.a"
  "libumc_mincut_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_mincut_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
