// Shared main for every bench executable (replaces benchmark_main).
//
// Adds one flag on top of google-benchmark's own:
//
//   --json    after the normal console run, write BENCH_<name>.json next to
//             the working directory, where <name> is the executable's stem
//             minus the "bench_" prefix. Schema (version 2; v2 added
//             "git_sha" — see docs/BENCHMARKS.md for the version history):
//
//               { "bench": "<name>",
//                 "schema_version": 2,
//                 "build_preset": "default" | "tsan" | "asan" | "ubsan",
//                 "git_sha": configure-time `git rev-parse --short=12 HEAD`
//                            ("unknown" outside a git checkout),
//                 "umc_threads": value of UMC_THREADS ("" when unset),
//                 "runs": [ { "id":    full benchmark id,
//                             "name":  family name (id up to the first '/'),
//                             "params": id remainder ("" when none),
//                             "iterations": N,
//                             "wall_ms": real time for all iterations,
//                             "cpu_ms":  main-thread CPU time (the thread-
//                                        scaling gate compares this: on a
//                                        width-w solve it drops ~w-fold even
//                                        when wall time cannot, e.g. on a
//                                        single-core runner),
//                             "counters": { "ma_rounds": ..., ... } } ] }
//
//             Counters are the same ledger-derived quantities the console
//             table shows (benchutil::export_ledger). The file is the
//             machine-readable record EXPERIMENTS.md rows cite.
//
// Any other argv is forwarded to google-benchmark untouched, so the
// existing --benchmark_out=... workflow still works.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Console output as usual, plus an in-memory record of every run for the
/// JSON file written at exit.
class JsonTeeReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      Record rec;
      rec.id = r.benchmark_name();
      rec.iterations = static_cast<long long>(r.iterations);
      rec.wall_ms = r.real_accumulated_time * 1e3;  // seconds -> ms
      rec.cpu_ms = r.cpu_accumulated_time * 1e3;
      for (const auto& [key, counter] : r.counters) rec.counters.emplace_back(key, counter.value);
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void write_json(std::ostream& os, const std::string& bench_name) const {
    // A number without its build context is not reproducible: record the
    // preset this binary was compiled under and the pool-width knob in
    // effect, so a committed baseline can be rejected when regenerated from
    // the wrong configuration.
#ifdef UMC_BUILD_PRESET
    const char* preset = UMC_BUILD_PRESET;
#else
    const char* preset = "unknown";
#endif
#ifdef UMC_GIT_SHA
    const char* git_sha = UMC_GIT_SHA;
#else
    const char* git_sha = "unknown";
#endif
    const char* threads_env = std::getenv("UMC_THREADS");
    os << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n"
       << "  \"schema_version\": 2,\n"
       << "  \"build_preset\": \"" << json_escape(preset) << "\",\n"
       << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
       << "  \"umc_threads\": \"" << json_escape(threads_env == nullptr ? "" : threads_env)
       << "\",\n  \"runs\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      const std::size_t slash = r.id.find('/');
      const std::string name = r.id.substr(0, slash);
      const std::string params = slash == std::string::npos ? "" : r.id.substr(slash + 1);
      os << (i == 0 ? "" : ",") << "\n    {\"id\": \"" << json_escape(r.id) << "\", \"name\": \""
         << json_escape(name) << "\", \"params\": \"" << json_escape(params)
         << "\", \"iterations\": " << r.iterations << ", \"wall_ms\": " << r.wall_ms
         << ", \"cpu_ms\": " << r.cpu_ms << ", \"counters\": {";
      for (std::size_t c = 0; c < r.counters.size(); ++c)
        os << (c == 0 ? "" : ", ") << "\"" << json_escape(r.counters[c].first)
           << "\": " << r.counters[c].second;
      os << "}}";
    }
    os << "\n  ]\n}\n";
  }

 private:
  struct Record {
    std::string id;
    long long iterations = 0;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::vector<Record> records_;
};

/// Executable stem minus a leading "bench_": ".../bench_round_engine" ->
/// "round_engine".
std::string bench_stem(const char* argv0) {
  std::string s(argv0);
  if (const std::size_t slash = s.find_last_of("/\\"); slash != std::string::npos)
    s = s.substr(slash + 1);
  if (s.rfind("bench_", 0) == 0) s = s.substr(6);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int fwd_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fwd_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, args.data())) return 1;

  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (want_json) {
    const std::string name = bench_stem(argv[0]);
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 1;
    }
    reporter.write_json(out, name);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
