# Empty dependencies file for bench_tree_packing.
# This may be replaced when dependencies are built.
