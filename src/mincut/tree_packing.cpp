#include "mincut/tree_packing.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/stoer_wagner.hpp"
#include "graph/properties.hpp"
#include "minoragg/boruvka.hpp"
#include "obs/trace.hpp"
#include "util/math.hpp"

namespace umc::mincut {

namespace {

/// Binomial(w, p) sample: exact Bernoulli loop for small w, normal
/// approximation (clamped) for large w.
Weight binomial_sample(Weight w, double p, Rng& rng) {
  if (p >= 1.0) return w;
  if (p <= 0.0) return 0;
  if (w <= 64) {
    Weight s = 0;
    for (Weight i = 0; i < w; ++i) s += rng.next_bool(p) ? 1 : 0;
    return s;
  }
  const double mean = static_cast<double>(w) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // Box-Muller from two uniform draws.
  const double u1 = std::max(1e-12, rng.next_real());
  const double u2 = rng.next_real();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + sd * z;
  return std::clamp<Weight>(static_cast<Weight>(std::llround(value)), 0, w);
}

/// Greedy Thorup packing: I iterations of minimum-cost spanning tree where
/// the cost of an edge is its packing load normalized by multiplicity. Each
/// finished tree is handed to `emit` — in streaming mode that pipelines it
/// straight into a solve task; in retaining mode the caller just collects.
void greedy_pack(const WeightedGraph& g, std::span<const Weight> multiplicity, int iterations,
                 minoragg::Ledger& ledger, const TreeSink& emit) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(g.m()), 0);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.m()), 0);
  for (int it = 0; it < iterations; ++it) {
    // cost = load / multiplicity, in fixed point (2^20) so Borůvka can use
    // integer keys; ties broken by edge id inside Borůvka.
    for (EdgeId e = 0; e < g.m(); ++e) {
      cost[static_cast<std::size_t>(e)] =
          (load[static_cast<std::size_t>(e)] << 20) / multiplicity[static_cast<std::size_t>(e)];
    }
    std::vector<EdgeId> tree = minoragg::boruvka_mst(g, cost, ledger);
    for (const EdgeId e : tree) ++load[static_cast<std::size_t>(e)];
    ledger.bump("packing_iterations");
    emit(std::move(tree));
  }
}

}  // namespace

TreePacking tree_packing(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                         const PackingConfig& config) {
  TreePacking out;
  TreePacking meta = tree_packing(g, rng, ledger, config,
                                  [&out](std::vector<EdgeId> tree) {
                                    out.trees.push_back(std::move(tree));
                                  });
  out.lambda_seed = meta.lambda_seed;
  out.sampled = meta.sampled;
  return out;
}

TreePacking tree_packing(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                         const PackingConfig& config, const TreeSink& sink) {
  UMC_ASSERT(g.n() >= 2);
  UMC_OBS_SPAN_VAR_L(obs_pack, "mincut/tree_packing", "mincut", ledger.rounds());
  obs_pack.arg("n", g.n());
  TreePacking out;

  // Seed lambda (substitution for the [17] approx black box; see header).
  out.lambda_seed = baseline::stoer_wagner(g).value;
  const std::int64_t logn = ceil_log2(static_cast<std::uint64_t>(g.n()) + 1) + 1;
  const std::int64_t logm = ceil_log2(static_cast<std::uint64_t>(g.m()) + 2) + 1;
  ledger.charge(logn * logn);  // the approx-min-cut's polylog round budget

  const auto cap = [&config](std::int64_t iters) {
    iters = std::max<std::int64_t>(iters, 1);
    if (config.max_trees > 0) iters = std::min<std::int64_t>(iters, config.max_trees);
    return static_cast<int>(iters);
  };

  if (static_cast<double>(out.lambda_seed) <=
      config.direct_threshold_c * static_cast<double>(logn)) {
    // Case (A): lambda = O(log n) — direct greedy packing.
    std::vector<Weight> multiplicity(static_cast<std::size_t>(g.m()));
    for (EdgeId e = 0; e < g.m(); ++e) multiplicity[static_cast<std::size_t>(e)] = g.edge(e).w;
    greedy_pack(g, multiplicity, cap(2 * out.lambda_seed * logm), ledger, sink);
    return out;
  }

  // Case (B): Karger-sample with p = C log n / lambda, then pack the sample.
  out.sampled = true;
  const double base_p =
      config.sample_c * static_cast<double>(logn) / static_cast<double>(out.lambda_seed);
  for (double p = base_p;; p = std::min(1.0, 2 * p)) {
    std::vector<Weight> multiplicity(static_cast<std::size_t>(g.m()));
    WeightedGraph sample(g.n());
    for (EdgeId e = 0; e < g.m(); ++e) {
      const Weight s = binomial_sample(g.edge(e).w, p, rng);
      multiplicity[static_cast<std::size_t>(e)] = s;
      if (s > 0) sample.add_edge(g.edge(e).u, g.edge(e).v, s);
    }
    if (!is_connected(sample)) {
      UMC_ASSERT_MSG(p < 1.0, "sampling at p = 1 keeps the graph connected");
      continue;  // resample denser (whp never needed at the theorem's C)
    }
    // The sampled min-cut value = Theta(C log n) whp; seed the iteration
    // count from it exactly (same substitution as above).
    const Weight lambda_sample = baseline::stoer_wagner(sample).value;
    // Pack on the original graph topology restricted to sampled edges.
    std::vector<EdgeId> present;  // sample edge -> original edge id
    for (EdgeId e = 0; e < g.m(); ++e)
      if (multiplicity[static_cast<std::size_t>(e)] > 0) present.push_back(e);
    std::vector<Weight> sample_mult;
    sample_mult.reserve(present.size());
    for (const EdgeId e : present) sample_mult.push_back(multiplicity[static_cast<std::size_t>(e)]);
    // Map each tree back to original edge ids before it leaves the packer.
    greedy_pack(sample, sample_mult, cap(2 * lambda_sample * logm), ledger,
                [&present, &sink](std::vector<EdgeId> tree) {
                  for (EdgeId& e : tree) e = present[static_cast<std::size_t>(e)];
                  sink(std::move(tree));
                });
    return out;
  }
}

}  // namespace umc::mincut
