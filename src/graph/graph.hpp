#pragma once

// Weighted undirected multigraph — the communication-network substrate that
// every simulator and algorithm in this library operates on.
//
// Vertices are dense ids 0..n-1. Parallel edges and explicit weights are
// first-class (the paper treats weighted graphs with w(e) in [poly(n)], and
// tree packing replaces weights by multiplicities). Self-loops are rejected:
// they never affect cuts and the Minor-Aggregation model removes them on
// contraction.

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace umc {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

/// A weighted undirected edge. `u < v` is NOT required; id is its index.
struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight w = 1;

  /// The endpoint that is not `x`. Requires x ∈ {u, v}.
  [[nodiscard]] NodeId other(NodeId x) const {
    UMC_ASSERT(x == u || x == v);
    return x == u ? v : u;
  }
};

/// Entry of an adjacency list: neighbor and the id of the connecting edge.
struct AdjEntry {
  NodeId to = kNoNode;
  EdgeId edge = kNoEdge;
};

/// Compressed-sparse-row adjacency — one contiguous entry array plus n+1
/// offsets. The cache-friendly edge layout shared by the Minor-Aggregation
/// and CONGEST simulators' hot scans (per-list vectors scatter allocations;
/// CSR streams). Obtained from WeightedGraph::csr().
struct CsrAdjacency {
  std::vector<std::int32_t> offsets;  // size n+1
  std::vector<AdjEntry> entries;      // size 2m, grouped by node

  [[nodiscard]] std::span<const AdjEntry> row(NodeId v) const {
    return {entries.data() + offsets[static_cast<std::size_t>(v)],
            entries.data() + offsets[static_cast<std::size_t>(v) + 1]};
  }
};

/// Weighted undirected multigraph with O(1) edge lookup by id.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(NodeId n) : adj_(static_cast<std::size_t>(n)) { UMC_ASSERT(n >= 0); }

  [[nodiscard]] NodeId n() const { return static_cast<NodeId>(adj_.size()); }
  [[nodiscard]] EdgeId m() const { return static_cast<EdgeId>(edges_.size()); }

  /// Pre-sizes the node and edge stores (never shrinks). Generators use
  /// this to avoid reallocation churn when building large graphs.
  void reserve(NodeId nodes, EdgeId edges);

  /// Appends an isolated vertex; returns its id.
  NodeId add_node();

  /// Appends edge {u, v} with weight w; returns its id. Rejects self-loops
  /// and non-positive weights (zero-weight edges never affect min-cuts and
  /// would break strict-inequality arguments like Fact 6).
  EdgeId add_edge(NodeId u, NodeId v, Weight w = 1);

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    UMC_ASSERT(e >= 0 && e < m());
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  [[nodiscard]] std::span<const AdjEntry> adj(NodeId v) const {
    UMC_ASSERT(v >= 0 && v < n());
    return adj_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] int degree(NodeId v) const {
    return static_cast<int>(adj(v).size());
  }

  /// Sum of weights of edges incident to v (parallel edges counted).
  [[nodiscard]] Weight weighted_degree(NodeId v) const;

  /// Sum of all edge weights.
  [[nodiscard]] Weight total_weight() const;

  /// Re-weights an existing edge. New weight must be positive.
  void set_weight(EdgeId e, Weight w);

  /// The CSR adjacency view, built lazily on first use and rebuilt after
  /// topology changes (add_node/add_edge). NOT safe to build concurrently:
  /// call it once before handing the graph to parallel code (set_weight
  /// does not invalidate it — entries carry no weights).
  [[nodiscard]] const CsrAdjacency& csr() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<AdjEntry>> adj_;
  mutable CsrAdjacency csr_;       // wall-time cache only
  mutable bool csr_valid_ = false;
};

}  // namespace umc
