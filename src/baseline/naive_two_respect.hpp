#pragma once

// Naive O(n^2 * depth + m * depth^2) 2-respecting min-cut oracle: evaluates
// Cut(e, f) for every pair of tree edges directly from the definitions.
// The distributed algorithm of Sections 5-9 is property-tested against it.

#include "mincut/instance.hpp"
#include "tree/rooted_tree.hpp"

namespace umc::baseline {

/// min over pairs (e, f) of tree edges of Cut_{T,G}(e, f), including e == f
/// (the 1-respecting cuts). Returned edges are host-graph edge ids.
[[nodiscard]] mincut::CutResult naive_two_respecting(const RootedTree& t);

/// min over single tree edges of Cut(e).
[[nodiscard]] mincut::CutResult naive_one_respecting(const RootedTree& t);

}  // namespace umc::baseline
