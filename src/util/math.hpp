#pragma once

// Small integer-math helpers shared across subsystems.

#include <cstdint>

#include "util/assert.hpp"

namespace umc {

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::uint64_t x) {
  UMC_ASSERT(x >= 1);
  return 63 - __builtin_clzll(x);
}

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
inline int ceil_log2(std::uint64_t x) {
  UMC_ASSERT(x >= 1);
  return x == 1 ? 0 : floor_log2(x - 1) + 1;
}

/// Integer square root: largest r with r*r <= x.
inline std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  std::uint64_t r = static_cast<std::uint64_t>(__builtin_sqrt(static_cast<double>(x)));
  while (r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer. The fault subsystem
/// keys every injection decision on mix64(seed, round, slot) so schedules
/// are functions of position, never of iteration order, and uses the same
/// mixer for message checksums.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// log*(n): iterated-logarithm, the Cole-Vishkin iteration count driver.
inline int log_star(std::uint64_t n) {
  int k = 0;
  double x = static_cast<double>(n);
  while (x > 1.0) {
    x = __builtin_log2(x);
    ++k;
    if (k > 8) break;  // log* is <= 5 for any physical input
  }
  return k;
}

}  // namespace umc
