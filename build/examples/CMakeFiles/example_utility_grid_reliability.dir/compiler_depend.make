# Empty compiler generated dependencies file for example_utility_grid_reliability.
# This may be replaced when dependencies are built.
