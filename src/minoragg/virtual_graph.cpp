#include "minoragg/virtual_graph.hpp"

#include <map>

namespace umc::minoragg {

VirtualGraph virtualize_node(const VirtualGraph& g, NodeId v, Ledger& ledger) {
  UMC_ASSERT(v >= 0 && v < g.graph.n());
  VirtualGraph out;
  out.graph = WeightedGraph(g.graph.n());
  out.is_virtual = g.is_virtual;
  out.is_virtual[static_cast<std::size_t>(v)] = true;

  // Edges not touching v are copied; edges to v merge per neighbor.
  std::map<NodeId, Weight> merged;
  for (const Edge& e : g.graph.edges()) {
    if (e.u != v && e.v != v) {
      out.graph.add_edge(e.u, e.v, e.w);
    } else {
      merged[e.other(v)] += e.w;
    }
  }
  for (const auto& [u, w] : merged) out.graph.add_edge(u, v, w);

  // Lemma 15: one broadcast round (everyone learns v's id) plus one
  // aggregation round (each neighbor sums its edges toward v).
  ledger.charge(2);
  return out;
}

}  // namespace umc::minoragg
