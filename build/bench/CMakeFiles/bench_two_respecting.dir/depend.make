# Empty dependencies file for bench_two_respecting.
# This may be replaced when dependencies are built.
