#pragma once

// Aggregation operators (Definition 7).
//
// An aggregation operator combines two Õ(1)-bit messages into one; the
// Minor-Aggregation simulator folds node/edge values with them. Commutative
// and associative operators (sum, min, max, or) give order-independent
// results; mergeable sketches (Misra-Gries, bounded ancestor maps) are also
// valid operators whose output may depend on the fold order but whose
// *guarantees* do not (Section 3.3.1).
//
// An Aggregator is any type with:
//   using value_type = ...;
//   static value_type identity();
//   static value_type merge(value_type, value_type);

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "graph/graph.hpp"

namespace umc {

template <typename A>
concept Aggregator = requires(typename A::value_type x, typename A::value_type y) {
  { A::identity() } -> std::convertible_to<typename A::value_type>;
  { A::merge(std::move(x), std::move(y)) } -> std::convertible_to<typename A::value_type>;
};

struct SumAgg {
  using value_type = std::int64_t;
  static value_type identity() { return 0; }
  static value_type merge(value_type a, value_type b) { return a + b; }
};

struct MinAgg {
  using value_type = std::int64_t;
  static value_type identity() { return std::numeric_limits<std::int64_t>::max(); }
  static value_type merge(value_type a, value_type b) { return std::min(a, b); }
};

struct MaxAgg {
  using value_type = std::int64_t;
  static value_type identity() { return std::numeric_limits<std::int64_t>::min(); }
  static value_type merge(value_type a, value_type b) { return std::max(a, b); }
};

// Note: value_type is uint8 rather than bool so that per-node inputs can be
// held in a contiguous std::vector viewable as std::span (vector<bool> has
// no data()).
struct OrAgg {
  using value_type = std::uint8_t;
  static value_type identity() { return 0; }
  static value_type merge(value_type a, value_type b) { return (a || b) ? 1 : 0; }
};

struct AndAgg {
  using value_type = std::uint8_t;
  static value_type identity() { return 1; }
  static value_type merge(value_type a, value_type b) { return (a && b) ? 1 : 0; }
};

/// (value, tag) minimum — e.g. "minimum weight outgoing edge and its id"
/// in Borůvka, or leader election by minimum id.
struct MinPairAgg {
  using value_type = std::pair<std::int64_t, std::int64_t>;
  static value_type identity() {
    return {std::numeric_limits<std::int64_t>::max(), std::numeric_limits<std::int64_t>::max()};
  }
  static value_type merge(value_type a, value_type b) { return std::min(a, b); }
};

static_assert(Aggregator<SumAgg>);
static_assert(Aggregator<MinAgg>);
static_assert(Aggregator<MaxAgg>);
static_assert(Aggregator<OrAgg>);
static_assert(Aggregator<AndAgg>);
static_assert(Aggregator<MinPairAgg>);

}  // namespace umc
