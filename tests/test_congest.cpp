// Tests for the CONGEST simulator, BFS trees, part-wise aggregation (the
// Theorem 17 engine), edge coloring (Lemma 35), the gather baseline, and
// compile-cost measurement.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/stoer_wagner.hpp"
#include "congest/bfs_tree.hpp"
#include "congest/compile.hpp"
#include "congest/congest_net.hpp"
#include "congest/edge_coloring.hpp"
#include "congest/gather_baseline.hpp"
#include "congest/partwise.hpp"
#include "graph/generators.hpp"
#include "graph/minors.hpp"
#include "graph/properties.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::congest {
namespace {

TEST(CongestNet, DeliversAndCountsRounds) {
  const WeightedGraph g = path_graph(3);
  CongestNetwork net(g);
  net.send(0, 0, 42);
  net.send(2, 1, 7, 9);
  net.end_round();
  ASSERT_EQ(net.inbox(1).size(), 2u);
  EXPECT_EQ(net.rounds(), 1);
  // Next round: inbox is cleared.
  net.end_round();
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.rounds(), 2);
}

TEST(CongestNet, EnforcesOneMessagePerEdgeDirection) {
  const WeightedGraph g = path_graph(2);
  CongestNetwork net(g);
  net.send(0, 0, 1);
  EXPECT_THROW(net.send(0, 0, 2), invariant_error);  // same direction
  net.send(1, 0, 3);                                 // opposite direction is fine
  net.end_round();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(0).size(), 1u);
}

TEST(BfsTree, DepthsMatchDistancesAndRoundsMatchEccentricity) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const WeightedGraph g = erdos_renyi_connected(40, 0.08, rng);
    CongestNetwork net(g);
    const BfsTree t = build_bfs_tree(net, 3);
    const auto dist = bfs_distances(g, 3);
    for (NodeId v = 0; v < g.n(); ++v)
      EXPECT_EQ(t.depth[static_cast<std::size_t>(v)], dist[static_cast<std::size_t>(v)]);
    const int ecc = *std::max_element(dist.begin(), dist.end());
    EXPECT_EQ(t.height, ecc);
    EXPECT_LE(t.rounds_used, ecc + 1);
  }
}

TEST(Partwise, ValuesCorrectOnSmallParts) {
  // 4x4 grid, four 2x2 quadrant parts (each connected).
  const WeightedGraph g = grid_graph(4, 4);
  std::vector<int> part(16);
  for (NodeId r = 0; r < 4; ++r)
    for (NodeId c = 0; c < 4; ++c) part[static_cast<std::size_t>(r * 4 + c)] = (r / 2) * 2 + c / 2;
  std::vector<std::int64_t> input(16);
  for (NodeId v = 0; v < 16; ++v) input[static_cast<std::size_t>(v)] = v;
  CongestNetwork net(g);
  const PartwiseResult res = partwise_aggregate(net, part, input);
  EXPECT_EQ(res.num_parts, 4);
  EXPECT_EQ(res.num_large_parts, 0);
  // Quadrant sums.
  EXPECT_EQ(res.value[0], 0 + 1 + 4 + 5);
  EXPECT_EQ(res.value[15], 10 + 11 + 14 + 15);
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(res.value[static_cast<std::size_t>(v)],
              res.value[static_cast<std::size_t>((v / 8) * 8 + (v % 4) / 2 * 2)]);
  }
}

TEST(Partwise, LargePartsUsePipelinedGlobalTree) {
  // One giant part covering a long path: must take the large-part route.
  const NodeId n = 100;
  const WeightedGraph g = path_graph(n);
  std::vector<int> part(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> input(static_cast<std::size_t>(n), 2);
  CongestNetwork net(g);
  const PartwiseResult res = partwise_aggregate(net, part, input);
  EXPECT_EQ(res.num_large_parts, 1);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(res.value[static_cast<std::size_t>(v)], 2 * n);
}

TEST(Partwise, MixedPartsAndOutsiders) {
  Rng rng(5);
  const WeightedGraph g = grid_graph(10, 10);
  const std::vector<int> part = sqrt_carve_partition(g, 17);
  std::vector<std::int64_t> input(100);
  for (auto& x : input) x = rng.next_in(1, 9);
  CongestNetwork net(g);
  const PartwiseResult res = partwise_aggregate(net, part, input);
  // Reference sums.
  std::vector<std::int64_t> ref(100, 0);
  for (NodeId v = 0; v < 100; ++v) ref[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += input[static_cast<std::size_t>(v)];
  for (NodeId v = 0; v < 100; ++v)
    EXPECT_EQ(res.value[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])]);
}

TEST(Partwise, SqrtCarvePartsAreConnectedAndSized) {
  Rng rng(7);
  for (const auto& g : {grid_graph(12, 12), erdos_renyi_connected(150, 0.05, rng)}) {
    const std::vector<int> part = sqrt_carve_partition(g, 3);
    int k = 0;
    for (const int p : part) {
      EXPECT_GE(p, 0);
      k = std::max(k, p + 1);
    }
    // Each part induces a connected subgraph.
    for (int p = 0; p < k; ++p) {
      std::vector<bool> keep(static_cast<std::size_t>(g.n()), false);
      NodeId count = 0;
      for (NodeId v = 0; v < g.n(); ++v) {
        if (part[static_cast<std::size_t>(v)] == p) {
          keep[static_cast<std::size_t>(v)] = true;
          ++count;
        }
      }
      ASSERT_GT(count, 0);
      const auto sub = umc::induced_subgraph(g, keep);
      EXPECT_TRUE(is_connected(sub.graph)) << "part " << p;
    }
  }
}

TEST(Partwise, CarvePartitionCostIsSqrtNotDiameter) {
  // On the √n-carve partition every part is an O(√n)-node connected blob,
  // so PA costs O(√n) even when D = n (parts aggregate internally).
  const WeightedGraph path = path_graph(400);
  CongestNetwork net1(path);
  const std::vector<std::int64_t> in1(400, 1);
  const auto r1 = partwise_aggregate(net1, sqrt_carve_partition(path, 1), in1);
  EXPECT_EQ(r1.num_large_parts, 0);
  EXPECT_LE(r1.rounds_used, 8 * 20 + 8);  // O(√400) with small constants
}

TEST(CompileCost, PerRoundCostIsDiameterPlusSqrtN) {
  // The compile multiplier includes global consensus, so D shows up: a path
  // (D = 399) costs far more per MA round than a 20x20 grid (D = 38).
  minoragg::Ledger ledger;
  ledger.charge(1);
  const CompileCost path_cost = measure_compile_cost(path_graph(400), ledger, 1);
  const CompileCost grid_cost = measure_compile_cost(grid_graph(20, 20), ledger, 1);
  EXPECT_GT(path_cost.pa_rounds_general, static_cast<std::int64_t>(path_cost.diameter));
  EXPECT_GT(path_cost.pa_rounds_general, 2 * grid_cost.pa_rounds_general);
}

TEST(EdgeColoring, ProperWithAtMostTwoDeltaMinusOneColors) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const WeightedGraph g = erdos_renyi_connected(30, 0.15, rng);
    const EdgeColoring ec = deterministic_edge_coloring(g);
    EXPECT_LE(ec.num_colors, std::max(1, 2 * ec.max_degree - 1));
    for (NodeId v = 0; v < g.n(); ++v) {
      std::vector<bool> seen(static_cast<std::size_t>(ec.num_colors), false);
      for (const AdjEntry& a : g.adj(v)) {
        const int c = ec.color[static_cast<std::size_t>(a.edge)];
        EXPECT_FALSE(seen[static_cast<std::size_t>(c)]) << "conflict at node " << v;
        seen[static_cast<std::size_t>(c)] = true;
      }
    }
  }
}

TEST(GatherBaseline, RoundsScaleWithEdgesAndValueIsExact) {
  Rng rng(11);
  WeightedGraph g = erdos_renyi_connected(40, 0.2, rng);
  randomize_weights(g, 1, 9, rng);
  const GatherBaselineResult res = gather_exact_mincut(g, 0);
  EXPECT_EQ(res.min_cut_value, baseline::stoer_wagner(g).value);
  // Gathering m descriptors into one root takes >= m / deg(root) rounds.
  EXPECT_GE(res.rounds_used, g.m() / std::max(1, g.degree(0)));
  EXPECT_LE(res.rounds_used, static_cast<std::int64_t>(g.m()) + exact_diameter(g) + 2);
}

TEST(CompileCost, CombinesLedgerWithMeasuredPa) {
  minoragg::Ledger ledger;
  ledger.charge(10);
  const WeightedGraph g = grid_graph(8, 8);
  const CompileCost cost = measure_compile_cost(g, ledger, 5);
  EXPECT_EQ(cost.ma_rounds, 10);
  EXPECT_GT(cost.pa_rounds_general, 0);
  EXPECT_EQ(cost.congest_rounds_general(), 10 * cost.pa_rounds_general);
  EXPECT_GT(cost.congest_rounds_excluded_minor(), 0);
}

}  // namespace
}  // namespace umc::congest
