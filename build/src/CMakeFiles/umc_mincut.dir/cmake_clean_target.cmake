file(REMOVE_RECURSE
  "libumc_mincut.a"
)
