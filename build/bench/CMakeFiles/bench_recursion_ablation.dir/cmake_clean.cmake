file(REMOVE_RECURSE
  "CMakeFiles/bench_recursion_ablation.dir/bench_recursion_ablation.cpp.o"
  "CMakeFiles/bench_recursion_ablation.dir/bench_recursion_ablation.cpp.o.d"
  "bench_recursion_ablation"
  "bench_recursion_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recursion_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
