// Experiment E10 (Appendix A, Lemmas 44-47 / Theorem 48): the deterministic
// primitives run in Õ(1) Minor-Aggregation rounds.
//
// Reports, per n: Cole-Vishkin iterations (O(log* n) — essentially constant
// across 3 orders of magnitude), star-merge-driven HL-construction
// iterations (O(log n)), and subtree/ancestor-sum rounds (O(log^2 n)).

#include "bench_common.hpp"
#include "minoragg/cole_vishkin.hpp"
#include "minoragg/tree_primitives.hpp"
#include "tree/rooted_tree.hpp"

namespace umc {
namespace {

void BM_ColeVishkin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = v + 1 < n ? v + 1 : -1;
  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(minoragg::cole_vishkin_3color(out, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = n;
}

void BM_HlConstructAndSums(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(29);
  const WeightedGraph g = random_tree(n, rng);
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e) ids[static_cast<std::size_t>(e)] = e;
  const RootedTree t(g, ids, 0);
  const std::vector<std::int64_t> ones(static_cast<std::size_t>(n), 1);

  minoragg::Ledger construct, sums;
  for (auto _ : state) {
    minoragg::Ledger c, s;
    const HeavyLightDecomposition hld = minoragg::hl_construct(t, c);
    benchmark::DoNotOptimize(minoragg::hl_subtree_sums<SumAgg>(t, hld, ones, s));
    benchmark::DoNotOptimize(minoragg::hl_ancestor_sums<SumAgg>(t, hld, ones, s));
    construct = c;
    sums = s;
  }
  state.counters["n"] = n;
  state.counters["construct_rounds"] = static_cast<double>(construct.rounds());
  state.counters["hl_merge_iterations"] =
      static_cast<double>(construct.counter("hl_merge_iterations"));
  state.counters["cv_iterations"] = static_cast<double>(construct.counter("cv_iterations"));
  state.counters["sum_rounds"] = static_cast<double>(sums.rounds());
  state.counters["log2_n"] = ceil_log2(static_cast<std::uint64_t>(n));
}

void BM_Centroid(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(31);
  const WeightedGraph g = random_tree(n, rng);
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e) ids[static_cast<std::size_t>(e)] = e;
  const RootedTree t(g, ids, 0);
  const HeavyLightDecomposition hld(t);
  minoragg::Ledger ledger;
  for (auto _ : state) {
    minoragg::Ledger run;
    benchmark::DoNotOptimize(minoragg::find_centroid_ma(t, hld, run));
    ledger = run;
  }
  benchutil::export_ledger(state, ledger);
  state.counters["n"] = n;
}

BENCHMARK(BM_ColeVishkin)->Arg(100)->Arg(10000)->Arg(1000000)->Iterations(1);
BENCHMARK(BM_HlConstructAndSums)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Centroid)->Arg(100)->Arg(10000)->Arg(100000)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
