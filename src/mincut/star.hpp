#pragma once

// Star 2-respecting min-cut (Section 7, Theorem 27).
//
// Pipeline: 1-respecting cuts (Theorem 18) → interest lists (Lemma 32) →
// mutual-interest graph (Definition 33, max degree O(log n) by Lemma 30) →
// deterministic O(Δ)-edge-coloring simulated on the interest graph
// (Lemmas 34/35) → per color class, node-disjoint path-to-path calls
// (Theorem 19) on cut-equivalent pair instances built by absorbing
// everything outside the pair into a virtual pair-root.

#include "mincut/instance.hpp"
#include "mincut/interest.hpp"
#include "minoragg/ledger.hpp"

namespace umc::mincut {

/// min of candidate 1-respecting cuts and candidate 2-respecting pairs on
/// different paths. Counters: "max_interest_degree", "max_interest_colors".
[[nodiscard]] CutResult star_mincut(const StarInstance& inst, minoragg::Ledger& ledger);

}  // namespace umc::mincut
